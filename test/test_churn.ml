(* Dynamic membership: replicas join, leave, and rejoin mid-run —
   joiners catch up from a Persist snapshot, leavers' scripts park,
   rejoiners resume from crash-time state. Through all of it the
   Proposition 4 contract must hold: the converged state is a pure
   function of the timestamp-ordered update multiset (the certificate),
   and churn-run journals must round-trip byte-for-byte. *)

open Helpers
module P = Persist.Catchup (Generic.Make (Set_spec)) (Update_codec.For_set)
module R = Runner.Make (P)

let churn_schedule =
  [
    { Network.time = 20.0; pid = 3; action = Network.Join };
    { Network.time = 30.0; pid = 2; action = Network.Leave };
    { Network.time = 60.0; pid = 2; action = Network.Rejoin };
  ]

let run_churn ?(churn = churn_schedule) ?(partitions = []) ?obs ~seed ~n ~ops () =
  let rng = Prng.create seed in
  let workload =
    Workload.For_set.conflict ~rng ~n ~ops_per_process:ops ~domain:8 ~skew:1.0
      ~delete_ratio:0.3
  in
  let config =
    {
      (R.default_config ~n ~seed) with
      R.delay = Network.Exponential { mean = 10.0 };
      churn;
      partitions;
      final_read = Some Set_spec.Read;
      obs;
    }
  in
  R.run config ~workload

let tests =
  [
    qtest ~count:25 "join/leave/rejoin under a partition still converges" seed_gen
      (fun seed ->
        let partitions =
          [ { Network.from_time = 25.0; to_time = 55.0; group = [ 1 ] } ]
        in
        let r = run_churn ~partitions ~seed ~n:4 ~ops:5 () in
        r.R.converged && r.R.certificates_agree
        && List.length r.R.final_outputs = 4);
    qtest ~count:25 "Prop. 4 oracle: ω is the timestamp-order fold of the certificate"
      seed_gen
      (fun seed ->
        let rng = Prng.create seed in
        let workload =
          Workload.For_set.conflict ~rng ~n:4 ~ops_per_process:4 ~domain:8
            ~skew:1.0 ~delete_ratio:0.3
        in
        let invoked =
          Array.fold_left (fun acc s -> acc + List.length s) 0 workload
        in
        let r = run_churn ~seed ~n:4 ~ops:4 () in
        r.R.converged && r.R.certificates_agree
        && List.for_all
             (fun (_, cert) ->
               (* The conflict workload is updates-only and everyone is
                  present at the end, so every certificate carries the
                  full update multiset and folds to the common ω. *)
               List.length cert = invoked
               &&
               let state =
                 List.fold_left
                   (fun s (_, u) -> Set_spec.apply s u)
                   Set_spec.initial cert
               in
               let expect = Set_spec.eval state Set_spec.Read in
               List.for_all (fun (_, o) -> o = expect) r.R.final_outputs)
             r.R.certificates);
    Alcotest.test_case "a leaver that never returns is excluded from ω" `Quick
      (fun () ->
        let churn = [ { Network.time = 25.0; pid = 2; action = Network.Leave } ] in
        let r = run_churn ~churn ~seed:11 ~n:3 ~ops:4 () in
        Alcotest.(check int) "two ω reads" 2 (List.length r.R.final_outputs);
        Alcotest.(check bool) "pid 2 takes no ω read" false
          (List.mem_assoc 2 r.R.final_outputs);
        Alcotest.(check bool) "the present replicas converge" true r.R.converged);
    Alcotest.test_case "a late joiner catches up from a snapshot" `Quick (fun () ->
        let journal = Obs.Journal.create () in
        let obs = Obs.create ~journal () in
        let churn = [ { Network.time = 50.0; pid = 2; action = Network.Join } ] in
        let r = run_churn ~churn ~obs ~seed:5 ~n:3 ~ops:4 () in
        Alcotest.(check int) "all three ω reads" 3 (List.length r.R.final_outputs);
        Alcotest.(check bool) "converged" true r.R.converged;
        let joins =
          List.filter_map
            (function
              | Obs.Journal.Join { pid; rejoin; _ } -> Some (pid, rejoin)
              | _ -> None)
            (Obs.Journal.events journal)
        in
        Alcotest.(check (list (pair int bool))) "one fresh join journaled"
          [ (2, false) ] joins);
    Alcotest.test_case "a rejoin is journaled as one, after its leave" `Quick
      (fun () ->
        let journal = Obs.Journal.create () in
        let obs = Obs.create ~journal () in
        let r = run_churn ~obs ~seed:9 ~n:4 ~ops:4 () in
        Alcotest.(check bool) "converged" true r.R.converged;
        let churn_events =
          List.filter_map
            (function
              | Obs.Journal.Join { pid; rejoin; _ } ->
                Some (if rejoin then `Rejoin pid else `Join pid)
              | Obs.Journal.Leave { pid; _ } -> Some (`Leave pid)
              | _ -> None)
            (Obs.Journal.events journal)
        in
        Alcotest.(check bool) "join, leave, rejoin in schedule order" true
          (churn_events = [ `Join 3; `Leave 2; `Rejoin 2 ]));
    Alcotest.test_case "churn journals replay event-for-event" `Quick (fun () ->
        let capture () =
          let journal = Obs.Journal.create () in
          let obs = Obs.create ~journal () in
          let partitions =
            [ { Network.from_time = 25.0; to_time = 55.0; group = [ 1 ] } ]
          in
          ignore (run_churn ~partitions ~obs ~seed:21 ~n:4 ~ops:5 ());
          journal
        in
        let j1 = capture () and j2 = capture () in
        (match Obs.Journal.diff j1 j2 with
        | None -> ()
        | Some (i, a, b) -> Alcotest.failf "replay diverged at %d: %s vs %s" i a b);
        (* Serialization round-trip: parse-back of the emitted JSONL is
           the same journal, fingerprint included. *)
        (match Obs.Journal.diff j1 (Obs.Journal.of_jsonl (Obs.Journal.to_jsonl j1)) with
        | None -> ()
        | Some (i, a, b) ->
          Alcotest.failf "round-trip diverged at %d: %s vs %s" i a b);
        Alcotest.(check bool) "sealed" true (Obs.Journal.fingerprint j1 <> None);
        Alcotest.(check (option string)) "same history fingerprint"
          (Obs.Journal.fingerprint j1) (Obs.Journal.fingerprint j2));
  ]
