(* The ABD linearizable-register baseline: safety (reads never regress),
   the round-trip latency the paper's introduction cites, and loss of
   availability without a majority. *)

open Helpers

module R = Runner.Make (Abd)

let upd v = Protocol.Invoke_update (Register_spec.Write v)

let qry = Protocol.Invoke_query Register_spec.Read

let tests =
  [
    Alcotest.test_case "single writer: reads return the latest write" `Quick (fun () ->
        let config =
          { (R.default_config ~n:3 ~seed:1) with R.final_read = Some Register_spec.Read }
        in
        let r = R.run config ~workload:[| [ upd 1; upd 2; qry ]; []; [] |] in
        (* The writer's own read, issued after write(2) completed, must
           return 2 (real-time order). *)
        let own_reads =
          List.filter_map History.query_of (History.process_events r.R.history 0)
        in
        (* the scripted read plus the ω final read, both linearized after
           write(2) *)
        Alcotest.(check (list int)) "reads 2" [ 2; 2 ]
          (List.map snd (List.filter (fun (q, _) -> q = Register_spec.Read) own_reads));
        Alcotest.(check bool) "converged" true r.R.converged);
    qtest ~count:20 "ABD converges and completes without faults" seed_gen (fun seed ->
        let module G = Workload.Make (Register_spec) in
        let rng = Prng.create seed in
        let workload = G.mixed ~rng ~n:3 ~ops_per_process:8 ~query_ratio:0.5 in
        let config =
          { (R.default_config ~n:3 ~seed) with R.final_read = Some Register_spec.Read }
        in
        let r = R.run config ~workload in
        r.R.converged && r.R.metrics.Metrics.ops_incomplete = 0);
    Alcotest.test_case "operation latency is ~4 one-way delays" `Quick (fun () ->
        let config =
          {
            (R.default_config ~n:3 ~seed:2) with
            R.delay = Network.Constant 10.0;
            final_read = Some Register_spec.Read;
          }
        in
        let r = R.run config ~workload:[| [ upd 1; qry ]; []; [] |] in
        List.iter
          (fun l -> Alcotest.(check (float 1e-6)) "two round trips" 40.0 l)
          r.R.op_latencies);
    Alcotest.test_case "minority survivor cannot finish operations" `Quick (fun () ->
        (* Two of three processes crash: the survivor is a minority and
           its quorum operations stall forever — the availability loss
           Attiya–Bar-Noy–Dolev trade for atomicity. *)
        let config =
          {
            (R.default_config ~n:3 ~seed:3) with
            R.crashes = [ (0.1, 1); (0.1, 2) ];
            final_read = Some Register_spec.Read;
            deadline = 10_000.0;
          }
        in
        let r = R.run config ~workload:[| [ upd 1 ]; []; [] |] in
        Alcotest.(check bool) "stalled" true (r.R.metrics.Metrics.ops_incomplete > 0);
        Alcotest.(check int) "no final read either" 0 (List.length r.R.final_outputs));
    Alcotest.test_case "a crashed minority does not block the majority" `Quick (fun () ->
        let config =
          {
            (R.default_config ~n:3 ~seed:4) with
            R.crashes = [ (0.1, 2) ];
            final_read = Some Register_spec.Read;
          }
        in
        let r = R.run config ~workload:[| [ upd 7; qry ]; [ qry ]; [] |] in
        Alcotest.(check int) "all complete" 0 r.R.metrics.Metrics.ops_incomplete;
        Alcotest.(check bool) "converged" true r.R.converged);
    qtest ~count:15 "reads never regress (per-process monotonicity)" seed_gen (fun seed ->
        (* With a single writer writing increasing values, every process's
           successive reads are monotone — a consequence of
           linearizability that eventual consistency would not give. *)
        let writer = List.init 5 (fun i -> upd (i + 1)) in
        let readers = List.init 6 (fun _ -> qry) in
        let config =
          { (R.default_config ~n:3 ~seed) with R.final_read = Some Register_spec.Read }
        in
        let r = R.run config ~workload:[| writer; readers; readers |] in
        List.for_all
          (fun p ->
            let reads =
              List.filter_map History.query_of (History.process_events r.R.history p)
              |> List.map snd
            in
            let rec monotone = function
              | a :: (b :: _ as rest) -> a <= b && monotone rest
              | [ _ ] | [] -> true
            in
            monotone reads)
          [ 1; 2 ]);
  ]
