(* Property layer: the paper's Proposition 2 hierarchy on random
   histories, codec/persistence round-trips, fingerprint behaviour and
   engine invariants — every law checked on generated inputs, not
   hand-picked examples. *)

open Helpers

module C_set = Criteria.Make (Set_spec)
module Gen_set = Gen_history.Make (Set_spec)
module Gen_counter = Gen_history.Make (Counter_spec)

(* UC by definition, generically: enumerate every linear extension of
   the update program order and test the ω reads against each final
   state. *)
module Brute (A : Uqadt.S) = struct
  module Run = Uqadt.Run (A)

  let uc h =
    let updates = Array.of_list (History.updates h) in
    let omegas = List.filter_map History.query_of (History.omega_queries h) in
    let dag = History.update_dag h in
    Dag.linear_extensions dag (fun order ->
        let word =
          List.map
            (fun r -> Option.get (History.update_of updates.(r)))
            (Array.to_list order)
        in
        let final = Run.final_state word in
        List.for_all (fun (qi, qo) -> A.equal_output (A.eval final qi) qo) omegas)
end

module Brute_counter = Brute (Counter_spec)

(* ------------------------- Proposition 2 ------------------------- *)

let hierarchy_tests =
  [
    qtest ~count:120 "UC implies EC (Proposition 2)" seed_gen (fun seed ->
        let rng = Prng.create seed in
        let h = Gen_set.convergent_mix rng ~processes:3 ~max_updates:4 ~max_queries:2 in
        (not (C_set.holds Criteria.UC h)) || C_set.holds Criteria.EC h);
    qtest ~count:60 "SUC implies SEC and UC (Proposition 2)" seed_gen (fun seed ->
        let rng = Prng.create seed in
        let h = Gen_set.convergent_mix rng ~processes:2 ~max_updates:3 ~max_queries:2 in
        (not (C_set.holds Criteria.SUC h))
        || (C_set.holds Criteria.SEC h && C_set.holds Criteria.UC h));
    qtest ~count:40 "classify respects the whole implication lattice" seed_gen
      (fun seed ->
        let rng = Prng.create seed in
        let h = Gen_set.convergent_mix rng ~processes:2 ~max_updates:3 ~max_queries:2 in
        let verdicts = C_set.classify h in
        List.for_all
          (fun (c1, v1) ->
            List.for_all
              (fun (c2, v2) -> (not (Criteria.implies c1 c2)) || (not v1) || v2)
              verdicts)
          verdicts);
    qtest ~count:100 "Check_uc agrees with brute force on the counter" seed_gen
      (fun seed ->
        let rng = Prng.create seed in
        let h =
          Gen_counter.convergent_mix rng ~processes:2 ~max_updates:4 ~max_queries:2
        in
        let module Uc = Check_uc.Make (Counter_spec) in
        Uc.holds h = Brute_counter.uc h);
  ]

(* ------------------------ codec round-trips ---------------------- *)

let varint_gen = QCheck2.Gen.(oneof [ int_range 0 127; int_range 0 1_000_000_000 ])

module Set_persist = Persist.Make (Set_spec) (Update_codec.For_set)
module G_set = Generic.Make (Set_spec)

let dummy_ctx pid n : G_set.message Protocol.ctx =
  {
    Protocol.pid;
    n;
    now = (fun () -> 0.0);
    send = (fun ~dst:_ _ -> ());
    broadcast = (fun _ -> ());
    broadcast_batch = (fun _ -> ());
    set_timer = (fun ~delay:_ _ -> ());
    count_replay = (fun _ -> ());
    obs = None;
  }

let random_log rng =
  List.init (Prng.int rng 6) (fun i ->
      ( Timestamp.make ~clock:(i + 1 + Prng.int rng 3) ~pid:(Prng.int rng 3),
        Prng.int rng 3,
        Set_spec.random_update rng ))

(* A replica that has logged local and remote updates and ticked its
   clock with unlogged queries — the state a log-only restore
   under-recovers. *)
let busy_replica rng =
  let buf = Queue.create () in
  let peer =
    G_set.create
      { (dummy_ctx 1 2) with Protocol.broadcast = (fun m -> Queue.add m buf) }
  in
  let r = G_set.create (dummy_ctx 0 2) in
  for _ = 1 to Prng.int rng 5 do
    G_set.update r (Set_spec.random_update rng) ~on_done:ignore
  done;
  for _ = 1 to Prng.int rng 4 do
    G_set.update peer (Set_spec.random_update rng) ~on_done:ignore
  done;
  Queue.iter (fun m -> G_set.receive r ~src:1 m) buf;
  for _ = 1 to Prng.int rng 4 do
    G_set.query r Set_spec.Read ~on_result:ignore
  done;
  r

let codec_tests =
  [
    qtest "varint round-trips and has the accounted size" varint_gen (fun x ->
        let w = Codec.Writer.create () in
        Codec.Writer.varint w x;
        let s = Codec.Writer.contents w in
        let r = Codec.Reader.of_string s in
        let y = Codec.Reader.varint r in
        y = x && Codec.Reader.at_end r && String.length s = Wire.varint_size x);
    qtest "byte_string round-trips and has the accounted size"
      QCheck2.Gen.(string_size (int_range 0 40))
      (fun s ->
        let w = Codec.Writer.create () in
        Codec.Writer.byte_string w s;
        let encoded = Codec.Writer.contents w in
        let r = Codec.Reader.of_string encoded in
        let s' = Codec.Reader.byte_string r in
        s' = s && Codec.Reader.at_end r && String.length encoded = Wire.string_size s);
    qtest "set update codec round-trips at its declared wire size" seed_gen
      (fun seed ->
        let rng = Prng.create seed in
        let u = Set_spec.random_update rng in
        let s = Update_codec.For_set.to_string u in
        Set_spec.equal_update (Update_codec.For_set.of_string s) u
        && String.length s = Set_spec.update_wire_size u);
    qtest "counter update codec round-trips at its declared wire size" seed_gen
      (fun seed ->
        let rng = Prng.create seed in
        let u = Counter_spec.random_update rng in
        let s = Update_codec.For_counter.to_string u in
        Counter_spec.equal_update (Update_codec.For_counter.of_string s) u
        && String.length s = Counter_spec.update_wire_size u);
    qtest ~count:150 "log snapshots round-trip" seed_gen (fun seed ->
        let rng = Prng.create seed in
        let log =
          List.sort
            (fun (a, _, _) (b, _, _) -> Timestamp.compare a b)
            (random_log rng)
        in
        Set_persist.decode_log (Set_persist.encode_log log) = log);
    qtest ~count:150 "replica snapshots restore the exact state" seed_gen
      (fun seed ->
        let rng = Prng.create seed in
        let r = busy_replica rng in
        let saved = Set_persist.snapshot_replica r in
        let fresh = G_set.create (dummy_ctx 0 2) in
        Set_persist.restore_replica fresh saved;
        G_set.local_log fresh = G_set.local_log r
        && G_set.clock_value fresh = G_set.clock_value r);
  ]

(* -------------------------- fingerprints ------------------------- *)

let fingerprint_tests =
  [
    qtest ~count:300 "fingerprint separates distinct strings"
      QCheck2.Gen.(pair (string_size (int_range 0 12)) (string_size (int_range 0 12)))
      (fun (a, b) ->
        a = b
        || not
             (Fingerprint.equal
                (Fingerprint.string Fingerprint.empty a)
                (Fingerprint.string Fingerprint.empty b)));
    qtest ~count:200 "fingerprint is structural, not concatenative"
      QCheck2.Gen.(
        pair (string_size (int_range 1 6)) (string_size (int_range 1 6)))
      (fun (a, b) ->
        not
          (Fingerprint.equal
             (Fingerprint.list Fingerprint.string Fingerprint.empty [ a ^ b ])
             (Fingerprint.list Fingerprint.string Fingerprint.empty [ a; b ])));
  ]

(* ----------------------- engine invariants ----------------------- *)

module M_uni = Model_check.Make (G_set)
module M_pipe = Model_check.Make (Pipelined.Make (Set_spec))
module Snap_set = Snapshot.For_generic (Set_spec) (Update_codec.For_set)

(* Tiny random scripts: 2 processes, 1-2 operations each, drawn from a
   small value domain so conflicts are common. *)
let random_scripts rng =
  Array.init 2 (fun _ ->
      List.init
        (1 + Prng.int rng 2)
        (fun _ ->
          if Prng.int rng 5 = 0 then Protocol.Invoke_query Set_spec.Read
          else Protocol.Invoke_update (Set_spec.random_update rng)))

let engine_tests =
  [
    qtest ~count:25 "POR preserves distinct violation counts (pipelined)" seed_gen
      (fun seed ->
        let rng = Prng.create seed in
        let scripts = random_scripts rng in
        let base = M_pipe.explore ~scripts ~final_read:Set_spec.Read () in
        let red = M_pipe.explore ~por:true ~scripts ~final_read:Set_spec.Read () in
        base.M_pipe.exhaustive && red.M_pipe.exhaustive
        && red.M_pipe.distinct_failures = base.M_pipe.distinct_failures);
    qtest ~count:20
      "POR + dedup + checkpoints preserve distinct violation counts (universal)"
      seed_gen
      (fun seed ->
        let rng = Prng.create seed in
        let scripts = random_scripts rng in
        let base = M_uni.explore ~scripts ~final_read:Set_spec.Read () in
        let red =
          M_uni.explore ~por:true ~dedup:true ~checkpoint_every:2
            ~snapshot:Snap_set.snapshotter
            ~deliveries_commute:Snap_set.deliveries_commute ~scripts
            ~final_read:Set_spec.Read ()
        in
        base.M_uni.exhaustive && red.M_uni.exhaustive
        && red.M_uni.distinct_failures = base.M_uni.distinct_failures);
    qtest ~count:15 "parallel exploration reports exactly the sequential result"
      seed_gen
      (fun seed ->
        let rng = Prng.create seed in
        let scripts = random_scripts rng in
        let seq = M_pipe.explore ~domains:1 ~scripts ~final_read:Set_spec.Read () in
        let par = M_pipe.explore ~domains:2 ~scripts ~final_read:Set_spec.Read () in
        seq = par);
  ]

(* ------------------- Prop. 4 order-independence -------------------

   The lemma the multicore engine's differential oracle stands on,
   pinned sequentially and engine-independently for every spec in the
   registry: delivering one update set in any permutation yields the
   same final state as timestamp order, because the oplog re-sorts by
   timestamp and replay folds the sorted log. If a future spec smuggled
   delivery-order dependence into [apply] (or a log core stopped
   sorting), this fails before any domain is ever spawned. *)

let permutation_tests =
  List.map
    (fun (name, packed) ->
      let module A = (val packed : Uqadt.S) in
      qtest ~count:40
        (name ^ ": any delivery permutation folds like timestamp order")
        seed_gen
        (fun seed ->
          let rng = Prng.create seed in
          let k = 1 + Prng.int rng 8 in
          (* pid = entry index keeps (clock, pid) timestamps unique
             while leaving clock collisions to exercise the pid
             tie-break. *)
          let entries =
            List.init k (fun i ->
                ( Timestamp.make ~clock:(1 + Prng.int rng 6) ~pid:i,
                  i,
                  A.random_update rng ))
          in
          let sorted =
            List.sort
              (fun (a, _, _) (b, _, _) -> Timestamp.compare a b)
              entries
          in
          let expected =
            List.fold_left (fun s (_, _, u) -> A.apply s u) A.initial sorted
          in
          let shuffled = Array.of_list entries in
          Prng.shuffle rng shuffled;
          let log = Oplog.create () in
          Array.iter
            (fun (ts, origin, u) ->
              ignore (Oplog.insert log { Oplog.ts; origin; payload = u } : int))
            shuffled;
          let state, _ = Oplog.replay log ~apply:A.apply ~initial:A.initial in
          A.equal_state state expected
          && Format.asprintf "%a" A.pp_state state
             = Format.asprintf "%a" A.pp_state expected))
    Registry.all

(* ------------- monitor vs batch, registry-wide, faulty -------------

   test_monitor pins the index-level contract for the set spec on
   synthetic histories; here the same differential — the online
   monitor's first violation is exactly the first prefix the batch
   checker rejects, clean iff no prefix ever fails — runs for every
   spec in the registry, on histories harvested from {e faulty}
   schedules: the naive pipelined replica under a crash and a healing
   partition, which reorders deliveries enough to exercise the
   monitors' rejecting paths on non-commutative specs. *)

let random_feed rng h =
  let n = History.process_count h in
  let lines = Array.init n (fun p -> ref (History.steps_of_process h p)) in
  let out = ref [] in
  for _ = 1 to History.size h do
    let live =
      List.filter (fun p -> !(lines.(p)) <> []) (List.init n Fun.id)
    in
    let p = List.nth live (Prng.int rng (List.length live)) in
    (match !(lines.(p)) with
    | s :: rest ->
      lines.(p) := rest;
      out := (p, s) :: !out
    | [] -> assert false)
  done;
  List.rev !out

let first_failing_prefix ~n holds feed =
  let lines = Array.make n [] in
  let rec go i = function
    | [] -> None
    | (pid, step) :: rest ->
      lines.(pid) <- step :: lines.(pid);
      let h = History.make (Array.to_list (Array.map List.rev lines)) in
      if holds h then go (i + 1) rest else Some i
  in
  go 0 feed

let faulty_monitor_tests =
  List.map
    (fun (name, packed) ->
      let module A = (val packed : Uqadt.S) in
      let module M = Obs.Monitor.Make (A) in
      let module Uc = Check_uc.Make (A) in
      let module Ec = Check_ec.Make (A) in
      let module Pc = Check_pc.Make (A) in
      let module R = Runner.Make (Pipelined.Make (A)) in
      let module W = Workload.Make (A) in
      let feed_monitor ~n criterion feed =
        let m = M.create ~n ~criteria:[ criterion ] in
        List.iteri
          (fun i (pid, step) ->
            match step with
            | History.U u -> M.on_update m ~pid ~index:i ~span:None u
            | History.Q (q, o) ->
              M.on_query m ~pid ~index:i ~span:None ~omega:false q o
            | History.Qw (q, o) ->
              M.on_query m ~pid ~index:i ~span:None ~omega:true q o)
          feed;
        Option.map (fun v -> v.Obs.Monitor.index) (M.first_violation m)
      in
      qtest ~count:12
        (name ^ ": monitor = batch first-failing prefix under faults")
        seed_gen
        (fun seed ->
          let rng = Prng.create seed in
          let n = 3 in
          let workload = W.mixed ~rng ~n ~ops_per_process:2 ~query_ratio:0.4 in
          let config =
            {
              (R.default_config ~n ~seed) with
              R.delay = Network.Exponential { mean = 10.0 };
              crashes = [ (40.0, 2) ];
              partitions =
                [ { Network.from_time = 10.0; to_time = 45.0; group = [ 0 ] } ];
              final_read = Some (A.random_query rng);
            }
          in
          let r = R.run config ~workload in
          let feed = random_feed rng r.R.history in
          let n = History.process_count r.R.history in
          List.for_all
            (fun (criterion, holds) ->
              feed_monitor ~n criterion feed
              = first_failing_prefix ~n holds feed)
            [
              (Obs.Monitor.Uc, Uc.holds);
              (Obs.Monitor.Ec, Ec.holds);
              (Obs.Monitor.Pc, Pc.holds);
            ]))
    Registry.all

let tests =
  hierarchy_tests @ codec_tests @ fingerprint_tests @ engine_tests
  @ permutation_tests @ faulty_monitor_tests
