(* The bounded MPSC mailbox under the engine's exact usage patterns:
   single-threaded ring semantics, producer/consumer blocking across
   domains, multi-producer stress, and close. *)

let seq_fifo () =
  let q = Mpsc.create 8 in
  for i = 1 to 5 do
    Alcotest.(check bool) "accepted" true (Mpsc.try_push q i)
  done;
  Alcotest.(check int) "depth" 5 (Mpsc.length q);
  for i = 1 to 5 do
    Alcotest.(check (option int)) "fifo" (Some i) (Mpsc.try_pop q)
  done;
  Alcotest.(check (option int)) "empty" None (Mpsc.try_pop q)

let capacity_bound () =
  let q = Mpsc.create 4 in
  for i = 1 to 4 do
    Alcotest.(check bool) "fills" true (Mpsc.try_push q i)
  done;
  Alcotest.(check bool) "full" false (Mpsc.try_push q 99);
  Alcotest.(check (option int)) "head" (Some 1) (Mpsc.try_pop q);
  Alcotest.(check bool) "slot reusable" true (Mpsc.try_push q 5);
  Alcotest.(check int) "depth" 4 (Mpsc.length q)

let wraparound () =
  let q = Mpsc.create 3 in
  for round = 0 to 99 do
    Alcotest.(check bool) "push" true (Mpsc.try_push q round);
    Alcotest.(check (option int)) "pop" (Some round) (Mpsc.try_pop q)
  done;
  Alcotest.(check int) "drained" 0 (Mpsc.length q)

let close_semantics () =
  let q = Mpsc.create 4 in
  ignore (Mpsc.try_push q 1 : bool);
  Mpsc.close q;
  Alcotest.(check bool) "closed" true (Mpsc.is_closed q);
  Alcotest.check_raises "push raises" Mpsc.Closed (fun () ->
      ignore (Mpsc.try_push q 2 : bool));
  Alcotest.(check (option int)) "pending poppable" (Some 1) (Mpsc.try_pop q);
  Alcotest.(check (option int)) "then none" None (Mpsc.pop q)

(* One producer domain feeding a blocking consumer through a queue much
   smaller than the item count: both slow paths (producer-full,
   consumer-empty) must fire and nothing may be lost or reordered. *)
let cross_domain_fifo () =
  let total = 10_000 in
  let q = Mpsc.create 16 in
  let producer =
    Domain.spawn (fun () ->
        for i = 1 to total do
          Mpsc.push q i
        done;
        Mpsc.close q)
  in
  let next = ref 1 in
  let rec consume () =
    match Mpsc.pop q with
    | Some v ->
      Alcotest.(check int) "in order" !next v;
      incr next;
      consume ()
    | None -> ()
  in
  consume ();
  Domain.join producer;
  Alcotest.(check int) "all delivered" (total + 1) !next

(* Several producer domains hammering one consumer: per-producer FIFO
   must survive interleaving, and the multiset must be exact. *)
let multi_producer_stress () =
  let producers = 4 and per = 2_500 in
  let q = Mpsc.create 32 in
  let doms =
    List.init producers (fun p ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              Mpsc.push q (p, i)
            done))
  in
  let seen = Array.make producers 0 in
  let received = ref 0 in
  while !received < producers * per do
    match Mpsc.try_pop q with
    | Some (p, i) ->
      Alcotest.(check int) "per-producer fifo" seen.(p) i;
      seen.(p) <- i + 1;
      incr received
    | None -> Domain.cpu_relax ()
  done;
  List.iter Domain.join doms;
  Array.iteri
    (fun p c -> Alcotest.(check int) (Printf.sprintf "producer %d" p) per c)
    seen;
  Alcotest.(check (option (pair int int))) "drained" None (Mpsc.try_pop q)

let blocking_producers_released_by_close () =
  let q = Mpsc.create 2 in
  ignore (Mpsc.try_push q 0 : bool);
  ignore (Mpsc.try_push q 1 : bool);
  let blocked =
    Domain.spawn (fun () ->
        match Mpsc.push q 2 with
        | () -> `Pushed
        | exception Mpsc.Closed -> `Closed)
  in
  (* Give the producer a chance to reach the slow path, then close
     without ever draining: the waiter must wake with [Closed]. *)
  Unix.sleepf 0.05;
  Mpsc.close q;
  (match Domain.join blocked with
  | `Closed -> ()
  | `Pushed ->
    (* Legal too: the close raced the fast path retry before the queue
       filled — but the queue had no free slot, so it cannot happen. *)
    Alcotest.fail "push succeeded on a full closed queue");
  Alcotest.(check (option int)) "contents intact" (Some 0) (Mpsc.try_pop q)

(* [pop_run] must behave exactly like a [try_pop] loop: in-order, no
   loss, stop at empty or at [limit], leave the remainder poppable. *)
let pop_run_basics () =
  let q = Mpsc.create 8 in
  for i = 1 to 6 do
    ignore (Mpsc.try_push q i : bool)
  done;
  let got = ref [] in
  Alcotest.(check int) "limited run" 2
    (Mpsc.pop_run ~limit:2 q (fun v -> got := v :: !got));
  Alcotest.(check (list int)) "limit respects order" [ 1; 2 ] (List.rev !got);
  got := [];
  Alcotest.(check int) "drains the rest" 4
    (Mpsc.pop_run q (fun v -> got := v :: !got));
  Alcotest.(check (list int)) "rest in order" [ 3; 4; 5; 6 ] (List.rev !got);
  Alcotest.(check int) "empty run" 0 (Mpsc.pop_run q (fun _ -> assert false));
  Alcotest.(check int) "zero limit" 0
    (Mpsc.pop_run ~limit:0 q (fun _ -> assert false))

(* The engine's drain pattern under multi-producer fire: batch dequeue
   must lose nothing, reorder nothing, and keep per-producer FIFO —
   and because each slot's sequence is released as it is consumed,
   producers must be able to refill the ring behind the drain. *)
let pop_run_multi_producer () =
  let producers = 4 and per = 2_500 in
  let q = Mpsc.create 32 in
  let doms =
    List.init producers (fun p ->
        Domain.spawn (fun () ->
            for i = 0 to per - 1 do
              Mpsc.push q (p, i)
            done))
  in
  let seen = Array.make producers 0 in
  let received = ref 0 in
  while !received < producers * per do
    let n =
      Mpsc.pop_run q (fun (p, i) ->
          Alcotest.(check int) "per-producer fifo" seen.(p) i;
          seen.(p) <- i + 1;
          incr received)
    in
    if n = 0 then Domain.cpu_relax ()
  done;
  List.iter Domain.join doms;
  Array.iteri
    (fun p c -> Alcotest.(check int) (Printf.sprintf "producer %d" p) per c)
    seen;
  Alcotest.(check (option (pair int int))) "drained" None (Mpsc.try_pop q)

let pop_run_wakes_blocked_producer () =
  let q = Mpsc.create 2 in
  ignore (Mpsc.try_push q 0 : bool);
  ignore (Mpsc.try_push q 1 : bool);
  let blocked = Domain.spawn (fun () -> Mpsc.push q 2) in
  Unix.sleepf 0.05;
  let first = Mpsc.pop_run q ignore in
  Alcotest.(check bool) "drained something" true (first >= 1);
  Domain.join blocked;
  let rec settle () = if Mpsc.pop_run q ignore > 0 then settle () in
  settle ();
  Alcotest.(check int) "nothing lost, nothing left" 0 (Mpsc.length q)

(* The spin-then-park policy, observed through an instrumented park
   function: no park during the spin burst, then exponentially doubling
   pauses clamped at the cap, and [reset] restarting the cycle. *)
let backoff_policy () =
  let parked = ref [] in
  let b =
    Mpsc.Backoff.create ~spin_limit:4 ~park_min:0.001 ~park_max:0.004
      ~park:(fun d -> parked := d :: !parked)
      ()
  in
  for _ = 1 to 4 do
    Mpsc.Backoff.once b
  done;
  Alcotest.(check (list (float 0.0))) "spin burst never parks" [] !parked;
  for _ = 1 to 4 do
    Mpsc.Backoff.once b
  done;
  Alcotest.(check (list (float 0.0)))
    "parks double up to the cap"
    [ 0.001; 0.002; 0.004; 0.004 ]
    (List.rev !parked);
  Alcotest.(check int) "parks counted" 4 (Mpsc.Backoff.parks b);
  Mpsc.Backoff.reset b;
  parked := [];
  Mpsc.Backoff.once b;
  Alcotest.(check (list (float 0.0))) "reset restores the spin burst" [] !parked

let backoff_rejects_bad_args () =
  Alcotest.check_raises "negative spin limit"
    (Invalid_argument "Mpsc.Backoff.create: negative spin limit")
    (fun () ->
      ignore (Mpsc.Backoff.create ~spin_limit:(-1) () : Mpsc.Backoff.t));
  Alcotest.check_raises "bad park range"
    (Invalid_argument
       "Mpsc.Backoff.create: park bounds must satisfy 0 < min <= max")
    (fun () ->
      ignore
        (Mpsc.Backoff.create ~park_min:0.01 ~park_max:0.001 ()
          : Mpsc.Backoff.t))

let rejects_bad_capacity () =
  Alcotest.check_raises "zero"
    (Invalid_argument "Mpsc.create: capacity must be positive") (fun () ->
      ignore (Mpsc.create 0 : int Mpsc.t))

let tests =
  [
    Alcotest.test_case "fifo in one thread" `Quick seq_fifo;
    Alcotest.test_case "capacity is a hard bound" `Quick capacity_bound;
    Alcotest.test_case "ring wraps cleanly" `Quick wraparound;
    Alcotest.test_case "close semantics" `Quick close_semantics;
    Alcotest.test_case "cross-domain blocking fifo" `Quick cross_domain_fifo;
    Alcotest.test_case "multi-producer stress" `Quick multi_producer_stress;
    Alcotest.test_case "close releases blocked producers" `Quick
      blocking_producers_released_by_close;
    Alcotest.test_case "pop_run basics" `Quick pop_run_basics;
    Alcotest.test_case "pop_run multi-producer stress" `Quick
      pop_run_multi_producer;
    Alcotest.test_case "pop_run wakes blocked producers" `Quick
      pop_run_wakes_blocked_producer;
    Alcotest.test_case "backoff spin-then-park policy" `Quick backoff_policy;
    Alcotest.test_case "backoff rejects bad arguments" `Quick
      backoff_rejects_bad_args;
    Alcotest.test_case "rejects non-positive capacity" `Quick rejects_bad_capacity;
  ]
