(* Binary codecs: primitive round trips, per-ADT update round trips, and
   the frame-length ↔ update_wire_size agreement that makes the C1 byte
   accounting real. *)

open Helpers

let primitive_tests =
  [
    qtest "varint round-trips" QCheck2.Gen.(int_range 0 1_000_000_000) (fun n ->
        let w = Codec.Writer.create () in
        Codec.Writer.varint w n;
        Codec.Reader.varint (Codec.Reader.of_string (Codec.Writer.contents w)) = n);
    qtest "varint length matches Wire.varint_size" QCheck2.Gen.(int_range 0 10_000_000)
      (fun n ->
        let w = Codec.Writer.create () in
        Codec.Writer.varint w n;
        Codec.Writer.length w = Wire.varint_size n);
    qtest "byte_string round-trips" QCheck2.Gen.(string_size (int_range 0 40)) (fun s ->
        let w = Codec.Writer.create () in
        Codec.Writer.byte_string w s;
        Codec.Reader.byte_string (Codec.Reader.of_string (Codec.Writer.contents w)) = s);
    Alcotest.test_case "u8 bounds are enforced" `Quick (fun () ->
        let w = Codec.Writer.create () in
        Alcotest.check_raises "256" (Invalid_argument "Codec.Writer.u8: out of range")
          (fun () -> Codec.Writer.u8 w 256));
    Alcotest.test_case "truncated input raises Decode_error" `Quick (fun () ->
        let r = Codec.Reader.of_string "\x80" in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Codec.Reader.varint r);
             false
           with Codec.Decode_error _ -> true));
    Alcotest.test_case "sequenced fields read back in order" `Quick (fun () ->
        let w = Codec.Writer.create () in
        Codec.Writer.u8 w 7;
        Codec.Writer.varint w 300;
        Codec.Writer.byte_string w "ab";
        let r = Codec.Reader.of_string (Codec.Writer.contents w) in
        Alcotest.(check int) "u8" 7 (Codec.Reader.u8 r);
        Alcotest.(check int) "varint" 300 (Codec.Reader.varint r);
        Alcotest.(check string) "string" "ab" (Codec.Reader.byte_string r);
        Alcotest.(check bool) "consumed" true (Codec.Reader.at_end r));
  ]

(* Per-ADT: round trip + exact frame length, driven by each type's own
   generator. *)
let adt_case (type u) name
    (module A : Uqadt.S with type update = u)
    (module C : Update_codec.S with type update = u) =
  [
    qtest (name ^ " updates round-trip") seed_gen (fun seed ->
        let rng = Prng.create seed in
        let u = A.random_update rng in
        A.equal_update u (C.of_string (C.to_string u)));
    qtest (name ^ " frame length = update_wire_size") seed_gen (fun seed ->
        let rng = Prng.create seed in
        let u = A.random_update rng in
        String.length (C.to_string u) = A.update_wire_size u);
  ]

let adt_tests =
  List.concat
    [
      adt_case "set" (module Set_spec) (module Update_codec.For_set);
      adt_case "gset" (module Gset_spec) (module Update_codec.For_gset);
      adt_case "counter" (module Counter_spec) (module Update_codec.For_counter);
      adt_case "register" (module Register_spec) (module Update_codec.For_register);
      adt_case "memory" (module Memory_spec) (module Update_codec.For_memory);
      adt_case "maxreg" (module Maxreg_spec) (module Update_codec.For_maxreg);
      adt_case "flag" (module Flag_spec) (module Update_codec.For_flag);
      adt_case "log" (module Log_spec) (module Update_codec.For_log);
      adt_case "queue" (module Queue_spec) (module Update_codec.For_queue);
      adt_case "stack" (module Stack_spec) (module Update_codec.For_stack);
      adt_case "map" (module Map_spec) (module Update_codec.For_map);
      adt_case "text" (module Text_spec) (module Update_codec.For_text);
      adt_case "bank" (module Bank_spec) (module Update_codec.For_bank);
      adt_case "pqueue" (module Pqueue_spec) (module Update_codec.For_pqueue);
    ]

let negative_tests =
  [
    Alcotest.test_case "negative values survive the sign-bit tags" `Quick (fun () ->
        let u = Set_spec.Insert (-5) in
        Alcotest.(check bool) "round trip" true
          (Set_spec.equal_update u
             (Update_codec.For_set.of_string (Update_codec.For_set.to_string u))));
    Alcotest.test_case "unknown tags are rejected" `Quick (fun () ->
        Alcotest.(check bool) "raises" true
          (try
             ignore (Update_codec.For_set.of_string "\xff\x01");
             false
           with Codec.Decode_error _ -> true));
    Alcotest.test_case "trailing bytes are rejected" `Quick (fun () ->
        let frame = Update_codec.For_counter.to_string (Counter_spec.Add 3) ^ "\x00" in
        Alcotest.(check bool) "raises" true
          (try
             ignore (Update_codec.For_counter.of_string frame);
             false
           with Codec.Decode_error _ -> true));
  ]

let tests = primitive_tests @ adt_tests @ negative_tests
