(* uc_spec: every ADT instance obeys Definition 1's shape, its own
   sequential semantics, and its declared commutativity. *)

open Helpers

(* Generic laws every instance must satisfy. *)
let generic_laws (name, (module A : Uqadt.S)) =
  [
    qtest (name ^ ": queries do not change observable state") seed_gen (fun seed ->
        let rng = Prng.create seed in
        let module R = Uqadt.Run (A) in
        let state = R.exec_updates A.initial (List.init 5 (fun _ -> A.random_update rng)) in
        let q = A.random_query rng in
        let o1 = A.eval state q in
        (* evaluating twice gives the same output: G is a function *)
        A.equal_output o1 (A.eval state q));
    qtest (name ^ ": equal_update is reflexive") seed_gen (fun seed ->
        let rng = Prng.create seed in
        let u = A.random_update rng in
        A.equal_update u u);
    qtest (name ^ ": update_wire_size is positive") seed_gen (fun seed ->
        let rng = Prng.create seed in
        A.update_wire_size (A.random_update rng) > 0);
    qtest (name ^ ": declared commutativity holds on random pairs") seed_gen (fun seed ->
        let rng = Prng.create seed in
        let module R = Uqadt.Run (A) in
        let base = R.exec_updates A.initial (List.init 3 (fun _ -> A.random_update rng)) in
        let u1 = A.random_update rng and u2 = A.random_update rng in
        let ab = A.apply (A.apply base u1) u2 and ba = A.apply (A.apply base u2) u1 in
        (not A.commutative) || A.equal_state ab ba);
    qtest (name ^ ": singleton query sets are satisfiable") seed_gen (fun seed ->
        let rng = Prng.create seed in
        let module R = Uqadt.Run (A) in
        let state = R.exec_updates A.initial (List.init 4 (fun _ -> A.random_update rng)) in
        let q = A.random_query rng in
        A.satisfiable [ (q, A.eval state q) ]);
    qtest (name ^ ": consistent snapshots are jointly satisfiable") seed_gen (fun seed ->
        let rng = Prng.create seed in
        let module R = Uqadt.Run (A) in
        let state = R.exec_updates A.initial (List.init 4 (fun _ -> A.random_update rng)) in
        let pairs =
          List.init 3 (fun _ ->
              let q = A.random_query rng in
              (q, A.eval state q))
        in
        A.satisfiable pairs);
    qtest (name ^ ": recognizes its own executions") seed_gen (fun seed ->
        let rng = Prng.create seed in
        let module R = Uqadt.Run (A) in
        let rec build state i acc =
          if i = 0 then List.rev acc
          else if Prng.bool rng then begin
            let u = A.random_update rng in
            build (A.apply state u) (i - 1) (Uqadt.Update u :: acc)
          end
          else begin
            let q = A.random_query rng in
            build state (i - 1) (Uqadt.Query (q, A.eval state q) :: acc)
          end
        in
        R.recognizes (build A.initial 8 []));
  ]

(* Targeted semantics per instance. *)

let set_tests =
  let open Set_spec in
  [
    Alcotest.test_case "set: insert then read" `Quick (fun () ->
        let s = apply (apply initial (Insert 1)) (Insert 2) in
        Alcotest.(check bool) "has both" true
          (equal_output (eval s Read) (of_list [ 1; 2 ])));
    Alcotest.test_case "set: delete removes" `Quick (fun () ->
        let s = apply (apply initial (Insert 1)) (Delete 1) in
        Alcotest.(check bool) "empty" true (equal_output (eval s Read) (of_list [])));
    Alcotest.test_case "set: delete of absent is a no-op" `Quick (fun () ->
        let s = apply initial (Delete 9) in
        Alcotest.(check bool) "still initial" true (equal_state s initial));
    Alcotest.test_case "set: insert is idempotent" `Quick (fun () ->
        let s1 = apply initial (Insert 1) in
        Alcotest.(check bool) "same" true (equal_state s1 (apply s1 (Insert 1))));
    Alcotest.test_case "set: insert/delete do not commute" `Quick (fun () ->
        let a = apply (apply initial (Insert 1)) (Delete 1) in
        let b = apply (apply initial (Delete 1)) (Insert 1) in
        Alcotest.(check bool) "differ" false (equal_state a b));
    Alcotest.test_case "set: satisfiable iff equal reads" `Quick (fun () ->
        Alcotest.(check bool) "ok" true
          (satisfiable [ (Read, of_list [ 1 ]); (Read, of_list [ 1 ]) ]);
        Alcotest.(check bool) "not ok" false
          (satisfiable [ (Read, of_list [ 1 ]); (Read, of_list [ 2 ]) ]));
  ]

let register_and_memory_tests =
  [
    Alcotest.test_case "register: last write wins sequentially" `Quick (fun () ->
        let open Register_spec in
        let s = apply (apply initial (Write 3)) (Write 7) in
        Alcotest.(check int) "reads 7" 7 (eval s Read));
    Alcotest.test_case "memory: registers are independent" `Quick (fun () ->
        let open Memory_spec in
        let s = apply (apply initial (Write (0, 5))) (Write (1, 6)) in
        Alcotest.(check int) "r0" 5 (eval s (Read 0));
        Alcotest.(check int) "r1" 6 (eval s (Read 1));
        Alcotest.(check int) "unwritten" initial_value (eval s (Read 2)));
    Alcotest.test_case "memory: satisfiable respects keys" `Quick (fun () ->
        let open Memory_spec in
        Alcotest.(check bool) "different keys ok" true
          (satisfiable [ (Read 0, 1); (Read 1, 2) ]);
        Alcotest.(check bool) "same key conflict" false
          (satisfiable [ (Read 0, 1); (Read 0, 2) ]));
    Alcotest.test_case "maxreg: propose keeps the max" `Quick (fun () ->
        let open Maxreg_spec in
        let s = apply (apply (apply initial (Propose 5)) (Propose 2)) (Propose 9) in
        Alcotest.(check int) "max" 9 (eval s Read));
    Alcotest.test_case "flag: enable then disable reads false" `Quick (fun () ->
        let open Flag_spec in
        let s = apply (apply initial Enable) Disable in
        Alcotest.(check bool) "off" false (eval s Read));
  ]

let counter_tests =
  let open Counter_spec in
  [
    Alcotest.test_case "counter: adds accumulate" `Quick (fun () ->
        let s = apply (apply initial (Add 5)) (Add (-2)) in
        Alcotest.(check int) "3" 3 (eval s Value));
    qtest "counter: order of adds is irrelevant" QCheck2.Gen.(list (int_range (-5) 5))
      (fun xs ->
        let forward = List.fold_left (fun s n -> apply s (Add n)) initial xs in
        let backward = List.fold_left (fun s n -> apply s (Add n)) initial (List.rev xs) in
        equal_state forward backward);
  ]

let sequence_tests =
  [
    Alcotest.test_case "log: appends preserve order" `Quick (fun () ->
        let open Log_spec in
        let s = apply (apply initial (Append 1)) (Append 2) in
        Alcotest.(check (list int)) "order" [ 1; 2 ] (eval s Read));
    Alcotest.test_case "queue: FIFO order, dequeue drops the front" `Quick (fun () ->
        let open Queue_spec in
        let s = apply (apply (apply initial (Enqueue 1)) (Enqueue 2)) Dequeue in
        Alcotest.(check bool) "front is 2" true
          (equal_output (eval s Front) (Head (Some 2))));
    Alcotest.test_case "queue: dequeue on empty is a no-op" `Quick (fun () ->
        let open Queue_spec in
        Alcotest.(check bool) "still empty" true (equal_state (apply initial Dequeue) initial));
    Alcotest.test_case "stack: LIFO order, pop drops the top" `Quick (fun () ->
        let open Stack_spec in
        let s = apply (apply (apply initial (Push 1)) (Push 2)) Pop in
        Alcotest.(check bool) "top is 1" true (equal_output (eval s Top) (Peek (Some 1))));
    Alcotest.test_case "map: put/get/del/size" `Quick (fun () ->
        let open Map_spec in
        let s = apply (apply (apply initial (Put (1, 10))) (Put (2, 20))) (Del 1) in
        Alcotest.(check bool) "get 1 gone" true (equal_output (eval s (Get 1)) (Found None));
        Alcotest.(check bool) "get 2" true (equal_output (eval s (Get 2)) (Found (Some 20)));
        Alcotest.(check bool) "size" true (equal_output (eval s Size) (Count 1)));
    Alcotest.test_case "text: insert clamps position" `Quick (fun () ->
        let open Text_spec in
        let s = apply initial (Insert (100, 'x')) in
        Alcotest.(check string) "appended" "x" s);
    Alcotest.test_case "text: delete out of bounds is a no-op" `Quick (fun () ->
        let open Text_spec in
        Alcotest.(check string) "same" "ab"
          (apply (apply (apply initial (Insert (0, 'a'))) (Insert (1, 'b'))) (Delete 5)));
    Alcotest.test_case "text: middle insert and delete" `Quick (fun () ->
        let open Text_spec in
        let s =
          List.fold_left apply initial
            [ Insert (0, 'a'); Insert (1, 'c'); Insert (1, 'b'); Delete 0 ]
        in
        Alcotest.(check string) "bc" "bc" s);
  ]

let product_tests =
  let module P = Product.Make (Set_spec) (Counter_spec) in
  [
    Alcotest.test_case "product: components evolve independently" `Quick (fun () ->
        let s =
          List.fold_left P.apply P.initial
            [ Either.Left (Set_spec.Insert 1); Either.Right (Counter_spec.Add 5) ]
        in
        Alcotest.(check bool) "set side" true
          (P.equal_output (P.eval s (Either.Left Set_spec.Read))
             (Either.Left (Set_spec.of_list [ 1 ])));
        Alcotest.(check bool) "counter side" true
          (P.equal_output (P.eval s (Either.Right Counter_spec.Value)) (Either.Right 5)));
    Alcotest.test_case "product: commutative only if both are" `Quick (fun () ->
        let module C = Product.Make (Counter_spec) (Maxreg_spec) in
        let module N = Product.Make (Counter_spec) (Set_spec) in
        Alcotest.(check bool) "counter*maxreg" true C.commutative;
        Alcotest.(check bool) "counter*set" false N.commutative);
    Alcotest.test_case "product: satisfiable splits by side" `Quick (fun () ->
        Alcotest.(check bool) "consistent" true
          (P.satisfiable
             [
               (Either.Left Set_spec.Read, Either.Left (Set_spec.of_list [ 1 ]));
               (Either.Right Counter_spec.Value, Either.Right 3);
             ]);
        Alcotest.(check bool) "conflicting counter" false
          (P.satisfiable
             [
               (Either.Right Counter_spec.Value, Either.Right 3);
               (Either.Right Counter_spec.Value, Either.Right 4);
             ]));
  ]

let registry_tests =
  [
    Alcotest.test_case "registry: every name resolves" `Quick (fun () ->
        List.iter
          (fun name ->
            match Registry.find name with
            | Some (module A : Uqadt.S) ->
              Alcotest.(check string) "name matches" name A.name
            | None -> Alcotest.failf "%s missing" name)
          Registry.names);
    Alcotest.test_case "registry: unknown name is None" `Quick (fun () ->
        Alcotest.(check bool) "none" true (Registry.find "nosuch" = None));
  ]

let tests =
  List.concat_map generic_laws Registry.all
  @ set_tests @ register_and_memory_tests @ counter_tests @ sequence_tests
  @ product_tests @ registry_tests
