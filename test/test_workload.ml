(* Workload generators: the shapes the experiments rely on. *)

open Helpers

let count_ops script = List.length script

let count_queries script =
  List.length
    (List.filter
       (function Protocol.Invoke_query _ -> true | Protocol.Invoke_update _ -> false)
       script)

let tests =
  [
    qtest "mixed: width, length and query ratio" seed_gen (fun seed ->
        let rng = Prng.create seed in
        let module G = Workload.Make (Set_spec) in
        let w = G.mixed ~rng ~n:4 ~ops_per_process:50 ~query_ratio:0.5 in
        Array.length w = 4
        && Array.for_all (fun s -> count_ops s = 50) w
        &&
        let queries = Array.fold_left (fun acc s -> acc + count_queries s) 0 w in
        (* 200 coin flips at p=0.5: a loose 60–140 band *)
        queries > 60 && queries < 140);
    qtest "updates_only has no queries" seed_gen (fun seed ->
        let rng = Prng.create seed in
        let module G = Workload.Make (Counter_spec) in
        let w = G.updates_only ~rng ~n:3 ~ops_per_process:20 in
        Array.for_all (fun s -> count_queries s = 0) w);
    qtest "query_heavy: only process 0 updates" seed_gen (fun seed ->
        let rng = Prng.create seed in
        let module G = Workload.Make (Set_spec) in
        let w = G.query_heavy ~rng ~n:3 ~updates:10 ~queries_per_process:5 in
        count_ops w.(0) = 15
        && count_queries w.(0) = 5
        && count_queries w.(1) = 5
        && count_ops w.(1) = 5);
    qtest "set conflict workload stays in its domain" seed_gen (fun seed ->
        let rng = Prng.create seed in
        let w =
          Workload.For_set.conflict ~rng ~n:3 ~ops_per_process:30 ~domain:5 ~skew:1.0
            ~delete_ratio:0.3
        in
        Array.for_all
          (List.for_all (function
            | Protocol.Invoke_update (Set_spec.Insert v)
            | Protocol.Invoke_update (Set_spec.Delete v) ->
              1 <= v && v <= 5
            | Protocol.Invoke_query _ -> false))
          w);
    qtest "skew concentrates conflict on hot elements" seed_gen (fun seed ->
        let rng = Prng.create seed in
        let w =
          Workload.For_set.conflict ~rng ~n:2 ~ops_per_process:200 ~domain:50 ~skew:1.5
            ~delete_ratio:0.3
        in
        let hot = ref 0 and total = ref 0 in
        Array.iter
          (List.iter (function
            | Protocol.Invoke_update (Set_spec.Insert v)
            | Protocol.Invoke_update (Set_spec.Delete v) ->
              incr total;
              if v <= 3 then incr hot
            | Protocol.Invoke_query _ -> ()))
          w;
        (* Under Zipf(1.5) the top-3 of 50 carry well over a third. *)
        !hot * 3 > !total);
    Alcotest.test_case "insert_delete_race is the Fig.1b pattern" `Quick (fun () ->
        let w = Workload.For_set.insert_delete_race ~n:2 in
        Alcotest.(check int) "p0 ops" 3 (count_ops w.(0));
        (* insert own element, delete the other's, read *)
        match w.(0) with
        | [ Protocol.Invoke_update (Set_spec.Insert 0);
            Protocol.Invoke_update (Set_spec.Delete 1);
            Protocol.Invoke_query Set_spec.Read ] ->
          ()
        | _ -> Alcotest.fail "unexpected script shape");
    Alcotest.test_case "fig2 program matches the paper's Figure 2" `Quick (fun () ->
        let w = Workload.For_set.fig2_program () in
        Alcotest.(check int) "two processes" 2 (Array.length w);
        match (w.(0), w.(1)) with
        | ( Protocol.Invoke_update (Set_spec.Insert 1) :: _,
            Protocol.Invoke_update (Set_spec.Insert 2)
            :: Protocol.Invoke_update (Set_spec.Delete 3) :: _ ) ->
          ()
        | _ -> Alcotest.fail "unexpected program");
    qtest "memory workload respects register bound and read ratio" seed_gen (fun seed ->
        let rng = Prng.create seed in
        let w =
          Workload.For_memory.random_writes ~rng ~n:2 ~ops_per_process:100 ~registers:4
            ~read_ratio:0.25
        in
        Array.for_all
          (List.for_all (function
            | Protocol.Invoke_update (Memory_spec.Write (x, _)) -> 0 <= x && x < 4
            | Protocol.Invoke_query (Memory_spec.Read x) -> 0 <= x && x < 4))
          w);
    qtest "ledger increments_only is G-counter-safe" seed_gen (fun seed ->
        let rng = Prng.create seed in
        let w =
          Workload.For_counter.increments_only ~rng ~n:3 ~ops_per_process:20 ~max_amount:9
        in
        Array.for_all
          (List.for_all (function
            | Protocol.Invoke_update (Counter_spec.Add k) -> k > 0
            | Protocol.Invoke_query _ -> false))
          w);
    qtest "text editing stays within sane positions" seed_gen (fun seed ->
        let rng = Prng.create seed in
        let w = Workload.For_text.collaborative ~rng ~n:2 ~edits_per_process:30 in
        Array.for_all
          (List.for_all (function
            | Protocol.Invoke_update (Text_spec.Insert (p, _))
            | Protocol.Invoke_update (Text_spec.Delete p) ->
              0 <= p && p < 40
            | Protocol.Invoke_query _ -> false))
          w);
    qtest "set script codec round-trips every op" seed_gen (fun seed ->
        let rng = Prng.create seed in
        let ops =
          List.init 40 (fun _ ->
              match Prng.int rng 3 with
              | 0 -> Protocol.Invoke_update (Set_spec.Insert (Prng.int rng 100))
              | 1 -> Protocol.Invoke_update (Set_spec.Delete (Prng.int rng 100))
              | _ -> Protocol.Invoke_query Set_spec.Read)
        in
        List.for_all
          (fun op ->
            Workload.For_set.parse_op (Workload.For_set.print_op op) = Some op)
          ops);
    Alcotest.test_case "the codec rejects garbage" `Quick (fun () ->
        List.iter
          (fun s ->
            match Workload.For_set.parse_op s with
            | None -> ()
            | Some _ -> Alcotest.failf "parsed %S" s)
          [ ""; "X(3)"; "I()"; "I(x)"; "I(3"; "R(1)"; "insert 3"; "D" ]);
    Alcotest.test_case "flash-crowd plan is warm/spike/cool at base/peak/base" `Quick
      (fun () ->
        match Workload.Flash_crowd.plan ~base:0.5 ~peak:8.0 ~warm:30.0 ~spike:10.0 ~cool:40.0 with
        | [ w; s; c ] ->
          Alcotest.(check (float 0.0)) "warm rate" 0.5 w.Clients.rate;
          Alcotest.(check (float 0.0)) "warm duration" 30.0 w.Clients.duration;
          Alcotest.(check (float 0.0)) "spike rate" 8.0 s.Clients.rate;
          Alcotest.(check (float 0.0)) "spike duration" 10.0 s.Clients.duration;
          Alcotest.(check (float 0.0)) "cool rate" 0.5 c.Clients.rate;
          Alcotest.(check (float 0.0)) "cool duration" 40.0 c.Clients.duration
        | phases -> Alcotest.failf "expected 3 phases, got %d" (List.length phases));
    qtest "flash-crowd mix respects its ratios at the edges" seed_gen (fun seed ->
        let rng = Prng.create seed in
        let all_queries =
          Workload.Flash_crowd.set_mix ~domain:8 ~skew:1.0 ~delete_ratio:0.3
            ~query_ratio:1.0
        and no_queries =
          Workload.Flash_crowd.set_mix ~domain:8 ~skew:1.0 ~delete_ratio:0.3
            ~query_ratio:0.0
        in
        List.for_all
          (fun _ ->
            (match all_queries rng with
            | Protocol.Invoke_query Set_spec.Read -> true
            | Protocol.Invoke_update _ -> false)
            &&
            match no_queries rng with
            | Protocol.Invoke_update (Set_spec.Insert v)
            | Protocol.Invoke_update (Set_spec.Delete v) ->
              1 <= v && v <= 8
            | Protocol.Invoke_query _ -> false)
          (List.init 50 Fun.id));
  ]
