(* The bank ADT: overdraft protection as a linearization-invariant, and
   what it buys under replication — Algorithm 1 preserves it on every
   replica, while a commutative balance (PN-counter) cannot. *)

open Helpers

module Bank = Generic.Make (Bank_spec)
module R = Runner.Make (Bank)
module Run = Uqadt.Run (Bank_spec)

let no_overdraft state =
  Support.Int_map.for_all (fun _ b -> b >= 0) state

let sequential_tests =
  [
    Alcotest.test_case "withdraw is refused on insufficient funds" `Quick (fun () ->
        let s = Run.exec_updates Bank_spec.initial [ Bank_spec.Withdraw (0, 10) ] in
        Alcotest.(check int) "still 0" 0 (Bank_spec.balance s 0));
    Alcotest.test_case "transfer moves money exactly once" `Quick (fun () ->
        let s =
          Run.exec_updates Bank_spec.initial
            [ Bank_spec.Deposit (0, 100); Bank_spec.Transfer (0, 1, 30) ]
        in
        Alcotest.(check int) "src" 70 (Bank_spec.balance s 0);
        Alcotest.(check int) "dst" 30 (Bank_spec.balance s 1);
        Alcotest.(check int) "total" 100 (Bank_spec.eval s Bank_spec.Total));
    Alcotest.test_case "self-transfer is a no-op" `Quick (fun () ->
        let s =
          Run.exec_updates Bank_spec.initial
            [ Bank_spec.Deposit (0, 50); Bank_spec.Transfer (0, 0, 20) ]
        in
        Alcotest.(check int) "unchanged" 50 (Bank_spec.balance s 0));
    qtest "balances never go negative in any sequential run" seed_gen (fun seed ->
        let rng = Prng.create seed in
        let rec go s i = i = 0 || (no_overdraft s && go (Bank_spec.apply s (Bank_spec.random_update rng)) (i - 1)) in
        go Bank_spec.initial 40);
    qtest "deposits and transfers conserve the total" seed_gen (fun seed ->
        let rng = Prng.create seed in
        (* only transfers after an initial deposit: total invariant *)
        let s0 = Bank_spec.apply Bank_spec.initial (Bank_spec.Deposit (0, 1000)) in
        let rec go s i =
          if i = 0 then Bank_spec.eval s Bank_spec.Total = 1000
          else begin
            let t = Bank_spec.Transfer (Prng.int rng 3, Prng.int rng 3, 1 + Prng.int rng 50) in
            go (Bank_spec.apply s t) (i - 1)
          end
        in
        go s0 30);
    Alcotest.test_case "satisfiable: total must cover named balances" `Quick (fun () ->
        Alcotest.(check bool) "covers" true
          (Bank_spec.satisfiable
             [ (Bank_spec.Balance 0, 10); (Bank_spec.Balance 1, 5); (Bank_spec.Total, 20) ]);
        Alcotest.(check bool) "cannot cover" false
          (Bank_spec.satisfiable
             [ (Bank_spec.Balance 0, 10); (Bank_spec.Balance 1, 5); (Bank_spec.Total, 12) ]);
        Alcotest.(check bool) "negative balance impossible" false
          (Bank_spec.satisfiable [ (Bank_spec.Balance 0, -1) ]));
  ]

let bank_workload rng ~n ~ops =
  Array.init n (fun _ ->
      Protocol.Invoke_update (Bank_spec.Deposit (0, 100))
      :: List.init ops (fun _ -> Protocol.Invoke_update (Bank_spec.random_update rng)))

let replicated_tests =
  [
    qtest ~count:30 "replicated bank converges with no overdrafts anywhere" seed_gen
      (fun seed ->
        let rng = Prng.create seed in
        let workload = bank_workload rng ~n:3 ~ops:15 in
        let config =
          { (R.default_config ~n:3 ~seed) with R.final_read = Some Bank_spec.Total }
        in
        let r = R.run config ~workload in
        let state_of cert = Run.final_state (List.map snd cert) in
        r.R.converged
        && List.for_all (fun (_, cert) -> no_overdraft (state_of cert)) r.R.certificates);
    qtest ~count:15 "replicated bank histories are UC" seed_gen (fun seed ->
        let rng = Prng.create seed in
        let workload = bank_workload rng ~n:2 ~ops:2 in
        let config =
          { (R.default_config ~n:2 ~seed) with R.final_read = Some Bank_spec.Total }
        in
        let r = R.run config ~workload in
        let module C = Criteria.Make (Bank_spec) in
        C.holds Criteria.UC r.R.history);
    Alcotest.test_case "a commutative balance goes negative where the bank cannot" `Quick
      (fun () ->
        (* Two branches each withdraw 80 from a 100 balance, concurrently.
           A PN-counter balance applies both: -60. The update-consistent
           bank refuses the second withdrawal in the agreed order. *)
        let module Cnt = Runner.Make (Counters.Pncounter) in
        let config =
          {
            (Cnt.default_config ~n:2 ~seed:1) with
            Cnt.delay = Network.Constant 50.0;
            think = Network.Constant 1.0;
            final_read = Some Counter_spec.Value;
          }
        in
        let counter_run =
          Cnt.run config
            ~workload:
              [|
                [
                  Protocol.Invoke_update (Counter_spec.Add 100);
                  Protocol.Invoke_update (Counter_spec.Add (-80));
                ];
                [ Protocol.Invoke_update (Counter_spec.Add (-80)) ];
              |]
        in
        List.iter
          (fun (_, v) -> Alcotest.(check bool) "overdrawn" true (v < 0))
          counter_run.Cnt.final_outputs;
        let config =
          {
            (R.default_config ~n:2 ~seed:1) with
            R.delay = Network.Constant 50.0;
            think = Network.Constant 1.0;
            final_read = Some (Bank_spec.Balance 0);
          }
        in
        let bank_run =
          R.run config
            ~workload:
              [|
                [
                  Protocol.Invoke_update (Bank_spec.Deposit (0, 100));
                  Protocol.Invoke_update (Bank_spec.Withdraw (0, 80));
                ];
                [ Protocol.Invoke_update (Bank_spec.Withdraw (0, 80)) ];
              |]
        in
        Alcotest.(check bool) "bank converged" true bank_run.R.converged;
        List.iter
          (fun (_, v) -> Alcotest.(check bool) "no overdraft" true (v >= 0))
          bank_run.R.final_outputs);
  ]

let tests = sequential_tests @ replicated_tests
