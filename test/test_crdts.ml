(* The CRDT baselines of Section VI: convergence under adversarial
   delays, each design's signature conflict semantics, and the causal
   delivery substrate. *)

open Helpers

let dummy_ctx ?(n = 2) pid : _ Protocol.ctx =
  {
    Protocol.pid;
    n;
    now = (fun () -> 0.0);
    send = (fun ~dst:_ _ -> ());
    broadcast = ignore;
    broadcast_batch = ignore;
    set_timer = (fun ~delay:_ _ -> ());
    count_replay = ignore;
    obs = None;
  }

(* Convergence of every set CRDT on random conflict-heavy runs. *)
let set_convergence =
  let protocols :
      (string
      * (module Protocol.PROTOCOL
           with type update = Set_spec.update
            and type query = Set_spec.query
            and type output = Set_spec.output))
      list =
    [
      ("or-set", (module Orset_crdt));
      ("2p-set", (module Twopset_crdt.Protocol_impl));
      ("lww-set", (module Lwwset_crdt));
      ("pn-set", (module Pnset_crdt));
    ]
  in
  List.map
    (fun (name, (module P : Protocol.PROTOCOL
                  with type update = Set_spec.update
                   and type query = Set_spec.query
                   and type output = Set_spec.output)) ->
      qtest ~count:25 (name ^ " converges on random conflict workloads") seed_gen
        (fun seed ->
          let module R = Runner.Make (P) in
          let rng = Prng.create seed in
          let workload =
            Workload.For_set.conflict ~rng ~n:3 ~ops_per_process:20 ~domain:6 ~skew:1.0
              ~delete_ratio:0.4
          in
          let config =
            { (R.default_config ~n:3 ~seed) with R.final_read = Some Set_spec.Read }
          in
          (R.run config ~workload).R.converged))
    protocols

(* Run a deterministic two-process crossing: both processes issue their
   ops before anything is delivered. *)
let crossed (module P : Protocol.PROTOCOL
              with type update = Set_spec.update
               and type query = Set_spec.query
               and type output = Set_spec.output) scripts =
  let module R = Runner.Make (P) in
  let config =
    {
      (R.default_config ~n:2 ~seed:1) with
      R.delay = Network.Constant 100.0;
      think = Network.Constant 1.0;
      final_read = Some Set_spec.Read;
    }
  in
  let r = R.run config ~workload:scripts in
  (List.map snd r.R.final_outputs, r.R.converged)

let upd u = Protocol.Invoke_update u

let semantics_tests =
  [
    Alcotest.test_case "or-set: concurrent insert beats delete" `Quick (fun () ->
        (* p0 deletes 1 (observing p?) while p1 re-inserts 1 concurrently:
           the unobserved insert survives. *)
        let outs, converged =
          crossed (module Orset_crdt)
            [|
              [ upd (Set_spec.Insert 1); upd (Set_spec.Delete 1) ];
              [ upd (Set_spec.Insert 1) ];
            |]
        in
        Alcotest.(check bool) "converged" true converged;
        List.iter
          (fun o ->
            Alcotest.(check bool) "1 present" true (Support.Int_set.mem 1 o))
          outs);
    Alcotest.test_case "or-set: observed delete removes" `Quick (fun () ->
        let module R = Runner.Make (Orset_crdt) in
        (* Sequential on one process: delete observes the insert. *)
        let config = { (R.default_config ~n:2 ~seed:1) with R.final_read = Some Set_spec.Read } in
        let r =
          R.run config
            ~workload:[| [ upd (Set_spec.Insert 1); upd (Set_spec.Delete 1) ]; [] |]
        in
        List.iter
          (fun (_, o) -> Alcotest.(check bool) "gone" false (Support.Int_set.mem 1 o))
          r.R.final_outputs);
    Alcotest.test_case "2p-set: an element never returns" `Quick (fun () ->
        let outs, _ =
          crossed (module Twopset_crdt.Protocol_impl)
            [|
              [ upd (Set_spec.Insert 1); upd (Set_spec.Delete 1); upd (Set_spec.Insert 1) ];
              [];
            |]
        in
        List.iter
          (fun o -> Alcotest.(check bool) "tombstoned" false (Support.Int_set.mem 1 o))
          outs);
    Alcotest.test_case "pn-set: delete of absent poisons a later insert" `Quick (fun () ->
        let outs, _ =
          crossed (module Pnset_crdt)
            [|
              [ upd (Set_spec.Delete 1); upd (Set_spec.Insert 1) ];
              [ upd (Set_spec.Delete 1) ];
            |]
        in
        (* counter = -1 + 1 + -1 < 1: absent everywhere, even though a
           sequential set would end with the last insert present or not
           depending on order — the anomaly Section VI surveys. *)
        List.iter
          (fun o -> Alcotest.(check bool) "absent" false (Support.Int_set.mem 1 o))
          outs);
    Alcotest.test_case "lww-set: later timestamp wins per element" `Quick (fun () ->
        let module R = Runner.Make (Lwwset_crdt) in
        let config =
          {
            (R.default_config ~n:2 ~seed:1) with
            R.delay = Network.Constant 5.0;
            think = Network.Constant 20.0;
            final_read = Some Set_spec.Read;
          }
        in
        (* p1's delete happens after it has received p0's insert, so its
           Lamport timestamp is larger: delete wins everywhere. *)
        let r =
          R.run config
            ~workload:[| [ upd (Set_spec.Insert 1) ]; [ upd (Set_spec.Delete 1) ] |]
        in
        Alcotest.(check bool) "converged" true r.R.converged);
    Alcotest.test_case "g-set: pure union, always converges" `Quick (fun () ->
        let module R = Runner.Make (Gset_crdt.Protocol_impl) in
        let config = { (R.default_config ~n:3 ~seed:4) with R.final_read = Some Gset_spec.Read } in
        let workload =
          Array.init 3 (fun p -> [ Protocol.Invoke_update (Gset_spec.Insert p) ])
        in
        let r = R.run config ~workload in
        Alcotest.(check bool) "converged" true r.R.converged;
        List.iter
          (fun (_, o) -> Alcotest.(check int) "all three" 3 (Support.Int_set.cardinal o))
          r.R.final_outputs);
  ]

let counter_register_tests =
  [
    qtest ~count:25 "g-counter converges to the true sum" seed_gen (fun seed ->
        let module R = Runner.Make (Counters.Gcounter) in
        let rng = Prng.create seed in
        let workload =
          Workload.For_counter.increments_only ~rng ~n:3 ~ops_per_process:10 ~max_amount:9
        in
        let expected =
          Array.fold_left
            (fun acc script ->
              List.fold_left
                (fun acc action ->
                  match action with
                  | Protocol.Invoke_update (Counter_spec.Add k) -> acc + k
                  | Protocol.Invoke_query _ -> acc)
                acc script)
            0 workload
        in
        let config = { (R.default_config ~n:3 ~seed) with R.final_read = Some Counter_spec.Value } in
        let r = R.run config ~workload in
        r.R.converged && List.for_all (fun (_, v) -> v = expected) r.R.final_outputs);
    qtest ~count:25 "pn-counter converges to the signed sum" seed_gen (fun seed ->
        let module R = Runner.Make (Counters.Pncounter) in
        let rng = Prng.create seed in
        let workload =
          Workload.For_counter.deposits_and_withdrawals ~rng ~n:3 ~ops_per_process:10
            ~max_amount:50
        in
        let expected =
          Array.fold_left
            (fun acc script ->
              List.fold_left
                (fun acc action ->
                  match action with
                  | Protocol.Invoke_update (Counter_spec.Add k) -> acc + k
                  | Protocol.Invoke_query _ -> acc)
                acc script)
            0 workload
        in
        let config = { (R.default_config ~n:3 ~seed) with R.final_read = Some Counter_spec.Value } in
        let r = R.run config ~workload in
        r.R.converged && List.for_all (fun (_, v) -> v = expected) r.R.final_outputs);
    qtest ~count:25 "lww-register converges" seed_gen (fun seed ->
        let module R = Runner.Make (Registers.Lwwreg) in
        let rng = Prng.create seed in
        let module G = Workload.Make (Register_spec) in
        let workload = G.updates_only ~rng ~n:3 ~ops_per_process:8 in
        let config = { (R.default_config ~n:3 ~seed) with R.final_read = Some Register_spec.Read } in
        (R.run config ~workload).R.converged);
    Alcotest.test_case "mv-register keeps concurrent writes apart" `Quick (fun () ->
        let module R = Runner.Make (Registers.Mvreg) in
        let config =
          {
            (R.default_config ~n:2 ~seed:1) with
            R.delay = Network.Constant 100.0;
            think = Network.Constant 1.0;
            final_read = Some Register_spec.Read;
          }
        in
        let r =
          R.run config
            ~workload:
              [|
                [ Protocol.Invoke_update (Register_spec.Write 1) ];
                [ Protocol.Invoke_update (Register_spec.Write 2) ];
              |]
        in
        Alcotest.(check bool) "converged" true r.R.converged;
        List.iter
          (fun (_, o) ->
            Alcotest.(check bool) "both values" true
              (Support.Int_set.equal o (Support.Int_set.of_list [ 1; 2 ])))
          r.R.final_outputs);
    Alcotest.test_case "mv-register: a later write subsumes what it saw" `Quick (fun () ->
        let module R = Runner.Make (Registers.Mvreg) in
        let config =
          {
            (R.default_config ~n:2 ~seed:1) with
            R.delay = Network.Constant 2.0;
            think = Network.Constant 20.0;
            final_read = Some Register_spec.Read;
          }
        in
        let r =
          R.run config
            ~workload:
              [|
                [ Protocol.Invoke_update (Register_spec.Write 1) ];
                [
                  (* the read stalls p1 one think-time, so its write
                     happens after p0's has arrived *)
                  Protocol.Invoke_query Register_spec.Read;
                  Protocol.Invoke_update (Register_spec.Write 2);
                ];
              |]
        in
        (* p1 writes after receiving p0's write: single survivor. *)
        List.iter
          (fun (_, o) -> Alcotest.(check int) "singleton" 1 (Support.Int_set.cardinal o))
          r.R.final_outputs);
  ]

let causal_tests =
  [
    Alcotest.test_case "in-order messages deliver immediately" `Quick (fun () ->
        let c = Causal.create ~n:2 ~pid:1 in
        let sender = Causal.create ~n:2 ~pid:0 in
        let vc1 = Causal.stamp sender in
        let delivered = Causal.receive c ~src:0 vc1 "a" in
        Alcotest.(check (list (pair int string))) "a" [ (0, "a") ] delivered);
    Alcotest.test_case "a gap holds messages back, then releases in order" `Quick
      (fun () ->
        let sender = Causal.create ~n:2 ~pid:0 in
        let vc1 = Causal.stamp sender in
        let vc2 = Causal.stamp sender in
        let receiver = Causal.create ~n:2 ~pid:1 in
        (* Second message first: buffered. *)
        Alcotest.(check (list (pair int string))) "held" []
          (Causal.receive receiver ~src:0 vc2 "second");
        Alcotest.(check int) "pending" 1 (Causal.pending receiver);
        (* First arrives: both released, in causal order. *)
        Alcotest.(check (list (pair int string)))
          "released" [ (0, "first"); (0, "second") ]
          (Causal.receive receiver ~src:0 vc1 "first"));
    Alcotest.test_case "cross-sender dependencies are respected" `Quick (fun () ->
        let a = Causal.create ~n:3 ~pid:0 in
        let vca = Causal.stamp a in
        (* b saw a's message before sending. *)
        let b = Causal.create ~n:3 ~pid:1 in
        let (_ : (int * string) list) = Causal.receive b ~src:0 vca "from-a" in
        let vcb = Causal.stamp b in
        let c = Causal.create ~n:3 ~pid:2 in
        (* b's message arrives first but depends on a's. *)
        Alcotest.(check (list (pair int string))) "held" []
          (Causal.receive c ~src:1 vcb "from-b");
        Alcotest.(check (list (pair int string)))
          "both, a first" [ (0, "from-a"); (1, "from-b") ]
          (Causal.receive c ~src:0 vca "from-a"));
    qtest ~count:30 "or-set leaves no pending messages at quiescence" seed_gen
      (fun seed ->
        let module R = Runner.Make (Orset_crdt) in
        let rng = Prng.create seed in
        let workload =
          Workload.For_set.conflict ~rng ~n:3 ~ops_per_process:15 ~domain:5 ~skew:0.8
            ~delete_ratio:0.4
        in
        let config = { (R.default_config ~n:3 ~seed) with R.final_read = Some Set_spec.Read } in
        (* Convergence of the final reads is only possible if the causal
           buffers fully drained. *)
        (R.run config ~workload).R.converged);
  ]

let orset_unit_tests =
  [
    Alcotest.test_case "or-set unit: local add/remove cycle" `Quick (fun () ->
        let r = Orset_crdt.create (dummy_ctx 0) in
        Orset_crdt.update r (Set_spec.Insert 5) ~on_done:ignore;
        Alcotest.(check int) "one tag" 1 (Orset_crdt.live_tags r);
        Orset_crdt.update r (Set_spec.Insert 5) ~on_done:ignore;
        Alcotest.(check int) "two tags" 2 (Orset_crdt.live_tags r);
        Orset_crdt.update r (Set_spec.Delete 5) ~on_done:ignore;
        Alcotest.(check int) "all observed tags gone" 0 (Orset_crdt.live_tags r));
    Alcotest.test_case "pn-set unit: counters go negative" `Quick (fun () ->
        let r = Pnset_crdt.create (dummy_ctx 0) in
        Pnset_crdt.update r (Set_spec.Delete 3) ~on_done:ignore;
        Alcotest.(check int) "-1" (-1) (Pnset_crdt.count r 3));
  ]

let tests =
  set_convergence @ semantics_tests @ counter_register_tests @ causal_tests @ orset_unit_tests
