(* The telemetry layer: JSON codec round trips, registry semantics,
   span aggregation, and end-to-end checks on instrumented Runner runs
   — the trace export golden test and the convergence probe under a
   healing partition. *)

module Json = Obs.Json
module Registry = Obs.Registry
module Span = Obs.Span

(* ------------------------------ Json ------------------------------ *)

let sample_json =
  Json.Obj
    [
      ("name", Json.Str "run");
      ("ok", Json.Bool true);
      ("missing", Json.Null);
      ("count", Json.Num 42.0);
      ("ratio", Json.Num 0.125);
      ( "rows",
        Json.Arr
          [ Json.Num 1.0; Json.Str "a\"b\\c\n"; Json.Obj []; Json.Arr [] ] );
    ]

let json_tests =
  [
    Alcotest.test_case "print/parse round trip" `Quick (fun () ->
        let compact = Json.of_string (Json.to_string sample_json) in
        let pretty = Json.of_string (Json.to_string ~pretty:true sample_json) in
        Alcotest.(check bool) "compact" true (compact = sample_json);
        Alcotest.(check bool) "pretty" true (pretty = sample_json));
    Alcotest.test_case "integral numbers print without a fraction" `Quick
      (fun () ->
        Alcotest.(check string) "int" "42" (Json.to_string (Json.Num 42.0));
        Alcotest.(check string) "frac" "0.5" (Json.to_string (Json.Num 0.5)));
    Alcotest.test_case "string escapes parse" `Quick (fun () ->
        let v = Json.of_string {|"aé\n\t\"b\""|} in
        Alcotest.(check bool) "decoded" true
          (v = Json.Str "a\xc3\xa9\n\t\"b\""));
    Alcotest.test_case "malformed input raises Parse_error" `Quick (fun () ->
        List.iter
          (fun s ->
            match Json.of_string s with
            | exception Json.Parse_error _ -> ()
            | _ -> Alcotest.failf "parsed %S" s)
          [ "{"; "[1,]"; "nul"; "1 2"; "\"unterminated"; "{\"a\" 1}" ]);
    Alcotest.test_case "accessors are total" `Quick (fun () ->
        Alcotest.(check (option int))
          "count" (Some 42)
          (Option.bind (Json.member "count" sample_json) Json.get_int);
        Alcotest.(check (option string))
          "name" (Some "run")
          (Option.bind (Json.member "name" sample_json) Json.get_str);
        Alcotest.(check bool) "missing field" true
          (Json.member "nope" sample_json = None);
        Alcotest.(check bool) "member of non-object" true
          (Json.member "x" (Json.Num 1.0) = None));
  ]

(* ---------------------------- Registry ---------------------------- *)

let registry_tests =
  [
    Alcotest.test_case "registration is find-or-create" `Quick (fun () ->
        let r = Registry.create () in
        let c1 = Registry.counter r ~labels:[ ("pid", "0") ] "msgs" in
        let c2 = Registry.counter r ~labels:[ ("pid", "0") ] "msgs" in
        Registry.inc c1;
        Registry.inc ~by:2 c2;
        Alcotest.(check int) "one series" 3 (Registry.counter_value c1);
        Alcotest.(check int) "one row" 1 (List.length (Registry.rows r)));
    Alcotest.test_case "kind clash is rejected" `Quick (fun () ->
        let r = Registry.create () in
        let (_ : Registry.counter) = Registry.counter r "x" in
        match Registry.gauge r "x" with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "gauge over counter accepted");
    Alcotest.test_case "rows sort by name then numeric label" `Quick (fun () ->
        let r = Registry.create () in
        List.iter
          (fun pid ->
            Registry.inc
              (Registry.counter r ~labels:[ ("pid", string_of_int pid) ] "m"))
          [ 10; 2; 1 ];
        Registry.set (Registry.gauge r "a_gauge") 1.0;
        let names =
          List.map
            (fun (row : Registry.row) -> (row.name, row.labels))
            (Registry.rows r)
        in
        Alcotest.(check bool) "order" true
          (names
          = [
              ("a_gauge", []);
              ("m", [ ("pid", "1") ]);
              ("m", [ ("pid", "2") ]);
              ("m", [ ("pid", "10") ]);
            ]));
    Alcotest.test_case "histograms summarize and bucket by powers of two"
      `Quick (fun () ->
        let r = Registry.create () in
        let h = Registry.hist r "lat" in
        List.iter (Registry.observe h) [ 1.0; 3.0; 3.0; 5.0; 0.0 ];
        match Registry.rows r with
        | [ { data = Registry.Histogram d; _ } ] ->
          Alcotest.(check int) "count" 5 d.Registry.count;
          Alcotest.(check (float 1e-9)) "sum" 12.0 d.Registry.sum;
          Alcotest.(check (float 1e-9)) "max" 5.0 d.Registry.max;
          (* 0.0 pools under le=0; 1.0 under 1; 3.0×2 under 4; 5.0 under 8 *)
          Alcotest.(check bool) "buckets" true
            (d.Registry.buckets
            = [ (0.0, 1); (1.0, 1); (4.0, 2); (8.0, 1) ])
        | _ -> Alcotest.fail "expected one histogram row");
    Alcotest.test_case "dump JSON round-trips through rows_of_json" `Quick
      (fun () ->
        let r = Registry.create () in
        Registry.inc ~by:7 (Registry.counter r ~labels:[ ("pid", "3") ] "msgs");
        Registry.set (Registry.gauge r "div") 2.0;
        let h = Registry.hist r ~labels:[ ("pid", "3") ] "lat" in
        List.iter (Registry.observe h) [ 0.5; 2.0; 8.0 ];
        let rows = Registry.rows r in
        let back = Registry.rows_of_json (Registry.to_json r) in
        Alcotest.(check bool) "identical rows" true (rows = back);
        (* and through the printer, as [ucsim report] does *)
        let reparsed =
          Registry.rows_of_json
            (Json.of_string (Json.to_string ~pretty:true (Registry.to_json r)))
        in
        Alcotest.(check bool) "identical after print/parse" true
          (rows = reparsed));
    Alcotest.test_case "rows_of_json rejects non-dumps" `Quick (fun () ->
        List.iter
          (fun j ->
            match Registry.rows_of_json j with
            | exception Failure _ -> ()
            | _ -> Alcotest.fail "accepted a non-dump")
          [ Json.Null; Json.Obj [ ("metrics", Json.Num 1.0) ] ]);
    (* Sharded collection: each domain writes a private shard, the
       coordinator merges — counters add, gauges keep the high-water
       mark, histogram samples pool. *)
    Alcotest.test_case "shard/merge folds per-domain registries" `Quick
      (fun () ->
        let parent = Registry.create () in
        let s0 = Registry.shard parent and s1 = Registry.shard parent in
        Registry.inc ~by:3 (Registry.counter s0 ~labels:[ ("pid", "0") ] "ops");
        Registry.inc ~by:4 (Registry.counter s1 ~labels:[ ("pid", "1") ] "ops");
        Registry.inc ~by:5 (Registry.counter s0 "total");
        Registry.inc ~by:6 (Registry.counter s1 "total");
        Registry.set (Registry.gauge s0 "depth") 9.0;
        Registry.set (Registry.gauge s1 "depth") 2.0;
        List.iter (Registry.observe (Registry.hist s0 "lat")) [ 1.0; 3.0 ];
        List.iter (Registry.observe (Registry.hist s1 "lat")) [ 5.0 ];
        Registry.merge ~into:parent s0;
        Registry.merge ~into:parent s1;
        Alcotest.(check int) "counters add" 11
          (Registry.counter_value (Registry.counter parent "total"));
        Alcotest.(check int) "labelled series kept apart" 3
          (Registry.counter_value
             (Registry.counter parent ~labels:[ ("pid", "0") ] "ops"));
        Alcotest.(check int) "hist samples pool" 3
          (Registry.hist_count (Registry.hist parent "lat"));
        match
          List.find
            (fun (row : Registry.row) -> row.name = "depth")
            (Registry.rows parent)
        with
        | { data = Registry.Value v; _ } ->
          Alcotest.(check (float 1e-9)) "gauges keep the max" 9.0 v
        | _ -> Alcotest.fail "depth gauge missing");
    (* [ucsim report a.json b.json]: dump-level merge, golden bytes so
       the rendered table is pinned. *)
    Alcotest.test_case "merge_rows merges dumps (golden bytes)" `Quick
      (fun () ->
        let dump inc_by gauge_v samples =
          let r = Registry.create () in
          Registry.inc ~by:inc_by
            (Registry.counter r ~labels:[ ("pid", "0") ] "msgs");
          Registry.set (Registry.gauge r "depth") gauge_v;
          List.iter (Registry.observe (Registry.hist r "lat")) samples;
          Registry.rows_of_json (Registry.to_json r)
        in
        let merged =
          Registry.merge_rows
            [ dump 7 3.0 [ 1.0; 3.0; 3.0 ]; dump 5 8.0 [ 0.5; 5.0 ] ]
        in
        let rendered = Format.asprintf "%a" Registry.pp_rows merged in
        Alcotest.(check string) "golden table"
          "depth        8\n\
           lat          count=5 mean=2.500 p50=4.000 p90=8.000 p99=8.000 \
           max=5.000\n\
           msgs{pid=0}  12\n"
          rendered);
    Alcotest.test_case "merge_rows rejects kind clashes" `Quick (fun () ->
        let counter_dump =
          let r = Registry.create () in
          Registry.inc (Registry.counter r "x");
          Registry.rows_of_json (Registry.to_json r)
        in
        let gauge_dump =
          let r = Registry.create () in
          Registry.set (Registry.gauge r "x") 1.0;
          Registry.rows_of_json (Registry.to_json r)
        in
        match Registry.merge_rows [ counter_dump; gauge_dump ] with
        | exception Failure _ -> ()
        | _ -> Alcotest.fail "conflicting kinds merged");
  ]

(* ------------------------------ Span ------------------------------ *)

let span_tests =
  [
    Alcotest.test_case "visibility is the slowest live apply" `Quick (fun () ->
        let t = Span.create () in
        let s = Span.fresh t ~pid:0 ~time:1.0 ~label:"ins 1" in
        Span.record_apply t ~span:(Some s) ~pid:0 ~time:1.0;
        Span.record_send t ~span:(Some s) ~src:0 ~time:1.0;
        Span.record_deliver t ~span:(Some s) ~src:0 ~dst:1 ~sent:1.0
          ~received:4.0;
        Span.record_apply t ~span:(Some s) ~pid:1 ~time:4.0;
        Span.record_deliver t ~span:(Some s) ~src:0 ~dst:2 ~sent:1.0
          ~received:7.5;
        Span.record_apply t ~span:(Some s) ~pid:2 ~time:7.5;
        (match Span.visibility t ~live:[ 0; 1; 2 ] with
        | [ (info, Some lag) ] ->
          Alcotest.(check int) "origin" 0 info.Span.origin;
          Alcotest.(check (float 1e-9)) "lag" 6.5 lag
        | _ -> Alcotest.fail "expected one visible span");
        (* a live replica that never applied makes the span invisible *)
        match Span.visibility t ~live:[ 0; 1; 2; 3 ] with
        | [ (_, None) ] -> ()
        | _ -> Alcotest.fail "expected an invisible span");
    Alcotest.test_case "ambient span installs and clears" `Quick (fun () ->
        let t = Span.create () in
        Alcotest.(check bool) "empty" true (Span.active t = None);
        Span.set_active t (Some 3);
        Alcotest.(check bool) "set" true (Span.active t = Some 3);
        Span.set_active t None;
        Alcotest.(check bool) "cleared" true (Span.active t = None));
  ]

(* -------------------- instrumented Runner runs -------------------- *)

module P = Generic.Make (Set_spec)
module R = Runner.Make (P)

let run_instrumented ~seed ~n ~partitions ~probe_interval =
  let obs = Obs.create () in
  let workload =
    Array.init n (fun p ->
        List.init 6 (fun i ->
            Protocol.Invoke_update (Set_spec.Insert ((p * 10) + i))))
  in
  let config =
    {
      (R.default_config ~n ~seed) with
      R.final_read = Some Set_spec.Read;
      partitions;
      obs = Some obs;
      probe_interval;
    }
  in
  let r = R.run config ~workload in
  (obs, r)

let field k j = Json.member k j
let str_field k j = Option.bind (field k j) Json.get_str

let span_of_event j =
  Option.bind (field "args" j) (fun a ->
      Option.bind (field "span" a) Json.get_int)

(* Satellite: the golden test for [--trace-out]. The export must
   survive a print/parse round trip, deliver slices must match
   [messages_delivered] exactly, and every deliver that carries a span
   must be preceded by a send of the same span — the trace is
   followable. *)
let trace_tests =
  [
    Alcotest.test_case "trace export is valid, complete and followable"
      `Quick (fun () ->
        let obs, r =
          run_instrumented ~seed:42 ~n:3 ~partitions:[] ~probe_interval:None
        in
        let json =
          Json.of_string
            (Json.to_string ~pretty:true
               (Obs.Trace_export.to_json obs.Obs.spans))
        in
        Alcotest.(check (option string))
          "time unit" (Some "ms")
          (str_field "displayTimeUnit" json);
        let events =
          match Option.bind (field "traceEvents" json) Json.get_list with
          | Some l -> l
          | None -> Alcotest.fail "no traceEvents array"
        in
        let with_ph p = List.filter (fun e -> str_field "ph" e = Some p) events in
        let delivers = with_ph "X" in
        Alcotest.(check int) "one slice per delivered message"
          r.R.metrics.Metrics.messages_delivered (List.length delivers);
        Alcotest.(check int) "one flow start per span"
          (Span.count obs.Obs.spans)
          (List.length (with_ph "s"));
        let sent_spans =
          List.filter_map span_of_event
            (List.filter (fun e -> str_field "name" e = Some "send") events)
        in
        List.iter
          (fun d ->
            match span_of_event d with
            | None -> Alcotest.fail "a deliver slice lost its span"
            | Some s ->
              if not (List.mem s sent_spans) then
                Alcotest.failf "deliver of span %d has no matching send" s)
          delivers;
        (* every event timestamp is a number — the file loads *)
        List.iter
          (fun e ->
            if Option.bind (field "ts" e) Json.get_num = None then
              Alcotest.fail "event without ts")
          events);
    Alcotest.test_case "trace export leads with metadata events" `Quick
      (fun () ->
        let obs, _ =
          run_instrumented ~seed:42 ~n:3 ~partitions:[] ~probe_interval:None
        in
        let meta =
          [ ("seed", Json.Num 42.0); ("protocol", Json.Str "universal") ]
        in
        let json =
          Json.of_string
            (Json.to_string
               (Obs.Trace_export.to_json ~meta ~replicas:3 obs.Obs.spans))
        in
        let events =
          match Option.bind (field "traceEvents" json) Json.get_list with
          | Some l -> l
          | None -> Alcotest.fail "no traceEvents array"
        in
        let metas, rest =
          List.partition (fun e -> str_field "ph" e = Some "M") events
        in
        (* one process_name row per replica plus one config row, and
           they precede every span event *)
        Alcotest.(check int) "metadata rows" 4 (List.length metas);
        let prefix_len = List.length metas in
        List.iteri
          (fun i e ->
            if i < prefix_len && str_field "ph" e <> Some "M" then
              Alcotest.fail "metadata does not lead the event list")
          events;
        Alcotest.(check int) "replica names" 3
          (List.length
             (List.filter
                (fun e -> str_field "name" e = Some "process_name")
                metas));
        (match
           List.find_opt
             (fun e -> str_field "name" e = Some "ucsim_config")
             metas
         with
        | None -> Alcotest.fail "no ucsim_config metadata row"
        | Some row ->
          let args = Option.get (field "args" row) in
          Alcotest.(check (option string))
            "protocol in config" (Some "universal")
            (str_field "protocol" args);
          Alcotest.(check (option int))
            "seed in config" (Some 42)
            (Option.bind (field "seed" args) Json.get_int));
        (* with no metadata requested the export is unchanged *)
        Alcotest.(check int) "no gratuitous metadata"
          (List.length rest)
          (match
             Option.bind
               (field "traceEvents"
                  (Obs.Trace_export.to_json obs.Obs.spans))
               Json.get_list
           with
          | Some l -> List.length l
          | None -> 0));
    Alcotest.test_case "corrupted registry dumps are rejected" `Quick
      (fun () ->
        let r = Registry.create () in
        Registry.inc (Registry.counter r ~labels:[ ("pid", "0") ] "msgs");
        let text = Json.to_string ~pretty:true (Registry.to_json r) in
        (* truncation makes it unparseable *)
        let truncated = String.sub text 0 (String.length text / 2) in
        (match Json.of_string truncated with
        | exception Json.Parse_error _ -> ()
        | _ -> Alcotest.fail "truncated dump parsed as JSON");
        (* structural corruption is caught by rows_of_json *)
        match Registry.rows_of_json (Json.Obj [ ("metrics", Json.Str "?") ]) with
        | exception Failure _ -> ()
        | _ -> Alcotest.fail "corrupted dump accepted");
    Alcotest.test_case "finalize folds visibility into the registry" `Quick
      (fun () ->
        let obs, r =
          run_instrumented ~seed:7 ~n:3 ~partitions:[] ~probe_interval:None
        in
        Alcotest.(check bool) "run converged" true r.R.converged;
        let vis =
          List.filter
            (fun (row : Registry.row) -> row.name = "visibility_latency")
            (Registry.rows obs.Obs.registry)
        in
        Alcotest.(check int) "one histogram per origin" 3 (List.length vis);
        let total =
          List.fold_left
            (fun acc (row : Registry.row) ->
              match row.Registry.data with
              | Registry.Histogram d -> acc + d.Registry.count
              | _ -> acc)
            0 vis
        in
        Alcotest.(check int) "every update became visible" 18 total);
  ]

(* The convergence probe: replicas split by a partition must show
   divergence above 1 somewhere in the series, and the forced final
   probe must read 1 once the partition heals and the run quiesces. *)
let probe_tests =
  [
    Alcotest.test_case "divergence rises under a partition and heals" `Quick
      (fun () ->
        let obs, r =
          run_instrumented ~seed:11 ~n:4
            ~partitions:
              [ { Network.from_time = 5.0; to_time = 150.0; group = [ 0; 1 ] } ]
            ~probe_interval:(Some 10.0)
        in
        Alcotest.(check bool) "run converged" true r.R.converged;
        let series = Obs.divergence_series obs in
        Alcotest.(check bool) "probes fired" true (List.length series >= 2);
        let peak = List.fold_left (fun m (_, d) -> max m d) 0 series in
        Alcotest.(check bool) "diverged mid-run" true (peak > 1);
        let _, final = List.nth series (List.length series - 1) in
        Alcotest.(check int) "healed at quiescence" 1 final;
        (* probe samples are chronological *)
        let times = List.map fst series in
        Alcotest.(check bool) "sorted" true
          (List.sort compare times = times));
  ]

let tests = json_tests @ registry_tests @ span_tests @ trace_tests @ probe_tests
