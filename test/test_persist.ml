(* Durable log snapshots and crash recovery. *)

open Helpers

module P = Persist.Make (Set_spec) (Update_codec.For_set)
module G = Generic.Make (Set_spec)

let dummy_ctx pid : _ Protocol.ctx =
  {
    Protocol.pid;
    n = 3;
    now = (fun () -> 0.0);
    send = (fun ~dst:_ _ -> ());
    broadcast = ignore;
    broadcast_batch = ignore;
    set_timer = (fun ~delay:_ _ -> ());
    count_replay = ignore;
    obs = None;
  }

let loaded_replica seed ops =
  let r = G.create (dummy_ctx 0) in
  let rng = Prng.create seed in
  for _ = 1 to ops do
    G.update r (Set_spec.random_update rng) ~on_done:ignore
  done;
  r

let query r =
  let out = ref Set_spec.initial in
  G.query r Set_spec.Read ~on_result:(fun o -> out := o);
  !out

let tests =
  [
    qtest ~count:50 "snapshot/restore reproduces the replica" seed_gen (fun seed ->
        let original = loaded_replica seed 30 in
        let recovered = G.create (dummy_ctx 0) in
        P.restore recovered (P.snapshot original);
        Set_spec.equal_output (query original) (query recovered)
        && G.local_log original = G.local_log recovered);
    Alcotest.test_case "recovery resumes with a safe clock" `Quick (fun () ->
        let original = loaded_replica 3 10 in
        let recovered = G.create (dummy_ctx 0) in
        P.restore recovered (P.snapshot original);
        (* A post-recovery update must sort after everything restored. *)
        G.update recovered (Set_spec.Insert 99) ~on_done:ignore;
        let ts_of (ts, _, _) = ts in
        let log = G.local_log recovered in
        let last = List.nth log (List.length log - 1) in
        match List.find_opt (fun (_, _, u) -> u = Set_spec.Insert 99) log with
        | None -> Alcotest.fail "new update missing"
        | Some entry ->
          Alcotest.(check bool) "sorts last" true
            (Timestamp.equal (ts_of entry) (ts_of last)));
    Alcotest.test_case "empty log round-trips" `Quick (fun () ->
        let r = G.create (dummy_ctx 0) in
        let recovered = G.create (dummy_ctx 1) in
        P.restore recovered (P.snapshot r);
        Alcotest.(check int) "empty" 0 (List.length (G.local_log recovered)));
    Alcotest.test_case "corruption is detected" `Quick (fun () ->
        let s = P.snapshot (loaded_replica 7 10) in
        let flip i =
          let b = Bytes.of_string s in
          Bytes.set b i (Char.chr (Char.code (Bytes.get b i) lxor 0x01));
          Bytes.to_string b
        in
        List.iter
          (fun i ->
            Alcotest.(check bool)
              (Printf.sprintf "flip byte %d" i)
              true
              (try
                 ignore (P.decode_log (flip i));
                 false
               with Codec.Decode_error _ -> true))
          [ 0; 4; String.length s / 2 ]);
    Alcotest.test_case "truncation is detected" `Quick (fun () ->
        let s = P.snapshot (loaded_replica 7 10) in
        Alcotest.(check bool) "raises" true
          (try
             ignore (P.decode_log (String.sub s 0 (String.length s - 3)));
             false
           with Codec.Decode_error _ -> true));
  ]
