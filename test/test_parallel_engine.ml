(* The multicore replica engine against its Proposition 4 oracle: for
   any OS schedule the domains produce, every replica must converge to
   the identical timestamp-sorted log, and that log must replay through
   the sequential core to the timestamp-order fold of the update
   multiset. Each case runs the full [Throughput] differential. *)

module T_counter = Throughput.Bench (Counter_spec)
module T_set = Throughput.Bench (Set_spec)
module T_gset = Throughput.Bench (Gset_spec)

let counter_differential () =
  List.iter
    (fun (domains, seed) ->
      let scripts =
        T_counter.uniform_scripts ~seed ~domains ~ops:120 ~query_ratio:0.1
      in
      let v =
        T_counter.measure ~domains ~final_read:Counter_spec.Value ~scripts ()
      in
      Alcotest.(check bool)
        (Printf.sprintf "counter d=%d seed=%d" domains seed)
        true (T_counter.ok v);
      (* Commutative: the full sequential Runner replay must have run
         and agreed, not been skipped. *)
      Alcotest.(check (option bool))
        "runner differential ran" (Some true) v.T_counter.runner_matches)
    [ (1, 3); (2, 3); (2, 17); (3, 5); (4, 11) ]

let set_differential () =
  List.iter
    (fun (domains, seed) ->
      let scripts =
        T_set.uniform_scripts ~seed ~domains ~ops:150 ~query_ratio:0.0
      in
      let v = T_set.measure ~domains ~final_read:Set_spec.Read ~scripts () in
      Alcotest.(check bool)
        (Printf.sprintf "set d=%d seed=%d" domains seed)
        true (T_set.ok v);
      Alcotest.(check (option bool))
        "non-commutative: no runner leg" None v.T_set.runner_matches)
    [ (1, 1); (2, 1); (3, 9) ]

let gset_differential () =
  let scripts =
    T_gset.uniform_scripts ~seed:2 ~domains:3 ~ops:100 ~query_ratio:0.2
  in
  let v = T_gset.measure ~domains:3 ~final_read:Gset_spec.Read ~scripts () in
  Alcotest.(check bool) "gset d=3" true (T_gset.ok v)

(* A mailbox far smaller than the broadcast traffic forces the
   full-queue slow path (stall + drain-own-mailbox); correctness must
   not depend on capacity. *)
let tiny_mailbox_backpressure () =
  let scripts =
    Throughput.set_zipf_scripts ~seed:5 ~domains:3 ~ops:300 ~skew:1.2
      ~delete_ratio:0.3
  in
  let v =
    T_set.measure ~mailbox_capacity:4 ~domains:3 ~final_read:Set_spec.Read
      ~scripts ()
  in
  Alcotest.(check bool) "differential holds under backpressure" true (T_set.ok v);
  let stalls =
    Array.fold_left
      (fun acc r -> acc + r.Parallel_engine.mailbox_stalls)
      0 v.T_set.run.T_set.E.reports
  in
  Alcotest.(check bool) "slow path actually exercised" true (stalls > 0)

let batching_differential () =
  let scripts =
    T_set.uniform_scripts ~seed:8 ~domains:3 ~ops:128 ~query_ratio:0.0
  in
  let v =
    T_set.measure ~batch_every:4 ~domains:3 ~final_read:Set_spec.Read ~scripts ()
  in
  Alcotest.(check bool) "batched run converges" true (T_set.ok v);
  let batches =
    Array.fold_left
      (fun acc r -> acc + r.Parallel_engine.batches_sent)
      0 v.T_set.run.T_set.E.reports
  in
  Alcotest.(check bool) "frames actually batched" true (batches > 0)

(* Byte accounting mirrors the sequential Network: per unbatched frame
   exactly the message wire size (envelope 0), one frame per peer per
   update. With no queries and n domains: updates * (n-1) frames. *)
let wire_accounting () =
  let domains = 3 and ops = 50 in
  let scripts = T_set.uniform_scripts ~seed:4 ~domains ~ops ~query_ratio:0.0 in
  let v = T_set.measure ~domains ~final_read:Set_spec.Read ~scripts () in
  let reports = v.T_set.run.T_set.E.reports in
  Array.iter
    (fun r ->
      Alcotest.(check int)
        "one frame per peer per update"
        (ops * (domains - 1))
        r.Parallel_engine.frames_sent;
      Alcotest.(check int)
        "messages = frames when unbatched" r.Parallel_engine.frames_sent
        r.Parallel_engine.messages_sent)
    reports;
  (* Recompute every replica's sent bytes from the converged log: the
     wire bytes of an update message are its timestamp + payload. *)
  let log = T_set.G.local_log v.T_set.run.T_set.E.replicas.(0) in
  Array.iteri
    (fun pid r ->
      let own = List.filter (fun (_, origin, _) -> origin = pid) log in
      let expect =
        (domains - 1)
        * List.fold_left
            (fun acc (ts, _, u) ->
              acc + Timestamp.wire_size ts + Set_spec.update_wire_size u)
            0 own
      in
      Alcotest.(check int)
        (Printf.sprintf "bytes of p%d" pid)
        expect r.Parallel_engine.bytes_sent)
    reports

let per_domain_reports () =
  let domains = 2 and ops = 40 in
  let scripts =
    T_counter.uniform_scripts ~seed:6 ~domains ~ops ~query_ratio:0.25
  in
  let v =
    T_counter.measure ~domains ~final_read:Counter_spec.Value ~scripts ()
  in
  let r = v.T_counter.run in
  Alcotest.(check int) "one report per domain" domains
    (Array.length r.T_counter.E.reports);
  Array.iteri
    (fun pid rep ->
      Alcotest.(check int) "pid recorded" pid rep.Parallel_engine.pid;
      (* script ops + the ω read *)
      Alcotest.(check int)
        "ops = script + omega" (ops + 1) rep.Parallel_engine.ops;
      Alcotest.(check int)
        "latency per invocation" ops
        (Array.length rep.Parallel_engine.latencies))
    r.T_counter.E.reports;
  Alcotest.(check int)
    "totals add up"
    ((ops + 1) * domains)
    r.T_counter.E.ops_total;
  Alcotest.(check bool)
    "throughput positive" true
    (r.T_counter.E.throughput > 0.0)

(* Telemetry contract: a run with no observer touches no registry; the
   same run with one attached reports per-pid rows. *)
let obs_rows () =
  let o = Obs.create () in
  let domains = 2 in
  let scripts =
    T_set.uniform_scripts ~seed:12 ~domains ~ops:60 ~query_ratio:0.0
  in
  let v = T_set.measure ~obs:o ~domains ~final_read:Set_spec.Read ~scripts () in
  Alcotest.(check bool) "observed run still converges" true (T_set.ok v);
  let rows = Obs.Registry.rows o.Obs.registry in
  let count name =
    List.length (List.filter (fun r -> r.Obs.Registry.name = name) rows)
  in
  List.iter
    (fun name -> Alcotest.(check int) (name ^ " per pid") domains (count name))
    [ "domain_ops"; "domain_updates"; "mailbox_depth"; "mailbox_stalls" ]

(* Flight recorder end to end: any schedule the OS produced must
   replay on the sequential core to the identical history fingerprint
   (differential clause 6), with the online monitors staying clean over
   the same merged stream. *)
let record_replay_differential () =
  List.iter
    (fun (domains, seed) ->
      let ops = 80 in
      let scripts =
        T_counter.uniform_scripts ~seed ~domains ~ops ~query_ratio:0.2
      in
      let recorder = Obs.Recorder.create ~domains () in
      let v =
        T_counter.measure ~recorder
          ~monitor:[ Obs.Monitor.Uc; Obs.Monitor.Ec ]
          ~domains ~final_read:Counter_spec.Value ~scripts ()
      in
      let label fmt =
        Printf.ksprintf (fun s -> Printf.sprintf "d=%d seed=%d: %s" domains seed s) fmt
      in
      Alcotest.(check bool) (label "differential ok") true (T_counter.ok v);
      Alcotest.(check (option bool))
        (label "journal replay verdict")
        (Some true) v.T_counter.journal_replay;
      match v.T_counter.recording with
      | None -> Alcotest.fail (label "recorder attached but no recording")
      | Some r ->
        Alcotest.(check bool)
          (label "events recorded")
          true
          (List.length r.T_counter.events > 0);
        Alcotest.(check bool)
          (label "journal non-empty")
          true
          (Obs.Journal.length r.T_counter.journal > 0);
        (match r.T_counter.replay with
         | Ok fp ->
           Alcotest.(check string)
             (label "replay reproduces the recorded fingerprint")
             r.T_counter.fingerprint fp
         | Error e -> Alcotest.fail (label "replay failed: %s" e));
        (match r.T_counter.monitor with
         | None -> Alcotest.fail (label "monitor requested but absent")
         | Some m ->
           Alcotest.(check bool)
             (label "online monitors clean")
             true (T_counter.Mon.clean m);
           Alcotest.(check bool)
             (label "monitor saw events")
             true
             (T_counter.Mon.events_seen m > 0));
        (* Non-ω query outputs are captured per domain, in issue order,
           exactly one per scripted query. *)
        let queries_of script =
          List.length
            (List.filter
               (function Protocol.Invoke_query _ -> true | _ -> false)
               script)
        in
        Array.iteri
          (fun pid outs ->
            Alcotest.(check int)
              (label "query outputs of p%d" pid)
              (queries_of scripts.(pid))
              (List.length outs))
          v.T_counter.run.T_counter.E.query_outputs)
    [ (1, 3); (2, 7); (3, 5); (4, 2) ]

(* Recording must survive the slow paths: full mailboxes (stall
   records) and batched frames both replay exactly. *)
let record_replay_backpressure () =
  let domains = 3 in
  let scripts =
    Throughput.set_zipf_scripts ~seed:5 ~domains ~ops:200 ~skew:1.2
      ~delete_ratio:0.3
  in
  let recorder = Obs.Recorder.create ~domains () in
  let v =
    T_set.measure ~recorder ~mailbox_capacity:4 ~domains
      ~final_read:Set_spec.Read ~scripts ()
  in
  Alcotest.(check bool) "differential ok under backpressure" true (T_set.ok v);
  Alcotest.(check (option bool))
    "backpressured run replays" (Some true) v.T_set.journal_replay;
  let stalls =
    Array.fold_left
      (fun acc r -> acc + r.Parallel_engine.mailbox_stalls)
      0 v.T_set.run.T_set.E.reports
  in
  let recording =
    match v.T_set.recording with
    | Some r -> r
    | None -> Alcotest.fail "no recording"
  in
  let stall_events =
    List.length
      (List.filter
         (function Obs.Recorder.Stall _ -> true | _ -> false)
         recording.T_set.events)
  in
  Alcotest.(check bool) "slow path exercised" true (stalls > 0);
  Alcotest.(check bool)
    "stalls landed in the event stream" true (stall_events > 0)

let record_replay_batched () =
  let domains = 3 in
  let scripts =
    T_set.uniform_scripts ~seed:8 ~domains ~ops:128 ~query_ratio:0.1
  in
  let recorder = Obs.Recorder.create ~domains () in
  let v =
    T_set.measure ~recorder ~batch_every:4 ~domains ~final_read:Set_spec.Read
      ~scripts ()
  in
  Alcotest.(check bool) "batched recording ok" true (T_set.ok v);
  Alcotest.(check (option bool))
    "batched run replays" (Some true) v.T_set.journal_replay

(* The flush window bounds buffer residency when the batch threshold is
   too high to ever trip: with batch_every far above the op count, the
   window is the only thing (before the end-of-script flush) moving
   messages, and the differential must still close. *)
let flush_window_differential () =
  let scripts =
    T_set.uniform_scripts ~seed:11 ~domains:3 ~ops:128 ~query_ratio:0.0
  in
  let v =
    T_set.measure ~batch_every:1_000_000 ~flush_window:8 ~domains:3
      ~final_read:Set_spec.Read ~scripts ()
  in
  Alcotest.(check bool) "windowed run converges" true (T_set.ok v);
  let frames, messages =
    Array.fold_left
      (fun (f, m) r ->
        (f + r.Parallel_engine.frames_sent, m + r.Parallel_engine.messages_sent))
      (0, 0) v.T_set.run.T_set.E.reports
  in
  Alcotest.(check bool) "window actually coalesced" true (frames < messages)

let rejects_bad_config () =
  let scripts = T_set.uniform_scripts ~seed:1 ~domains:2 ~ops:1 ~query_ratio:0.0 in
  Alcotest.check_raises "workload width"
    (Invalid_argument "Parallel_engine.run: one workload script per domain")
    (fun () ->
      ignore (T_set.E.run (T_set.E.default_config ~domains:3) ~workload:scripts));
  Alcotest.check_raises "negative flush window"
    (Invalid_argument "Parallel_engine.run: flush_window must be non-negative")
    (fun () ->
      let cfg =
        { (T_set.E.default_config ~domains:2) with T_set.E.flush_window = -1 }
      in
      ignore (T_set.E.run cfg ~workload:scripts))

let tests =
  [
    Alcotest.test_case "counter differential (incl. sequential Runner)" `Quick
      counter_differential;
    Alcotest.test_case "or-set differential across domain counts" `Quick
      set_differential;
    Alcotest.test_case "g-set differential with queries" `Quick gset_differential;
    Alcotest.test_case "tiny mailbox: backpressure slow path" `Quick
      tiny_mailbox_backpressure;
    Alcotest.test_case "broadcast batching preserves convergence" `Quick
      batching_differential;
    Alcotest.test_case "wire accounting matches the sequential format" `Quick
      wire_accounting;
    Alcotest.test_case "per-domain reports and latencies" `Quick
      per_domain_reports;
    Alcotest.test_case "obs rows appear only when attached" `Quick obs_rows;
    Alcotest.test_case "record/replay differential (clause 6) + monitors" `Quick
      record_replay_differential;
    Alcotest.test_case "record/replay survives backpressure stalls" `Quick
      record_replay_backpressure;
    Alcotest.test_case "record/replay survives batched frames" `Quick
      record_replay_batched;
    Alcotest.test_case "flush window coalesces and converges" `Quick
      flush_window_differential;
    Alcotest.test_case "malformed configs rejected" `Quick rejects_bad_config;
  ]
