(* Proposition 4, executed: every schedule of Algorithm 1 on small
   conflict-heavy scripts yields an update-consistent history, while the
   naive pipelined replica provably cannot. *)

let race_scripts : (Set_spec.update, Set_spec.query) Protocol.invocation list array =
  [|
    [ Protocol.Invoke_update (Set_spec.Insert 1); Protocol.Invoke_update (Set_spec.Delete 2) ];
    [ Protocol.Invoke_update (Set_spec.Insert 2); Protocol.Invoke_update (Set_spec.Delete 1) ];
  |]

let failures_of report c = List.assoc c report

let tests =
  [
    Alcotest.test_case "Algorithm 1 is UC+EC on every schedule" `Slow (fun () ->
        let module M = Model_check.Make (Generic.Make (Set_spec)) in
        let r =
          M.explore ~scripts:race_scripts ~final_read:Set_spec.Read ()
        in
        Alcotest.(check bool) "exhaustive" true r.M.exhaustive;
        Alcotest.(check bool) "many executions" true (r.M.executions > 100);
        Alcotest.(check int) "UC failures" 0 (failures_of r.M.failures Criteria.UC);
        Alcotest.(check int) "EC failures" 0 (failures_of r.M.failures Criteria.EC));
    Alcotest.test_case "Algorithm 1 is SUC on every schedule (small)" `Slow (fun () ->
        let module M = Model_check.Make (Generic.Make (Set_spec)) in
        let scripts =
          [|
            [ Protocol.Invoke_update (Set_spec.Insert 1);
              Protocol.Invoke_query Set_spec.Read ];
            [ Protocol.Invoke_update (Set_spec.Delete 1) ];
          |]
        in
        let r =
          M.explore ~criteria:[ Criteria.SUC ] ~scripts ~final_read:Set_spec.Read ()
        in
        Alcotest.(check bool) "exhaustive" true r.M.exhaustive;
        Alcotest.(check int) "SUC failures" 0 (failures_of r.M.failures Criteria.SUC));
    Alcotest.test_case "pipelined replica violates UC on some schedule" `Slow (fun () ->
        let module M = Model_check.Make (Pipelined.Make (Set_spec)) in
        let r = M.explore ~scripts:race_scripts ~final_read:Set_spec.Read () in
        Alcotest.(check bool) "exhaustive" true r.M.exhaustive;
        Alcotest.(check bool) "has UC failures" true
          (failures_of r.M.failures Criteria.UC > 0));
    Alcotest.test_case "Algorithm 2 (LWW memory) is UC on every schedule" `Slow
      (fun () ->
        let module M = Model_check.Make (Lww_memory) in
        let scripts =
          [|
            [ Protocol.Invoke_update (Memory_spec.Write (0, 1));
              Protocol.Invoke_update (Memory_spec.Write (1, 1)) ];
            [ Protocol.Invoke_update (Memory_spec.Write (0, 2)) ];
          |]
        in
        let r = M.explore ~scripts ~final_read:(Memory_spec.Read 0) () in
        Alcotest.(check bool) "exhaustive" true r.M.exhaustive;
        Alcotest.(check int) "UC failures" 0 (failures_of r.M.failures Criteria.UC));
    Alcotest.test_case "CRDT fast path is UC for the counter" `Slow (fun () ->
        let module M = Model_check.Make (Commutative.Make (Counter_spec)) in
        let scripts =
          [|
            [ Protocol.Invoke_update (Counter_spec.Add 2);
              Protocol.Invoke_update (Counter_spec.Add (-1)) ];
            [ Protocol.Invoke_update (Counter_spec.Add 5) ];
          |]
        in
        let r = M.explore ~scripts ~final_read:Counter_spec.Value () in
        Alcotest.(check bool) "exhaustive" true r.M.exhaustive;
        Alcotest.(check int) "UC failures" 0 (failures_of r.M.failures Criteria.UC));
    Alcotest.test_case "Algorithm 1 stays UC under exhaustive crash injection" `Slow
      (fun () ->
        let module M = Model_check.Make (Generic.Make (Set_spec)) in
        let scripts =
          [|
            [ Protocol.Invoke_update (Set_spec.Insert 1);
              Protocol.Invoke_update (Set_spec.Delete 1) ];
            [ Protocol.Invoke_update (Set_spec.Insert 1) ];
          |]
        in
        let base = M.explore ~scripts ~final_read:Set_spec.Read () in
        let r = M.explore ~max_crashes:1 ~scripts ~final_read:Set_spec.Read () in
        Alcotest.(check bool) "exhaustive" true r.M.exhaustive;
        Alcotest.(check bool) "crash branches explored" true
          (r.M.executions > base.M.executions);
        Alcotest.(check int) "UC failures" 0 (failures_of r.M.failures Criteria.UC);
        Alcotest.(check int) "EC failures" 0 (failures_of r.M.failures Criteria.EC));
    Alcotest.test_case "OR-set converges but is not UC on Fig.1b races" `Slow (fun () ->
        let module M = Model_check.Make (Orset_crdt) in
        let r = M.explore ~scripts:race_scripts ~final_read:Set_spec.Read () in
        Alcotest.(check bool) "exhaustive" true r.M.exhaustive;
        (* Insert-wins: convergent (EC) everywhere, yet some schedules end
           in {1,2}, which no linearization of the updates explains. *)
        Alcotest.(check int) "EC failures" 0 (failures_of r.M.failures Criteria.EC);
        Alcotest.(check bool) "has UC failures" true
          (failures_of r.M.failures Criteria.UC > 0));
  ]
