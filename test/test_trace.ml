(* Trace recording and the space-time renderer. *)

module P = Generic.Make (Set_spec)
module R = Runner.Make (P)

let traced_run () =
  let config =
    {
      (R.default_config ~n:2 ~seed:8) with
      R.final_read = Some Set_spec.Read;
      crashes = [ (30.0, 1) ];
      trace = true;
    }
  in
  R.run config
    ~workload:
      [|
        [ Protocol.Invoke_update (Set_spec.Insert 1); Protocol.Invoke_query Set_spec.Read ];
        [ Protocol.Invoke_update (Set_spec.Insert 2) ];
      |]

let tests =
  [
    Alcotest.test_case "runner records ops, deliveries and crashes" `Quick (fun () ->
        let r = traced_run () in
        match r.R.trace with
        | None -> Alcotest.fail "trace requested"
        | Some tr ->
          (* 3 updates+queries invoked (some possibly after crash),
             plus deliveries, plus the crash: strictly more events than
             operations alone. *)
          Alcotest.(check bool) "has events" true (Trace.length tr > 3));
    Alcotest.test_case "render shows lanes, arrows and the crash" `Quick (fun () ->
        let r = traced_run () in
        let rendered = Trace.render (Option.get r.R.trace) ~n:2 in
        let has needle =
          let n = String.length needle and h = String.length rendered in
          let rec scan i = i + n <= h && (String.sub rendered i n = needle || scan (i + 1)) in
          scan 0
        in
        Alcotest.(check bool) "lane header" true (has "p0");
        Alcotest.(check bool) "an op label" true (has "I(1)");
        Alcotest.(check bool) "a delivery arrow" true (has "«p");
        Alcotest.(check bool) "the crash" true (has "crash");
        Alcotest.(check bool) "in-flight annotation" true (has "in flight"));
    Alcotest.test_case "no trace unless requested" `Quick (fun () ->
        let config = { (R.default_config ~n:2 ~seed:8) with R.final_read = Some Set_spec.Read } in
        let r = R.run config ~workload:[| []; [] |] in
        Alcotest.(check bool) "absent" true (r.R.trace = None));
    Alcotest.test_case "events render in time order" `Quick (fun () ->
        let tr = Trace.create () in
        Trace.record_op tr ~time:5.0 ~pid:0 "later";
        Trace.record_op tr ~time:1.0 ~pid:0 "earlier";
        let rendered = Trace.render tr ~n:1 in
        let index_of needle =
          let n = String.length needle and h = String.length rendered in
          let rec scan i =
            if i + n > h then -1
            else if String.sub rendered i n = needle then i
            else scan (i + 1)
          in
          scan 0
        in
        Alcotest.(check bool) "both present" true
          (index_of "earlier" >= 0 && index_of "later" >= 0);
        Alcotest.(check bool) "sorted" true (index_of "earlier" < index_of "later"));
  ]
