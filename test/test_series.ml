(* The soak observatory: decimating rings, the streaming sampler, the
   alert-rule engine, the series JSONL codec, sparkline rendering, and
   the schedule-invariance of sampling (a sampler-on run must extract
   the identical history as a sampler-off run). *)

let qtest ?(count = 200) name gen law =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen law)

module Series = Obs.Series
module Alert = Obs.Alert

(* ------------------------------ rings ----------------------------- *)

let push_seq ring values =
  List.iteri
    (fun i v -> Series.ring_push ring ~time:(float_of_int i) ~value:v)
    values

let ring_tests =
  [
    Alcotest.test_case "small pushes are retained verbatim" `Quick (fun () ->
        let r = Series.ring ~capacity:8 in
        push_seq r [ 3.0; 1.0; 4.0 ];
        Alcotest.(check int) "len" 3 (Series.ring_length r);
        Alcotest.(check int) "stride" 1 (Series.ring_stride r);
        Alcotest.(check bool) "points" true
          (Series.ring_points r = [ (0.0, 3.0); (1.0, 1.0); (2.0, 4.0) ]));
    Alcotest.test_case "decimation halves and doubles the stride" `Quick
      (fun () ->
        let r = Series.ring ~capacity:4 in
        push_seq r (List.init 9 float_of_int);
        (* pushes 0..8: first halving at push 4 (keep 0,2), second at
           push 8 (keep 0,4) — retained = {0, 4, 8}, stride 4. *)
        Alcotest.(check int) "stride" 4 (Series.ring_stride r);
        Alcotest.(check bool) "points" true
          (Series.ring_points r = [ (0.0, 0.0); (4.0, 4.0); (8.0, 8.0) ]));
    Alcotest.test_case "capacity below 2 is rejected" `Quick (fun () ->
        Alcotest.check_raises "cap 1"
          (Invalid_argument "Series.ring: capacity must be >= 2") (fun () ->
            ignore (Series.ring ~capacity:1)));
    qtest ~count:300 "ring: len <= capacity, extremes exact, grid even"
      QCheck2.Gen.(
        pair (int_range 2 12) (list_size (int_bound 400) (int_range (-50) 50)))
      (fun (cap, values) ->
        let values = List.map float_of_int values in
        let r = Series.ring ~capacity:cap in
        push_seq r values;
        let points = Series.ring_points r in
        let len_ok =
          Series.ring_length r <= cap
          && Series.ring_length r = List.length points
        in
        let pushes_ok = Series.ring_pushes r = List.length values in
        let extremes_ok =
          match values with
          | [] -> true
          | _ ->
            Series.ring_min r = List.fold_left min infinity values
            && Series.ring_max r = List.fold_left max neg_infinity values
            && Series.ring_last r = List.nth values (List.length values - 1)
        in
        (* The retained skeleton is always the consecutive multiples of
           the current stride starting at push 0 — an evenly spaced
           cover of the whole history, never a recent-window bias. *)
        let stride = Series.ring_stride r in
        let grid_ok =
          List.for_all2
            (fun (t, v) i ->
              let idx = i * stride in
              t = float_of_int idx && v = List.nth values idx)
            points
            (List.init (List.length points) (fun i -> i))
        in
        len_ok && pushes_ok && extremes_ok && grid_ok);
  ]

(* ----------------------------- sampler ---------------------------- *)

let sampler_tests =
  [
    Alcotest.test_case "maybe_tick respects the cadence" `Quick (fun () ->
        let s = Series.sampler ~interval:10.0 () in
        Series.add_probe s (fun () -> [ ("g", [], 1.0) ]);
        Series.maybe_tick s ~now:0.0;
        Series.maybe_tick s ~now:4.0;
        Series.maybe_tick s ~now:9.9;
        Series.maybe_tick s ~now:10.0;
        Series.maybe_tick s ~now:12.0;
        Alcotest.(check int) "two due" 2 (Series.ticks s);
        Series.tick s ~now:12.5;
        Alcotest.(check int) "forced" 3 (Series.ticks s));
    Alcotest.test_case "non-positive interval is rejected" `Quick (fun () ->
        Alcotest.check_raises "zero"
          (Invalid_argument "Series.sampler: interval must be positive")
          (fun () -> ignore (Series.sampler ~interval:0.0 ())));
    Alcotest.test_case "probes, registry and latency windows feed series"
      `Quick (fun () ->
        let reg = Obs.Registry.create () in
        Obs.Registry.inc (Obs.Registry.counter reg "frames");
        let s = Series.sampler ~interval:1.0 ~registry:reg () in
        Series.add_probe s (fun () -> [ ("depth", [ ("pid", "0") ], 7.0) ]);
        Series.observe_latency s ~key:2 4.0;
        Series.observe_latency s 8.0;
        Series.tick s ~now:5.0;
        let store = Series.store s in
        let last name labels =
          Option.map Series.ring_last (Series.find store name labels)
        in
        Alcotest.(check (option (float 0.0))) "registry" (Some 1.0)
          (last "frames" []);
        Alcotest.(check (option (float 0.0))) "probe" (Some 7.0)
          (last "depth" [ ("pid", "0") ]);
        (* Window holds [4; 8]: p99 interpolates to 4 + 0.99 * 4. *)
        Alcotest.(check (option (float 1e-9))) "p99" (Some 7.96)
          (last "latency_p99" []);
        Alcotest.(check (option (float 0.0))) "keyed p99" (Some 4.0)
          (last "latency_p99" [ ("key", "2") ]));
    Alcotest.test_case "sink sees full resolution despite decimation" `Quick
      (fun () ->
        let s = Series.sampler ~capacity:2 ~interval:1.0 () in
        let n = ref 0 in
        Series.set_sink s (fun _ -> incr n);
        Series.add_probe s (fun () -> [ ("g", [], 1.0) ]);
        for i = 1 to 50 do
          Series.tick s ~now:(float_of_int i)
        done;
        Alcotest.(check int) "every point" 50 !n;
        Alcotest.(check bool) "ring decimated" true
          (match Series.find (Series.store s) "g" [] with
          | Some r -> Series.ring_length r <= 2
          | None -> false));
  ]

(* ------------------------------ alerts ---------------------------- *)

let alert_tests =
  [
    Alcotest.test_case "rule strings round trip" `Quick (fun () ->
        List.iter
          (fun s ->
            Alcotest.(check string)
              s s
              (Alert.rule_to_string (Alert.rule_of_string s)))
          [
            "above:queue_depth:100";
            "below:ops_completed:1";
            "growth:log_len:5";
            "slo:latency_p99:2.5";
          ];
        List.iter
          (fun s ->
            match Alert.rule_of_string s with
            | exception Invalid_argument _ -> ()
            | _ -> Alcotest.failf "parsed %S" s)
          [ "nope"; "above:x"; "growth:x:1"; "above:x:notafloat"; "" ]);
    Alcotest.test_case "threshold fires once and latches" `Quick (fun () ->
        let s = Series.sampler ~interval:1.0 () in
        let v = ref 0.0 in
        Series.add_probe s (fun () -> [ ("g", [], !v) ]);
        let a = Alert.create [ Alert.rule_of_string "above:g:10" ] in
        let hits = ref 0 in
        Alert.attach a s ~on_fire:(fun _ -> incr hits);
        for i = 1 to 20 do
          v := float_of_int i;
          Series.tick s ~now:(float_of_int i)
        done;
        Alcotest.(check int) "fired once" 1 !hits;
        (match Alert.fired a with
        | [ f ] ->
          Alcotest.(check string) "series" "g" f.Alert.series;
          Alcotest.(check (float 0.0)) "value" 11.0 f.Alert.value;
          Alcotest.(check (float 0.0)) "time" 11.0 f.Alert.time
        | fs -> Alcotest.failf "%d firings" (List.length fs));
        Alcotest.(check int) "rules conserved" 1 (List.length (Alert.rules a)));
    Alcotest.test_case "growth wants sustained strict increase" `Quick
      (fun () ->
        let fire_on values =
          let s = Series.sampler ~interval:1.0 () in
          let q = Queue.create () in
          List.iter (fun v -> Queue.add v q) values;
          Series.add_probe s (fun () -> [ ("g", [], Queue.pop q) ]);
          let a = Alert.create [ Alert.rule_of_string "growth:g:3" ] in
          Alert.attach a s ~on_fire:(fun _ -> ());
          List.iteri
            (fun i _ -> Series.tick s ~now:(float_of_int i))
            values;
          Alert.fired a <> []
        in
        Alcotest.(check bool) "flat never fires" false
          (fire_on [ 5.0; 5.0; 5.0; 5.0; 5.0 ]);
        Alcotest.(check bool) "dip resets" false
          (fire_on [ 1.0; 2.0; 1.0 ]);
        Alcotest.(check bool) "monotone fires" true
          (fire_on [ 1.0; 2.0; 3.0 ]));
    Alcotest.test_case "a rule addresses every label set of its name" `Quick
      (fun () ->
        let s = Series.sampler ~interval:1.0 () in
        Series.add_probe s (fun () ->
            [
              ("log_len", [ ("pid", "0") ], 1.0);
              ("log_len", [ ("pid", "1") ], 99.0);
            ]);
        let a = Alert.create [ Alert.rule_of_string "above:log_len:50" ] in
        Alert.attach a s ~on_fire:(fun _ -> ());
        Series.tick s ~now:1.0;
        match Alert.fired a with
        | [ f ] ->
          Alcotest.(check string) "offender" "log_len{pid=1}" f.Alert.series
        | fs -> Alcotest.failf "%d firings" (List.length fs));
    Alcotest.test_case "Alert journal events round trip" `Quick (fun () ->
        let e =
          Obs.Journal.Alert
            {
              time = 61.5;
              rule = "growth:log_len:4";
              series = "log_len{pid=0}";
              value = 32.0;
            }
        in
        Alcotest.(check bool) "round trip" true
          (Obs.Journal.event_of_json (Obs.Journal.event_to_json e) = e);
        Alcotest.(check (float 0.0)) "time" 61.5 (Obs.Journal.event_time e));
  ]

(* ------------------------- JSONL + rendering ---------------------- *)

let write_stream build =
  let file = Filename.temp_file "series" ".jsonl" in
  let oc = open_out file in
  build oc;
  close_out oc;
  file

let stream_tests =
  [
    Alcotest.test_case "writer/load round trip with alerts" `Quick (fun () ->
        let file =
          write_stream (fun oc ->
              let w =
                Series.writer oc ~meta:[ ("protocol", Obs.Json.Str "universal") ]
              in
              Series.write_point w
                { Series.time = 1.0; name = "g"; labels = []; value = 2.0 };
              Series.write_point w
                {
                  Series.time = 2.0;
                  name = "g";
                  labels = [ ("pid", "0") ];
                  value = 3.0;
                };
              Series.write_alert w ~time:2.0 ~rule:"above:g:2"
                ~series:"g{pid=0}" ~value:3.0;
              Series.close_writer w)
        in
        let loaded = Series.load file in
        Sys.remove file;
        Alcotest.(check int) "points" 2 (List.length loaded.Series.points);
        Alcotest.(check bool) "labels survive" true
          (List.exists
             (fun p -> p.Series.labels = [ ("pid", "0") ])
             loaded.Series.points);
        match loaded.Series.alerts with
        | [ a ] ->
          Alcotest.(check string) "rule" "above:g:2" a.Series.rule;
          Alcotest.(check (float 0.0)) "value" 3.0 a.Series.avalue
        | xs -> Alcotest.failf "%d alerts" (List.length xs));
    Alcotest.test_case "unsupported version is a one-line failure" `Quick
      (fun () ->
        let file =
          write_stream (fun oc ->
              output_string oc "{\"series\":\"ucsim\",\"version\":99}\n")
        in
        (match Series.load file with
        | exception Failure msg ->
          Alcotest.(check string) "message"
            "series file: unsupported version 99 (expected 1)" msg
        | _ -> Alcotest.fail "loaded");
        Sys.remove file);
    Alcotest.test_case "non-series streams are rejected" `Quick (fun () ->
        let file = write_stream (fun oc -> output_string oc "{\"a\":1}\n") in
        (match Series.load file with
        | exception Failure _ -> ()
        | _ -> Alcotest.fail "loaded");
        Sys.remove file);
    Alcotest.test_case "sparkline shape" `Quick (fun () ->
        Alcotest.(check string)
          "ramp" "\u{2581}\u{2583}\u{2586}\u{2588}"
          (Series.sparkline [ 0.0; 1.0; 2.0; 3.0 ]);
        Alcotest.(check string) "flat" "\u{2584}\u{2584}" (Series.sparkline [ 5.0; 5.0 ]);
        (* Each block glyph is 3 UTF-8 bytes: 30 samples at width 3
           must downsample to exactly 3 columns. *)
        Alcotest.(check int) "downsampled to width" 9
          (String.length (Series.sparkline ~width:3 (List.init 30 float_of_int))));
    Alcotest.test_case "golden render" `Quick (fun () ->
        let file =
          write_stream (fun oc ->
              let w = Series.writer oc ~meta:[] in
              List.iter
                (fun (t, v) ->
                  Series.write_point w
                    { Series.time = t; name = "log_len"; labels = [ ("pid", "0") ]; value = v })
                [ (0.0, 0.0); (10.0, 4.0); (20.0, 8.0); (30.0, 12.0) ];
              Series.write_point w
                { Series.time = 30.0; name = "queue_depth"; labels = []; value = 2.0 };
              Series.write_alert w ~time:30.0 ~rule:"growth:log_len:3"
                ~series:"log_len{pid=0}" ~value:12.0;
              Series.close_writer w)
        in
        let loaded = Series.load file in
        Sys.remove file;
        let rendered = Format.asprintf "%a" Series.render loaded in
        (* Space runs spelled out so the pin is unambiguous; the
           sparkline column is byte-padded, hence the long runs after
           multi-byte glyphs. *)
        let sp n = String.make n ' ' in
        let expected =
          "series" ^ sp 79 ^ "n" ^ sp 8 ^ "min" ^ sp 8 ^ "max" ^ sp 7
          ^ "last\nlog_len{pid=0}" ^ sp 2
          ^ "\u{2581}\u{2583}\u{2586}\u{2588}" ^ sp 57 ^ "4" ^ sp 10 ^ "0"
          ^ sp 9 ^ "12" ^ sp 9 ^ "12\nqueue_depth" ^ sp 5 ^ "\u{2584}"
          ^ sp 66 ^ "1" ^ sp 10 ^ "2" ^ sp 10 ^ "2" ^ sp 10
          ^ "2\nalerts: 1 fired\n\
            \  ALERT growth:log_len:3 at t=30 on log_len{pid=0} value=12\n"
        in
        Alcotest.(check string) "golden" expected rendered);
  ]

(* -------------------- registry sampling + runner ------------------ *)

module P = Persist.Catchup (Generic.Make (Set_spec)) (Update_codec.For_set)
module R = Runner.Make (P)

let run_with sampler =
  let rng = Prng.create 11 in
  let workload =
    Workload.For_set.conflict ~rng ~n:3 ~ops_per_process:30 ~domain:8 ~skew:1.0
      ~delete_ratio:0.3
  in
  let base = R.default_config ~n:3 ~seed:11 in
  let config = { base with R.final_read = Some Set_spec.Read; sampler } in
  R.run config ~workload

let fingerprint (r : R.result) =
  History.fingerprint Set_spec.pp_update Set_spec.pp_query Set_spec.pp_output
    r.R.history

let integration_tests =
  [
    Alcotest.test_case "Registry.sample snapshots every metric kind" `Quick
      (fun () ->
        let reg = Obs.Registry.create () in
        Obs.Registry.inc ~by:3 (Obs.Registry.counter reg "c");
        Obs.Registry.set (Obs.Registry.gauge reg ~labels:[ ("pid", "1") ] "g") 2.5;
        let h = Obs.Registry.hist reg "lat" in
        List.iter (Obs.Registry.observe h) [ 1.0; 2.0; 3.0 ];
        Alcotest.(check bool) "sorted snapshot" true
          (Obs.Registry.sample reg
          = [
              ("c", [], 3.0);
              ("g", [ ("pid", "1") ], 2.5);
              ("lat_count", [], 3.0);
            ]));
    Alcotest.test_case "sampling never perturbs the schedule" `Quick (fun () ->
        let plain = run_with None in
        let s = Series.sampler ~interval:25.0 () in
        let sampled = run_with (Some s) in
        Alcotest.(check string) "same history" (fingerprint plain)
          (fingerprint sampled);
        Alcotest.(check bool) "same metrics" true
          (plain.R.metrics = sampled.R.metrics);
        Alcotest.(check bool) "ticks taken" true (Series.ticks s > 0);
        let store = Series.store s in
        Alcotest.(check bool) "runner gauges present" true
          (Series.find store "log_len" [ ("pid", "0") ] <> None
          && Series.find store "queue_depth" [] <> None);
        Alcotest.(check bool) "latency window summarized" true
          (Series.find store "latency_p99" [] <> None));
  ]

let tests =
  ring_tests @ sampler_tests @ alert_tests @ stream_tests @ integration_tests
