(* Linearizability of executions: the ABD baseline must pass, the
   wait-free register must (observably) fail, and hand-timed histories
   pin the checker's semantics. *)

open Helpers

module Lin_reg = Check_lin.Make (Register_spec)

let timed steps intervals =
  (History.make steps, Array.of_list intervals)

let unit_tests =
  [
    Alcotest.test_case "sequential run is linearizable" `Quick (fun () ->
        let h, iv =
          timed
            [ [ History.U (Register_spec.Write 1); History.Q (Register_spec.Read, 1) ] ]
            [ (0.0, 1.0); (2.0, 3.0) ]
        in
        Alcotest.(check bool) "lin" true (Lin_reg.holds h ~intervals:iv));
    Alcotest.test_case "a stale read after a completed write is not linearizable" `Quick
      (fun () ->
        (* write(1) responds at t=1; the read starts at t=2 and still
           returns the initial 0. *)
        let h, iv =
          timed
            [
              [ History.U (Register_spec.Write 1) ];
              [ History.Q (Register_spec.Read, 0) ];
            ]
            [ (0.0, 1.0); (2.0, 3.0) ]
        in
        Alcotest.(check bool) "not lin" false (Lin_reg.holds h ~intervals:iv));
    Alcotest.test_case "overlapping operations may order either way" `Quick (fun () ->
        (* The same stale read is fine while it overlaps the write. *)
        let h, iv =
          timed
            [
              [ History.U (Register_spec.Write 1) ];
              [ History.Q (Register_spec.Read, 0) ];
            ]
            [ (0.0, 5.0); (2.0, 3.0) ]
        in
        Alcotest.(check bool) "lin" true (Lin_reg.holds h ~intervals:iv));
    Alcotest.test_case "new-old read inversion is rejected" `Quick (fun () ->
        (* Two sequential reads around a write's response: the second
           read may not travel back in time. *)
        let h, iv =
          timed
            [
              [ History.U (Register_spec.Write 1) ];
              [
                History.Q (Register_spec.Read, 1);
                History.Q (Register_spec.Read, 0);
              ];
            ]
            [ (0.0, 10.0); (1.0, 2.0); (3.0, 4.0) ]
        in
        Alcotest.(check bool) "not lin" false (Lin_reg.holds h ~intervals:iv));
    Alcotest.test_case "witness respects real time" `Quick (fun () ->
        let h, iv =
          timed
            [
              [ History.U (Register_spec.Write 1) ];
              [ History.U (Register_spec.Write 2) ];
              [ History.Q (Register_spec.Read, 2) ];
            ]
            [ (0.0, 1.0); (2.0, 3.0); (4.0, 5.0) ]
        in
        match Lin_reg.witness h ~intervals:iv with
        | None -> Alcotest.fail "linearizable"
        | Some w ->
          let ids = List.map (fun (e : _ History.event) -> e.History.id) w in
          Alcotest.(check (list int)) "temporal order" [ 0; 1; 2 ] ids);
  ]

let run_register (module P : Protocol.PROTOCOL
                   with type update = Register_spec.update
                    and type query = Register_spec.query
                    and type output = Register_spec.output) seed =
  let module R = Runner.Make (P) in
  let rng = Prng.create seed in
  let module G = Workload.Make (Register_spec) in
  let workload = G.mixed ~rng ~n:2 ~ops_per_process:3 ~query_ratio:0.5 in
  let config =
    {
      (R.default_config ~n:2 ~seed) with
      R.delay = Network.Uniform { lo = 5.0; hi = 40.0 };
      final_read = Some Register_spec.Read;
    }
  in
  let r = R.run config ~workload in
  Lin_reg.holds r.R.history ~intervals:r.R.intervals

let execution_tests =
  [
    qtest ~count:15 "ABD runs are linearizable" seed_gen (fun seed ->
        run_register (module Abd) seed);
    Alcotest.test_case "the wait-free register run can violate atomicity" `Quick
      (fun () ->
        (* With slow messages, p1 reads 0 long after p0's write(1)
           completed: inherently non-linearizable — the recency the paper
           deliberately trades for wait-freedom. *)
        let module P = Generic.Make (Register_spec) in
        let module R = Runner.Make (P) in
        let config =
          {
            (R.default_config ~n:2 ~seed:1) with
            R.delay = Network.Constant 100.0;
            think = Network.Constant 10.0;
            final_read = Some Register_spec.Read;
          }
        in
        let r =
          R.run config
            ~workload:
              [|
                [ Protocol.Invoke_update (Register_spec.Write 1) ];
                [
                  (* the second read starts well after write(1) responded
                     yet still returns 0: a new-old inversion *)
                  Protocol.Invoke_query Register_spec.Read;
                  Protocol.Invoke_query Register_spec.Read;
                ];
              |]
        in
        Alcotest.(check bool) "converged eventually" true r.R.converged;
        Alcotest.(check bool) "but not linearizable" false
          (Lin_reg.holds r.R.history ~intervals:r.R.intervals));
  ]

let tests = unit_tests @ execution_tests
