(* Regression tests for the exploration engine: every reduction
   mechanism must preserve the seed checker's verdicts exactly, and the
   new report fields must behave as documented. *)

module G_set = Generic.Make (Set_spec)
module M_uni = Model_check.Make (G_set)
module M_pipe = Model_check.Make (Pipelined.Make (Set_spec))
module M_orset = Model_check.Make (Orset_crdt)
module M_counter = Model_check.Make (Generic.Make (Counter_spec))
module Snap_set = Snapshot.For_generic (Set_spec) (Update_codec.For_set)
module Snap_counter = Snapshot.For_generic (Counter_spec) (Update_codec.For_counter)

let race_scripts : (Set_spec.update, Set_spec.query) Protocol.invocation list array =
  [|
    [ Protocol.Invoke_update (Set_spec.Insert 1); Protocol.Invoke_update (Set_spec.Delete 2) ];
    [ Protocol.Invoke_update (Set_spec.Insert 2); Protocol.Invoke_update (Set_spec.Delete 1) ];
  |]

let mixed_scripts : (Set_spec.update, Set_spec.query) Protocol.invocation list array =
  [|
    [ Protocol.Invoke_update (Set_spec.Insert 1); Protocol.Invoke_query Set_spec.Read ];
    [ Protocol.Invoke_update (Set_spec.Delete 1);
      Protocol.Invoke_update (Set_spec.Insert 2) ];
  |]

let counter_scripts n ops : (Counter_spec.update, Counter_spec.query) Protocol.invocation list array =
  Array.init n (fun pid ->
      List.init ops (fun i ->
          Protocol.Invoke_update (Counter_spec.Add ((pid * ops) + i + 1))))

let check_counts = Alcotest.(check (list (pair string int)))

let named counts = List.map (fun (c, k) -> (Criteria.name c, k)) counts

let tests =
  [
    Alcotest.test_case "reduced universal search matches the exhaustive verdicts"
      `Slow
      (fun () ->
        let base = M_uni.explore ~scripts:race_scripts ~final_read:Set_spec.Read () in
        let reduced =
          M_uni.explore ~por:true ~dedup:true ~snapshot:Snap_set.snapshotter
            ~deliveries_commute:Snap_set.deliveries_commute ~scripts:race_scripts
            ~final_read:Set_spec.Read ()
        in
        Alcotest.(check bool) "both exhaustive" true
          (base.M_uni.exhaustive && reduced.M_uni.exhaustive);
        check_counts "distinct failures equal"
          (named base.M_uni.distinct_failures)
          (named reduced.M_uni.distinct_failures);
        Alcotest.(check bool) "fewer executions" true
          (reduced.M_uni.executions < base.M_uni.executions));
    Alcotest.test_case "reduced pipelined search matches the exhaustive verdicts"
      `Slow
      (fun () ->
        List.iter
          (fun scripts ->
            let base = M_pipe.explore ~scripts ~final_read:Set_spec.Read () in
            let reduced =
              M_pipe.explore ~por:true ~scripts ~final_read:Set_spec.Read ()
            in
            Alcotest.(check bool) "both exhaustive" true
              (base.M_pipe.exhaustive && reduced.M_pipe.exhaustive);
            check_counts "distinct failures equal"
              (named base.M_pipe.distinct_failures)
              (named reduced.M_pipe.distinct_failures);
            Alcotest.(check bool) "violations found" true
              (List.exists (fun (_, k) -> k > 0) base.M_pipe.distinct_failures))
          [ race_scripts; mixed_scripts ]);
    Alcotest.test_case "reduction holds under crash injection" `Slow (fun () ->
        let base =
          M_uni.explore ~max_crashes:1 ~scripts:race_scripts
            ~final_read:Set_spec.Read ()
        in
        let reduced =
          M_uni.explore ~max_crashes:1 ~por:true ~dedup:true
            ~snapshot:Snap_set.snapshotter
            ~deliveries_commute:Snap_set.deliveries_commute ~scripts:race_scripts
            ~final_read:Set_spec.Read ()
        in
        Alcotest.(check bool) "both exhaustive" true
          (base.M_uni.exhaustive && reduced.M_uni.exhaustive);
        check_counts "distinct failures equal"
          (named base.M_uni.distinct_failures)
          (named reduced.M_uni.distinct_failures));
    Alcotest.test_case "checkpointed replay is exact at every interval" `Slow
      (fun () ->
        let strip (r : M_uni.report) =
          (r.M_uni.executions, r.M_uni.exhaustive, r.M_uni.failures,
           r.M_uni.distinct_failures, r.M_uni.first_failures)
        in
        let base =
          strip (M_uni.explore ~scripts:mixed_scripts ~final_read:Set_spec.Read ())
        in
        List.iter
          (fun k ->
            let r =
              M_uni.explore ~checkpoint_every:k ~snapshot:Snap_set.snapshotter
                ~scripts:mixed_scripts ~final_read:Set_spec.Read ()
            in
            Alcotest.(check bool)
              (Printf.sprintf "interval %d replays to identical verdicts" k)
              true
              (strip r = base);
            Alcotest.(check bool)
              (Printf.sprintf "interval %d used the checkpoints" k)
              true
              (r.M_uni.stats.Explore.checkpoint_restores > 0))
          [ 1; 2; 3; 5 ]);
    Alcotest.test_case "checkpointing cuts protocol-step replays >= 5x" `Slow
      (fun () ->
        let naive = M_uni.explore ~scripts:race_scripts ~final_read:Set_spec.Read () in
        let fast =
          M_uni.explore ~por:true ~dedup:true ~checkpoint_every:4
            ~snapshot:Snap_set.snapshotter
            ~deliveries_commute:Snap_set.deliveries_commute ~scripts:race_scripts
            ~final_read:Set_spec.Read ()
        in
        let n_steps = naive.M_uni.stats.Explore.protocol_steps in
        let f_steps = fast.M_uni.stats.Explore.protocol_steps in
        Alcotest.(check bool)
          (Printf.sprintf "%d naive steps vs %d reduced" n_steps f_steps)
          true
          (n_steps >= 5 * f_steps));
    Alcotest.test_case "first violating history is recorded per criterion" `Slow
      (fun () ->
        (* The OR-set converges (EC holds) but is not UC; with EC listed
           first, the seed checker's single first_failure slot stayed
           empty for UC. *)
        let r =
          M_orset.explore
            ~criteria:[ Criteria.EC; Criteria.UC ]
            ~scripts:race_scripts ~final_read:Set_spec.Read ()
        in
        Alcotest.(check bool) "no EC entry" true
          (not (List.mem_assoc Criteria.EC r.M_orset.first_failures));
        match List.assoc_opt Criteria.UC r.M_orset.first_failures with
        | None -> Alcotest.fail "expected a UC first-failure witness"
        | Some text ->
          Alcotest.(check bool) "witness is a rendered history" true
            (String.length text > 0));
    Alcotest.test_case "commutative dedup key unlocks a deeper counter scope"
      `Slow
      (fun () ->
        (* 2 replicas x 3 increments: 2.9M naive interleavings collapse
           to a few thousand fingerprinted states. *)
        let r =
          M_counter.explore ~por:true ~dedup:true
            ~snapshot:Snap_counter.snapshotter
            ~state_key:Snap_counter.commutative_key
            ~message_key:Snap_counter.commutative_message_key
            ~deliveries_commute:Snap_counter.deliveries_commute
            ~scripts:(counter_scripts 2 3) ~final_read:Counter_spec.Value ()
        in
        Alcotest.(check bool) "exhaustive" true r.M_counter.exhaustive;
        check_counts "no violations" [ ("UC", 0); ("EC", 0) ]
          (named r.M_counter.distinct_failures);
        Alcotest.(check bool) "states were merged" true
          (r.M_counter.stats.Explore.states_deduped > 0));
    Alcotest.test_case "fingerprints of distinct small inputs stay distinct"
      `Quick
      (fun () ->
        let seen = Hashtbl.create 4096 in
        for i = 0 to 4095 do
          let fp =
            Fingerprint.string
              (Fingerprint.int Fingerprint.empty (i mod 17))
              (string_of_int i)
          in
          (match Hashtbl.find_opt seen fp with
          | Some j -> Alcotest.failf "collision between inputs %d and %d" i j
          | None -> ());
          Hashtbl.add seen fp i
        done);
    Alcotest.test_case "dedup without a state key is rejected" `Quick (fun () ->
        Alcotest.check_raises "needs a key"
          (Invalid_argument "Explore: dedup requires ~state_key or ~snapshot")
          (fun () ->
            ignore
              (M_uni.explore ~dedup:true ~scripts:race_scripts
                 ~final_read:Set_spec.Read ())));
    Alcotest.test_case "timestamp-blind keys refuse non-commutative specs" `Quick
      (fun () ->
        let replica =
          G_set.create
            {
              Protocol.pid = 0;
              n = 2;
              now = (fun () -> 0.0);
              send = (fun ~dst:_ _ -> ());
              broadcast = (fun _ -> ());
              broadcast_batch = (fun _ -> ());
              set_timer = (fun ~delay:_ _ -> ());
              count_replay = (fun _ -> ());
              obs = None;
            }
        in
        match Snap_set.commutative_key replica with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "expected Invalid_argument for the set");
  ]
