(* The experiment drivers themselves: regression-test the shapes the
   paper demands, so a change that silently breaks a reproduction fails
   the suite rather than just altering a printed table. *)

let contains needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec scan i = i + n <= h && (String.sub haystack i n = needle || scan (i + 1)) in
  scan 0

let tests =
  [
    Alcotest.test_case "F1 table matches every paper verdict" `Quick (fun () ->
        let rendered = Table.render (Experiments.fig1 ()) in
        Alcotest.(check bool) "no disagreement markers" false
          (contains "paper says" rendered));
    Alcotest.test_case "F2 analysis agrees with the paper" `Quick (fun () ->
        let text = Experiments.fig2 () in
        Alcotest.(check bool) "PC yes" true (contains "PC: yes" text);
        Alcotest.(check bool) "EC no" true (contains "EC: no" text));
    Alcotest.test_case "P1 table shows the dilemma" `Slow (fun () ->
        let rendered = Table.render (Experiments.prop1 ~seed:42) in
        (* pipelined row diverges, universal row converges *)
        Alcotest.(check bool) "has pipelined row" true (contains "pipelined" rendered);
        Alcotest.(check bool) "pipelined diverged" true (contains "| no " rendered);
        Alcotest.(check bool) "universal row" true (contains "universal" rendered));
    Alcotest.test_case "P4 finds zero violations for Algorithm 1" `Slow (fun () ->
        let rendered = Table.render (Experiments.prop4_modelcheck ()) in
        Alcotest.(check bool) "universal clean" true
          (contains "| universal (Alg.1)          | set     | 630       | yes        | 0" rendered));
    Alcotest.test_case "C4 keeps wait-free latency at zero" `Slow (fun () ->
        let rendered = Table.render (Experiments.latency_vs_rtt ~seed:42) in
        Alcotest.(check bool) "universal flat" true
          (contains "| universal    |           125 |             0.0 |" rendered);
        Alcotest.(check bool) "abd scales" true
          (contains "| abd-register |           125 |           500.0 |" rendered));
    Alcotest.test_case "every experiment renders non-empty" `Slow (fun () ->
        List.iter
          (fun (id, _, body) ->
            Alcotest.(check bool) (id ^ " non-empty") true (String.length body > 40))
          (Experiments.all ~seed:42 ()));
  ]
