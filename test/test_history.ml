(* uc_history structure: histories, program order, linearization search,
   and the random history generators. *)

open Helpers

let set = Set_spec.of_list

let sample_history () =
  History.make
    [
      [ History.U (Set_spec.Insert 1); History.Q (Set_spec.Read, set [ 1 ]) ];
      [ History.U (Set_spec.Insert 2); History.Qw (Set_spec.Read, set [ 1; 2 ]) ];
    ]

let structure_tests =
  [
    Alcotest.test_case "make assigns ids, pids and seqs" `Quick (fun () ->
        let h = sample_history () in
        Alcotest.(check int) "4 events" 4 (History.size h);
        Alcotest.(check int) "2 processes" 2 (History.process_count h);
        let e = History.event h 0 in
        Alcotest.(check int) "pid" 0 e.History.pid;
        Alcotest.(check int) "seq" 0 e.History.seq);
    Alcotest.test_case "updates/queries partition the events" `Quick (fun () ->
        let h = sample_history () in
        Alcotest.(check int) "updates" 2 (List.length (History.updates h));
        Alcotest.(check int) "queries" 2 (List.length (History.queries h));
        Alcotest.(check int) "omegas" 1 (List.length (History.omega_queries h)));
    Alcotest.test_case "po relates same-process events only" `Quick (fun () ->
        let h = sample_history () in
        Alcotest.(check bool) "p0 chain" true (History.po h 0 1);
        Alcotest.(check bool) "not reflexive" false (History.po h 0 0);
        Alcotest.(check bool) "cross-process" false (History.po h 0 2));
    Alcotest.test_case "ω must be last in its process" `Quick (fun () ->
        Alcotest.check_raises "misplaced ω"
          (Invalid_argument "History.make: ω event is not last in its process") (fun () ->
            ignore
              (History.make
                 [ [ History.Qw (Set_spec.Read, set []); History.U (Set_spec.Insert 1) ] ])));
    Alcotest.test_case "update_dag follows per-process update order" `Quick (fun () ->
        let h =
          History.make
            [
              [ History.U (Set_spec.Insert 1); History.U (Set_spec.Insert 2) ];
              [ History.U (Set_spec.Insert 3) ];
            ]
        in
        let g = History.update_dag h in
        Alcotest.(check int) "3 updates" 3 (Dag.size g);
        Alcotest.(check int) "3 extensions" 3 (Dag.count_linear_extensions g ~limit:100));
    Alcotest.test_case "empty history is well-formed" `Quick (fun () ->
        let h = History.make [ []; [] ] in
        Alcotest.(check int) "no events" 0 (History.size h));
    Alcotest.test_case "pp renders one line per process" `Quick (fun () ->
        let rendered =
          Format.asprintf "%a"
            (History.pp Set_spec.pp_update Set_spec.pp_query Set_spec.pp_output)
            (sample_history ())
        in
        Alcotest.(check bool) "two lines" true
          (List.length (String.split_on_char '\n' (String.trim rendered)) = 2));
  ]

module L = Linearize.Make (Set_spec)

let linearize_tests =
  [
    Alcotest.test_case "finds the unique valid interleaving" `Quick (fun () ->
        let h =
          History.make
            [
              [ History.U (Set_spec.Insert 1) ];
              [ History.Q (Set_spec.Read, set [ 1 ]) ];
            ]
        in
        let rows = Array.init 2 (fun p -> History.process_events h p) in
        match L.search rows with
        | None -> Alcotest.fail "expected a witness"
        | Some w ->
          Alcotest.(check int) "two events" 2 (List.length w));
    Alcotest.test_case "rejects impossible outputs" `Quick (fun () ->
        let h =
          History.make
            [ [ History.U (Set_spec.Insert 1); History.Q (Set_spec.Read, set [ 2 ]) ] ]
        in
        let rows = Array.init 1 (fun p -> History.process_events h p) in
        Alcotest.(check bool) "no witness" true (L.search rows = None));
    Alcotest.test_case "ω events are scheduled after all updates" `Quick (fun () ->
        let h =
          History.make
            [
              [ History.Qw (Set_spec.Read, set [ 1 ]) ];
              [ History.U (Set_spec.Insert 1) ];
            ]
        in
        let rows = Array.init 2 (fun p -> History.process_events h p) in
        match L.search rows with
        | None -> Alcotest.fail "expected a witness"
        | Some w ->
          (* The ω read of {1} is only valid after the insert. *)
          let labels = List.map (fun (e : _ History.event) -> e.History.omega) w in
          Alcotest.(check (list bool)) "update first" [ false; true ] labels);
    Alcotest.test_case "accept_final can veto" `Quick (fun () ->
        let h = History.make [ [ History.U (Set_spec.Insert 1) ] ] in
        let rows = Array.init 1 (fun p -> History.process_events h p) in
        Alcotest.(check bool) "vetoed" true
          (L.search ~accept_final:(fun _ -> false) rows = None));
    Alcotest.test_case "recognizes_events validates a fixed word" `Quick (fun () ->
        let h = sample_history () in
        (* I(1)·R/{1}·I(2)·Rω/{1,2} in that order is recognized. *)
        let order = [ 0; 1; 2; 3 ] in
        Alcotest.(check bool) "valid" true
          (L.recognizes_events (List.map (History.event h) order));
        (* Putting the ω read before I(2) is not. *)
        let bad = [ 0; 1; 3; 2 ] in
        Alcotest.(check bool) "invalid" false
          (L.recognizes_events (List.map (History.event h) bad)));
  ]

module Gen = Gen_history.Make (Set_spec)
module C = Criteria.Make (Set_spec)

let gen_tests =
  [
    qtest ~count:100 "plausible histories are update consistent by construction" seed_gen
      (fun seed ->
        let rng = Prng.create seed in
        let h = Gen.plausible rng ~processes:2 ~max_updates:4 ~max_queries:3 in
        C.holds Criteria.UC h);
    qtest ~count:100 "plausible histories are eventually consistent" seed_gen (fun seed ->
        let rng = Prng.create seed in
        let h = Gen.plausible rng ~processes:3 ~max_updates:4 ~max_queries:3 in
        C.holds Criteria.EC h);
    qtest ~count:100 "generated histories respect the ω invariant" seed_gen (fun seed ->
        let rng = Prng.create seed in
        let h = Gen.convergent_mix rng ~processes:3 ~max_updates:4 ~max_queries:4 in
        List.for_all
          (fun (e : _ History.event) ->
            (not e.History.omega)
            || List.for_all
                 (fun (e' : _ History.event) ->
                   e'.History.pid <> e.History.pid || e'.History.seq <= e.History.seq)
                 (History.events h))
          (History.events h));
    qtest ~count:100 "generator respects size bounds" seed_gen (fun seed ->
        let rng = Prng.create seed in
        let h = Gen.arbitrary rng ~processes:3 ~max_updates:4 ~max_queries:4 in
        List.length (History.updates h) <= 5 && History.process_count h = 3);
  ]

let tests = structure_tests @ linearize_tests @ gen_tests
