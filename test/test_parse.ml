(* The history concrete syntax used by `ucsim classify`. *)

module C = Criteria.Make (Set_spec)

let classify_equal text history =
  List.for_all2
    (fun (c, v) (c', v') -> c = c' && v = v')
    (C.classify (Parse_history.parse text))
    (C.classify history)

let tests =
  [
    Alcotest.test_case "round-trips the paper's figures" `Quick (fun () ->
        List.iter
          (fun (name, text, history) ->
            Alcotest.(check bool) name true (classify_equal text history))
          [
            ("fig1a", "I(1) R{2} R{1} R{}w / I(2) R{1} R{2} R{}w", Figures.fig1a);
            ("fig1b", "I(1) D(2) R{1 2}w / I(2) D(1) R{1 2}w", Figures.fig1b);
            ("fig1c", "I(1) R{} R{1 2}w / I(2) R{1 2}w", Figures.fig1c);
            ("fig1d", "I(1) R{1} I(2) R{1 2}w / R{2} R{1 2}w", Figures.fig1d);
            ( "fig2",
              "I(1) I(3) R{1 3} R{1 2 3} R{1 2}w / I(2) D(3) R{2} R{1 2} R{1 2 3}w",
              Figures.fig2 );
          ]);
    Alcotest.test_case "commas and extra spaces are tolerated" `Quick (fun () ->
        let h = Parse_history.parse "I(1)   R{1, 2}w /  D(3)" in
        Alcotest.(check int) "three events" 3 (History.size h));
    Alcotest.test_case "empty process lines are allowed" `Quick (fun () ->
        let h = Parse_history.parse "I(1) /" in
        Alcotest.(check int) "two processes" 2 (History.process_count h);
        Alcotest.(check int) "one event" 1 (History.size h));
    Alcotest.test_case "negative elements parse" `Quick (fun () ->
        let h = Parse_history.parse "I(-3) R{-3}w" in
        Alcotest.(check int) "two events" 2 (History.size h));
    Alcotest.test_case "malformed input is reported" `Quick (fun () ->
        List.iter
          (fun text ->
            Alcotest.(check bool) text true
              (try
                 ignore (Parse_history.parse text);
                 false
               with Parse_history.Parse_error _ -> true))
          [ "X(1)"; "I(a)"; "R{1"; "I(1) R{}w I(2)"; "I1" ]);
  ]
