(* The event journal: recording order, JSONL round trips, rejection of
   malformed or truncated input, structural diff — and the replay
   contract: re-executing a journaled configuration reproduces the
   identical event stream and history fingerprint, partitions and
   batched delivery included. *)

open Helpers
module Journal = Obs.Journal
module Json = Obs.Json
module P = Generic.Make (Set_spec)
module R = Runner.Make (P)

let sample_events =
  [
    Journal.Partition { from_time = 5.0; to_time = 20.0; group = [ 0; 1 ] };
    Journal.Update { pid = 0; time = 1.5; span = Some 0; label = "I(3)" };
    Journal.Frame
      {
        src = 0;
        dst = 1;
        count = 2;
        bytes = 17;
        sent = 1.5;
        arrival = 4.25;
        spans = [ Some 0; None ];
      };
    Journal.Deliver { src = 0; dst = 1; count = 2; time = 4.25 };
    Journal.Query
      {
        pid = 1;
        invoked = 5.0;
        completed = 5.5;
        span = Some 1;
        label = "R";
        output = "{3}";
        omega = false;
      };
    Journal.Drop { pid = 2; count = 1; time = 6.0 };
    Journal.Crash { pid = 2; time = 6.0 };
    Journal.Probe { time = 7.0; distinct = 2 };
    Journal.Query
      {
        pid = 0;
        invoked = 9.0;
        completed = 9.0;
        span = Some 2;
        label = "Rω";
        output = "{3}";
        omega = true;
      };
  ]

let sample_journal () =
  let j = Journal.create ~header:[ ("seed", Json.Num 1.0) ] () in
  List.iter (Journal.record j) sample_events;
  Journal.seal j ~fingerprint:"deadbeefdeadbeef";
  j

(* Drop the last (non-empty) line of a JSONL text — a truncated file. *)
let chop_last_line s =
  let lines = List.filter (fun l -> l <> "") (String.split_on_char '\n' s) in
  match List.rev lines with
  | [] -> ""
  | _ :: rev_rest -> String.concat "\n" (List.rev rev_rest) ^ "\n"

let expect_parse_error what s =
  match Journal.of_jsonl s with
  | exception Journal.Parse_error _ -> ()
  | _ -> Alcotest.failf "accepted %s" what

let unit_tests =
  [
    Alcotest.test_case "recording keeps order and indices" `Quick (fun () ->
        let j = sample_journal () in
        Alcotest.(check int) "length" (List.length sample_events)
          (Journal.length j);
        Alcotest.(check bool) "order" true (Journal.events j = sample_events);
        Alcotest.(check bool) "nth" true
          (Journal.event j 3 = List.nth sample_events 3);
        (match Journal.event j 99 with
        | exception Invalid_argument _ -> ()
        | _ -> Alcotest.fail "out-of-range index accepted");
        Alcotest.(check (option string))
          "fingerprint" (Some "deadbeefdeadbeef") (Journal.fingerprint j));
    Alcotest.test_case "every event kind survives JSON" `Quick (fun () ->
        List.iter
          (fun e ->
            let e' = Journal.event_of_json (Journal.event_to_json e) in
            if e' <> e then
              Alcotest.failf "event changed: %s"
                (Format.asprintf "%a" Journal.pp_event e))
          sample_events);
    Alcotest.test_case "JSONL round trip preserves everything" `Quick
      (fun () ->
        let j = sample_journal () in
        let j' = Journal.of_jsonl (Journal.to_jsonl j) in
        Alcotest.(check bool) "events" true
          (Journal.events j' = sample_events);
        Alcotest.(check bool) "header" true
          (List.assoc_opt "seed" (Journal.header j') = Some (Json.Num 1.0));
        Alcotest.(check (option string))
          "fingerprint" (Some "deadbeefdeadbeef")
          (Journal.fingerprint j');
        Alcotest.(check bool) "diff agrees" true (Journal.diff j j' = None));
    Alcotest.test_case "malformed journals are rejected" `Quick (fun () ->
        let text = Journal.to_jsonl (sample_journal ()) in
        expect_parse_error "an empty file" "";
        expect_parse_error "a truncated file (no footer)"
          (chop_last_line text);
        expect_parse_error "a headerless file"
          "{\"foo\":1}\n{\"fingerprint\":null,\"events\":0}\n";
        expect_parse_error "an unsupported version"
          "{\"journal\":\"ucsim\",\"version\":2}\n{\"fingerprint\":null,\"events\":0}\n";
        expect_parse_error "a garbage event line"
          "{\"journal\":\"ucsim\",\"version\":1}\nnot json\n{\"fingerprint\":null,\"events\":1}\n";
        expect_parse_error "an unknown event kind"
          "{\"journal\":\"ucsim\",\"version\":1}\n{\"ev\":\"teleport\"}\n{\"fingerprint\":null,\"events\":1}\n";
        (* footer count contradicting the body: remove one event line *)
        let lines =
          List.filter (fun l -> l <> "") (String.split_on_char '\n' text)
        in
        let shortened =
          match lines with
          | header :: _dropped :: rest ->
            String.concat "\n" (header :: rest) ^ "\n"
          | _ -> Alcotest.fail "sample journal too short"
        in
        expect_parse_error "an event-count mismatch" shortened);
    Alcotest.test_case "diff pinpoints the first divergence" `Quick (fun () ->
        let j1 = sample_journal () in
        (* change one event mid-stream *)
        let j2 = Journal.create () in
        List.iteri
          (fun i e ->
            Journal.record j2
              (if i = 4 then
                 Journal.Query
                   {
                     pid = 1;
                     invoked = 5.0;
                     completed = 5.5;
                     span = Some 1;
                     label = "R";
                     output = "{}";
                     omega = false;
                   }
               else e))
          sample_events;
        (match Journal.diff j1 j2 with
        | Some (4, a, b) ->
          Alcotest.(check bool) "sides differ" true (a <> b)
        | other ->
          Alcotest.failf "expected divergence at 4, got %s"
            (match other with
            | None -> "None"
            | Some (i, _, _) -> string_of_int i));
        (* one journal a strict prefix of the other *)
        let prefix = Journal.create () in
        List.iteri
          (fun i e -> if i < 6 then Journal.record prefix e)
          sample_events;
        match Journal.diff j1 prefix with
        | Some (6, _, b) ->
          Alcotest.(check string) "exhausted side" "(end of journal)" b
        | other ->
          Alcotest.failf "expected divergence at 6, got %s"
            (match other with
            | None -> "None"
            | Some (i, _, _) -> string_of_int i));
  ]

(* --------------------- replay determinism (QCheck) --------------------- *)

let journaled_run ~seed ~partitions ~batch_window =
  let journal = Journal.create () in
  let obs = Obs.create ~journal () in
  let rng = Prng.create (seed lxor 0xb5) in
  let workload =
    Workload.For_set.conflict ~rng ~n:3 ~ops_per_process:8 ~domain:8 ~skew:1.0
      ~delete_ratio:0.4
  in
  let config =
    {
      (R.default_config ~n:3 ~seed) with
      R.final_read = Some Set_spec.Read;
      partitions;
      batch_window;
      obs = Some obs;
    }
  in
  let r = R.run config ~workload in
  (journal, r.R.history)

let variants =
  [
    ("plain", [], None);
    ( "partitioned",
      [ { Network.from_time = 5.0; to_time = 60.0; group = [ 0 ] } ],
      None );
    ("batched", [], Some 3.0);
  ]

let qcheck_tests =
  [
    qtest ~count:25
      "a journaled run replays to the identical event stream and fingerprint"
      seed_gen
      (fun seed ->
        List.for_all
          (fun (_, partitions, batch_window) ->
            let j1, h1 = journaled_run ~seed ~partitions ~batch_window in
            let j2, _ = journaled_run ~seed ~partitions ~batch_window in
            Journal.length j1 > 0
            && Journal.diff j1 j2 = None
            && Journal.fingerprint j1 = Journal.fingerprint j2
            && Journal.fingerprint j1
               = Some
                   (History.fingerprint Set_spec.pp_update Set_spec.pp_query
                      Set_spec.pp_output h1)
            (* the serialized form replays the same journal *)
            && Journal.diff j1 (Journal.of_jsonl (Journal.to_jsonl j1)) = None)
          variants);
    qtest ~count:25
      "journals record the run: updates, frames, and one ω read per process"
      seed_gen
      (fun seed ->
        let j, h = journaled_run ~seed ~partitions:[] ~batch_window:None in
        let evs = Journal.events j in
        let count p = List.length (List.filter p evs) in
        count (function Journal.Update _ -> true | _ -> false)
        = List.length (History.updates h)
        && count (function
             | Journal.Query { omega = true; _ } -> true
             | _ -> false)
           = 3
        && count (function Journal.Frame _ -> true | _ -> false) > 0
        (* chronological: recording order is simulated-time order *)
        &&
        let times = List.map Journal.event_time evs in
        List.sort compare times = times);
  ]

let tests = unit_tests @ qcheck_tests
