(* The sharded object space (tentpole: the whole stack generic over a
   shard map).

   - shard-aware Proposition 4 differential on the parallel engine at
     shard counts 1/2/4 — per-shard logs equal across replicas, ω
     sweeps equal to the keyed fold, snapshot/absorb restore agreeing,
     keyed sub-updates conserved;
   - the sequential runner over the space: converged, certificates
     agree, online UC/EC monitors clean;
   - a hot-shard rebalance run (policy armed): at least one split
     fires, entries re-home, and the run still converges with clean
     monitors;
   - manual [trigger_split] + [force_migrate]: the merged sweep is
     preserved, entries move, and every surviving log entry routes to
     the shard that holds it under the post-split ring;
   - the UCX whole-space snapshot/absorb round trip;
   - journal [Rebalance]/[Shard] events through JSON and jsonl;
   - the per-shard registry rows as `ucsim report` renders them
     (golden). *)

module S = Space.Make (Set_spec) (Update_codec.For_set)
module B = Throughput.Sharded (Set_spec) (Update_codec.For_set)
module R = Runner.Make (S)

(* ------------------------- workload plumbing ------------------------- *)

let set_update g =
  let v = 1 + Prng.int g 16 in
  if Prng.float g 1.0 < 0.3 then Set_spec.Delete v else Set_spec.Insert v

let scripts ~seed ~n ~ops ~keys ~skew =
  Workload.For_space.zipf_scripts ~rng:(Prng.create seed) ~n
    ~ops_per_process:ops ~keys ~skew ~fanout:3 ~query_ratio:0.25
    ~update:set_update
    ~query:(fun _ -> Set_spec.Read)
    ~read:(fun k q -> S.K.Read (k, q))

let run_space ?policy ?obs ?(monitors = []) ~shards ~seed ~n ~ops ~keys ~skew
    () =
  let map = S.create_map ?policy ?obs ~shards () in
  S.configure map;
  let monitor =
    if monitors = [] then None else Some (R.Mon.create ~n ~criteria:monitors)
  in
  let config =
    {
      (R.default_config ~n ~seed) with
      R.final_read = Some S.K.Sweep;
      obs;
      monitor;
    }
  in
  let r = R.run config ~workload:(scripts ~seed ~n ~ops ~keys ~skew) in
  (map, monitor, r)

(* --------------------------- manual harness -------------------------- *)

(* Two replicas wired through in-memory mailboxes: enough network to
   exercise fan-out, split and migration without the simulator. *)
let manual_pair map =
  S.configure map;
  let boxes = Array.init 2 (fun _ -> Queue.create ()) in
  let ctx pid : _ Protocol.ctx =
    {
      Protocol.pid;
      n = 2;
      now = (fun () -> 0.0);
      send = (fun ~dst m -> Queue.push (pid, m) boxes.(dst));
      broadcast = (fun m -> Queue.push (pid, m) boxes.(1 - pid));
      broadcast_batch =
        (fun ms -> List.iter (fun m -> Queue.push (pid, m) boxes.(1 - pid)) ms);
      set_timer = (fun ~delay:_ _ -> ());
      count_replay = ignore;
      obs = None;
    }
  in
  let rs = Array.init 2 (fun pid -> S.create (ctx pid)) in
  let drain () =
    let quiet = ref false in
    while not !quiet do
      quiet := true;
      Array.iteri
        (fun dst box ->
          while not (Queue.is_empty box) do
            quiet := false;
            let src, m = Queue.pop box in
            S.receive rs.(dst) ~src m
          done)
        boxes
    done
  in
  (rs, drain)

let sweep r =
  let out = ref None in
  S.query r S.K.Sweep ~on_result:(fun o -> out := Some o);
  match !out with Some o -> o | None -> Alcotest.fail "sweep did not answer"

let feed_manual ~seed ~ops (rs : S.t array) drain =
  let g = Prng.create seed in
  for _ = 1 to ops do
    let p = Prng.int g 2 in
    let width = 1 + Prng.int g 3 in
    let batch = ref [] in
    for _ = 1 to width do
      let k = Prng.int g 32 in
      batch := (k, set_update g) :: !batch
    done;
    S.update rs.(p) (List.rev !batch) ~on_done:ignore;
    drain ()
  done

let entries_route_home map r =
  List.for_all
    (fun (s, log) ->
      List.for_all (fun (_, _, (k, _)) -> Ring.route (S.ring map) k = s) log)
    (S.shard_logs r)

(* ------------------------------ tests -------------------------------- *)

let differential_tests =
  [
    Alcotest.test_case
      "parallel differential holds at shards 1/2/4 (logs, ω fold, snapshot, \
       conservation)"
      `Slow
      (fun () ->
        List.iter
          (fun (shards, seed) ->
            let scripts =
              B.zipf_scripts ~seed ~domains:2 ~ops:300 ~keys:64 ~skew:1.1
                ~fanout:3 ~query_ratio:0.2
            in
            let v = B.measure ~shards ~domains:2 ~scripts () in
            Alcotest.(check bool)
              (Printf.sprintf "shards=%d seed=%d" shards seed)
              true (B.ok v))
          [ (1, 3); (2, 17); (4, 42) ]);
    Alcotest.test_case "sequential runner converges with clean monitors"
      `Quick
      (fun () ->
        let map, monitor, r =
          run_space ~monitors:[ Obs.Monitor.Uc; Obs.Monitor.Ec ] ~shards:4
            ~seed:7 ~n:3 ~ops:20 ~keys:64 ~skew:1.1 ()
        in
        Alcotest.(check bool) "converged" true r.R.converged;
        Alcotest.(check bool) "certificates agree" true r.R.certificates_agree;
        Alcotest.(check int) "ring untouched without a policy" 0
          (S.rebalances map);
        match monitor with
        | None -> Alcotest.fail "monitor missing"
        | Some m ->
          Alcotest.(check (list string)) "monitors clean" []
            (List.map
               (Format.asprintf "%a" Obs.Monitor.pp_violation)
               (R.Mon.violations m)));
  ]

let rebalance_tests =
  [
    Alcotest.test_case
      "hot-shard rebalance fires, re-homes entries, converges, monitors clean"
      `Quick
      (fun () ->
        let policy =
          { S.interval = 15.0; hot_factor = 1.5; max_shards = 64 }
        in
        let map, monitor, r =
          run_space ~policy ~monitors:[ Obs.Monitor.Uc; Obs.Monitor.Ec ]
            ~shards:2 ~seed:11 ~n:3 ~ops:30 ~keys:16 ~skew:1.1 ()
        in
        Alcotest.(check bool) "at least one split" true (S.rebalances map >= 1);
        Alcotest.(check bool) "ring grew" true (Ring.shards (S.ring map) > 2);
        Alcotest.(check bool) "entries re-homed" true (S.moved_entries map > 0);
        Alcotest.(check bool) "converged" true r.R.converged;
        Alcotest.(check bool) "certificates agree" true r.R.certificates_agree;
        match monitor with
        | None -> Alcotest.fail "monitor missing"
        | Some m ->
          Alcotest.(check (list string)) "monitors clean" []
            (List.map
               (Format.asprintf "%a" Obs.Monitor.pp_violation)
               (R.Mon.violations m)));
  ]

let migration_tests =
  [
    Alcotest.test_case
      "manual split + migrate preserves the sweep and re-homes entries"
      `Quick
      (fun () ->
        let map = S.create_map ~shards:2 () in
        let rs, drain = manual_pair map in
        feed_manual ~seed:5 ~ops:60 rs drain;
        let before = sweep rs.(0) in
        Alcotest.(check bool) "replicas agree pre-split" true
          (S.K.equal_output before (sweep rs.(1)));
        let hot, _ =
          match S.shard_ops map with
          | [] -> Alcotest.fail "no shard ops"
          | x :: tl ->
            List.fold_left
              (fun (h, c) (s, n) -> if n > c then (s, n) else (h, c))
              x tl
        in
        let fresh = S.trigger_split map ~now:1.0 ~hot in
        Alcotest.(check bool) "fresh shard id is new" true (fresh > hot);
        Array.iter S.force_migrate rs;
        drain ();
        Alcotest.(check bool) "entries re-homed" true (S.moved_entries map > 0);
        Array.iter
          (fun r ->
            Alcotest.(check bool) "sweep preserved across migration" true
              (S.K.equal_output before (sweep r));
            Alcotest.(check bool) "every entry routes to its shard" true
              (entries_route_home map r))
          rs;
        (* Migration only moves entries, it never loses or duplicates
           them: per-shard lengths sum to the pre-split total. *)
        let total r =
          List.fold_left (fun n (_, l) -> n + l) 0 (S.shard_log_lengths r)
        in
        Alcotest.(check int) "log mass conserved" (total rs.(0)) (total rs.(1)));
    Alcotest.test_case "UCX snapshot/absorb restores a fresh replica" `Quick
      (fun () ->
        let map = S.create_map ~shards:4 () in
        let rs, drain = manual_pair map in
        feed_manual ~seed:9 ~ops:40 rs drain;
        let snap =
          match S.snapshot rs.(0) with
          | Some s -> s
          | None -> Alcotest.fail "space must provide a snapshot"
        in
        let map' = S.create_map ~shards:4 () in
        let fresh, _ = manual_pair map' in
        Alcotest.(check bool) "absorb accepts" true (S.absorb fresh.(0) snap);
        Alcotest.(check bool) "restored sweep agrees" true
          (S.K.equal_output (sweep rs.(0)) (sweep fresh.(0)));
        (* Absorbing twice changes nothing: timestamp-union merge. *)
        Alcotest.(check bool) "absorb is idempotent" true
          (S.absorb fresh.(0) snap);
        Alcotest.(check bool) "sweep unchanged" true
          (S.K.equal_output (sweep rs.(0)) (sweep fresh.(0))));
  ]

let journal_tests =
  [
    Alcotest.test_case "Rebalance/Shard events round-trip JSON and jsonl"
      `Quick
      (fun () ->
        let events =
          [
            Obs.Journal.Rebalance
              { time = 12.5; hot = 1; fresh = 4; shards = 5; moved = 37 };
            Obs.Journal.Shard { time = 12.5; shard = 1; ops = 120; log = 64 };
            Obs.Journal.Shard { time = 12.5; shard = 4; ops = 0; log = 0 };
          ]
        in
        List.iter
          (fun e ->
            Alcotest.(check bool) "event json round-trip" true
              (Obs.Journal.event_of_json (Obs.Journal.event_to_json e) = e))
          events;
        let j = Obs.Journal.create ~header:[ ("shards", Obs.Json.Num 5.0) ] () in
        List.iter (Obs.Journal.record j) events;
        Obs.Journal.seal j ~fingerprint:"cafe";
        let j' = Obs.Journal.of_jsonl (Obs.Journal.to_jsonl j) in
        (match Obs.Journal.diff j j' with
        | None -> ()
        | Some (i, a, b) ->
          Alcotest.failf "jsonl round-trip diverges at %d: %s vs %s" i a b);
        Alcotest.(check (option string)) "fingerprint survives" (Some "cafe")
          (Obs.Journal.fingerprint j'));
  ]

(* The registry rows as `ucsim report` renders them: to_json →
   rows_of_json → pp_rows, filtered to the shard family. Golden — the
   run is deterministic, so the exact counts are part of the
   contract. *)
let registry_golden =
  Alcotest.test_case "per-shard registry rows render as a stable table"
    `Quick
    (fun () ->
      let obs = Obs.create () in
      let map, _, r =
        run_space ~obs ~shards:2 ~seed:13 ~n:2 ~ops:8 ~keys:16 ~skew:1.1 ()
      in
      Alcotest.(check bool) "converged" true r.R.converged;
      let rows =
        Obs.Registry.rows_of_json (Obs.Registry.to_json obs.Obs.registry)
      in
      let shard_rows =
        List.filter
          (fun (row : Obs.Registry.row) ->
            String.length row.name >= 6 && String.sub row.name 0 6 = "shard_")
          rows
      in
      let rendered = Format.asprintf "%a" Obs.Registry.pp_rows shard_rows in
      let total_ops =
        List.fold_left (fun n (_, ops) -> n + ops) 0 (S.shard_ops map)
      in
      let counter name labels =
        match
          List.find_opt
            (fun (row : Obs.Registry.row) ->
              row.name = name && row.labels = labels)
            shard_rows
        with
        | Some { data = Obs.Registry.Count c; _ } -> c
        | _ -> Alcotest.failf "row %s missing" name
      in
      Alcotest.(check int) "shard_ops rows sum to the map's total" total_ops
        (counter "shard_ops" [ ("shard", "0") ]
        + counter "shard_ops" [ ("shard", "1") ]);
      Alcotest.(check string) "report rendering (golden)"
        (String.concat "\n"
           [
             "shard_log_entries{shard=0}  22";
             "shard_log_entries{shard=1}  10";
             "shard_moved_entries         0";
             "shard_ops{shard=0}          22";
             "shard_ops{shard=1}          10";
             "shard_splits{shard=0}       0";
             "shard_splits{shard=1}       0";
             "";
           ])
        rendered)

let tests =
  differential_tests @ rebalance_tests @ migration_tests @ journal_tests
  @ [ registry_golden ]
