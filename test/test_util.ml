(* uc_util: PRNG, heap, bitset, stats, wire, zipf, table, dag. *)

let qtest ?(count = 200) name gen law =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen law)

let prng_tests =
  [
    Alcotest.test_case "prng is deterministic per seed" `Quick (fun () ->
        let a = Prng.create 7 and b = Prng.create 7 in
        for _ = 1 to 100 do
          Alcotest.(check int64) "same stream" (Prng.bits64 a) (Prng.bits64 b)
        done);
    Alcotest.test_case "different seeds give different streams" `Quick (fun () ->
        let a = Prng.create 1 and b = Prng.create 2 in
        Alcotest.(check bool) "diverge" true (Prng.bits64 a <> Prng.bits64 b));
    Alcotest.test_case "split is independent of parent draws" `Quick (fun () ->
        let parent = Prng.create 5 in
        let child = Prng.split parent in
        let first = Prng.bits64 child in
        let parent2 = Prng.create 5 in
        let child2 = Prng.split parent2 in
        Alcotest.(check int64) "same child stream" first (Prng.bits64 child2));
    Alcotest.test_case "copy replays the stream" `Quick (fun () ->
        let a = Prng.create 11 in
        ignore (Prng.bits64 a);
        let b = Prng.copy a in
        Alcotest.(check int64) "copied" (Prng.bits64 a) (Prng.bits64 b));
    qtest "int bound respected"
      QCheck2.Gen.(pair small_int (int_range 1 1000))
      (fun (seed, bound) ->
        let g = Prng.create seed in
        let v = Prng.int g bound in
        0 <= v && v < bound);
    qtest "int_in range respected"
      QCheck2.Gen.(triple small_int (int_range (-50) 50) (int_range 0 100))
      (fun (seed, lo, width) ->
        let g = Prng.create seed in
        let v = Prng.int_in g lo (lo + width) in
        lo <= v && v <= lo + width);
    qtest "float bound respected"
      QCheck2.Gen.small_int
      (fun seed ->
        let g = Prng.create seed in
        let v = Prng.float g 3.5 in
        0.0 <= v && v < 3.5);
    qtest "exponential is non-negative" QCheck2.Gen.small_int (fun seed ->
        let g = Prng.create seed in
        Prng.exponential g ~mean:4.0 >= 0.0);
    qtest "pareto is at least scale" QCheck2.Gen.small_int (fun seed ->
        let g = Prng.create seed in
        Prng.pareto g ~scale:2.0 ~shape:1.5 >= 2.0);
    qtest "shuffle is a permutation" QCheck2.Gen.(pair small_int (list small_int))
      (fun (seed, xs) ->
        let g = Prng.create seed in
        let a = Array.of_list xs in
        Prng.shuffle g a;
        List.sort compare (Array.to_list a) = List.sort compare xs);
    Alcotest.test_case "int rejects non-positive bound" `Quick (fun () ->
        let g = Prng.create 0 in
        Alcotest.check_raises "zero" (Invalid_argument "Prng.int: bound must be positive")
          (fun () -> ignore (Prng.int g 0)));
    Alcotest.test_case "sample_weighted prefers heavy weights" `Quick (fun () ->
        let g = Prng.create 1 in
        let hits = ref 0 in
        for _ = 1 to 1000 do
          if Prng.sample_weighted g [ (9.0, `A); (1.0, `B) ] = `A then incr hits
        done;
        Alcotest.(check bool) "about 90%" true (!hits > 800 && !hits < 980));
  ]

let heap_tests =
  [
    qtest "pops in sorted order" QCheck2.Gen.(list int) (fun xs ->
        let h = Heap.create ~cmp:Int.compare in
        List.iter (Heap.push h) xs;
        let rec drain acc = match Heap.pop h with None -> List.rev acc | Some x -> drain (x :: acc) in
        drain [] = List.sort Int.compare xs);
    qtest "length tracks pushes" QCheck2.Gen.(list int) (fun xs ->
        let h = Heap.create ~cmp:Int.compare in
        List.iter (Heap.push h) xs;
        Heap.length h = List.length xs);
    Alcotest.test_case "peek does not remove" `Quick (fun () ->
        let h = Heap.create ~cmp:Int.compare in
        Heap.push h 3;
        Heap.push h 1;
        Alcotest.(check (option int)) "peek" (Some 1) (Heap.peek h);
        Alcotest.(check int) "still two" 2 (Heap.length h));
    Alcotest.test_case "pop_exn on empty raises" `Quick (fun () ->
        let h = Heap.create ~cmp:Int.compare in
        Alcotest.check_raises "empty" (Invalid_argument "Heap.pop_exn: empty heap") (fun () ->
            ignore (Heap.pop_exn h)));
    Alcotest.test_case "clear empties" `Quick (fun () ->
        let h = Heap.create ~cmp:Int.compare in
        List.iter (Heap.push h) [ 5; 2; 8 ];
        Heap.clear h;
        Alcotest.(check bool) "empty" true (Heap.is_empty h));
    qtest "to_list holds the same elements" QCheck2.Gen.(list small_int) (fun xs ->
        let h = Heap.create ~cmp:Int.compare in
        List.iter (Heap.push h) xs;
        List.sort compare (Heap.to_list h) = List.sort compare xs);
  ]

(* Bitset checked against a Set.Make(Int) model. *)
let bitset_tests =
  let cap = 64 in
  let module S = Set.Make (Int) in
  let gen_ops = QCheck2.Gen.(list (int_range 0 (cap - 1))) in
  let of_model xs = (Bitset.of_list cap xs, S.of_list xs) in
  [
    qtest "of_list/mem agree with the model" gen_ops (fun xs ->
        let b, m = of_model xs in
        List.for_all (fun i -> Bitset.mem b i = S.mem i m) (List.init cap Fun.id));
    qtest "union agrees" QCheck2.Gen.(pair gen_ops gen_ops) (fun (xs, ys) ->
        let bx, mx = of_model xs and by, my = of_model ys in
        Bitset.elements (Bitset.union bx by) = S.elements (S.union mx my));
    qtest "inter agrees" QCheck2.Gen.(pair gen_ops gen_ops) (fun (xs, ys) ->
        let bx, mx = of_model xs and by, my = of_model ys in
        Bitset.elements (Bitset.inter bx by) = S.elements (S.inter mx my));
    qtest "diff agrees" QCheck2.Gen.(pair gen_ops gen_ops) (fun (xs, ys) ->
        let bx, mx = of_model xs and by, my = of_model ys in
        Bitset.elements (Bitset.diff bx by) = S.elements (S.diff mx my));
    qtest "cardinal agrees" gen_ops (fun xs ->
        let b, m = of_model xs in
        Bitset.cardinal b = S.cardinal m);
    qtest "subset agrees" QCheck2.Gen.(pair gen_ops gen_ops) (fun (xs, ys) ->
        let bx, mx = of_model xs and by, my = of_model ys in
        Bitset.subset bx by = S.subset mx my);
    qtest "add/remove are functional" gen_ops (fun xs ->
        let b, _ = of_model xs in
        let b2 = Bitset.add b 0 in
        Bitset.mem b2 0 && (Bitset.mem b 0 = List.mem 0 xs));
    Alcotest.test_case "full has every index" `Quick (fun () ->
        Alcotest.(check int) "cardinal" 10 (Bitset.cardinal (Bitset.full 10)));
    Alcotest.test_case "capacity mismatch raises" `Quick (fun () ->
        Alcotest.check_raises "mismatch" (Invalid_argument "Bitset: capacity mismatch")
          (fun () -> ignore (Bitset.union (Bitset.create 4) (Bitset.create 5))));
    Alcotest.test_case "out-of-bounds raises" `Quick (fun () ->
        Alcotest.check_raises "oob" (Invalid_argument "Bitset: index out of bounds")
          (fun () -> ignore (Bitset.mem (Bitset.create 4) 4)));
    qtest "equal iff same elements" QCheck2.Gen.(pair gen_ops gen_ops) (fun (xs, ys) ->
        let bx, mx = of_model xs and by, my = of_model ys in
        Bitset.equal bx by = S.equal mx my);
  ]

let stats_tests =
  [
    Alcotest.test_case "summary of a known sample" `Quick (fun () ->
        let s = Stats.summarize [ 1.0; 2.0; 3.0; 4.0 ] in
        Alcotest.(check (float 1e-9)) "mean" 2.5 s.Stats.mean;
        Alcotest.(check (float 1e-9)) "min" 1.0 s.Stats.min;
        Alcotest.(check (float 1e-9)) "max" 4.0 s.Stats.max;
        Alcotest.(check (float 1e-9)) "p50" 2.5 s.Stats.p50);
    Alcotest.test_case "percentile interpolates" `Quick (fun () ->
        let sorted = [| 0.0; 10.0 |] in
        Alcotest.(check (float 1e-9)) "p25" 2.5 (Stats.percentile sorted 0.25));
    Alcotest.test_case "empty sample raises" `Quick (fun () ->
        Alcotest.check_raises "empty" (Invalid_argument "Stats.summarize: empty sample")
          (fun () -> ignore (Stats.summarize [])));
    qtest "percentiles are monotone" QCheck2.Gen.(list_size (int_range 1 50) (float_bound_inclusive 100.0))
      (fun xs ->
        let s = Stats.summarize xs in
        s.Stats.min <= s.Stats.p50 && s.Stats.p50 <= s.Stats.p90
        && s.Stats.p90 <= s.Stats.p99 && s.Stats.p99 <= s.Stats.max);
    qtest "stddev is non-negative" QCheck2.Gen.(list_size (int_range 1 50) (float_bound_inclusive 10.0))
      (fun xs -> Stats.stddev xs >= 0.0);
    Alcotest.test_case "histogram buckets cover the sample" `Quick (fun () ->
        let h = Stats.histogram ~buckets:4 [ 0.0; 1.0; 2.0; 3.0; 4.0 ] in
        let rendered = Format.asprintf "%a" Stats.pp_histogram h in
        Alcotest.(check bool) "renders" true (String.length rendered > 0));
    Alcotest.test_case "single-element sample" `Quick (fun () ->
        let s = Stats.summarize [ 7.5 ] in
        Alcotest.(check int) "count" 1 s.Stats.count;
        Alcotest.(check (float 1e-9)) "mean" 7.5 s.Stats.mean;
        Alcotest.(check (float 1e-9)) "stddev" 0.0 s.Stats.stddev;
        Alcotest.(check (float 1e-9)) "p50" 7.5 s.Stats.p50;
        Alcotest.(check (float 1e-9)) "p99" 7.5 s.Stats.p99;
        Alcotest.(check (float 1e-9)) "percentile q=1" 7.5
          (Stats.percentile [| 7.5 |] 1.0));
    Alcotest.test_case "all-equal sample has stddev 0, not NaN" `Quick (fun () ->
        (* With values whose squares lose precision, the naive variance
           can come out as a tiny negative number; sqrt would be NaN. *)
        let xs = List.init 10 (fun _ -> 10.1) in
        let s = Stats.summarize xs in
        Alcotest.(check bool) "stddev not NaN" false (Float.is_nan s.Stats.stddev);
        Alcotest.(check (float 1e-9)) "stddev" 0.0 s.Stats.stddev;
        Alcotest.(check (float 1e-9)) "p90 = the value" 10.1 s.Stats.p90);
    Alcotest.test_case "all-equal histogram has a zero-width range" `Quick
      (fun () ->
        (* The sample range is empty; bucketing must still place every
           sample in the first bucket instead of dividing by zero. *)
        let h = Stats.histogram ~buckets:4 [ 2.0; 2.0; 2.0 ] in
        let rendered = Format.asprintf "%a" Stats.pp_histogram h in
        Alcotest.(check bool) "first bucket holds all three" true
          (let contains_all_three = ref false in
           String.split_on_char '\n' rendered
           |> List.iteri (fun i line ->
                  if i = 0 && String.length line > 0 then
                    contains_all_three :=
                      String.index_opt line '3' <> None
                      && String.index_opt line '#' <> None);
           !contains_all_three));
  ]

let wire_tests =
  [
    Alcotest.test_case "varint sizes at boundaries" `Quick (fun () ->
        List.iter
          (fun (n, want) -> Alcotest.(check int) (string_of_int n) want (Wire.varint_size n))
          [ (0, 1); (127, 1); (128, 2); (16383, 2); (16384, 3) ]);
    Alcotest.test_case "negative varint raises" `Quick (fun () ->
        Alcotest.check_raises "neg" (Invalid_argument "Wire.varint_size: negative") (fun () ->
            ignore (Wire.varint_size (-1))));
    qtest "varint size is monotone" QCheck2.Gen.(pair (int_range 0 100000) (int_range 0 100000))
      (fun (a, b) -> a > b || Wire.varint_size a <= Wire.varint_size b);
    Alcotest.test_case "string and list sizes" `Quick (fun () ->
        Alcotest.(check int) "string" 6 (Wire.string_size "hello");
        Alcotest.(check int) "list" 4 (Wire.list_size Wire.varint_size [ 1; 2; 3 ]));
  ]

let zipf_tests =
  [
    qtest "samples stay in support range" QCheck2.Gen.small_int (fun seed ->
        let z = Zipf.create ~n:10 ~s:1.2 in
        let g = Prng.create seed in
        let v = Zipf.sample z g in
        1 <= v && v <= 10);
    Alcotest.test_case "skew favours rank 1" `Quick (fun () ->
        let z = Zipf.create ~n:100 ~s:1.5 in
        let g = Prng.create 3 in
        let ones = ref 0 in
        for _ = 1 to 1000 do
          if Zipf.sample z g = 1 then incr ones
        done;
        Alcotest.(check bool) "rank 1 dominates" true (!ones > 300));
    Alcotest.test_case "s=0 is roughly uniform" `Quick (fun () ->
        let z = Zipf.create ~n:4 ~s:0.0 in
        let g = Prng.create 3 in
        let counts = Array.make 5 0 in
        for _ = 1 to 4000 do
          let v = Zipf.sample z g in
          counts.(v) <- counts.(v) + 1
        done;
        Array.iteri (fun i c -> if i > 0 then Alcotest.(check bool) "balanced" true (c > 800)) counts);
  ]

let table_tests =
  [
    Alcotest.test_case "render aligns columns" `Quick (fun () ->
        let t = Table.create [ "a"; "bb" ] in
        Table.add_row t [ "xxx"; "y" ];
        let s = Table.render t in
        Alcotest.(check bool) "has borders" true (String.length s > 0 && s.[0] = '+'));
    Alcotest.test_case "markdown renders a separator" `Quick (fun () ->
        let t = Table.create ~aligns:[ Table.Left; Table.Right ] [ "k"; "v" ] in
        Table.add_row t [ "x"; "1" ];
        let s = Table.render_markdown t in
        Alcotest.(check bool) "separator" true
          (String.split_on_char '\n' s |> fun lines -> List.length lines >= 3));
    Alcotest.test_case "ragged rows pad" `Quick (fun () ->
        let t = Table.create [ "a"; "b"; "c" ] in
        Table.add_row t [ "only" ];
        Alcotest.(check bool) "renders" true (String.length (Table.render t) > 0));
    Alcotest.test_case "too many cells raises" `Quick (fun () ->
        let t = Table.create [ "a" ] in
        Alcotest.check_raises "overflow" (Invalid_argument "Table.add_row: more cells than headers")
          (fun () -> Table.add_row t [ "x"; "y" ]));
  ]

let dag_tests =
  [
    Alcotest.test_case "topo order respects edges" `Quick (fun () ->
        let g = Dag.create 4 in
        Dag.add_edge g 0 1;
        Dag.add_edge g 1 2;
        Dag.add_edge g 0 3;
        match Dag.topo_order g with
        | None -> Alcotest.fail "acyclic graph"
        | Some order ->
          let pos v = Option.get (List.find_index (Int.equal v) order) in
          Alcotest.(check bool) "0<1<2" true (pos 0 < pos 1 && pos 1 < pos 2));
    Alcotest.test_case "cycle detected" `Quick (fun () ->
        let g = Dag.create 2 in
        Dag.add_edge g 0 1;
        Dag.add_edge g 1 0;
        Alcotest.(check bool) "cyclic" false (Dag.is_acyclic g));
    Alcotest.test_case "linear extensions of an antichain = n!" `Quick (fun () ->
        let g = Dag.create 4 in
        Alcotest.(check int) "4! = 24" 24 (Dag.count_linear_extensions g ~limit:1000));
    Alcotest.test_case "linear extensions of a chain = 1" `Quick (fun () ->
        let g = Dag.create 4 in
        Dag.add_edge g 0 1;
        Dag.add_edge g 1 2;
        Dag.add_edge g 2 3;
        Alcotest.(check int) "chain" 1 (Dag.count_linear_extensions g ~limit:1000));
    Alcotest.test_case "two chains of 2 = 6 extensions" `Quick (fun () ->
        let g = Dag.create 4 in
        Dag.add_edge g 0 1;
        Dag.add_edge g 2 3;
        Alcotest.(check int) "C(4,2)" 6 (Dag.count_linear_extensions g ~limit:1000));
    Alcotest.test_case "every extension is a valid topological order" `Quick (fun () ->
        let g = Dag.create 4 in
        Dag.add_edge g 0 2;
        Dag.add_edge g 1 3;
        let ok = ref true in
        let (_ : bool) =
          Dag.linear_extensions g (fun order ->
              let pos = Array.make 4 0 in
              Array.iteri (fun i v -> pos.(v) <- i) order;
              if pos.(0) > pos.(2) || pos.(1) > pos.(3) then ok := false;
              false)
        in
        Alcotest.(check bool) "all valid" true !ok);
    Alcotest.test_case "reachable computes transitive closure" `Quick (fun () ->
        let g = Dag.create 4 in
        Dag.add_edge g 0 1;
        Dag.add_edge g 1 2;
        let reach = Dag.reachable g in
        Alcotest.(check bool) "0 reaches 2" true (Bitset.mem reach.(0) 2);
        Alcotest.(check bool) "2 reaches nothing" true (Bitset.is_empty reach.(2)));
    Alcotest.test_case "duplicate edges ignored" `Quick (fun () ->
        let g = Dag.create 2 in
        Dag.add_edge g 0 1;
        Dag.add_edge g 0 1;
        Alcotest.(check (list int)) "single succ" [ 1 ] (Dag.succs g 0));
    Alcotest.test_case "limit caps the enumeration" `Quick (fun () ->
        let g = Dag.create 5 in
        Alcotest.(check int) "capped" 10 (Dag.count_linear_extensions g ~limit:10));
  ]

(* [fork] (the full SplitMix64 split, fresh gamma per child) and the
   byte-compatibility of the legacy [split]/[create] streams it must
   not disturb: the pinned literals below were captured on the tree as
   it stood before [fork] existed, so any drift in the historical
   streams — which every seeded journal depends on — fails here. *)
let fork_tests =
  let chi_square ~cells observed =
    let total = Array.fold_left ( + ) 0 observed in
    let expected = float_of_int total /. float_of_int cells in
    Array.fold_left
      (fun acc o ->
        let d = float_of_int o -. expected in
        acc +. (d *. d /. expected))
      0.0 observed
  in
  [
    Alcotest.test_case "split streams are pinned (pre-fork literals)" `Quick
      (fun () ->
        let g = Prng.create 42 in
        let c1 = Prng.split g in
        let c2 = Prng.split g in
        let check label expected got = Alcotest.(check int64) label expected got in
        check "c1.0" 6332618229526065668L (Prng.bits64 c1);
        check "c1.1" (-816328817471504299L) (Prng.bits64 c1);
        check "c1.2" 8971565426155258802L (Prng.bits64 c1);
        check "c2.0" (-245134149879684690L) (Prng.bits64 c2);
        check "c2.1" 5693819483401481853L (Prng.bits64 c2);
        check "c2.2" (-9098865275727344972L) (Prng.bits64 c2);
        check "parent resumes" 5139283748462763858L (Prng.bits64 g));
    Alcotest.test_case "seeded int stream is pinned" `Quick (fun () ->
        let h = Prng.create 7 in
        let draws = ref [] in
        for _ = 1 to 4 do
          draws := Prng.int h 100 :: !draws
        done;
        Alcotest.(check (list int))
          "first draws" [ 21; 51; 36; 50 ] (List.rev !draws));
    Alcotest.test_case "fork is deterministic in the parent state" `Quick
      (fun () ->
        let a = Prng.create 9 and b = Prng.create 9 in
        let ca = Prng.fork a and cb = Prng.fork b in
        for _ = 1 to 50 do
          Alcotest.(check int64) "same child" (Prng.bits64 ca) (Prng.bits64 cb)
        done;
        (* and the parents stay in lockstep too *)
        Alcotest.(check int64) "same parent" (Prng.bits64 a) (Prng.bits64 b));
    Alcotest.test_case "fork children and parent diverge" `Quick (fun () ->
        let g = Prng.create 3 in
        let c1 = Prng.fork g in
        let c2 = Prng.fork g in
        let take n rng = List.init n (fun _ -> Prng.bits64 rng) in
        let s1 = take 16 c1 and s2 = take 16 c2 and sp = take 16 g in
        Alcotest.(check bool) "c1 <> c2" true (s1 <> s2);
        Alcotest.(check bool) "c1 <> parent" true (s1 <> sp);
        Alcotest.(check bool) "c2 <> parent" true (s2 <> sp));
    Alcotest.test_case "copy preserves the forked gamma" `Quick (fun () ->
        let c = Prng.fork (Prng.create 21) in
        ignore (Prng.bits64 c);
        let d = Prng.copy c in
        for _ = 1 to 20 do
          Alcotest.(check int64) "replays" (Prng.bits64 c) (Prng.bits64 d)
        done);
    Alcotest.test_case "forked child is uniform (chi-square smoke)" `Quick
      (fun () ->
        let c = Prng.fork (Prng.create 123) in
        let buckets = Array.make 16 0 in
        for _ = 1 to 4096 do
          let b = Prng.int c 16 in
          buckets.(b) <- buckets.(b) + 1
        done;
        let stat = chi_square ~cells:16 buckets in
        (* 15 dof; 60 is far beyond any plausible quantile (p < 1e-6),
           so only a broken generator fails — deterministic, no flake. *)
        Alcotest.(check bool)
          (Printf.sprintf "chi2 %.1f < 60" stat)
          true (stat < 60.0));
    Alcotest.test_case "sibling forks don't correlate (chi-square smoke)" `Quick
      (fun () ->
        let root = Prng.create 77 in
        let c1 = Prng.fork root in
        let c2 = Prng.fork root in
        (* Joint distribution of paired draws over a 4x4 grid: under
           independence every cell is uniform. A shared Weyl sequence
           (the pre-gamma failure mode) concentrates the diagonal. *)
        let cells = Array.make 16 0 in
        for _ = 1 to 4096 do
          let i = (4 * Prng.int c1 4) + Prng.int c2 4 in
          cells.(i) <- cells.(i) + 1
        done;
        let stat = chi_square ~cells:16 cells in
        Alcotest.(check bool)
          (Printf.sprintf "chi2 %.1f < 60" stat)
          true (stat < 60.0));
  ]

(* FIPS 180-4 test vectors: the journal fingerprint pins in
   test_differential.ml are only as trustworthy as this digest. *)
let sha256_tests =
  [
    Alcotest.test_case "FIPS vectors" `Quick (fun () ->
        List.iter
          (fun (input, want) -> Alcotest.(check string) input want (Sha256.hex input))
          [
            ( "",
              "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855" );
            ( "abc",
              "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad" );
            ( "abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq",
              "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1" );
            ( "The quick brown fox jumps over the lazy dog",
              "d7a8fbb307d7809469ca9abcb0082e4f8d5651e46d3cdb762d02d0bf37c9e592" );
          ]);
    qtest "digest is a pure function of the bytes" QCheck2.Gen.(string_size (int_range 0 200))
      (fun s ->
        Sha256.hex s = Sha256.hex (String.init (String.length s) (String.get s)));
  ]

let slo_tests =
  [
    Alcotest.test_case "slo on a known sample" `Quick (fun () ->
        let sample = [ 1.0; 2.0; 3.0; 4.0; 50.0 ] in
        let s = Stats.slo ~target:10.0 sample in
        Alcotest.(check int) "count" 5 s.Stats.count;
        Alcotest.(check int) "violations strictly above target" 1 s.Stats.violations;
        Alcotest.(check (float 1e-9)) "compliance" 0.8 s.Stats.compliance;
        Alcotest.(check (float 1e-9)) "max" 50.0 s.Stats.max;
        Alcotest.(check (float 1e-9)) "target echoed" 10.0 s.Stats.target);
    Alcotest.test_case "a sample exactly at target does not violate" `Quick (fun () ->
        let s = Stats.slo ~target:5.0 [ 5.0; 5.0 ] in
        Alcotest.(check int) "no violations" 0 s.Stats.violations;
        Alcotest.(check (float 1e-9)) "full compliance" 1.0 s.Stats.compliance);
    Alcotest.test_case "empty sample raises" `Quick (fun () ->
        Alcotest.check_raises "empty" (Invalid_argument "Stats.slo: empty sample")
          (fun () -> ignore (Stats.slo ~target:1.0 [])));
    qtest "slo percentiles are ordered and compliance bounded"
      QCheck2.Gen.(list_size (int_range 1 60) (float_bound_inclusive 100.0))
      (fun xs ->
        let s = Stats.slo ~target:50.0 xs in
        s.Stats.p50 <= s.Stats.p99
        && s.Stats.p99 <= s.Stats.max
        && s.Stats.compliance >= 0.0
        && s.Stats.compliance <= 1.0
        && s.Stats.violations + int_of_float (s.Stats.compliance *. float_of_int s.Stats.count)
           <= s.Stats.count + 1);
    Alcotest.test_case "slo_by_key empty raises" `Quick (fun () ->
        Alcotest.check_raises "empty"
          (Invalid_argument "Stats.slo_by_key: empty sample") (fun () ->
            ignore (Stats.slo_by_key ~target:1.0 [])));
    Alcotest.test_case "single sample pins every percentile to it" `Quick
      (fun () ->
        let s = Stats.slo ~target:3.0 [ 2.0 ] in
        Alcotest.(check int) "count" 1 s.Stats.count;
        Alcotest.(check (float 1e-9)) "p50" 2.0 s.Stats.p50;
        Alcotest.(check (float 1e-9)) "p99" 2.0 s.Stats.p99;
        Alcotest.(check (float 1e-9)) "max" 2.0 s.Stats.max;
        Alcotest.(check int) "no violations" 0 s.Stats.violations;
        Alcotest.(check (float 1e-9)) "compliance" 1.0 s.Stats.compliance);
    Alcotest.test_case "all-equal latencies judge cleanly, no NaN" `Quick
      (fun () ->
        let xs = List.init 25 (fun _ -> 4.2) in
        let s = Stats.slo ~target:4.2 xs in
        Alcotest.(check bool) "compliance not NaN" false
          (Float.is_nan s.Stats.compliance);
        Alcotest.(check int) "at-target is compliant" 0 s.Stats.violations;
        Alcotest.(check (float 1e-9)) "p99 equals the value" 4.2 s.Stats.p99;
        let rendered = Format.asprintf "%a" Stats.pp_slo s in
        Alcotest.(check bool) "verdict MET" true
          (let len = String.length rendered in
           len >= 3 && String.sub rendered (len - 3) 3 = "MET"));
    Alcotest.test_case "target exactly at p99 is MET" `Quick (fun () ->
        (* p99 interpolation over [1..100] lands at 99.01; pin the
           clamp rule by judging against exactly that value: MET, and
           only the samples strictly above it violate. *)
        let xs = List.init 100 (fun i -> float_of_int (i + 1)) in
        let s0 = Stats.slo ~target:0.0 xs in
        let s = Stats.slo ~target:s0.Stats.p99 xs in
        Alcotest.(check (float 1e-9)) "p99 pinned" 99.01 s.Stats.p99;
        Alcotest.(check int) "only 100.0 is above p99" 1 s.Stats.violations;
        let rendered = Format.asprintf "%a" Stats.pp_slo s in
        Alcotest.(check bool) "verdict MET at equality" true
          (let len = String.length rendered in
           len >= 3 && String.sub rendered (len - 3) 3 = "MET"));
    Alcotest.test_case "slo_by_key collapses each key to its worst leg" `Quick
      (fun () ->
        let s =
          Stats.slo_by_key ~target:10.0
            [ (1, 2.0); (1, 30.0); (2, 4.0); (2, 1.0); (3, 10.0) ]
        in
        Alcotest.(check int) "one verdict per key" 3 s.Stats.count;
        Alcotest.(check int) "only key 1 misses" 1 s.Stats.violations;
        Alcotest.(check (float 1e-9)) "max is worst leg" 30.0 s.Stats.max);
  ]

let window_tests =
  [
    Alcotest.test_case "window evicts oldest first" `Quick (fun () ->
        let w = Stats.window ~capacity:3 in
        List.iter (Stats.window_push w) [ 1.0; 2.0; 3.0; 4.0; 5.0 ];
        Alcotest.(check (list (float 1e-9)))
          "last three, oldest first" [ 3.0; 4.0; 5.0 ] (Stats.window_samples w);
        Alcotest.(check int) "length capped" 3 (Stats.window_length w);
        Alcotest.(check int) "pushed counts evictions" 5 (Stats.window_pushed w));
    Alcotest.test_case "empty window summarizes to None" `Quick (fun () ->
        let w = Stats.window ~capacity:4 in
        Alcotest.(check bool) "summary" true (Stats.window_summary w = None);
        Alcotest.(check bool) "slo" true (Stats.window_slo ~target:1.0 w = None));
    Alcotest.test_case "non-positive capacity raises" `Quick (fun () ->
        Alcotest.check_raises "zero"
          (Invalid_argument "Stats.window: capacity must be positive") (fun () ->
            ignore (Stats.window ~capacity:0)));
    qtest "window agrees with a list-suffix model"
      QCheck2.Gen.(pair (int_range 1 16) (list (float_bound_inclusive 50.0)))
      (fun (cap, xs) ->
        let w = Stats.window ~capacity:cap in
        List.iter (Stats.window_push w) xs;
        let n = List.length xs in
        let keep = min cap n in
        let model = List.filteri (fun i _ -> i >= n - keep) xs in
        Stats.window_samples w = model
        && Stats.window_length w = keep
        && Stats.window_pushed w = n);
    qtest "windowed slo matches slo on the retained suffix"
      QCheck2.Gen.(pair (int_range 1 8)
                     (list_size (int_range 1 40) (float_bound_inclusive 9.0)))
      (fun (cap, xs) ->
        let w = Stats.window ~capacity:cap in
        List.iter (Stats.window_push w) xs;
        match Stats.window_slo ~target:5.0 w with
        | None -> false
        | Some s ->
          let direct = Stats.slo ~target:5.0 (Stats.window_samples w) in
          s.Stats.violations = direct.Stats.violations
          && s.Stats.p99 = direct.Stats.p99);
  ]

let tests =
  prng_tests @ fork_tests @ heap_tests @ bitset_tests @ stats_tests
  @ slo_tests @ window_tests @ sha256_tests @ wire_tests @ zipf_tests
  @ table_tests @ dag_tests
