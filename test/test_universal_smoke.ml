(* End-to-end: Algorithm 1 on the set, adversarial delays, must converge
   with agreeing certificates and a UC/EC-valid extracted history. *)

module P = Generic.Make (Set_spec)
module R = Runner.Make (P)

let conflict_workload : R.action list array =
  [|
    [ Protocol.Invoke_update (Set_spec.Insert 1); Protocol.Invoke_update (Set_spec.Delete 2); Protocol.Invoke_query Set_spec.Read ];
    [ Protocol.Invoke_update (Set_spec.Insert 2); Protocol.Invoke_update (Set_spec.Delete 1); Protocol.Invoke_query Set_spec.Read ];
    [ Protocol.Invoke_update (Set_spec.Insert 3); Protocol.Invoke_query Set_spec.Read ];
  |]

let run_once seed =
  let config =
    { (R.default_config ~n:3 ~seed) with R.final_read = Some Set_spec.Read }
  in
  R.run config ~workload:conflict_workload

let tests =
  [
    Alcotest.test_case "universal set converges" `Quick (fun () ->
        let r = run_once 42 in
        Alcotest.(check bool) "converged" true r.R.converged;
        Alcotest.(check bool) "certificates agree" true r.R.certificates_agree;
        Alcotest.(check int) "three final reads" 3 (List.length r.R.final_outputs));
    Alcotest.test_case "extracted history is UC and EC" `Quick (fun () ->
        let r = run_once 7 in
        let module C = Criteria.Make (Set_spec) in
        Alcotest.(check bool) "UC" true (C.holds Criteria.UC r.R.history);
        Alcotest.(check bool) "EC" true (C.holds Criteria.EC r.R.history));
    Alcotest.test_case "certificate explains the final reads" `Quick (fun () ->
        let r = run_once 99 in
        match (r.R.certificates, r.R.final_outputs) with
        | (_, cert) :: _, (_, out) :: _ ->
          let module Run = Uqadt.Run (Set_spec) in
          let state = Run.final_state (List.map snd cert) in
          Alcotest.(check bool) "explains" true
            (Set_spec.equal_output (Set_spec.eval state Set_spec.Read) out)
        | _, _ -> Alcotest.fail "missing certificate or final read");
    Alcotest.test_case "deterministic under a fixed seed" `Quick (fun () ->
        let a = run_once 1234 and b = run_once 1234 in
        Alcotest.(check int) "same message count" a.R.metrics.Metrics.messages_sent
          b.R.metrics.Metrics.messages_sent;
        Alcotest.(check bool) "same finals" true
          (List.for_all2
             (fun (p, o) (p', o') -> p = p' && Set_spec.equal_output o o')
             a.R.final_outputs b.R.final_outputs));
    Alcotest.test_case "survives n-1 crashes (wait-freedom)" `Quick (fun () ->
        let config =
          {
            (R.default_config ~n:3 ~seed:5) with
            R.final_read = Some Set_spec.Read;
            crashes = [ (2.0, 1); (3.0, 2) ];
          }
        in
        let r = R.run config ~workload:conflict_workload in
        (* The survivor still answers: operations never block. *)
        Alcotest.(check int) "one final read" 1 (List.length r.R.final_outputs));
  ]
