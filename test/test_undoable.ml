(* The Karsenty–Beaudouin-Lafon inverse law, T(T(s,u),u⁻¹) = s, for all
   four undoable instances — the soundness condition of the undo-based
   construction. *)

open Helpers

let law (type s u q o un) name
    (module A : Undoable.S
      with type state = s
       and type update = u
       and type query = q
       and type output = o
       and type undo = un) =
  qtest (name ^ ": undo restores the pre-state exactly") seed_gen (fun seed ->
      let rng = Prng.create seed in
      let module R = Uqadt.Run (A) in
      (* Try the law from several distinct reachable states. *)
      let rec go state i =
        i = 0
        ||
        let u = A.random_update rng in
        let after, tok = A.apply_with_undo state u in
        A.equal_state (A.undo after tok) state
        && A.equal_state after (A.apply state u)
        && go after (i - 1)
      in
      go A.initial 25)

let tests =
  [
    law "set" (module Undoable.Set);
    law "register" (module Undoable.Register);
    law "counter" (module Undoable.Counter);
    law "memory" (module Undoable.Memory);
  ]
