(* The flight recorder in isolation: the merge is a faithful linear
   extension (nothing dropped, nothing reordered within a domain, sends
   before their delivers), the Lamport/sequence stamping follows the
   documented discipline, a recorded-then-merged journal is
   byte-pinnable under a deterministic clock, and a planted consistency
   violation is flagged identically by the online monitor and the batch
   checker. *)

open Helpers
module R = Obs.Recorder
module T_counter = Throughput.Bench (Counter_spec)
module Uc_batch = Check_uc.Make (Counter_spec)

(* A deterministic wall clock: 0.0, 0.5, 1.0, ... per record. *)
let counter_clock () =
  let t = ref (-0.5) in
  fun () ->
    t := !t +. 0.5;
    !t

(* ----------------------- stamping discipline ----------------------- *)

let lamport_discipline () =
  let r = R.create ~now:(counter_clock ()) ~domains:2 () in
  let h0 = R.handle r 0 and h1 = R.handle r 1 in
  R.invoke_update h0;
  let lam = R.send h0 ~dst:1 ~count:1 ~bytes:8 in
  (* Two records on domain 0, clock bumped on each: the send carries
     the second stamp. *)
  Alcotest.(check int) "send stamp" 2 lam;
  (* Domain 1 is behind; the deliver must jump past the frame stamp. *)
  R.deliver h1 ~src:0 ~count:1 ~frame_lamport:lam;
  R.invoke_query h1 ~omega:true;
  Alcotest.(check int) "all records kept" 4 (R.recorded r);
  match R.events r with
  | [
      R.Invoke_update { lamport = ul; wall = uw; _ };
      R.Send { lamport = sl; _ };
      R.Deliver { lamport = dl; dseq; _ };
      R.Invoke_query { lamport = ql; wall = qw; _ };
    ] ->
    Alcotest.(check int) "update first" 1 ul;
    Alcotest.(check int) "send second" 2 sl;
    Alcotest.(check bool) "deliver after send" true (dl > sl);
    Alcotest.(check int) "deliver = max+1" 3 dl;
    Alcotest.(check int) "first delivery seq" 0 dseq;
    Alcotest.(check int) "receiver program order" 4 ql;
    Alcotest.(check (float 1e-9)) "clock injected" 0.0 uw;
    Alcotest.(check (float 1e-9)) "clock ticks" 1.5 qw
  | evs ->
    Alcotest.fail (Printf.sprintf "unexpected stream of %d" (List.length evs))

let chunk_roll () =
  (* chunk = 2 forces a fresh chunk every other record. *)
  let r = R.create ~chunk:2 ~domains:1 () in
  let h = R.handle r 0 in
  for _ = 1 to 7 do
    R.invoke_update h
  done;
  Alcotest.(check int) "recorded across chunks" 7 (R.recorded r);
  let evs = R.events r in
  Alcotest.(check int) "decoded across chunks" 7 (List.length evs);
  List.iteri
    (fun i ev ->
      match ev with
      | R.Invoke_update { seq; lamport; _ } ->
        Alcotest.(check int) "seq in order" i seq;
        Alcotest.(check int) "lamport in order" (i + 1) lamport
      | _ -> Alcotest.fail "kind corrupted by chunk roll")
    evs

(* ------------------- no-drop / no-reorder property ------------------ *)

(* Mirror of what a schedule appended, per domain, in program order. *)
type mirror =
  | MU
  | MQ of bool
  | MS of int * int * int  (* dst, count, bytes *)
  | MD of int * int  (* src, count *)
  | MSt of int

let mirror_of_event = function
  | R.Invoke_update _ -> MU
  | R.Invoke_query { omega; _ } -> MQ omega
  | R.Send { dst; count; bytes; _ } -> MS (dst, count, bytes)
  | R.Deliver { src; count; _ } -> MD (src, count)
  | R.Stall { dst; _ } -> MSt dst

(* Drive one recorder through a random single-threaded interleaving of
   [domains] handles: sends enqueue their frame stamp into a per
   [(src, dst)] FIFO, delivers pop it — exactly the engine's mailbox
   shape. Returns the per-domain mirrors in program order. *)
let random_schedule rng ~domains ~steps r =
  let mirrors = Array.make domains [] in
  let frames = Array.make_matrix domains domains (Queue.create ()) in
  for src = 0 to domains - 1 do
    for dst = 0 to domains - 1 do
      frames.(src).(dst) <- Queue.create ()
    done
  done;
  let push pid m = mirrors.(pid) <- m :: mirrors.(pid) in
  for _ = 1 to steps do
    let pid = Prng.int rng domains in
    let h = R.handle r pid in
    match Prng.int rng 5 with
    | 0 ->
      R.invoke_update h;
      push pid MU
    | 1 ->
      let omega = Prng.bool rng in
      R.invoke_query h ~omega;
      push pid (MQ omega)
    | 2 when domains > 1 ->
      let dst = (pid + 1 + Prng.int rng (domains - 1)) mod domains in
      let count = 1 + Prng.int rng 3 in
      let bytes = Prng.int rng 64 in
      let lam = R.send h ~dst ~count ~bytes in
      Queue.push (lam, count) frames.(pid).(dst);
      push pid (MS (dst, count, bytes))
    | 3 ->
      (* Deliver the oldest pending frame addressed to [pid], if any. *)
      let src =
        let rec find s =
          if s >= domains then None
          else if s <> pid && not (Queue.is_empty frames.(s).(pid)) then Some s
          else find (s + 1)
        in
        find 0
      in
      (match src with
       | None ->
         R.invoke_update h;
         push pid MU
       | Some src ->
         let lam, count = Queue.pop frames.(src).(pid) in
         R.deliver h ~src ~count ~frame_lamport:lam;
         push pid (MD (src, count)))
    | _ ->
      let dst = Prng.int rng domains in
      R.stall h ~dst;
      push pid (MSt dst)
  done;
  Array.map List.rev mirrors

let sort_key = function
  | R.Invoke_update { lamport; pid; seq; _ }
  | R.Invoke_query { lamport; pid; seq; _ }
  | R.Send { lamport; pid; seq; _ }
  | R.Deliver { lamport; pid; seq; _ }
  | R.Stall { lamport; pid; seq; _ } ->
    (lamport, pid, seq)

let event_seq ev =
  let _, _, s = sort_key ev in
  s

let merge_is_faithful seed =
  let rng = Prng.create seed in
  let domains = 2 + Prng.int rng 3 in
  let steps = 20 + Prng.int rng 120 in
  (* Tiny chunks so every run crosses several chunk boundaries. *)
  let r = R.create ~chunk:3 ~domains () in
  let mirrors = random_schedule rng ~domains ~steps r in
  let evs = R.events r in
  (* Nothing dropped. *)
  List.length evs = steps
  && R.recorded r = steps
  (* Merge order is (lamport, pid, seq), strictly increasing. *)
  && (let rec sorted = function
        | a :: (b :: _ as rest) -> sort_key a < sort_key b && sorted rest
        | _ -> true
      in
      sorted evs)
  (* Per-domain projection = program order: seq contiguous from 0,
     lamport strictly increasing, payloads equal to the mirror. *)
  && (let ok = ref true in
      for pid = 0 to domains - 1 do
        let own = List.filter (fun e -> R.event_pid e = pid) evs in
        let seq_ok =
          List.mapi (fun i _ -> i) own = List.map event_seq own
        in
        let lam_ok =
          let rec up = function
            | a :: (b :: _ as rest) ->
              R.event_lamport a < R.event_lamport b && up rest
            | _ -> true
          in
          up own
        in
        ok :=
          !ok && seq_ok && lam_ok
          && List.map mirror_of_event own = mirrors.(pid)
      done;
      !ok)
  (* Causality: the i-th send src→dst precedes the i-th deliver of a
     frame from src at dst, for every pair. *)
  && (let ok = ref true in
      for src = 0 to domains - 1 do
        for dst = 0 to domains - 1 do
          let sends = ref 0 and delivered = ref 0 in
          List.iter
            (fun ev ->
              match ev with
              | R.Send { pid; dst = d; _ } when pid = src && d = dst ->
                incr sends
              | R.Deliver { pid; src = s; _ } when pid = dst && s = src ->
                incr delivered;
                if !delivered > !sends then ok := false
              | _ -> ())
            evs
        done
      done;
      !ok)

(* ---------------------- pinned recorded journal --------------------- *)

(* A handcrafted two-domain counter run, recorded single-threaded under
   the deterministic clock. The journal built from the merged stream
   must replay cleanly AND hash to pinned bytes — the recorder wire
   format, the merge order, the journal rendering and the fingerprint
   are all load-bearing. *)
let scripts_2dom : (Counter_spec.update, Counter_spec.query) Protocol.invocation
                     list array =
  [|
    [
      Protocol.Invoke_update (Counter_spec.Add 1);
      Protocol.Invoke_query Counter_spec.Value;
    ];
    [ Protocol.Invoke_update (Counter_spec.Add 2) ];
  |]

let record_2dom r =
  let h0 = R.handle r 0 and h1 = R.handle r 1 in
  R.invoke_update h0;
  (* p0: Add 1 *)
  let lam01 = R.send h0 ~dst:1 ~count:1 ~bytes:12 in
  R.invoke_update h1;
  (* p1: Add 2 *)
  let lam10 = R.send h1 ~dst:0 ~count:1 ~bytes:12 in
  R.deliver h0 ~src:1 ~count:1 ~frame_lamport:lam10;
  R.invoke_query h0 ~omega:false;
  (* p0 reads 3 *)
  R.deliver h1 ~src:0 ~count:1 ~frame_lamport:lam01;
  R.invoke_query h0 ~omega:true;
  R.invoke_query h1 ~omega:true

let pinned_recorded_journal () =
  let r = R.create ~now:(counter_clock ()) ~domains:2 () in
  record_2dom r;
  let journal =
    T_counter.journal_of_events
      ~header:[ ("engine", Obs.Json.Str "parallel"); ("spec", Obs.Json.Str "counter") ]
      ~scripts:scripts_2dom ~final_read:Counter_spec.Value
      ~query_outputs:[| [ 3 ]; [] |]
      ~omega_outputs:[ (0, 3); (1, 3) ]
      (R.events r)
  in
  Alcotest.(check int) "one journal event per record" 9
    (Obs.Journal.length journal);
  (match
     T_counter.replay_journal ~scripts:scripts_2dom
       ~final_read:Counter_spec.Value journal
   with
   | Ok fp ->
     Alcotest.(check (option string))
       "replay hits the footer" (Some fp)
       (Obs.Journal.fingerprint journal)
   | Error e -> Alcotest.fail ("replay failed: " ^ e));
  Alcotest.(check string) "sha256 of the recorded journal"
    "3c742a2e018f3fd5c1ee3814d843572be7e240ab73d61ddad27e3b825328f8ef"
    (Sha256.hex (Obs.Journal.to_jsonl journal))

(* The batched sibling of the pin above: the same two domains, but each
   direction's updates ride one coalesced two-message frame — the shape
   the engine produces with [batch_every] > 1. The deliver pops both
   messages at once, so the replay bridge exercises [receive_batch] on
   the sequential core, and the journal bytes get their own pin (the
   unbatched pin must never move; this one covers the batched wire). *)
let scripts_2dom_batched :
    (Counter_spec.update, Counter_spec.query) Protocol.invocation list array =
  [|
    [
      Protocol.Invoke_update (Counter_spec.Add 1);
      Protocol.Invoke_update (Counter_spec.Add 2);
    ];
    [
      Protocol.Invoke_update (Counter_spec.Add 10);
      Protocol.Invoke_update (Counter_spec.Add 20);
    ];
  |]

let record_2dom_batched r =
  let h0 = R.handle r 0 and h1 = R.handle r 1 in
  R.invoke_update h0;
  (* p0: Add 1, buffered *)
  R.invoke_update h0;
  (* p0: Add 2, buffered *)
  let lam01 = R.send h0 ~dst:1 ~count:2 ~bytes:24 in
  R.invoke_update h1;
  R.invoke_update h1;
  let lam10 = R.send h1 ~dst:0 ~count:2 ~bytes:24 in
  R.deliver h0 ~src:1 ~count:2 ~frame_lamport:lam10;
  R.deliver h1 ~src:0 ~count:2 ~frame_lamport:lam01;
  R.invoke_query h0 ~omega:true;
  R.invoke_query h1 ~omega:true

let pinned_batched_journal () =
  let r = R.create ~now:(counter_clock ()) ~domains:2 () in
  record_2dom_batched r;
  let journal =
    T_counter.journal_of_events
      ~header:
        [
          ("engine", Obs.Json.Str "parallel");
          ("spec", Obs.Json.Str "counter");
          ("batch", Obs.Json.Num 2.0);
        ]
      ~scripts:scripts_2dom_batched ~final_read:Counter_spec.Value
      ~query_outputs:[| []; [] |]
      ~omega_outputs:[ (0, 33); (1, 33) ]
      (R.events r)
  in
  Alcotest.(check int) "one journal event per record" 10
    (Obs.Journal.length journal);
  (match
     T_counter.replay_journal ~scripts:scripts_2dom_batched
       ~final_read:Counter_spec.Value journal
   with
   | Ok fp ->
     Alcotest.(check (option string))
       "replay hits the footer" (Some fp)
       (Obs.Journal.fingerprint journal)
   | Error e -> Alcotest.fail ("batched replay failed: " ^ e));
  Alcotest.(check string) "sha256 of the batched journal"
    "a8bb6686bdcad05a63d13301896998ce74ab00b3c70a0306959b9b9289f35d01"
    (Sha256.hex (Obs.Journal.to_jsonl journal))

(* A corrupt recording — the stream claims one more update than the
   script holds — must be rejected, not replayed into nonsense. *)
let mismatched_scripts_rejected () =
  let r = R.create ~now:(counter_clock ()) ~domains:2 () in
  record_2dom r;
  R.invoke_update (R.handle r 0);
  match
    T_counter.replay_journal ~scripts:scripts_2dom
      ~final_read:Counter_spec.Value
      (T_counter.journal_of_events ~scripts:scripts_2dom
         ~final_read:Counter_spec.Value
         ~query_outputs:[| [ 3 ]; [] |]
         ~omega_outputs:[ (0, 3); (1, 3) ]
         (R.events r))
  with
  | exception Failure _ -> ()
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "corrupt stream replayed successfully"

(* ---------------- monitor vs batch checker agreement ---------------- *)

(* Real engine runs cannot violate UC (that is the point of the
   algorithm), so the differential needs a planted violation: two
   isolated domains whose ω reads answer different final states. The
   online monitor over the merged stream and the batch checker over the
   resolved history must agree — and on the healthy handcrafted run
   they must both stay clean. *)
let planted_violation_agreement () =
  let r = R.create ~now:(counter_clock ()) ~domains:2 () in
  let h0 = R.handle r 0 and h1 = R.handle r 1 in
  R.invoke_update h0;
  (* Add 1, never delivered *)
  R.invoke_query h0 ~omega:true;
  (* ω = 1 *)
  R.invoke_update h1;
  (* Add 2, never delivered *)
  R.invoke_query h1 ~omega:true;
  (* ω = 2: no linearization of {Add 1, Add 2} answers both *)
  let scripts =
    [|
      [ Protocol.Invoke_update (Counter_spec.Add 1) ];
      [ Protocol.Invoke_update (Counter_spec.Add 2) ];
    |]
  in
  let omega_outputs = [ (0, 1); (1, 2) ] in
  let mon =
    T_counter.feed_monitor
      ~criteria:[ Obs.Monitor.Uc; Obs.Monitor.Ec ]
      ~scripts ~final_read:Counter_spec.Value
      ~query_outputs:[| []; [] |]
      ~omega_outputs (R.events r)
  in
  Alcotest.(check bool) "monitor flags the violation" false
    (T_counter.Mon.clean mon);
  let uc_flagged =
    List.exists
      (fun v -> v.Obs.Monitor.criterion = Obs.Monitor.Uc)
      (T_counter.Mon.violations mon)
  in
  Alcotest.(check bool) "UC monitor fired" true uc_flagged;
  let h =
    T_counter.history_of_events ~scripts ~final_read:Counter_spec.Value
      ~query_outputs:[| []; [] |]
      ~omega_outputs (R.events r)
  in
  Alcotest.(check bool) "batch checker agrees: not UC" false (Uc_batch.holds h)

let clean_run_agreement () =
  let r = R.create ~now:(counter_clock ()) ~domains:2 () in
  record_2dom r;
  let mon =
    T_counter.feed_monitor
      ~criteria:[ Obs.Monitor.Uc; Obs.Monitor.Ec; Obs.Monitor.Pc ]
      ~scripts:scripts_2dom ~final_read:Counter_spec.Value
      ~query_outputs:[| [ 3 ]; [] |]
      ~omega_outputs:[ (0, 3); (1, 3) ]
      (R.events r)
  in
  Alcotest.(check bool) "monitors clean" true (T_counter.Mon.clean mon);
  (* Only invocations feed the monitor: 2 updates, 1 query, 2 ω. *)
  Alcotest.(check int) "monitor saw every invocation" 5
    (T_counter.Mon.events_seen mon);
  let h =
    T_counter.history_of_events ~scripts:scripts_2dom
      ~final_read:Counter_spec.Value
      ~query_outputs:[| [ 3 ]; [] |]
      ~omega_outputs:[ (0, 3); (1, 3) ]
      (R.events r)
  in
  Alcotest.(check bool) "batch checker agrees: UC" true (Uc_batch.holds h)

(* ----------------------------- guards ------------------------------ *)

let rejects_bad_create () =
  Alcotest.check_raises "domains"
    (Invalid_argument "Recorder.create: domains must be positive") (fun () ->
      ignore (R.create ~domains:0 ()));
  Alcotest.check_raises "chunk"
    (Invalid_argument "Recorder.create: chunk must be positive") (fun () ->
      ignore (R.create ~chunk:0 ~domains:1 ()))

let tests =
  [
    Alcotest.test_case "Lamport/seq/wall stamping discipline" `Quick
      lamport_discipline;
    Alcotest.test_case "chunk rolls lose nothing" `Quick chunk_roll;
    qtest ~count:200 "merge drops nothing, reorders nothing" seed_gen
      merge_is_faithful;
    Alcotest.test_case "recorded journal is byte-pinned and replays" `Quick
      pinned_recorded_journal;
    Alcotest.test_case "batched journal is byte-pinned and replays" `Quick
      pinned_batched_journal;
    Alcotest.test_case "mismatched recording rejected" `Quick
      mismatched_scripts_rejected;
    Alcotest.test_case "planted violation: monitor agrees with batch checker"
      `Quick planted_violation_agreement;
    Alcotest.test_case "clean run: monitor agrees with batch checker" `Quick
      clean_run_agreement;
    Alcotest.test_case "malformed create rejected" `Quick rejects_bad_create;
  ]
