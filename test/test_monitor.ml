(* Online monitors versus the post-hoc checkers. The contract: fed a
   history's events in any program-order-respecting interleaving, the
   monitor's first violation index is exactly the first prefix on which
   the corresponding batch checker fails (and the monitor is clean iff
   no prefix ever fails). Differentially tested on random histories,
   on the paper's figure fixtures, and live on simulator runs — where
   Algorithm 1 must stay clean and the non-FIFO pipelined protocol
   must be caught at a reproducible event index. *)

open Helpers
module Monitor = Obs.Monitor
module Journal = Obs.Journal
module Gen = Gen_history.Make (Set_spec)
module M = Monitor.Make (Set_spec)
module Pc = Check_pc.Make (Set_spec)
module Uc = Check_uc.Make (Set_spec)
module Ec = Check_ec.Make (Set_spec)

let batch_holds = function
  | Monitor.Uc -> Uc.holds
  | Monitor.Ec -> Ec.holds
  | Monitor.Pc -> Pc.holds

(* A feed is a program-order-respecting interleaving of a history's
   per-process step lists. *)
let random_feed rng h =
  let n = History.process_count h in
  let lines = Array.init n (fun p -> ref (History.steps_of_process h p)) in
  let out = ref [] in
  for _ = 1 to History.size h do
    let live =
      List.filter (fun p -> !(lines.(p)) <> []) (List.init n Fun.id)
    in
    let p = List.nth live (Prng.int rng (List.length live)) in
    (match !(lines.(p)) with
    | s :: rest ->
      lines.(p) := rest;
      out := (p, s) :: !out
    | [] -> assert false)
  done;
  List.rev !out

let round_robin_feed h =
  let n = History.process_count h in
  let lines = Array.init n (fun p -> ref (History.steps_of_process h p)) in
  let out = ref [] in
  let remaining () = Array.exists (fun l -> !l <> []) lines in
  while remaining () do
    Array.iteri
      (fun p line ->
        match !line with
        | [] -> ()
        | s :: rest ->
          line := rest;
          out := (p, s) :: !out)
      lines
  done;
  List.rev !out

let feed_monitor ~n criterion feed =
  let m = M.create ~n ~criteria:[ criterion ] in
  List.iteri
    (fun i (pid, step) ->
      match step with
      | History.U u -> M.on_update m ~pid ~index:i ~span:None u
      | History.Q (q, o) ->
        M.on_query m ~pid ~index:i ~span:None ~omega:false q o
      | History.Qw (q, o) ->
        M.on_query m ~pid ~index:i ~span:None ~omega:true q o)
    feed;
  Option.map (fun v -> v.Monitor.index) (M.first_violation m)

(* The naive oracle: rebuild the prefix history after every event and
   run the batch checker on it. *)
let first_failing_prefix ~n holds feed =
  let lines = Array.make n [] in
  let rec go i = function
    | [] -> None
    | (pid, step) :: rest ->
      lines.(pid) <- step :: lines.(pid);
      let h = History.make (Array.to_list (Array.map List.rev lines)) in
      if holds h then go (i + 1) rest else Some i
  in
  go 0 feed

let differential criterion name =
  qtest ~count:80 name seed_gen (fun seed ->
      let rng = Prng.create seed in
      let h = Gen.convergent_mix rng ~processes:3 ~max_updates:4 ~max_queries:3 in
      let n = History.process_count h in
      let feed = random_feed rng h in
      feed_monitor ~n criterion feed
      = first_failing_prefix ~n (batch_holds criterion) feed)

let differential_tests =
  [
    differential Monitor.Pc
      "PC monitor flags exactly the first prefix Check_pc rejects";
    differential Monitor.Uc
      "UC monitor flags exactly the first prefix Check_uc rejects";
    differential Monitor.Ec
      "EC monitor flags exactly the first prefix Check_ec rejects";
  ]

(* ------------------------- figure fixtures ------------------------- *)

let figure_tests =
  [
    Alcotest.test_case "figure fixtures match the caption verdicts" `Quick
      (fun () ->
        List.iter
          (fun (name, h, expected) ->
            let n = History.process_count h in
            let feed = round_robin_feed h in
            List.iter
              (fun (criterion, batch_criterion) ->
                match List.assoc_opt batch_criterion expected with
                | None -> ()
                | Some want ->
                  let monitored = feed_monitor ~n criterion feed in
                  let naive =
                    first_failing_prefix ~n (batch_holds criterion) feed
                  in
                  Alcotest.(check (option int))
                    (Printf.sprintf "%s %s index" name
                       (Monitor.criterion_name criterion))
                    naive monitored;
                  (* a caption saying "not C" means some prefix — at the
                     latest the full history — must fail *)
                  if not want then
                    Alcotest.(check bool)
                      (Printf.sprintf "%s violates %s" name
                         (Monitor.criterion_name criterion))
                      true (monitored <> None))
              [
                (Monitor.Uc, Criteria.UC);
                (Monitor.Ec, Criteria.EC);
                (Monitor.Pc, Criteria.PC);
              ])
          Figures.all);
  ]

(* --------------------------- live runs ----------------------------- *)

module G_set = Generic.Make (Set_spec)
module Rg = Runner.Make (G_set)
module Pipe_set = Pipelined.Make (Set_spec)
module Rp = Runner.Make (Pipe_set)

let all_criteria = [ Monitor.Uc; Monitor.Ec; Monitor.Pc ]

let monitored_generic_run seed =
  let obs = Obs.create () in
  let mon = Rg.Mon.create ~n:3 ~criteria:all_criteria in
  let rng = Prng.create seed in
  let workload =
    Workload.For_set.conflict ~rng ~n:3 ~ops_per_process:4 ~domain:16 ~skew:1.0
      ~delete_ratio:0.3
  in
  let config =
    {
      (Rg.default_config ~n:3 ~seed) with
      Rg.final_read = Some Set_spec.Read;
      obs = Some obs;
      monitor = Some mon;
    }
  in
  let r = Rg.run config ~workload in
  (mon, r.Rg.history)

let monitored_pipe_run seed =
  let journal = Journal.create () in
  let obs = Obs.create ~journal () in
  let mon = Rp.Mon.create ~n:3 ~criteria:all_criteria in
  let rng = Prng.create seed in
  let workload =
    Workload.For_set.conflict ~rng ~n:3 ~ops_per_process:4 ~domain:16 ~skew:1.0
      ~delete_ratio:0.3
  in
  let config =
    {
      (Rp.default_config ~n:3 ~seed) with
      Rp.final_read = Some Set_spec.Read;
      obs = Some obs;
      monitor = Some mon;
    }
  in
  let r = Rp.run config ~workload in
  (journal, mon, r.Rp.history)

let live_tests =
  [
    Alcotest.test_case "Algorithm 1 stays clean under every monitor" `Quick
      (fun () ->
        List.iter
          (fun seed ->
            let mon, h = monitored_generic_run seed in
            Alcotest.(check bool)
              (Printf.sprintf "clean (seed %d)" seed)
              true (Rg.Mon.clean mon);
            Alcotest.(check bool) "saw events" true (Rg.Mon.events_seen mon > 0);
            Alcotest.(check bool) "post-hoc agrees" true (Uc.holds h))
          [ 1; 7; 42 ]);
    Alcotest.test_case "non-FIFO pipelined is caught live, reproducibly"
      `Quick (fun () ->
        let seeds = [ 1; 2; 3; 4; 5; 6; 7; 8 ] in
        let violating =
          List.filter
            (fun s ->
              let _, m, _ = monitored_pipe_run s in
              not (Rp.Mon.clean m))
            seeds
        in
        Alcotest.(check bool) "some seed violates" true (violating <> []);
        let seed = List.hd violating in
        let j1, m1, h = monitored_pipe_run seed in
        let j2, m2, _ = monitored_pipe_run seed in
        Alcotest.(check bool) "journals identical on re-run" true
          (Journal.diff j1 j2 = None);
        match (Rp.Mon.first_violation m1, Rp.Mon.first_violation m2) with
        | Some v1, Some v2 ->
          Alcotest.(check int) "same first index" v1.Monitor.index
            v2.Monitor.index;
          Alcotest.(check bool) "span recorded" true (v1.Monitor.span <> None);
          (* the index locates an operation event in the journal, the
             one `replay --until` re-reaches *)
          (match Journal.event j1 v1.Monitor.index with
          | Journal.Update _ | Journal.Query _ -> ()
          | _ -> Alcotest.fail "violation index names a non-operation event");
          let confirmed =
            match v1.Monitor.criterion with
            | Monitor.Uc -> not (Uc.holds h)
            | Monitor.Ec -> not (Ec.holds h)
            | Monitor.Pc -> not (Pc.holds h)
          in
          Alcotest.(check bool) "post-hoc checker confirms" true confirmed
        | _ -> Alcotest.fail "violation vanished on the re-run");
  ]

let tests = differential_tests @ figure_tests @ live_tests
