(* The consistency checkers beyond the paper's figures: witness
   validity, targeted corner cases, and the criterion hierarchy as a
   law over randomly generated histories (Proposition 2 and friends). *)

open Helpers

let set = Set_spec.of_list

module C = Criteria.Make (Set_spec)
module Gen = Gen_history.Make (Set_spec)
module Run = Uqadt.Run (Set_spec)

let corner_tests =
  [
    Alcotest.test_case "empty history satisfies everything" `Quick (fun () ->
        let h = History.make [ [] ] in
        List.iter
          (fun c -> Alcotest.(check bool) (Criteria.name c) true (C.holds c h))
          Criteria.all);
    Alcotest.test_case "updates-only history satisfies everything" `Quick (fun () ->
        let h =
          History.make
            [ [ History.U (Set_spec.Insert 1) ]; [ History.U (Set_spec.Delete 1) ] ]
        in
        List.iter
          (fun c -> Alcotest.(check bool) (Criteria.name c) true (C.holds c h))
          Criteria.all);
    Alcotest.test_case "single sequential process is SC" `Quick (fun () ->
        let h =
          History.make
            [
              [
                History.U (Set_spec.Insert 1);
                History.Q (Set_spec.Read, set [ 1 ]);
                History.U (Set_spec.Delete 1);
                History.Qw (Set_spec.Read, set []);
              ];
            ]
        in
        Alcotest.(check bool) "SC" true (C.holds Criteria.SC h));
    Alcotest.test_case "a wrong sequential read breaks SC but not UC" `Quick (fun () ->
        (* The bogus read is finite, so UC may drop it; SC may not. *)
        let h =
          History.make
            [
              [
                History.U (Set_spec.Insert 1);
                History.Q (Set_spec.Read, set [ 9 ]);
                History.Qw (Set_spec.Read, set [ 1 ]);
              ];
            ]
        in
        Alcotest.(check bool) "not SC" false (C.holds Criteria.SC h);
        Alcotest.(check bool) "UC" true (C.holds Criteria.UC h));
    Alcotest.test_case "conflicting ω reads break EC" `Quick (fun () ->
        let h =
          History.make
            [
              [ History.Qw (Set_spec.Read, set [ 1 ]) ];
              [ History.Qw (Set_spec.Read, set [ 2 ]) ];
            ]
        in
        Alcotest.(check bool) "not EC" false (C.holds Criteria.EC h));
    Alcotest.test_case "UC picks a cross-process linearization" `Quick (fun () ->
        (* Neither per-process order alone explains {2}: the delete of 2
           must land before the insert of 2. *)
        let h =
          History.make
            [
              [ History.U (Set_spec.Delete 2); History.Qw (Set_spec.Read, set [ 2 ]) ];
              [ History.U (Set_spec.Insert 2) ];
            ]
        in
        let module Uc = Check_uc.Make (Set_spec) in
        match Uc.witness h with
        | None -> Alcotest.fail "UC witness expected"
        | Some w ->
          Alcotest.(check bool) "delete first" true
            (Set_spec.equal_update (List.hd w) (Set_spec.Delete 2)));
  ]

let witness_tests =
  [
    Alcotest.test_case "UC witness replays to a state matching ω reads" `Quick (fun () ->
        let module Uc = Check_uc.Make (Set_spec) in
        match (Uc.witness Figures.fig1d, Uc.convergent_state Figures.fig1d) with
        | Some w, Some s ->
          Alcotest.(check bool) "replay matches" true
            (Set_spec.equal_state (Run.final_state w) s);
          Alcotest.(check bool) "answers ω" true
            (Set_spec.equal_output (Set_spec.eval s Set_spec.Read) (set [ 1; 2 ]))
        | _ -> Alcotest.fail "fig1d should be UC");
    Alcotest.test_case "SC witness is a recognized word" `Quick (fun () ->
        let module Sc = Check_sc.Make (Set_spec) in
        let module L = Linearize.Make (Set_spec) in
        let h =
          History.make
            [
              [ History.U (Set_spec.Insert 1); History.Qw (Set_spec.Read, set [ 1; 2 ]) ];
              [ History.U (Set_spec.Insert 2); History.Qw (Set_spec.Read, set [ 1; 2 ]) ];
            ]
        in
        match Sc.witness h with
        | None -> Alcotest.fail "expected SC"
        | Some w -> Alcotest.(check bool) "recognized" true (L.recognizes_events w));
    Alcotest.test_case "PC witnesses contain all updates and own queries" `Quick (fun () ->
        let module Pc = Check_pc.Make (Set_spec) in
        match Pc.witness Figures.fig2 with
        | None -> Alcotest.fail "fig2 is PC"
        | Some ws ->
          Array.iteri
            (fun p w ->
              let updates =
                List.filter
                  (fun (e : _ History.event) ->
                    match e.History.label with Uqadt.Update _ -> true | Uqadt.Query _ -> false)
                  w
              in
              Alcotest.(check int) "all four updates" 4 (List.length updates);
              List.iter
                (fun (e : _ History.event) ->
                  match e.History.label with
                  | Uqadt.Update _ -> ()
                  | Uqadt.Query _ ->
                    Alcotest.(check int) "own queries only" p e.History.pid)
                w)
            ws);
    Alcotest.test_case "SUC witness: every query explained by its visible set" `Quick
      (fun () ->
        let module Suc = Check_suc.Make (Set_spec) in
        match Suc.witness Figures.fig1d with
        | None -> Alcotest.fail "fig1d is SUC"
        | Some w ->
          let sigma = Array.of_list w.Suc.sigma in
          let pos = Array.of_list w.Suc.sigma_ranks in
          let rank_pos r =
            let result = ref 0 in
            Array.iteri (fun i r' -> if r = r' then result := i) pos;
            !result
          in
          List.iter
            (fun ((q : _ History.event), ranks) ->
              match History.query_of q with
              | None -> ()
              | Some (qi, qo) ->
                let ordered = List.sort (fun a b -> compare (rank_pos a) (rank_pos b)) ranks in
                let state =
                  Run.exec_updates Set_spec.initial
                    (List.map (fun r -> sigma.(rank_pos r)) ordered)
                in
                Alcotest.(check bool) "explained" true
                  (Set_spec.equal_output (Set_spec.eval state qi) qo))
            w.Suc.visibility);
    Alcotest.test_case "SEC witness: ω queries see every update" `Quick (fun () ->
        let module Sec = Check_sec.Make (Set_spec) in
        match Sec.witness Figures.fig1b with
        | None -> Alcotest.fail "fig1b is SEC"
        | Some vis ->
          List.iter
            (fun ((q : _ History.event), ranks) ->
              if q.History.omega then
                Alcotest.(check int) "sees all 4" 4 (List.length ranks))
            vis);
  ]

(* The hierarchy law: on any history, if criterion a holds and
   Criteria.implies a b, then b holds. *)
let hierarchy_tests =
  [
    qtest ~count:150 "criterion hierarchy on random histories" seed_gen (fun seed ->
        let rng = Prng.create seed in
        let h = Gen.convergent_mix rng ~processes:2 ~max_updates:3 ~max_queries:3 in
        let verdicts = C.classify h in
        List.for_all
          (fun (a, holds_a) ->
            (not holds_a)
            || List.for_all
                 (fun (b, holds_b) -> (not (Criteria.implies a b)) || holds_b)
                 verdicts)
          verdicts);
    qtest ~count:80 "hierarchy on 3-process histories" seed_gen (fun seed ->
        let rng = Prng.create seed in
        let h = Gen.convergent_mix rng ~processes:3 ~max_updates:3 ~max_queries:2 in
        let verdicts = C.classify h in
        List.for_all
          (fun (a, holds_a) ->
            (not holds_a)
            || List.for_all
                 (fun (b, holds_b) -> (not (Criteria.implies a b)) || holds_b)
                 verdicts)
          verdicts);
    qtest ~count:100 "UC implies EC (Proposition 2, first half)" seed_gen (fun seed ->
        let rng = Prng.create seed in
        let h = Gen.convergent_mix rng ~processes:2 ~max_updates:4 ~max_queries:3 in
        (not (C.holds Criteria.UC h)) || C.holds Criteria.EC h);
    qtest ~count:60 "SUC implies SEC and UC (Proposition 2, second half)" seed_gen
      (fun seed ->
        let rng = Prng.create seed in
        let h = Gen.convergent_mix rng ~processes:2 ~max_updates:3 ~max_queries:2 in
        (not (C.holds Criteria.SUC h))
        || (C.holds Criteria.SEC h && C.holds Criteria.UC h));
  ]

(* Criteria are insensitive to process order in the encoding. *)
let symmetry_tests =
  [
    qtest ~count:60 "verdicts are stable under swapping processes" seed_gen (fun seed ->
        let rng = Prng.create seed in
        let h = Gen.convergent_mix rng ~processes:2 ~max_updates:3 ~max_queries:2 in
        let swapped =
          History.make [ History.steps_of_process h 1; History.steps_of_process h 0 ]
        in
        List.for_all2
          (fun (c, v) (c', v') -> c = c' && v = v')
          (C.classify h) (C.classify swapped));
  ]

let tests = corner_tests @ witness_tests @ hierarchy_tests @ symmetry_tests
