(* The captions of Figures 1 and 2 are the paper's own statements of
   which criteria each history satisfies; every checker must agree. *)

module C = Criteria.Make (Set_spec)

let check_figure (fig_name, history, expected) =
  List.map
    (fun (criterion, want) ->
      let test_name = Printf.sprintf "%s %s" fig_name (Criteria.name criterion) in
      Alcotest.test_case test_name `Quick (fun () ->
          Alcotest.(check bool) test_name want (C.holds criterion history)))
    expected

let insert_wins_cases =
  [
    Alcotest.test_case "Fig.1b admits an insert-wins explanation" `Quick (fun () ->
        (* The OR-set converges to {1,2} on Fig.1b's program: concurrent
           deletes do not observe the other insert, so inserts win.
           Definition 10 is therefore satisfiable even though UC is not. *)
        Alcotest.(check bool) "iw" true (Check_iw.search Figures.fig1b));
    Alcotest.test_case "Fig.1a has no insert-wins explanation" `Quick (fun () ->
        Alcotest.(check bool) "iw" false (Check_iw.search Figures.fig1a));
    Alcotest.test_case "Fig.1d insert-wins from its SUC witness (Prop 3)" `Quick
      (fun () ->
        let module Suc = Check_suc.Make (Set_spec) in
        match Suc.witness Figures.fig1d with
        | None -> Alcotest.fail "Fig.1d should be SUC"
        | Some w ->
          let vis =
            List.map (fun ((e : _ History.event), ranks) -> (e.History.id, ranks)) w.Suc.visibility
          in
          let rel = Check_iw.of_suc_witness Figures.fig1d ~sigma_ranks:w.Suc.sigma_ranks ~vis in
          Alcotest.(check bool) "verify" true (Check_iw.verify Figures.fig1d rel));
  ]

let tests = List.concat_map check_figure Figures.all @ insert_wins_cases
