(* Differential testing: the optimized checkers against brute-force
   reference implementations on random small histories. A bug in the
   memoized searches would show up as a divergence from the naive
   enumeration long before it corrupted an experiment table. *)

open Helpers

module Gen = Gen_history.Make (Set_spec)
module Run = Uqadt.Run (Set_spec)
module Uc = Check_uc.Make (Set_spec)
module Sc = Check_sc.Make (Set_spec)
module L = Linearize.Make (Set_spec)

(* UC by definition: enumerate every linear extension of the update
   program order and test the ω reads against each final state. *)
let uc_brute_force h =
  let updates = Array.of_list (History.updates h) in
  let omegas = List.filter_map History.query_of (History.omega_queries h) in
  let dag = History.update_dag h in
  Dag.linear_extensions dag (fun order ->
      let word =
        List.map
          (fun r -> Option.get (History.update_of updates.(r)))
          (Array.to_list order)
      in
      let final = Run.final_state word in
      List.for_all
        (fun (qi, qo) -> Set_spec.equal_output (Set_spec.eval final qi) qo)
        omegas)

(* SC by definition: enumerate linear extensions of the full program
   order (with ω events syntactically last per process, which the
   encoding guarantees) and replay each completely. *)
let sc_brute_force h =
  let events = Array.of_list (History.events h) in
  let dag = History.po_dag h in
  Dag.linear_extensions dag (fun order ->
      L.recognizes_events (List.map (fun i -> events.(i)) (Array.to_list order)))

(* ---------------- protocol-vs-protocol differential ---------------- *)

(* Lockstep mesh: one abstract schedule — invocations interleaved with
   single-message FIFO flushes — executed against different protocol
   implementations of the same object, comparing every query answer.
   The schedule is precomputed so each protocol sees the identical
   delivery pattern; per-(src,dst) FIFO queues model the channel
   discipline Gc requires. *)
type mesh_action = Act_invoke of int | Act_flush of int * int  (* src, dst *)

let random_mesh rng ~n ~max_ops =
  let ops = Array.init n (fun _ -> 1 + Prng.int rng max_ops) in
  let remaining = Array.copy ops in
  let actions = ref [] in
  let total = Array.fold_left ( + ) 0 ops in
  for _ = 1 to total do
    (* Pick a process that still has operations, then maybe flush. *)
    let live =
      List.filter (fun p -> remaining.(p) > 0) (List.init n Fun.id)
    in
    let p = List.nth live (Prng.int rng (List.length live)) in
    remaining.(p) <- remaining.(p) - 1;
    actions := Act_invoke p :: !actions;
    for _ = 1 to Prng.int rng 3 do
      let src = Prng.int rng n and dst = Prng.int rng n in
      if src <> dst then actions := Act_flush (src, dst) :: !actions
    done
  done;
  (ops, List.rev !actions)

(* Run one protocol over the schedule; returns every query answer, in
   invocation order, per process (including a final read each). *)
let run_mesh (type u q o m t)
    (module P : Protocol.PROTOCOL
      with type update = u
       and type query = q
       and type output = o
       and type message = m
       and type t = t) ~n ~invocations ~actions ~final_read =
  let channels = Array.init n (fun _ -> Array.init n (fun _ -> Queue.create ())) in
  let replicas =
    Array.init n (fun pid ->
        P.create
          {
            Protocol.pid;
            n;
            now = (fun () -> 0.0);
            send = (fun ~dst m -> Queue.add m channels.(pid).(dst));
            broadcast =
              (fun m ->
                for dst = 0 to n - 1 do
                  if dst <> pid then Queue.add m channels.(pid).(dst)
                done);
            broadcast_batch =
              (fun ms ->
                List.iter
                  (fun m ->
                    for dst = 0 to n - 1 do
                      if dst <> pid then Queue.add m channels.(pid).(dst)
                    done)
                  ms);
            set_timer = (fun ~delay:_ _ -> ());
            count_replay = (fun _ -> ());
            obs = None;
          })
  in
  let outputs = Array.make n [] in
  let scripts = Array.map (fun l -> ref l) invocations in
  let flush src dst =
    if not (Queue.is_empty channels.(src).(dst)) then
      P.receive replicas.(dst) ~src (Queue.pop channels.(src).(dst))
  in
  List.iter
    (function
      | Act_invoke p -> (
        match !(scripts.(p)) with
        | [] -> ()
        | inv :: rest -> (
          scripts.(p) := rest;
          match inv with
          | Protocol.Invoke_update u -> P.update replicas.(p) u ~on_done:ignore
          | Protocol.Invoke_query q ->
            P.query replicas.(p) q ~on_result:(fun o ->
                outputs.(p) <- o :: outputs.(p))))
      | Act_flush (src, dst) -> flush src dst)
    actions;
  (* Drain rounds: receives may emit further messages (heartbeats), so
     loop until the whole mesh is quiet. *)
  let quiet = ref false in
  while not !quiet do
    quiet := true;
    Array.iteri
      (fun src row ->
        Array.iteri
          (fun dst q ->
            if not (Queue.is_empty q) then begin
              quiet := false;
              flush src dst
            end)
          row)
      channels
  done;
  Array.iteri
    (fun p r ->
      P.query r final_read ~on_result:(fun o -> outputs.(p) <- o :: outputs.(p)))
    replicas;
  Array.map List.rev outputs

module G_set = Generic.Make (Set_spec)
module Gref_set = Generic_ref.Make (Set_spec)
module Memo_set = Memo.Make (Set_spec)
module Gc_set = Gc.Make (Set_spec)
module Undo_set = Undo.Make (Undoable.Set)
module G_counter = Generic.Make (Counter_spec)
module Gref_counter = Generic_ref.Make (Counter_spec)
module Memo_counter = Memo.Make (Counter_spec)
module Fast_counter = Commutative.Make (Counter_spec)

(* Gc only matches Generic exactly while no heartbeat fires: a replica
   heartbeats after [heartbeat_every = 8] receives without sending, and
   heartbeats perturb the Lamport clocks. n=3 with at most 3 updates per
   process keeps every replica below 7 incoming messages. *)
let set_mesh seed =
  let rng = Prng.create seed in
  let n = 2 + Prng.int rng 2 in
  let ops, actions = random_mesh rng ~n ~max_ops:3 in
  let invocations =
    Array.map
      (fun k ->
        List.init k (fun _ ->
            if Prng.int rng 4 = 0 then Protocol.Invoke_query Set_spec.Read
            else Protocol.Invoke_update (Set_spec.random_update rng)))
      ops
  in
  (n, invocations, actions)

let counter_mesh seed =
  let rng = Prng.create seed in
  let n = 2 + Prng.int rng 2 in
  let ops, actions = random_mesh rng ~n ~max_ops:3 in
  let invocations =
    Array.map
      (fun k ->
        List.init k (fun _ ->
            if Prng.int rng 4 = 0 then Protocol.Invoke_query Counter_spec.Value
            else Protocol.Invoke_update (Counter_spec.random_update rng)))
      ops
  in
  (n, invocations, actions)

(* Compare per-process answer streams with the spec's output equality,
   not polymorphic (=): incremental protocols (Undo) reach the same set
   through a different sequence of adds/removes than a replay from
   initial, and Stdlib.Set trees with equal elements can differ in
   shape. *)
let outputs_equal equal a b =
  Array.length a = Array.length b
  && Array.for_all2 (List.equal equal) a b

let differential_protocol_tests =
  let set_equal name (module P : Protocol.PROTOCOL
                       with type update = Set_spec.update
                        and type query = Set_spec.query
                        and type output = Set_spec.output) =
    qtest ~count:120
      (Printf.sprintf "%s answers every query like Algorithm 1 (set)" name)
      seed_gen
      (fun seed ->
        let n, invocations, actions = set_mesh seed in
        let reference =
          run_mesh (module G_set) ~n ~invocations ~actions
            ~final_read:Set_spec.Read
        in
        let candidate =
          run_mesh (module P) ~n ~invocations ~actions ~final_read:Set_spec.Read
        in
        outputs_equal Set_spec.equal_output reference candidate)
  in
  let counter_equal name (module P : Protocol.PROTOCOL
                           with type update = Counter_spec.update
                            and type query = Counter_spec.query
                            and type output = Counter_spec.output) =
    qtest ~count:120
      (Printf.sprintf "%s answers every query like Algorithm 1 (counter)" name)
      seed_gen
      (fun seed ->
        let n, invocations, actions = counter_mesh seed in
        let reference =
          run_mesh (module G_counter) ~n ~invocations ~actions
            ~final_read:Counter_spec.Value
        in
        let candidate =
          run_mesh (module P) ~n ~invocations ~actions
            ~final_read:Counter_spec.Value
        in
        outputs_equal Counter_spec.equal_output reference candidate)
  in
  [
    set_equal "Seed list core" (module Gref_set);
    set_equal "Memo" (module Memo_set);
    set_equal "Gc (heartbeat-free sizes)" (module Gc_set);
    set_equal "Undo" (module Undo_set);
    counter_equal "Seed list core" (module Gref_counter);
    counter_equal "Memo" (module Memo_counter);
    counter_equal "CRDT fast path" (module Fast_counter);
  ]

(* ------------- oplog core vs seed list core, full Runner ------------- *)

(* The two Generic cores exchange byte-identical messages, so under one
   seed the network draws the same delays for both and the two runs
   execute the very same schedule: every observable of the run —
   history, certificates, final reads — must be equal, not merely
   convergent. This is the end-to-end differential for the oplog
   refactor (binary-search insert + interval checkpoints vs the seed
   cons-scan + full replay). *)
let run_generic_core
    (module P : Generic.S
      with type update = Set_spec.update
       and type query = Set_spec.query
       and type output = Set_spec.output
       and type state = Set_spec.state) ~seed ~fifo =
  let module R = Runner.Make (P) in
  let rng = Prng.create seed in
  let workload =
    Workload.For_set.conflict ~rng ~n:3 ~ops_per_process:20 ~domain:8 ~skew:1.0
      ~delete_ratio:0.4
  in
  let config =
    { (R.default_config ~n:3 ~seed) with R.fifo; final_read = Some Set_spec.Read }
  in
  let r = R.run config ~workload in
  ( r.R.history,
    r.R.final_outputs,
    r.R.certificates,
    r.R.converged && r.R.certificates_agree,
    (r.R.metrics.Metrics.messages_sent, r.R.metrics.Metrics.bytes_sent) )

(* Telemetry must be a pure observer. With [span_wire_bytes = 0] an
   attached [Obs.t] — spans riding every message, convergence probes,
   oplog profiles — may not perturb a single observable of the run:
   same seed means the same history, the same final reads and
   certificates, and the same metrics record down to the wire bytes. *)
let run_set_telemetry ?(ops = 15) ?(monitors = false) ~seed ~obs
    ~probe_interval () =
  let module R = Runner.Make (G_set) in
  let rng = Prng.create (seed lxor 0x5eed) in
  let workload =
    Workload.For_set.conflict ~rng ~n:3 ~ops_per_process:ops ~domain:8
      ~skew:1.0 ~delete_ratio:0.4
  in
  let monitor =
    if monitors then
      Some
        (R.Mon.create ~n:3
           ~criteria:[ Obs.Monitor.Uc; Obs.Monitor.Ec; Obs.Monitor.Pc ])
    else None
  in
  let config =
    {
      (R.default_config ~n:3 ~seed) with
      R.final_read = Some Set_spec.Read;
      obs;
      probe_interval;
      monitor;
    }
  in
  let r = R.run config ~workload in
  (r.R.history, r.R.final_outputs, r.R.certificates, r.R.metrics)

let runner_differential_tests =
  let core_vs_core fifo label =
    qtest ~count:60 label seed_gen (fun seed ->
        let h1, f1, c1, ok1, wire1 = run_generic_core (module G_set) ~seed ~fifo in
        let h2, f2, c2, ok2, wire2 = run_generic_core (module Gref_set) ~seed ~fifo in
        ok1 && ok2 && h1 = h2 && f1 = f2 && c1 = c2 && wire1 = wire2)
  in
  [
    core_vs_core false
      "oplog-core Generic ≡ seed list core on random Runner schedules";
    core_vs_core true
      "oplog-core Generic ≡ seed list core on FIFO Runner schedules";
    qtest ~count:40 "telemetry off ≡ telemetry on, byte for byte" seed_gen
      (fun seed ->
        let bare = run_set_telemetry ~seed ~obs:None ~probe_interval:None () in
        let o = Obs.create () in
        let instrumented =
          run_set_telemetry ~seed ~obs:(Some o) ~probe_interval:(Some 5.0) ()
        in
        (* identical observables, and the instruments did record *)
        bare = instrumented
        && Obs.Span.count o.Obs.spans > 0
        && Obs.divergence_series o <> []);
    qtest ~count:15 "journal + monitors are pure observers too" seed_gen
      (fun seed ->
        let bare =
          run_set_telemetry ~ops:8 ~seed ~obs:None ~probe_interval:None ()
        in
        let journal = Obs.Journal.create () in
        let o = Obs.create ~journal () in
        let observed =
          run_set_telemetry ~ops:8 ~monitors:true ~seed ~obs:(Some o)
            ~probe_interval:(Some 5.0) ()
        in
        let history, _, _, _ = bare in
        (* identical history, final reads, certificates and metrics —
           wire bytes included — and the journal both recorded and was
           sealed with exactly that history's fingerprint *)
        bare = observed
        && Obs.Journal.length journal > 0
        && Obs.Journal.fingerprint journal
           = Some
               (History.fingerprint Set_spec.pp_update Set_spec.pp_query
                  Set_spec.pp_output history));
  ]

(* Bit-identity of the sequential runner across refactors: these three
   seeded runs reproduce `ucsim run` configurations exactly (workload
   generator, delay model, final read), and their sealed history
   fingerprints were captured before the multicore engine PR. The
   parallel engine must not perturb the deterministic path — not the
   runner, not [Prng.split]/[create] stream layout, not the workload
   draws — so these literals must never move. *)
let pinned_run_tests =
  let set_fingerprint ~seed ~n ~ops =
    let module R = Runner.Make (G_set) in
    let rng = Prng.create seed in
    let workload =
      Workload.For_set.conflict ~rng ~n ~ops_per_process:ops ~domain:16
        ~skew:1.0 ~delete_ratio:0.3
    in
    let config =
      {
        (R.default_config ~n ~seed) with
        R.delay = Network.Exponential { mean = 10.0 };
        final_read = Some Set_spec.Read;
      }
    in
    let r = R.run config ~workload in
    History.fingerprint Set_spec.pp_update Set_spec.pp_query Set_spec.pp_output
      r.R.history
  in
  let counter_fingerprint ~seed ~n ~ops =
    let module R = Runner.Make (G_counter) in
    let rng = Prng.create seed in
    let workload =
      Workload.For_counter.deposits_and_withdrawals ~rng ~n
        ~ops_per_process:ops ~max_amount:100
    in
    let config =
      {
        (R.default_config ~n ~seed) with
        R.delay = Network.Exponential { mean = 10.0 };
        final_read = Some Counter_spec.Value;
      }
    in
    let r = R.run config ~workload in
    History.fingerprint Counter_spec.pp_update Counter_spec.pp_query
      Counter_spec.pp_output r.R.history
  in
  [
    Alcotest.test_case "pinned: universal/set seed 1 n 3 ops 6" `Quick (fun () ->
        Alcotest.(check string)
          "fingerprint" "a3028740e43cd9ff"
          (set_fingerprint ~seed:1 ~n:3 ~ops:6));
    Alcotest.test_case "pinned: universal/set seed 42 n 4 ops 8" `Quick
      (fun () ->
        Alcotest.(check string)
          "fingerprint" "f84ccaebdd940ba2"
          (set_fingerprint ~seed:42 ~n:4 ~ops:8));
    Alcotest.test_case "pinned: counter seed 7 n 3 ops 10" `Quick (fun () ->
        Alcotest.(check string)
          "fingerprint" "2dbc0e1fa6fad3a3"
          (counter_fingerprint ~seed:7 ~n:3 ~ops:10));
  ]

(* Churn-run byte pins: the complete serialized journal — header line,
   every event (joins, leaves, catch-up snapshot bytes included), and
   the sealed footer — of three seeded join/leave/rejoin runs under a
   partition, digested with SHA-256. Unlike the rolling history
   fingerprints above, these pin the whole wire-visible schedule: any
   drift in the churn engine, the catch-up protocol, or the journal
   encoding moves the literal. *)
let churn_pin_tests =
  let churn_sha ~seed ~n ~ops =
    let module P = Persist.Catchup (G_set) (Update_codec.For_set) in
    let module R = Runner.Make (P) in
    let journal = Obs.Journal.create () in
    let obs = Obs.create ~journal () in
    let rng = Prng.create seed in
    let workload =
      Workload.For_set.conflict ~rng ~n ~ops_per_process:ops ~domain:16
        ~skew:1.0 ~delete_ratio:0.3
    in
    let config =
      {
        (R.default_config ~n ~seed) with
        R.delay = Network.Exponential { mean = 10.0 };
        churn =
          [
            { Network.time = 20.0; pid = n - 1; action = Network.Join };
            { Network.time = 30.0; pid = 1; action = Network.Leave };
            { Network.time = 60.0; pid = 1; action = Network.Rejoin };
          ];
        partitions =
          [ { Network.from_time = 25.0; to_time = 55.0; group = [ 0 ] } ];
        final_read = Some Set_spec.Read;
        obs = Some obs;
      }
    in
    let r = R.run config ~workload in
    Alcotest.(check bool) "churn run converged" true r.R.converged;
    Sha256.hex (Obs.Journal.to_jsonl journal)
  in
  let pin name ~seed ~n ~ops digest =
    Alcotest.test_case name `Quick (fun () ->
        Alcotest.(check string) "sha256" digest (churn_sha ~seed ~n ~ops))
  in
  [
    pin "pinned churn journal: seed 1 n 3 ops 5" ~seed:1 ~n:3 ~ops:5 "2c7a54e11278b12325f6bc6a8e03f5e2cfcfda1a13ae2d455d74891e7c4f7d5f";
    pin "pinned churn journal: seed 8 n 4 ops 6" ~seed:8 ~n:4 ~ops:6 "31e05b30d7ccf3759dd39cbc2f156e272fd5aebbd1ed27e29e270877743540ac";
    pin "pinned churn journal: seed 23 n 4 ops 4" ~seed:23 ~n:4 ~ops:4 "da77997c8fded5f80a660e6c394f6e48bcd9a4f8dc69b7fa5e61c0db17be1d6e";
  ]

(* Sharded-run byte pins: the same complete-journal digest for the
   sharded object space. Three seeded runs — a single shard (the
   degenerate space, whose journal must stay exactly as deterministic
   as any other run), a static two-shard ring, and a four-shard ring
   with the hot-shard policy armed so [Rebalance]/[Shard] events land
   in the pinned bytes. Any drift in the ring hash, the fan-out
   batching, the migration frames, or the shard event encoding moves
   these literals. *)
let shard_pin_tests =
  let module Sp = Space.Make (Set_spec) (Update_codec.For_set) in
  let module R = Runner.Make (Sp) in
  let sharded_sha ?policy ~shards ~seed ~n ~ops ~keys () =
    let journal = Obs.Journal.create () in
    let obs = Obs.create ~journal () in
    let map = Sp.create_map ?policy ~obs ~shards () in
    Sp.configure map;
    let workload =
      Workload.For_space.zipf_scripts ~rng:(Prng.create seed) ~n
        ~ops_per_process:ops ~keys ~skew:1.1 ~fanout:3 ~query_ratio:0.25
        ~update:(fun g ->
          let v = 1 + Prng.int g 16 in
          if Prng.float g 1.0 < 0.3 then Set_spec.Delete v
          else Set_spec.Insert v)
        ~query:(fun _ -> Set_spec.Read)
        ~read:(fun k q -> Sp.K.Read (k, q))
    in
    let config =
      {
        (R.default_config ~n ~seed) with
        R.delay = Network.Exponential { mean = 10.0 };
        final_read = Some Sp.K.Sweep;
        obs = Some obs;
      }
    in
    let r = R.run config ~workload in
    Alcotest.(check bool) "sharded run converged" true r.R.converged;
    if policy <> None then
      Alcotest.(check bool) "policy fired at least once" true
        (Sp.rebalances map >= 1);
    Sha256.hex (Obs.Journal.to_jsonl journal)
  in
  let policy = { Sp.interval = 15.0; hot_factor = 1.5; max_shards = 64 } in
  [
    Alcotest.test_case "pinned sharded journal: 1 shard seed 5" `Quick
      (fun () ->
        Alcotest.(check string) "sha256"
          "2934db2b96c153a27bcdc233c4d074225d3389c2b2de9323aa0d884fb74fc9db"
          (sharded_sha ~shards:1 ~seed:5 ~n:3 ~ops:6 ~keys:16 ()));
    Alcotest.test_case "pinned sharded journal: 2 shards seed 12" `Quick
      (fun () ->
        Alcotest.(check string) "sha256"
          "33e5c431137bcb16cb2a5d40ad6ba241cafead3b76775e0c4eec382c07cb6083"
          (sharded_sha ~shards:2 ~seed:12 ~n:3 ~ops:6 ~keys:32 ()));
    Alcotest.test_case "pinned sharded journal: 4 shards seed 19, rebalancing"
      `Quick
      (fun () ->
        Alcotest.(check string) "sha256"
          "6af4492f2b6f96d382334a9e4b905c960ded59acf14d9c5f7b7630770967bf9f"
          (sharded_sha ~policy ~shards:4 ~seed:19 ~n:4 ~ops:5 ~keys:16 ()));
  ]

let tests =
  differential_protocol_tests @ runner_differential_tests @ pinned_run_tests
  @ churn_pin_tests @ shard_pin_tests
  @ [
    qtest ~count:150 "Check_uc agrees with brute force" seed_gen (fun seed ->
        let rng = Prng.create seed in
        let h = Gen.convergent_mix rng ~processes:2 ~max_updates:4 ~max_queries:3 in
        Uc.holds h = uc_brute_force h);
    qtest ~count:100 "Check_uc agrees with brute force (3 processes)" seed_gen
      (fun seed ->
        let rng = Prng.create seed in
        let h = Gen.convergent_mix rng ~processes:3 ~max_updates:4 ~max_queries:2 in
        Uc.holds h = uc_brute_force h);
    qtest ~count:100 "Check_sc agrees with brute force" seed_gen (fun seed ->
        let rng = Prng.create seed in
        let h = Gen.convergent_mix rng ~processes:2 ~max_updates:3 ~max_queries:3 in
        Sc.holds h = sc_brute_force h);
    Alcotest.test_case "brute force confirms the figure verdicts" `Quick (fun () ->
        List.iter
          (fun (name, h, expected) ->
            let want_uc = List.assoc Criteria.UC expected in
            let want_sc = List.assoc Criteria.SC expected in
            Alcotest.(check bool) (name ^ " UC") want_uc (uc_brute_force h);
            Alcotest.(check bool) (name ^ " SC") want_sc (sc_brute_force h))
          Figures.all);
  ]
