(* Differential testing: the optimized checkers against brute-force
   reference implementations on random small histories. A bug in the
   memoized searches would show up as a divergence from the naive
   enumeration long before it corrupted an experiment table. *)

open Helpers

module Gen = Gen_history.Make (Set_spec)
module Run = Uqadt.Run (Set_spec)
module Uc = Check_uc.Make (Set_spec)
module Sc = Check_sc.Make (Set_spec)
module L = Linearize.Make (Set_spec)

(* UC by definition: enumerate every linear extension of the update
   program order and test the ω reads against each final state. *)
let uc_brute_force h =
  let updates = Array.of_list (History.updates h) in
  let omegas = List.filter_map History.query_of (History.omega_queries h) in
  let dag = History.update_dag h in
  Dag.linear_extensions dag (fun order ->
      let word =
        List.map
          (fun r -> Option.get (History.update_of updates.(r)))
          (Array.to_list order)
      in
      let final = Run.final_state word in
      List.for_all
        (fun (qi, qo) -> Set_spec.equal_output (Set_spec.eval final qi) qo)
        omegas)

(* SC by definition: enumerate linear extensions of the full program
   order (with ω events syntactically last per process, which the
   encoding guarantees) and replay each completely. *)
let sc_brute_force h =
  let events = Array.of_list (History.events h) in
  let dag = History.po_dag h in
  Dag.linear_extensions dag (fun order ->
      L.recognizes_events (List.map (fun i -> events.(i)) (Array.to_list order)))

let tests =
  [
    qtest ~count:150 "Check_uc agrees with brute force" seed_gen (fun seed ->
        let rng = Prng.create seed in
        let h = Gen.convergent_mix rng ~processes:2 ~max_updates:4 ~max_queries:3 in
        Uc.holds h = uc_brute_force h);
    qtest ~count:100 "Check_uc agrees with brute force (3 processes)" seed_gen
      (fun seed ->
        let rng = Prng.create seed in
        let h = Gen.convergent_mix rng ~processes:3 ~max_updates:4 ~max_queries:2 in
        Uc.holds h = uc_brute_force h);
    qtest ~count:100 "Check_sc agrees with brute force" seed_gen (fun seed ->
        let rng = Prng.create seed in
        let h = Gen.convergent_mix rng ~processes:2 ~max_updates:3 ~max_queries:3 in
        Sc.holds h = sc_brute_force h);
    Alcotest.test_case "brute force confirms the figure verdicts" `Quick (fun () ->
        List.iter
          (fun (name, h, expected) ->
            let want_uc = List.assoc Criteria.UC expected in
            let want_sc = List.assoc Criteria.SC expected in
            Alcotest.(check bool) (name ^ " UC") want_uc (uc_brute_force h);
            Alcotest.(check bool) (name ^ " SC") want_sc (sc_brute_force h))
          Figures.all);
  ]
