(* The scenario engine and its shrinker. The planted regression mirrors
   the CLI recipe pinned in CI (`ucsim run pipelined -n 2 --ops 1
   --seed 3 --churn 30:join:1 --monitor pc` then `ucsim shrink`): a
   late joiner misses an insert frame — Pipelined keeps no snapshot to
   catch it up — and its ω read is PC-inexplicable. The shrinker must
   converge deterministically to a ≤ 6-event journal whose re-run trips
   the same monitor at the same index. *)

open Helpers
module SPipe = Scenario.Make (Pipelined.Make (Set_spec))
module SGen =
  Scenario.Make (Persist.Catchup (Generic.Make (Set_spec)) (Update_codec.For_set))

let planted =
  {
    SPipe.seed = 3;
    n = 2;
    mean_delay = 10.0;
    fifo = false;
    scripts =
      Workload.For_set.conflict ~rng:(Prng.create 3) ~n:2 ~ops_per_process:1
        ~domain:16 ~skew:1.0 ~delete_ratio:0.3;
    partitions = [];
    crashes = [];
    churn = [ { Network.time = 30.0; pid = 1; action = Network.Join } ];
    final_read = Some Set_spec.Read;
  }

let shrink_planted () =
  match SPipe.shrink ~criteria:[ Obs.Monitor.Pc ] planted with
  | None -> Alcotest.fail "planted PC violation was not flagged"
  | Some s -> s

let tests =
  [
    Alcotest.test_case "planted Pipelined PC violation shrinks to ≤ 6 events"
      `Quick
      (fun () ->
        let s = shrink_planted () in
        Alcotest.(check bool)
          (Printf.sprintf "%d events ≤ 6" s.SPipe.outcome.SPipe.events)
          true
          (s.SPipe.outcome.SPipe.events <= 6);
        Alcotest.(check bool) "strictly smaller than the original" true
          (SPipe.size s.SPipe.scenario < SPipe.size planted);
        match s.SPipe.outcome.SPipe.violation with
        | Some v ->
          Alcotest.(check string) "criterion" "pc"
            (Obs.Monitor.criterion_name v.Obs.Monitor.criterion)
        | None -> Alcotest.fail "minimized outcome lost its violation");
    Alcotest.test_case "re-running the minimized scenario trips PC at the same index"
      `Quick
      (fun () ->
        let s = shrink_planted () in
        let reported =
          match s.SPipe.outcome.SPipe.violation with
          | Some v -> v.Obs.Monitor.index
          | None -> Alcotest.fail "minimized outcome lost its violation"
        in
        match (SPipe.run ~criteria:[ Obs.Monitor.Pc ] s.SPipe.scenario).SPipe.violation with
        | Some v ->
          Alcotest.(check int) "violation index" reported v.Obs.Monitor.index
        | None -> Alcotest.fail "re-run is clean");
    Alcotest.test_case "minimization is deterministic end to end" `Quick (fun () ->
        let s1 = shrink_planted () and s2 = shrink_planted () in
        Alcotest.(check int) "same event count" s1.SPipe.outcome.SPipe.events
          s2.SPipe.outcome.SPipe.events;
        Alcotest.(check int) "same run budget spent" s1.SPipe.runs s2.SPipe.runs;
        Alcotest.(check string) "same scenario"
          (Format.asprintf "%a" SPipe.pp s1.SPipe.scenario)
          (Format.asprintf "%a" SPipe.pp s2.SPipe.scenario);
        match
          Obs.Journal.diff s1.SPipe.outcome.SPipe.journal
            s2.SPipe.outcome.SPipe.journal
        with
        | None -> ()
        | Some (i, a, b) ->
          Alcotest.failf "minimized journals diverge at %d: %s vs %s" i a b);
    qtest ~count:20 "generated scenarios never flag Algorithm 1 for UC or EC"
      (SGen.gen ~n_max:3 ~ops_max:4 ())
      (fun t ->
        (* Not PC: Algorithm 1 is update consistent, and UC and PC are
           incomparable (Proposition 2) — a smaller-timestamp straggler
           reorders the replayed log between two reads, which no single
           pipelined interleaving explains. *)
        let o = SGen.run ~criteria:[ Obs.Monitor.Uc; Obs.Monitor.Ec ] t in
        o.SGen.violation = None && o.SGen.events > 0);
    qtest ~count:8 "the shrinker only ever shrinks, preserving the criterion"
      (SPipe.gen ~n_max:3 ~ops_max:3 ())
      (fun t ->
        match SPipe.run t with
        | { SPipe.violation = None; _ } -> SPipe.shrink t = None
        | { SPipe.violation = Some v0; _ } -> (
          match SPipe.shrink ~max_runs:60 t with
          | None -> false
          | Some s ->
            SPipe.size s.SPipe.scenario <= SPipe.size t
            && s.SPipe.runs <= 60
            &&
            (match s.SPipe.outcome.SPipe.violation with
            | Some v -> v.Obs.Monitor.criterion = v0.Obs.Monitor.criterion
            | None -> false)));
  ]
