(* The causal-memory checker (Section IV's memory-specific criterion),
   validated on the classic examples of Ahamad et al. and on runs of
   Algorithm 2. *)

open Helpers

let w x v = History.U (Memory_spec.Write (x, v))

let r x v = History.Q (Memory_spec.Read x, v)

let rw x v = History.Qw (Memory_spec.Read x, v)

let tests =
  [
    Alcotest.test_case "concurrent writes may be seen in different orders" `Quick
      (fun () ->
        (* The hallmark of causal (vs sequential) consistency. *)
        let h =
          History.make
            [
              [ w 0 1 ];
              [ w 0 2 ];
              [ r 0 1; rw 0 2 ];
              [ r 0 2; rw 0 2 ];
            ]
        in
        Alcotest.(check bool) "causal" true (Check_causal_mem.holds h);
        let module C = Criteria.Make (Memory_spec) in
        (* ...and indeed this one even has a total order explanation. *)
        Alcotest.(check bool) "also UC" true (C.holds Criteria.UC h));
    Alcotest.test_case "a writer's own order must be respected" `Quick (fun () ->
        let h = History.make [ [ w 0 1; w 0 2 ]; [ r 0 2; rw 0 1 ] ] in
        Alcotest.(check bool) "not causal" false (Check_causal_mem.holds h));
    Alcotest.test_case "transitivity through reads-from" `Quick (fun () ->
        (* p2 sees y=2, whose writer had already seen x=1; reading x=0
           afterwards would travel back in causal time. *)
        let h =
          History.make
            [
              [ w 0 1 ];
              [ r 0 1; w 1 2 ];
              [ r 1 2; rw 0 0 ];
            ]
        in
        Alcotest.(check bool) "not causal" false (Check_causal_mem.holds h));
    Alcotest.test_case "the same shape with a fresh read is causal" `Quick (fun () ->
        let h =
          History.make
            [
              [ w 0 1 ];
              [ r 0 1; w 1 2 ];
              [ r 1 2; rw 0 1 ];
            ]
        in
        Alcotest.(check bool) "causal" true (Check_causal_mem.holds h));
    Alcotest.test_case "reads of unwritten registers are initial" `Quick (fun () ->
        let h = History.make [ [ r 3 0 ] ] in
        Alcotest.(check bool) "causal" true (Check_causal_mem.holds h);
        let h_bad = History.make [ [ r 3 7 ] ] in
        Alcotest.(check bool) "value from nowhere" false (Check_causal_mem.holds h_bad));
    Alcotest.test_case "witness maps each read to a plausible writer" `Quick (fun () ->
        let h = History.make [ [ w 0 5 ]; [ rw 0 5 ] ] in
        match Check_causal_mem.witness h with
        | Some [ (_, Some wid) ] ->
          Alcotest.(check int) "the only write" 0 wid
        | Some other ->
          Alcotest.failf "unexpected witness size %d" (List.length other)
        | None -> Alcotest.fail "expected causal");
    (* LWW is not causal memory in general: concurrent writes resolve
       by timestamp, which can contradict a session's causal order (a
       write a process saw before issuing its own can win over a
       causally later one). Seeds 0–1608 are verified causal; seed 1609
       is the smallest genuinely non-causal run, pinned below — so the
       accepting-path property draws from the clean range only. *)
    qtest ~count:20 "Algorithm 2 runs are causal memory (clean seed range)"
      (QCheck2.Gen.int_bound 1608) (fun seed ->
        let module R = Runner.Make (Lww_memory) in
        let rng = Prng.create seed in
        let workload =
          Workload.For_memory.random_writes ~rng ~n:2 ~ops_per_process:3 ~registers:2
            ~read_ratio:0.4
        in
        let config =
          { (R.default_config ~n:2 ~seed) with R.final_read = Some (Memory_spec.Read 0) }
        in
        let r = R.run config ~workload in
        Check_causal_mem.holds r.R.history);
    Alcotest.test_case "timestamp order can defeat session causality (seed 1609)"
      `Quick
      (fun () ->
        (* p1 writes (0,369) before reading register 1 as still-initial;
           p0's concurrent (0,942) is therefore causally after that read
           in p1's session, yet the larger LWW timestamp lets 369 win
           the ω read — no causal serialization explains both. *)
        let module R = Runner.Make (Lww_memory) in
        let seed = 1609 in
        let rng = Prng.create seed in
        let workload =
          Workload.For_memory.random_writes ~rng ~n:2 ~ops_per_process:3 ~registers:2
            ~read_ratio:0.4
        in
        let config =
          { (R.default_config ~n:2 ~seed) with R.final_read = Some (Memory_spec.Read 0) }
        in
        let r = R.run config ~workload in
        Alcotest.(check bool) "genuinely not causal" false
          (Check_causal_mem.holds r.R.history);
        let module C = Criteria.Make (Memory_spec) in
        Alcotest.(check bool) "but still update consistent" true
          (C.holds Criteria.UC r.R.history));
  ]
