(* Targeted coverage of internal machinery: the visibility search space,
   insert-wins corner cases, network partition composition, and small
   API surfaces the larger suites exercise only indirectly. *)

let set = Set_spec.of_list

let visibility_tests =
  [
    Alcotest.test_case "bounds: po forces the lower, ω forces everything" `Quick
      (fun () ->
        let s = Visibility.space Figures.fig1d in
        (* fig1d: p0 = I(1) R/{1} I(2) Rω; p1 = R/{2} Rω. Four queries,
           sorted by (pid, seq): R/{1}, Rω(p0), R/{2}, Rω(p1). *)
        Alcotest.(check int) "two updates" 2 s.Visibility.n_updates;
        Alcotest.(check int) "four queries" 4 (Array.length s.Visibility.query_events);
        (* p0's first read must see I(1) (program order) and may not see
           I(2) (which follows it). *)
        Alcotest.(check bool) "lower has I(1)" true (Bitset.mem s.Visibility.lower.(0) 0);
        Alcotest.(check bool) "upper lacks I(2)" false (Bitset.mem s.Visibility.upper.(0) 1);
        (* ω queries are pinned to the full update set. *)
        Alcotest.(check bool) "ω lower full" true
          (Bitset.equal s.Visibility.lower.(1) (Bitset.full 2)));
    Alcotest.test_case "SEC tolerates what SUC rejects (future read)" `Quick (fun () ->
        (* A read claiming {1} before any update exists: SEC can posit an
           arbitrary witness state; SUC must execute the (empty) visible
           set and fails. *)
        let h =
          History.make
            [ [ History.Q (Set_spec.Read, set [ 1 ]); History.U (Set_spec.Insert 1) ] ]
        in
        let module C = Criteria.Make (Set_spec) in
        Alcotest.(check bool) "SEC" true (C.holds Criteria.SEC h);
        Alcotest.(check bool) "not SUC" false (C.holds Criteria.SUC h);
        Alcotest.(check bool) "UC (read is droppable)" true (C.holds Criteria.UC h));
    Alcotest.test_case "enumerate respects growth monotonicity" `Quick (fun () ->
        (* Two same-process reads: the second must see at least what the
           first saw. Count assignments and compare with the closed form:
           V1 ⊆ V2 over a 1-update universe = 3 pairs. *)
        let h =
          History.make
            [
              [ History.Q (Set_spec.Read, set []); History.Q (Set_spec.Read, set []) ];
              [ History.U (Set_spec.Insert 1) ];
            ]
        in
        let s = Visibility.space h in
        let count = ref 0 in
        let (_ : bool) =
          Visibility.enumerate s
            ~on_assign:(fun _ _ -> true)
            ~at_leaf:(fun vs ->
              incr count;
              Alcotest.(check bool) "monotone" true (Bitset.subset vs.(0) vs.(1));
              false)
        in
        Alcotest.(check int) "3 assignments" 3 !count);
  ]

let insert_wins_tests =
  [
    Alcotest.test_case "fig1c is not insert-wins (stale ∅ read)" `Quick (fun () ->
        (* The read R/∅ follows I(1) in program order, so it must see the
           insertion — insert-wins then demands 1 ∈ output. *)
        Alcotest.(check bool) "no witness" false (Check_iw.search Figures.fig1c));
    Alcotest.test_case "close is reflexive and po-closed" `Quick (fun () ->
        let h = Figures.fig1b in
        let n = History.size h in
        let rel = Check_iw.close h (Array.init n (fun _ -> Array.make n false)) in
        for i = 0 to n - 1 do
          Alcotest.(check bool) "reflexive" true rel.(i).(i);
          for j = 0 to n - 1 do
            if History.po h i j then Alcotest.(check bool) "po" true rel.(i).(j)
          done
        done);
  ]

let network_tests =
  [
    Alcotest.test_case "chained partitions delay across both windows" `Quick (fun () ->
        let engine = Engine.create () in
        let metrics = Metrics.create () in
        let log = ref [] in
        let partitions =
          [
            { Network.from_time = 0.0; to_time = 50.0; group = [ 0 ] };
            { Network.from_time = 50.0; to_time = 90.0; group = [ 1 ] };
          ]
        in
        let net =
          Network.create ~engine ~rng:(Prng.create 1) ~metrics ~n:2 ~partitions
            ~delay:(Network.Constant 1.0)
            ~wire_size:(fun (_ : int) -> 1)
            ~deliver:(fun ~dst:_ ~src:_ msg -> log := (Engine.now engine, msg) :: !log)
            ()
        in
        (* Separated 0–50 by the first window and 50–90 by the second:
           departure slides to 90. *)
        Network.send net ~src:0 ~dst:1 7;
        Engine.run engine;
        match !log with
        | [ (t, 7) ] -> Alcotest.(check (float 1e-9)) "after both" 91.0 t
        | _ -> Alcotest.fail "expected one delivery");
    Alcotest.test_case "delivery latency metric accumulates" `Quick (fun () ->
        let engine = Engine.create () in
        let metrics = Metrics.create () in
        let net =
          Network.create ~engine ~rng:(Prng.create 1) ~metrics ~n:2
            ~delay:(Network.Constant 4.0)
            ~wire_size:(fun (_ : int) -> 1)
            ~deliver:(fun ~dst:_ ~src:_ _ -> ())
            ()
        in
        Network.send net ~src:0 ~dst:1 1;
        Network.send net ~src:0 ~dst:1 2;
        Engine.run engine;
        Alcotest.(check (float 1e-9)) "mean" 4.0 (Metrics.mean_delivery_latency metrics));
    Alcotest.test_case "metrics pretty-printer mentions the counters" `Quick (fun () ->
        let m = Metrics.create () in
        m.Metrics.messages_sent <- 3;
        let rendered = Format.asprintf "%a" Metrics.pp m in
        Alcotest.(check bool) "has msgs=3" true
          (String.length rendered > 0
          &&
          let needle = "msgs=3" in
          let rec scan i =
            i + String.length needle <= String.length rendered
            && (String.sub rendered i (String.length needle) = needle || scan (i + 1))
          in
          scan 0));
  ]

let api_tests =
  [
    Alcotest.test_case "criteria names round-trip" `Quick (fun () ->
        List.iter
          (fun c ->
            match Criteria.of_name (Criteria.name c) with
            | Some c' -> Alcotest.(check bool) (Criteria.name c) true (c = c')
            | None -> Alcotest.failf "%s does not round-trip" (Criteria.name c))
          Criteria.all);
    Alcotest.test_case "steps_of_process rebuilds an equal history" `Quick (fun () ->
        let h = Figures.fig2 in
        let rebuilt =
          History.make
            (List.init (History.process_count h) (History.steps_of_process h))
        in
        let module C = Criteria.Make (Set_spec) in
        Alcotest.(check bool) "same verdicts" true
          (List.for_all2
             (fun (c, v) (c', v') -> c = c' && v = v')
             (C.classify h) (C.classify rebuilt)));
    Alcotest.test_case "update_index ranks align with event ids" `Quick (fun () ->
        let ids, rank = History.update_index Figures.fig1b in
        Alcotest.(check int) "four updates" 4 (Array.length ids);
        Array.iteri
          (fun r id -> Alcotest.(check int) "inverse" r rank.(id))
          ids);
    Alcotest.test_case "engine step executes exactly one event" `Quick (fun () ->
        let e = Engine.create () in
        let hits = ref 0 in
        Engine.schedule e ~delay:1.0 (fun () -> incr hits);
        Engine.schedule e ~delay:2.0 (fun () -> incr hits);
        Alcotest.(check bool) "stepped" true (Engine.step e);
        Alcotest.(check int) "one" 1 !hits;
        Alcotest.(check bool) "stepped again" true (Engine.step e);
        Alcotest.(check bool) "empty" false (Engine.step e));
    Alcotest.test_case "pqueue sequential semantics" `Quick (fun () ->
        let open Pqueue_spec in
        let s = List.fold_left apply initial [ Insert 5; Insert 2; Insert 9; Extract_min ] in
        Alcotest.(check bool) "min is 5" true
          (equal_output (eval s Min) (Min_value (Some 5)));
        Alcotest.(check bool) "two left" true (equal_output (eval s Size) (Count 2));
        Alcotest.(check bool) "extract on empty is a no-op" true
          (equal_state (apply initial Extract_min) initial));
  ]

let tests = visibility_tests @ insert_wins_tests @ network_tests @ api_tests
