(* The TOB state-machine-replication baseline: sequentially consistent,
   agreeing logs, blocking updates — everything Algorithm 1 avoids. *)

open Helpers

module Smr = Tob_smr.Make (Set_spec)
module R = Runner.Make (Smr)

let upd u = Protocol.Invoke_update u

let tests =
  [
    qtest ~count:20 "SMR converges with agreeing applied logs" seed_gen (fun seed ->
        let rng = Prng.create seed in
        let workload =
          Workload.For_set.conflict ~rng ~n:3 ~ops_per_process:10 ~domain:6 ~skew:1.0
            ~delete_ratio:0.4
        in
        let config =
          { (R.default_config ~n:3 ~seed) with R.fifo = true; final_read = Some Set_spec.Read }
        in
        let r = R.run config ~workload in
        r.R.converged && r.R.certificates_agree
        && r.R.metrics.Metrics.ops_incomplete = 0);
    qtest ~count:15 "SMR histories are sequentially consistent" seed_gen (fun seed ->
        (* Tiny runs so the SC checker stays cheap. The whole point of
           paying the latency: full sequential consistency, not just UC. *)
        let rng = Prng.create seed in
        let workload =
          Workload.For_set.conflict ~rng ~n:2 ~ops_per_process:2 ~domain:3 ~skew:0.5
            ~delete_ratio:0.4
        in
        let config =
          { (R.default_config ~n:2 ~seed) with R.fifo = true; final_read = Some Set_spec.Read }
        in
        let r = R.run config ~workload in
        let module C = Criteria.Make (Set_spec) in
        C.holds Criteria.SC r.R.history);
    Alcotest.test_case "update latency grows with the network delay" `Quick (fun () ->
        let config =
          {
            (R.default_config ~n:3 ~seed:1) with
            R.fifo = true;
            delay = Network.Constant 10.0;
            final_read = Some Set_spec.Read;
          }
        in
        let r = R.run config ~workload:[| [ upd (Set_spec.Insert 1) ]; []; [] |] in
        (* Stability needs the echo of its own broadcast: one round trip. *)
        List.iter
          (fun l -> Alcotest.(check (float 1e-6)) "one round trip" 20.0 l)
          r.R.op_latencies);
    Alcotest.test_case "one crash blocks every later update" `Quick (fun () ->
        let config =
          {
            (R.default_config ~n:3 ~seed:2) with
            R.fifo = true;
            crashes = [ (0.1, 2) ];
            final_read = Some Set_spec.Read;
            deadline = 50_000.0;
          }
        in
        let r = R.run config ~workload:[| [ upd (Set_spec.Insert 1) ]; []; [] |] in
        (* p2 can never echo: the insert never stabilises, the update
           never returns — SMR is not wait-free. *)
        Alcotest.(check bool) "stalled" true (r.R.metrics.Metrics.ops_incomplete > 0));
    Alcotest.test_case "queries answer immediately from the stable prefix" `Quick
      (fun () ->
        let config =
          {
            (R.default_config ~n:2 ~seed:3) with
            R.fifo = true;
            delay = Network.Constant 10.0;
            think = Network.Constant 1.0;
            final_read = Some Set_spec.Read;
          }
        in
        let r =
          R.run config
            ~workload:[| [ Protocol.Invoke_query Set_spec.Read ]; [ upd (Set_spec.Insert 1) ] |]
        in
        (* p0's read at t≈1 precedes any stability: it sees the initial
           state and costs nothing. *)
        let read_latency = List.hd r.R.op_latencies in
        Alcotest.(check (float 1e-6)) "local" 0.0 read_latency);
  ]
