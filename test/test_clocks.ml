(* uc_clock: Lamport clocks, timestamps, vector clocks, matrix clocks. *)

open Helpers

let lamport_tests =
  [
    Alcotest.test_case "tick is strictly increasing" `Quick (fun () ->
        let c = Lamport.create () in
        let a = Lamport.tick c in
        let b = Lamport.tick c in
        Alcotest.(check bool) "a<b" true (a < b));
    Alcotest.test_case "merge takes the max" `Quick (fun () ->
        let c = Lamport.create () in
        Lamport.merge c 10;
        Alcotest.(check int) "10" 10 (Lamport.value c);
        Lamport.merge c 3;
        Alcotest.(check int) "still 10" 10 (Lamport.value c));
    Alcotest.test_case "observe merges then ticks" `Quick (fun () ->
        let c = Lamport.create () in
        Alcotest.(check int) "11" 11 (Lamport.observe c 10));
    Alcotest.test_case "happened-before implies smaller clock" `Quick (fun () ->
        (* p sends at clock s; q receives and acts: q's next event has a
           strictly larger clock. *)
        let p = Lamport.create () and q = Lamport.create () in
        let s = Lamport.tick p in
        let r = Lamport.observe q s in
        Alcotest.(check bool) "s<r" true (s < r));
  ]

let timestamp_tests =
  let ts c p = Timestamp.make ~clock:c ~pid:p in
  [
    Alcotest.test_case "lexicographic order" `Quick (fun () ->
        Alcotest.(check bool) "clock first" true Timestamp.(ts 1 9 < ts 2 0);
        Alcotest.(check bool) "pid breaks ties" true Timestamp.(ts 1 0 < ts 1 1));
    qtest "total order: exactly one of <, =, >" (QCheck2.Gen.pair seed_gen seed_gen)
      (fun (a, b) ->
        let x = ts (a mod 5) (a mod 3) and y = ts (b mod 5) (b mod 3) in
        let lt = Timestamp.compare x y < 0
        and eq = Timestamp.equal x y
        and gt = Timestamp.compare x y > 0 in
        List.length (List.filter Fun.id [ lt; eq; gt ]) = 1);
    qtest "compare is antisymmetric" (QCheck2.Gen.pair seed_gen seed_gen) (fun (a, b) ->
        let x = ts (a mod 7) (a mod 4) and y = ts (b mod 7) (b mod 4) in
        Timestamp.compare x y = -Timestamp.compare y x);
    Alcotest.test_case "wire size grows logarithmically" `Quick (fun () ->
        Alcotest.(check int) "small" 2 (Timestamp.wire_size (ts 1 1));
        Alcotest.(check int) "large clock" 4 (Timestamp.wire_size (ts 100000 1)));
  ]

let vc_of_list l = Vector_clock.of_array (Array.of_list l)

let vector_clock_tests =
  [
    Alcotest.test_case "leq is component-wise" `Quick (fun () ->
        Alcotest.(check bool) "leq" true (Vector_clock.leq (vc_of_list [ 1; 2 ]) (vc_of_list [ 2; 2 ]));
        Alcotest.(check bool) "not leq" false
          (Vector_clock.leq (vc_of_list [ 3; 0 ]) (vc_of_list [ 2; 2 ])));
    Alcotest.test_case "concurrent iff incomparable" `Quick (fun () ->
        Alcotest.(check bool) "concurrent" true
          (Vector_clock.concurrent (vc_of_list [ 1; 0 ]) (vc_of_list [ 0; 1 ]));
        Alcotest.(check bool) "ordered" false
          (Vector_clock.concurrent (vc_of_list [ 1; 0 ]) (vc_of_list [ 1; 1 ])));
    qtest "merge is the least upper bound" (QCheck2.Gen.pair seed_gen seed_gen)
      (fun (a, b) ->
        let x = vc_of_list [ a mod 5; (a / 5) mod 5; a mod 3 ]
        and y = vc_of_list [ b mod 5; (b / 5) mod 5; b mod 3 ] in
        let m = Vector_clock.merge x y in
        Vector_clock.leq x m && Vector_clock.leq y m);
    qtest "merge is commutative and idempotent" (QCheck2.Gen.pair seed_gen seed_gen)
      (fun (a, b) ->
        let x = vc_of_list [ a mod 5; a mod 7 ] and y = vc_of_list [ b mod 5; b mod 7 ] in
        Vector_clock.equal (Vector_clock.merge x y) (Vector_clock.merge y x)
        && Vector_clock.equal (Vector_clock.merge x x) x);
    Alcotest.test_case "tick advances exactly one component" `Quick (fun () ->
        let v = Vector_clock.tick (vc_of_list [ 0; 0; 0 ]) 1 in
        Alcotest.(check bool) "is 0,1,0" true (Vector_clock.equal v (vc_of_list [ 0; 1; 0 ])));
    Alcotest.test_case "deliverable: sender's next message only" `Quick (fun () ->
        let local = vc_of_list [ 2; 1 ] in
        Alcotest.(check bool) "next from p0" true
          (Vector_clock.deliverable (vc_of_list [ 3; 1 ]) ~from:0 local);
        Alcotest.(check bool) "gap from p0" false
          (Vector_clock.deliverable (vc_of_list [ 4; 1 ]) ~from:0 local);
        Alcotest.(check bool) "missing dependency" false
          (Vector_clock.deliverable (vc_of_list [ 3; 2 ]) ~from:0 local));
    Alcotest.test_case "size mismatch raises" `Quick (fun () ->
        Alcotest.check_raises "mismatch" (Invalid_argument "Vector_clock.merge: size mismatch")
          (fun () -> ignore (Vector_clock.merge (vc_of_list [ 1 ]) (vc_of_list [ 1; 2 ]))));
  ]

let matrix_clock_tests =
  [
    Alcotest.test_case "stable clock is the matrix minimum" `Quick (fun () ->
        let m = Matrix_clock.create 2 in
        let m = Matrix_clock.update_row m 0 (vc_of_list [ 4; 2 ]) in
        let m = Matrix_clock.update_row m 1 (vc_of_list [ 3; 5 ]) in
        Alcotest.(check int) "min" 2 (Matrix_clock.stable_clock m));
    Alcotest.test_case "update_row only raises entries" `Quick (fun () ->
        let m = Matrix_clock.create 2 in
        let m = Matrix_clock.update_row m 0 (vc_of_list [ 4; 2 ]) in
        let m = Matrix_clock.update_row m 0 (vc_of_list [ 1; 3 ]) in
        let row = Matrix_clock.row m 0 in
        Alcotest.(check bool) "max kept" true (Vector_clock.equal row (vc_of_list [ 4; 3 ])));
    Alcotest.test_case "merge is entry-wise max" `Quick (fun () ->
        let a = Matrix_clock.update_row (Matrix_clock.create 2) 0 (vc_of_list [ 5; 0 ]) in
        let b = Matrix_clock.update_row (Matrix_clock.create 2) 1 (vc_of_list [ 0; 7 ]) in
        let m = Matrix_clock.merge a b in
        Alcotest.(check bool) "row0" true (Vector_clock.equal (Matrix_clock.row m 0) (vc_of_list [ 5; 0 ]));
        Alcotest.(check bool) "row1" true (Vector_clock.equal (Matrix_clock.row m 1) (vc_of_list [ 0; 7 ])));
    Alcotest.test_case "fresh matrix is fully unstable" `Quick (fun () ->
        Alcotest.(check int) "zero" 0 (Matrix_clock.stable_clock (Matrix_clock.create 3)));
  ]

let tests = lamport_tests @ timestamp_tests @ vector_clock_tests @ matrix_clock_tests
