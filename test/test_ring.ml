(* Consistent-hash ring laws (satellite of the sharded object space).

   Three families, all QCheck-driven:

   - routing is total and always lands on a live shard, whatever the
     add/remove/split history;
   - ownership is balanced: with the default vnode count no shard owns
     more than a small factor of the ideal share;
   - membership changes cause minimal disruption — the consistent-
     hashing contract. [add] moves keys only onto the fresh shard and
     not too many of them; [remove] moves only the removed shard's
     keys; [split ~hot] sheds keys only from [hot].

   The ring is deterministic (no randomness, no clock), so every law
   doubles as a cross-platform stability check. *)

open QCheck2

let keys = 4096

let routing_table ring =
  Array.init keys (Ring.route ring)

(* ---------------------------------------------------------------- *)

let route_lands_on_live_shard =
  Helpers.qtest "ring: route is total and lands on a live shard"
    Gen.(pair (int_range 1 16) (list_size (int_range 0 8) (int_range 0 2)))
    (fun (shards, opcodes) ->
      (* Drive an arbitrary membership history: 0 = add, 1 = split the
         currently heaviest shard, 2 = remove the lightest (kept live
         by never removing the last). *)
      let ring = ref (Ring.create ~shards ()) in
      List.iter
        (fun opcode ->
          match opcode with
          | 0 -> ring := fst (Ring.add !ring)
          | 1 ->
            let share = Ring.owned_share !ring ~keys in
            let hot, _ =
              List.fold_left
                (fun (h, c) (s, n) -> if n > c then (s, n) else (h, c))
                (List.hd share) (List.tl share)
            in
            ring := fst (Ring.split !ring ~hot)
          | _ ->
            if Ring.shards !ring > 1 then
              let share = Ring.owned_share !ring ~keys in
              let cold, _ =
                List.fold_left
                  (fun (h, c) (s, n) -> if n < c then (s, n) else (h, c))
                  (List.hd share) (List.tl share)
              in
              ring := Ring.remove !ring cold)
        opcodes;
      let live = Ring.shard_ids !ring in
      Array.for_all (fun s -> List.mem s live) (routing_table !ring)
      && List.length live = Ring.shards !ring
      && List.for_all (fun s -> s <= Ring.max_id !ring) live)

let balance_within_factor =
  (* With 64 vnodes the classic consistent-hashing bound puts the max
     share within a small constant of ideal; 3x is a loose envelope
     that still catches a broken hash or placement. *)
  Helpers.qtest ~count:40 "ring: ownership within 3x of ideal share"
    (Gen.oneofl [ 1; 2; 4; 8; 16 ])
    (fun shards ->
      let ring = Ring.create ~shards () in
      let share = Ring.owned_share ring ~keys:20_000 in
      let ideal = 20_000. /. float_of_int shards in
      List.length share = shards
      && List.for_all
           (fun (_, c) -> float_of_int c <= (3. *. ideal) +. 1.)
           share)

let add_moves_only_to_fresh =
  Helpers.qtest ~count:60 "ring: add moves keys only onto the fresh shard"
    (Gen.int_range 1 12)
    (fun shards ->
      let ring = Ring.create ~shards () in
      let before = routing_table ring in
      let ring', fresh = Ring.add ring in
      let after = routing_table ring' in
      let moved = ref 0 in
      let ok = ref true in
      Array.iteri
        (fun k s ->
          if s <> before.(k) then begin
            incr moved;
            if s <> fresh then ok := false
          end)
        after;
      (* The fresh shard takes about 1/(N+1) of the keyspace; 2x that
         plus slack bounds the disruption. *)
      let bound =
        (2. *. float_of_int keys /. float_of_int (shards + 1)) +. 64.
      in
      !ok && float_of_int !moved <= bound)

let remove_moves_only_removed_keys =
  Helpers.qtest ~count:60 "ring: remove moves only the removed shard's keys"
    Gen.(pair (int_range 2 12) (int_range 0 1000))
    (fun (shards, pick) ->
      let ring = Ring.create ~shards () in
      let victim = List.nth (Ring.shard_ids ring) (pick mod shards) in
      let before = routing_table ring in
      let after = routing_table (Ring.remove ring victim) in
      let ok = ref true in
      Array.iteri
        (fun k s ->
          if before.(k) = victim then begin
            if s = victim then ok := false
          end
          else if s <> before.(k) then ok := false)
        after;
      !ok)

let split_sheds_only_from_hot =
  Helpers.qtest ~count:60 "ring: split sheds keys only from the hot shard"
    Gen.(pair (int_range 1 12) (int_range 0 1000))
    (fun (shards, pick) ->
      let ring = Ring.create ~shards () in
      let hot = List.nth (Ring.shard_ids ring) (pick mod shards) in
      let before = routing_table ring in
      let ring', fresh = Ring.split ring ~hot in
      let after = routing_table ring' in
      let ok = ref true in
      let shed = ref 0 in
      Array.iteri
        (fun k s ->
          if s <> before.(k) then begin
            incr shed;
            (* Every moved key left [hot] for the fresh shard. *)
            if not (before.(k) = hot && s = fresh) then ok := false
          end)
        after;
      (* Midpoint placement halves hot's arcs, so something moves
         whenever hot owned anything at this key density. *)
      let owned_before =
        Array.fold_left (fun n s -> if s = hot then n + 1 else n) 0 before
      in
      !ok && (owned_before < 2 || !shed > 0))

let ids_never_reused =
  Helpers.qtest ~count:60 "ring: shard ids are never reused"
    Gen.(pair (int_range 2 8) (int_range 0 1000))
    (fun (shards, pick) ->
      let ring = Ring.create ~shards () in
      let victim = List.nth (Ring.shard_ids ring) (pick mod shards) in
      let ring = Ring.remove ring victim in
      let ring, fresh_a = Ring.add ring in
      let ring, fresh_b = Ring.split ring ~hot:fresh_a in
      fresh_a <> victim && fresh_b <> victim
      && fresh_a > Ring.max_id (Ring.create ~shards ()) - 1
      && fresh_b > fresh_a
      && not (List.mem victim (Ring.shard_ids ring)))

let tests =
  [
    route_lands_on_live_shard;
    balance_within_factor;
    add_moves_only_to_fresh;
    remove_moves_only_removed_keys;
    split_sheds_only_from_hot;
    ids_never_reused;
  ]
