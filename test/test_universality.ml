(* Universality (Proposition 4, breadth direction): the generic
   construction works for EVERY UQ-ADT in the registry — build
   Generic.Make(A) for each registered type, run it under adversarial
   delays, and demand convergence with agreeing certificates. *)

open Helpers

let universal_run (module A : Uqadt.S) seed =
  let module P = Generic.Make (A) in
  let module R = Runner.Make (P) in
  let rng = Prng.create seed in
  let workload =
    Array.init 3 (fun _ ->
        List.init 12 (fun _ ->
            if Prng.int rng 4 = 0 then Protocol.Invoke_query (A.random_query rng)
            else Protocol.Invoke_update (A.random_update rng)))
  in
  let config =
    {
      (R.default_config ~n:3 ~seed) with
      R.delay = Network.Pareto { scale = 1.0; shape = 1.2 };
      final_read = Some (A.random_query (Prng.create seed));
    }
  in
  let r = R.run config ~workload in
  r.R.converged && r.R.certificates_agree
  && r.R.metrics.Metrics.ops_incomplete = 0

let per_type (name, packed) =
  qtest ~count:15 (Printf.sprintf "universal %s converges under heavy tails" name)
    seed_gen
    (fun seed -> universal_run packed seed)

(* The same breadth for the memoized variant, through one composed
   object: a set paired with a bank — compositionality of the framework
   end to end. *)
let product_test =
  qtest ~count:15 "universal product object (set × bank) converges" seed_gen (fun seed ->
      let module A = Product.Make (Set_spec) (Bank_spec) in
      universal_run (module A) seed)

let tests = List.map per_type Registry.all @ [ product_test ]
