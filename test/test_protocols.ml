(* The universal construction and its variants: convergence on random
   workloads, observable equivalence between Generic / Memo / Undo / GC,
   certificate validity, and the paper's propositions on real runs. *)

open Helpers

module Uni = Generic.Make (Set_spec)
module Memo_set = Memo.Make (Set_spec)
module Gc_set = Gc.Make (Set_spec)
module Undo_set = Undo.Make (Undoable.Set)

module C = Criteria.Make (Set_spec)

type final = (int * Set_spec.output) list

(* Run a set protocol on the standard random conflict workload. *)
let finals_of (module P : Protocol.PROTOCOL
                with type update = Set_spec.update
                 and type query = Set_spec.query
                 and type output = Set_spec.output) ?(fifo = false) ~seed () : final * bool =
  let module R = Runner.Make (P) in
  let rng = Prng.create seed in
  let workload =
    Workload.For_set.conflict ~rng ~n:3 ~ops_per_process:25 ~domain:8 ~skew:1.0
      ~delete_ratio:0.4
  in
  let config =
    { (R.default_config ~n:3 ~seed) with R.fifo; final_read = Some Set_spec.Read }
  in
  let r = R.run config ~workload in
  (r.R.final_outputs, r.R.converged)

let equal_finals a b =
  List.length a = List.length b
  && List.for_all2 (fun (p, o) (p', o') -> p = p' && Set_spec.equal_output o o') a b

let convergence_tests =
  [
    qtest ~count:30 "universal set converges on random schedules" seed_gen (fun seed ->
        snd (finals_of (module Uni) ~seed ()));
    qtest ~count:30 "memoized variant converges" seed_gen (fun seed ->
        snd (finals_of (module Memo_set) ~seed ()));
    qtest ~count:30 "undo variant converges" seed_gen (fun seed ->
        snd (finals_of (module Undo_set) ~seed ()));
    qtest ~count:30 "gc variant converges under fifo" seed_gen (fun seed ->
        snd (finals_of (module Gc_set) ~fifo:true ~seed ()));
    (* The three log-based variants implement the same abstract
       algorithm, so on identical schedules they must return identical
       final states — not merely converged ones. *)
    qtest ~count:30 "memo ≡ generic observably" seed_gen (fun seed ->
        let a, _ = finals_of (module Uni) ~seed () in
        let b, _ = finals_of (module Memo_set) ~seed () in
        equal_finals a b);
    qtest ~count:30 "undo ≡ generic observably" seed_gen (fun seed ->
        let a, _ = finals_of (module Uni) ~seed () in
        let b, _ = finals_of (module Undo_set) ~seed () in
        equal_finals a b);
    (* GC's heartbeat traffic perturbs the shared delay stream, so its
       schedules differ from Generic's under the same seed; instead of
       bit equivalence we check its histories satisfy the criterion. *)
    qtest ~count:20 "gc histories are UC (small runs, fifo)" seed_gen (fun seed ->
        let module R = Runner.Make (Gc_set) in
        let rng = Prng.create seed in
        let workload =
          Workload.For_set.conflict ~rng ~n:2 ~ops_per_process:3 ~domain:3 ~skew:0.5
            ~delete_ratio:0.4
        in
        let config =
          { (R.default_config ~n:2 ~seed) with R.fifo = true; final_read = Some Set_spec.Read }
        in
        let r = R.run config ~workload in
        C.holds Criteria.UC r.R.history);
  ]

let certificate_tests =
  [
    qtest ~count:20 "certificates agree and explain the final reads" seed_gen (fun seed ->
        let module R = Runner.Make (Uni) in
        let rng = Prng.create seed in
        let workload =
          Workload.For_set.conflict ~rng ~n:3 ~ops_per_process:15 ~domain:6 ~skew:1.0
            ~delete_ratio:0.4
        in
        let config = { (R.default_config ~n:3 ~seed) with R.final_read = Some Set_spec.Read } in
        let r = R.run config ~workload in
        let module Run = Uqadt.Run (Set_spec) in
        r.R.certificates_agree
        && List.for_all
             (fun (pid, cert) ->
               match List.assoc_opt pid r.R.final_outputs with
               | None -> false
               | Some out ->
                 Set_spec.equal_output
                   (Set_spec.eval (Run.final_state (List.map snd cert)) Set_spec.Read)
                   out)
             r.R.certificates);
    qtest ~count:20 "certificates extend per-process invocation order" seed_gen
      (fun seed ->
        let module R = Runner.Make (Uni) in
        let rng = Prng.create seed in
        let workload =
          Workload.For_set.conflict ~rng ~n:3 ~ops_per_process:12 ~domain:6 ~skew:0.5
            ~delete_ratio:0.3
        in
        let config = { (R.default_config ~n:3 ~seed) with R.final_read = Some Set_spec.Read } in
        let r = R.run config ~workload in
        let invoked p =
          List.filter_map History.update_of (History.process_events r.R.history p)
        in
        List.for_all
          (fun (_, cert) ->
            List.for_all
              (fun p ->
                let from_cert =
                  List.filter_map (fun (o, u) -> if o = p then Some u else None) cert
                in
                List.length from_cert = List.length (invoked p)
                && List.for_all2 Set_spec.equal_update from_cert (invoked p))
              [ 0; 1; 2 ])
          r.R.certificates);
  ]

let memo_gc_internals =
  [
    Alcotest.test_case "memo snapshots bound replay work" `Quick (fun () ->
        (* Feed 1000 in-order updates through a lone replica; each query
           replays at most one snapshot interval. *)
        let dummy : _ Protocol.ctx =
          {
            Protocol.pid = 0;
            n = 1;
            now = (fun () -> 0.0);
            send = (fun ~dst:_ _ -> ());
            broadcast = ignore;
            broadcast_batch = ignore;
            set_timer = (fun ~delay:_ _ -> ());
            count_replay = ignore;
            obs = None;
          }
        in
        let counted = ref 0 in
        let ctx = { dummy with Protocol.count_replay = (fun k -> counted := !counted + k) } in
        let r = Memo_set.create ctx in
        for i = 1 to 1000 do
          Memo_set.update r (Set_spec.Insert (i mod 17)) ~on_done:ignore
        done;
        (* The first query after a cold log replays it fully (and records
           the checkpoints); subsequent queries replay at most one
           snapshot interval. *)
        Memo_set.query r Set_spec.Read ~on_result:ignore;
        counted := 0;
        Memo_set.query r Set_spec.Read ~on_result:ignore;
        Memo_set.query r Set_spec.Read ~on_result:ignore;
        Alcotest.(check bool) "bounded" true (!counted <= 2 * Memo_set.snapshot_interval));
    Alcotest.test_case "gc compacts a quiescent log to near-empty" `Quick (fun () ->
        let module R = Runner.Make (Gc_set) in
        let workload =
          Array.make 3 (List.init 40 (fun i -> Protocol.Invoke_update (Set_spec.Insert i)))
        in
        let config =
          { (R.default_config ~n:3 ~seed:5) with R.fifo = true; final_read = Some Set_spec.Read }
        in
        let r = R.run config ~workload in
        Alcotest.(check bool) "small tails" true
          (List.for_all (fun (_, len) -> len < 120) r.R.log_lengths);
        Alcotest.(check bool) "converged" true r.R.converged);
    Alcotest.test_case "gc log is much smaller than generic's" `Quick (fun () ->
        let run (module P : Protocol.PROTOCOL
                  with type update = Set_spec.update
                   and type query = Set_spec.query
                   and type output = Set_spec.output) =
          let module R = Runner.Make (P) in
          let rng = Prng.create 9 in
          let workload =
            Workload.For_set.conflict ~rng ~n:3 ~ops_per_process:100 ~domain:8 ~skew:1.0
              ~delete_ratio:0.3
          in
          let config =
            { (R.default_config ~n:3 ~seed:9) with R.fifo = true; final_read = Some Set_spec.Read }
          in
          let r = R.run config ~workload in
          List.fold_left (fun acc (_, l) -> acc + l) 0 r.R.log_lengths
        in
        let generic = run (module Uni) and gc = run (module Gc_set) in
        Alcotest.(check bool) "gc strictly smaller" true (gc * 4 < generic));
    Alcotest.test_case "undo repairs only on reordering" `Quick (fun () ->
        (* In-order arrivals need no repairs at all. *)
        let dummy : _ Protocol.ctx =
          {
            Protocol.pid = 0;
            n = 1;
            now = (fun () -> 0.0);
            send = (fun ~dst:_ _ -> ());
            broadcast = ignore;
            broadcast_batch = ignore;
            set_timer = (fun ~delay:_ _ -> ());
            count_replay = ignore;
            obs = None;
          }
        in
        let r = Undo_set.create dummy in
        for i = 1 to 50 do
          Undo_set.update r (Set_spec.Insert i) ~on_done:ignore
        done;
        Alcotest.(check int) "no repairs" 0 (Undo_set.repairs r));
  ]

let proposition_tests =
  [
    (* Proposition 4 on random simulated schedules: small enough runs
       that the SUC checker itself is feasible. *)
    qtest ~count:20 "Algorithm 1 histories are SUC (random small runs)" seed_gen
      (fun seed ->
        let module R = Runner.Make (Uni) in
        let rng = Prng.create seed in
        let workload =
          Workload.For_set.conflict ~rng ~n:2 ~ops_per_process:2 ~domain:3 ~skew:0.5
            ~delete_ratio:0.5
        in
        let config = { (R.default_config ~n:2 ~seed) with R.final_read = Some Set_spec.Read } in
        let r = R.run config ~workload in
        C.holds Criteria.SUC r.R.history);
    (* Proposition 3 via the constructive witness: the SUC witness of a
       simulated Algorithm-1 run always verifies the Insert-wins
       specification. *)
    qtest ~count:20 "Prop 3: SUC witness yields an insert-wins relation" seed_gen
      (fun seed ->
        let module R = Runner.Make (Uni) in
        let rng = Prng.create seed in
        let workload =
          Workload.For_set.conflict ~rng ~n:2 ~ops_per_process:2 ~domain:2 ~skew:0.5
            ~delete_ratio:0.5
        in
        let config = { (R.default_config ~n:2 ~seed) with R.final_read = Some Set_spec.Read } in
        let r = R.run config ~workload in
        let module Suc = Check_suc.Make (Set_spec) in
        match Suc.witness r.R.history with
        | None -> false
        | Some w ->
          let vis =
            List.map
              (fun ((e : _ History.event), ranks) -> (e.History.id, ranks))
              w.Suc.visibility
          in
          let rel =
            Check_iw.of_suc_witness r.R.history ~sigma_ranks:w.Suc.sigma_ranks ~vis
          in
          Check_iw.verify r.R.history rel);
    (* Algorithm 2's histories are update consistent for the memory. *)
    qtest ~count:20 "Algorithm 2 histories are UC" seed_gen (fun seed ->
        let module R = Runner.Make (Lww_memory) in
        let rng = Prng.create seed in
        let workload =
          Workload.For_memory.random_writes ~rng ~n:3 ~ops_per_process:4 ~registers:2
            ~read_ratio:0.4
        in
        let config =
          { (R.default_config ~n:3 ~seed) with R.final_read = Some (Memory_spec.Read 0) }
        in
        let r = R.run config ~workload in
        let module Cm = Criteria.Make (Memory_spec) in
        Cm.holds Criteria.UC r.R.history);
  ]

let guard_tests =
  [
    Alcotest.test_case "CRDT fast path refuses non-commutative types" `Quick (fun () ->
        let module F = Commutative.Make (Set_spec) in
        let dummy : _ Protocol.ctx =
          {
            Protocol.pid = 0;
            n = 2;
            now = (fun () -> 0.0);
            send = (fun ~dst:_ _ -> ());
            broadcast = ignore;
            broadcast_batch = ignore;
            set_timer = (fun ~delay:_ _ -> ());
            count_replay = ignore;
            obs = None;
          }
        in
        Alcotest.(check bool) "raises" true
          (try
             ignore (F.create dummy);
             false
           with Invalid_argument _ -> true));
    Alcotest.test_case "unchecked fast path on a set diverges" `Quick (fun () ->
        let module F = Commutative.Make (Set_spec) in
        F.unchecked := true;
        Fun.protect
          ~finally:(fun () -> F.unchecked := false)
          (fun () ->
            let module R = Runner.Make (F) in
            let config =
              {
                (R.default_config ~n:2 ~seed:3) with
                R.delay = Network.Constant 50.0;
                think = Network.Constant 1.0;
                final_read = Some Set_spec.Read;
              }
            in
            let r =
              R.run config ~workload:(Workload.For_set.insert_delete_race ~n:2)
            in
            Alcotest.(check bool) "diverged" false r.R.converged));
    Alcotest.test_case "G-counter rejects negative increments" `Quick (fun () ->
        let dummy : _ Protocol.ctx =
          {
            Protocol.pid = 0;
            n = 1;
            now = (fun () -> 0.0);
            send = (fun ~dst:_ _ -> ());
            broadcast = ignore;
            broadcast_batch = ignore;
            set_timer = (fun ~delay:_ _ -> ());
            count_replay = ignore;
            obs = None;
          }
        in
        let r = Counters.Gcounter.create dummy in
        Alcotest.check_raises "negative" (Invalid_argument "Gcounter: negative increment")
          (fun () -> Counters.Gcounter.update r (Counter_spec.Add (-1)) ~on_done:ignore));
  ]

let tests = convergence_tests @ certificate_tests @ memo_gc_internals @ proposition_tests @ guard_tests
