(* uc_sim: engine ordering, network delivery semantics, crash and
   partition behaviour, metric accounting. *)

open Helpers

let engine_tests =
  [
    Alcotest.test_case "events fire in time order" `Quick (fun () ->
        let e = Engine.create () in
        let order = ref [] in
        Engine.schedule e ~delay:5.0 (fun () -> order := 5 :: !order);
        Engine.schedule e ~delay:1.0 (fun () -> order := 1 :: !order);
        Engine.schedule e ~delay:3.0 (fun () -> order := 3 :: !order);
        Engine.run e;
        Alcotest.(check (list int)) "sorted" [ 5; 3; 1 ] !order);
    Alcotest.test_case "ties break by insertion order" `Quick (fun () ->
        let e = Engine.create () in
        let order = ref [] in
        Engine.schedule e ~delay:1.0 (fun () -> order := `A :: !order);
        Engine.schedule e ~delay:1.0 (fun () -> order := `B :: !order);
        Engine.run e;
        Alcotest.(check bool) "A before B" true (!order = [ `B; `A ]));
    Alcotest.test_case "clock advances to event times" `Quick (fun () ->
        let e = Engine.create () in
        let seen = ref 0.0 in
        Engine.schedule e ~delay:7.5 (fun () -> seen := Engine.now e);
        Engine.run e;
        Alcotest.(check (float 1e-9)) "time" 7.5 !seen);
    Alcotest.test_case "nested scheduling works" `Quick (fun () ->
        let e = Engine.create () in
        let hits = ref 0 in
        Engine.schedule e ~delay:1.0 (fun () ->
            incr hits;
            Engine.schedule e ~delay:1.0 (fun () -> incr hits));
        Engine.run e;
        Alcotest.(check int) "both ran" 2 !hits);
    Alcotest.test_case "run ~until stops early" `Quick (fun () ->
        let e = Engine.create () in
        let hits = ref 0 in
        Engine.schedule e ~delay:1.0 (fun () -> incr hits);
        Engine.schedule e ~delay:100.0 (fun () -> incr hits);
        Engine.run ~until:10.0 e;
        Alcotest.(check int) "one ran" 1 !hits;
        Alcotest.(check int) "one pending" 1 (Engine.pending e));
    Alcotest.test_case "negative and infinite delays are rejected" `Quick (fun () ->
        let e = Engine.create () in
        let msg = "Engine.schedule: delay must be finite and non-negative" in
        Alcotest.check_raises "negative" (Invalid_argument msg) (fun () ->
            Engine.schedule e ~delay:(-1.0) ignore);
        Alcotest.check_raises "infinite" (Invalid_argument msg) (fun () ->
            Engine.schedule e ~delay:Float.infinity ignore));
    Alcotest.test_case "schedule_at in the past fires now" `Quick (fun () ->
        let e = Engine.create () in
        let at = ref (-1.0) in
        Engine.schedule e ~delay:5.0 (fun () ->
            Engine.schedule_at e ~time:1.0 (fun () -> at := Engine.now e));
        Engine.run e;
        Alcotest.(check (float 1e-9)) "not in the past" 5.0 !at);
  ]

(* A network harness capturing deliveries. *)
let net_harness ?(fifo = false) ?(partitions = []) ?envelope ~delay ~seed n =
  let engine = Engine.create () in
  let metrics = Metrics.create () in
  let log = ref [] in
  let net =
    Network.create ~engine ~rng:(Prng.create seed) ~metrics ~n ~fifo ~partitions
      ?envelope ~delay
      ~wire_size:(fun (_ : int) -> 4)
      ~deliver:(fun ~dst ~src msg -> log := (Engine.now engine, src, dst, msg) :: !log)
      ()
  in
  (engine, metrics, net, log)

let network_tests =
  [
    Alcotest.test_case "messages arrive within the delay bounds" `Quick (fun () ->
        let engine, _, net, log =
          net_harness ~delay:(Network.Uniform { lo = 2.0; hi = 4.0 }) ~seed:1 2
        in
        for i = 1 to 20 do
          Network.send net ~src:0 ~dst:1 i
        done;
        Engine.run engine;
        Alcotest.(check int) "all delivered" 20 (List.length !log);
        List.iter
          (fun (t, _, _, _) -> Alcotest.(check bool) "bounds" true (t >= 2.0 && t <= 4.0))
          !log);
    Alcotest.test_case "fifo preserves per-channel order" `Quick (fun () ->
        let engine, _, net, log =
          net_harness ~fifo:true ~delay:(Network.Uniform { lo = 1.0; hi = 50.0 }) ~seed:3 2
        in
        for i = 1 to 30 do
          Network.send net ~src:0 ~dst:1 i
        done;
        Engine.run engine;
        let payloads = List.rev_map (fun (_, _, _, m) -> m) !log in
        Alcotest.(check (list int)) "in order" (List.init 30 (fun i -> i + 1)) payloads);
    Alcotest.test_case "without fifo, reordering happens" `Quick (fun () ->
        let engine, _, net, log =
          net_harness ~delay:(Network.Uniform { lo = 1.0; hi = 50.0 }) ~seed:3 2
        in
        for i = 1 to 30 do
          Network.send net ~src:0 ~dst:1 i
        done;
        Engine.run engine;
        let payloads = List.rev_map (fun (_, _, _, m) -> m) !log in
        Alcotest.(check bool) "reordered" true
          (payloads <> List.init 30 (fun i -> i + 1)));
    Alcotest.test_case "broadcast reaches everyone but the sender" `Quick (fun () ->
        let engine, metrics, net, log = net_harness ~delay:(Network.Constant 1.0) ~seed:1 4 in
        Network.broadcast net ~src:2 7;
        Engine.run engine;
        Alcotest.(check int) "three copies" 3 (List.length !log);
        Alcotest.(check bool) "not to self" true
          (List.for_all (fun (_, _, dst, _) -> dst <> 2) !log);
        Alcotest.(check int) "bytes counted" 12 metrics.Metrics.bytes_sent);
    Alcotest.test_case "messages to a crashed process are dropped" `Quick (fun () ->
        let engine, metrics, net, log = net_harness ~delay:(Network.Constant 1.0) ~seed:1 2 in
        Network.crash net 1;
        Network.send net ~src:0 ~dst:1 1;
        Engine.run engine;
        Alcotest.(check int) "no delivery" 0 (List.length !log);
        Alcotest.(check int) "dropped" 1 metrics.Metrics.messages_dropped);
    Alcotest.test_case "a crashed process cannot send" `Quick (fun () ->
        let engine, _, net, log = net_harness ~delay:(Network.Constant 1.0) ~seed:1 2 in
        Network.crash net 0;
        Network.send net ~src:0 ~dst:1 1;
        Engine.run engine;
        Alcotest.(check int) "no delivery" 0 (List.length !log));
    Alcotest.test_case "alive lists the non-crashed" `Quick (fun () ->
        let _, _, net, _ = net_harness ~delay:(Network.Constant 1.0) ~seed:1 3 in
        Network.crash net 1;
        Alcotest.(check (list int)) "alive" [ 0; 2 ] (Network.alive net));
    Alcotest.test_case "partition holds messages until it heals" `Quick (fun () ->
        let partitions = [ { Network.from_time = 0.0; to_time = 100.0; group = [ 0 ] } ] in
        let engine, _, net, log = net_harness ~partitions ~delay:(Network.Constant 1.0) ~seed:1 2 in
        Network.send net ~src:0 ~dst:1 1;
        Engine.run engine;
        (match !log with
        | [ (t, _, _, _) ] -> Alcotest.(check (float 1e-9)) "after heal" 101.0 t
        | _ -> Alcotest.fail "expected one delivery");
        Alcotest.(check bool) "reliable" true (List.length !log = 1));
    Alcotest.test_case "same-side traffic crosses a partition window" `Quick (fun () ->
        let partitions = [ { Network.from_time = 0.0; to_time = 100.0; group = [ 0; 1 ] } ] in
        let engine, _, net, log = net_harness ~partitions ~delay:(Network.Constant 1.0) ~seed:1 3 in
        Network.send net ~src:0 ~dst:1 1;
        Engine.run engine;
        match !log with
        | [ (t, _, _, _) ] -> Alcotest.(check (float 1e-9)) "immediate" 1.0 t
        | _ -> Alcotest.fail "expected one delivery");
    qtest "draw_delay respects each model's support" seed_gen (fun seed ->
        let rng = Prng.create seed in
        let c = Network.draw_delay rng (Network.Constant 3.0) in
        let u = Network.draw_delay rng (Network.Uniform { lo = 1.0; hi = 2.0 }) in
        let e = Network.draw_delay rng (Network.Exponential { mean = 5.0 }) in
        let p = Network.draw_delay rng (Network.Pareto { scale = 2.0; shape = 1.5 }) in
        c = 3.0 && u >= 1.0 && u <= 2.0 && e >= 0.0 && p >= 2.0);
  ]

let batch_tests =
  [
    Alcotest.test_case "send_batch delivers together and in order" `Quick (fun () ->
        let engine, metrics, net, log =
          net_harness ~delay:(Network.Uniform { lo = 1.0; hi = 50.0 }) ~seed:7 2
        in
        Network.send_batch net ~src:0 ~dst:1 [ 1; 2; 3 ];
        Engine.run engine;
        (* One frame: a single delay draw, so even a reordering network
           hands the batch over atomically and in order. *)
        let deliveries = List.rev !log in
        Alcotest.(check (list int)) "in order" [ 1; 2; 3 ]
          (List.map (fun (_, _, _, m) -> m) deliveries);
        let times = List.map (fun (t, _, _, _) -> t) deliveries in
        Alcotest.(check bool) "one arrival instant" true
          (List.for_all (fun t -> t = List.hd times) times);
        Alcotest.(check int) "counted per message" 3 metrics.Metrics.messages_sent;
        Alcotest.(check int) "one multi-message frame" 1 metrics.Metrics.batches_sent);
    Alcotest.test_case "singleton and empty sends are not batches" `Quick (fun () ->
        let engine, metrics, net, log =
          net_harness ~delay:(Network.Constant 1.0) ~seed:1 2
        in
        Network.send net ~src:0 ~dst:1 1;
        Network.send_batch net ~src:0 ~dst:1 [ 2 ];
        Network.send_batch net ~src:0 ~dst:1 [];
        Engine.run engine;
        Alcotest.(check int) "two deliveries" 2 (List.length !log);
        Alcotest.(check int) "no batch counted" 0 metrics.Metrics.batches_sent);
    Alcotest.test_case "envelope is charged once per frame" `Quick (fun () ->
        let engine, metrics, net, _ =
          net_harness ~envelope:10 ~delay:(Network.Constant 1.0) ~seed:1 3
        in
        (* Two frames of three 4-byte messages: 2*(10 + 12) bytes. *)
        Network.broadcast_batch net ~src:0 [ 1; 2; 3 ];
        Engine.run engine;
        Alcotest.(check int) "bytes" (2 * (10 + 12)) metrics.Metrics.bytes_sent;
        Alcotest.(check int) "two frames" 2 metrics.Metrics.batches_sent;
        Alcotest.(check int) "six messages" 6 metrics.Metrics.messages_sent);
    Alcotest.test_case "a batch to a crashed process drops whole" `Quick (fun () ->
        let engine, metrics, net, log =
          net_harness ~delay:(Network.Constant 1.0) ~seed:1 2
        in
        Network.crash net 1;
        Network.send_batch net ~src:0 ~dst:1 [ 1; 2; 3 ];
        Engine.run engine;
        Alcotest.(check int) "no delivery" 0 (List.length !log);
        Alcotest.(check int) "all dropped" 3 metrics.Metrics.messages_dropped);
  ]

let contains s sub =
  let n = String.length sub in
  let rec go i =
    i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
  in
  go 0

let metrics_tests =
  [
    Alcotest.test_case "pp prints batches and mean delivery latency" `Quick
      (fun () ->
        let m = Metrics.create () in
        m.Metrics.messages_sent <- 3;
        m.Metrics.messages_delivered <- 2;
        m.Metrics.delivery_latency_sum <- 5.0;
        m.Metrics.batches_sent <- 4;
        let s = Format.asprintf "%a" Metrics.pp m in
        Alcotest.(check bool) "batches" true (contains s "batches=4");
        Alcotest.(check bool) "mean latency" true
          (contains s "mean_delivery=2.500"));
    Alcotest.test_case "mean delivery latency guards division by zero" `Quick
      (fun () ->
        let m = Metrics.create () in
        Alcotest.(check (float 0.0)) "empty run" 0.0
          (Metrics.mean_delivery_latency m);
        let s = Format.asprintf "%a" Metrics.pp m in
        Alcotest.(check bool) "no nan in pp" true
          (not (contains s "nan")));
  ]

module P = Generic.Make (Set_spec)
module R = Runner.Make (P)

let runner_tests =
  [
    Alcotest.test_case "metrics add up" `Quick (fun () ->
        let workload =
          [|
            [ Protocol.Invoke_update (Set_spec.Insert 1); Protocol.Invoke_query Set_spec.Read ];
            [ Protocol.Invoke_update (Set_spec.Insert 2) ];
          |]
        in
        let config = { (R.default_config ~n:2 ~seed:1) with R.final_read = Some Set_spec.Read } in
        let r = R.run config ~workload in
        let m = r.R.metrics in
        Alcotest.(check int) "updates" 2 m.Metrics.updates_invoked;
        (* one scripted query + two ω reads *)
        Alcotest.(check int) "queries" 3 m.Metrics.queries_invoked;
        (* each update broadcast to one other process *)
        Alcotest.(check int) "messages" 2 m.Metrics.messages_sent;
        Alcotest.(check int) "no stalls" 0 m.Metrics.ops_incomplete);
    Alcotest.test_case "history mirrors the workload structure" `Quick (fun () ->
        let workload =
          [|
            [ Protocol.Invoke_update (Set_spec.Insert 1); Protocol.Invoke_query Set_spec.Read ];
            [];
          |]
        in
        let config = { (R.default_config ~n:2 ~seed:1) with R.final_read = Some Set_spec.Read } in
        let r = R.run config ~workload in
        Alcotest.(check int) "p0 has 3 events" 3
          (List.length (History.process_events r.R.history 0));
        Alcotest.(check int) "p1 has its ω read" 1
          (List.length (History.process_events r.R.history 1)));
    Alcotest.test_case "crashed processes stop issuing and reading" `Quick (fun () ->
        let workload =
          Array.make 2 (List.init 20 (fun i -> Protocol.Invoke_update (Set_spec.Insert i)))
        in
        let config =
          {
            (R.default_config ~n:2 ~seed:1) with
            R.final_read = Some Set_spec.Read;
            crashes = [ (0.5, 1) ];
          }
        in
        let r = R.run config ~workload in
        Alcotest.(check int) "only p0 answers" 1 (List.length r.R.final_outputs);
        Alcotest.(check bool) "p0 is the survivor" true (fst (List.hd r.R.final_outputs) = 0));
    Alcotest.test_case "workload width must match n" `Quick (fun () ->
        let config = R.default_config ~n:3 ~seed:1 in
        Alcotest.check_raises "width" (Invalid_argument "Runner.run: workload width must match config.n")
          (fun () -> ignore (R.run config ~workload:[| [] |])));
    qtest ~count:25 "same seed, same run" seed_gen (fun seed ->
        let workload =
          [|
            List.init 10 (fun i -> Protocol.Invoke_update (Set_spec.Insert i));
            List.init 10 (fun i -> Protocol.Invoke_update (Set_spec.Delete i));
          |]
        in
        let config = { (R.default_config ~n:2 ~seed) with R.final_read = Some Set_spec.Read } in
        let a = R.run config ~workload and b = R.run config ~workload in
        a.R.metrics.Metrics.bytes_sent = b.R.metrics.Metrics.bytes_sent
        && a.R.sim_duration = b.R.sim_duration
        && List.for_all2
             (fun (p, o) (p', o') -> p = p' && Set_spec.equal_output o o')
             a.R.final_outputs b.R.final_outputs);
    qtest ~count:40 "a batching window preserves convergence and certificates"
      seed_gen
      (fun seed ->
        let workload =
          [|
            List.init 12 (fun i -> Protocol.Invoke_update (Set_spec.Insert i));
            List.init 12 (fun i ->
                Protocol.Invoke_update
                  (if i mod 3 = 0 then Set_spec.Delete i
                   else Set_spec.Insert (100 + i)));
            [];
          |]
        in
        let config =
          {
            (R.default_config ~n:3 ~seed) with
            R.final_read = Some Set_spec.Read;
            think = Network.Constant 0.5;
            batch_window = Some 2.0;
            envelope = 8;
          }
        in
        let r = R.run config ~workload in
        (* Back-to-back updates within the 2.0 window must have shared
           frames somewhere in the run, and batching must change no
           protocol-level outcome. *)
        r.R.converged && r.R.certificates_agree
        && r.R.metrics.Metrics.batches_sent > 0
        && List.length r.R.final_outputs = 3);
  ]

let tests =
  engine_tests @ network_tests @ batch_tests @ metrics_tests @ runner_tests
