(* The client/fail-over topology: availability through replica crashes,
   convergence of client sessions, and the session-consistency loss that
   fail-over introduces (while update consistency survives). *)

open Helpers

module P = Generic.Make (Set_spec)
module Cl = Clients.Make (P)
module C = Criteria.Make (Set_spec)

let upd u = Protocol.Invoke_update u

let qry = Protocol.Invoke_query Set_spec.Read

let tests =
  [
    qtest ~count:20 "client sessions converge without faults" seed_gen (fun seed ->
        let config =
          { (Cl.default_config ~n_replicas:3 ~n_clients:4 ~seed) with
            Cl.final_read = Some Set_spec.Read }
        in
        let rng = Prng.create seed in
        let workload =
          Array.init 4 (fun c ->
              List.init 6 (fun i ->
                  if i mod 3 = 2 then qry
                  else upd (Set_spec.Insert ((c * 10) + Prng.int rng 5))))
        in
        let r = Cl.run config ~workload in
        r.Cl.converged && r.Cl.failovers = 0 && r.Cl.ops_abandoned = 0);
    qtest ~count:20 "clients survive a replica crash via fail-over" seed_gen (fun seed ->
        let config =
          {
            (Cl.default_config ~n_replicas:3 ~n_clients:3 ~seed) with
            Cl.crashes = [ (10.0, 0) ];
            final_read = Some Set_spec.Read;
          }
        in
        let rng = Prng.create seed in
        let workload =
          Array.init 3 (fun _ ->
              List.init 8 (fun _ -> upd (Set_spec.random_update rng)))
        in
        let r = Cl.run config ~workload in
        (* Every scripted op completes (possibly after a retry) and the
           sessions converge. *)
        r.Cl.converged && r.Cl.ops_completed = 24);
    Alcotest.test_case "fail-over is counted and the session continues" `Quick (fun () ->
        let config =
          {
            (Cl.default_config ~n_replicas:2 ~n_clients:1 ~seed:3) with
            Cl.crashes = [ (10.0, 0) ];
            think = Network.Constant 8.0;
            final_read = Some Set_spec.Read;
          }
        in
        (* Client 0 homes at replica 0; the crash forces it over. *)
        let workload = [| List.init 5 (fun i -> upd (Set_spec.Insert i)) |] in
        let r = Cl.run config ~workload in
        Alcotest.(check bool) "failed over" true (r.Cl.failovers >= 1);
        Alcotest.(check int) "all ops completed" 5 r.Cl.ops_completed;
        Alcotest.(check bool) "converged" true r.Cl.converged);
    Alcotest.test_case "two-client histories stay UC and EC through a crash" `Quick
      (fun () ->
        let config =
          {
            (Cl.default_config ~n_replicas:2 ~n_clients:2 ~seed:5) with
            Cl.crashes = [ (12.0, 0) ];
            final_read = Some Set_spec.Read;
          }
        in
        let workload = [| [ upd (Set_spec.Insert 7); qry ]; [ qry; qry ] |] in
        let r = Cl.run config ~workload in
        Alcotest.(check bool) "history UC" true (C.holds Criteria.UC r.Cl.history);
        Alcotest.(check bool) "history EC" true (C.holds Criteria.EC r.Cl.history));
    Alcotest.test_case "a session regression is observable after fail-over" `Quick
      (fun () ->
        (* Deterministic regression: reader homes with the writer on
           replica 0, reads the value, replica 0 crashes, the next read
           lands on replica 1 which (slow mesh) has not heard the write:
           the client's own history is no longer pipelined consistent,
           yet remains update consistent. *)
        let config =
          {
            (Cl.default_config ~n_replicas:2 ~n_clients:1 ~seed:7) with
            Cl.replica_delay = Network.Constant 500.0;
            client_delay = Network.Constant 0.25;
            think = Network.Constant 3.0;
            crashes = [ (11.0, 0) ];
            final_read = Some Set_spec.Read;
          }
        in
        let workload = [| [ upd (Set_spec.Insert 7); qry; qry; qry ] |] in
        let r = Cl.run config ~workload in
        Alcotest.(check bool) "failed over" true (r.Cl.failovers >= 1);
        let reads =
          List.filter_map History.query_of (History.process_events r.Cl.history 0)
          |> List.map snd
        in
        (* First read (replica 0) sees {7}; later reads (replica 1) are
           empty until the mesh delivers — the regression. *)
        (match reads with
        | first :: rest ->
          Alcotest.(check bool) "saw own write" true (Support.Int_set.mem 7 first);
          Alcotest.(check bool) "then lost it" true
            (List.exists (fun o -> not (Support.Int_set.mem 7 o)) rest)
        | [] -> Alcotest.fail "expected reads");
        Alcotest.(check bool) "session PC broken" false (C.holds Criteria.PC r.Cl.history);
        Alcotest.(check bool) "still UC" true (C.holds Criteria.UC r.Cl.history));
    (* --- open-loop arrivals (flash crowds) --- *)
    qtest ~count:50 "arrival times are ascending and phase-bounded" seed_gen (fun seed ->
        let rng = Prng.create seed in
        let plan =
          [
            { Clients.duration = 40.0; rate = 1.5 };
            { Clients.duration = 20.0; rate = 6.0 };
            { Clients.duration = 40.0; rate = 1.5 };
          ]
        in
        let ts = Clients.arrival_times ~rng plan in
        let rec ascending = function
          | a :: (b :: _ as rest) -> a <= b && ascending rest
          | _ -> true
        in
        ascending ts && List.for_all (fun t -> t >= 0.0 && t <= 100.0) ts);
    qtest ~count:20 "arrival sampling is deterministic per seed" seed_gen (fun seed ->
        let plan = [ { Clients.duration = 30.0; rate = 4.0 } ] in
        Clients.arrival_times ~rng:(Prng.create seed) plan
        = Clients.arrival_times ~rng:(Prng.create seed) plan);
    Alcotest.test_case "a zero-rate phase is quiet time" `Quick (fun () ->
        let rng = Prng.create 9 in
        let ts =
          Clients.arrival_times ~rng
            [
              { Clients.duration = 50.0; rate = 0.0 };
              { Clients.duration = 50.0; rate = 3.0 };
            ]
        in
        Alcotest.(check bool) "the loud phase produced arrivals" true (ts <> []);
        Alcotest.(check bool) "none during the quiet phase" true
          (List.for_all (fun t -> t >= 50.0) ts));
    Alcotest.test_case "negative rates and durations are rejected" `Quick (fun () ->
        Alcotest.check_raises "rate"
          (Invalid_argument "Clients.arrival_times: negative rate") (fun () ->
            ignore
              (Clients.arrival_times ~rng:(Prng.create 1)
                 [ { Clients.duration = 10.0; rate = -1.0 } ]));
        Alcotest.check_raises "duration"
          (Invalid_argument "Clients.arrival_times: negative duration") (fun () ->
            ignore
              (Clients.arrival_times ~rng:(Prng.create 1)
                 [ { Clients.duration = -10.0; rate = 1.0 } ])));
    Alcotest.test_case "an open-loop storm completes, measures, and converges" `Quick
      (fun () ->
        let plan = Workload.Flash_crowd.plan ~base:0.5 ~peak:4.0 ~warm:30.0 ~spike:25.0 ~cool:30.0 in
        let mix =
          let one =
            Workload.Flash_crowd.set_mix ~domain:16 ~skew:1.0 ~delete_ratio:0.3
              ~query_ratio:0.25
          in
          fun g -> [ one g ]
        in
        let config =
          {
            (Cl.default_config ~n_replicas:3 ~n_clients:2 ~seed:17) with
            Cl.final_read = Some Set_spec.Read;
            open_loop = Some { Cl.plan; mix };
          }
        in
        let workload = [| [ upd (Set_spec.Insert 1); qry ]; [ upd (Set_spec.Insert 2) ] |] in
        let r = Cl.run config ~workload in
        Alcotest.(check bool) "arrivals landed" true (r.Cl.open_completed > 0);
        Alcotest.(check int) "no arrivals lost with all replicas live" 0
          r.Cl.open_abandoned;
        Alcotest.(check int) "one latency sample per completed arrival"
          r.Cl.open_completed
          (List.length r.Cl.open_latencies);
        Alcotest.(check bool) "latencies are positive" true
          (List.for_all (fun l -> l > 0.0) r.Cl.open_latencies);
        Alcotest.(check bool) "still converged" true r.Cl.converged;
        Alcotest.(check int) "closed loop unaffected" 3 r.Cl.ops_completed;
        (* The sample feeds straight into the SLO verdict. *)
        let s = Stats.slo ~target:50.0 r.Cl.open_latencies in
        Alcotest.(check int) "slo counts the sample" r.Cl.open_completed s.Stats.count;
        Alcotest.(check bool) "p50 ≤ p99 ≤ max" true
          (s.Stats.p50 <= s.Stats.p99 && s.Stats.p99 <= s.Stats.max);
        (* And the whole storm is reproducible. *)
        let r2 = Cl.run config ~workload in
        Alcotest.(check int) "deterministic completions" r.Cl.open_completed
          r2.Cl.open_completed;
        Alcotest.(check bool) "deterministic latencies" true
          (r.Cl.open_latencies = r2.Cl.open_latencies));
  ]
