(* QCheck properties for the shared oplog substrate (lib/core/oplog.ml):
   insertion of any permutation equals the timestamp sort, checkpointed
   replay at every interval equals the full replay, compaction folds
   exactly the stable prefix, and the persistence codec round-trips at
   its declared wire size. *)

open Helpers

(* A random batch of entries with pairwise-distinct timestamps (clock
   collisions are disambiguated by pid, exactly as the protocol's
   (Lamport clock, pid) pairs are), in a shuffled insertion order. *)
let entry_batch rng =
  let n = Prng.int rng 80 in
  let raw = List.init n (fun _ -> (1 + Prng.int rng 50, Prng.int rng 4)) in
  let uniq = List.sort_uniq compare raw in
  let entries =
    List.map
      (fun (clock, pid) ->
        (Timestamp.make ~clock ~pid, pid, Set_spec.random_update rng))
      uniq
  in
  let arr = Array.of_list entries in
  for i = Array.length arr - 1 downto 1 do
    let j = Prng.int rng (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done;
  Array.to_list arr

let by_timestamp entries =
  List.sort (fun (a, _, _) (b, _, _) -> Timestamp.compare a b) entries

let insert_all log entries =
  List.iter
    (fun (ts, origin, payload) ->
      ignore (Oplog.insert log { Oplog.ts; origin; payload }))
    entries

let fold_states entries =
  List.fold_left (fun s (_, _, u) -> Set_spec.apply s u) Set_spec.initial entries

(* Reimplemented from the frame spec, to pin the format rather than the
   implementation: additive byte sum modulo 2^30. *)
let frame_checksum s =
  let acc = ref 0 in
  String.iter (fun c -> acc := (!acc + Char.code c) land 0x3FFFFFFF) s;
  !acc

let tests =
  [
    qtest ~count:300 "inserting any permutation equals the timestamp sort"
      seed_gen
      (fun seed ->
        let rng = Prng.create seed in
        let entries = entry_batch rng in
        let log = Oplog.create () in
        insert_all log entries;
        Oplog.length log = List.length entries
        && Oplog.to_list log = by_timestamp entries);
    qtest ~count:300 "insert returns the landing position" seed_gen (fun seed ->
        let rng = Prng.create seed in
        let entries = entry_batch rng in
        let log = Oplog.create () in
        List.for_all
          (fun (ts, origin, payload) ->
            let pos = Oplog.insert log { Oplog.ts; origin; payload } in
            Timestamp.equal (Oplog.get log pos).Oplog.ts ts
            && pos = Oplog.locate log ts - 1)
          entries);
    qtest ~count:200
      "checkpointed replay equals full replay at every interval" seed_gen
      (fun seed ->
        let rng = Prng.create seed in
        let entries = entry_batch rng in
        List.for_all
          (fun interval ->
            let log = Oplog.create ~checkpoint_interval:interval () in
            let inserted = ref [] in
            List.for_all
              (fun ((_, _, _) as e) ->
                let ts, origin, payload = e in
                ignore (Oplog.insert log { Oplog.ts; origin; payload });
                inserted := e :: !inserted;
                (* Replay mid-stream at random points, so checkpoints
                   recorded by one replay get invalidated by the next
                   late insert. *)
                Prng.int rng 3 > 0
                ||
                let state, steps =
                  Oplog.replay log ~apply:Set_spec.apply ~initial:Set_spec.initial
                in
                steps >= 0
                && Set_spec.equal_state state
                     (fold_states (by_timestamp !inserted)))
              entries
            &&
            let state, _ =
              Oplog.replay log ~apply:Set_spec.apply ~initial:Set_spec.initial
            in
            Set_spec.equal_state state (fold_states (by_timestamp entries)))
          [ 1; 2; 3; 4; 5; 7; 8; 16; 32; 0 ]);
    qtest ~count:200 "warm checkpoints bound replay work to one interval"
      seed_gen
      (fun seed ->
        let rng = Prng.create seed in
        let interval = 1 + Prng.int rng 16 in
        let n = Prng.int rng 120 in
        let log = Oplog.create ~checkpoint_interval:interval () in
        (* In-order arrivals: nothing invalidates, so after one replay a
           second one starts at the deepest recorded checkpoint. *)
        for i = 1 to n do
          ignore
            (Oplog.insert log
               { Oplog.ts = Timestamp.make ~clock:i ~pid:0;
                 origin = 0;
                 payload = Set_spec.random_update rng;
               })
        done;
        let _, steps1 =
          Oplog.replay log ~apply:Set_spec.apply ~initial:Set_spec.initial
        in
        let _, steps2 =
          Oplog.replay log ~apply:Set_spec.apply ~initial:Set_spec.initial
        in
        steps1 = n && steps2 = n mod interval
        && Oplog.checkpoints_live log = n / interval);
    qtest ~count:300 "compaction folds exactly the stable prefix" seed_gen
      (fun seed ->
        let rng = Prng.create seed in
        let entries = entry_batch rng in
        let bound = Prng.int rng 60 in
        let log = Oplog.create () in
        insert_all log entries;
        let sorted = by_timestamp entries in
        let prefix, suffix =
          List.partition (fun (ts, _, _) -> ts.Timestamp.clock <= bound) sorted
        in
        let state, folded =
          Oplog.compact log ~upto_clock:bound ~apply:Set_spec.apply
            Set_spec.initial
        in
        folded = List.length prefix
        && Set_spec.equal_state state (fold_states prefix)
        && Oplog.to_list log = suffix
        && Oplog.watermark log = max bound 0
        && (bound <= 0
           ||
           match
             Oplog.insert log
               { Oplog.ts = Timestamp.make ~clock:bound ~pid:9;
                 origin = 9;
                 payload = Set_spec.random_update rng;
               }
           with
           | _ -> false
           | exception Invalid_argument _ -> true));
    qtest ~count:300 "codec round-trips at the declared wire size" seed_gen
      (fun seed ->
        let rng = Prng.create seed in
        let entries = by_timestamp (entry_batch rng) in
        let s =
          Oplog.encode_list ~encode_update:Update_codec.For_set.encode entries
        in
        let body_len =
          3 + 1
          + Wire.varint_size (List.length entries)
          + List.fold_left
              (fun acc (ts, origin, u) ->
                acc + Timestamp.wire_size ts + Wire.varint_size origin
                + Set_spec.update_wire_size u)
              0 entries
        in
        let declared_trailer =
          Wire.varint_size (frame_checksum (String.sub s 0 body_len))
        in
        String.length s = body_len + declared_trailer
        && Oplog.decode_list ~decode_update:Update_codec.For_set.decode s
           = entries);
    qtest ~count:200 "codec rejects any single corrupted byte" seed_gen
      (fun seed ->
        let rng = Prng.create seed in
        let entries = by_timestamp (entry_batch rng) in
        let s =
          Bytes.of_string
            (Oplog.encode_list ~encode_update:Update_codec.For_set.encode entries)
        in
        let i = Prng.int rng (Bytes.length s) in
        Bytes.set s i (Char.chr (Char.code (Bytes.get s i) lxor 1));
        match
          Oplog.decode_list ~decode_update:Update_codec.For_set.decode
            (Bytes.to_string s)
        with
        | decoded ->
          (* A flip inside an update payload can decode to a different
             valid frame only if the checksum also matched — never. *)
          decoded <> entries && false
        | exception Codec.Decode_error _ -> true);
    qtest ~count:300 "load accepts any order and resets the cache" seed_gen
      (fun seed ->
        let rng = Prng.create seed in
        let entries = entry_batch rng in
        let log = Oplog.create ~checkpoint_interval:4 () in
        insert_all log entries;
        let _ =
          Oplog.replay log ~apply:Set_spec.apply ~initial:Set_spec.initial
        in
        Oplog.load log entries;
        Oplog.checkpoints_live log = 0
        && Oplog.watermark log = 0
        && Oplog.to_list log = by_timestamp entries
        &&
        let state, steps =
          Oplog.replay log ~apply:Set_spec.apply ~initial:Set_spec.initial
        in
        steps = List.length entries
        && Set_spec.equal_state state (fold_states (by_timestamp entries)));
    Alcotest.test_case "negative checkpoint interval is rejected" `Quick
      (fun () ->
        Alcotest.check_raises "create"
          (Invalid_argument
             "Oplog.create: checkpoint interval must be non-negative")
          (fun () -> ignore (Oplog.create ~checkpoint_interval:(-1) () : (int, int) Oplog.t)));
    (* The persistence hot path: [encode] now streams the backing array
       into a pre-sized buffer instead of materialising [to_list]. The
       frame must stay byte-for-byte the [encode_list] frame — with the
       exact-size hint, without it, and after mid-log insertions. *)
    qtest ~count:300 "encode streams the array byte-identically to the list path"
      seed_gen
      (fun seed ->
        let rng = Prng.create seed in
        let entries = entry_batch rng in
        let log = Oplog.create () in
        insert_all log entries;
        let reference =
          Oplog.encode_list ~encode_update:Update_codec.For_set.encode
            (Oplog.to_list log)
        in
        Oplog.encode ~encode_update:Update_codec.For_set.encode log = reference
        && Oplog.encode ~update_wire_size:Set_spec.update_wire_size
             ~encode_update:Update_codec.For_set.encode log
           = reference);
    Alcotest.test_case "encode of an empty log matches the list path" `Quick
      (fun () ->
        let log : (Set_spec.update, Set_spec.state) Oplog.t = Oplog.create () in
        Alcotest.(check string)
          "empty frame"
          (Oplog.encode_list ~encode_update:Update_codec.For_set.encode [])
          (Oplog.encode ~update_wire_size:Set_spec.update_wire_size
             ~encode_update:Update_codec.For_set.encode log));
    (* The one-pass batch merge: any chunking of any arrival order —
       duplicate timestamps included, within a chunk and against the
       resident log — must leave the log, the surviving checkpoints,
       the watermark, and the frame bytes exactly as one-at-a-time
       insertion does, with replays interleaved so there are live
       checkpoints for the batch path to invalidate (or wrongly keep). *)
    qtest ~count:300 "insert_batch of any chunking equals sequential inserts"
      seed_gen
      (fun seed ->
        let rng = Prng.create seed in
        let n = Prng.int rng 60 in
        let entries =
          List.init n (fun _ ->
              ( Timestamp.make ~clock:(1 + Prng.int rng 12)
                  ~pid:(Prng.int rng 3),
                Prng.int rng 3,
                Set_spec.random_update rng ))
        in
        let chunks =
          let rec go acc cur = function
            | [] -> List.rev (List.rev cur :: acc)
            | e :: tl ->
              if Prng.int rng 4 = 0 then go (List.rev cur :: acc) [ e ] tl
              else go acc (e :: cur) tl
          in
          go [] [] entries
        in
        let interval = Prng.int rng 6 in
        let seq = Oplog.create ~checkpoint_interval:interval () in
        let bat = Oplog.create ~checkpoint_interval:interval () in
        List.for_all
          (fun chunk ->
            let len0 = Oplog.length seq in
            insert_all seq chunk;
            let fresh =
              Oplog.insert_batch bat
                (List.map
                   (fun (ts, origin, payload) -> { Oplog.ts; origin; payload })
                   chunk)
            in
            (if Prng.int rng 2 = 0 then begin
               ignore
                 (Oplog.replay seq ~apply:Set_spec.apply
                    ~initial:Set_spec.initial);
               ignore
                 (Oplog.replay bat ~apply:Set_spec.apply
                    ~initial:Set_spec.initial)
             end);
            fresh = Oplog.length seq - len0
            && Oplog.to_list bat = Oplog.to_list seq
            && Oplog.watermark bat = Oplog.watermark seq
            && Oplog.checkpoints_live bat = Oplog.checkpoints_live seq)
          chunks
        && Oplog.encode_list ~encode_update:Update_codec.For_set.encode
             (Oplog.to_list bat)
           = Oplog.encode_list ~encode_update:Update_codec.For_set.encode
               (Oplog.to_list seq)
        &&
        let sb, _ =
          Oplog.replay bat ~apply:Set_spec.apply ~initial:Set_spec.initial
        in
        let ss, _ =
          Oplog.replay seq ~apply:Set_spec.apply ~initial:Set_spec.initial
        in
        Set_spec.equal_state sb ss);
    qtest ~count:300 "insert_batch is idempotent on re-delivered batches"
      seed_gen
      (fun seed ->
        let rng = Prng.create seed in
        let entries = entry_batch rng in
        let batch =
          List.map
            (fun (ts, origin, payload) -> { Oplog.ts; origin; payload })
            entries
        in
        let log = Oplog.create () in
        let first = Oplog.insert_batch log batch in
        let again = Oplog.insert_batch log batch in
        first = List.length entries
        && again = 0
        && Oplog.to_list log = by_timestamp entries);
    Alcotest.test_case "insert_batch below the watermark is all-or-nothing"
      `Quick
      (fun () ->
        let log : (Set_spec.update, Set_spec.state) Oplog.t = Oplog.create () in
        let entry clock =
          { Oplog.ts = Timestamp.make ~clock ~pid:0;
            origin = 0;
            payload = Set_spec.Insert clock;
          }
        in
        ignore (Oplog.insert log (entry 5) : int);
        let _ = Oplog.compact log ~upto_clock:3 ~apply:Set_spec.apply Set_spec.initial in
        let before = Oplog.to_list log in
        Alcotest.check_raises "stale entry rejected"
          (Invalid_argument
             "Oplog.insert: timestamp at or below the stability watermark")
          (fun () -> ignore (Oplog.insert_batch log [ entry 9; entry 2 ] : int));
        Alcotest.(check bool) "log unchanged" true (Oplog.to_list log = before);
        Alcotest.(check int) "valid batch still lands" 1
          (Oplog.insert_batch log [ entry 9 ]));
    qtest ~count:200 "query cache folds only the unstable suffix" seed_gen
      (fun seed ->
        let rng = Prng.create seed in
        let n = 2 + Prng.int rng 80 in
        let log = Oplog.create ~query_cache:true () in
        for i = 1 to n do
          ignore
            (Oplog.insert log
               { Oplog.ts = Timestamp.make ~clock:(i * 2) ~pid:0;
                 origin = 0;
                 payload = Set_spec.random_update rng;
               })
        done;
        let expect () = fold_states (Oplog.to_list log) in
        let s1, steps1 =
          Oplog.replay log ~apply:Set_spec.apply ~initial:Set_spec.initial
        in
        let s2, steps2 =
          Oplog.replay log ~apply:Set_spec.apply ~initial:Set_spec.initial
        in
        (* Tail append leaves the cache valid; a late insert before it
           must invalidate. *)
        ignore
          (Oplog.insert log
             { Oplog.ts = Timestamp.make ~clock:((n + 1) * 2) ~pid:0;
               origin = 0;
               payload = Set_spec.random_update rng;
             });
        let s3, steps3 =
          Oplog.replay log ~apply:Set_spec.apply ~initial:Set_spec.initial
        in
        let e3 = expect () in
        ignore
          (Oplog.insert log
             { Oplog.ts = Timestamp.make ~clock:3 ~pid:1;
               origin = 1;
               payload = Set_spec.random_update rng;
             });
        let s4, steps4 =
          Oplog.replay log ~apply:Set_spec.apply ~initial:Set_spec.initial
        in
        steps1 = n && steps2 = 0 && steps3 = 1
        && steps4 = n + 2
        && Set_spec.equal_state s1 s2
        && Set_spec.equal_state s3 e3
        && Set_spec.equal_state s4 (expect ()));
  ]
