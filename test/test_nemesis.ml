(* Fault campaigns: crashes and healing partitions must never break
   convergence or wait-freedom for the update-consistent protocols —
   and the pipelined replica must visibly fail the same campaign. *)

let set_workload rng ~n ~ops =
  Workload.For_set.conflict ~rng ~n ~ops_per_process:ops ~domain:8 ~skew:1.0
    ~delete_ratio:0.35

let campaign_test name (module P : Protocol.PROTOCOL
                         with type update = Set_spec.update
                          and type query = Set_spec.query
                          and type output = Set_spec.output) ~fifo =
  Alcotest.test_case name `Slow (fun () ->
      let module N = Nemesis.Make (P) in
      let campaign = { N.default_campaign with N.fifo } in
      let v = N.run campaign ~workload:set_workload ~final_read:Set_spec.Read in
      Alcotest.(check bool) "faults were injected" true
        (v.N.crashes_injected > 0 && v.N.partitions_injected > 0);
      if not (N.clean v) then
        Alcotest.failf "%s: %d conv fails, %d stalls, %d cert splits (seeds %s)" name
          v.N.convergence_failures v.N.stalled_operations v.N.certificate_disagreements
          (String.concat "," (List.map string_of_int v.N.failing_seeds)))

let tests =
  [
    campaign_test "universal survives the nemesis" (module Generic.Make (Set_spec)) ~fifo:false;
    campaign_test "memo survives the nemesis" (module Memo.Make (Set_spec)) ~fifo:false;
    campaign_test "undo survives the nemesis" (module Undo.Make (Undoable.Set)) ~fifo:false;
    campaign_test "gc survives the nemesis (fifo)" (module Gc.Make (Set_spec)) ~fifo:true;
    campaign_test "or-set survives the nemesis" (module Orset_crdt) ~fifo:false;
    campaign_test "lww-set survives the nemesis" (module Lwwset_crdt) ~fifo:false;
    Alcotest.test_case "the pipelined replica fails the same campaign" `Slow (fun () ->
        let module N = Nemesis.Make (Pipelined.Make (Set_spec)) in
        let v = N.run N.default_campaign ~workload:set_workload ~final_read:Set_spec.Read in
        Alcotest.(check bool) "diverges somewhere" true (v.N.convergence_failures > 0));
    Alcotest.test_case "Algorithm 2 survives the nemesis" `Slow (fun () ->
        let module N = Nemesis.Make (Lww_memory) in
        let workload rng ~n ~ops =
          Workload.For_memory.random_writes ~rng ~n ~ops_per_process:ops ~registers:6
            ~read_ratio:0.3
        in
        let v = N.run N.default_campaign ~workload ~final_read:(Memory_spec.Read 0) in
        if not (N.clean v) then
          Alcotest.failf "lww-memory: %d conv fails, %d stalls" v.N.convergence_failures
            v.N.stalled_operations);
    Alcotest.test_case "crash budget is clamped to processes-1 and reported" `Quick
      (fun () ->
        (* The wait-free fault model keeps one survivor; a campaign
           asking for more crashes than processes allow must say so in
           the verdict rather than silently drawing from a smaller cap. *)
        let module N = Nemesis.Make (Generic.Make (Set_spec)) in
        let campaign =
          {
            N.default_campaign with
            N.runs = 8;
            processes = 2;
            ops_per_process = 6;
            max_crashes = 5;
            crash_probability = 1.0;
          }
        in
        let v = N.run campaign ~workload:set_workload ~final_read:Set_spec.Read in
        Alcotest.(check int) "cap = processes - 1" 1 v.N.crash_cap;
        Alcotest.(check int) "every crashing run was clamped" 8 v.N.capped_runs;
        Alcotest.(check int) "exactly one crash per run" 8 v.N.crashes_injected;
        Alcotest.(check bool) "still clean under the clamp" true (N.clean v));
    Alcotest.test_case "a feasible crash budget is never reported as capped" `Quick
      (fun () ->
        let module N = Nemesis.Make (Generic.Make (Set_spec)) in
        let campaign = { N.default_campaign with N.runs = 6; ops_per_process = 8 } in
        let v = N.run campaign ~workload:set_workload ~final_read:Set_spec.Read in
        Alcotest.(check int) "cap is the request" 2 v.N.crash_cap;
        Alcotest.(check int) "no run reported as capped" 0 v.N.capped_runs);
  ]
