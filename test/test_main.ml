let () =
  Alcotest.run "update_consistency"
    [
      ("util", Test_util.tests);
      ("specs", Test_specs.tests);
      ("clocks", Test_clocks.tests);
      ("history", Test_history.tests);
      ("checkers", Test_checkers.tests);
      ("sim", Test_sim.tests);
      ("obs", Test_obs.tests);
      ("journal", Test_journal.tests);
      ("monitor", Test_monitor.tests);
      ("protocols", Test_protocols.tests);
      ("crdts", Test_crdts.tests);
      ("abd", Test_abd.tests);
      ("tob-smr", Test_tob_smr.tests);
      ("causal-memory", Test_causal_mem.tests);
      ("nemesis", Test_nemesis.tests);
      ("bank", Test_bank.tests);
      ("undoable", Test_undoable.tests);
      ("experiments", Test_experiments.tests);
      ("universality", Test_universality.tests);
      ("trace", Test_trace.tests);
      ("linearizability", Test_linearizability.tests);
      ("codec", Test_codec.tests);
      ("workload", Test_workload.tests);
      ("parse", Test_parse.tests);
      ("persist", Test_persist.tests);
      ("oplog", Test_oplog.tests);
      ("internals", Test_internals.tests);
      ("clients", Test_clients.tests);
      ("differential", Test_differential.tests);
      ("figures", Test_figures.tests);
      ("universal-smoke", Test_universal_smoke.tests);
      ("model-check", Test_model_check.tests);
      ("explore", Test_explore.tests);
      ("qcheck-props", Test_qcheck_props.tests);
    ]
