(* Shared test plumbing. *)

let qtest ?(count = 200) name gen law =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen law)

let seed_gen = QCheck2.Gen.int_range 0 1_000_000
