(* Collaborative editing: the motivating workload of the intention-
   preservation literature the paper discusses (Sun et al.).

   Two writers type concurrently into a shared text buffer. Under the
   universal construction all replicas converge to the SAME document —
   the one produced by the agreed linearization of the edit operations —
   whereas naive apply-on-receive replicas end up with permanently
   different documents.

   Run with: dune exec examples/collaborative_editor.exe *)

module Doc = Generic.Make (Text_spec)
module Naive = Pipelined.Make (Text_spec)

let alice =
  List.mapi
    (fun i c -> Protocol.Invoke_update (Text_spec.Insert (i, c)))
    [ 'h'; 'e'; 'l'; 'l'; 'o' ]

let bob =
  List.mapi
    (fun i c -> Protocol.Invoke_update (Text_spec.Insert (i, c)))
    [ 'w'; 'o'; 'r'; 'l'; 'd' ]
  @ [ Protocol.Invoke_update (Text_spec.Delete 0) ]

let run_editor (type t m)
    (module P : Protocol.PROTOCOL
      with type update = Text_spec.update
       and type query = Text_spec.query
       and type output = Text_spec.output
       and type t = t
       and type message = m) =
  let module R = Runner.Make (P) in
  let config =
    {
      (R.default_config ~n:2 ~seed:3) with
      R.delay = Network.Uniform { lo = 5.0; hi = 40.0 };
      think = Network.Constant 1.0;
      final_read = Some Text_spec.Read;
    }
  in
  let r = R.run config ~workload:[| alice; bob |] in
  Format.printf "%s:@." P.protocol_name;
  List.iter
    (fun (pid, out) ->
      let name = if pid = 0 then "alice" else "bob  " in
      Format.printf "  %s sees %a@." name Text_spec.pp_output out)
    r.R.final_outputs;
  Format.printf "  converged: %b@.@." r.R.converged

let () =
  Format.printf "Two users type concurrently ('hello' vs 'world'+delete):@.@.";
  run_editor (module Doc);
  run_editor (module Naive);
  Format.printf
    "The universal construction linearizes the edits identically everywhere;@.";
  Format.printf "the naive replica applies them in arrival order and diverges.@."
