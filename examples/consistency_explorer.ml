(* Consistency explorer: build a distributed history by hand and ask the
   checkers which criteria it satisfies — the workflow of the paper's
   Figure 1, usable on your own examples.

   Run with: dune exec examples/consistency_explorer.exe *)

module C = Criteria.Make (Set_spec)

let classify name history =
  Format.printf "%s:@.%a" name
    (History.pp Set_spec.pp_update Set_spec.pp_query Set_spec.pp_output)
    history;
  List.iter
    (fun (c, ok) -> Format.printf "  %-5s %s@." (Criteria.name c) (if ok then "yes" else "no"))
    (C.classify history);
  (* When a history is update consistent, show the explaining
     linearization of its updates. *)
  let module Uc = Check_uc.Make (Set_spec) in
  (match Uc.witness history with
  | Some updates ->
    Format.printf "  update linearization: %a@."
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf " · ")
         Set_spec.pp_update)
      updates
  | None -> ());
  Format.printf "@."

let () =
  let open History in
  let set = Set_spec.of_list in
  (* A fresh example: one process inserts then reads stale, the other
     deletes concurrently; both settle on {2}. *)
  classify "stale read then settle"
    (make
       [
         [ U (Set_spec.Insert 1); Q (Set_spec.Read, set []); Qw (Set_spec.Read, set [ 2 ]) ];
         [ U (Set_spec.Insert 2); U (Set_spec.Delete 1); Qw (Set_spec.Read, set [ 2 ]) ];
       ]);
  (* The paper's Fig. 1b — convergent to {1,2}, yet no linearization of
     the four updates ends with both elements present. *)
  classify "Figure 1b (the OR-set outcome)" Figures.fig1b;
  (* Sequentially impossible output: not even eventually consistent. *)
  classify "diverging replicas"
    (make
       [
         [ U (Set_spec.Insert 1); Qw (Set_spec.Read, set [ 1 ]) ];
         [ U (Set_spec.Insert 2); Qw (Set_spec.Read, set [ 2 ]) ];
       ])
