(* A replicated bank account.

   Section VII.C of the paper notes that keeping the full update log is
   what banks do anyway — the account statement IS the log. Deposits and
   withdrawals commute, so the account balance is a CRDT and the cheap
   apply-on-receive fast path is already update consistent; the
   universal construction additionally hands us the agreed, totally
   ordered statement for auditing.

   Run with: dune exec examples/bank_ledger.exe *)

module Account = Generic.Make (Counter_spec)
module Fast = Commutative.Make (Counter_spec)
module R = Runner.Make (Account)
module RF = Runner.Make (Fast)

let branch_activity rng n ops =
  Workload.For_counter.deposits_and_withdrawals ~rng ~n ~ops_per_process:ops ~max_amount:250

let () =
  let rng = Prng.create 2024 in
  let workload = branch_activity rng 3 6 in
  let config =
    { (R.default_config ~n:3 ~seed:5) with R.final_read = Some Counter_spec.Value }
  in
  let r = R.run config ~workload in
  Format.printf "three bank branches post deposits/withdrawals concurrently@.@.";
  List.iter
    (fun (pid, balance) -> Format.printf "branch %d final balance: %d@." pid balance)
    r.R.final_outputs;
  Format.printf "balances agree: %b@.@." r.R.converged;
  (* The audit trail: every branch holds the same totally ordered
     statement. *)
  (match r.R.certificates with
  | (pid, statement) :: _ ->
    Format.printf "account statement (as agreed at branch %d):@." pid;
    let running = ref 0 in
    List.iteri
      (fun i (origin, Counter_spec.Add n) ->
        running := !running + n;
        Format.printf "  %2d. %s %4d  (branch %d)  balance %5d@." (i + 1)
          (if n >= 0 then "deposit " else "withdraw")
          (abs n) origin !running)
      statement
  | [] -> ());
  (* Same workload over the metadata-free fast path: identical balances,
     no log at all (and thus no statement) — the trade-off of VII.C. *)
  let rng = Prng.create 2024 in
  let workload = branch_activity rng 3 6 in
  let config =
    { (RF.default_config ~n:3 ~seed:5) with RF.final_read = Some Counter_spec.Value }
  in
  let rf = RF.run config ~workload in
  Format.printf "@.fast-path CRDT balances agree too: %b (log entries kept: %d)@."
    rf.RF.converged
    (List.fold_left (fun acc (_, l) -> acc + l) 0 rf.RF.log_lengths)
