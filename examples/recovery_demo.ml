(* Crash recovery from a durable log snapshot.

   Section VII.C defends the universal construction's space cost by
   noting the log is what systems persist anyway. This example closes
   the loop: a replica snapshots its log, "crashes", is rebuilt from the
   snapshot, replays the traffic it missed, and rejoins with the same
   agreed linearization as everyone else.

   Run with: dune exec examples/recovery_demo.exe *)

module Bank = Generic.Make (Bank_spec)
module Store = Persist.Make (Bank_spec) (Update_codec.For_bank)

(* Three replicas wired synchronously; deliveries to a "down" replica are
   held in its mailbox. *)
let n = 3

let replicas : Bank.t option array = Array.make n None

let down = Array.make n false

let mailbox : (int * Bank.message) Queue.t array = Array.init n (fun _ -> Queue.create ())

let ctx pid : Bank.message Protocol.ctx =
  {
    Protocol.pid;
    n;
    now = (fun () -> 0.0);
    send = (fun ~dst:_ _ -> ());
    broadcast =
      (fun msg ->
        Array.iteri
          (fun dst r ->
            if dst <> pid then begin
              if down.(dst) then Queue.add (pid, msg) mailbox.(dst)
              else match r with Some r -> Bank.receive r ~src:pid msg | None -> ()
            end)
          replicas);
    broadcast_batch =
      (fun msgs ->
        List.iter
          (fun msg ->
            Array.iteri
              (fun dst r ->
                if dst <> pid then begin
                  if down.(dst) then Queue.add (pid, msg) mailbox.(dst)
                  else
                    match r with Some r -> Bank.receive r ~src:pid msg | None -> ()
                end)
              replicas)
          msgs);
    set_timer = (fun ~delay:_ _ -> ());
    count_replay = (fun _ -> ());
    obs = None;
  }

let replica pid = Option.get replicas.(pid)

let balance pid =
  let out = ref 0 in
  Bank.query (replica pid) (Bank_spec.Balance 0) ~on_result:(fun v -> out := v);
  !out

let () =
  Array.iteri (fun pid _ -> replicas.(pid) <- Some (Bank.create (ctx pid))) replicas;
  (* Normal operation. *)
  Bank.update (replica 0) (Bank_spec.Deposit (0, 500)) ~on_done:ignore;
  Bank.update (replica 1) (Bank_spec.Withdraw (0, 120)) ~on_done:ignore;
  Format.printf "all replicas see balance %d / %d / %d@." (balance 0) (balance 1) (balance 2);

  (* Node 2 snapshots its log and crashes. *)
  let snapshot = Store.snapshot (replica 2) in
  down.(2) <- true;
  Format.printf "node 2 crashed; snapshot is %d bytes@." (String.length snapshot);

  (* The world moves on without it. *)
  Bank.update (replica 0) (Bank_spec.Deposit (0, 40)) ~on_done:ignore;
  Bank.update (replica 1) (Bank_spec.Transfer (0, 1, 100)) ~on_done:ignore;
  Format.printf "survivors see balance %d / %d (node 2 is dark)@." (balance 0) (balance 1);

  (* Recovery: rebuild node 2 from its snapshot, then drain the traffic
     it missed. *)
  replicas.(2) <- Some (Bank.create (ctx 2));
  Store.restore (replica 2) snapshot;
  down.(2) <- false;
  Format.printf "node 2 restored from snapshot: balance %d (pre-crash state)@." (balance 2);
  Queue.iter (fun (src, msg) -> Bank.receive (replica 2) ~src msg) mailbox.(2);
  Queue.clear mailbox.(2);
  Format.printf "after catching up: %d / %d / %d@." (balance 0) (balance 1) (balance 2);

  (* And it is a first-class participant again. *)
  Bank.update (replica 2) (Bank_spec.Deposit (0, 5)) ~on_done:ignore;
  Format.printf "node 2 writes again: %d / %d / %d@." (balance 0) (balance 1) (balance 2);
  let agreed =
    List.for_all (fun pid -> balance pid = balance 0) [ 1; 2 ]
  in
  Format.printf "linearizations agree: %b@." agreed
