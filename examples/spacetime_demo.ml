(* Space-time view of a run: watch Algorithm 1's messages cross while
   every operation completes locally.

   Run with: dune exec examples/spacetime_demo.exe *)

module P = Generic.Make (Set_spec)
module R = Runner.Make (P)

let () =
  let workload =
    [|
      [
        Protocol.Invoke_update (Set_spec.Insert 1);
        Protocol.Invoke_query Set_spec.Read;
        Protocol.Invoke_update (Set_spec.Delete 2);
      ];
      [
        Protocol.Invoke_update (Set_spec.Insert 2);
        Protocol.Invoke_query Set_spec.Read;
      ];
      [ Protocol.Invoke_update (Set_spec.Insert 3) ];
    |]
  in
  let config =
    {
      (R.default_config ~n:3 ~seed:21) with
      R.delay = Network.Uniform { lo = 3.0; hi = 12.0 };
      think = Network.Constant 2.0;
      crashes = [ (9.0, 2) ];
      final_read = Some Set_spec.Read;
      trace = true;
    }
  in
  let r = R.run config ~workload in
  (match r.R.trace with
  | Some tr -> print_string (Trace.render tr ~n:3)
  | None -> ());
  Format.printf "@.Every replica read %s at the end (converged: %b).@."
    (match r.R.final_outputs with
    | (_, o) :: _ -> Format.asprintf "%a" Set_spec.pp_output o
    | [] -> "nothing")
    r.R.converged
