(* Quickstart: a replicated set on three simulated nodes.

   Algorithm 1 (the universal construction) makes ANY update-query data
   type strong update consistent in a wait-free way: every replica
   answers immediately from local state, and once the network quiesces
   all replicas agree on a state explained by one linearization of the
   updates.

   Run with: dune exec examples/quickstart.exe *)

module Set_replica = Generic.Make (Set_spec)
module R = Runner.Make (Set_replica)

let () =
  (* Three processes race: p0 and p1 insert/delete the same elements,
     p2 inserts its own and crashes halfway through. *)
  let workload =
    [|
      [
        Protocol.Invoke_update (Set_spec.Insert 1);
        Protocol.Invoke_update (Set_spec.Delete 2);
        Protocol.Invoke_query Set_spec.Read;
      ];
      [
        Protocol.Invoke_update (Set_spec.Insert 2);
        Protocol.Invoke_update (Set_spec.Delete 1);
        Protocol.Invoke_query Set_spec.Read;
      ];
      [ Protocol.Invoke_update (Set_spec.Insert 3) ];
    |]
  in
  let config =
    {
      (R.default_config ~n:3 ~seed:7) with
      R.delay = Network.Uniform { lo = 1.0; hi = 20.0 };
      crashes = [ (6.0, 2) ];  (* p2 crashes; nobody waits for it *)
      final_read = Some Set_spec.Read;
    }
  in
  let r = R.run config ~workload in
  Format.printf "The recorded distributed history:@.%a@."
    (History.pp Set_spec.pp_update Set_spec.pp_query Set_spec.pp_output)
    r.R.history;
  List.iter
    (fun (pid, out) -> Format.printf "final read at p%d: %a@." pid Set_spec.pp_output out)
    r.R.final_outputs;
  Format.printf "replicas converged: %b@." r.R.converged;
  (* Every live replica holds the same update linearization — the
     "common sequential history" of the paper. *)
  (match r.R.certificates with
  | (pid, cert) :: _ ->
    Format.printf "agreed update order (from p%d): %a@." pid
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf " · ")
         (fun ppf (origin, u) -> Format.fprintf ppf "%a@@p%d" Set_spec.pp_update u origin))
      cert
  | [] -> ());
  Format.printf "certificates agree: %b@." r.R.certificates_agree;
  (* And the history itself satisfies the paper's criterion. *)
  let module C = Criteria.Make (Set_spec) in
  Format.printf "history is update consistent: %b@." (C.holds Criteria.UC r.R.history)
