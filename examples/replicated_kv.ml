(* A replicated key-value store on Algorithm 2 (the update-consistent
   shared memory): O(1) reads and writes, per-register last-writer-wins
   arbitration by (Lamport clock, pid), and availability through a
   network partition — writes taken on both sides merge deterministically
   when the partition heals.

   Run with: dune exec examples/replicated_kv.exe *)

module R = Runner.Make (Lww_memory)

let keys = [ ("user:42/name", 0); ("user:42/quota", 1); ("user:42/flags", 2) ]

let key_name x = fst (List.nth keys x)

let () =
  (* During [10, 120) node 0 is cut off from nodes 1 and 2; everyone
     keeps writing. *)
  let workload =
    [|
      [
        Protocol.Invoke_update (Memory_spec.Write (0, 100));
        Protocol.Invoke_update (Memory_spec.Write (1, 17));
        Protocol.Invoke_query (Memory_spec.Read 0);
      ];
      [
        Protocol.Invoke_update (Memory_spec.Write (0, 200));
        Protocol.Invoke_update (Memory_spec.Write (2, 5));
        Protocol.Invoke_query (Memory_spec.Read 2);
      ];
      [ Protocol.Invoke_update (Memory_spec.Write (1, 34)) ];
    |]
  in
  let config =
    {
      (R.default_config ~n:3 ~seed:11) with
      R.partitions = [ { Network.from_time = 10.0; to_time = 120.0; group = [ 0 ] } ];
      final_read = Some (Memory_spec.Read 0);
    }
  in
  let r = R.run config ~workload in
  Format.printf "writes placed on both sides of a partition, then it heals@.@.";
  Format.printf "operations completed: %d (stalled: %d — wait-free, so zero)@."
    r.R.metrics.Metrics.ops_completed r.R.metrics.Metrics.ops_incomplete;
  List.iter
    (fun (pid, v) -> Format.printf "node %d reads %s = %d@." pid (key_name 0) v)
    r.R.final_outputs;
  Format.printf "all nodes agree on %s: %b@." (key_name 0) r.R.converged;
  Format.printf "bytes on the wire: %d (constant-size messages)@."
    r.R.metrics.Metrics.bytes_sent;
  (* The extracted history satisfies update consistency. *)
  let module C = Criteria.Make (Memory_spec) in
  Format.printf "history is update consistent: %b@." (C.holds Criteria.UC r.R.history)
