type state = bool
type update = Enable | Disable
type query = Read
type output = bool

let name = "flag"

let initial = false

let apply _ = function Enable -> true | Disable -> false

let eval s Read = s

let equal_state = Bool.equal

let equal_update a b =
  match (a, b) with
  | Enable, Enable | Disable, Disable -> true
  | Enable, Disable | Disable, Enable -> false

let equal_query Read Read = true

let equal_output = Bool.equal

let pp_state = Format.pp_print_bool

let pp_update ppf = function
  | Enable -> Format.fprintf ppf "on"
  | Disable -> Format.fprintf ppf "off"

let pp_query ppf Read = Format.fprintf ppf "r"

let pp_output = Format.pp_print_bool

let update_wire_size _ = 1

let commutative = false

let satisfiable pairs = Support.all_outputs_equal equal_output pairs

let random_update rng = if Prng.bool rng then Enable else Disable

let random_query _rng = Read
