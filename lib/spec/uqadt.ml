module type S = sig
  type state
  type update
  type query
  type output

  val name : string
  val initial : state
  val apply : state -> update -> state
  val eval : state -> query -> output
  val equal_state : state -> state -> bool
  val equal_update : update -> update -> bool
  val equal_query : query -> query -> bool
  val equal_output : output -> output -> bool
  val pp_state : Format.formatter -> state -> unit
  val pp_update : Format.formatter -> update -> unit
  val pp_query : Format.formatter -> query -> unit
  val pp_output : Format.formatter -> output -> unit
  val update_wire_size : update -> int
  val commutative : bool
  val satisfiable : (query * output) list -> bool
  val random_update : Prng.t -> update
  val random_query : Prng.t -> query
end

type ('u, 'q, 'o) operation = Update of 'u | Query of 'q * 'o

let pp_operation pp_u pp_q pp_o ppf = function
  | Update u -> pp_u ppf u
  | Query (q, o) -> Format.fprintf ppf "%a/%a" pp_q q pp_o o

module Run (A : S) = struct
  let exec_updates s updates = List.fold_left A.apply s updates

  let final_state updates = exec_updates A.initial updates

  let step s = function
    | Update u -> Some (A.apply s u)
    | Query (qi, qo) -> if A.equal_output (A.eval s qi) qo then Some s else None

  let recognizes word =
    let rec go s = function
      | [] -> true
      | op :: rest -> ( match step s op with None -> false | Some s' -> go s' rest)
    in
    go A.initial word

  let pp_word ppf word =
    Format.pp_print_list
      ~pp_sep:(fun ppf () -> Format.fprintf ppf "·")
      (pp_operation A.pp_update A.pp_query A.pp_output)
      ppf word
end

type packed = (module S)
