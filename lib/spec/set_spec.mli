(** The replicated set [S_Val] (Example 1 of the paper) over support
    [int]: updates insert [I(v)] and delete [D(v)], a single query [R]
    returning the whole content. This is the paper's running example and
    the object of the Section VI case study. *)

type state = Support.Int_set.t
type update = Insert of int | Delete of int
type query = Read
type output = Support.Int_set.t

include
  Uqadt.S
    with type state := state
     and type update := update
     and type query := query
     and type output := output

val of_list : int list -> state
