(** Shared value domains and printers for the ADT instances.

    All instances use [int] as their element support [Val]; the paper's
    definitions are parametric in the support and nothing in the
    experiments depends on richer values. *)

module Int_set : Set.S with type elt = int
module Int_map : Map.S with type key = int

val pp_int_set : Format.formatter -> Int_set.t -> unit
(** Prints as [{1, 2, 3}]. *)

val pp_int_list : Format.formatter -> int list -> unit
(** Prints as [[1; 2; 3]]. *)

val pp_int_option : Format.formatter -> int option -> unit

val all_outputs_equal : ('o -> 'o -> bool) -> ('q * 'o) list -> bool
(** Generic {!Uqadt.S.satisfiable} for single-query full-state ADTs: a
    state exists iff all recorded outputs coincide. *)

val keyed_outputs_consistent :
  ('q -> 'q -> bool) -> ('o -> 'o -> bool) -> ('q * 'o) list -> bool
(** {!Uqadt.S.satisfiable} for keyed reads (e.g. [read x]): a state
    exists iff any two queries with equal keys have equal outputs. *)
