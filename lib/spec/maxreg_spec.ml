type state = int
type update = Propose of int
type query = Read
type output = int

let name = "maxreg"

let initial = 0

let apply s (Propose v) = max s v

let eval s Read = s

let equal_state = Int.equal

let equal_update (Propose x) (Propose y) = x = y

let equal_query Read Read = true

let equal_output = Int.equal

let pp_state = Format.pp_print_int

let pp_update ppf (Propose v) = Format.fprintf ppf "p(%d)" v

let pp_query ppf Read = Format.fprintf ppf "r"

let pp_output = Format.pp_print_int

let update_wire_size (Propose v) = 1 + Wire.varint_size (abs v)

let commutative = true

let satisfiable pairs = Support.all_outputs_equal equal_output pairs

let random_update rng = Propose (Prng.int rng 16)

let random_query _rng = Read
