type state = Support.Int_set.t
type update = Insert of int
type query = Read
type output = Support.Int_set.t

let name = "gset"

let initial = Support.Int_set.empty

let apply s (Insert v) = Support.Int_set.add v s

let eval s Read = s

let equal_state = Support.Int_set.equal

let equal_update (Insert x) (Insert y) = x = y

let equal_query Read Read = true

let equal_output = Support.Int_set.equal

let pp_state = Support.pp_int_set

let pp_update ppf (Insert v) = Format.fprintf ppf "I(%d)" v

let pp_query ppf Read = Format.fprintf ppf "R"

let pp_output = Support.pp_int_set

let update_wire_size (Insert v) = 1 + Wire.varint_size (abs v)

let commutative = true

let satisfiable pairs = Support.all_outputs_equal equal_output pairs

let random_update rng = Insert (Prng.int rng 8)

let random_query _rng = Read
