type state = Support.Int_set.t
type update = Insert of int | Delete of int
type query = Read
type output = Support.Int_set.t

let name = "set"

let initial = Support.Int_set.empty

let apply s = function
  | Insert v -> Support.Int_set.add v s
  | Delete v -> Support.Int_set.remove v s

let eval s Read = s

let equal_state = Support.Int_set.equal

let equal_update a b =
  match (a, b) with
  | Insert x, Insert y | Delete x, Delete y -> x = y
  | Insert _, Delete _ | Delete _, Insert _ -> false

let equal_query Read Read = true

let equal_output = Support.Int_set.equal

let pp_state = Support.pp_int_set

let pp_update ppf = function
  | Insert v -> Format.fprintf ppf "I(%d)" v
  | Delete v -> Format.fprintf ppf "D(%d)" v

let pp_query ppf Read = Format.fprintf ppf "R"

let pp_output = Support.pp_int_set

let update_wire_size = function
  | Insert v | Delete v -> 1 + Wire.varint_size (abs v)

let commutative = false

let satisfiable pairs = Support.all_outputs_equal equal_output pairs

let random_update rng =
  let v = Prng.int rng 8 in
  if Prng.bool rng then Insert v else Delete v

let random_query _rng = Read

let of_list = Support.Int_set.of_list
