module type SPEC = sig
  include Uqadt.S

  module Codec : Update_codec.S with type update = update
end

let spec (type u) (module A : Uqadt.S with type update = u)
    (module C : Update_codec.S with type update = u) : (module SPEC) =
  (module struct
    include A
    module Codec = C
  end)

let all_specs : (string * (module SPEC)) list =
  [
    ("set", spec (module Set_spec) (module Update_codec.For_set));
    ("gset", spec (module Gset_spec) (module Update_codec.For_gset));
    ("counter", spec (module Counter_spec) (module Update_codec.For_counter));
    ("register", spec (module Register_spec) (module Update_codec.For_register));
    ("memory", spec (module Memory_spec) (module Update_codec.For_memory));
    ("maxreg", spec (module Maxreg_spec) (module Update_codec.For_maxreg));
    ("flag", spec (module Flag_spec) (module Update_codec.For_flag));
    ("log", spec (module Log_spec) (module Update_codec.For_log));
    ("queue", spec (module Queue_spec) (module Update_codec.For_queue));
    ("stack", spec (module Stack_spec) (module Update_codec.For_stack));
    ("map", spec (module Map_spec) (module Update_codec.For_map));
    ("text", spec (module Text_spec) (module Update_codec.For_text));
    ("bank", spec (module Bank_spec) (module Update_codec.For_bank));
    ("pqueue", spec (module Pqueue_spec) (module Update_codec.For_pqueue));
  ]

let all : (string * Uqadt.packed) list =
  List.map
    (fun (name, s) ->
      let module S = (val s : SPEC) in
      (name, (module S : Uqadt.S)))
    all_specs

let find name = List.assoc_opt name all

let find_spec name = List.assoc_opt name all_specs

let names = List.map fst all
