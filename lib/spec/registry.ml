let all : (string * Uqadt.packed) list =
  [
    ("set", (module Set_spec));
    ("gset", (module Gset_spec));
    ("counter", (module Counter_spec));
    ("register", (module Register_spec));
    ("memory", (module Memory_spec));
    ("maxreg", (module Maxreg_spec));
    ("flag", (module Flag_spec));
    ("log", (module Log_spec));
    ("queue", (module Queue_spec));
    ("stack", (module Stack_spec));
    ("map", (module Map_spec));
    ("text", (module Text_spec));
    ("bank", (module Bank_spec));
    ("pqueue", (module Pqueue_spec));
  ]

let find name = List.assoc_opt name all

let names = List.map fst all
