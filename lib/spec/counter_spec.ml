type state = int
type update = Add of int
type query = Value
type output = int

let name = "counter"

let initial = 0

let apply s (Add n) = s + n

let eval s Value = s

let equal_state = Int.equal

let equal_update (Add x) (Add y) = x = y

let equal_query Value Value = true

let equal_output = Int.equal

let pp_state = Format.pp_print_int

let pp_update ppf (Add n) =
  if n >= 0 then Format.fprintf ppf "inc(%d)" n else Format.fprintf ppf "dec(%d)" (-n)

let pp_query ppf Value = Format.fprintf ppf "V"

let pp_output = Format.pp_print_int

let update_wire_size (Add n) = 1 + Wire.varint_size (abs n)

let commutative = true

let satisfiable pairs = Support.all_outputs_equal equal_output pairs

let random_update rng = Add (Prng.int_in rng (-3) 3)

let random_query _rng = Value
