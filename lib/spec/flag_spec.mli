(** A boolean flag with [enable]/[disable] updates and a [read] query.
    The minimal object on which enable-wins vs disable-wins concurrent
    semantics differ; under update consistency the winner is simply the
    last update in the common linearization. *)

type state = bool
type update = Enable | Disable
type query = Read
type output = bool

include
  Uqadt.S
    with type state := state
     and type update := update
     and type query := query
     and type output := output
