(** The shared memory object of Algorithm 2: a set [X] of integer-named
    registers holding integer values. [write (x, v)] updates register
    [x]; [read x] returns its current value, or the initial value 0 if
    never written. *)

type state = int Support.Int_map.t
type update = Write of int * int
type query = Read of int
type output = int

include
  Uqadt.S
    with type state := state
     and type update := update
     and type query := query
     and type output := output

val initial_value : int
(** The value returned for a never-written register (0). *)

val lookup : state -> int -> int
