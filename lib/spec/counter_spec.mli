(** A shared counter: increment/decrement by an amount, read the value.
    Addition commutes, so the counter is a CRDT (the paper's other
    Section VII.C example). *)

type state = int
type update = Add of int
type query = Value
type output = int

include
  Uqadt.S
    with type state := state
     and type update := update
     and type query := query
     and type output := output
