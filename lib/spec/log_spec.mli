(** An append-only log: [append v] pushes at the tail, [read] returns the
    whole sequence. Appends do not commute (the order is observable), so
    this is the simplest object where update consistency visibly picks
    one linearization. *)

type state = int list
type update = Append of int
type query = Read
type output = int list

include
  Uqadt.S
    with type state := state
     and type update := update
     and type query := query
     and type output := output
