type state = int
type update = Write of int
type query = Read
type output = int

let name = "register"

let initial = 0

let apply _ (Write v) = v

let eval s Read = s

let equal_state = Int.equal

let equal_update (Write x) (Write y) = x = y

let equal_query Read Read = true

let equal_output = Int.equal

let pp_state = Format.pp_print_int

let pp_update ppf (Write v) = Format.fprintf ppf "w(%d)" v

let pp_query ppf Read = Format.fprintf ppf "r"

let pp_output = Format.pp_print_int

let update_wire_size (Write v) = 1 + Wire.varint_size (abs v)

let commutative = false

let satisfiable pairs = Support.all_outputs_equal equal_output pairs

let random_update rng = Write (Prng.int rng 8)

let random_query _rng = Read
