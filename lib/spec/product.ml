module Make (A : Uqadt.S) (B : Uqadt.S) = struct
  type state = A.state * B.state
  type update = (A.update, B.update) Either.t
  type query = (A.query, B.query) Either.t
  type output = (A.output, B.output) Either.t

  let name = A.name ^ "*" ^ B.name

  let initial = (A.initial, B.initial)

  let apply (sa, sb) = function
    | Either.Left u -> (A.apply sa u, sb)
    | Either.Right u -> (sa, B.apply sb u)

  let eval (sa, sb) = function
    | Either.Left q -> Either.Left (A.eval sa q)
    | Either.Right q -> Either.Right (B.eval sb q)

  let equal_state (sa, sb) (sa', sb') = A.equal_state sa sa' && B.equal_state sb sb'

  let equal_either eq_a eq_b x y =
    match (x, y) with
    | Either.Left a, Either.Left a' -> eq_a a a'
    | Either.Right b, Either.Right b' -> eq_b b b'
    | Either.Left _, Either.Right _ | Either.Right _, Either.Left _ -> false

  let equal_update = equal_either A.equal_update B.equal_update

  let equal_query = equal_either A.equal_query B.equal_query

  let equal_output = equal_either A.equal_output B.equal_output

  let pp_either pp_a pp_b ppf = function
    | Either.Left a -> Format.fprintf ppf "L.%a" pp_a a
    | Either.Right b -> Format.fprintf ppf "R.%a" pp_b b

  let pp_state ppf (sa, sb) =
    Format.fprintf ppf "(%a, %a)" A.pp_state sa B.pp_state sb

  let pp_update = pp_either A.pp_update B.pp_update

  let pp_query = pp_either A.pp_query B.pp_query

  let pp_output = pp_either A.pp_output B.pp_output

  let update_wire_size = function
    | Either.Left u -> 1 + A.update_wire_size u
    | Either.Right u -> 1 + B.update_wire_size u

  let commutative = A.commutative && B.commutative

  (* A joint state exists iff one exists per component: the components
     are independent. *)
  let satisfiable pairs =
    let lefts =
      List.filter_map
        (function
          | Either.Left q, Either.Left o -> Some (q, o)
          | (Either.Left _ | Either.Right _), _ -> None)
        pairs
    and rights =
      List.filter_map
        (function
          | Either.Right q, Either.Right o -> Some (q, o)
          | (Either.Left _ | Either.Right _), _ -> None)
        pairs
    and well_formed =
      List.for_all
        (function
          | Either.Left _, Either.Left _ | Either.Right _, Either.Right _ -> true
          | Either.Left _, Either.Right _ | Either.Right _, Either.Left _ -> false)
        pairs
    in
    well_formed && A.satisfiable lefts && B.satisfiable rights

  let random_update rng =
    if Prng.bool rng then Either.Left (A.random_update rng)
    else Either.Right (B.random_update rng)

  let random_query rng =
    if Prng.bool rng then Either.Left (A.random_query rng)
    else Either.Right (B.random_query rng)
end
