type state = int Support.Int_map.t
type update = Write of int * int
type query = Read of int
type output = int

let name = "memory"

let initial_value = 0

let initial = Support.Int_map.empty

let lookup s x =
  match Support.Int_map.find_opt x s with Some v -> v | None -> initial_value

let apply s (Write (x, v)) = Support.Int_map.add x v s

let eval s (Read x) = lookup s x

let equal_state = Support.Int_map.equal Int.equal

let equal_update (Write (x, v)) (Write (x', v')) = x = x' && v = v'

let equal_query (Read x) (Read x') = x = x'

let equal_output = Int.equal

let pp_state ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf (x, v) -> Format.fprintf ppf "%d↦%d" x v))
    (Support.Int_map.bindings s)

let pp_update ppf (Write (x, v)) = Format.fprintf ppf "w(%d,%d)" x v

let pp_query ppf (Read x) = Format.fprintf ppf "r(%d)" x

let pp_output = Format.pp_print_int

let update_wire_size (Write (x, v)) = 1 + Wire.pair_size (abs x) (abs v)

let commutative = false

let satisfiable pairs = Support.keyed_outputs_consistent equal_query equal_output pairs

let random_update rng = Write (Prng.int rng 4, Prng.int rng 8)

let random_query rng = Read (Prng.int rng 4)
