(** Product of two UQ-ADTs: states are pairs, every operation targets one
    component. Shows the framework is compositional — a program can share
    one update-consistent object combining, say, a set and a counter, and
    all criteria/checkers/protocols apply unchanged. *)

module Make (A : Uqadt.S) (B : Uqadt.S) :
  Uqadt.S
    with type state = A.state * B.state
     and type update = (A.update, B.update) Either.t
     and type query = (A.query, B.query) Either.t
     and type output = (A.output, B.output) Either.t
