(** A key-value dictionary: [put (k, v)], [del k] updates; [get k] query
    returning the bound value (if any) and [size] returning the number of
    bindings. The classic Wuu-Bernstein "dictionary" object cited by the
    paper. *)

type state = int Support.Int_map.t
type update = Put of int * int | Del of int
type query = Get of int | Size
type output = Found of int option | Count of int

include
  Uqadt.S
    with type state := state
     and type update := update
     and type query := query
     and type output := output
