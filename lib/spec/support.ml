module Int_set = Set.Make (Int)
module Int_map = Map.Make (Int)

let pp_int_set ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       Format.pp_print_int)
    (Int_set.elements s)

let pp_int_list ppf l =
  Format.fprintf ppf "[%a]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       Format.pp_print_int)
    l

let pp_int_option ppf = function
  | None -> Format.fprintf ppf "⊥"
  | Some v -> Format.pp_print_int ppf v

let all_outputs_equal equal_output = function
  | [] -> true
  | (_, o0) :: rest -> List.for_all (fun (_, o) -> equal_output o0 o) rest

let keyed_outputs_consistent equal_query equal_output pairs =
  let rec consistent = function
    | [] -> true
    | (q, o) :: rest ->
      List.for_all (fun (q', o') -> (not (equal_query q q')) || equal_output o o') rest
      && consistent rest
  in
  consistent pairs
