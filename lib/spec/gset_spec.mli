(** The grow-only set (G-Set): insert-only, hence all updates commute and
    the type is a pure CRDT — the paper's Section VII.C example of an
    object whose naive apply-on-receive implementation is already update
    consistent. *)

type state = Support.Int_set.t
type update = Insert of int
type query = Read
type output = Support.Int_set.t

include
  Uqadt.S
    with type state := state
     and type update := update
     and type query := query
     and type output := output
