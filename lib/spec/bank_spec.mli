(** A bank: accounts with overdraft protection.

    [Deposit] always applies; [Withdraw] and [Transfer] silently do
    nothing when the source balance is insufficient, so every reachable
    state keeps all balances non-negative {e in whichever order the
    updates are linearized}. This is the kind of state-conditional
    semantics that has no commutative (CRDT) formulation — a PN-counter
    balance can go negative under concurrency — and therefore the
    motivating case for the universal construction: update consistency
    applies the guard in one agreed order, preserving the invariant on
    every replica. *)

type state = int Support.Int_map.t
(** account → balance; absent accounts hold 0. *)

type update =
  | Deposit of int * int  (** account, amount > 0 *)
  | Withdraw of int * int
  | Transfer of int * int * int  (** from, to, amount *)

type query = Balance of int | Total

type output = int

include
  Uqadt.S
    with type state := state
     and type update := update
     and type query := query
     and type output := output

val balance : state -> int -> int
