type state = int list (* front at the head *)
type update = Enqueue of int | Dequeue
type query = Front | Contents
type output = Head of int option | All of int list

let name = "queue"

let initial = []

let apply s = function
  | Enqueue v -> s @ [ v ]
  | Dequeue -> ( match s with [] -> [] | _ :: rest -> rest)

let eval s = function
  | Front -> Head (match s with [] -> None | v :: _ -> Some v)
  | Contents -> All s

let equal_state a b = a = b

let equal_update a b =
  match (a, b) with
  | Enqueue x, Enqueue y -> x = y
  | Dequeue, Dequeue -> true
  | Enqueue _, Dequeue | Dequeue, Enqueue _ -> false

let equal_query a b =
  match (a, b) with
  | Front, Front | Contents, Contents -> true
  | Front, Contents | Contents, Front -> false

let equal_output a b =
  match (a, b) with
  | Head x, Head y -> x = y
  | All x, All y -> x = y
  | Head _, All _ | All _, Head _ -> false

let pp_state = Support.pp_int_list

let pp_update ppf = function
  | Enqueue v -> Format.fprintf ppf "enq(%d)" v
  | Dequeue -> Format.fprintf ppf "deq"

let pp_query ppf = function
  | Front -> Format.fprintf ppf "front"
  | Contents -> Format.fprintf ppf "all"

let pp_output ppf = function
  | Head h -> Support.pp_int_option ppf h
  | All l -> Support.pp_int_list ppf l

let update_wire_size = function
  | Enqueue v -> 1 + Wire.varint_size (abs v)
  | Dequeue -> 1

let commutative = false

let satisfiable pairs = Support.keyed_outputs_consistent equal_query equal_output pairs

let random_update rng = if Prng.int rng 3 = 0 then Dequeue else Enqueue (Prng.int rng 8)

let random_query rng = if Prng.bool rng then Front else Contents
