type state = int list (* top at the head *)
type update = Push of int | Pop
type query = Top | Contents
type output = Peek of int option | All of int list

let name = "stack"

let initial = []

let apply s = function
  | Push v -> v :: s
  | Pop -> ( match s with [] -> [] | _ :: rest -> rest)

let eval s = function
  | Top -> Peek (match s with [] -> None | v :: _ -> Some v)
  | Contents -> All s

let equal_state a b = a = b

let equal_update a b =
  match (a, b) with
  | Push x, Push y -> x = y
  | Pop, Pop -> true
  | Push _, Pop | Pop, Push _ -> false

let equal_query a b =
  match (a, b) with
  | Top, Top | Contents, Contents -> true
  | Top, Contents | Contents, Top -> false

let equal_output a b =
  match (a, b) with
  | Peek x, Peek y -> x = y
  | All x, All y -> x = y
  | Peek _, All _ | All _, Peek _ -> false

let pp_state = Support.pp_int_list

let pp_update ppf = function
  | Push v -> Format.fprintf ppf "push(%d)" v
  | Pop -> Format.fprintf ppf "pop"

let pp_query ppf = function
  | Top -> Format.fprintf ppf "top"
  | Contents -> Format.fprintf ppf "all"

let pp_output ppf = function
  | Peek h -> Support.pp_int_option ppf h
  | All l -> Support.pp_int_list ppf l

let update_wire_size = function
  | Push v -> 1 + Wire.varint_size (abs v)
  | Pop -> 1

let commutative = false

let satisfiable pairs = Support.keyed_outputs_consistent equal_query equal_output pairs

let random_update rng = if Prng.int rng 3 = 0 then Pop else Push (Prng.int rng 8)

let random_query rng = if Prng.bool rng then Top else Contents
