type state = int list (* reversed: head is the most recent append *)
type update = Append of int
type query = Read
type output = int list

let name = "log"

let initial = []

let apply s (Append v) = v :: s

let eval s Read = List.rev s

let equal_state a b = a = b

let equal_update (Append x) (Append y) = x = y

let equal_query Read Read = true

let equal_output a b = a = b

let pp_state ppf s = Support.pp_int_list ppf (List.rev s)

let pp_update ppf (Append v) = Format.fprintf ppf "app(%d)" v

let pp_query ppf Read = Format.fprintf ppf "r"

let pp_output = Support.pp_int_list

let update_wire_size (Append v) = 1 + Wire.varint_size (abs v)

let commutative = false

let satisfiable pairs = Support.all_outputs_equal equal_output pairs

let random_update rng = Append (Prng.int rng 8)

let random_query _rng = Read
