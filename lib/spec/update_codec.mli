(** Concrete wire codecs for every ADT's update type.

    An update is framed as one tag byte (operation constructor plus the
    sign bits of its integer arguments) followed by LEB128 varints of
    the magnitudes — designed so the encoded length equals the ADT's
    [update_wire_size] exactly, which the property tests assert. These
    are the payloads Algorithm 1's broadcast carries; Section VII.C's
    "grows logarithmically with … the number of operations" is the
    varint width of the Lamport clock in {!Timestamp}, measured here for
    real rather than estimated.

    Decoders reject malformed frames with {!Codec.Decode_error}. *)

module type S = sig
  type update

  val encode : Codec.Writer.t -> update -> unit

  val decode : Codec.Reader.t -> update

  val to_string : update -> string
  (** One complete frame. *)

  val of_string : string -> update
  (** @raise Codec.Decode_error on malformed or trailing input. *)
end

module For_set : S with type update = Set_spec.update
module For_gset : S with type update = Gset_spec.update
module For_counter : S with type update = Counter_spec.update
module For_register : S with type update = Register_spec.update
module For_memory : S with type update = Memory_spec.update
module For_maxreg : S with type update = Maxreg_spec.update
module For_flag : S with type update = Flag_spec.update
module For_log : S with type update = Log_spec.update
module For_queue : S with type update = Queue_spec.update
module For_stack : S with type update = Stack_spec.update
module For_map : S with type update = Map_spec.update
module For_text : S with type update = Text_spec.update
module For_bank : S with type update = Bank_spec.update
module For_pqueue : S with type update = Pqueue_spec.update
