(** A max-register: [propose v] raises the state to [max state v]; [read]
    returns the maximum proposed so far. Updates commute and are
    idempotent, so the reachable states form a join semi-lattice — the
    other CRDT sufficient condition cited by the paper (Section I). *)

type state = int
type update = Propose of int
type query = Read
type output = int

include
  Uqadt.S
    with type state := state
     and type update := update
     and type query := query
     and type output := output
