type state = int Support.Int_map.t

type update = Deposit of int * int | Withdraw of int * int | Transfer of int * int * int

type query = Balance of int | Total

type output = int

let name = "bank"

let initial = Support.Int_map.empty

let balance s a = Option.value ~default:0 (Support.Int_map.find_opt a s)

let credit s a amount = Support.Int_map.add a (balance s a + amount) s

let apply s = function
  | Deposit (a, amount) -> credit s a amount
  | Withdraw (a, amount) -> if balance s a >= amount then credit s a (-amount) else s
  | Transfer (src, dst, amount) ->
    if src <> dst && balance s src >= amount then credit (credit s src (-amount)) dst amount
    else s

let eval s = function
  | Balance a -> balance s a
  | Total -> Support.Int_map.fold (fun _ b acc -> acc + b) s 0

let equal_state = Support.Int_map.equal Int.equal

let equal_update a b =
  match (a, b) with
  | Deposit (x, n), Deposit (x', n') | Withdraw (x, n), Withdraw (x', n') ->
    x = x' && n = n'
  | Transfer (x, y, n), Transfer (x', y', n') -> x = x' && y = y' && n = n'
  | (Deposit _ | Withdraw _ | Transfer _), _ -> false

let equal_query a b =
  match (a, b) with
  | Balance x, Balance x' -> x = x'
  | Total, Total -> true
  | (Balance _ | Total), _ -> false

let equal_output = Int.equal

let pp_state ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf (a, b) -> Format.fprintf ppf "a%d:%d" a b))
    (Support.Int_map.bindings s)

let pp_update ppf = function
  | Deposit (a, n) -> Format.fprintf ppf "dep(a%d,%d)" a n
  | Withdraw (a, n) -> Format.fprintf ppf "wdr(a%d,%d)" a n
  | Transfer (x, y, n) -> Format.fprintf ppf "xfer(a%d→a%d,%d)" x y n

let pp_query ppf = function
  | Balance a -> Format.fprintf ppf "bal(a%d)" a
  | Total -> Format.fprintf ppf "total"

let pp_output = Format.pp_print_int

let update_wire_size = function
  | Deposit (a, n) | Withdraw (a, n) -> 1 + Wire.pair_size (abs a) (abs n)
  | Transfer (x, y, n) -> 1 + Wire.pair_size (abs x) (abs y) + Wire.varint_size (abs n)

let commutative = false

(* A witness state exists iff per-account balances are consistent and
   non-negative, and any requested total can cover the named accounts
   (unnamed accounts can absorb the remainder, but never negatively). *)
let satisfiable pairs =
  let balances = Hashtbl.create 8 in
  let totals = ref [] in
  let consistent = ref true in
  List.iter
    (fun (q, o) ->
      match q with
      | Balance a -> (
        if o < 0 then consistent := false;
        match Hashtbl.find_opt balances a with
        | Some o' when o' <> o -> consistent := false
        | Some _ -> ()
        | None -> Hashtbl.add balances a o)
      | Total ->
        if o < 0 then consistent := false;
        totals := o :: !totals)
    pairs;
  let named_sum = Hashtbl.fold (fun _ b acc -> acc + b) balances 0 in
  !consistent
  &&
  match List.sort_uniq Int.compare !totals with
  | [] -> true
  | [ t ] -> t >= named_sum
  | _ :: _ :: _ -> false

let random_update rng =
  let account () = Prng.int rng 3 in
  let amount () = 1 + Prng.int rng 20 in
  match Prng.int rng 3 with
  | 0 -> Deposit (account (), amount ())
  | 1 -> Withdraw (account (), amount ())
  | _ -> Transfer (account (), account (), amount ())

let random_query rng = if Prng.int rng 4 = 0 then Total else Balance (Prng.int rng 3)
