type state = int Support.Int_map.t
type update = Put of int * int | Del of int
type query = Get of int | Size
type output = Found of int option | Count of int

let name = "map"

let initial = Support.Int_map.empty

let apply s = function
  | Put (k, v) -> Support.Int_map.add k v s
  | Del k -> Support.Int_map.remove k s

let eval s = function
  | Get k -> Found (Support.Int_map.find_opt k s)
  | Size -> Count (Support.Int_map.cardinal s)

let equal_state = Support.Int_map.equal Int.equal

let equal_update a b =
  match (a, b) with
  | Put (k, v), Put (k', v') -> k = k' && v = v'
  | Del k, Del k' -> k = k'
  | Put _, Del _ | Del _, Put _ -> false

let equal_query a b =
  match (a, b) with
  | Get k, Get k' -> k = k'
  | Size, Size -> true
  | Get _, Size | Size, Get _ -> false

let equal_output a b =
  match (a, b) with
  | Found x, Found y -> x = y
  | Count x, Count y -> x = y
  | Found _, Count _ | Count _, Found _ -> false

let pp_state ppf s =
  Format.fprintf ppf "{%a}"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf (k, v) -> Format.fprintf ppf "%d↦%d" k v))
    (Support.Int_map.bindings s)

let pp_update ppf = function
  | Put (k, v) -> Format.fprintf ppf "put(%d,%d)" k v
  | Del k -> Format.fprintf ppf "del(%d)" k

let pp_query ppf = function
  | Get k -> Format.fprintf ppf "get(%d)" k
  | Size -> Format.fprintf ppf "size"

let pp_output ppf = function
  | Found v -> Support.pp_int_option ppf v
  | Count n -> Format.pp_print_int ppf n

let update_wire_size = function
  | Put (k, v) -> 1 + Wire.pair_size (abs k) (abs v)
  | Del k -> 1 + Wire.varint_size (abs k)

let commutative = false

let satisfiable pairs = Support.keyed_outputs_consistent equal_query equal_output pairs

let random_update rng =
  if Prng.int rng 3 = 0 then Del (Prng.int rng 4)
  else Put (Prng.int rng 4, Prng.int rng 8)

let random_query rng = if Prng.int rng 4 = 0 then Size else Get (Prng.int rng 4)
