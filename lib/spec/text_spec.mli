(** A collaborative text buffer, the motivating application of the
    intention-preservation literature the paper discusses ([10], [11]):
    [insert (pos, c)] inserts character [c] at position [pos] (clamped to
    the buffer bounds, so the type remains total), [delete pos] removes
    the character there (no-op out of bounds), [read] returns the
    document. *)

type state = string
type update = Insert of int * char | Delete of int
type query = Read | Length
type output = Text of string | Len of int

include
  Uqadt.S
    with type state := state
     and type update := update
     and type query := query
     and type output := output
