(** A stack with the pop split into the paper's "lookup top" query and
    "delete top" update (Section I discusses exactly this decomposition):
    [push v] and [pop] (no-op on empty) are updates; [top] and [contents]
    are queries. *)

type state = int list
type update = Push of int | Pop
type query = Top | Contents
type output = Peek of int option | All of int list

include
  Uqadt.S
    with type state := state
     and type update := update
     and type query := query
     and type output := output
