(** Update-query abstract data types (Definition 1 of the paper).

    A UQ-ADT is a transition system [(U, Qi, Qo, S, s0, T, G)]: update
    operations [U] move between states via the transition function [T]
    and return nothing; query operations [Qi] return an output computed
    by [G] from the current state and leave it unchanged. The paper's
    sequential specification [L(O)] — the set of allowed sequential
    histories — is decided here by {!Run.recognizes}.

    Every replicated-object protocol in this repository (the universal
    construction, Algorithm 2, the CRDT baselines) and every consistency
    checker is parameterised by a module of type {!S}. *)

(** Interface every abstract data type instance implements. [state],
    [apply] and [eval] are the paper's [S]/[s0], [T] and [G]. *)
module type S = sig
  type state
  type update
  type query
  type output

  val name : string
  (** Short identifier used in reports, e.g. ["set"]. *)

  val initial : state
  (** The initial state [s0]. *)

  val apply : state -> update -> state
  (** The transition function [T]. Total: every update is applicable in
      every state. *)

  val eval : state -> query -> output
  (** The output function [G]. *)

  val equal_state : state -> state -> bool
  val equal_update : update -> update -> bool
  val equal_query : query -> query -> bool
  val equal_output : output -> output -> bool

  val pp_state : Format.formatter -> state -> unit
  val pp_update : Format.formatter -> update -> unit
  val pp_query : Format.formatter -> query -> unit
  val pp_output : Format.formatter -> output -> unit

  val update_wire_size : update -> int
  (** Bytes a compact encoding of the update payload occupies; used for
      the message-complexity experiments (C1). *)

  val commutative : bool
  (** True iff all pairs of updates commute in every state, i.e. the type
      is a pure op-based CRDT. The universal construction exploits this
      (Section VII.C): with commuting updates every linearization yields
      the same state, so replay order is irrelevant. *)

  val satisfiable : (query * output) list -> bool
  (** [satisfiable qs] decides whether a single state answers every
      [(qi, qo)] pair, i.e. [∃ s. ∀ (qi, qo) ∈ qs. G s qi = qo]. Needed
      by the strong-convergence clause of the SEC checker (Definition 6),
      where the witness state is existentially quantified and not tied to
      any update sequence. *)

  val random_update : Prng.t -> update
  (** Uniformly-ish random update over a small support; drives workload
      generation and property tests. *)

  val random_query : Prng.t -> query
end

type ('u, 'q, 'o) operation = Update of 'u | Query of 'q * 'o
(** One event label of a sequential or distributed history: either an
    update [u ∈ U] or a query [qi/qo ∈ Q]. *)

val pp_operation :
  (Format.formatter -> 'u -> unit) ->
  (Format.formatter -> 'q -> unit) ->
  (Format.formatter -> 'o -> unit) ->
  Format.formatter ->
  ('u, 'q, 'o) operation ->
  unit

(** Sequential interpretation of an ADT: executing update sequences and
    deciding membership of [L(O)]. *)
module Run (A : S) : sig
  val exec_updates : A.state -> A.update list -> A.state
  (** Fold [apply] over the list. *)

  val final_state : A.update list -> A.state
  (** [exec_updates A.initial]. *)

  val step :
    A.state -> (A.update, A.query, A.output) operation -> A.state option
  (** [step s op] is [Some s'] if [op] is allowed in state [s] (updates
      always are; a query [qi/qo] iff [G s qi = qo]), with [s'] the
      resulting state. *)

  val recognizes : (A.update, A.query, A.output) operation list -> bool
  (** Membership of the finite word in [L(O)] (Definition 1): replay from
      [A.initial], checking every query output. *)

  val pp_word :
    Format.formatter -> (A.update, A.query, A.output) operation list -> unit
end

type packed = (module S)
(** Existentially packaged instance, for registries and the CLI. *)
