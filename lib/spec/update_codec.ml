module type S = sig
  type update

  val encode : Codec.Writer.t -> update -> unit

  val decode : Codec.Reader.t -> update

  val to_string : update -> string

  val of_string : string -> update
end

(* Derive whole-frame helpers from the streaming pair. *)
module Complete (X : sig
  type update

  val encode : Codec.Writer.t -> update -> unit

  val decode : Codec.Reader.t -> update
end) : S with type update = X.update = struct
  include X

  let to_string u =
    let w = Codec.Writer.create () in
    encode w u;
    Codec.Writer.contents w

  let of_string s =
    let r = Codec.Reader.of_string s in
    let u = decode r in
    if not (Codec.Reader.at_end r) then raise (Codec.Decode_error "trailing bytes");
    u
end

(* The tag byte carries the constructor in its high bits and one sign
   bit per integer argument in its low bits, so magnitudes go on the
   wire as plain varints and the frame length matches the
   [update_wire_size] formulas (1 + Σ varint(abs …)). *)
let tag ~ctor ~signs = (ctor lsl 3) lor signs

let untag b = (b lsr 3, b land 7)

let sign_bit i n = if n < 0 then 1 lsl i else 0

let apply_sign bit magnitude = if bit = 1 then -magnitude else magnitude

let bad name = raise (Codec.Decode_error ("unknown tag for " ^ name))

module For_set = Complete (struct
  type update = Set_spec.update

  let encode w u =
    let ctor, v = match u with Set_spec.Insert v -> (0, v) | Set_spec.Delete v -> (1, v) in
    Codec.Writer.u8 w (tag ~ctor ~signs:(sign_bit 0 v));
    Codec.Writer.varint w (abs v)

  let decode r =
    let ctor, signs = untag (Codec.Reader.u8 r) in
    let v = apply_sign (signs land 1) (Codec.Reader.varint r) in
    match ctor with
    | 0 -> Set_spec.Insert v
    | 1 -> Set_spec.Delete v
    | _ -> bad "set"
end)

module For_gset = Complete (struct
  type update = Gset_spec.update

  let encode w (Gset_spec.Insert v) =
    Codec.Writer.u8 w (tag ~ctor:0 ~signs:(sign_bit 0 v));
    Codec.Writer.varint w (abs v)

  let decode r =
    let ctor, signs = untag (Codec.Reader.u8 r) in
    if ctor <> 0 then bad "gset";
    Gset_spec.Insert (apply_sign (signs land 1) (Codec.Reader.varint r))
end)

module Signed_scalar (X : sig
  type update

  val name : string

  val proj : update -> int

  val inj : int -> update
end) =
Complete (struct
  type update = X.update

  let encode w u =
    let v = X.proj u in
    Codec.Writer.u8 w (tag ~ctor:0 ~signs:(sign_bit 0 v));
    Codec.Writer.varint w (abs v)

  let decode r =
    let ctor, signs = untag (Codec.Reader.u8 r) in
    if ctor <> 0 then bad X.name;
    X.inj (apply_sign (signs land 1) (Codec.Reader.varint r))
end)

module For_counter = Signed_scalar (struct
  type update = Counter_spec.update

  let name = "counter"

  let proj (Counter_spec.Add n) = n

  let inj n = Counter_spec.Add n
end)

module For_register = Signed_scalar (struct
  type update = Register_spec.update

  let name = "register"

  let proj (Register_spec.Write v) = v

  let inj v = Register_spec.Write v
end)

module For_maxreg = Signed_scalar (struct
  type update = Maxreg_spec.update

  let name = "maxreg"

  let proj (Maxreg_spec.Propose v) = v

  let inj v = Maxreg_spec.Propose v
end)

module For_log = Signed_scalar (struct
  type update = Log_spec.update

  let name = "log"

  let proj (Log_spec.Append v) = v

  let inj v = Log_spec.Append v
end)

module For_memory = Complete (struct
  type update = Memory_spec.update

  let encode w (Memory_spec.Write (x, v)) =
    Codec.Writer.u8 w (tag ~ctor:0 ~signs:(sign_bit 0 x lor sign_bit 1 v));
    Codec.Writer.varint w (abs x);
    Codec.Writer.varint w (abs v)

  let decode r =
    let ctor, signs = untag (Codec.Reader.u8 r) in
    if ctor <> 0 then bad "memory";
    let x = apply_sign (signs land 1) (Codec.Reader.varint r) in
    let v = apply_sign ((signs lsr 1) land 1) (Codec.Reader.varint r) in
    Memory_spec.Write (x, v)
end)

module For_flag = Complete (struct
  type update = Flag_spec.update

  let encode w u =
    Codec.Writer.u8 w
      (tag ~ctor:(match u with Flag_spec.Enable -> 0 | Flag_spec.Disable -> 1) ~signs:0)

  let decode r =
    match untag (Codec.Reader.u8 r) with
    | 0, _ -> Flag_spec.Enable
    | 1, _ -> Flag_spec.Disable
    | _ -> bad "flag"
end)

module For_queue = Complete (struct
  type update = Queue_spec.update

  let encode w = function
    | Queue_spec.Enqueue v ->
      Codec.Writer.u8 w (tag ~ctor:0 ~signs:(sign_bit 0 v));
      Codec.Writer.varint w (abs v)
    | Queue_spec.Dequeue -> Codec.Writer.u8 w (tag ~ctor:1 ~signs:0)

  let decode r =
    let ctor, signs = untag (Codec.Reader.u8 r) in
    match ctor with
    | 0 -> Queue_spec.Enqueue (apply_sign (signs land 1) (Codec.Reader.varint r))
    | 1 -> Queue_spec.Dequeue
    | _ -> bad "queue"
end)

module For_stack = Complete (struct
  type update = Stack_spec.update

  let encode w = function
    | Stack_spec.Push v ->
      Codec.Writer.u8 w (tag ~ctor:0 ~signs:(sign_bit 0 v));
      Codec.Writer.varint w (abs v)
    | Stack_spec.Pop -> Codec.Writer.u8 w (tag ~ctor:1 ~signs:0)

  let decode r =
    let ctor, signs = untag (Codec.Reader.u8 r) in
    match ctor with
    | 0 -> Stack_spec.Push (apply_sign (signs land 1) (Codec.Reader.varint r))
    | 1 -> Stack_spec.Pop
    | _ -> bad "stack"
end)

module For_map = Complete (struct
  type update = Map_spec.update

  let encode w = function
    | Map_spec.Put (k, v) ->
      Codec.Writer.u8 w (tag ~ctor:0 ~signs:(sign_bit 0 k lor sign_bit 1 v));
      Codec.Writer.varint w (abs k);
      Codec.Writer.varint w (abs v)
    | Map_spec.Del k ->
      Codec.Writer.u8 w (tag ~ctor:1 ~signs:(sign_bit 0 k));
      Codec.Writer.varint w (abs k)

  let decode r =
    let ctor, signs = untag (Codec.Reader.u8 r) in
    match ctor with
    | 0 ->
      let k = apply_sign (signs land 1) (Codec.Reader.varint r) in
      let v = apply_sign ((signs lsr 1) land 1) (Codec.Reader.varint r) in
      Map_spec.Put (k, v)
    | 1 -> Map_spec.Del (apply_sign (signs land 1) (Codec.Reader.varint r))
    | _ -> bad "map"
end)

module For_text = Complete (struct
  type update = Text_spec.update

  let encode w = function
    | Text_spec.Insert (p, c) ->
      Codec.Writer.u8 w (tag ~ctor:0 ~signs:(sign_bit 0 p));
      Codec.Writer.u8 w (Char.code c);
      Codec.Writer.varint w (abs p)
    | Text_spec.Delete p ->
      Codec.Writer.u8 w (tag ~ctor:1 ~signs:(sign_bit 0 p));
      Codec.Writer.varint w (abs p)

  let decode r =
    let ctor, signs = untag (Codec.Reader.u8 r) in
    match ctor with
    | 0 ->
      let c = Char.chr (Codec.Reader.u8 r) in
      let p = apply_sign (signs land 1) (Codec.Reader.varint r) in
      Text_spec.Insert (p, c)
    | 1 -> Text_spec.Delete (apply_sign (signs land 1) (Codec.Reader.varint r))
    | _ -> bad "text"
end)

module For_bank = Complete (struct
  type update = Bank_spec.update

  let encode w = function
    | Bank_spec.Deposit (a, n) ->
      Codec.Writer.u8 w (tag ~ctor:0 ~signs:(sign_bit 0 a lor sign_bit 1 n));
      Codec.Writer.varint w (abs a);
      Codec.Writer.varint w (abs n)
    | Bank_spec.Withdraw (a, n) ->
      Codec.Writer.u8 w (tag ~ctor:1 ~signs:(sign_bit 0 a lor sign_bit 1 n));
      Codec.Writer.varint w (abs a);
      Codec.Writer.varint w (abs n)
    | Bank_spec.Transfer (x, y, n) ->
      Codec.Writer.u8 w
        (tag ~ctor:2 ~signs:(sign_bit 0 x lor sign_bit 1 y lor sign_bit 2 n));
      Codec.Writer.varint w (abs x);
      Codec.Writer.varint w (abs y);
      Codec.Writer.varint w (abs n)

  let decode r =
    let ctor, signs = untag (Codec.Reader.u8 r) in
    let signed i = apply_sign ((signs lsr i) land 1) (Codec.Reader.varint r) in
    match ctor with
    | 0 ->
      let a = signed 0 in
      let n = signed 1 in
      Bank_spec.Deposit (a, n)
    | 1 ->
      let a = signed 0 in
      let n = signed 1 in
      Bank_spec.Withdraw (a, n)
    | 2 ->
      let x = signed 0 in
      let y = signed 1 in
      let n = signed 2 in
      Bank_spec.Transfer (x, y, n)
    | _ -> bad "bank"
end)

module For_pqueue = Complete (struct
  type update = Pqueue_spec.update

  let encode w = function
    | Pqueue_spec.Insert v ->
      Codec.Writer.u8 w (tag ~ctor:0 ~signs:(sign_bit 0 v));
      Codec.Writer.varint w (abs v)
    | Pqueue_spec.Extract_min -> Codec.Writer.u8 w (tag ~ctor:1 ~signs:0)

  let decode r =
    let ctor, signs = untag (Codec.Reader.u8 r) in
    match ctor with
    | 0 -> Pqueue_spec.Insert (apply_sign (signs land 1) (Codec.Reader.varint r))
    | 1 -> Pqueue_spec.Extract_min
    | _ -> bad "pqueue"
end)
