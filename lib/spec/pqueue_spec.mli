(** A priority queue, with the paper's Section I decomposition applied
    to its pop: [Insert v] and [Extract_min] (a no-op when empty) are
    updates; [Min] peeks without removing and [Size] counts. Classic
    job-scheduler shape: concurrent extract-mins on different replicas
    are exactly the race that needs a common linearization to agree on
    who took which job. *)

type state = int list
(** Sorted ascending; the minimum at the head. *)

type update = Insert of int | Extract_min

type query = Min | Size

type output = Min_value of int option | Count of int

include
  Uqadt.S
    with type state := state
     and type update := update
     and type query := query
     and type output := output
