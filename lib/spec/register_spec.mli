(** A single read/write register: [write v] replaces the value, [read]
    returns the last written value or the initial value 0. The smallest
    non-commutative UQ-ADT; Algorithm 2's shared memory is a family of
    these. *)

type state = int
type update = Write of int
type query = Read
type output = int

include
  Uqadt.S
    with type state := state
     and type update := update
     and type query := query
     and type output := output
