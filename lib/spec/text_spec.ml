type state = string
type update = Insert of int * char | Delete of int
type query = Read | Length
type output = Text of string | Len of int

let name = "text"

let initial = ""

let clamp lo hi x = if x < lo then lo else if x > hi then hi else x

let apply s = function
  | Insert (pos, c) ->
    let pos = clamp 0 (String.length s) pos in
    String.sub s 0 pos ^ String.make 1 c ^ String.sub s pos (String.length s - pos)
  | Delete pos ->
    if pos < 0 || pos >= String.length s then s
    else String.sub s 0 pos ^ String.sub s (pos + 1) (String.length s - pos - 1)

let eval s = function
  | Read -> Text s
  | Length -> Len (String.length s)

let equal_state = String.equal

let equal_update a b =
  match (a, b) with
  | Insert (p, c), Insert (p', c') -> p = p' && c = c'
  | Delete p, Delete p' -> p = p'
  | Insert _, Delete _ | Delete _, Insert _ -> false

let equal_query a b =
  match (a, b) with
  | Read, Read | Length, Length -> true
  | Read, Length | Length, Read -> false

let equal_output a b =
  match (a, b) with
  | Text x, Text y -> String.equal x y
  | Len x, Len y -> x = y
  | Text _, Len _ | Len _, Text _ -> false

let pp_state ppf s = Format.fprintf ppf "%S" s

let pp_update ppf = function
  | Insert (p, c) -> Format.fprintf ppf "ins(%d,%c)" p c
  | Delete p -> Format.fprintf ppf "del(%d)" p

let pp_query ppf = function
  | Read -> Format.fprintf ppf "r"
  | Length -> Format.fprintf ppf "len"

let pp_output ppf = function
  | Text s -> Format.fprintf ppf "%S" s
  | Len n -> Format.pp_print_int ppf n

let update_wire_size = function
  | Insert (p, _) -> 2 + Wire.varint_size (abs p)
  | Delete p -> 1 + Wire.varint_size (abs p)

let commutative = false

let satisfiable pairs = Support.keyed_outputs_consistent equal_query equal_output pairs

let random_update rng =
  if Prng.int rng 3 = 0 then Delete (Prng.int rng 6)
  else Insert (Prng.int rng 6, Char.chr (Char.code 'a' + Prng.int rng 26))

let random_query rng = if Prng.bool rng then Read else Length
