type state = int list

type update = Insert of int | Extract_min

type query = Min | Size

type output = Min_value of int option | Count of int

let name = "pqueue"

let initial = []

let rec place v = function
  | [] -> [ v ]
  | x :: rest when v <= x -> v :: x :: rest
  | x :: rest -> x :: place v rest

let apply s = function
  | Insert v -> place v s
  | Extract_min -> ( match s with [] -> [] | _ :: rest -> rest)

let eval s = function
  | Min -> Min_value (match s with [] -> None | v :: _ -> Some v)
  | Size -> Count (List.length s)

let equal_state a b = a = b

let equal_update a b =
  match (a, b) with
  | Insert x, Insert y -> x = y
  | Extract_min, Extract_min -> true
  | Insert _, Extract_min | Extract_min, Insert _ -> false

let equal_query a b =
  match (a, b) with
  | Min, Min | Size, Size -> true
  | Min, Size | Size, Min -> false

let equal_output a b =
  match (a, b) with
  | Min_value x, Min_value y -> x = y
  | Count x, Count y -> x = y
  | Min_value _, Count _ | Count _, Min_value _ -> false

let pp_state = Support.pp_int_list

let pp_update ppf = function
  | Insert v -> Format.fprintf ppf "ins(%d)" v
  | Extract_min -> Format.fprintf ppf "extract"

let pp_query ppf = function
  | Min -> Format.fprintf ppf "min"
  | Size -> Format.fprintf ppf "size"

let pp_output ppf = function
  | Min_value v -> Support.pp_int_option ppf v
  | Count n -> Format.pp_print_int ppf n

let update_wire_size = function
  | Insert v -> 1 + Wire.varint_size (abs v)
  | Extract_min -> 1

let commutative = false

let satisfiable pairs = Support.keyed_outputs_consistent equal_query equal_output pairs

let random_update rng =
  if Prng.int rng 3 = 0 then Extract_min else Insert (Prng.int rng 16)

let random_query rng = if Prng.bool rng then Min else Size
