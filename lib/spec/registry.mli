(** Name-indexed registry of all packaged ADT instances, used by the CLI
    and the model checker to iterate "for every object type". *)

(** An ADT bundled with its wire codec — what persistence-aware
    constructions (churn catch-up, snapshot transfer) need beyond the
    bare {!Uqadt.S}. *)
module type SPEC = sig
  include Uqadt.S

  module Codec : Update_codec.S with type update = update
end

val all : (string * Uqadt.packed) list
(** Association list, stable order. *)

val all_specs : (string * (module SPEC)) list
(** Same entries, same order, with each spec's {!Update_codec} attached. *)

val find : string -> Uqadt.packed option

val find_spec : string -> (module SPEC) option

val names : string list
