(** Name-indexed registry of all packaged ADT instances, used by the CLI
    and the model checker to iterate "for every object type". *)

val all : (string * Uqadt.packed) list
(** Association list, stable order. *)

val find : string -> Uqadt.packed option

val names : string list
