(** A FIFO queue with the pop split into a query and an update, exactly
    as the paper prescribes for UQ-ADTs (Section I): [enqueue v] and
    [dequeue] are updates ([dequeue] on an empty queue is a no-op);
    [front] is a query returning the head without removing it, and
    [contents] returns the whole queue. *)

type state = int list
type update = Enqueue of int | Dequeue
type query = Front | Contents
type output = Head of int option | All of int list

include
  Uqadt.S
    with type state := state
     and type update := update
     and type query := query
     and type output := output
