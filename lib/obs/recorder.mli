(** Flight recorder for the multicore engine: per-domain append-only
    event capture with a deterministic post-run merge.

    The parallel engine ({!Parallel_engine}) runs under a real OS
    schedule, so a run that misbehaves is gone the moment it ends —
    unless its per-replica delivery order was captured. The recorder
    captures exactly that: each domain appends fixed-size binary
    records (invoke / send / deliver / stall) into its own {e private}
    chunk list — no atomics, no locks, no cross-domain contention on
    the hot path; [Domain.join] is the only synchronisation, after
    which the collector owns every buffer.

    Every record carries three stamps:

    {ul
    {- a {b Lamport clock}, bumped on every local record; a send
       returns the sender's clock for the frame to carry, and a deliver
       advances to [max(local, frame) + 1] — so the clocks order every
       send before its matching deliver;}
    {- a {b wall-clock} reading from the injected [now] (the engine
       installs its run-relative wall clock; tests install a counter,
       which is what makes recorded journals byte-pinnable);}
    {- its {b per-domain sequence number} (the record's index in its
       domain's stream); delivers additionally carry the destination's
       delivery sequence number.}}

    {!events} merges the per-domain streams into one list sorted by
    [(lamport, pid, seq)] — a linear extension of the happens-before
    relation that also preserves every domain's program order (the
    clock strictly increases within a domain). The merged stream is
    what the analysis layer turns into a {!Journal}, feeds to the
    online monitors, and replays on the sequential core. *)

type t
(** A run-level recorder: one buffer per domain, created up front. *)

type handle
(** One domain's private append handle. Obtain all handles before
    spawning; a handle must only ever be written by its own domain. *)

val create : ?now:(unit -> float) -> ?chunk:int -> domains:int -> unit -> t
(** [chunk] is the records-per-chunk granularity (default 4096; tests
    shrink it to exercise chunk growth). When [now] is omitted the
    recorder stamps [0.0] until a clock is installed with
    {!install_clock}. @raise Invalid_argument on [domains <= 0] or
    [chunk < 1]. *)

val install_clock : t -> (unit -> float) -> unit
(** Install the wall clock when none was given to {!create}; a clock
    supplied at creation (a test's deterministic counter) wins. The
    engine calls this once, before spawning, with its run-relative
    [Unix.gettimeofday] — the spawn is the synchronisation point. *)

val handle : t -> int -> handle
(** The (pre-created) handle for domain [pid]; pure lookup, safe from
    anywhere. *)

val invoke_update : handle -> unit

val invoke_query : handle -> omega:bool -> unit

val send : handle -> dst:int -> count:int -> bytes:int -> int
(** Record one outgoing frame of [count] messages and return the
    Lamport stamp the frame must carry to [dst]. *)

val deliver : handle -> src:int -> count:int -> frame_lamport:int -> unit
(** Record the delivery of a frame recorded with {!send}; advances the
    local clock past [frame_lamport] and assigns the next per-domain
    delivery sequence number. *)

val stall : handle -> dst:int -> unit
(** Record that a push to [dst]'s mailbox found it full (one record per
    stalled frame, however many retries the slow path spins through —
    the retry count is a metric, not an event). *)

val recorded : t -> int
(** Total records appended across all domains so far. Call only when
    the writing domains are quiescent. *)

(** One decoded record. [pid] is the recording domain, [seq] its index
    in that domain's stream, [lamport] and [wall] its stamps. *)
type event =
  | Invoke_update of { pid : int; seq : int; lamport : int; wall : float }
  | Invoke_query of {
      pid : int;
      seq : int;
      lamport : int;
      wall : float;
      omega : bool;
    }
  | Send of {
      pid : int;
      seq : int;
      lamport : int;
      wall : float;
      dst : int;
      count : int;
      bytes : int;
    }
  | Deliver of {
      pid : int;
      seq : int;
      lamport : int;
      wall : float;
      src : int;
      count : int;
      dseq : int;  (** destination's delivery sequence number, from 0 *)
    }
  | Stall of { pid : int; seq : int; lamport : int; wall : float; dst : int }

val event_pid : event -> int

val event_lamport : event -> int

val event_wall : event -> float

val events : t -> event list
(** Decode and merge every domain's stream, sorted by
    [(lamport, pid, seq)]. Call after the writing domains have joined;
    the recorder itself is not reset, so the call is repeatable. *)
