(** Declarative alert rules over {!Series} streams.

    A rule names a series and a predicate; the engine evaluates every
    armed rule after each sampler tick (via {!attach} / {!Series.on_tick})
    against {e every} series carrying that name, so ["log_len"] covers
    [log_len{pid=0..n}] without enumerating pids. Rules {e latch}: a
    rule fires at most once per run and then disarms — a week of breach
    produces one alert, not one per tick. Firings are reported through
    the [on_fire] callback (the CLI journals them as {!Journal.Alert}
    events and streams them into the series JSONL) and accumulate in
    {!fired}, which the soak harness turns into a non-zero exit. *)

type predicate =
  | Above of float  (** last reading strictly above the threshold *)
  | Below of float  (** last reading strictly below the threshold *)
  | Monotone_growth of int
      (** the last [k >= 2] retained ring points are strictly
          increasing — because the ring decimates, surviving points
          span the whole run, so this detects {e sustained} growth
          (the unbounded-log signature), not a transient burst *)
  | Slo_breach of float
      (** last reading strictly above the objective; intended for
          [latency_p99]-style series, rendered as an SLO breach *)

type rule = { series : string; pred : predicate }

val rule_to_string : rule -> string
(** Canonical form: [above:SERIES:V], [below:SERIES:V],
    [growth:SERIES:K], [slo:SERIES:TARGET]. Round-trips through
    {!rule_of_string}; used as the rule id in journals and alert
    lines. *)

val rule_of_string : string -> rule
(** @raise Invalid_argument on anything {!rule_to_string} cannot have
    produced (unknown predicate, malformed number, [growth] with
    [k < 2]). *)

type firing = {
  rule : rule;
  time : float;  (** simulated time of the tick that tripped it *)
  series : string;  (** offending series, labels included *)
  value : float;  (** the reading *)
}

type t

val create : rule list -> t
(** All rules start armed. *)

val rules : t -> rule list
(** Every rule ever given, armed or fired. *)

val step : t -> Series.t -> now:float -> firing list
(** Evaluate armed rules against the store once; returns (and records)
    the rules that fired this step. Normally driven by {!attach}. *)

val attach : t -> Series.sampler -> on_fire:(firing -> unit) -> unit
(** Register the engine on the sampler's tick hook; [on_fire] runs once
    per firing, at the tick that tripped it. *)

val fired : t -> firing list
(** Firings so far, oldest first. *)
