let us t = Json.Num (t *. 1000.0)

let num i = Json.Num (float_of_int i)

let span_args = function
  | None -> []
  | Some s -> [ ("args", Json.Obj [ ("span", num s) ]) ]

(* Flow events bind on (cat, name, id); one flow per span links the
   origin invocation to every apply. *)
let flow ph span ~pid ~time extra =
  Json.Obj
    ([
       ("name", Json.Str "update");
       ("cat", Json.Str "span");
       ("ph", Json.Str ph);
       ("id", num span);
       ("ts", us time);
       ("pid", num pid);
       ("tid", num 0);
     ]
    @ extra)

let event_json = function
  | Span.Invoke { span; pid; time; label; local = _ } ->
    [
      Json.Obj
        ([
           ("name", Json.Str ("invoke " ^ label));
           ("cat", Json.Str "invoke");
           ("ph", Json.Str "i");
           ("s", Json.Str "p");
           ("ts", us time);
           ("pid", num pid);
           ("tid", num 0);
         ]
        @ span_args (Some span));
      flow "s" span ~pid ~time [];
    ]
  | Span.Send { span; src; time } ->
    [
      Json.Obj
        ([
           ("name", Json.Str "send");
           ("cat", Json.Str "net");
           ("ph", Json.Str "i");
           ("s", Json.Str "t");
           ("ts", us time);
           ("pid", num src);
           ("tid", num 0);
         ]
        @ span_args span);
    ]
  | Span.Deliver { span; src; dst; sent; received } ->
    [
      Json.Obj
        ([
           ("name", Json.Str (Printf.sprintf "msg %d->%d" src dst));
           ("cat", Json.Str "net");
           ("ph", Json.Str "X");
           ("ts", us sent);
           ("dur", us (received -. sent));
           ("pid", num dst);
           (* track per sender, offset past the instant track *)
           ("tid", num (src + 1));
         ]
        @ span_args span);
    ]
  | Span.Apply { span; pid; time } ->
    let base =
      Json.Obj
        ([
           ("name", Json.Str "apply");
           ("cat", Json.Str "apply");
           ("ph", Json.Str "i");
           ("s", Json.Str "t");
           ("ts", us time);
           ("pid", num pid);
           ("tid", num 0);
         ]
        @ span_args span)
    in
    (match span with
    | Some s -> [ base; flow "f" s ~pid ~time [ ("bp", Json.Str "e") ] ]
    | None -> [ base ])

(* Perfetto metadata events: ph:"M" rows are not rendered on the
   timeline; "process_name" labels each replica track and a
   "ucsim_config" row carries the run's self-description (seed,
   log-core choice, batch window, …) so a trace file alone identifies
   the run that produced it. *)
let meta_json ?(meta = []) ?replicas () =
  let name_row ~pid name args =
    Json.Obj
      [
        ("name", Json.Str name);
        ("ph", Json.Str "M");
        ("pid", num pid);
        ("tid", Json.Num 0.0);
        ("args", Json.Obj args);
      ]
  in
  let process_names =
    match replicas with
    | None -> []
    | Some n ->
      List.init n (fun pid ->
          name_row ~pid "process_name"
            [ ("name", Json.Str (Printf.sprintf "replica %d" pid)) ])
  in
  let config =
    match meta with [] -> [] | meta -> [ name_row ~pid:0 "ucsim_config" meta ]
  in
  process_names @ config

let to_json ?meta ?replicas spans =
  let events =
    meta_json ?meta ?replicas ()
    @ List.concat_map event_json (Span.events spans)
  in
  Json.Obj
    [ ("traceEvents", Json.Arr events); ("displayTimeUnit", Json.Str "ms") ]

let pp_span_dump ppf spans =
  List.iter
    (fun (i : Span.info) ->
      Format.fprintf ppf "span %d [%s] origin=%d invoked=%.3f@." i.id i.label
        i.origin i.invoked;
      List.iter
        (fun (src, dst, sent, received) ->
          Format.fprintf ppf "  deliver %d->%d sent=%.3f received=%.3f@." src
            dst sent received)
        i.delivers;
      List.iter
        (fun (pid, time) ->
          Format.fprintf ppf "  apply pid=%d t=%.3f (+%.3f)@." pid time
            (time -. i.invoked))
        i.applies)
    (Span.spans spans)
