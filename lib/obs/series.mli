(** Streaming time-series telemetry for long-horizon (soak) runs.

    The end-of-run registry dump answers "what happened overall"; this
    module answers "how did it evolve" without ever growing: each named
    series is a fixed-capacity {e decimating ring} — when full it drops
    every other retained sample and doubles its acceptance stride, so a
    week-long run occupies exactly the memory of a ten-second one while
    keeping an evenly spaced skeleton of the whole history (plus exact
    min/max/last over every sample ever offered).

    A {!sampler} feeds the rings on a simulated-time cadence: each tick
    snapshots a {!Registry} ({!Registry.sample}), runs caller-installed
    {!probe}s (GC stats, op-log lengths, queue depths, per-shard op
    rates), and summarizes sliding {!Stats.window}s of visibility
    latency into [latency_p50]/[latency_p99] series (per key for
    sharded runs). Every emitted point can also be streamed to a JSONL
    {!writer} — full resolution on disk, constant memory in process.
    Hooks registered with {!on_tick} run after each tick; the alert
    engine ({!Alert}) attaches itself this way. *)

type labels = (string * string) list

val compare_labels : labels -> labels -> int
(** Lexicographic by key, numeric-aware on values ([pid=2] < [pid=10]). *)

val labels_string : labels -> string
(** [{k=v,...}], or [""] for no labels — the rendering used in tables
    and alert messages. *)

(** {2 Rings} *)

type ring

val ring : capacity:int -> ring
(** Raises [Invalid_argument] when [capacity < 2] (decimation must be
    able to free a slot). *)

val ring_push : ring -> time:float -> value:float -> unit
(** O(1) amortized; never allocates after construction. *)

val ring_length : ring -> int
(** Retained points; always [<= capacity]. *)

val ring_capacity : ring -> int

val ring_stride : ring -> int
(** Current acceptance stride: the ring holds pushes
    [0, stride, 2*stride, ...]. Starts at 1, doubles at each halving. *)

val ring_pushes : ring -> int
(** Samples ever offered, including decimated-away ones. *)

val ring_points : ring -> (float * float) list
(** Retained [(time, value)] points, oldest first. *)

val ring_min : ring -> float
(** Minimum over {e all} pushes, not just retained ones. Meaningless
    before the first push. *)

val ring_max : ring -> float

val ring_last : ring -> float

(** {2 Store} — named series, keyed like registry metrics *)

type t

val create : ?capacity:int -> unit -> t
(** Ring capacity for every series; defaults to 240 points. *)

val push : t -> name:string -> labels:labels -> time:float -> value:float -> unit
(** Find-or-create the [(name, labels)] ring and push into it. *)

val find : t -> string -> labels -> ring option

val find_named : t -> string -> (labels * ring) list
(** Every series with the given name, whatever its labels — how alert
    rules address per-replica series without enumerating pids. Sorted
    by labels. *)

val list : t -> ((string * labels) * ring) list
(** All series, sorted by name then labels. *)

(** {2 Sampler} *)

type point = { time : float; name : string; labels : labels; value : float }

type probe = unit -> (string * labels * float) list
(** Called once per tick; returns [(name, labels, value)] gauge
    readings. Probes must not mutate simulation state. *)

type sampler

val sampler :
  ?capacity:int -> ?window:int -> ?registry:Registry.t -> interval:float ->
  unit -> sampler
(** [capacity] is the per-series ring size (default 240); [window] the
    sliding latency window size (default 256 samples); [registry], when
    given, is snapshotted on every tick. Raises [Invalid_argument] on a
    non-positive [interval]. *)

val store : sampler -> t

val interval : sampler -> float

val ticks : sampler -> int
(** Ticks taken so far. *)

val add_probe : sampler -> probe -> unit

val on_tick : sampler -> (float -> unit) -> unit
(** The hook runs after each tick's points are pushed, with the tick's
    simulated time. Hooks run in registration order. *)

val set_sink : sampler -> (point -> unit) -> unit
(** Every emitted point is also handed to [sink] (used to stream JSONL
    at full resolution while the in-process rings decimate). *)

val observe_latency : sampler -> ?key:int -> float -> unit
(** Record one visibility-latency sample into the sliding window (and
    the per-[key] window when given — sharded runs key by pid or object
    key so each gets its own windowed p99). *)

val tick : sampler -> now:float -> unit
(** Take a sample unconditionally at simulated time [now]. *)

val maybe_tick : sampler -> now:float -> unit
(** Take a sample iff the cadence says one is due ([now >= next due]);
    then the next becomes due at [now + interval]. Call from existing
    activation points only — the sampler must never schedule engine
    events of its own, so enabling it cannot perturb a schedule. *)

(** {2 JSONL stream}

    Line 1 is a header [{"series":"ucsim","version":1,...meta}]; then
    one object per point [{"t":..,"name":..,"labels":{..},"v":..}]
    (labels omitted when empty), alert lines
    [{"alert":RULE,"t":..,"series":..,"v":..}] interleaved as they
    fire, and a trailing footer [{"points":N,"alerts":K}]. *)

val version : int

type writer

val writer : out_channel -> meta:(string * Json.t) list -> writer
(** Writes the header line immediately. *)

val write_point : writer -> point -> unit

val write_alert :
  writer -> time:float -> rule:string -> series:string -> value:float -> unit

val close_writer : writer -> unit
(** Writes the footer and flushes; does not close the channel. *)

type alert_line = { atime : float; rule : string; aseries : string; avalue : float }

type loaded = {
  meta : (string * Json.t) list;
  points : point list;  (** chronological, full resolution *)
  alerts : alert_line list;
}

val load : string -> loaded
(** Parses a stream written by {!writer}.
    @raise Failure with a one-line message on an unreadable file, a
    non-series stream, or an unsupported version. *)

(** {2 Rendering} *)

val sparkline : ?width:int -> float list -> string
(** Unicode bar glyphs normalized to the sample range, downsampled by
    slice means to at most [width] (default 60) columns. Flat series
    render mid-height. *)

val render : Format.formatter -> loaded -> unit
(** One sparkline + n/min/max/last row per series, then fired alerts. *)
