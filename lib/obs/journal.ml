type event =
  | Update of { pid : int; time : float; span : int option; label : string }
  | Query of {
      pid : int;
      invoked : float;
      completed : float;
      span : int option;
      label : string;
      output : string;
      omega : bool;
    }
  | Frame of {
      src : int;
      dst : int;
      count : int;
      bytes : int;
      sent : float;
      arrival : float;
      spans : int option list;
    }
  | Deliver of { src : int; dst : int; count : int; time : float }
  | Drop of { pid : int; count : int; time : float }
  | Crash of { pid : int; time : float }
  | Join of { pid : int; time : float; rejoin : bool; bytes : int }
      (** [rejoin] distinguishes a replica resuming from crash-time
          state from a fresh joiner; [bytes] is the catch-up snapshot
          volume transferred from the donor peer. *)
  | Leave of { pid : int; time : float }
  | Partition of { from_time : float; to_time : float; group : int list }
  | Probe of { time : float; distinct : int }
  | Rebalance of {
      time : float;
      hot : int;
      fresh : int;
      shards : int;
      moved : int;
    }
      (** hot-shard split: shard [hot] shed keys to new shard [fresh],
          leaving [shards] on the ring; [moved] log entries re-homed at
          the splitting replica (others migrate lazily) *)
  | Shard of { time : float; shard : int; ops : int; log : int }
      (** per-shard op-rate sample at a rebalance check: [ops] updates
          routed to [shard] in the window, [log] its local log length *)
  | Alert of { time : float; rule : string; series : string; value : float }
      (** an alert rule fired at a sample tick: [rule] is the
          canonical rule string ([Alert.rule_to_string]), [series] the
          offending series (with labels), [value] the reading that
          tripped it *)
  | Stall of { pid : int; dst : int; time : float }
      (** multicore backpressure: a frame from [pid] toward [dst] found
          the destination mailbox full (flight-recorder runs only) *)

type t = {
  mutable header : (string * Json.t) list;
  mutable rev_events : event list;
  mutable count : int;
  mutable fingerprint : string option;
}

exception Parse_error of string

let create ?(header = []) () =
  { header; rev_events = []; count = 0; fingerprint = None }

let set_header t fields = t.header <- fields

let header t = t.header

let record t e =
  t.rev_events <- e :: t.rev_events;
  t.count <- t.count + 1

let length t = t.count

let events t = List.rev t.rev_events

let event t i =
  if i < 0 || i >= t.count then invalid_arg "Journal.event: index out of range";
  List.nth t.rev_events (t.count - 1 - i)

let seal t ~fingerprint = t.fingerprint <- Some fingerprint

let fingerprint t = t.fingerprint

(* The journal's notion of "when": invocation time for operations, the
   departure time for frames — the order events were recorded in. *)
let event_time = function
  | Update { time; _ } -> time
  | Query { invoked; _ } -> invoked
  | Frame { sent; _ } -> sent
  | Deliver { time; _ } -> time
  | Drop { time; _ } -> time
  | Crash { time; _ } -> time
  | Join { time; _ } -> time
  | Leave { time; _ } -> time
  | Partition { from_time; _ } -> from_time
  | Probe { time; _ } -> time
  | Rebalance { time; _ } -> time
  | Shard { time; _ } -> time
  | Alert { time; _ } -> time
  | Stall { time; _ } -> time

(* ------------------------------ encoding ------------------------------ *)

let num_i i = Json.Num (float_of_int i)

let span_json = function None -> Json.Null | Some s -> num_i s

let event_to_json = function
  | Update { pid; time; span; label } ->
    Json.Obj
      [
        ("ev", Json.Str "update");
        ("pid", num_i pid);
        ("t", Json.Num time);
        ("span", span_json span);
        ("label", Json.Str label);
      ]
  | Query { pid; invoked; completed; span; label; output; omega } ->
    Json.Obj
      [
        ("ev", Json.Str "query");
        ("pid", num_i pid);
        ("t", Json.Num invoked);
        ("td", Json.Num completed);
        ("span", span_json span);
        ("label", Json.Str label);
        ("out", Json.Str output);
        ("omega", Json.Bool omega);
      ]
  | Frame { src; dst; count; bytes; sent; arrival; spans } ->
    Json.Obj
      [
        ("ev", Json.Str "frame");
        ("src", num_i src);
        ("dst", num_i dst);
        ("n", num_i count);
        ("bytes", num_i bytes);
        ("t", Json.Num sent);
        ("at", Json.Num arrival);
        ("spans", Json.Arr (List.map span_json spans));
      ]
  | Deliver { src; dst; count; time } ->
    Json.Obj
      [
        ("ev", Json.Str "deliver");
        ("src", num_i src);
        ("dst", num_i dst);
        ("n", num_i count);
        ("t", Json.Num time);
      ]
  | Drop { pid; count; time } ->
    Json.Obj
      [
        ("ev", Json.Str "drop");
        ("pid", num_i pid);
        ("n", num_i count);
        ("t", Json.Num time);
      ]
  | Crash { pid; time } ->
    Json.Obj
      [ ("ev", Json.Str "crash"); ("pid", num_i pid); ("t", Json.Num time) ]
  | Join { pid; time; rejoin; bytes } ->
    Json.Obj
      [
        ("ev", Json.Str "join");
        ("pid", num_i pid);
        ("t", Json.Num time);
        ("rejoin", Json.Bool rejoin);
        ("bytes", num_i bytes);
      ]
  | Leave { pid; time } ->
    Json.Obj
      [ ("ev", Json.Str "leave"); ("pid", num_i pid); ("t", Json.Num time) ]
  | Partition { from_time; to_time; group } ->
    Json.Obj
      [
        ("ev", Json.Str "partition");
        ("from", Json.Num from_time);
        ("to", Json.Num to_time);
        ("group", Json.Arr (List.map num_i group));
      ]
  | Probe { time; distinct } ->
    Json.Obj
      [ ("ev", Json.Str "probe"); ("t", Json.Num time); ("distinct", num_i distinct) ]
  | Rebalance { time; hot; fresh; shards; moved } ->
    Json.Obj
      [
        ("ev", Json.Str "rebalance");
        ("t", Json.Num time);
        ("hot", num_i hot);
        ("fresh", num_i fresh);
        ("shards", num_i shards);
        ("moved", num_i moved);
      ]
  | Shard { time; shard; ops; log } ->
    Json.Obj
      [
        ("ev", Json.Str "shard");
        ("t", Json.Num time);
        ("shard", num_i shard);
        ("ops", num_i ops);
        ("log", num_i log);
      ]
  | Alert { time; rule; series; value } ->
    Json.Obj
      [
        ("ev", Json.Str "alert");
        ("t", Json.Num time);
        ("rule", Json.Str rule);
        ("series", Json.Str series);
        ("v", Json.Num value);
      ]
  | Stall { pid; dst; time } ->
    Json.Obj
      [
        ("ev", Json.Str "stall");
        ("pid", num_i pid);
        ("dst", num_i dst);
        ("t", Json.Num time);
      ]

(* ------------------------------ decoding ------------------------------ *)

let fail fmt = Printf.ksprintf (fun m -> raise (Parse_error m)) fmt

let req j key get what =
  match Option.bind (Json.member key j) get with
  | Some v -> v
  | None -> fail "missing or ill-typed field %S in %s event" key what

let req_int j key what = req j key Json.get_int what

let req_num j key what = req j key Json.get_num what

let req_str j key what = req j key Json.get_str what

let req_bool j key what =
  match Json.member key j with
  | Some (Json.Bool b) -> b
  | _ -> fail "missing or ill-typed field %S in %s event" key what

let opt_span j key what =
  match Json.member key j with
  | Some Json.Null | None -> None
  | Some v -> (
    match Json.get_int v with
    | Some s -> Some s
    | None -> fail "ill-typed span in %s event" what)

let event_of_json j =
  match Option.bind (Json.member "ev" j) Json.get_str with
  | Some "update" ->
    Update
      {
        pid = req_int j "pid" "update";
        time = req_num j "t" "update";
        span = opt_span j "span" "update";
        label = req_str j "label" "update";
      }
  | Some "query" ->
    Query
      {
        pid = req_int j "pid" "query";
        invoked = req_num j "t" "query";
        completed = req_num j "td" "query";
        span = opt_span j "span" "query";
        label = req_str j "label" "query";
        output = req_str j "out" "query";
        omega = req_bool j "omega" "query";
      }
  | Some "frame" ->
    let spans =
      match Json.member "spans" j with
      | Some (Json.Arr items) ->
        List.map
          (function
            | Json.Null -> None
            | v -> (
              match Json.get_int v with
              | Some s -> Some s
              | None -> fail "ill-typed span in frame event"))
          items
      | _ -> fail "missing spans array in frame event"
    in
    Frame
      {
        src = req_int j "src" "frame";
        dst = req_int j "dst" "frame";
        count = req_int j "n" "frame";
        bytes = req_int j "bytes" "frame";
        sent = req_num j "t" "frame";
        arrival = req_num j "at" "frame";
        spans;
      }
  | Some "deliver" ->
    Deliver
      {
        src = req_int j "src" "deliver";
        dst = req_int j "dst" "deliver";
        count = req_int j "n" "deliver";
        time = req_num j "t" "deliver";
      }
  | Some "drop" ->
    Drop
      {
        pid = req_int j "pid" "drop";
        count = req_int j "n" "drop";
        time = req_num j "t" "drop";
      }
  | Some "crash" ->
    Crash { pid = req_int j "pid" "crash"; time = req_num j "t" "crash" }
  | Some "join" ->
    Join
      {
        pid = req_int j "pid" "join";
        time = req_num j "t" "join";
        rejoin = req_bool j "rejoin" "join";
        bytes = req_int j "bytes" "join";
      }
  | Some "leave" ->
    Leave { pid = req_int j "pid" "leave"; time = req_num j "t" "leave" }
  | Some "partition" ->
    let group =
      match Json.member "group" j with
      | Some (Json.Arr items) ->
        List.map
          (fun v ->
            match Json.get_int v with
            | Some p -> p
            | None -> fail "ill-typed group member in partition event")
          items
      | _ -> fail "missing group array in partition event"
    in
    Partition
      {
        from_time = req_num j "from" "partition";
        to_time = req_num j "to" "partition";
        group;
      }
  | Some "probe" ->
    Probe
      { time = req_num j "t" "probe"; distinct = req_int j "distinct" "probe" }
  | Some "rebalance" ->
    Rebalance
      {
        time = req_num j "t" "rebalance";
        hot = req_int j "hot" "rebalance";
        fresh = req_int j "fresh" "rebalance";
        shards = req_int j "shards" "rebalance";
        moved = req_int j "moved" "rebalance";
      }
  | Some "shard" ->
    Shard
      {
        time = req_num j "t" "shard";
        shard = req_int j "shard" "shard";
        ops = req_int j "ops" "shard";
        log = req_int j "log" "shard";
      }
  | Some "alert" ->
    Alert
      {
        time = req_num j "t" "alert";
        rule = req_str j "rule" "alert";
        series = req_str j "series" "alert";
        value = req_num j "v" "alert";
      }
  | Some "stall" ->
    Stall
      {
        pid = req_int j "pid" "stall";
        dst = req_int j "dst" "stall";
        time = req_num j "t" "stall";
      }
  | Some other -> fail "unknown event kind %S" other
  | None -> fail "event line without an \"ev\" field"

(* ------------------------------- JSONL -------------------------------- *)

let to_jsonl t =
  let buf = Buffer.create 4096 in
  let line j =
    Buffer.add_string buf (Json.to_string j);
    Buffer.add_char buf '\n'
  in
  line
    (Json.Obj
       (("journal", Json.Str "ucsim") :: ("version", Json.Num 1.0) :: t.header));
  List.iter (fun e -> line (event_to_json e)) (events t);
  line
    (Json.Obj
       [
         ( "fingerprint",
           match t.fingerprint with None -> Json.Null | Some s -> Json.Str s );
         ("events", num_i t.count);
       ]);
  Buffer.contents buf

let of_jsonl s =
  let lines =
    String.split_on_char '\n' s
    |> List.mapi (fun i l -> (i + 1, String.trim l))
    |> List.filter (fun (_, l) -> l <> "")
  in
  let parse_line (ln, l) =
    match Json.of_string l with
    | j -> (ln, j)
    | exception Json.Parse_error msg -> fail "line %d: %s" ln msg
  in
  match lines with
  | [] -> fail "empty journal"
  | header_line :: rest -> (
    let _, hj = parse_line header_line in
    (match Option.bind (Json.member "journal" hj) Json.get_str with
    | Some "ucsim" -> ()
    | _ -> fail "not a ucsim journal (missing header line)");
    (match Option.bind (Json.member "version" hj) Json.get_int with
    | Some 1 -> ()
    | Some v -> fail "unsupported journal version %d" v
    | None -> fail "journal header without a version");
    let header =
      match hj with
      | Json.Obj fields ->
        List.filter (fun (k, _) -> k <> "journal" && k <> "version") fields
      | _ -> []
    in
    match List.rev rest with
    | [] -> fail "truncated journal (missing footer line)"
    | footer_line :: rev_body ->
      let _, fj = parse_line footer_line in
      (match Json.member "events" fj with
      | Some _ -> ()
      | None -> fail "truncated journal (missing footer line)");
      let declared =
        match Option.bind (Json.member "events" fj) Json.get_int with
        | Some n -> n
        | None -> fail "ill-typed event count in footer"
      in
      let fingerprint =
        match Json.member "fingerprint" fj with
        | Some (Json.Str s) -> Some s
        | Some Json.Null | None -> None
        | Some _ -> fail "ill-typed fingerprint in footer"
      in
      let body = List.rev rev_body in
      let evs =
        List.map
          (fun line ->
            let ln, j = parse_line line in
            try event_of_json j
            with Parse_error msg -> fail "line %d: %s" ln msg)
          body
      in
      if List.length evs <> declared then
        fail "truncated journal: footer declares %d events, found %d" declared
          (List.length evs);
      {
        header;
        rev_events = List.rev evs;
        count = declared;
        fingerprint;
      })

(* ------------------------------ printing ------------------------------ *)

let pp_span ppf = function
  | None -> ()
  | Some s -> Format.fprintf ppf " span=%d" s

let pp_event ppf = function
  | Update { pid; time; span; label } ->
    Format.fprintf ppf "update p%d @%g%a %s" pid time pp_span span label
  | Query { pid; invoked; completed; span; label; output; omega } ->
    Format.fprintf ppf "query%s p%d @%g..%g%a %s -> %s"
      (if omega then "ω" else "")
      pid invoked completed pp_span span label output
  | Frame { src; dst; count; bytes; sent; arrival; _ } ->
    Format.fprintf ppf "frame %d->%d n=%d bytes=%d @%g..%g" src dst count bytes
      sent arrival
  | Deliver { src; dst; count; time } ->
    Format.fprintf ppf "deliver %d->%d n=%d @%g" src dst count time
  | Drop { pid; count; time } ->
    Format.fprintf ppf "drop p%d n=%d @%g" pid count time
  | Crash { pid; time } -> Format.fprintf ppf "crash p%d @%g" pid time
  | Join { pid; time; rejoin; bytes } ->
    Format.fprintf ppf "%s p%d @%g bytes=%d"
      (if rejoin then "rejoin" else "join")
      pid time bytes
  | Leave { pid; time } -> Format.fprintf ppf "leave p%d @%g" pid time
  | Partition { from_time; to_time; group } ->
    Format.fprintf ppf "partition [%s] @%g..%g"
      (String.concat "," (List.map string_of_int group))
      from_time to_time
  | Probe { time; distinct } ->
    Format.fprintf ppf "probe @%g distinct=%d" time distinct
  | Rebalance { time; hot; fresh; shards; moved } ->
    Format.fprintf ppf "rebalance s%d->s%d shards=%d moved=%d @%g" hot fresh
      shards moved time
  | Shard { time; shard; ops; log } ->
    Format.fprintf ppf "shard s%d ops=%d log=%d @%g" shard ops log time
  | Alert { time; rule; series; value } ->
    Format.fprintf ppf "alert %s on %s value=%g @%g" rule series value time
  | Stall { pid; dst; time } ->
    Format.fprintf ppf "stall %d->%d @%g" pid dst time

(* ------------------------------- diff --------------------------------- *)

let diff a b =
  (* Both journals record events in simulated-time order, so walking the
     two streams index by index aligns them by timestamp; the first
     position where the events (or one stream's end) disagree is the
     first structural divergence. *)
  let render = function
    | Some e -> Format.asprintf "%a" pp_event e
    | None -> "(end of journal)"
  in
  let rec walk i ea eb =
    match (ea, eb) with
    | [], [] -> None
    | x :: xs, y :: ys when x = y -> walk (i + 1) xs ys
    | xs, ys ->
      let hd = function [] -> None | e :: _ -> Some e in
      Some (i, render (hd xs), render (hd ys))
  in
  walk 0 (events a) (events b)
