module Json = Json
module Registry = Registry
module Span = Span
module Profile = Profile
module Trace_export = Trace_export
module Journal = Journal
module Monitor = Monitor
module Series = Series
module Alert = Alert
module Recorder = Recorder

type replica = { pid : int; profile : Profile.t }

type t = {
  registry : Registry.t;
  spans : Span.t;
  span_wire_bytes : int;
  mutable replicas : replica list;
  mutable divergence : (float * int) list;
  mutable journal : Journal.t option;
}

let create ?(span_wire_bytes = 0) ?journal () =
  {
    registry = Registry.create ();
    spans = Span.create ();
    span_wire_bytes;
    replicas = [];
    divergence = [];
    journal;
  }

let replica t pid =
  match List.find_opt (fun r -> r.pid = pid) t.replicas with
  | Some r -> r
  | None ->
    let r = { pid; profile = Profile.create () } in
    t.replicas <- r :: t.replicas;
    r

let adopt t (r : replica) =
  t.replicas <- r :: List.filter (fun x -> x.pid <> r.pid) t.replicas

let make_replica pid = { pid; profile = Profile.create () }

let record_divergence t ~time ~distinct =
  t.divergence <- (time, distinct) :: t.divergence

let divergence_series t = List.rev t.divergence

let pid_labels pid = [ ("pid", string_of_int pid) ]

let finalize t ~live =
  (* Visibility latency per origin replica; updates that never became
     visible at every live replica are counted, not averaged in. *)
  if Span.count t.spans > 0 then begin
    let invisible = Registry.counter t.registry "updates_invisible" in
    List.iter
      (fun ((info : Span.info), lat) ->
        match lat with
        | Some lat ->
          Registry.observe
            (Registry.hist t.registry ~labels:(pid_labels info.origin)
               "visibility_latency")
            lat
        | None -> Registry.inc invisible)
      (Span.visibility t.spans ~live)
  end;
  List.iter
    (fun r ->
      List.iter
        (fun (name, v) ->
          Registry.inc ~by:v
            (Registry.counter t.registry ~labels:(pid_labels r.pid) name))
        (Profile.to_rows r.profile))
    t.replicas;
  match t.divergence with
  | [] -> ()
  | (_, distinct) :: _ ->
    Registry.set (Registry.gauge t.registry "divergence_final")
      (float_of_int distinct);
    Registry.inc
      ~by:(List.length t.divergence)
      (Registry.counter t.registry "probes_taken")
