(** Export span events in Chrome/Perfetto [trace_event] JSON.

    The output loads in [ui.perfetto.dev] / [chrome://tracing]: each
    replica is a Perfetto "process" ([pid]), message transits render as
    complete slices ([ph:"X"]) on the destination replica with one
    track per sender, and invoke/apply instants are linked across
    replicas by flow events ([ph:"s"]/[ph:"f"]) keyed on the span id —
    so selecting one update shows its whole propagation fan-out.
    Simulated time (arbitrary units, conventionally ms) maps to trace
    microseconds at [×1000]. *)

val to_json :
  ?meta:(string * Json.t) list -> ?replicas:int -> Span.t -> Json.t
(** [{"traceEvents": [...], "displayTimeUnit": "ms"}]. When [replicas]
    is given, one [ph:"M"] "process_name" metadata event labels each
    replica's track; when [meta] is non-empty, a [ph:"M"]
    "ucsim_config" metadata event carries it as [args] — seed, replica
    count, log-core choice, batch window — making the trace file
    self-describing. Neither adds renderable events. *)

val pp_span_dump : Format.formatter -> Span.t -> unit
(** Compact OTLP-like dump, one block per span: id, label, origin,
    invocation time, then one line per delivery/apply. *)
