type labels = (string * string) list

type counter = { mutable n : int }

type gauge = { mutable v : float }

(* Histograms accumulate raw samples and are summarized/bucketed only at
   dump time; runs are bounded (one sample per message or update), so
   keeping the sample beats losing the quantiles to pre-bucketing. *)
type hist = { mutable samples : float list; mutable nsamples : int }

type metric = Counter of counter | Gauge of gauge | Hist of hist

type t = { mutable metrics : ((string * labels) * metric) list }

let create () = { metrics = [] }

let canon labels =
  List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let kind_name = function
  | Counter _ -> "counter"
  | Gauge _ -> "gauge"
  | Hist _ -> "histogram"

let find_or_add t name labels make check =
  let key = (name, canon labels) in
  match List.assoc_opt key t.metrics with
  | Some m -> check m
  | None ->
    let m = make () in
    t.metrics <- (key, m) :: t.metrics;
    check m

let wrong_kind name m want =
  invalid_arg
    (Printf.sprintf "Obs.Registry: %s is a %s, not a %s" name (kind_name m)
       want)

let counter t ?(labels = []) name =
  find_or_add t name labels
    (fun () -> Counter { n = 0 })
    (function Counter c -> c | m -> wrong_kind name m "counter")

let gauge t ?(labels = []) name =
  find_or_add t name labels
    (fun () -> Gauge { v = 0.0 })
    (function Gauge g -> g | m -> wrong_kind name m "gauge")

let hist t ?(labels = []) name =
  find_or_add t name labels
    (fun () -> Hist { samples = []; nsamples = 0 })
    (function Hist h -> h | m -> wrong_kind name m "histogram")

let inc ?(by = 1) c = c.n <- c.n + by

let counter_value c = c.n

let set g v = g.v <- v

let observe h x =
  h.samples <- x :: h.samples;
  h.nsamples <- h.nsamples + 1

let hist_count h = h.nsamples

(* ----------------------------- sharding ------------------------------- *)

(* A shard is a registry a single domain owns outright during a
   parallel run: the multicore engine hands one to each domain so hot
   paths never touch the shared registry's metric list (find-or-create
   mutates it), then folds the shards back with [merge] after the
   joins — the joins are the synchronisation points. *)
let shard _parent = create ()

let merge ~into src =
  List.iter
    (fun ((name, labels), m) ->
      match m with
      | Counter c -> inc ~by:c.n (counter into ~labels name)
      | Gauge g ->
        (* max, not last-write: the merge must be order-independent
           across shards, and every gauge the engine shards (mailbox
           depth) is a high-water mark. *)
        let dst = gauge into ~labels name in
        if g.v > dst.v then dst.v <- g.v
      | Hist h ->
        let dst = hist into ~labels name in
        List.iter (fun x -> observe dst x) (List.rev h.samples))
    (List.rev src.metrics)

(* ---------------------------- snapshots ------------------------------- *)

(* A cheap instantaneous reading of every metric for the time-series
   sampler: counters and gauges read directly, histograms contribute
   only their sample count — summarizing the raw samples each tick
   would cost O(n log n) per tick on an ever-growing list, exactly the
   unbounded work a soak sampler must not do. *)
let sample t =
  List.map
    (fun ((name, labels), m) ->
      match m with
      | Counter c -> (name, labels, float_of_int c.n)
      | Gauge g -> (name, labels, g.v)
      | Hist h -> (name ^ "_count", labels, float_of_int h.nsamples))
    t.metrics
  |> List.sort (fun (na, la, _) (nb, lb, _) ->
         let c = String.compare na nb in
         if c <> 0 then c else compare la lb)

(* ------------------------------- dumps -------------------------------- *)

type hist_dump = {
  count : int;
  sum : float;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max : float;
  buckets : (float * int) list;
}

type data = Count of int | Value of float | Histogram of hist_dump

type row = { name : string; labels : labels; data : data }

(* Log-bucket a sample: key k yields bound le = 2^k, covering (2^(k-1),
   2^k]. Everything <= 0 pools under le = 0 (latencies of exactly zero
   happen for self-delivery with no think time). *)
let log_buckets samples =
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun x ->
      let le =
        if x <= 0.0 then 0.0
        else Float.pow 2.0 (Float.ceil (Float.log2 x))
      in
      Hashtbl.replace tbl le (1 + Option.value ~default:0 (Hashtbl.find_opt tbl le)))
    samples;
  Hashtbl.fold (fun le c acc -> (le, c) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> Float.compare a b)

let dump_hist h =
  match h.samples with
  | [] ->
    {
      count = 0;
      sum = 0.0;
      mean = 0.0;
      p50 = 0.0;
      p90 = 0.0;
      p99 = 0.0;
      max = 0.0;
      buckets = [];
    }
  | samples ->
    let s = Stats.summarize samples in
    {
      count = s.Stats.count;
      sum = List.fold_left ( +. ) 0.0 samples;
      mean = s.Stats.mean;
      p50 = s.Stats.p50;
      p90 = s.Stats.p90;
      p99 = s.Stats.p99;
      max = s.Stats.max;
      buckets = log_buckets samples;
    }

(* pid=2 should sort before pid=10: compare label values numerically
   when both parse as integers. *)
let compare_label_value a b =
  match (int_of_string_opt a, int_of_string_opt b) with
  | Some x, Some y -> compare x y
  | _ -> String.compare a b

let rec compare_labels a b =
  match (a, b) with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | (ka, va) :: ra, (kb, vb) :: rb ->
    let c = String.compare ka kb in
    if c <> 0 then c
    else
      let c = compare_label_value va vb in
      if c <> 0 then c else compare_labels ra rb

let compare_row a b =
  let c = String.compare a.name b.name in
  if c <> 0 then c else compare_labels a.labels b.labels

let rows t =
  List.map
    (fun ((name, labels), m) ->
      let data =
        match m with
        | Counter c -> Count c.n
        | Gauge g -> Value g.v
        | Hist h -> Histogram (dump_hist h)
      in
      { name; labels; data })
    t.metrics
  |> List.sort compare_row

let labels_string labels =
  match labels with
  | [] -> ""
  | _ ->
    "{"
    ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)
    ^ "}"

let pp_rows ppf rows =
  let key r = r.name ^ labels_string r.labels in
  let width =
    List.fold_left (fun w r -> max w (String.length (key r))) 0 rows
  in
  List.iter
    (fun r ->
      Format.fprintf ppf "%-*s  " width (key r);
      (match r.data with
      | Count n -> Format.fprintf ppf "%d" n
      | Value v -> Format.fprintf ppf "%g" v
      | Histogram h ->
        Format.fprintf ppf
          "count=%d mean=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f" h.count
          h.mean h.p50 h.p90 h.p99 h.max);
      Format.fprintf ppf "@.")
    rows

let pp ppf t = pp_rows ppf (rows t)

(* ----------------------------- JSON dump ------------------------------ *)

let row_to_json r =
  let labels = Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) r.labels) in
  let base = [ ("name", Json.Str r.name); ("labels", labels) ] in
  let rest =
    match r.data with
    | Count n -> [ ("type", Json.Str "counter"); ("value", Json.Num (float_of_int n)) ]
    | Value v -> [ ("type", Json.Str "gauge"); ("value", Json.Num v) ]
    | Histogram h ->
      [
        ("type", Json.Str "histogram");
        ("count", Json.Num (float_of_int h.count));
        ("sum", Json.Num h.sum);
        ("mean", Json.Num h.mean);
        ("p50", Json.Num h.p50);
        ("p90", Json.Num h.p90);
        ("p99", Json.Num h.p99);
        ("max", Json.Num h.max);
        ( "buckets",
          Json.Arr
            (List.map
               (fun (le, c) ->
                 Json.Obj
                   [ ("le", Json.Num le); ("count", Json.Num (float_of_int c)) ])
               h.buckets) );
      ]
  in
  Json.Obj (base @ rest)

let version = 1

let rows_to_json rows =
  Json.Obj
    [
      ("registry", Json.Str "ucsim");
      ("version", Json.Num (float_of_int version));
      ("metrics", Json.Arr (List.map row_to_json rows));
    ]

let to_json t = rows_to_json (rows t)

let fail fmt = Printf.ksprintf failwith fmt

let need what = function
  | Some v -> v
  | None -> fail "registry dump: missing or ill-typed %s" what

let row_of_json j =
  let open Json in
  let name = need "name" (Option.bind (member "name" j) get_str) in
  let labels =
    match member "labels" j with
    | Some (Obj fields) ->
      List.map
        (fun (k, v) -> (k, need ("label " ^ k) (get_str v)))
        fields
    | None | Some Null -> []
    | Some _ -> fail "registry dump: labels of %s is not an object" name
  in
  let num key = need (key ^ " of " ^ name) (Option.bind (member key j) get_num) in
  let data =
    match need "type" (Option.bind (member "type" j) get_str) with
    | "counter" -> Count (int_of_float (num "value"))
    | "gauge" -> Value (num "value")
    | "histogram" ->
      let buckets =
        match Option.bind (member "buckets" j) get_list with
        | None -> []
        | Some items ->
          List.map
            (fun b ->
              ( need "bucket le" (Option.bind (member "le" b) get_num),
                need "bucket count" (Option.bind (member "count" b) get_int) ))
            items
      in
      Histogram
        {
          count = int_of_float (num "count");
          sum = num "sum";
          mean = num "mean";
          p50 = num "p50";
          p90 = num "p90";
          p99 = num "p99";
          max = num "max";
          buckets;
        }
    | k -> fail "registry dump: unknown metric type %s" k
  in
  { name; labels; data }

(* --------------------------- dump merging ----------------------------- *)

(* `ucsim report a.json b.json ...` renders per-domain shard dumps as
   one table. Counters add and gauges take the max (order-independent,
   like [merge]). Histogram rows are already summarized, so the raw
   samples are gone: counts, sums, maxima and log2 buckets combine
   exactly, the mean is recomputed from sum/count, and the quantiles
   are re-read from the merged buckets — each answer is a bucket upper
   bound, i.e. exact to within the 2x bucket resolution. *)

let bucket_quantile buckets total q =
  if total = 0 then 0.0
  else begin
    let target = q *. float_of_int total in
    let rec go cum = function
      | [] -> ( match List.rev buckets with [] -> 0.0 | (le, _) :: _ -> le)
      | (le, c) :: rest ->
        let cum = cum + c in
        if float_of_int cum >= target then le else go cum rest
    in
    go 0 buckets
  end

let merge_hist_dump a b =
  let count = a.count + b.count in
  let sum = a.sum +. b.sum in
  let buckets =
    let tbl = Hashtbl.create 16 in
    List.iter
      (fun (le, c) ->
        Hashtbl.replace tbl le
          (c + Option.value ~default:0 (Hashtbl.find_opt tbl le)))
      (a.buckets @ b.buckets);
    Hashtbl.fold (fun le c acc -> (le, c) :: acc) tbl []
    |> List.sort (fun (x, _) (y, _) -> Float.compare x y)
  in
  {
    count;
    sum;
    mean = (if count = 0 then 0.0 else sum /. float_of_int count);
    p50 = bucket_quantile buckets count 0.5;
    p90 = bucket_quantile buckets count 0.9;
    p99 = bucket_quantile buckets count 0.99;
    max = Float.max a.max b.max;
    buckets;
  }

let merge_data name a b =
  match (a, b) with
  | Count x, Count y -> Count (x + y)
  | Value x, Value y -> Value (Float.max x y)
  | Histogram x, Histogram y -> Histogram (merge_hist_dump x y)
  | _ ->
    fail "registry merge: %s has conflicting metric kinds across dumps" name

let merge_rows dumps =
  let acc = ref [] in
  List.iter
    (List.iter (fun r ->
         let key = (r.name, canon r.labels) in
         match List.assoc_opt key !acc with
         | None -> acc := (key, r) :: !acc
         | Some prev ->
           acc :=
             (key, { r with data = merge_data r.name prev.data r.data })
             :: List.remove_assoc key !acc))
    dumps;
  List.map snd !acc |> List.sort compare_row

let rows_of_json j =
  (* Dumps written before the version field existed carry none and
     still parse; a dump that declares a version we don't speak is
     rejected rather than misread. *)
  (match Option.bind (Json.member "version" j) Json.get_int with
  | None -> ()
  | Some v when v = version -> ()
  | Some v -> fail "registry dump: unsupported version %d (expected %d)" v version);
  match Option.bind (Json.member "metrics" j) Json.get_list with
  | Some items -> List.map row_of_json items
  | None -> fail "registry dump: no \"metrics\" array"
