type predicate =
  | Above of float
  | Below of float
  | Monotone_growth of int
  | Slo_breach of float

type rule = { series : string; pred : predicate }

let rule_to_string r =
  match r.pred with
  | Above v -> Printf.sprintf "above:%s:%g" r.series v
  | Below v -> Printf.sprintf "below:%s:%g" r.series v
  | Monotone_growth k -> Printf.sprintf "growth:%s:%d" r.series k
  | Slo_breach v -> Printf.sprintf "slo:%s:%g" r.series v

let rule_of_string s =
  let fail () =
    invalid_arg
      (Printf.sprintf
         "Alert.rule_of_string: %S (want above:SERIES:V | below:SERIES:V | \
          growth:SERIES:K | slo:SERIES:TARGET)"
         s)
  in
  match String.split_on_char ':' s with
  | [ "above"; series; v ] -> (
    match float_of_string_opt v with
    | Some v -> { series; pred = Above v }
    | None -> fail ())
  | [ "below"; series; v ] -> (
    match float_of_string_opt v with
    | Some v -> { series; pred = Below v }
    | None -> fail ())
  | [ "growth"; series; k ] -> (
    match int_of_string_opt k with
    | Some k when k >= 2 -> { series; pred = Monotone_growth k }
    | _ -> fail ())
  | [ "slo"; series; target ] -> (
    match float_of_string_opt target with
    | Some target -> { series; pred = Slo_breach target }
    | None -> fail ())
  | _ -> fail ()

type firing = { rule : rule; time : float; series : string; value : float }

type t = {
  mutable armed : rule list;
  mutable rev_fired : firing list;
  mutable on_fire : firing -> unit;
}

let create rules =
  { armed = rules; rev_fired = []; on_fire = (fun _ -> ()) }

let fired t = List.rev t.rev_fired

let rules t = t.armed @ List.map (fun f -> f.rule) (fired t)

(* A rule trips on the last reading of any series carrying its name;
   Monotone_growth instead wants the retained skeleton — [k] strictly
   increasing points proves sustained growth at every timescale the
   ring has decimated through, which is exactly the unbounded-log
   signature ROADMAP item 3 hunts for. *)
let evaluate (rule : rule) (labels, ring) =
  if Series.ring_pushes ring = 0 then None
  else
    let last = Series.ring_last ring in
    let offending () =
      rule.series ^ Series.(labels_string labels)
    in
    match rule.pred with
    | Above v -> if last > v then Some (offending (), last) else None
    | Below v -> if last < v then Some (offending (), last) else None
    | Slo_breach target -> if last > target then Some (offending (), last) else None
    | Monotone_growth k ->
      let points = Series.ring_points ring in
      let n = List.length points in
      if n < k then None
      else
        let tail = List.filteri (fun i _ -> i >= n - k) points in
        let rec strictly_up = function
          | (_, a) :: ((_, b) :: _ as rest) ->
            if a < b then strictly_up rest else false
          | _ -> true
        in
        if strictly_up tail then Some (offending (), last) else None

let step t store ~now =
  let still_armed, fired_now =
    List.partition_map
      (fun rule ->
        let hit =
          List.find_map (evaluate rule) (Series.find_named store rule.series)
        in
        match hit with
        | None -> Either.Left rule
        | Some (series, value) -> Either.Right { rule; time = now; series; value })
      t.armed
  in
  (* Latch: a fired rule disarms, so a week of breach journals one
     Alert event, not one per tick. *)
  t.armed <- still_armed;
  List.iter
    (fun f ->
      t.rev_fired <- f :: t.rev_fired;
      t.on_fire f)
    fired_now;
  fired_now

let attach t sampler ~on_fire =
  t.on_fire <- on_fire;
  Series.on_tick sampler (fun now ->
      ignore (step t (Series.store sampler) ~now))
