(** The telemetry bundle threaded through a simulation.

    One [Obs.t] per run, created by the caller (e.g. [ucsim run --obs])
    and handed to {!Runner} and {!Network}; everything downstream of a
    [None] stays on the seed code path, bit-identical to an
    un-instrumented run. The bundle owns:

    {ul
    {- a metric {!Registry} for per-replica counters and latency
       histograms;}
    {- a {!Span} collector tracing each update from invocation through
       per-replica apply;}
    {- per-replica {!Profile} records that the op-log substrate bumps
       directly;}
    {- the divergence time series fed by the convergence probe.}}

    {!finalize} folds profiles, visibility latencies, and the final
    divergence into the registry once the run ends. *)

module Json = Json
module Registry = Registry
module Span = Span
module Profile = Profile
module Trace_export = Trace_export
module Journal = Journal
module Monitor = Monitor
module Series = Series
module Alert = Alert
module Recorder = Recorder

(** Per-replica handle, passed to protocol replicas via
    [Protocol.ctx.obs]. *)
type replica = { pid : int; profile : Profile.t }

type t = {
  registry : Registry.t;
  spans : Span.t;
  span_wire_bytes : int;
      (** accounting cost, in bytes, of the span stamp on each traced
          message; 0 keeps wire-byte metrics identical to seed *)
  mutable replicas : replica list;  (** use {!replica}, not this *)
  mutable divergence : (float * int) list;
      (** newest first; use {!divergence_series} *)
  mutable journal : Journal.t option;
      (** when set, {!Runner} and {!Network} record every simulation
          event into it; [None] (the default) records nothing *)
}

val create : ?span_wire_bytes:int -> ?journal:Journal.t -> unit -> t
(** [span_wire_bytes] defaults to [0]; [journal] to [None]. *)

val replica : t -> int -> replica
(** Find-or-create the handle for [pid]. {b Not domain-safe}: the walk
    over (and consing onto) the shared replica list is a data race if
    two domains call it concurrently — multicore callers must build
    their handles with {!make_replica} inside each domain and hand them
    to {!adopt} after the joins. *)

val make_replica : int -> replica
(** A detached handle (fresh profile), not registered anywhere — the
    multicore engine creates one per domain, inside the domain, so no
    shared state is touched on the hot path. *)

val adopt : t -> replica -> unit
(** Register a detached handle built with {!make_replica}, replacing
    any existing handle for the same pid. Call from the collector,
    after the writing domain has joined. *)

val record_divergence : t -> time:float -> distinct:int -> unit
(** One probe sample: [distinct] state fingerprints among live replicas
    at simulated time [time]. *)

val divergence_series : t -> (float * int) list
(** Probe samples in chronological order. *)

val finalize : t -> live:int list -> unit
(** Fold end-of-run derived metrics into the registry:
    [visibility_latency{pid=origin}] histograms and the
    [updates_invisible] counter from the span collector, [oplog_*{pid}]
    counters from the profiles, [probes_taken] and [divergence_final]
    from the probe series. Call once, after the run completes. *)
