type id = int

type event =
  | Invoke of { span : id; pid : int; time : float; label : string; local : bool }
  | Send of { span : id option; src : int; time : float }
  | Deliver of {
      span : id option;
      src : int;
      dst : int;
      sent : float;
      received : float;
    }
  | Apply of { span : id option; pid : int; time : float }

type t = {
  mutable next : id;
  mutable events : event list;  (* newest first *)
  mutable ambient : id option;
}

let create () = { next = 0; events = []; ambient = None }

let push t e = t.events <- e :: t.events

let fresh ?(local = false) t ~pid ~time ~label =
  let span = t.next in
  t.next <- span + 1;
  push t (Invoke { span; pid; time; label; local });
  span

let set_active t s = t.ambient <- s

let active t = t.ambient

let record_send t ~span ~src ~time =
  push t (Send { span; src; time })

let record_deliver t ~span ~src ~dst ~sent ~received =
  push t (Deliver { span; src; dst; sent; received })

let record_apply t ~span ~pid ~time =
  push t (Apply { span; pid; time })

let events t = List.rev t.events

let count t = t.next

(* ----------------------------- aggregation ---------------------------- *)

type info = {
  id : id;
  origin : int;
  label : string;
  local : bool;
  invoked : float;
  sends : (int * float) list;
  delivers : (int * int * float * float) list;
  applies : (int * float) list;
}

let spans t =
  let by_id = Hashtbl.create 64 in
  let get span =
    match Hashtbl.find_opt by_id span with
    | Some r -> r
    | None ->
      let r =
        ref
          {
            id = span;
            origin = -1;
            label = "";
            local = false;
            invoked = 0.0;
            sends = [];
            delivers = [];
            applies = [];
          }
      in
      Hashtbl.add by_id span r;
      r
  in
  List.iter
    (function
      | Invoke { span; pid; time; label; local } ->
        let r = get span in
        r := { !r with origin = pid; label; local; invoked = time }
      | Send { span = Some span; src; time } ->
        let r = get span in
        r := { !r with sends = (src, time) :: !r.sends }
      | Deliver { span = Some span; src; dst; sent; received } ->
        let r = get span in
        r := { !r with delivers = (src, dst, sent, received) :: !r.delivers }
      | Apply { span = Some span; pid; time } ->
        let r = get span in
        r := { !r with applies = (pid, time) :: !r.applies }
      | Send { span = None; _ } | Deliver { span = None; _ }
      | Apply { span = None; _ } ->
        ())
    t.events;
  (* t.events is newest-first, so the folded lists come out in recording
     order already. *)
  List.init t.next (fun id ->
      match Hashtbl.find_opt by_id id with
      | Some r -> !r
      | None ->
        {
          id;
          origin = -1;
          label = "";
          local = false;
          invoked = 0.0;
          sends = [];
          delivers = [];
          applies = [];
        })

let visibility t ~live =
  (* Local spans (query invocations) never propagate, so they have no
     visibility latency and would otherwise all count as invisible. *)
  List.filter_map
    (fun info ->
      if info.local then None
      else
        let lat =
          List.fold_left
            (fun acc pid ->
              match acc with
              | None -> None
              | Some worst -> (
                match List.assoc_opt pid info.applies with
                | Some at -> Some (Float.max worst (at -. info.invoked))
                | None -> None))
            (Some 0.0) live
        in
        Some (info, lat))
    (spans t)
