(* Per-domain flight recording.

   The hot path is [put]: one bounds check, five stores into the
   current chunk, no allocation until a chunk fills (and then one
   [Bytes.create], amortised over [chunk] records). Handles are
   strictly domain-private; nothing here is atomic because nothing is
   shared — the engine obtains every handle before spawning and reads
   the buffers only after the joins.

   Record layout (29 bytes, little-endian):
     0     kind      (1 byte)
     1..4  a         (int32: dst for send/stall, src for deliver)
     5..8  b         (int32: message count)
     9..12 c         (int32: frame bytes for send, delivery seq for deliver)
     13..20 lamport  (int64)
     21..28 wall     (float bits)
   The per-domain sequence number is the record's position in its
   domain's stream and is not stored. *)

let record_size = 29

let k_update = 0

let k_query = 1

let k_query_omega = 2

let k_send = 3

let k_deliver = 4

let k_stall = 5

type clock = { mutable fn : (unit -> float) option }

type handle = {
  pid : int;
  clock : clock;
  chunk_records : int;
  mutable filled : Bytes.t list;  (* full chunks, newest first *)
  mutable cur : Bytes.t;
  mutable used : int;  (* records in [cur] *)
  mutable total : int;  (* records appended = next per-domain seq *)
  mutable lam : int;
  mutable dseq : int;  (* next delivery sequence number *)
}

type t = { clock : clock; handles : handle array }

let create ?now ?(chunk = 4096) ~domains () =
  if domains <= 0 then invalid_arg "Recorder.create: domains must be positive";
  if chunk < 1 then invalid_arg "Recorder.create: chunk must be positive";
  let clock = { fn = now } in
  {
    clock;
    handles =
      Array.init domains (fun pid ->
          {
            pid;
            clock;
            chunk_records = chunk;
            filled = [];
            cur = Bytes.create (chunk * record_size);
            used = 0;
            total = 0;
            lam = 0;
            dseq = 0;
          });
  }

let install_clock t f = if t.clock.fn = None then t.clock.fn <- Some f

let handle t pid =
  if pid < 0 || pid >= Array.length t.handles then
    invalid_arg "Recorder.handle: pid out of range";
  t.handles.(pid)

let put h kind a b c lamport =
  if h.used = h.chunk_records then begin
    h.filled <- h.cur :: h.filled;
    h.cur <- Bytes.create (h.chunk_records * record_size);
    h.used <- 0
  end;
  let off = h.used * record_size in
  let wall = match h.clock.fn with None -> 0.0 | Some f -> f () in
  Bytes.set_uint8 h.cur off kind;
  Bytes.set_int32_le h.cur (off + 1) (Int32.of_int a);
  Bytes.set_int32_le h.cur (off + 5) (Int32.of_int b);
  Bytes.set_int32_le h.cur (off + 9) (Int32.of_int c);
  Bytes.set_int64_le h.cur (off + 13) (Int64.of_int lamport);
  Bytes.set_int64_le h.cur (off + 21) (Int64.bits_of_float wall);
  h.used <- h.used + 1;
  h.total <- h.total + 1

let tick h =
  h.lam <- h.lam + 1;
  h.lam

let invoke_update h = put h k_update 0 0 0 (tick h)

let invoke_query h ~omega =
  put h (if omega then k_query_omega else k_query) 0 0 0 (tick h)

let send h ~dst ~count ~bytes =
  let lam = tick h in
  put h k_send dst count bytes lam;
  lam

let deliver h ~src ~count ~frame_lamport =
  h.lam <- (if frame_lamport > h.lam then frame_lamport else h.lam) + 1;
  put h k_deliver src count h.dseq h.lam;
  h.dseq <- h.dseq + 1

let stall h ~dst = put h k_stall dst 0 0 (tick h)

let recorded t =
  Array.fold_left (fun acc h -> acc + h.total) 0 t.handles

type event =
  | Invoke_update of { pid : int; seq : int; lamport : int; wall : float }
  | Invoke_query of {
      pid : int;
      seq : int;
      lamport : int;
      wall : float;
      omega : bool;
    }
  | Send of {
      pid : int;
      seq : int;
      lamport : int;
      wall : float;
      dst : int;
      count : int;
      bytes : int;
    }
  | Deliver of {
      pid : int;
      seq : int;
      lamport : int;
      wall : float;
      src : int;
      count : int;
      dseq : int;
    }
  | Stall of { pid : int; seq : int; lamport : int; wall : float; dst : int }

let event_pid = function
  | Invoke_update { pid; _ }
  | Invoke_query { pid; _ }
  | Send { pid; _ }
  | Deliver { pid; _ }
  | Stall { pid; _ } -> pid

let event_lamport = function
  | Invoke_update { lamport; _ }
  | Invoke_query { lamport; _ }
  | Send { lamport; _ }
  | Deliver { lamport; _ }
  | Stall { lamport; _ } -> lamport

let event_wall = function
  | Invoke_update { wall; _ }
  | Invoke_query { wall; _ }
  | Send { wall; _ }
  | Deliver { wall; _ }
  | Stall { wall; _ } -> wall

let event_seq = function
  | Invoke_update { seq; _ }
  | Invoke_query { seq; _ }
  | Send { seq; _ }
  | Deliver { seq; _ }
  | Stall { seq; _ } -> seq

let decode_record pid seq buf off =
  let a = Int32.to_int (Bytes.get_int32_le buf (off + 1)) in
  let b = Int32.to_int (Bytes.get_int32_le buf (off + 5)) in
  let c = Int32.to_int (Bytes.get_int32_le buf (off + 9)) in
  let lamport = Int64.to_int (Bytes.get_int64_le buf (off + 13)) in
  let wall = Int64.float_of_bits (Bytes.get_int64_le buf (off + 21)) in
  match Bytes.get_uint8 buf off with
  | k when k = k_update -> Invoke_update { pid; seq; lamport; wall }
  | k when k = k_query -> Invoke_query { pid; seq; lamport; wall; omega = false }
  | k when k = k_query_omega ->
    Invoke_query { pid; seq; lamport; wall; omega = true }
  | k when k = k_send ->
    Send { pid; seq; lamport; wall; dst = a; count = b; bytes = c }
  | k when k = k_deliver ->
    Deliver { pid; seq; lamport; wall; src = a; count = b; dseq = c }
  | k when k = k_stall -> Stall { pid; seq; lamport; wall; dst = a }
  | k -> invalid_arg (Printf.sprintf "Recorder: corrupt record kind %d" k)

let decode_handle h acc =
  (* Chunks oldest-first; fold right-to-left so the accumulator conses
     into a list that is already in stream order. *)
  let chunks = List.rev ((h.cur, h.used) :: List.map (fun c -> (c, h.chunk_records)) h.filled) in
  let seq = ref h.total in
  List.fold_right
    (fun (buf, used) acc ->
      let acc = ref acc in
      for i = used - 1 downto 0 do
        decr seq;
        acc := decode_record h.pid !seq buf (i * record_size) :: !acc
      done;
      !acc)
    chunks acc

let events t =
  let all = Array.fold_left (fun acc h -> decode_handle h acc) [] t.handles in
  (* (lamport, pid, seq): a linear extension of happens-before — the
     clock discipline puts every send strictly before its deliver, and
     within a domain the clock (and seq) strictly increase, so program
     order survives the merge. pid breaks cross-domain ties
     deterministically. *)
  List.sort
    (fun a b ->
      let c = compare (event_lamport a) (event_lamport b) in
      if c <> 0 then c
      else
        let c = compare (event_pid a) (event_pid b) in
        if c <> 0 then c else compare (event_seq a) (event_seq b))
    all
