(** Online consistency monitors.

    The post-hoc checkers in [lib/history] decide EC/PC/UC over a
    complete history; a monitor decides them {e as the history grows},
    one event at a time, and reports the first event whose arrival
    makes the observed prefix fail — with the event's journal index and
    {!Span} causal id, so the violation can be located in a trace or
    re-reached with [ucsim replay --until].

    The monitors keep memoized state instead of re-running the
    predicates on every prefix:

    {ul
    {- {b PC} maintains, per process [p], the frontier of reachable
       configurations of the interleaving automaton whose rows are
       [p]'s own line plus the other processes' update subsequences
       (exactly {!Check_pc}'s search space). Updates extend rows in
       O(1); a query forces a memoized closure; an empty frontier is
       the violation.}
    {- {b UC} folds updates into a running linearization and memoizes
       the last witness state; only when both fail an ω read does it
       fall back to {!Check_uc} on the prefix.}
    {- {b EC} accumulates ω read pairs and asks the spec's
       [satisfiable]; probe samples feed the divergence summary.}}

    On a journal produced by a run the first monitor violation index
    coincides with the first prefix on which the post-hoc predicate
    fails. (On adversarially ordered abstract feeds a later update can
    in principle absolve an earlier failing prefix — see the prefix
    semantics note in DESIGN.md §4e — so a violation is always
    confirmed against the post-hoc checker by the test suite.) *)

type criterion = Uc | Ec | Pc

val criterion_name : criterion -> string
(** ["uc"], ["ec"], ["pc"] — the [--monitor] spelling. *)

val criterion_of_name : string -> criterion option

type violation = {
  criterion : criterion;
  index : int;  (** journal event index of the violating event *)
  span : int option;  (** its causal span id, when the run traces spans *)
  pid : int;  (** process whose prefix became inexplicable *)
  reason : string;
}

val pp_violation : Format.formatter -> violation -> unit

module Make (A : Uqadt.S) : sig
  type t

  val create : n:int -> criteria:criterion list -> t

  val on_update :
    t -> pid:int -> index:int -> span:int option -> A.update -> unit

  val on_query :
    t ->
    pid:int ->
    index:int ->
    span:int option ->
    omega:bool ->
    A.query ->
    A.output ->
    unit
  (** Feed a completed query with its output. Non-ω queries concern
      only the PC monitor; ω reads feed all three. *)

  val on_probe : t -> time:float -> distinct:int -> unit
  (** Feed a convergence-probe sample (EC divergence summary only —
      divergence is not by itself a violation). *)

  val violations : t -> violation list
  (** Chronological; at most one per criterion (monitors stop at their
      first violation). *)

  val first_violation : t -> violation option

  val clean : t -> bool

  val events_seen : t -> int

  val work : t -> int
  (** Abstract-machine steps (state applications, query evaluations,
      closure expansions) spent so far — the bench's per-event overhead
      numerator. *)

  val divergence : t -> (float * int) option * int
  (** [(last probe sample, peak distinct)] from {!on_probe}. *)
end
