type t = {
  mutable inserts : int;
  mutable appends : int;
  mutable shift_distance : int;
  mutable replays : int;
  mutable replay_steps : int;
  mutable checkpoint_hits : int;
  mutable checkpoint_misses : int;
  mutable checkpoints_taken : int;
  mutable checkpoints_dropped : int;
  mutable compactions : int;
  mutable compacted_entries : int;
  mutable undo_repairs : int;
}

let create () =
  {
    inserts = 0;
    appends = 0;
    shift_distance = 0;
    replays = 0;
    replay_steps = 0;
    checkpoint_hits = 0;
    checkpoint_misses = 0;
    checkpoints_taken = 0;
    checkpoints_dropped = 0;
    compactions = 0;
    compacted_entries = 0;
    undo_repairs = 0;
  }

let to_rows t =
  List.filter
    (fun (_, v) -> v <> 0)
    [
      ("oplog_inserts", t.inserts);
      ("oplog_appends", t.appends);
      ("oplog_shift_distance", t.shift_distance);
      ("oplog_replays", t.replays);
      ("oplog_replay_steps", t.replay_steps);
      ("oplog_checkpoint_hits", t.checkpoint_hits);
      ("oplog_checkpoint_misses", t.checkpoint_misses);
      ("oplog_checkpoints_taken", t.checkpoints_taken);
      ("oplog_checkpoints_dropped", t.checkpoints_dropped);
      ("oplog_compactions", t.compactions);
      ("oplog_compacted_entries", t.compacted_entries);
      ("undo_repairs", t.undo_repairs);
    ]
