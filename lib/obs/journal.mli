(** Append-only structured event journal for a simulation run.

    One journal per run, attached through {!Obs.t} ([obs.journal]); the
    {!Runner} and {!Network} record every invocation, wire frame,
    delivery, drop, crash, partition window, and convergence-probe
    sample as it happens, in simulated-time order. The journal is
    self-describing: the header carries the run's seed and
    configuration (set by the CLI), each operation event carries its
    {!Span} causal id, and the footer carries the fingerprint of the
    extracted history — enough for [ucsim replay] to re-execute the
    schedule deterministically and verify it reproduced the same run.

    The serialized form is JSONL via {!Json}: one header line
    [{"journal":"ucsim","version":1,...config...}], one line per event
    (discriminated by the ["ev"] field), and one footer line
    [{"fingerprint":...,"events":N}]. Event {e indices} — as reported
    by the online {!Monitor} and accepted by [ucsim replay --until] —
    are 0-based positions in the event body, header and footer
    excluded. *)

type event =
  | Update of { pid : int; time : float; span : int option; label : string }
  | Query of {
      pid : int;
      invoked : float;
      completed : float;
      span : int option;
      label : string;
      output : string;
      omega : bool;  (** a final read, repeated infinitely *)
    }
  | Frame of {
      src : int;
      dst : int;
      count : int;  (** messages in the frame *)
      bytes : int;  (** wire bytes charged, envelope included *)
      sent : float;
      arrival : float;
      spans : int option list;
    }  (** one wire frame leaving the network layer *)
  | Deliver of { src : int; dst : int; count : int; time : float }
  | Drop of { pid : int; count : int; time : float }
      (** messages dropped at a crashed sender or destination *)
  | Crash of { pid : int; time : float }
  | Join of { pid : int; time : float; rejoin : bool; bytes : int }
      (** churn: replica attached ([rejoin] when resuming its own
          crash-time state); [bytes] is the catch-up snapshot volume
          transferred from the donor peer (0 when no donor was
          reachable) *)
  | Leave of { pid : int; time : float }
      (** churn: replica detached from the wire, state retained *)
  | Partition of { from_time : float; to_time : float; group : int list }
      (** nemesis window, recorded up front (the schedule is static) *)
  | Probe of { time : float; distinct : int }
      (** convergence probe: distinct state fingerprints among live
          replicas *)
  | Rebalance of {
      time : float;
      hot : int;
      fresh : int;
      shards : int;
      moved : int;
    }
      (** hot-shard split: shard [hot] shed keys to new shard [fresh],
          leaving [shards] on the ring; [moved] log entries were
          re-homed at the splitting replica (the rest migrate lazily) *)
  | Shard of { time : float; shard : int; ops : int; log : int }
      (** per-shard op-rate sample at a rebalance check: [ops] updates
          routed to [shard] in the closing window, [log] its local log
          length at the sampling replica *)
  | Alert of { time : float; rule : string; series : string; value : float }
      (** a soak alert rule fired at a sample tick: [rule] is the
          canonical rule string, [series] the offending series (labels
          included), [value] the reading that tripped it *)
  | Stall of { pid : int; dst : int; time : float }
      (** multicore backpressure: a frame [pid] pushed toward [dst]
          found the destination mailbox full and took the
          drain-own-mailbox slow path (recorded once per stalled frame,
          not per retry) — only the flight recorder of the parallel
          engine emits these *)

type t

exception Parse_error of string

val create : ?header:(string * Json.t) list -> unit -> t

val set_header : t -> (string * Json.t) list -> unit
(** Replace the self-description fields serialized on the header line
    (seed, protocol, log-core choice, …). The ["journal"] and
    ["version"] discriminators are added at serialization time. *)

val header : t -> (string * Json.t) list

val record : t -> event -> unit

val length : t -> int
(** Events recorded so far — also the index the next event will get. *)

val events : t -> event list
(** In recording order. *)

val event : t -> int -> event
(** @raise Invalid_argument if the index is out of range. *)

val seal : t -> fingerprint:string -> unit
(** Attach the {!History.fingerprint} of the extracted history, written
    to the footer line. *)

val fingerprint : t -> string option

val event_time : event -> float

val event_to_json : event -> Json.t

val event_of_json : Json.t -> event
(** @raise Parse_error on an unknown kind or a missing field. *)

val to_jsonl : t -> string

val of_jsonl : string -> t
(** @raise Parse_error on malformed JSON, a missing or foreign header,
    a missing footer (truncation), or an event count that contradicts
    the footer. Messages include the offending line number. *)

val pp_event : Format.formatter -> event -> unit

val diff : t -> t -> (int * string * string) option
(** First structural divergence between two journals: [Some (i, a, b)]
    where [i] is the first event index at which the timestamp-ordered
    streams disagree and [a]/[b] render each side's event at that index
    (["(end of journal)"] if one side is exhausted); [None] if the
    journals are identical event for event. Headers and fingerprints
    are not compared — use {!fingerprint} for that. *)
