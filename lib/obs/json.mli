(** A minimal JSON tree, printer and parser.

    The telemetry layer exports registry dumps and Chrome/Perfetto
    traces as JSON, and [ucsim report] reads registry dumps back; the
    repo deliberately has no JSON dependency, so this module carries
    just enough of RFC 8259 for those round trips: objects, arrays,
    strings (with escapes, including [\uXXXX] decoded to UTF-8),
    numbers, booleans and null. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

val to_string : ?pretty:bool -> t -> string
(** Serialize. With [pretty] (default [false]) objects and arrays break
    over indented lines; numbers that are integral print without a
    fraction part. *)

exception Parse_error of string

val of_string : string -> t
(** Parse a complete JSON document.
    @raise Parse_error on malformed input or trailing garbage. *)

(** {2 Accessors} — total lookups returning [option]. *)

val member : string -> t -> t option
(** Field of an object; [None] on missing field or non-object. *)

val get_str : t -> string option

val get_num : t -> float option

val get_int : t -> int option

val get_list : t -> t list option
