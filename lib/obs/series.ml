type labels = (string * string) list

(* Same numeric-aware ordering as the registry: pid=2 before pid=10. *)
let compare_label_value a b =
  match (int_of_string_opt a, int_of_string_opt b) with
  | Some x, Some y -> compare x y
  | _ -> String.compare a b

let rec compare_labels a b =
  match (a, b) with
  | [], [] -> 0
  | [], _ -> -1
  | _, [] -> 1
  | (ka, va) :: ra, (kb, vb) :: rb ->
    let c = String.compare ka kb in
    if c <> 0 then c
    else
      let c = compare_label_value va vb in
      if c <> 0 then c else compare_labels ra rb

let canon labels = List.sort (fun (a, _) (b, _) -> String.compare a b) labels

let compare_key (na, la) (nb, lb) =
  let c = String.compare na nb in
  if c <> 0 then c else compare_labels la lb

let labels_string labels =
  match labels with
  | [] -> ""
  | _ ->
    "{" ^ String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels) ^ "}"

(* ------------------------------- rings -------------------------------- *)

(* A decimating downsampler: the ring accepts every [stride]-th push and,
   when full, discards every other retained sample and doubles the
   stride. Memory is pinned at [cap] slots forever — a week-long soak
   holds the same array as a ten-second smoke — while the retained
   points stay an evenly spaced skeleton of the whole run: pushes
   [0, stride, 2*stride, ...]. Min/max/last are tracked over every
   push, so decimation never loses the extremes. *)
type ring = {
  cap : int;
  times : float array;
  values : float array;
  mutable len : int;
  mutable stride : int;
  mutable pushes : int;
  mutable vmin : float;
  mutable vmax : float;
  mutable last : float;
  mutable last_time : float;
}

let ring ~capacity =
  if capacity < 2 then invalid_arg "Series.ring: capacity must be >= 2";
  {
    cap = capacity;
    times = Array.make capacity 0.0;
    values = Array.make capacity 0.0;
    len = 0;
    stride = 1;
    pushes = 0;
    vmin = 0.0;
    vmax = 0.0;
    last = 0.0;
    last_time = 0.0;
  }

let ring_push r ~time ~value =
  if r.pushes = 0 then begin
    r.vmin <- value;
    r.vmax <- value
  end
  else begin
    if value < r.vmin then r.vmin <- value;
    if value > r.vmax then r.vmax <- value
  end;
  r.last <- value;
  r.last_time <- time;
  if r.pushes mod r.stride = 0 then begin
    if r.len = r.cap then begin
      let kept = (r.len + 1) / 2 in
      for i = 0 to kept - 1 do
        r.times.(i) <- r.times.(2 * i);
        r.values.(i) <- r.values.(2 * i)
      done;
      r.len <- kept;
      r.stride <- 2 * r.stride
    end;
    (* After a halving the grid coarsened; this push may now sit at an
       odd multiple of the new stride — if so it is dropped, keeping
       the retained points evenly spaced. *)
    if r.pushes mod r.stride = 0 then begin
      r.times.(r.len) <- time;
      r.values.(r.len) <- value;
      r.len <- r.len + 1
    end
  end;
  r.pushes <- r.pushes + 1

let ring_length r = r.len

let ring_capacity r = r.cap

let ring_stride r = r.stride

let ring_pushes r = r.pushes

let ring_points r = List.init r.len (fun i -> (r.times.(i), r.values.(i)))

let ring_min r = r.vmin

let ring_max r = r.vmax

let ring_last r = r.last

(* ------------------------------- store -------------------------------- *)

type t = { capacity : int; tbl : (string * labels, ring) Hashtbl.t }

let create ?(capacity = 240) () =
  if capacity < 2 then invalid_arg "Series.create: capacity must be >= 2";
  { capacity; tbl = Hashtbl.create 32 }

let find t name labels = Hashtbl.find_opt t.tbl (name, canon labels)

let push t ~name ~labels ~time ~value =
  let key = (name, canon labels) in
  let r =
    match Hashtbl.find_opt t.tbl key with
    | Some r -> r
    | None ->
      let r = ring ~capacity:t.capacity in
      Hashtbl.add t.tbl key r;
      r
  in
  ring_push r ~time ~value

let list t =
  Hashtbl.fold (fun k r acc -> (k, r) :: acc) t.tbl []
  |> List.sort (fun (a, _) (b, _) -> compare_key a b)

(* Every series of a given name, whatever its labels: how alert rules
   address per-replica series without enumerating pids. *)
let find_named t name =
  List.filter_map
    (fun ((n, labels), r) -> if String.equal n name then Some (labels, r) else None)
    (list t)

(* ------------------------------ sampler ------------------------------- *)

type point = { time : float; name : string; labels : labels; value : float }

type probe = unit -> (string * labels * float) list

type sampler = {
  store : t;
  interval : float;
  mutable next_due : float;
  mutable ticks : int;
  mutable registry : Registry.t option;
  mutable probes : probe list;
  mutable hooks : (float -> unit) list;
  mutable sink : (point -> unit) option;
  window : Stats.window;
  window_capacity : int;
  keyed : (int, Stats.window) Hashtbl.t;
}

let sampler ?(capacity = 240) ?(window = 256) ?registry ~interval () =
  if interval <= 0.0 then
    invalid_arg "Series.sampler: interval must be positive";
  {
    store = create ~capacity ();
    interval;
    next_due = 0.0;
    ticks = 0;
    registry;
    probes = [];
    hooks = [];
    sink = None;
    window = Stats.window ~capacity:window;
    window_capacity = window;
    keyed = Hashtbl.create 16;
  }

let store s = s.store

let interval s = s.interval

let ticks s = s.ticks

let add_probe s probe = s.probes <- probe :: s.probes

let on_tick s hook = s.hooks <- hook :: s.hooks

let set_sink s sink = s.sink <- Some sink

let observe_latency s ?key value =
  Stats.window_push s.window value;
  match key with
  | None -> ()
  | Some k ->
    let w =
      match Hashtbl.find_opt s.keyed k with
      | Some w -> w
      | None ->
        let w = Stats.window ~capacity:s.window_capacity in
        Hashtbl.add s.keyed k w;
        w
    in
    Stats.window_push w value

let tick s ~now =
  let emit name labels value =
    push s.store ~name ~labels ~time:now ~value;
    match s.sink with
    | None -> ()
    | Some sink -> sink { time = now; name; labels; value }
  in
  (match s.registry with
  | None -> ()
  | Some reg ->
    List.iter (fun (name, labels, v) -> emit name labels v) (Registry.sample reg));
  List.iter (fun probe -> List.iter (fun (n, l, v) -> emit n l v) (probe ()))
    (List.rev s.probes);
  (match Stats.window_summary s.window with
  | None -> ()
  | Some sum ->
    emit "latency_p50" [] sum.Stats.p50;
    emit "latency_p99" [] sum.Stats.p99);
  Hashtbl.fold (fun k w acc -> (k, w) :: acc) s.keyed []
  |> List.sort (fun (a, _) (b, _) -> compare a b)
  |> List.iter (fun (k, w) ->
         match Stats.window_summary w with
         | None -> ()
         | Some sum ->
           emit "latency_p99" [ ("key", string_of_int k) ] sum.Stats.p99);
  s.ticks <- s.ticks + 1;
  List.iter (fun hook -> hook now) (List.rev s.hooks)

let maybe_tick s ~now =
  if now >= s.next_due then begin
    tick s ~now;
    s.next_due <- now +. s.interval
  end

(* ----------------------------- JSONL file ----------------------------- *)

let version = 1

type writer = {
  oc : out_channel;
  mutable points_written : int;
  mutable alerts_written : int;
}

let write_line oc j =
  output_string oc (Json.to_string j);
  output_char oc '\n'

let writer oc ~meta =
  write_line oc
    (Json.Obj
       ([ ("series", Json.Str "ucsim"); ("version", Json.Num (float_of_int version)) ]
       @ meta));
  { oc; points_written = 0; alerts_written = 0 }

let labels_json labels =
  Json.Obj (List.map (fun (k, v) -> (k, Json.Str v)) labels)

let write_point w (p : point) =
  write_line w.oc
    (Json.Obj
       ([ ("t", Json.Num p.time); ("name", Json.Str p.name) ]
       @ (match p.labels with
         | [] -> []
         | labels -> [ ("labels", labels_json labels) ])
       @ [ ("v", Json.Num p.value) ]));
  w.points_written <- w.points_written + 1

let write_alert w ~time ~rule ~series ~value =
  write_line w.oc
    (Json.Obj
       [
         ("alert", Json.Str rule);
         ("t", Json.Num time);
         ("series", Json.Str series);
         ("v", Json.Num value);
       ]);
  w.alerts_written <- w.alerts_written + 1

let close_writer w =
  write_line w.oc
    (Json.Obj
       [
         ("points", Json.Num (float_of_int w.points_written));
         ("alerts", Json.Num (float_of_int w.alerts_written));
       ]);
  flush w.oc

type alert_line = { atime : float; rule : string; aseries : string; avalue : float }

type loaded = {
  meta : (string * Json.t) list;
  points : point list;  (** chronological, full resolution *)
  alerts : alert_line list;
}

let fail fmt = Printf.ksprintf failwith fmt

let need what = function
  | Some v -> v
  | None -> fail "series file: missing or ill-typed %s" what

let point_of_json j =
  let open Json in
  let time = need "t" (Option.bind (member "t" j) get_num) in
  let name = need "name" (Option.bind (member "name" j) get_str) in
  let labels =
    match member "labels" j with
    | Some (Obj fields) ->
      List.map (fun (k, v) -> (k, need ("label " ^ k) (get_str v))) fields
    | None | Some Null -> []
    | Some _ -> fail "series file: labels of %s is not an object" name
  in
  let value = need "v" (Option.bind (member "v" j) get_num) in
  { time; name; labels; value }

let load file =
  let ic =
    try open_in file with Sys_error msg -> fail "series file: %s" msg
  in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let parse line =
        try Json.of_string line
        with Json.Parse_error msg -> fail "series file: %s" msg
      in
      let header =
        match In_channel.input_line ic with
        | None -> fail "series file: empty file"
        | Some line -> parse line
      in
      (match Option.bind (Json.member "series" header) Json.get_str with
      | Some "ucsim" -> ()
      | _ -> fail "series file: not a ucsim series stream");
      (match Option.bind (Json.member "version" header) Json.get_int with
      | Some v when v = version -> ()
      | Some v -> fail "series file: unsupported version %d (expected %d)" v version
      | None -> fail "series file: missing version");
      let meta =
        match header with
        | Json.Obj fields ->
          List.filter (fun (k, _) -> k <> "series" && k <> "version") fields
        | _ -> []
      in
      let points = ref [] and alerts = ref [] in
      let rec loop () =
        match In_channel.input_line ic with
        | None -> ()
        | Some "" -> loop ()
        | Some line ->
          let j = parse line in
          (match Option.bind (Json.member "alert" j) Json.get_str with
          | Some rule ->
            alerts :=
              {
                atime = need "t" (Option.bind (Json.member "t" j) Json.get_num);
                rule;
                aseries =
                  need "series" (Option.bind (Json.member "series" j) Json.get_str);
                avalue = need "v" (Option.bind (Json.member "v" j) Json.get_num);
              }
              :: !alerts
          | None ->
            if Json.member "points" j <> None then () (* footer *)
            else points := point_of_json j :: !points);
          loop ()
      in
      loop ();
      { meta; points = List.rev !points; alerts = List.rev !alerts })

(* ------------------------------ render -------------------------------- *)

let spark_chars = [| "\u{2581}"; "\u{2582}"; "\u{2583}"; "\u{2584}";
                     "\u{2585}"; "\u{2586}"; "\u{2587}"; "\u{2588}" |]

let sparkline ?(width = 60) values =
  match values with
  | [] -> ""
  | _ ->
    let arr = Array.of_list values in
    let n = Array.length arr in
    let cols = min width n in
    let bucket c =
      (* mean of the slice of samples falling into column c *)
      let lo = c * n / cols and hi = max (((c + 1) * n / cols) - 1) (c * n / cols) in
      let sum = ref 0.0 in
      for i = lo to hi do
        sum := !sum +. arr.(i)
      done;
      !sum /. float_of_int (hi - lo + 1)
    in
    let cells = Array.init cols bucket in
    let mn = Array.fold_left Float.min cells.(0) cells in
    let mx = Array.fold_left Float.max cells.(0) cells in
    let glyph v =
      if mx -. mn <= 0.0 then spark_chars.(3)
      else
        let idx = int_of_float ((v -. mn) /. (mx -. mn) *. 7.999) in
        spark_chars.(max 0 (min 7 idx))
    in
    String.concat "" (Array.to_list (Array.map glyph cells))

let group_points points =
  let tbl = Hashtbl.create 32 in
  let order = ref [] in
  List.iter
    (fun p ->
      let key = (p.name, canon p.labels) in
      match Hashtbl.find_opt tbl key with
      | Some acc -> acc := p :: !acc
      | None ->
        Hashtbl.add tbl key (ref [ p ]);
        order := key :: !order)
    points;
  List.sort compare_key (List.rev !order)
  |> List.map (fun key -> (key, List.rev !(Hashtbl.find tbl key)))

let render ppf loaded =
  let groups = group_points loaded.points in
  let name_of (n, labels) = n ^ labels_string labels in
  let width =
    List.fold_left (fun w (key, _) -> max w (String.length (name_of key))) 6
      groups
  in
  Format.fprintf ppf "%-*s  %-60s  %8s %10s %10s %10s@." width "series" ""
    "n" "min" "max" "last";
  List.iter
    (fun (key, pts) ->
      let values = List.map (fun p -> p.value) pts in
      let mn = List.fold_left Float.min (List.hd values) values in
      let mx = List.fold_left Float.max (List.hd values) values in
      let last = List.nth values (List.length values - 1) in
      Format.fprintf ppf "%-*s  %-60s  %8d %10g %10g %10g@." width
        (name_of key) (sparkline values) (List.length values) mn mx last)
    groups;
  match loaded.alerts with
  | [] -> Format.fprintf ppf "alerts: none@."
  | alerts ->
    Format.fprintf ppf "alerts: %d fired@." (List.length alerts);
    List.iter
      (fun a ->
        Format.fprintf ppf "  ALERT %s at t=%g on %s value=%g@." a.rule
          a.atime a.aseries a.avalue)
      alerts
