(** A registry of named, labelled metrics.

    The telemetry counterpart of {!Metrics}: where the run-wide record
    has one cell per observable, the registry keys every series by
    [(name, labels)] so [messages_sent{pid=2}] and [replay_steps{pid=0}]
    are first-class. Three metric kinds:

    {ul
    {- {b counters} — monotone integers (messages, replay steps);}
    {- {b gauges} — last-write floats (final divergence);}
    {- {b histograms} — float samples summarized with {!Stats} and
       rendered as log-bucketed (powers of two) distributions, for
       delivery and visibility latency.}}

    Hot paths hold the handle returned at registration, so recording is
    a field update — no hashing per event. Registration of the same
    [(name, labels)] pair returns the same handle; labels are
    canonicalized by key order. *)

type labels = (string * string) list

type t

type counter

type gauge

type hist

val create : unit -> t

val counter : t -> ?labels:labels -> string -> counter
(** Find-or-create. @raise Invalid_argument if [(name, labels)] is
    already registered as another metric kind. *)

val gauge : t -> ?labels:labels -> string -> gauge

val hist : t -> ?labels:labels -> string -> hist

val inc : ?by:int -> counter -> unit

val counter_value : counter -> int

val set : gauge -> float -> unit

val observe : hist -> float -> unit

val hist_count : hist -> int

(** {2 Sharding}

    The multicore engine gives each domain its own registry shard so
    that hot-path recording never touches memory another domain writes
    ({!Obs.replica}'s find-or-create walk over a shared list is a data
    race the moment two domains call it). A shard is an ordinary
    registry, created before spawning and written by exactly one
    domain; after the joins the collector folds every shard into the
    run registry with {!merge}. *)

val shard : t -> t
(** A fresh, empty registry for one domain's private use. (The parent
    is not consulted — the argument documents intent and keeps call
    sites honest about which run the shard belongs to.) *)

val merge : into:t -> t -> unit
(** Fold a quiescent shard into [into]: counters add, gauges take the
    max (shards record high-water marks, so max is the
    order-independent choice), histograms append their samples.
    Find-or-creates the destination metrics; registration order follows
    the shard's. @raise Invalid_argument if a [(name, labels)] pair is
    registered with conflicting kinds. *)

val sample : t -> (string * labels * float) list
(** Instantaneous snapshot for the time-series sampler, sorted by name
    then labels: counters and gauges read as floats, histograms
    contribute only their sample count (as [name ^ "_count"]) — never
    their quantiles, which would cost a sort of the raw samples on
    every tick. *)

(** {2 Dumps}

    A dump is the registry flattened to rows, sorted by name then
    labels (label values that parse as integers sort numerically, so
    [pid=2] precedes [pid=10]). Histogram rows carry the summary
    quantiles and the log2 buckets, so a dump is self-contained — the
    JSON form round-trips through {!rows_of_json}, which is how
    [ucsim report] renders a dump written by an earlier run. *)

type hist_dump = {
  count : int;
  sum : float;
  mean : float;
  p50 : float;
  p90 : float;
  p99 : float;
  max : float;
  buckets : (float * int) list;
      (** [(le, count)]: samples in [(le/2, le]], le a power of two;
          non-positive samples pool under [le = 0]. *)
}

type data = Count of int | Value of float | Histogram of hist_dump

type row = { name : string; labels : labels; data : data }

val rows : t -> row list

val pp_rows : Format.formatter -> row list -> unit
(** Aligned table: name, labels, then the value or the histogram
    summary (count/mean/p50/p90/p99/max). *)

val pp : Format.formatter -> t -> unit
(** [pp_rows] of {!rows}. *)

val version : int
(** Schema version stamped into dumps. *)

val rows_to_json : row list -> Json.t

val to_json : t -> Json.t
(** [{"registry":"ucsim","version":1,"metrics":[...]}], one object per
    row. *)

val rows_of_json : Json.t -> row list
(** Inverse of {!rows_to_json} / {!to_json}. Dumps without a version
    field (pre-versioning) are accepted.
    @raise Failure on a value that is not a registry dump or declares
    an unsupported version. *)

val merge_rows : row list list -> row list
(** Merge several dumps (e.g. one [--registry-out] file per shard or
    per run) into one row list, combining rows with the same
    [(name, labels)] key: counters add, gauges take the max, histograms
    combine exactly on count/sum/max/buckets with the mean recomputed
    and p50/p90/p99 re-read from the merged log2 buckets (each answer
    is a bucket upper bound — exact to within the 2x bucket
    resolution). Rows unique to one dump pass through untouched. Output
    is sorted like {!rows}.
    @raise Failure if a key is a counter in one dump and, say, a gauge
    in another. *)
