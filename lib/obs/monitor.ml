type criterion = Uc | Ec | Pc

let criterion_name = function Uc -> "uc" | Ec -> "ec" | Pc -> "pc"

let criterion_of_name s =
  match String.lowercase_ascii s with
  | "uc" -> Some Uc
  | "ec" -> Some Ec
  | "pc" -> Some Pc
  | _ -> None

type violation = {
  criterion : criterion;
  index : int;
  span : int option;
  pid : int;
  reason : string;
}

let pp_violation ppf v =
  Format.fprintf ppf "%s violated at event %d%s (p%d): %s"
    (String.uppercase_ascii (criterion_name v.criterion))
    v.index
    (match v.span with None -> "" | Some s -> Format.sprintf " span=%d" s)
    v.pid v.reason

module Make (A : Uqadt.S) = struct
  module Run = Uqadt.Run (A)
  module Cuc = Check_uc.Make (A)

  (* Minimal grow-array (Dynarray is OCaml ≥ 5.2). *)
  type 'a vec = { mutable arr : 'a array; mutable len : int }

  let vec_make () = { arr = [||]; len = 0 }

  let vec_push v x =
    if v.len = Array.length v.arr then begin
      let arr = Array.make (max 8 (2 * Array.length v.arr)) x in
      Array.blit v.arr 0 arr 0 v.len;
      v.arr <- arr
    end;
    v.arr.(v.len) <- x;
    v.len <- v.len + 1

  (* ------------------------------- PC --------------------------------- *)

  (* One monitored process p keeps the frontier of Check_pc's search:
     the set of reachable configurations of the interleaving automaton
     whose rows are p's own line plus every other process's update
     subsequence. A query on p's own line closes the frontier —
     consuming pending updates (memoized on (positions, state) exactly
     like {!Linearize.search}) and then the query; an empty result
     means no interleaving explains the read — the first PC-violating
     event. An ω read must additionally consume every update fed so
     far.

     The frontier is complete only for the rows it was computed
     against: when another process's update arrives, a witness
     interleaving may weave it {e before} an already-explained query
     (a [deq] woven before the enqueues a read observed, say), reaching
     accepting configurations the old frontier cannot. So a row growth
     marks the frontier dirty, and the next own query rebuilds it from
     scratch against the current rows — except for a recorded ω read,
     which is re-checked eagerly on every later update (an update is
     the only event that can turn a passing prefix into a failing one,
     and the violation must be reported at exactly that event). *)

  type own = Ou of A.update | Oq of A.query * A.output * bool  (** ω? *)

  type cfg = { pos : int array; state : A.state }

  type pc_proc = {
    p : int;
    own : own vec;
    mutable frontier : cfg list;
    mutable dirty : bool;
        (** rows grew since [frontier] was computed; rebuild before use *)
    mutable pre_omega : (int * A.query * A.output) option;
        (** journal index and reading of the recorded ω, for re-checks *)
  }

  type pc_state = { rows : A.update vec array; procs : pc_proc array }

  type uc_state = {
    steps : (A.update, A.query, A.output) History.step list ref array;
        (** updates and ω reads only, newest first *)
    mutable pairs : (A.query * A.output) list;
    mutable total : int;  (** updates fed *)
    mutable lin_state : A.state;  (** fold of updates in arrival order *)
    mutable witness : (A.state * int) option;
        (** a state satisfying every pair, final state of a
            program-order-respecting linearization of the first [k] fed
            updates *)
  }

  type ec_state = {
    mutable ec_pairs : (A.query * A.output) list;
    mutable last_distinct : (float * int) option;
    mutable peak_distinct : int;
  }

  type t = {
    n : int;
    criteria : criterion list;
    pc : pc_state option;
    uc : uc_state option;
    ec : ec_state option;
    mutable violations : violation list;  (* newest first *)
    mutable events_seen : int;
    mutable work : int;
  }

  let create ~n ~criteria =
    let criteria = List.sort_uniq compare criteria in
    let has c = List.mem c criteria in
    {
      n;
      criteria;
      pc =
        (if has Pc then
           Some
             {
               rows = Array.init n (fun _ -> vec_make ());
               procs =
                 Array.init n (fun p ->
                     {
                       p;
                       own = vec_make ();
                       frontier =
                         [ { pos = Array.make n 0; state = A.initial } ];
                       dirty = false;
                       pre_omega = None;
                     });
             }
         else None);
      uc =
        (if has Uc then
           Some
             {
               steps = Array.init n (fun _ -> ref []);
               pairs = [];
               total = 0;
               lin_state = A.initial;
               witness = None;
             }
         else None);
      ec =
        (if has Ec then
           Some { ec_pairs = []; last_distinct = None; peak_distinct = 0 }
         else None);
      violations = [];
      events_seen = 0;
      work = 0;
    }

  let violations t = List.rev t.violations

  let first_violation t =
    match List.rev t.violations with [] -> None | v :: _ -> Some v

  let clean t = t.violations = []

  let violated t c =
    List.exists (fun v -> v.criterion = c) t.violations

  let report t v = t.violations <- v :: t.violations

  let events_seen t = t.events_seen

  let work t = t.work

  let divergence t =
    match t.ec with
    | None -> (None, 0)
    | Some ec -> (ec.last_distinct, ec.peak_distinct)

  (* Closure of [from] under consuming pending updates, then the query
     [(q, o)] sitting at position [qpos] of [pr]'s own line; [omega]
     requires every fed update consumed first. Returns the deduped
     post-query frontier. *)
  let pc_close t st pr ~qpos ~omega ~q ~o ~from =
    let n = t.n in
    let visited : (int list, A.state list ref) Hashtbl.t = Hashtbl.create 64 in
    let seen pos state =
      let key = Array.to_list pos in
      match Hashtbl.find_opt visited key with
      | None ->
        Hashtbl.add visited key (ref [ state ]);
        false
      | Some states ->
        if List.exists (A.equal_state state) !states then true
        else begin
          states := state :: !states;
          false
        end
    in
    let out = ref [] in
    let add_out pos state =
      if
        not
          (List.exists
             (fun c -> c.pos = pos && A.equal_state c.state state)
             !out)
      then out := { pos; state } :: !out
    in
    let rec go c =
      t.work <- t.work + 1;
      if not (seen c.pos c.state) then begin
        if c.pos.(pr.p) = qpos then begin
          let ready =
            (not omega)
            || Array.for_all Fun.id
                 (Array.init n (fun r ->
                      r = pr.p || c.pos.(r) = st.rows.(r).len))
          in
          if ready && A.equal_output (A.eval c.state q) o then begin
            let pos = Array.copy c.pos in
            pos.(pr.p) <- qpos + 1;
            add_out pos c.state
          end
        end;
        for r = 0 to n - 1 do
          if r = pr.p then begin
            if c.pos.(r) < qpos then
              match pr.own.arr.(c.pos.(r)) with
              | Ou u ->
                let pos = Array.copy c.pos in
                pos.(r) <- c.pos.(r) + 1;
                go { pos; state = A.apply c.state u }
              | Oq _ ->
                (* Every earlier own query was consumed before the
                   frontier advanced past it. *)
                ()
          end
          else if c.pos.(r) < st.rows.(r).len then begin
            let u = st.rows.(r).arr.(c.pos.(r)) in
            let pos = Array.copy c.pos in
            pos.(r) <- c.pos.(r) + 1;
            go { pos; state = A.apply c.state u }
          end
        done
      end
    in
    List.iter go from;
    !out

  (* Rebuild [pr]'s frontier from scratch against the {e current} rows:
     close every recorded own query in order, each over the full rows.
     [None] when some closure empties — only possible for an ω entry,
     whose completeness requirement can absorb a new update no weaving
     satisfies; a plain query once explained stays explained (growth
     only adds interleavings). *)
  let pc_rebuild t st pr =
    let frontier =
      ref [ { pos = Array.make t.n 0; state = A.initial } ]
    in
    let ok = ref true in
    for k = 0 to pr.own.len - 1 do
      if !ok then
        match pr.own.arr.(k) with
        | Ou _ -> ()
        | Oq (q, o, omega) -> (
          match pc_close t st pr ~qpos:k ~omega ~q ~o ~from:!frontier with
          | [] -> ok := false
          | out -> frontier := out)
    done;
    pr.dirty <- false;
    if !ok then Some !frontier else None

  (* ------------------------------- UC --------------------------------- *)

  let pairs_hold t pairs s =
    List.for_all
      (fun (q, o) ->
        t.work <- t.work + 1;
        A.equal_output (A.eval s q) o)
      pairs

  let uc_prefix_history uc =
    History.make (Array.to_list (Array.map (fun r -> List.rev !r) uc.steps))

  (* Full fallback: Check_uc on the prefix fed so far. On success the
     witness's final state is memoized so later events retry it in O(1)
     before searching again. *)
  let uc_search t uc =
    match Cuc.witness (uc_prefix_history uc) with
    | Some updates ->
      t.work <- t.work + List.length updates;
      uc.witness <- Some (Run.final_state updates, uc.total);
      true
    | None -> false

  let uc_on_update t uc ~pid ~index ~span u =
    ignore span;
    uc.steps.(pid) := History.U u :: !(uc.steps.(pid));
    uc.total <- uc.total + 1;
    t.work <- t.work + 1;
    uc.lin_state <- A.apply uc.lin_state u;
    if uc.pairs <> [] then begin
      (* The new update is the latest event of [pid], so appending it to
         any existing witness still extends the program order. *)
      let extended =
        match uc.witness with
        | Some (s, k) when k = uc.total - 1 ->
          t.work <- t.work + 1;
          let s' = A.apply s u in
          if pairs_hold t uc.pairs s' then begin
            uc.witness <- Some (s', uc.total);
            true
          end
          else false
        | _ -> false
      in
      if (not extended) && not (uc_search t uc) then
        report t
          {
            criterion = Uc;
            index;
            span;
            pid;
            reason =
              Format.asprintf
                "update %a invalidates all linearizations: no update order \
                 extending program order satisfies the %d ω read(s)"
                A.pp_update u (List.length uc.pairs);
          }
    end

  let uc_on_omega t uc ~pid ~index ~span q o =
    uc.steps.(pid) := History.Qw (q, o) :: !(uc.steps.(pid));
    uc.pairs <- (q, o) :: uc.pairs;
    let fast =
      (match uc.witness with
      | Some (s, k) when k = uc.total ->
        t.work <- t.work + 1;
        A.equal_output (A.eval s q) o
      | _ -> false)
      ||
      if pairs_hold t uc.pairs uc.lin_state then begin
        uc.witness <- Some (uc.lin_state, uc.total);
        true
      end
      else false
    in
    if (not fast) && not (uc_search t uc) then
      report t
        {
          criterion = Uc;
          index;
          span;
          pid;
          reason =
            Format.asprintf
              "no update linearization extending program order satisfies \
               the %d ω read(s) (latest: %a -> %a)"
              (List.length uc.pairs) A.pp_query q A.pp_output o;
        }

  (* ----------------------------- feeding ------------------------------ *)

  let on_update t ~pid ~index ~span u =
    t.events_seen <- t.events_seen + 1;
    (match t.pc with
    | Some st when not (violated t Pc) ->
      vec_push st.rows.(pid) u;
      vec_push st.procs.(pid).own (Ou u);
      (* The lengthened row invalidates every other process's frontier
         (a witness may weave the new update before an old query); a
         late update is also the only event that can take an accepted
         ω read's witness away, so recorded ωs are re-checked now. *)
      Array.iter
        (fun pr ->
          if pr.p <> pid then
            match pr.pre_omega with
            | Some (oidx, _, _) when not (violated t Pc) -> (
              match pc_rebuild t st pr with
              | Some front -> pr.frontier <- front
              | None ->
                report t
                  {
                    criterion = Pc;
                    index;
                    span;
                    pid;
                    reason =
                      Format.asprintf
                        "update %a leaves p%d's ω read (event %d) without \
                         a pipelined witness"
                        A.pp_update u pr.p oidx;
                  })
            | _ -> pr.dirty <- true)
        st.procs
    | _ -> ());
    (match t.uc with
    | Some uc when not (violated t Uc) -> uc_on_update t uc ~pid ~index ~span u
    | _ -> ())

  let on_query t ~pid ~index ~span ~omega q o =
    t.events_seen <- t.events_seen + 1;
    (match t.pc with
    | Some st when not (violated t Pc) ->
      let pr = st.procs.(pid) in
      let stale = pr.dirty in
      vec_push pr.own (Oq (q, o, omega));
      if omega then pr.pre_omega <- Some (index, q, o);
      let out =
        if stale then
          (* Rows grew since the frontier was computed: rebuild against
             the current rows (the new query included). *)
          match pc_rebuild t st pr with None -> [] | Some front -> front
        else
          pc_close t st pr ~qpos:(pr.own.len - 1) ~omega ~q ~o
            ~from:pr.frontier
      in
      if out = [] then
        report t
          {
            criterion = Pc;
            index;
            span;
            pid;
            reason =
              Format.asprintf
                "no interleaving of p%d's line with the other processes' \
                 updates explains %s%a -> %a"
                pid
                (if omega then "ω read " else "read ")
                A.pp_query q A.pp_output o;
          }
      else pr.frontier <- out
    | _ -> ());
    if omega then begin
      (match t.uc with
      | Some uc when not (violated t Uc) ->
        uc_on_omega t uc ~pid ~index ~span q o
      | _ -> ());
      match t.ec with
      | Some ec when not (violated t Ec) ->
        ec.ec_pairs <- (q, o) :: ec.ec_pairs;
        t.work <- t.work + 1;
        if not (A.satisfiable ec.ec_pairs) then
          report t
            {
              criterion = Ec;
              index;
              span;
              pid;
              reason =
                Format.asprintf
                  "the %d ω read(s) are not jointly satisfiable by any \
                   state (latest: %a -> %a)"
                  (List.length ec.ec_pairs)
                  A.pp_query q A.pp_output o;
            }
      | _ -> ()
    end

  let on_probe t ~time ~distinct =
    match t.ec with
    | None -> ()
    | Some ec ->
      ec.last_distinct <- Some (time, distinct);
      if distinct > ec.peak_distinct then ec.peak_distinct <- distinct
end
