(** Replay-cost profile of one replica's op-log machinery.

    A plain mutable record that {!Oplog} (and the protocol layers above
    it) bump from their hot paths; {!Obs.finalize} folds the non-zero
    fields into the registry as [oplog_*{pid=..}] counters. Kept as a
    bare record so the substrate does not depend on registry lookup —
    attaching a profile is a single field write. *)

type t = {
  mutable inserts : int;  (** total log insertions *)
  mutable appends : int;  (** insertions that landed at the tail *)
  mutable shift_distance : int;
      (** entries shifted right by out-of-order insertions *)
  mutable replays : int;  (** replay passes (queries and stabilization) *)
  mutable replay_steps : int;  (** operations re-applied across replays *)
  mutable checkpoint_hits : int;
      (** replays that started from a checkpoint *)
  mutable checkpoint_misses : int;
      (** replays from [empty] despite checkpointing being on *)
  mutable checkpoints_taken : int;
  mutable checkpoints_dropped : int;
      (** checkpoints invalidated by insertions or compaction *)
  mutable compactions : int;
  mutable compacted_entries : int;
  mutable undo_repairs : int;
      (** out-of-order arrivals repaired by undo/redo instead of replay *)
}

val create : unit -> t
(** All fields zero. *)

val to_rows : t -> (string * int) list
(** [(metric name, value)] for each non-zero field, prefixed [oplog_]
    (except [undo_repairs], which belongs to the protocol layer). *)
