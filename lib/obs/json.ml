type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | Arr of t list
  | Obj of (string * t) list

(* ------------------------------ printing ------------------------------ *)

let escape_into buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

(* Integral values print as integers: metric counters and span ids stay
   readable, and the Perfetto importer accepts both forms. Fractional
   values use the shortest digit string that parses back to the same
   float, so a dump → report round trip is exact. *)
let number_string f =
  if Float.is_integer f && Float.abs f < 1e15 then Printf.sprintf "%.0f" f
  else begin
    let short = Printf.sprintf "%.12g" f in
    if float_of_string short = f then short
    else
      let mid = Printf.sprintf "%.15g" f in
      if float_of_string mid = f then mid else Printf.sprintf "%.17g" f
  end

let to_string ?(pretty = false) t =
  let buf = Buffer.create 256 in
  let indent depth = Buffer.add_string buf (String.make (2 * depth) ' ') in
  let rec write depth = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (if b then "true" else "false")
    | Num f -> Buffer.add_string buf (number_string f)
    | Str s -> escape_into buf s
    | Arr [] -> Buffer.add_string buf "[]"
    | Arr items ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i item ->
          if i > 0 then Buffer.add_char buf ',';
          if pretty then begin
            Buffer.add_char buf '\n';
            indent (depth + 1)
          end;
          write (depth + 1) item)
        items;
      if pretty then begin
        Buffer.add_char buf '\n';
        indent depth
      end;
      Buffer.add_char buf ']'
    | Obj [] -> Buffer.add_string buf "{}"
    | Obj fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_char buf ',';
          if pretty then begin
            Buffer.add_char buf '\n';
            indent (depth + 1)
          end;
          escape_into buf k;
          Buffer.add_string buf (if pretty then ": " else ":");
          write (depth + 1) v)
        fields;
      if pretty then begin
        Buffer.add_char buf '\n';
        indent depth
      end;
      Buffer.add_char buf '}'
  in
  write 0 t;
  Buffer.contents buf

(* ------------------------------ parsing ------------------------------ *)

exception Parse_error of string

let of_string s =
  let n = String.length s in
  let i = ref 0 in
  let err msg = raise (Parse_error (Printf.sprintf "%s at offset %d" msg !i)) in
  let peek () = if !i < n then Some s.[!i] else None in
  let advance () = incr i in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | _ -> err (Printf.sprintf "expected '%c'" c)
  in
  let rec skip_ws () =
    match peek () with
    | Some (' ' | '\t' | '\n' | '\r') ->
      advance ();
      skip_ws ()
    | _ -> ()
  in
  let literal word value =
    if !i + String.length word <= n && String.sub s !i (String.length word) = word
    then begin
      i := !i + String.length word;
      value
    end
    else err ("expected " ^ word)
  in
  let utf8_into buf cp =
    if cp < 0x80 then Buffer.add_char buf (Char.chr cp)
    else if cp < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (cp lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xE0 lor (cp lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((cp lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (cp land 0x3F)))
    end
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec loop () =
      match peek () with
      | None -> err "unterminated string"
      | Some '"' -> advance ()
      | Some '\\' ->
        advance ();
        (match peek () with
        | Some '"' -> Buffer.add_char buf '"'; advance ()
        | Some '\\' -> Buffer.add_char buf '\\'; advance ()
        | Some '/' -> Buffer.add_char buf '/'; advance ()
        | Some 'n' -> Buffer.add_char buf '\n'; advance ()
        | Some 't' -> Buffer.add_char buf '\t'; advance ()
        | Some 'r' -> Buffer.add_char buf '\r'; advance ()
        | Some 'b' -> Buffer.add_char buf '\b'; advance ()
        | Some 'f' -> Buffer.add_char buf '\012'; advance ()
        | Some 'u' ->
          advance ();
          if !i + 4 > n then err "truncated \\u escape";
          let hex = String.sub s !i 4 in
          (match int_of_string_opt ("0x" ^ hex) with
          | Some cp ->
            i := !i + 4;
            utf8_into buf cp
          | None -> err "bad \\u escape")
        | _ -> err "bad escape");
        loop ()
      | Some c ->
        Buffer.add_char buf c;
        advance ();
        loop ()
    in
    loop ();
    Buffer.contents buf
  in
  let parse_number () =
    let start = !i in
    let number_char c =
      match c with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    in
    while (match peek () with Some c -> number_char c | None -> false) do
      advance ()
    done;
    match float_of_string_opt (String.sub s start (!i - start)) with
    | Some f -> f
    | None -> err "bad number"
  in
  let rec parse_value () =
    skip_ws ();
    match peek () with
    | None -> err "unexpected end of input"
    | Some '{' ->
      advance ();
      skip_ws ();
      if peek () = Some '}' then begin
        advance ();
        Obj []
      end
      else begin
        let rec fields acc =
          skip_ws ();
          let key = parse_string () in
          skip_ws ();
          expect ':';
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            fields ((key, v) :: acc)
          | Some '}' ->
            advance ();
            List.rev ((key, v) :: acc)
          | _ -> err "expected ',' or '}'"
        in
        Obj (fields [])
      end
    | Some '[' ->
      advance ();
      skip_ws ();
      if peek () = Some ']' then begin
        advance ();
        Arr []
      end
      else begin
        let rec items acc =
          let v = parse_value () in
          skip_ws ();
          match peek () with
          | Some ',' ->
            advance ();
            items (v :: acc)
          | Some ']' ->
            advance ();
            List.rev (v :: acc)
          | _ -> err "expected ',' or ']'"
        in
        Arr (items [])
      end
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some _ -> Num (parse_number ())
  in
  let v = parse_value () in
  skip_ws ();
  if !i <> n then err "trailing garbage";
  v

(* ------------------------------ accessors ---------------------------- *)

let member key = function Obj fields -> List.assoc_opt key fields | _ -> None

let get_str = function Str s -> Some s | _ -> None

let get_num = function Num f -> Some f | _ -> None

let get_int = function
  | Num f when Float.is_integer f -> Some (int_of_float f)
  | _ -> None

let get_list = function Arr l -> Some l | _ -> None
