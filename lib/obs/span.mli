(** Causal span tracing for update propagation.

    Every update invocation opens a span; the span id then rides along
    the ambient context ({!set_active}/{!active}) rather than the
    message types, so the {!Network} can stamp outgoing frames with the
    span of the update being processed and restore it around delivery —
    protocols stay untouched. A span's life is:

    invocation at the origin → one or more sends → per-replica
    delivery → per-replica apply (including the origin's own
    synchronous apply).

    The collector records flat events; {!spans} aggregates them per
    span id and {!visibility} derives the paper's convergence-lag
    measure — the time until an update has been applied at every live
    replica. *)

type id = int

type t

type event =
  | Invoke of { span : id; pid : int; time : float; label : string; local : bool }
  | Send of { span : id option; src : int; time : float }
  | Deliver of {
      span : id option;
      src : int;
      dst : int;
      sent : float;
      received : float;
    }
  | Apply of { span : id option; pid : int; time : float }

val create : unit -> t

val fresh : ?local:bool -> t -> pid:int -> time:float -> label:string -> id
(** Allocate the next span id and record its [Invoke] event. A [local]
    span (default false) marks an invocation that never propagates —
    query invocations, which exist so journal and monitor events can
    cite a causal id — and is excluded from {!visibility}. *)

val set_active : t -> id option -> unit
(** Install the ambient span. The runner sets it around an update
    invocation and the network around a delivery; everything recorded
    in between inherits it. *)

val active : t -> id option

val record_send : t -> span:id option -> src:int -> time:float -> unit

val record_deliver :
  t ->
  span:id option ->
  src:int ->
  dst:int ->
  sent:float ->
  received:float ->
  unit

val record_apply : t -> span:id option -> pid:int -> time:float -> unit

val events : t -> event list
(** All events in recording order. *)

val count : t -> int
(** Number of spans opened. *)

(** {2 Aggregation} *)

type info = {
  id : id;
  origin : int;
  label : string;
  local : bool;
  invoked : float;
  sends : (int * float) list;  (** [(src, time)] *)
  delivers : (int * int * float * float) list;
      (** [(src, dst, sent, received)] *)
  applies : (int * float) list;  (** [(pid, time)] *)
}

val spans : t -> info list
(** One record per opened span, sorted by id; per-span event lists in
    recording order. Events with no span are dropped here (they are
    still in {!events} for the trace export). *)

val visibility : t -> live:int list -> (info * float option) list
(** For each non-local span, the visibility latency
    [max applied-at-p over live replicas p  −  invocation time], or
    [None] if some live replica never applied it (e.g. it was still
    partitioned when the run ended). *)
