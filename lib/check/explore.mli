(** The model-checking engine behind {!Model_check}.

    The seed checker was a 160-line DFS that rebuilt every replica from
    scratch along every path — quadratic replay, practical only up to
    ~15-event schedules. This engine keeps one mutable world per
    explored branch and adds four independently switchable scaling
    mechanisms:

    {ol
    {- {b Checkpointed replay}. Along the DFS path the engine snapshots
       protocol state every [checkpoint_every] events through a
       caller-supplied {!type:snapshotter} (for Algorithm 1 replicas,
       {!Persist.Make.snapshot_replica} — the {!Codec} log frame plus
       the exact Lamport clock). Backtracking restores the nearest
       checkpoint and replays only the events since it, so extending a
       schedule costs O(interval) protocol steps instead of O(depth²).
       Without a snapshotter the engine falls back to the seed
       behaviour: rebuild from the initial state.}
    {- {b Partial-order reduction} ([por]). A sleep-set pass (Godefroid)
       skips re-interleaving independent transitions. Two transitions
       are treated as independent iff they commute in every state and
       neither disables the other; the relation used is: invocations at
       distinct replicas; an invocation and a delivery to a distinct
       replica; deliveries to distinct replicas; and — only when the
       caller's [deliveries_commute] oracle says so — deliveries to the
       {e same} replica. The oracle is how spec-level knowledge enters:
       for log-inserting protocols (Algorithm 1 and its variants) any
       two deliveries commute (a timestamp-sorted insert plus a max
       clock merge is order-insensitive), and for apply-on-receive
       protocols it is exactly [A.commutative] — the {!Commutative}
       fast-path condition. Crash events are conservatively dependent
       with everything. Soundness: the per-process step sequences
       extracted as the history are invariant under swapping adjacent
       independent transitions, and sleep sets explore at least one
       representative of every Mazurkiewicz trace of complete
       executions, so the {e set} of reachable histories — and hence
       every per-criterion verdict and {!report.distinct_failures}
       count — is preserved exactly.}
    {- {b State fingerprinting} ([dedup]). Exploration states are hashed
       ({!Fingerprint}) over replica states × in-flight messages ×
       script positions × crash flags × the history recorded so far
       (the last component is what makes cutting a converging schedule
       sound: equal keys imply equal pasts {e and} equal futures, so
       the pruned subtree contributes no history not already checked).
       Replica states enter the key through [state_key] (or the
       snapshotter's [save]); a timestamp-blind key such as
       {!Snapshot.For_generic.commutative_key} additionally collapses
       states that differ only in unobservable timestamps — sound only
       for commutative specs. Combined with sleep sets, a state is
       skipped only if it was previously explored with a sleep set
       {e included} in the current one (the classical side condition
       for mixing sleep sets with state matching).}
    {- {b Parallel exploration} ([domains]). First-level branches fan
       out over OCaml 5 domains, each with its own world, visited table
       and counters; fragments are merged deterministically in branch
       order, so the report is independent of [domains] (as long as
       [limit] is not hit).}}

    With all options off, [explore] enumerates exactly the seed
    checker's schedule tree in the same order. *)

type 'replica snapshotter = {
  save : 'replica -> string;
  load : 'replica -> string -> unit;
      (** [load] must reconstruct the saved state exactly when applied
          to a {e freshly created} replica. *)
}

(** Exploration effort counters. *)
type stats = {
  states_explored : int;  (** DFS nodes visited (not pruned) *)
  states_pruned_por : int;  (** transitions skipped by sleep sets *)
  states_deduped : int;  (** subtrees cut by fingerprint matching *)
  checkpoint_restores : int;  (** snapshot loads during backtracking *)
  protocol_steps : int;
      (** scheduled events executed against live replicas, including
          catch-up replay — the replay-work metric the bench scenario
          compares across engine configurations *)
}

module Make (P : Protocol.PROTOCOL) : sig
  type report = {
    executions : int;
    exhaustive : bool;
    failures : (Criteria.t * int) list;
        (** per requested criterion, the number of {e explored}
            executions whose history violated it (reduction and
            deduplication lower this — compare
            {!field:distinct_failures} across configurations) *)
    distinct_failures : (Criteria.t * int) list;
        (** per requested criterion, the number of {e distinct}
            violating histories. Invariant under [por], [dedup] and
            [domains]: a reduced run must report the same distinct
            counts as the exhaustive one. *)
    first_failures : (Criteria.t * string) list;
        (** the first violating history found {e per criterion} (only
            criteria with at least one violation appear), so a
            violation of a later-listed criterion is never masked by an
            earlier one *)
    stats : stats;
  }

  val explore :
    ?limit:int ->
    ?criteria:Criteria.t list ->
    ?max_crashes:int ->
    ?por:bool ->
    ?dedup:bool ->
    ?checkpoint_every:int ->
    ?snapshot:P.t snapshotter ->
    ?state_key:(P.t -> string) ->
    ?message_key:(P.message -> string) ->
    ?deliveries_commute:(P.message -> P.message -> bool) ->
    ?domains:int ->
    scripts:(P.update, P.query) Protocol.invocation list array ->
    final_read:P.query ->
    unit ->
    report
  (** Defaults: [limit = 200_000] complete executions, [criteria =
      [UC; EC]], [max_crashes = 0], every engine feature off,
      [checkpoint_every = 4], [domains = 1] — i.e. the seed checker's
      exhaustive enumeration.

      [dedup] requires a replica key: pass [state_key] or [snapshot]
      (whose [save] is then used), else [Invalid_argument] is raised.
      [message_key] (default [P.describe_message]) renders in-flight
      messages inside the fingerprint; a coarser renderer (e.g.
      {!Snapshot.For_generic.commutative_message_key}, which drops the
      unobservable timestamp) merges more states and must obey the same
      observational-equivalence obligation as [state_key].
      [deliveries_commute] widens the independence relation used by
      [por]; it must only return [true] when delivering the two
      messages to the same replica in either order provably yields the
      same replica state.

      Crash semantics, the wait-freedom guard and the final ω read are
      unchanged from the seed checker. With [domains > 1] the report is
      identical to the sequential one unless [limit] cuts enumeration
      short (the cut point is then scheduling-dependent). *)
end
