(** Plugging the protocol stack into the {!Explore} engine.

    The engine is deliberately protocol-agnostic: checkpointing needs a
    {!Explore.snapshotter}, reduction needs a delivery-commutativity
    oracle, and commutativity-aware deduplication needs a state key.
    This module derives all three from the existing layers — {!Persist}
    for exact replica snapshots and the spec's [commutative] flag (the
    same condition {!Commutative} enforces at replica creation) for the
    oracles — so checker call sites stay one-liners.

    Since the oplog refactor the adapters are written once against
    {!Generic.S}, the signature both log cores implement, so the
    explorer's checkpointed replay works identically over the oplog
    core ({!Generic.Make}) and the seed list core
    ({!Generic_ref.Make}) — which is how [ucsim modelcheck --log-core]
    A/Bs them under the same engine. *)

(** Adapters for any Algorithm 1-shaped replica: instantiate with the
    spec, its update codec, and the core ({!Generic.Make (A)} or
    {!Generic_ref.Make (A)}). *)
module For_replica
    (A : Uqadt.S)
    (C : Update_codec.S with type update = A.update)
    (G : Generic.S
           with type state = A.state
            and type update = A.update
            and type query = A.query
            and type output = A.output) : sig
  val snapshotter : G.t Explore.snapshotter
  (** {!Persist.Over.snapshot_replica} / [restore_replica]: the
      timestamp-sorted log plus the exact Lamport clock, restored into
      the fresh replica the engine creates on rewind. *)

  val deliveries_commute : G.message -> G.message -> bool
  (** Always [true]: Algorithm 1 receives by timestamp-sorted insert
      plus a max clock merge, both order-insensitive, so any two
      deliveries to the same replica commute — independent of the
      spec. *)

  val commutative_key : G.t -> string
  (** Timestamp-blind state key: the {e multiset} of (origin, update)
      pairs in the log, ignoring timestamps. For a commutative spec the
      replayed state — hence every future query answer — depends only
      on that multiset, so states differing only in timestamps are
      observationally equivalent and may share a fingerprint. This is
      what collapses the Lamport-clock explosion on counter scopes.

      @raise Invalid_argument unless [A.commutative] (for
      non-commutative specs replay order matters, so timestamps are
      observable and this key would merge distinguishable states). *)

  val commutative_message_key : G.message -> string
  (** Companion to {!commutative_key} for the engine's [message_key]
      option: renders an in-flight message as its update payload alone.
      Without it, fingerprints still distinguish states by the Lamport
      timestamps sitting in the network — the dominant source of state
      blow-up on commutative scopes.

      @raise Invalid_argument unless [A.commutative]. *)
end

(** {!For_replica} over the oplog-core {!Generic.Make} — the
    instantiation every seed call site uses. *)
module For_generic
    (A : Uqadt.S)
    (C : Update_codec.S with type update = A.update) : sig
  val snapshotter : Generic.Make(A).t Explore.snapshotter

  val deliveries_commute : Generic.Make(A).message -> Generic.Make(A).message -> bool

  val commutative_key : Generic.Make(A).t -> string
  (** @raise Invalid_argument unless [A.commutative]. *)

  val commutative_message_key : Generic.Make(A).message -> string
  (** @raise Invalid_argument unless [A.commutative]. *)
end

(** Oracle for apply-on-receive replicas ({!Commutative.Make}). *)
module For_commutative (A : Uqadt.S) : sig
  val deliveries_commute :
    Commutative.Make(A).message -> Commutative.Make(A).message -> bool
  (** [A.commutative], for every message pair: apply-on-receive executes
      updates directly, so same-replica deliveries commute exactly when
      the spec's updates all do — the condition {!Commutative.Make}
      already refuses to run without. *)
end
