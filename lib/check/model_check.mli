(** Small-scope model checker: Proposition 4, executed.

    The paper proves Algorithm 1 strong update consistent over {e
    every} asynchronous execution; this module enumerates every
    execution of a wait-free protocol on a small configuration — all
    interleavings of operation invocations and message deliveries, with
    messages reorderable arbitrarily (non-FIFO, unbounded-delay
    network) — extracts each distributed history, and runs the
    {!Criteria} checkers on it.

    Exploration is a DFS over schedules. Replica state is rebuilt from
    scratch along each path (protocols are mutable, so prefixes are
    replayed rather than snapshotted); this is quadratic in path length
    but path lengths here are ≤ ~15. The checker is restricted to
    wait-free protocols: every operation must complete within its own
    activation (an operation still pending when its turn passes raises
    [Invalid_argument]).

    A [limit] caps the number of complete executions; the return says
    whether enumeration was exhaustive. *)

module Make (P : Protocol.PROTOCOL) : sig
  type report = {
    executions : int;
    exhaustive : bool;
    failures : (Criteria.t * int) list;
        (** per requested criterion, the number of executions whose
            extracted history violated it *)
    first_failure : string option;
        (** rendering of the first violating history, for diagnosis *)
  }

  val explore :
    ?limit:int ->
    ?criteria:Criteria.t list ->
    ?max_crashes:int ->
    scripts:(P.update, P.query) Protocol.invocation list array ->
    final_read:P.query ->
    unit ->
    report
  (** Default criteria: [[UC; EC]] (the fast decidable ones — add [SUC]
      for the full Proposition 4 statement on very small scripts).
      Every live process issues [final_read] as its ω query at the end
      of each execution — crashed processes are mute, matching the
      wait-free fault model.

      [max_crashes] (default 0) additionally explores crash events: at
      every point of every schedule, up to that many processes may halt
      (never all of them). A crashed process invokes nothing further and
      drops deliveries; messages it had already sent remain in flight —
      exactly the paper's failure semantics. Proposition 4's claim is
      crash-insensitive, so the UC/EC verdicts must stay clean. *)
end
