(** Small-scope model checker: Proposition 4, executed.

    The paper proves Algorithm 1 strong update consistent over {e
    every} asynchronous execution; this module enumerates every
    execution of a wait-free protocol on a small configuration — all
    interleavings of operation invocations and message deliveries, with
    messages reorderable arbitrarily (non-FIFO, unbounded-delay
    network) — extracts each distributed history, and runs the
    {!Criteria} checkers on it.

    This is now a thin front-end over the {!Explore} engine. With the
    engine defaults ([explore ~scripts ~final_read ()]) the behaviour is
    the seed checker's: exhaustive DFS over schedules, one history check
    per complete execution, a [limit] capping enumeration. The engine
    options — checkpointed replay, partial-order reduction, state
    fingerprinting, parallel domains — unlock scopes the naive DFS
    cannot finish; see {!Explore} for their semantics and soundness
    conditions.

    The checker is restricted to wait-free protocols: every operation
    must complete within its own activation (an operation still pending
    when its turn passes raises [Invalid_argument]).

    [max_crashes] (default 0) additionally explores crash events: at
    every point of every schedule, up to that many processes may halt
    (never all of them). A crashed process invokes nothing further and
    drops deliveries; messages it had already sent remain in flight —
    exactly the paper's failure semantics. Proposition 4's claim is
    crash-insensitive, so the UC/EC verdicts must stay clean.

    Every live process issues [final_read] as its ω query at the end of
    each execution — crashed processes are mute, matching the wait-free
    fault model. Default criteria: [[UC; EC]] (the fast decidable ones —
    add [SUC] for the full Proposition 4 statement on very small
    scripts). *)

module Make = Explore.Make
