(* Property-driven scenario engine: a full run description — scripts,
   delays, partitions, crashes, churn — as one generatable, shrinkable
   value. A scenario executes through {!Runner} with the online
   monitors attached; when a run is flagged, the shrinker greedily
   re-runs structurally smaller candidates (everything is seeded, so
   every re-run is deterministic) until no smaller scenario still trips
   the same criterion — yielding a smallest violating journal. *)

module Make (P : Protocol.PROTOCOL) = struct
  module R = Runner.Make (P)

  type t = {
    seed : int;
    n : int;
    mean_delay : float;
    fifo : bool;
    scripts : R.action list array;
    partitions : Network.partition list;
    crashes : (float * int) list;
    churn : Network.churn_event list;
    final_read : P.query option;
  }

  type outcome = {
    violation : Obs.Monitor.violation option;
    journal : Obs.Journal.t;
    events : int;
    converged : bool;
  }

  let size t =
    Array.fold_left (fun acc s -> acc + List.length s) 0 t.scripts
    + List.length t.partitions
    + List.length t.crashes + List.length t.churn + t.n

  let pp ppf t =
    Format.fprintf ppf
      "seed=%d n=%d ops=%d delay=%g%s partitions=%d crashes=%d churn=%d"
      t.seed t.n
      (Array.fold_left (fun acc s -> acc + List.length s) 0 t.scripts)
      t.mean_delay
      (if t.fifo then " fifo" else "")
      (List.length t.partitions)
      (List.length t.crashes) (List.length t.churn)

  let run ?(criteria = [ Obs.Monitor.Uc; Obs.Monitor.Ec; Obs.Monitor.Pc ]) t =
    if Array.length t.scripts <> t.n then
      invalid_arg "Scenario.run: scripts width must match n";
    let journal = Obs.Journal.create () in
    let obs = Obs.create ~journal () in
    let monitor = R.Mon.create ~n:t.n ~criteria in
    let config =
      {
        (R.default_config ~n:t.n ~seed:t.seed) with
        R.delay = Network.Exponential { mean = t.mean_delay };
        fifo = t.fifo;
        partitions = t.partitions;
        crashes = t.crashes;
        churn = t.churn;
        final_read = t.final_read;
        obs = Some obs;
        monitor = Some monitor;
      }
    in
    let result = R.run config ~workload:t.scripts in
    {
      violation = R.Mon.first_violation monitor;
      journal;
      events = Obs.Journal.length journal;
      converged = result.R.converged;
    }

  (* ----------------------------- shrinking ----------------------------- *)

  let remove_nth i l = List.filteri (fun j _ -> j <> i) l

  (* Structurally smaller variants, coarsest first: dropping a whole
     process's script prunes far more of the search space per re-run
     than dropping one op, so try it first. Every candidate is strictly
     smaller under {!size}, which makes the greedy loop terminate. *)
  let candidates t =
    let acc = ref [] in
    let push c = acc := c :: !acc in
    (* Single-op removals, finest last (pushed first, reversed below). *)
    Array.iteri
      (fun p script ->
        List.iteri
          (fun i _ ->
            push
              {
                t with
                scripts =
                  Array.mapi
                    (fun q s -> if q = p then remove_nth i s else s)
                    t.scripts;
              })
          script)
      t.scripts;
    (* Script halving. *)
    Array.iteri
      (fun p script ->
        let len = List.length script in
        if len >= 2 then begin
          let half = len / 2 in
          let keep f =
            push
              {
                t with
                scripts =
                  Array.mapi
                    (fun q s -> if q = p then List.filteri f s else s)
                    t.scripts;
              }
          in
          keep (fun i _ -> i < half);
          keep (fun i _ -> i >= half)
        end)
      t.scripts;
    (* Removing an empty process shrinks [n]; remaining pids shift down
       and every fault referencing the removed pid goes with it. *)
    if t.n > 1 then
      Array.iteri
        (fun k script ->
          if script = [] then begin
            let remap p = if p > k then p - 1 else p in
            push
              {
                t with
                n = t.n - 1;
                scripts =
                  Array.of_list
                    (List.filteri
                       (fun i _ -> i <> k)
                       (Array.to_list t.scripts));
                partitions =
                  List.filter_map
                    (fun (p : Network.partition) ->
                      let group =
                        List.filter_map
                          (fun pid ->
                            if pid = k then None else Some (remap pid))
                          p.Network.group
                      in
                      if group = [] then None
                      else Some { p with Network.group })
                    t.partitions;
                crashes =
                  List.filter_map
                    (fun (tm, pid) ->
                      if pid = k then None else Some (tm, remap pid))
                    t.crashes;
                churn =
                  List.filter_map
                    (fun (ce : Network.churn_event) ->
                      if ce.Network.pid = k then None
                      else Some { ce with Network.pid = remap ce.Network.pid })
                    t.churn;
              }
          end)
        t.scripts;
    (* Fault-schedule thinning. *)
    List.iteri
      (fun i _ -> push { t with partitions = remove_nth i t.partitions })
      t.partitions;
    List.iteri
      (fun i _ -> push { t with crashes = remove_nth i t.crashes })
      t.crashes;
    List.iteri
      (fun i _ -> push { t with churn = remove_nth i t.churn })
      t.churn;
    (* Whole-script removal, coarsest of all. *)
    Array.iteri
      (fun p script ->
        if script <> [] then
          push
            {
              t with
              scripts =
                Array.mapi (fun q s -> if q = p then [] else s) t.scripts;
            })
      t.scripts;
    !acc

  type shrunk = {
    scenario : t;
    outcome : outcome;
    runs : int;  (** re-executions the minimization spent *)
  }

  let shrink ?(max_runs = 400) ?criteria t0 =
    match run ?criteria t0 with
    | { violation = None; _ } -> None
    | { violation = Some v0; _ } as o0 ->
      let target = v0.Obs.Monitor.criterion in
      let runs = ref 1 in
      (* Greedy descent: take the first candidate that still trips the
         target criterion, restart from it; stop at a local minimum or
         when the run budget is spent. Deterministic: candidate order
         is a pure function of the scenario and every run is seeded. *)
      let reproduces cand =
        if !runs >= max_runs then None
        else begin
          incr runs;
          let o = run ~criteria:[ target ] cand in
          match o.violation with
          | Some v when v.Obs.Monitor.criterion = target -> Some o
          | _ -> None
        end
      in
      let rec descend best best_outcome =
        let rec try_candidates = function
          | [] -> (best, best_outcome)
          | cand :: rest -> (
            match reproduces cand with
            | Some o -> descend cand o
            | None -> try_candidates rest)
        in
        if !runs >= max_runs then (best, best_outcome)
        else try_candidates (candidates best)
      in
      let scenario, outcome = descend t0 o0 in
      Some { scenario; outcome; runs = !runs }

  (* ----------------------------- generation ---------------------------- *)

  (* Scenario generator for property tests: all structure comes from
     small integer primitives, so QCheck's integrated shrinking already
     reduces seeds and counts; {!shrink} then does the semantic
     minimization the generic shrinker cannot. *)
  let gen ?(n_max = 4) ?(ops_max = 5) () =
    let open QCheck2.Gen in
    let* n = int_range 2 (max 2 n_max) in
    let* seed = int_bound 999_999 in
    let* script_seed = int_bound 999_999 in
    let* ops = int_range 1 (max 1 ops_max) in
    let* fifo = bool in
    let* mean_delay = oneofl [ 2.0; 5.0; 15.0 ] in
    let scripts =
      let rng = Prng.create (script_seed + 1) in
      Array.init n (fun _ ->
          List.init ops (fun _ ->
              if Prng.int rng 4 = 0 then
                Protocol.Invoke_query (P.random_query rng)
              else Protocol.Invoke_update (P.random_update rng)))
    in
    let gen_partition =
      let* from = int_range 5 120 in
      let* width = int_range 5 200 in
      let* pid = int_bound (n - 1) in
      return
        {
          Network.from_time = float_of_int from;
          to_time = float_of_int (from + width);
          group = [ pid ];
        }
    in
    let* partitions = list_size (int_bound 2) gen_partition in
    let* crashes =
      list_size
        (int_bound ((n - 1) / 2))
        (let* tm = int_range 10 150 in
         let* pid = int_bound (n - 1) in
         return (float_of_int tm, pid))
    in
    let gen_churn =
      let* pid = int_bound (n - 1) in
      let* t_leave = int_range 10 120 in
      let* gap = int_range 10 120 in
      let* comeback = bool in
      return
        (if comeback then
           [
             { Network.time = float_of_int t_leave; pid; action = Network.Leave };
             {
               Network.time = float_of_int (t_leave + gap);
               pid;
               action = Network.Rejoin;
             };
           ]
         else
           [ { Network.time = float_of_int t_leave; pid; action = Network.Leave } ])
    in
    let* churn = map List.concat (list_size (int_bound 2) gen_churn) in
    return
      {
        seed;
        n;
        mean_delay;
        fifo;
        scripts;
        partitions;
        crashes;
        churn;
        final_read = Some (P.random_query (Prng.create (script_seed + 2)));
      }
end
