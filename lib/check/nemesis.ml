module Make (P : Protocol.PROTOCOL) = struct
  module R = Runner.Make (P)

  type campaign = {
    runs : int;
    processes : int;
    ops_per_process : int;
    max_crashes : int;
    crash_probability : float;
    partition_probability : float;
    fifo : bool;
    base_seed : int;
  }

  let default_campaign =
    {
      runs = 50;
      processes = 4;
      ops_per_process = 30;
      max_crashes = 2;
      crash_probability = 0.5;
      partition_probability = 0.5;
      fifo = false;
      base_seed = 1000;
    }

  type verdict = {
    runs : int;
    crashes_injected : int;
    partitions_injected : int;
    crash_cap : int;
    capped_runs : int;
    convergence_failures : int;
    stalled_operations : int;
    certificate_disagreements : int;
    failing_seeds : int list;
  }

  (* The wait-free fault model needs a survivor, so the crash budget is
     clamped to [processes - 1]. The clamp used to be silent: a campaign
     asking for more crashes than the process count allows reported the
     requested [max_crashes] while drawing from the smaller cap. *)
  let effective_crash_cap (campaign : campaign) =
    min campaign.max_crashes (campaign.processes - 1)

  let draw_faults (campaign : campaign) rng =
    let n = campaign.processes in
    let crashes =
      if Prng.float rng 1.0 < campaign.crash_probability then begin
        let count = 1 + Prng.int rng (effective_crash_cap campaign) in
        let victims = Array.init n Fun.id in
        Prng.shuffle rng victims;
        List.init count (fun i -> (Prng.float rng 150.0, victims.(i)))
      end
      else []
    in
    let partitions =
      if Prng.float rng 1.0 < campaign.partition_probability then begin
        let from_time = Prng.float rng 80.0 in
        let duration = 20.0 +. Prng.float rng 120.0 in
        let group_size = 1 + Prng.int rng (n - 1) in
        let members = Array.init n Fun.id in
        Prng.shuffle rng members;
        [
          {
            Network.from_time;
            to_time = from_time +. duration;
            group = Array.to_list (Array.sub members 0 group_size);
          };
        ]
      end
      else []
    in
    (crashes, partitions)

  let run (campaign : campaign) ~workload ~final_read =
    let crashes_injected = ref 0 in
    let partitions_injected = ref 0 in
    let capped_runs = ref 0 in
    let cap_bites = campaign.max_crashes > campaign.processes - 1 in
    let convergence_failures = ref 0 in
    let stalled_operations = ref 0 in
    let certificate_disagreements = ref 0 in
    let failing_seeds = ref [] in
    for i = 0 to campaign.runs - 1 do
      let seed = campaign.base_seed + i in
      let rng = Prng.create seed in
      let fault_rng = Prng.split rng in
      let crashes, partitions = draw_faults campaign fault_rng in
      crashes_injected := !crashes_injected + List.length crashes;
      if cap_bites && crashes <> [] then incr capped_runs;
      partitions_injected := !partitions_injected + List.length partitions;
      let scripts = workload rng ~n:campaign.processes ~ops:campaign.ops_per_process in
      let config =
        {
          (R.default_config ~n:campaign.processes ~seed) with
          R.fifo = campaign.fifo;
          crashes;
          partitions;
          final_read = Some final_read;
        }
      in
      let r = R.run config ~workload:scripts in
      let clean_run =
        r.R.converged
        && r.R.metrics.Metrics.ops_incomplete = 0
        && r.R.certificates_agree
      in
      if not r.R.converged then incr convergence_failures;
      stalled_operations := !stalled_operations + r.R.metrics.Metrics.ops_incomplete;
      if not r.R.certificates_agree then incr certificate_disagreements;
      if not clean_run then failing_seeds := seed :: !failing_seeds
    done;
    {
      runs = campaign.runs;
      crashes_injected = !crashes_injected;
      partitions_injected = !partitions_injected;
      crash_cap = effective_crash_cap campaign;
      capped_runs = !capped_runs;
      convergence_failures = !convergence_failures;
      stalled_operations = !stalled_operations;
      certificate_disagreements = !certificate_disagreements;
      failing_seeds = List.rev !failing_seeds;
    }

  let clean v =
    v.convergence_failures = 0 && v.stalled_operations = 0
    && v.certificate_disagreements = 0
end
