type 'replica snapshotter = {
  save : 'replica -> string;
  load : 'replica -> string -> unit;
}

type stats = {
  states_explored : int;
  states_pruned_por : int;
  states_deduped : int;
  checkpoint_restores : int;
  protocol_steps : int;
}

module Make (P : Protocol.PROTOCOL) = struct
  module C = Criteria.Make (P)

  type report = {
    executions : int;
    exhaustive : bool;
    failures : (Criteria.t * int) list;
    distinct_failures : (Criteria.t * int) list;
    first_failures : (Criteria.t * string) list;
    stats : stats;
  }

  type choice = Invoke of int | Deliver of int | Crash of int

  (* The mutable exploration world. Unlike the seed checker, which built
     a fresh world for every DFS node, one world per branch is mutated
     in place and rewound on backtracking. *)
  type world = {
    mutable replicas : P.t array;
    mutable scripts : (P.update, P.query) Protocol.invocation list array;
    mutable pending : (int * (int * int * P.message)) list;  (* id -> dst, src, msg *)
    mutable next_msg : int;
    steps : (P.update, P.query, P.output) History.step list ref array;
    crashed : bool array;
  }

  (* Mutable counter accumulator behind the exposed immutable [stats]. *)
  type acc = {
    mutable a_explored : int;
    mutable a_pruned : int;
    mutable a_deduped : int;
    mutable a_restores : int;
    mutable a_steps : int;
  }

  let fresh_acc () =
    { a_explored = 0; a_pruned = 0; a_deduped = 0; a_restores = 0; a_steps = 0 }

  (* Returns the world plus a replica-reset function: rewinding restores
     snapshots into freshly created replicas (a fresh Lamport clock can
     be advanced exactly to the saved value; an old one cannot move
     backwards). *)
  let make_world scripts0 =
    let n = Array.length scripts0 in
    let w =
      {
        replicas = [||];
        scripts = Array.copy scripts0;
        pending = [];
        next_msg = 0;
        steps = Array.init n (fun _ -> ref []);
        crashed = Array.make n false;
      }
    in
    let make_ctx pid =
      {
        Protocol.pid;
        n;
        now = (fun () -> 0.0);
        send =
          (fun ~dst msg ->
            w.pending <- w.pending @ [ (w.next_msg, (dst, pid, msg)) ];
            w.next_msg <- w.next_msg + 1);
        broadcast =
          (fun msg ->
            for dst = 0 to n - 1 do
              if dst <> pid then begin
                w.pending <- w.pending @ [ (w.next_msg, (dst, pid, msg)) ];
                w.next_msg <- w.next_msg + 1
              end
            done);
        broadcast_batch =
          (* Batching is a wire-level optimisation; for exploration the
             batch is just its messages, so delivery interleavings are
             still enumerated per message. *)
          (fun msgs ->
            List.iter
              (fun msg ->
                for dst = 0 to n - 1 do
                  if dst <> pid then begin
                    w.pending <- w.pending @ [ (w.next_msg, (dst, pid, msg)) ];
                    w.next_msg <- w.next_msg + 1
                  end
                done)
              msgs);
        set_timer =
          (fun ~delay:_ _ -> invalid_arg "Explore: protocols may not use timers");
        count_replay = (fun _ -> ());
        obs = None;
      }
    in
    let reset_replicas () =
      w.replicas <- Array.init n (fun pid -> P.create (make_ctx pid))
    in
    reset_replicas ();
    (w, reset_replicas)

  (* Execute one scheduled event. Wait-freedom is enforced: operations
     must complete within their own activation. *)
  let perform acc w choice =
    acc.a_steps <- acc.a_steps + 1;
    match choice with
    | Invoke pid -> (
      match w.scripts.(pid) with
      | [] -> invalid_arg "Explore: invoke on exhausted script"
      | action :: rest ->
        w.scripts <- Array.copy w.scripts;
        w.scripts.(pid) <- rest;
        let completed = ref false in
        (match action with
        | Protocol.Invoke_update u ->
          w.steps.(pid) := History.U u :: !(w.steps.(pid));
          P.update w.replicas.(pid) u ~on_done:(fun () -> completed := true)
        | Protocol.Invoke_query q ->
          P.query w.replicas.(pid) q ~on_result:(fun o ->
              w.steps.(pid) := History.Q (q, o) :: !(w.steps.(pid));
              completed := true));
        if not !completed then
          invalid_arg "Explore: operation did not complete wait-free")
    | Deliver id -> (
      match List.assoc_opt id w.pending with
      | None -> invalid_arg "Explore: delivering unknown message"
      | Some (dst, src, msg) ->
        w.pending <- List.remove_assoc id w.pending;
        (* Deliveries to a crashed process vanish. *)
        if not w.crashed.(dst) then P.receive w.replicas.(dst) ~src msg)
    | Crash pid -> w.crashed.(pid) <- true

  let finish w ~final_read =
    let n = Array.length w.replicas in
    for pid = 0 to n - 1 do
      if not w.crashed.(pid) then
        P.query w.replicas.(pid) final_read ~on_result:(fun o ->
            w.steps.(pid) := History.Qw (final_read, o) :: !(w.steps.(pid)))
    done;
    History.make (Array.to_list (Array.map (fun r -> List.rev !r) w.steps))

  let render_history h =
    Format.asprintf "%a" (History.pp P.pp_update P.pp_query P.pp_output) h

  (* ---------------- cheap (non-replica) world state ---------------- *)

  type cheap = {
    c_scripts : (P.update, P.query) Protocol.invocation list array;
    c_pending : (int * (int * int * P.message)) list;
    c_next : int;
    c_steps : (P.update, P.query, P.output) History.step list array;
    c_crashed : bool array;
  }

  let capture w =
    {
      c_scripts = w.scripts;  (* [perform] copies before mutating *)
      c_pending = w.pending;
      c_next = w.next_msg;
      c_steps = Array.map (fun r -> !r) w.steps;
      c_crashed = Array.copy w.crashed;
    }

  let restore_cheap w c =
    w.scripts <- c.c_scripts;
    w.pending <- c.c_pending;
    w.next_msg <- c.c_next;
    Array.iteri (fun i s -> w.steps.(i) := s) c.c_steps;
    Array.blit c.c_crashed 0 w.crashed 0 (Array.length w.crashed)

  (* ------------- transition labels and independence ---------------- *)

  type lbl =
    | L_invoke of int
    | L_crash of int
    | L_deliver of int * int * P.message  (* dst, src, payload *)

  let lbl_string = function
    | L_invoke p -> "I:" ^ string_of_int p
    | L_crash p -> "C:" ^ string_of_int p
    | L_deliver (dst, src, m) ->
      Printf.sprintf "D:%d:%d:%s" dst src (P.describe_message m)

  (* Conservative structural independence: transitions touching disjoint
     replicas commute and never disable each other. Same-replica
     deliveries are independent only if the caller's oracle vouches for
     them; crashes are dependent with everything. *)
  let independent commute a b =
    match (a, b) with
    | L_crash _, _ | _, L_crash _ -> false
    | L_invoke p, L_invoke q -> p <> q
    | L_invoke p, L_deliver (dst, _, _) | L_deliver (dst, _, _), L_invoke p ->
      dst <> p
    | L_deliver (d1, _, m1), L_deliver (d2, _, m2) -> d1 <> d2 || commute m1 m2

  (* --------------------- state fingerprinting ---------------------- *)

  (* The key covers replica states (via [key_fn]), in-flight messages,
     script positions, crash flags AND the history recorded so far:
     equal keys must imply equal pasts as well as equal futures,
     otherwise cutting the second subtree could lose histories whose
     prefixes differ (e.g. in an early query output) even though the
     protocol states have since converged. The scripts are fixed for a
     whole exploration, so the steps a process has taken are determined
     by its script position except for the query {e outputs} — those are
     the only step component that needs hashing. *)
  let state_key key_fn msg_fn w =
    let fp = ref Fingerprint.empty in
    Array.iter (fun s -> fp := Fingerprint.int !fp (List.length s)) w.scripts;
    Array.iter (fun c -> fp := Fingerprint.bool !fp c) w.crashed;
    let msgs =
      List.map
        (fun (_, (dst, src, m)) -> Printf.sprintf "%d:%d:%s" dst src (msg_fn m))
        w.pending
    in
    fp := Fingerprint.list Fingerprint.string !fp (List.sort String.compare msgs);
    Array.iter (fun r -> fp := Fingerprint.string !fp (key_fn r)) w.replicas;
    Array.iter
      (fun steps ->
        fp := Fingerprint.int !fp (List.length !steps);
        List.iter
          (function
            | History.U _ -> ()
            | History.Q (_, o) | History.Qw (_, o) ->
              fp := Fingerprint.string !fp (Format.asprintf "%a" P.pp_output o))
          !steps)
      w.steps;
    !fp

  (* ------------------------- exploration --------------------------- *)

  type frag = {
    fr_raw : int array;  (* violating executions, by criterion index *)
    fr_hist : (string, unit) Hashtbl.t array;  (* distinct violating histories *)
    fr_first : string option array;
    fr_acc : acc;
  }

  let explore ?(limit = 200_000) ?(criteria = [ Criteria.UC; Criteria.EC ])
      ?(max_crashes = 0) ?(por = false) ?(dedup = false) ?(checkpoint_every = 4)
      ?snapshot ?state_key:user_key ?(message_key = P.describe_message)
      ?(deliveries_commute = fun _ _ -> false) ?(domains = 1) ~scripts
      ~final_read () =
    if checkpoint_every <= 0 then
      invalid_arg "Explore: checkpoint_every must be positive";
    let key_fn =
      match (user_key, snapshot) with
      | Some f, _ -> Some f
      | None, Some s -> Some s.save
      | None, None -> None
    in
    (match (dedup, key_fn) with
    | true, None -> invalid_arg "Explore: dedup requires ~state_key or ~snapshot"
    | _ -> ());
    let criteria_arr = Array.of_list criteria in
    let ncrit = Array.length criteria_arr in
    let executions = Atomic.make 0 in
    let hit_limit = Atomic.make false in
    let choices_of w =
      (* Identical enumeration order to the seed checker. *)
      let n = Array.length w.scripts in
      let invocations =
        List.filter_map
          (fun pid ->
            if w.scripts.(pid) <> [] && not w.crashed.(pid) then Some (Invoke pid)
            else None)
          (List.init n Fun.id)
      in
      let deliveries = List.map (fun (id, _) -> Deliver id) w.pending in
      let already_crashed =
        Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 w.crashed
      in
      let crash_choices =
        if already_crashed >= min max_crashes (Array.length w.crashed - 1) then []
        else
          List.filter_map
            (fun pid ->
              (* Only crash a process that still has something to do:
                 crashing an idle one reaches an already-covered state. *)
              if (not w.crashed.(pid)) && w.scripts.(pid) <> [] then
                Some (Crash pid)
              else None)
            (List.init (Array.length w.crashed) Fun.id)
      in
      invocations @ deliveries @ crash_choices
    in
    let lbl_of w = function
      | Invoke p -> L_invoke p
      | Crash p -> L_crash p
      | Deliver id -> (
        match List.assoc_opt id w.pending with
        | Some (dst, src, m) -> L_deliver (dst, src, m)
        | None -> invalid_arg "Explore: labelling unknown message")
    in
    let fresh_frag () =
      {
        fr_raw = Array.make ncrit 0;
        fr_hist = Array.init ncrit (fun _ -> Hashtbl.create 16);
        fr_first = Array.make ncrit None;
        fr_acc = fresh_acc ();
      }
    in
    (* Count one complete execution and check its history. *)
    let record_execution frag w =
      let c = 1 + Atomic.fetch_and_add executions 1 in
      if c >= limit then Atomic.set hit_limit true;
      let h = finish w ~final_read in
      let rendered = lazy (render_history h) in
      Array.iteri
        (fun ci crit ->
          if not (C.holds crit h) then begin
            frag.fr_raw.(ci) <- frag.fr_raw.(ci) + 1;
            let s = Lazy.force rendered in
            Hashtbl.replace frag.fr_hist.(ci) s ();
            if frag.fr_first.(ci) = None then frag.fr_first.(ci) <- Some s
          end)
        criteria_arr
    in
    (* Explore the subtree under one first-level branch. *)
    let run_branch (bidx, first_choice, first_sleep) =
      let w, reset_replicas = make_world scripts in
      let frag = fresh_frag () in
      let acc = frag.fr_acc in
      let initial_cheap = capture w in
      let path = ref (Array.make 64 first_choice) in
      let path_len = ref 0 in
      let path_push c =
        if !path_len = Array.length !path then begin
          let a = Array.make (2 * !path_len) c in
          Array.blit !path 0 a 0 !path_len;
          path := a
        end;
        !path.(!path_len) <- c;
        incr path_len
      in
      let path_pop () = decr path_len in
      let checkpoints : (int * cheap * string array) Stack.t = Stack.create () in
      let visited : (int64, string list list ref) Hashtbl.t =
        Hashtbl.create 1024
      in
      (* Rewind the world to the state after the first [d] path events:
         restore the nearest checkpoint at depth <= d and replay
         forward — O(checkpoint_every) instead of O(d). Without a
         snapshotter, rebuild from scratch (the seed behaviour). *)
      let rewind_to d =
        while
          match Stack.top_opt checkpoints with
          | Some (cd, _, _) -> cd > d
          | None -> false
        do
          ignore (Stack.pop checkpoints)
        done;
        match (Stack.top_opt checkpoints, snapshot) with
        | Some (cd, ch, snaps), Some s ->
          restore_cheap w ch;
          reset_replicas ();
          Array.iteri (fun i r -> s.load r snaps.(i)) w.replicas;
          acc.a_restores <- acc.a_restores + 1;
          for i = cd to d - 1 do
            perform acc w !path.(i)
          done
        | _ ->
          restore_cheap w initial_cheap;
          reset_replicas ();
          for i = 0 to d - 1 do
            perform acc w !path.(i)
          done
      in
      (* Has this state already been explored under a sleep set included
         in the current one? (The inclusion check is what keeps sleep
         sets sound in the presence of state matching.) *)
      let covered key sleep_strs =
        match Hashtbl.find_opt visited key with
        | None -> false
        | Some stored ->
          List.exists
            (fun s0 -> List.for_all (fun x -> List.mem x sleep_strs) s0)
            !stored
      in
      let record_visit key sleep_strs =
        match Hashtbl.find_opt visited key with
        | None -> Hashtbl.add visited key (ref [ sleep_strs ])
        | Some stored -> stored := sleep_strs :: !stored
      in
      let rec dfs depth sleep =
        if not (Atomic.get hit_limit) then begin
          acc.a_explored <- acc.a_explored + 1;
          let pushed =
            match snapshot with
            | Some s when depth mod checkpoint_every = 0 ->
              Stack.push (depth, capture w, Array.map s.save w.replicas)
                checkpoints;
              true
            | _ -> false
          in
          let choices = choices_of w in
          let skip =
            if not dedup then false
            else begin
              let key = state_key (Option.get key_fn) message_key w in
              let sleep_strs =
                List.sort_uniq String.compare (List.map lbl_string sleep)
              in
              if covered key sleep_strs then begin
                acc.a_deduped <- acc.a_deduped + 1;
                true
              end
              else begin
                record_visit key sleep_strs;
                false
              end
            end
          in
          (if not skip then
             match choices with
             | [] -> record_execution frag w
             | _ ->
               let labelled = List.map (fun c -> (c, lbl_of w c)) choices in
               let sleep_strs = List.map lbl_string sleep in
               let done_ = ref [] in
               let dirty = ref false in
               List.iter
                 (fun (c, l) ->
                   if not (Atomic.get hit_limit) then
                     if por && List.mem (lbl_string l) sleep_strs then
                       acc.a_pruned <- acc.a_pruned + 1
                     else begin
                       if !dirty then rewind_to depth;
                       dirty := true;
                       let child_sleep =
                         if por then
                           List.filter
                             (fun z -> independent deliveries_commute z l)
                             (sleep @ !done_)
                         else []
                       in
                       path_push c;
                       perform acc w c;
                       dfs (depth + 1) child_sleep;
                       path_pop ();
                       done_ := !done_ @ [ l ]
                     end)
                 labelled);
          if pushed then ignore (Stack.pop checkpoints)
        end
      in
      (match snapshot with
      | Some s ->
        Stack.push (0, capture w, Array.map s.save w.replicas) checkpoints
      | None -> ());
      path_push first_choice;
      perform acc w first_choice;
      dfs 1 first_sleep;
      (bidx, frag)
    in
    (* Root: enumerate first-level branches (with their sleep sets when
       reducing), then fan out — sequentially or over domains. *)
    let w0, _reset0 = make_world scripts in
    let root_choices = choices_of w0 in
    let fragments =
      match root_choices with
      | [] ->
        (* Degenerate scope: the empty execution is the only one. *)
        let frag = fresh_frag () in
        record_execution frag w0;
        [ (0, frag) ]
      | _ ->
        let labelled = List.map (fun c -> (c, lbl_of w0 c)) root_choices in
        let branches =
          List.mapi
            (fun i (c, l) ->
              let sleep =
                if por then
                  List.filteri (fun j _ -> j < i) labelled
                  |> List.filter_map (fun (_, l') ->
                         if independent deliveries_commute l' l then Some l'
                         else None)
                else []
              in
              (i, c, sleep))
            labelled
        in
        if domains <= 1 then List.map run_branch branches
        else begin
          let d = max 1 (min domains (List.length branches)) in
          let buckets = Array.make d [] in
          List.iteri (fun i b -> buckets.(i mod d) <- b :: buckets.(i mod d))
            branches;
          let handles =
            Array.map
              (fun bs -> Domain.spawn (fun () -> List.map run_branch (List.rev bs)))
              buckets
          in
          List.concat_map Domain.join (Array.to_list handles)
        end
    in
    let fragments =
      List.sort (fun (a, _) (b, _) -> Int.compare a b) fragments
    in
    let raw = Array.make ncrit 0 in
    let first = Array.make ncrit None in
    let hists = Array.init ncrit (fun _ -> Hashtbl.create 16) in
    let tot = fresh_acc () in
    tot.a_explored <- 1 (* the root node itself *);
    List.iter
      (fun (_, fr) ->
        for ci = 0 to ncrit - 1 do
          raw.(ci) <- raw.(ci) + fr.fr_raw.(ci);
          Hashtbl.iter (fun h () -> Hashtbl.replace hists.(ci) h ()) fr.fr_hist.(ci);
          if first.(ci) = None then first.(ci) <- fr.fr_first.(ci)
        done;
        let a = fr.fr_acc in
        tot.a_explored <- tot.a_explored + a.a_explored;
        tot.a_pruned <- tot.a_pruned + a.a_pruned;
        tot.a_deduped <- tot.a_deduped + a.a_deduped;
        tot.a_restores <- tot.a_restores + a.a_restores;
        tot.a_steps <- tot.a_steps + a.a_steps)
      fragments;
    let per_criterion a = List.mapi (fun ci c -> (c, a.(ci))) criteria in
    {
      executions = Atomic.get executions;
      exhaustive = not (Atomic.get hit_limit);
      failures = per_criterion raw;
      distinct_failures =
        List.mapi (fun ci c -> (c, Hashtbl.length hists.(ci))) criteria;
      first_failures =
        List.filteri (fun ci _ -> first.(ci) <> None) criteria
        |> List.map (fun c ->
               let ci =
                 let rec idx i = if criteria_arr.(i) = c then i else idx (i + 1) in
                 idx 0
               in
               (c, Option.get first.(ci)));
      stats =
        {
          states_explored = tot.a_explored;
          states_pruned_por = tot.a_pruned;
          states_deduped = tot.a_deduped;
          checkpoint_restores = tot.a_restores;
          protocol_steps = tot.a_steps;
        };
    }
end
