(** Randomized fault campaigns (a Jepsen-style nemesis for the
    simulator).

    Where {!Model_check} is exhaustive on tiny scripts, a campaign runs
    {e many} medium-sized simulations, each with faults drawn from the
    run's seed — up to [max_crashes] crashes at random times (always
    leaving at least one survivor: the wait-free fault model of Section
    VII.A) and, with some probability, a partition that isolates a
    random group for a random window and then heals (the network stays
    reliable, as the paper assumes).

    For each run it asserts the two properties every update-consistent
    wait-free protocol must keep under this fault model:

    - {b convergence}: the final reads of the surviving processes agree
      (the partition healed and every surviving process's messages were
      delivered);
    - {b wait-freedom}: no operation of a surviving process stalls.

    Certificate disagreement is tracked as a third, stronger signal for
    log-based protocols. *)

module Make (P : Protocol.PROTOCOL) : sig
  type campaign = {
    runs : int;
    processes : int;
    ops_per_process : int;
    max_crashes : int;
        (** requested crash budget; the {e effective} cap is
            [min max_crashes (processes - 1)] — one survivor always
            remains — and is reported as [verdict.crash_cap] *)
    crash_probability : float;  (** chance a given run has any crash *)
    partition_probability : float;
    fifo : bool;
    base_seed : int;
  }

  val default_campaign : campaign
  (** 50 runs, 4 processes, 30 ops each, up to 2 crashes per crashing
      run (runs crash with p=0.5; with 4 processes the [processes - 1]
      clamp never bites, so the budget really is 2), partitions with
      p=0.5, no FIFO, base seed 1000. *)

  type verdict = {
    runs : int;
    crashes_injected : int;
    partitions_injected : int;
    crash_cap : int;
        (** the effective per-run crash budget,
            [min max_crashes (processes - 1)] *)
    capped_runs : int;
        (** crashing runs whose budget was silently clamped below the
            requested [max_crashes]; [0] whenever the request already
            fit *)
    convergence_failures : int;
    stalled_operations : int;
    certificate_disagreements : int;
    failing_seeds : int list;
  }

  val run :
    campaign ->
    workload:(Prng.t -> n:int -> ops:int -> (P.update, P.query) Protocol.invocation list array) ->
    final_read:P.query ->
    verdict

  val clean : verdict -> bool
  (** No convergence failures, no stalls, no certificate splits. *)
end
