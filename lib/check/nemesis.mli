(** Randomized fault campaigns (a Jepsen-style nemesis for the
    simulator).

    Where {!Model_check} is exhaustive on tiny scripts, a campaign runs
    {e many} medium-sized simulations, each with faults drawn from the
    run's seed — up to [max_crashes] crashes at random times (always
    leaving at least one survivor: the wait-free fault model of Section
    VII.A) and, with some probability, a partition that isolates a
    random group for a random window and then heals (the network stays
    reliable, as the paper assumes).

    For each run it asserts the two properties every update-consistent
    wait-free protocol must keep under this fault model:

    - {b convergence}: the final reads of the surviving processes agree
      (the partition healed and every surviving process's messages were
      delivered);
    - {b wait-freedom}: no operation of a surviving process stalls.

    Certificate disagreement is tracked as a third, stronger signal for
    log-based protocols. *)

module Make (P : Protocol.PROTOCOL) : sig
  type campaign = {
    runs : int;
    processes : int;
    ops_per_process : int;
    max_crashes : int;  (** capped at [processes - 1] *)
    crash_probability : float;  (** chance a given run has any crash *)
    partition_probability : float;
    fifo : bool;
    base_seed : int;
  }

  val default_campaign : campaign
  (** 50 runs, 4 processes, 30 ops each, ≤2 crashes (p=0.5), partitions
      with p=0.5, no FIFO, base seed 1000. *)

  type verdict = {
    runs : int;
    crashes_injected : int;
    partitions_injected : int;
    convergence_failures : int;
    stalled_operations : int;
    certificate_disagreements : int;
    failing_seeds : int list;
  }

  val run :
    campaign ->
    workload:(Prng.t -> n:int -> ops:int -> (P.update, P.query) Protocol.invocation list array) ->
    final_read:P.query ->
    verdict

  val clean : verdict -> bool
  (** No convergence failures, no stalls, no certificate splits. *)
end
