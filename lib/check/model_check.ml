module Make = Explore.Make
