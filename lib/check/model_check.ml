module Make (P : Protocol.PROTOCOL) = struct
  module C = Criteria.Make (P)

  type report = {
    executions : int;
    exhaustive : bool;
    failures : (Criteria.t * int) list;
    first_failure : string option;
  }

  type choice = Invoke of int | Deliver of int | Crash of int

  (* A replay of one schedule prefix from scratch. *)
  type world = {
    mutable replicas : P.t array;
    mutable scripts : (P.update, P.query) Protocol.invocation list array;
    mutable pending : (int * (int * int * P.message)) list;  (* id -> dst, src, msg *)
    mutable next_msg : int;
    steps : (P.update, P.query, P.output) History.step list ref array;
    crashed : bool array;
  }

  let fresh_world scripts =
    let n = Array.length scripts in
    let w =
      {
        replicas = [||];
        scripts = Array.copy scripts;
        pending = [];
        next_msg = 0;
        steps = Array.init n (fun _ -> ref []);
        crashed = Array.make n false;
      }
    in
    let make_ctx pid =
      {
        Protocol.pid;
        n;
        now = (fun () -> 0.0);
        send =
          (fun ~dst msg ->
            w.pending <- w.pending @ [ (w.next_msg, (dst, pid, msg)) ];
            w.next_msg <- w.next_msg + 1);
        broadcast =
          (fun msg ->
            for dst = 0 to n - 1 do
              if dst <> pid then begin
                w.pending <- w.pending @ [ (w.next_msg, (dst, pid, msg)) ];
                w.next_msg <- w.next_msg + 1
              end
            done);
        set_timer = (fun ~delay:_ _ -> invalid_arg "Model_check: protocols may not use timers");
        count_replay = (fun _ -> ());
      }
    in
    w.replicas <- Array.init n (fun pid -> P.create (make_ctx pid));
    w

  (* Execute one scheduled event. Wait-freedom is enforced: operations
     must complete within their own activation. *)
  let perform w = function
    | Invoke pid -> (
      match w.scripts.(pid) with
      | [] -> invalid_arg "Model_check: invoke on exhausted script"
      | action :: rest ->
        w.scripts <- Array.copy w.scripts;
        w.scripts.(pid) <- rest;
        let completed = ref false in
        (match action with
        | Protocol.Invoke_update u ->
          w.steps.(pid) := History.U u :: !(w.steps.(pid));
          P.update w.replicas.(pid) u ~on_done:(fun () -> completed := true)
        | Protocol.Invoke_query q ->
          P.query w.replicas.(pid) q ~on_result:(fun o ->
              w.steps.(pid) := History.Q (q, o) :: !(w.steps.(pid));
              completed := true));
        if not !completed then
          invalid_arg "Model_check: operation did not complete wait-free")
    | Deliver id -> (
      match List.assoc_opt id w.pending with
      | None -> invalid_arg "Model_check: delivering unknown message"
      | Some (dst, src, msg) ->
        w.pending <- List.remove_assoc id w.pending;
        (* Deliveries to a crashed process vanish. *)
        if not w.crashed.(dst) then P.receive w.replicas.(dst) ~src msg)
    | Crash pid -> w.crashed.(pid) <- true

  let replay scripts prefix =
    let w = fresh_world scripts in
    List.iter (perform w) (List.rev prefix);
    w

  let finish w ~final_read =
    let n = Array.length w.replicas in
    for pid = 0 to n - 1 do
      if not w.crashed.(pid) then
        P.query w.replicas.(pid) final_read ~on_result:(fun o ->
            w.steps.(pid) := History.Qw (final_read, o) :: !(w.steps.(pid)))
    done;
    History.make (Array.to_list (Array.map (fun r -> List.rev !r) w.steps))

  let render_history h =
    Format.asprintf "%a" (History.pp P.pp_update P.pp_query P.pp_output) h

  let explore ?(limit = 200_000) ?(criteria = [ Criteria.UC; Criteria.EC ])
      ?(max_crashes = 0) ~scripts ~final_read () =
    let executions = ref 0 in
    let hit_limit = ref false in
    let failures = List.map (fun c -> (c, ref 0)) criteria in
    let first_failure = ref None in
    let rec dfs prefix =
      if not !hit_limit then begin
        let w = replay scripts prefix in
        let invocations =
          List.filter_map
            (fun pid ->
              if w.scripts.(pid) <> [] && not w.crashed.(pid) then Some (Invoke pid)
              else None)
            (List.init (Array.length w.scripts) Fun.id)
        in
        let deliveries = List.map (fun (id, _) -> Deliver id) w.pending in
        let already_crashed =
          Array.fold_left (fun acc c -> if c then acc + 1 else acc) 0 w.crashed
        in
        let crash_choices =
          if already_crashed >= min max_crashes (Array.length w.crashed - 1) then []
          else
            List.filter_map
              (fun pid ->
                (* Only crash a process that still has something to do:
                   crashing an idle one reaches an already-covered state. *)
                if (not w.crashed.(pid)) && w.scripts.(pid) <> [] then Some (Crash pid)
                else None)
              (List.init (Array.length w.crashed) Fun.id)
        in
        let choices = invocations @ deliveries @ crash_choices in
        match choices with
        | [] ->
          incr executions;
          if !executions >= limit then hit_limit := true;
          let h = finish w ~final_read in
          List.iter
            (fun (c, count) ->
              if not (C.holds c h) then begin
                incr count;
                if !first_failure = None then
                  first_failure := Some (Criteria.name c ^ " violated by:\n" ^ render_history h)
              end)
            failures
        | _ -> List.iter (fun choice -> dfs (choice :: prefix)) choices
      end
    in
    dfs [];
    {
      executions = !executions;
      exhaustive = not !hit_limit;
      failures = List.map (fun (c, r) -> (c, !r)) failures;
      first_failure = !first_failure;
    }
end
