module For_replica
    (A : Uqadt.S)
    (C : Update_codec.S with type update = A.update)
    (G : Generic.S
           with type state = A.state
            and type update = A.update
            and type query = A.query
            and type output = A.output) =
struct
  module P = Persist.Over (G) (C)

  let snapshotter =
    { Explore.save = P.snapshot_replica; load = P.restore_replica }

  let deliveries_commute _ _ = true

  let require_commutative what =
    if not A.commutative then
      invalid_arg
        (Printf.sprintf
           "Snapshot.%s: %s is not commutative; replay order is observable, a \
            timestamp-blind key would merge distinguishable states"
           what A.name)

  let commutative_key replica =
    require_commutative "commutative_key";
    let entries =
      List.map
        (fun (_, origin, u) ->
          let s = C.to_string u in
          (* Length-prefixed so concatenation stays injective. *)
          Printf.sprintf "%d:%d:%s" origin (String.length s) s)
        (G.local_log replica)
    in
    String.concat "" (List.sort String.compare entries)

  let commutative_message_key m =
    require_commutative "commutative_message_key";
    C.to_string (G.message_update m)
end

module For_generic
    (A : Uqadt.S)
    (C : Update_codec.S with type update = A.update) =
  For_replica (A) (C) (Generic.Make (A))

module For_commutative (A : Uqadt.S) = struct
  let deliveries_commute _ _ = A.commutative
end
