(** Property-driven scenario engine.

    A {e scenario} packages a complete adversarial run description —
    per-process scripts, delay model, FIFO-ness, partitions, crashes,
    churn — as one first-class value that can be generated (QCheck),
    executed (through {!Runner} with the online {!Obs.Monitor}s
    attached and a journal recording), and {e shrunk}: when a run is
    flagged by a monitor, {!Make.shrink} greedily re-runs structurally
    smaller candidates — every re-run deterministic, since everything
    is seeded — until no smaller scenario still violates the same
    criterion. The result is a smallest violating journal, replayable
    with [ucsim replay] and emitted by [ucsim shrink]. *)

module Make (P : Protocol.PROTOCOL) : sig
  module R : module type of Runner.Make (P)

  type t = {
    seed : int;
    n : int;
    mean_delay : float;  (** exponential replica-mesh delay mean *)
    fifo : bool;
    scripts : R.action list array;  (** width must equal [n] *)
    partitions : Network.partition list;
    crashes : (float * int) list;
    churn : Network.churn_event list;
    final_read : P.query option;
  }

  type outcome = {
    violation : Obs.Monitor.violation option;
        (** first monitor violation, with its journal event index *)
    journal : Obs.Journal.t;  (** sealed, replayable *)
    events : int;
    converged : bool;
  }

  val size : t -> int
  (** Structural size (total ops + faults + churn + processes) — the
      measure the shrinker strictly decreases. *)

  val pp : Format.formatter -> t -> unit

  val run : ?criteria:Obs.Monitor.criterion list -> t -> outcome
  (** Execute deterministically with the monitors attached (all three
      criteria by default) and a journal recording. *)

  type shrunk = {
    scenario : t;
    outcome : outcome;
    runs : int;  (** re-executions the minimization spent *)
  }

  val shrink :
    ?max_runs:int -> ?criteria:Obs.Monitor.criterion list -> t -> shrunk option
  (** [None] when the scenario's run is not flagged by any of the
      [criteria] monitors (all three by default).
      Otherwise greedy descent to a local minimum that still trips the
      {e same criterion} as the original violation: drop whole scripts,
      then churn/crash/partition entries, then empty processes (pids
      remapped), then script halves, then single ops — restarting from
      the first candidate that reproduces, within [max_runs] (default
      400) re-executions. Deterministic end to end. *)

  val gen : ?n_max:int -> ?ops_max:int -> unit -> t QCheck2.Gen.t
  (** Scenario generator for property tests: scripts from the spec's
      own [random_update]/[random_query], minority crash schedules,
      single-pid partition windows, leave/rejoin churn. All structure
      derives from small integer primitives, so QCheck's integrated
      shrinking reduces it; follow with {!shrink} for semantic
      minimization. *)
end
