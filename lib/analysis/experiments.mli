(** Experiment drivers: one entry per artefact in DESIGN.md's
    per-experiment index. Each returns a rendered table (plus expected
    verdicts asserted inline where the paper states them), so the bench
    harness and the CLI print exactly the rows EXPERIMENTS.md records.

    All experiments are deterministic in [seed]. *)

val fig1 : unit -> Table.t
(** F1 — the Figure 1 classification matrix: histories (a)–(d) against
    {EC, SEC, PC, UC, SUC, SC}, checker verdict vs paper caption. *)

val fig2 : unit -> string
(** F2 — Figure 2: the history, the per-process PC witnesses (the
    paper's w1/w2 words), and the EC verdict. *)

val prop1 : seed:int -> Table.t
(** P1 — Proposition 1: Figure 2's program under the pipelined replica
    diverges forever (PC ∧ ¬EC) while Algorithm 1 converges. *)

val prop4_modelcheck : unit -> Table.t
(** P4 — exhaustive model check of Algorithm 1 / Algorithm 2 / CRDT
    fast path on conflict scripts: executions explored, UC/EC/SUC
    violations (expected 0), plus the pipelined counterexample count. *)

val set_comparison : seed:int -> Table.t
(** T6 — Section VI: the same conflict programs on the universal set
    and the CRDT sets; final states, convergence, and which histories
    are update consistent. *)

val protocol_criteria : seed:int -> Table.t
(** T7 — the empirical criteria matrix: run the same small conflict
    program on every set protocol in the repository and report which
    consistency criteria the {e extracted history} satisfies. The
    paper's conceptual comparison (pipelined < update < sequential;
    CRDTs convergent but not UC), decided by the checkers on real
    runs. *)

val invariant_preservation : seed:int -> Table.t
(** T6b — Section VI generalised beyond sets: a bank balance with
    overdraft protection under concurrent withdrawals. The commutative
    (PN-counter) balance goes negative; the update-consistent bank
    applies the guard in the agreed order and never does. *)

val message_complexity : seed:int -> Table.t
(** C1 — messages per update and bytes per message vs number of
    processes and operations: Algorithm 1's constant-size updates vs
    state-shipping CRDTs. *)

val query_cost : seed:int -> Table.t
(** C2 — replay work per query vs log length: naive Algorithm 1 vs
    memoized snapshots vs undo-based vs Algorithm 2. *)

val log_gc : seed:int -> Table.t
(** C3 — retained log length and metadata with and without
    stability-based GC, including the crash case that freezes the
    stability bound. *)

val latency_vs_rtt : seed:int -> Table.t
(** C4 — mean operation latency as network delay grows: wait-free
    constructions stay flat, the ABD linearizable register scales with
    the round trip. *)

val availability : seed:int -> Table.t
(** C4b — a partition isolating a minority: ABD operations stall
    (incomplete), the universal construction stays available and
    converges after healing. *)

val crdt_fastpath : seed:int -> Table.t
(** C5 — commutative types: the universal construction vs the
    apply-on-receive fast path vs native state-based CRDTs. *)

val monitor_latency : seed:int -> Table.t
(** C6 — online monitor detection latency: journal length, first
    violating event index and how far into the run it falls, for
    Algorithm 1 (clean end to end) vs the pipelined replica (caught
    mid-journal), against the post-hoc PC/UC verdicts. *)

val undo_ablation : seed:int -> Table.t
(** A1 — replay work under increasingly heavy-tailed delays (late
    messages): full replay vs undo/redo repair. *)

val convergence_sweep : seed:int -> Table.t
(** A2 — convergence lag of the universal set across delay models and a
    partition scenario. *)

val sessions : seed:int -> Table.t
(** S1 — client sessions over the replica service ({!Clients}): without
    faults, with a crash forcing fail-over, and with a crash under a
    slow mesh where the fail-over visibly rolls the session back. The
    client histories stay update consistent throughout; pipelined
    (session) consistency is what fail-over sacrifices. *)

val divergence_distribution : seed:int -> string
(** A3 — the distribution of convergence lag over 200 independent runs
    under exponential delays: summary statistics and a histogram. The
    unbounded-but-finite inconsistency window is what "eventual" means
    quantitatively. *)

val all : ?markdown:bool -> seed:int -> unit -> (string * string * string) list
(** [(experiment id, title, rendered table)] for every experiment, in
    DESIGN.md order — the generator behind EXPERIMENTS.md and
    [bench_output.txt]. [markdown] renders GitHub tables instead of
    ASCII boxes. *)
