(* Wall-clock throughput of the multicore replica engine, with the
   Proposition 4 differential that makes the numbers trustworthy.

   The engine ([Parallel_engine]) runs one replica per domain under a
   real OS schedule, so no two runs deliver messages in the same order.
   Under strong update consistency that must not matter: the state
   reached depends only on the timestamp total order of the update
   multiset (Prop. 4). This module turns that theorem into an oracle.
   After a parallel run quiesces it checks, per seed:

   1. every replica holds the identical timestamp-sorted log
      (pairwise convergence — certificates and logs compare equal);
   2. every replica's ω answer equals the query evaluated on the
      timestamp-order fold of that log's update multiset;
   3. a fresh replica of the {e sequential} core, restored from the
      converged log ([Generic.restore_log], the persistence/replay
      path) and queried, answers the same;
   4. for commutative specs, a full sequential [Runner] simulation of
      the very same per-process scripts reaches the same ω answer
      (sound only under commutativity: the virtual-time runner assigns
      different timestamps, and order-independence is what erases
      that difference);
   5. no update was lost or duplicated: the converged log length
      equals the number of updates the clients issued.

   Any mismatch is a bug in the engine (or a domain-safety bug in the
   cores), never schedule noise — which is exactly why the CI smoke can
   gate on it while throughput numbers remain hardware-dependent. *)

let dummy_ctx ~pid ~n : _ Protocol.ctx =
  {
    Protocol.pid;
    n;
    now = (fun () -> 0.0);
    send = (fun ~dst:_ _ -> ());
    broadcast = (fun _ -> ());
    broadcast_batch = (fun _ -> ());
    set_timer = (fun ~delay:_ _ -> ());
    count_replay = (fun _ -> ());
    obs = None;
  }

type row = {
  spec : string;
  domains : int;
  ops_per_domain : int;
  total_ops : int;
  updates : int;
  batch : int;  (* sender-side coalescing threshold the cell ran with *)
  flush_window : int;  (* forced-flush cadence in invocations; 0 = none *)
  frames : int;  (* mailbox frames actually pushed, summed over domains *)
  wall_s : float;
  ops_per_sec : float;
  p50_us : float;
  p99_us : float;
  mailbox_max_depth : int;
  mailbox_stalls : int;
  ok : bool;
}

let emit_json path rows =
  let oc = open_out path in
  output_string oc "[\n";
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "  {\"spec\": %S, \"domains\": %d, \"ops_per_domain\": %d, \
         \"total_ops\": %d, \"updates\": %d, \"batch\": %d, \
         \"flush_window\": %d, \"frames\": %d, \"wall_s\": %.6f, \
         \"ops_per_sec\": %.1f, \"p50_us\": %.2f, \"p99_us\": %.2f, \
         \"mailbox_max_depth\": %d, \"mailbox_stalls\": %d, \"ok\": %b}%s\n"
        r.spec r.domains r.ops_per_domain r.total_ops r.updates r.batch
        r.flush_window r.frames r.wall_s r.ops_per_sec r.p50_us r.p99_us
        r.mailbox_max_depth r.mailbox_stalls r.ok
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "]\n";
  close_out oc

(* Wall-clock time series from a merged recorder stream: per-pid
   cumulative counters snapshotted on a fixed cadence of the recorded
   wall clock. Spec-agnostic — only event kinds matter — so it lives
   outside the functor. The stream is walked in merge order; the tick
   clock is the running max of the wall stamps (domains share one
   clock, but the Lamport merge is not exactly wall-sorted). *)
let series_of_events ?capacity ?(interval = 0.01) ?sink events =
  let reg = Obs.Registry.create () in
  let sampler = Obs.Series.sampler ?capacity ~registry:reg ~interval () in
  (match sink with None -> () | Some s -> Obs.Series.set_sink sampler s);
  let counter pid name =
    Obs.Registry.counter reg ~labels:[ ("pid", string_of_int pid) ] name
  in
  let now = ref 0.0 in
  List.iter
    (fun ev ->
      now := Float.max !now (Obs.Recorder.event_wall ev);
      (match (ev : Obs.Recorder.event) with
      | Invoke_update { pid; _ } ->
        Obs.Registry.inc (counter pid "ops");
        Obs.Registry.inc (counter pid "updates")
      | Invoke_query { pid; _ } -> Obs.Registry.inc (counter pid "ops")
      | Send { pid; count; _ } ->
        Obs.Registry.inc (counter pid "frames_sent");
        Obs.Registry.inc ~by:count (counter pid "messages_sent")
      | Deliver { pid; count; _ } ->
        Obs.Registry.inc ~by:count (counter pid "messages_received")
      | Stall { pid; _ } -> Obs.Registry.inc (counter pid "mailbox_stalls"));
      Obs.Series.maybe_tick sampler ~now:!now)
    events;
  (* Force a closing sample so short runs still chart. *)
  if events <> [] then Obs.Series.tick sampler ~now:!now;
  Obs.Series.store sampler

module Bench (A : Uqadt.S) = struct
  module G = Generic.Make (A)
  module E = Parallel_engine.Make (G)
  module Run = Uqadt.Run (A)
  module Seq = Runner.Make (G)
  module Mon = Obs.Monitor.Make (A)

  type recording = {
    events : Obs.Recorder.event list;  (* merged (lamport, pid, seq) *)
    journal : Obs.Journal.t;  (* rebuilt from the stream, sealed *)
    fingerprint : string;  (* recorded history's fingerprint *)
    replay : (string, string) result;
        (* [Ok fp]: the sequential core, fed the recorded per-replica
           delivery order, reproduced the footer fingerprint *)
    monitor : Mon.t option;  (* when criteria were requested *)
  }

  type verdict = {
    run : E.result;
    latency : Stats.summary option;
    logs_agree : bool;
    omega_matches_fold : bool;
    replay_matches_fold : bool;
    runner_matches : bool option;  (* [None] for non-commutative specs *)
    updates_conserved : bool;
    journal_replay : bool option;  (* [None] when no recorder was attached *)
    recording : recording option;
    state_repr : string;  (* rendered timestamp-order fold *)
  }

  let ok v =
    v.run.E.outputs_agree && v.run.E.certificates_agree && v.logs_agree
    && v.omega_matches_fold && v.replay_matches_fold && v.updates_conserved
    && v.runner_matches <> Some false
    && v.journal_replay <> Some false

  (* ------------------- recorded-stream resolution -------------------
     The recorder stores no payloads: an [Invoke_update] record says "my
     domain issued its next script entry", nothing more. Because the
     scripts are pure functions of the seed and the merge preserves every
     domain's program order, walking the merged stream with one script
     cursor per domain re-associates every record with its typed update,
     query, and output. A misalignment means the stream and the scripts
     disagree — that is a corrupt recording, reported loudly. *)

  let stream_error fmt = Printf.ksprintf failwith fmt

  (* Walk the merged stream, resolving invocations to typed values.
     [on_update] and [on_query] receive the event's index in the merged
     stream — which is also its journal event index. *)
  let walk_stream ~scripts ~(final_read : A.query) ~query_outputs
      ~omega_outputs ~on_update ~on_query ~on_other events =
    let cursors = Array.map (fun s -> ref s) scripts in
    let out_cursors = Array.map (fun o -> ref o) query_outputs in
    let next_inv pid =
      match !(cursors.(pid)) with
      | [] -> stream_error "recorded stream: domain %d invoked past its script" pid
      | inv :: rest ->
        cursors.(pid) := rest;
        inv
    in
    let next_out pid =
      match !(out_cursors.(pid)) with
      | [] ->
        stream_error "recorded stream: domain %d has no recorded query output"
          pid
      | o :: rest ->
        out_cursors.(pid) := rest;
        o
    in
    List.iteri
      (fun index ev ->
        match (ev : Obs.Recorder.event) with
        | Invoke_update { pid; wall; _ } -> (
          match next_inv pid with
          | Protocol.Invoke_update u -> on_update ~pid ~index ~wall u
          | Protocol.Invoke_query _ ->
            stream_error
              "recorded stream: domain %d recorded an update where its \
               script has a query"
              pid)
        | Invoke_query { pid; wall; omega = false; _ } -> (
          match next_inv pid with
          | Protocol.Invoke_query q ->
            on_query ~pid ~index ~wall ~omega:false q (next_out pid)
          | Protocol.Invoke_update _ ->
            stream_error
              "recorded stream: domain %d recorded a query where its \
               script has an update"
              pid)
        | Invoke_query { pid; wall; omega = true; _ } -> (
          match List.assoc_opt pid omega_outputs with
          | Some o -> on_query ~pid ~index ~wall ~omega:true final_read o
          | None ->
            stream_error "recorded stream: domain %d has no recorded ω answer"
              pid)
        | Send _ | Deliver _ | Stall _ -> on_other ~index ev)
      events;
    Array.iteri
      (fun pid c ->
        if !c <> [] then
          stream_error
            "recorded stream: domain %d stopped %d invocation(s) short of \
             its script"
            pid (List.length !c))
      cursors

  (* The recorded history: one line per domain, in program order, ω
     read last — exactly what [History.make] wants. *)
  let history_of_events ~scripts ~final_read ~query_outputs ~omega_outputs
      events =
    let lines = Array.make (Array.length scripts) [] in
    walk_stream ~scripts ~final_read ~query_outputs ~omega_outputs events
      ~on_update:(fun ~pid ~index:_ ~wall:_ u ->
        lines.(pid) <- History.U u :: lines.(pid))
      ~on_query:(fun ~pid ~index:_ ~wall:_ ~omega q o ->
        lines.(pid) <-
          (if omega then History.Qw (q, o) else History.Q (q, o))
          :: lines.(pid))
      ~on_other:(fun ~index:_ _ -> ());
    History.make (Array.to_list (Array.map List.rev lines))

  let history_fingerprint h =
    History.fingerprint A.pp_update A.pp_query A.pp_output h

  (* Rebuild a standard journal from the merged stream. Frame arrival
     times are patched from the matching deliver record (per-(src,dst)
     FIFO — the mailbox preserves per-producer order); a frame still in
     flight when the stream ends keeps its send time. *)
  let journal_of_events ?(header = []) ~scripts ~final_read ~query_outputs
      ~omega_outputs events =
    let arr = Array.of_list events in
    let arrival = Array.map Obs.Recorder.event_wall arr in
    let pending = Hashtbl.create 64 in
    Array.iteri
      (fun i ev ->
        match (ev : Obs.Recorder.event) with
        | Send { pid; dst; _ } ->
          let key = (pid, dst) in
          let q =
            match Hashtbl.find_opt pending key with
            | Some q -> q
            | None ->
              let q = Queue.create () in
              Hashtbl.add pending key q;
              q
          in
          Queue.push i q
        | Deliver { pid; src; wall; _ } -> (
          match Hashtbl.find_opt pending (src, pid) with
          | Some q when not (Queue.is_empty q) ->
            arrival.(Queue.pop q) <- wall
          | _ ->
            stream_error
              "recorded stream: deliver %d->%d without a matching send" src
              pid)
        | _ -> ())
      arr;
    let journal = Obs.Journal.create ~header () in
    walk_stream ~scripts ~final_read ~query_outputs ~omega_outputs events
      ~on_update:(fun ~pid ~index:_ ~wall u ->
        Obs.Journal.record journal
          (Obs.Journal.Update
             {
               pid;
               time = wall;
               span = None;
               label = Format.asprintf "%a" A.pp_update u;
             }))
      ~on_query:(fun ~pid ~index:_ ~wall ~omega q o ->
        Obs.Journal.record journal
          (Obs.Journal.Query
             {
               pid;
               invoked = wall;
               completed = wall;
               span = None;
               label = Format.asprintf "%a" A.pp_query q;
               output = Format.asprintf "%a" A.pp_output o;
               omega;
             }))
      ~on_other:(fun ~index ev ->
        match (ev : Obs.Recorder.event) with
        | Send { pid; dst; count; bytes; wall; _ } ->
          Obs.Journal.record journal
            (Obs.Journal.Frame
               {
                 src = pid;
                 dst;
                 count;
                 bytes;
                 sent = wall;
                 arrival = arrival.(index);
                 spans = List.init count (fun _ -> None);
               })
        | Deliver { pid; src; count; wall; _ } ->
          Obs.Journal.record journal
            (Obs.Journal.Deliver { src; dst = pid; count; time = wall })
        | Stall { pid; dst; wall; _ } ->
          Obs.Journal.record journal
            (Obs.Journal.Stall { pid; dst; time = wall })
        | Invoke_update _ | Invoke_query _ -> assert false);
    let fp =
      history_fingerprint
        (history_of_events ~scripts ~final_read ~query_outputs ~omega_outputs
           events)
    in
    Obs.Journal.seal journal ~fingerprint:fp;
    journal

  (* ------------------------- replay bridge --------------------------
     Re-execute a recorded journal on the sequential core: one [G]
     replica per domain whose sends are captured into per-(src,dst) FIFO
     queues, so a [Deliver] journal event pops exactly the messages the
     recorded frame carried. The per-replica event order reproduces each
     replica's timestamp evolution, hence its outputs, hence the history
     fingerprint — Proposition 4 made executable. *)

  let replay_journal ~scripts ~(final_read : A.query) journal =
    let n = Array.length scripts in
    let queues = Array.init n (fun _ -> Array.init n (fun _ -> Queue.create ())) in
    let capture_ctx pid : _ Protocol.ctx =
      {
        Protocol.pid;
        n;
        now = (fun () -> 0.0);
        send = (fun ~dst msg -> Queue.push msg queues.(pid).(dst));
        broadcast =
          (fun msg ->
            for dst = 0 to n - 1 do
              if dst <> pid then Queue.push msg queues.(pid).(dst)
            done);
        broadcast_batch =
          (fun msgs ->
            for dst = 0 to n - 1 do
              if dst <> pid then
                List.iter (fun m -> Queue.push m queues.(pid).(dst)) msgs
            done);
        set_timer = (fun ~delay:_ _ -> ());
        count_replay = (fun _ -> ());
        obs = None;
      }
    in
    let replicas = Array.init n (fun pid -> G.create (capture_ctx pid)) in
    let cursors = Array.map (fun s -> ref s) scripts in
    let lines = Array.make n [] in
    let next_inv pid =
      match !(cursors.(pid)) with
      | [] -> stream_error "replay: domain %d invoked past its script" pid
      | inv :: rest ->
        cursors.(pid) := rest;
        inv
    in
    try
      List.iter
        (fun ev ->
          match (ev : Obs.Journal.event) with
          | Update { pid; _ } -> (
            match next_inv pid with
            | Protocol.Invoke_update u ->
              G.update replicas.(pid) u ~on_done:ignore;
              lines.(pid) <- History.U u :: lines.(pid)
            | Protocol.Invoke_query _ ->
              stream_error "replay: update event where script has a query")
          | Query { pid; omega = false; _ } -> (
            match next_inv pid with
            | Protocol.Invoke_query q ->
              let out = ref None in
              G.query replicas.(pid) q ~on_result:(fun o -> out := Some o);
              (match !out with
              | Some o -> lines.(pid) <- History.Q (q, o) :: lines.(pid)
              | None -> stream_error "replay: query returned no output")
            | Protocol.Invoke_update _ ->
              stream_error "replay: query event where script has an update")
          | Query { pid; omega = true; _ } ->
            let out = ref None in
            G.query replicas.(pid) final_read ~on_result:(fun o ->
                out := Some o);
            (match !out with
            | Some o -> lines.(pid) <- History.Qw (final_read, o) :: lines.(pid)
            | None -> stream_error "replay: ω read returned no output")
          | Deliver { src; dst; count; _ } ->
            (* Pop the recorded frame's messages as one envelope and
               deliver them through the same batch entry point the
               parallel engine used, so the replay leg exercises the
               coalesced path it is certifying. *)
            let msgs = ref [] in
            for _ = 1 to count do
              if Queue.is_empty queues.(src).(dst) then
                stream_error
                  "replay: deliver %d->%d exceeds the captured sends" src dst;
              msgs := Queue.pop queues.(src).(dst) :: !msgs
            done;
            G.receive_batch replicas.(dst) ~src (List.rev !msgs)
          | Frame _ | Stall _ -> ()
          | Drop _ | Crash _ | Join _ | Leave _ | Partition _ | Probe _
          | Rebalance _ | Shard _ | Alert _ ->
            stream_error "replay: journal carries sequential-engine events")
        (Obs.Journal.events journal);
      let h = History.make (Array.to_list (Array.map List.rev lines)) in
      let fp = history_fingerprint h in
      match Obs.Journal.fingerprint journal with
      | Some recorded when recorded = fp -> Ok fp
      | Some recorded ->
        Error
          (Printf.sprintf "fingerprint mismatch: recorded %s, replayed %s"
             recorded fp)
      | None -> Error "journal has no fingerprint (unsealed recording)"
    with Failure msg -> Error msg

  (* Feed the merged stream through the online monitors — the same
     resolution walk the journal builder uses, so a violation's [index]
     is the journal event index. *)
  let feed_monitor ~criteria ~scripts ~final_read ~query_outputs
      ~omega_outputs events =
    let mon = Mon.create ~n:(Array.length scripts) ~criteria in
    walk_stream ~scripts ~final_read ~query_outputs ~omega_outputs events
      ~on_update:(fun ~pid ~index ~wall:_ u ->
        Mon.on_update mon ~pid ~index ~span:None u)
      ~on_query:(fun ~pid ~index ~wall:_ ~omega q o ->
        Mon.on_query mon ~pid ~index ~span:None ~omega q o)
      ~on_other:(fun ~index:_ _ -> ());
    mon

  (* Independent per-domain client streams: one [Prng.fork] child per
     domain off a root seeded by the caller, so the whole workload is a
     pure function of (seed, domains, ops) while no two domains ever
     walk correlated streams. *)
  let uniform_scripts ~seed ~domains ~ops ~query_ratio =
    let root = Prng.create seed in
    let script () =
      (* explicit loop: the draw order is part of the determinism
         contract, and [List.init]'s evaluation order is not *)
      let g = Prng.fork root in
      let acc = ref [] in
      for _ = 1 to ops do
        let inv =
          if query_ratio > 0.0 && Prng.float g 1.0 < query_ratio then
            Protocol.Invoke_query (A.random_query g)
          else Protocol.Invoke_update (A.random_update g)
        in
        acc := inv :: !acc
      done;
      List.rev !acc
    in
    let scripts = Array.make domains [] in
    for pid = 0 to domains - 1 do
      scripts.(pid) <- script ()
    done;
    scripts

  let measure ?(mailbox_capacity = 1024) ?(batch_every = 1) ?(flush_window = 0)
      ?obs ?recorder ?monitor ?journal_header ?(seq_seed = 0) ~domains
      ~final_read ~scripts () =
    let cfg =
      {
        E.domains;
        mailbox_capacity;
        envelope = 0;
        batch_every;
        flush_window;
        final_read = Some final_read;
        obs;
        recorder;
      }
    in
    let run = E.run cfg ~workload:scripts in
    let logs = Array.map G.local_log run.E.replicas in
    let log0 = logs.(0) in
    let logs_agree = Array.for_all (( = ) log0) logs in
    let updates = List.map (fun (_, _, u) -> u) log0 in
    let folded = Run.final_state updates in
    let expected = A.eval folded final_read in
    let omega_matches_fold =
      run.E.outputs <> []
      && List.for_all (fun (_, o) -> A.equal_output o expected) run.E.outputs
    in
    (* The sequential core replays the converged log through the exact
       persistence-restore path the crash-recovery tests exercise. *)
    let fresh = G.create (dummy_ctx ~pid:0 ~n:1) in
    G.restore_log fresh log0;
    let replayed = ref None in
    G.query fresh final_read ~on_result:(fun o -> replayed := Some o);
    let replay_matches_fold =
      match !replayed with
      | Some o -> A.equal_output o expected
      | None -> false
    in
    let updates_conserved = List.length log0 = run.E.updates_total in
    let runner_matches =
      if not A.commutative then None
      else begin
        let sc =
          {
            (Seq.default_config ~n:domains ~seed:seq_seed) with
            Seq.final_read = Some final_read;
          }
        in
        let sr = Seq.run sc ~workload:scripts in
        Some
          (sr.Seq.converged
          && sr.Seq.final_outputs <> []
          && List.for_all
               (fun (_, o) -> A.equal_output o expected)
               sr.Seq.final_outputs)
      end
    in
    let recording =
      match recorder with
      | None -> None
      | Some r ->
        let events = Obs.Recorder.events r in
        let query_outputs = run.E.query_outputs in
        let omega_outputs = run.E.outputs in
        let journal =
          journal_of_events ?header:journal_header ~scripts ~final_read
            ~query_outputs ~omega_outputs events
        in
        let fingerprint = Option.get (Obs.Journal.fingerprint journal) in
        let replay = replay_journal ~scripts ~final_read journal in
        let monitor =
          Option.map
            (fun criteria ->
              feed_monitor ~criteria ~scripts ~final_read ~query_outputs
                ~omega_outputs events)
            monitor
        in
        Some { events; journal; fingerprint; replay; monitor }
    in
    {
      run;
      latency = E.latency_summary run;
      logs_agree;
      omega_matches_fold;
      replay_matches_fold;
      runner_matches;
      updates_conserved;
      journal_replay =
        Option.map
          (fun r -> match r.replay with Ok _ -> true | Error _ -> false)
          recording;
      recording;
      state_repr = Format.asprintf "%a" A.pp_state folded;
    }

  let row ?(batch = 1) ?(flush_window = 0) ~ops_per_domain v =
    let p50, p99 =
      match v.latency with
      | None -> (0.0, 0.0)
      | Some s -> (s.Stats.p50 *. 1e6, s.Stats.p99 *. 1e6)
    in
    let reports = v.run.E.reports in
    {
      spec = A.name;
      domains = Array.length reports;
      ops_per_domain;
      total_ops = v.run.E.ops_total;
      updates = v.run.E.updates_total;
      batch;
      flush_window;
      frames =
        Array.fold_left
          (fun acc r -> acc + r.Parallel_engine.frames_sent)
          0 reports;
      wall_s = v.run.E.wall_seconds;
      ops_per_sec = v.run.E.throughput;
      p50_us = p50;
      p99_us = p99;
      mailbox_max_depth =
        Array.fold_left
          (fun acc r -> max acc r.Parallel_engine.mailbox_max_depth)
          0 reports;
      mailbox_stalls =
        Array.fold_left
          (fun acc r -> acc + r.Parallel_engine.mailbox_stalls)
          0 reports;
      ok = ok v;
    }
end

type shard_row = {
  shard_spec : string;
  shards : int;
  shard_domains : int;
  keys : int;
  skew : float;
  fanout : int;
  shard_total_ops : int;
  keyed_updates : int;
  shard_wall_s : float;
  shard_ops_per_sec : float;
  shard_log_max : int;
  shard_log_min : int;
  shard_ok : bool;
}

let emit_shard_json path rows =
  let oc = open_out path in
  output_string oc "[\n";
  List.iteri
    (fun i r ->
      Printf.fprintf oc
        "  {\"spec\": %S, \"shards\": %d, \"domains\": %d, \"keys\": %d, \
         \"skew\": %.3f, \"fanout\": %d, \"total_ops\": %d, \
         \"keyed_updates\": %d, \"wall_s\": %.6f, \"ops_per_sec\": %.1f, \
         \"shard_log_max\": %d, \"shard_log_min\": %d, \"ok\": %b}%s\n"
        r.shard_spec r.shards r.shard_domains r.keys r.skew r.fanout
        r.shard_total_ops r.keyed_updates r.shard_wall_s r.shard_ops_per_sec
        r.shard_log_max r.shard_log_min r.shard_ok
        (if i = List.length rows - 1 then "" else ","))
    rows;
  output_string oc "]\n";
  close_out oc

(* The same oracle, shard-aware: the space runs one Algorithm 1 core
   per shard, so Proposition 4 applies {e per shard} — after
   quiescence every replica must hold, for every shard, the identical
   timestamp-sorted inner log; the ω sweep must equal the keyed fold
   of the union of those logs; and the whole-space snapshot/absorb
   path (the one churn catch-up and shard migration ride) must restore
   a fresh replica to the same answer. Conservation counts {e keyed}
   sub-updates: one client batch of width w contributes w inner log
   entries, spread across the shards its keys route to. *)
module Sharded
    (A : Uqadt.S)
    (C : Update_codec.S with type update = A.update) =
struct
  module S = Space.Make (A) (C)
  module E = Parallel_engine.Make (S)

  type verdict = {
    run : E.result;
    latency : Stats.summary option;
    shards : int;
    keyed_total : int;
    shard_logs_agree : bool;
    omega_matches_fold : bool;
    snapshot_matches_fold : bool;
    updates_conserved : bool;
    shard_lengths : (int * int) list;
    state_repr : string;
  }

  let ok v =
    v.run.E.outputs_agree && v.run.E.certificates_agree && v.shard_logs_agree
    && v.omega_matches_fold && v.snapshot_matches_fold && v.updates_conserved

  let zipf_scripts ~seed ~domains ~ops ~keys ~skew ~fanout ~query_ratio =
    let root = Prng.create seed in
    let script () =
      (* explicit loops: draw order is part of the determinism contract *)
      let g = Prng.fork root in
      let z = Zipf.create ~n:keys ~s:skew in
      let key () = Zipf.sample z g - 1 in
      let acc = ref [] in
      for _ = 1 to ops do
        let inv =
          if query_ratio > 0.0 && Prng.float g 1.0 < query_ratio then
            Protocol.Invoke_query (S.K.Read (key (), A.random_query g))
          else begin
            let width = if fanout <= 1 then 1 else 1 + Prng.int g fanout in
            let batch = ref [] in
            for _ = 1 to width do
              let k = key () in
              let u = A.random_update g in
              batch := (k, u) :: !batch
            done;
            Protocol.Invoke_update (List.rev !batch)
          end
        in
        acc := inv :: !acc
      done;
      List.rev !acc
    in
    let scripts = Array.make domains [] in
    for pid = 0 to domains - 1 do
      scripts.(pid) <- script ()
    done;
    scripts

  let keyed_total scripts =
    Array.fold_left
      (fun acc script ->
        List.fold_left
          (fun acc -> function
            | Protocol.Invoke_update kus -> acc + List.length kus
            | Protocol.Invoke_query _ -> acc)
          acc script)
      0 scripts

  let measure ?(mailbox_capacity = 1024) ?(batch_every = 1) ?(flush_window = 0)
      ?obs ?vnodes ~shards ~domains ~scripts () =
    (* Static ring: no policy, so replicas never mutate shared ring
       state during the parallel run. *)
    let map = S.create_map ?vnodes ?obs ~shards () in
    S.configure map;
    let cfg =
      {
        E.domains;
        mailbox_capacity;
        envelope = 0;
        batch_every;
        flush_window;
        final_read = Some S.K.Sweep;
        obs;
        (* Sharded-space recording is out of scope: the flight recorder
           targets the one-core-per-domain engine (the CLI rejects the
           combination). *)
        recorder = None;
      }
    in
    let run = E.run cfg ~workload:scripts in
    let logs_of r =
      List.filter (fun (_, l) -> l <> []) (S.shard_logs r)
    in
    let logs0 = logs_of run.E.replicas.(0) in
    let shard_logs_agree =
      Array.for_all (fun r -> logs_of r = logs0) run.E.replicas
    in
    let merged =
      List.concat_map snd logs0
      |> List.sort (fun (a, _, _) (b, _, _) -> Timestamp.compare a b)
    in
    let folded =
      List.fold_left (fun m (_, _, ku) -> S.apply m [ ku ]) S.initial merged
    in
    let expected = S.eval folded S.K.Sweep in
    let omega_matches_fold =
      run.E.outputs <> []
      && List.for_all (fun (_, o) -> S.equal_output o expected) run.E.outputs
    in
    let snapshot_matches_fold =
      match S.snapshot run.E.replicas.(0) with
      | None -> false
      | Some frame ->
        let fresh = S.create (dummy_ctx ~pid:0 ~n:domains) in
        S.absorb fresh frame
        &&
        let out = ref None in
        S.query fresh S.K.Sweep ~on_result:(fun o -> out := Some o);
        (match !out with
        | Some o -> S.equal_output o expected
        | None -> false)
    in
    let keyed = keyed_total scripts in
    let updates_conserved =
      List.fold_left (fun acc (_, l) -> acc + List.length l) 0 logs0 = keyed
    in
    {
      run;
      latency = E.latency_summary run;
      shards;
      keyed_total = keyed;
      shard_logs_agree;
      omega_matches_fold;
      snapshot_matches_fold;
      updates_conserved;
      shard_lengths = S.shard_log_lengths run.E.replicas.(0);
      state_repr = Format.asprintf "%a" S.pp_state folded;
    }

  let row ~keys ~skew ~fanout v : shard_row =
    let lens = List.map snd v.shard_lengths in
    {
      shard_spec = A.name;
      shards = v.shards;
      shard_domains = Array.length v.run.E.reports;
      keys;
      skew;
      fanout;
      shard_total_ops = v.run.E.ops_total;
      keyed_updates = v.keyed_total;
      shard_wall_s = v.run.E.wall_seconds;
      shard_ops_per_sec = v.run.E.throughput;
      shard_log_max = List.fold_left max 0 lens;
      shard_log_min =
        (match lens with [] -> 0 | x :: r -> List.fold_left min x r);
      shard_ok = ok v;
    }
end

(* The Zipf-skewed or-set workload the sequential experiments use
   ([Workload.For_set.conflict] shape), cut per domain: hot keys are
   shared across every domain, so late arrivals really do land mid-log
   and the engine's convergence is tested under genuine contention. *)
let set_zipf_scripts ~seed ~domains ~ops ~skew ~delete_ratio =
  let root = Prng.create seed in
  let script () =
    let g = Prng.fork root in
    let z = Zipf.create ~n:512 ~s:skew in
    let acc = ref [] in
    for _ = 1 to ops do
      let v = Zipf.sample z g in
      let inv =
        if Prng.float g 1.0 < delete_ratio then
          Protocol.Invoke_update (Set_spec.Delete v)
        else Protocol.Invoke_update (Set_spec.Insert v)
      in
      acc := inv :: !acc
    done;
    List.rev !acc
  in
  let scripts = Array.make domains [] in
  for pid = 0 to domains - 1 do
    scripts.(pid) <- script ()
  done;
  scripts
