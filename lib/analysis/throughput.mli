(** Wall-clock throughput runs of the multicore engine
    ({!Parallel_engine}) with the Proposition 4 parallel-vs-sequential
    differential.

    The differential is what makes a nondeterministic wall-clock run
    checkable: whatever delivery order the OS schedule produced, a
    strong-update-consistent run must end with (1) every replica
    holding the same timestamp-sorted log, (2) every ω answer equal to
    the query on the timestamp-order fold of that log's updates, (3) a
    fresh {e sequential}-core replica restored from the log answering
    identically, (4) for commutative specs, a full sequential {!Runner}
    of the same scripts agreeing, and (5) exactly the issued updates in
    the log. With a flight recorder ({!Obs.Recorder}) attached there is
    a sixth clause: (6) the recorded per-replica delivery order,
    re-executed on the sequential core by {!Bench.replay_journal}, must
    reproduce the recorded history fingerprint. {!Bench.ok} is the
    conjunction; CI gates on it. *)

val dummy_ctx : pid:int -> n:int -> 'msg Protocol.ctx
(** A context that drops every message — for replicas used as
    sequential replay oracles. *)

type row = {
  spec : string;
  domains : int;
  ops_per_domain : int;
  total_ops : int;
  updates : int;
  batch : int;  (** sender-side coalescing threshold the cell ran with *)
  flush_window : int;
      (** forced-flush cadence in invocations; 0 = threshold-only *)
  frames : int;  (** mailbox frames actually pushed, summed over domains *)
  wall_s : float;
  ops_per_sec : float;
  p50_us : float;
  p99_us : float;
  mailbox_max_depth : int;
  mailbox_stalls : int;
  ok : bool;  (** the differential verdict, never a throughput bound *)
}
(** One BENCH_throughput.json record. *)

val emit_json : string -> row list -> unit

val series_of_events :
  ?capacity:int ->
  ?interval:float ->
  ?sink:(Obs.Series.point -> unit) ->
  Obs.Recorder.event list ->
  Obs.Series.t
(** Wall-clock time series from a merged recorder stream: per-pid
    cumulative counters ([ops], [updates], [frames_sent],
    [messages_sent], [messages_received], [mailbox_stalls]) snapshotted
    every [interval] recorded-wall-clock seconds (default 10ms), with a
    forced closing sample. [sink] streams every point at full
    resolution (the [--series-out] JSONL writer); the returned store
    holds the decimating rings. Spec-agnostic: only event kinds are
    read. *)

module Bench (A : Uqadt.S) : sig
  module G : Generic.S with type update = A.update and type query = A.query
                        and type output = A.output and type state = A.state
  module E : module type of Parallel_engine.Make (G)
  module Mon : module type of Obs.Monitor.Make (A)

  type recording = {
    events : Obs.Recorder.event list;
        (** the merged [(lamport, pid, seq)]-sorted stream *)
    journal : Obs.Journal.t;
        (** rebuilt from the stream and sealed with the recorded
            history's fingerprint — what [--journal-out] writes and
            [ucsim replay] re-executes *)
    fingerprint : string;
    replay : (string, string) result;
        (** [Ok fp]: {!replay_journal} reproduced the footer
            fingerprint; [Error reason] otherwise *)
    monitor : Mon.t option;  (** when [?monitor] criteria were given *)
  }

  type verdict = {
    run : E.result;
    latency : Stats.summary option;
    logs_agree : bool;
    omega_matches_fold : bool;
    replay_matches_fold : bool;
    runner_matches : bool option;  (** [None] for non-commutative specs *)
    updates_conserved : bool;
    journal_replay : bool option;
        (** clause 6; [None] when no recorder was attached *)
    recording : recording option;
    state_repr : string;  (** rendered timestamp-order fold *)
  }

  val ok : verdict -> bool

  val uniform_scripts :
    seed:int ->
    domains:int ->
    ops:int ->
    query_ratio:float ->
    (A.update, A.query) Protocol.invocation list array
  (** One {!Prng.fork}ed client stream per domain off [seed]; each
      script mixes [A.random_update] with [A.random_query] at
      [query_ratio]. A pure function of its arguments. *)

  val measure :
    ?mailbox_capacity:int ->
    ?batch_every:int ->
    ?flush_window:int ->
    ?obs:Obs.t ->
    ?recorder:Obs.Recorder.t ->
    ?monitor:Obs.Monitor.criterion list ->
    ?journal_header:(string * Obs.Json.t) list ->
    ?seq_seed:int ->
    domains:int ->
    final_read:A.query ->
    scripts:(A.update, A.query) Protocol.invocation list array ->
    unit ->
    verdict
  (** Run the engine on the scripts with an ω [final_read] everywhere,
      then run the full differential described above. With [?recorder]
      the run is also recorded: the merged stream becomes a sealed
      journal (header fields from [?journal_header]), the replay bridge
      verdict lands in [journal_replay] (clause 6), and [?monitor]
      criteria are checked online over the same stream. *)

  val history_of_events :
    scripts:(A.update, A.query) Protocol.invocation list array ->
    final_read:A.query ->
    query_outputs:A.output list array ->
    omega_outputs:(int * A.output) list ->
    Obs.Recorder.event list ->
    (A.update, A.query, A.output) History.t
  (** Resolve a merged recorder stream against the (regenerated)
      scripts and the run's recorded outputs into a {!History}: one
      line per domain in program order, ω read last. The recorder
      stores no payloads — the scripts being pure functions of the
      seed is what makes this total.
      @raise Failure when the stream and the scripts disagree (a
      corrupt or mismatched recording). *)

  val journal_of_events :
    ?header:(string * Obs.Json.t) list ->
    scripts:(A.update, A.query) Protocol.invocation list array ->
    final_read:A.query ->
    query_outputs:A.output list array ->
    omega_outputs:(int * A.output) list ->
    Obs.Recorder.event list ->
    Obs.Journal.t
  (** The merged stream as a standard journal, in merge order:
      invocations become [Update]/[Query] events, sends become [Frame]s
      (arrival patched from the matching deliver via per-(src,dst)
      FIFO), delivers and stalls keep their kind. Sealed with the
      {!history_of_events} fingerprint. @raise Failure as above. *)

  val replay_journal :
    scripts:(A.update, A.query) Protocol.invocation list array ->
    final_read:A.query ->
    Obs.Journal.t ->
    (string, string) result
  (** Re-execute a recorded journal on the {e sequential} core: one
      replica per domain whose sends are captured into per-(src,dst)
      FIFO queues, each [Deliver] event popping exactly the messages
      the recorded frame carried. Reproducing every replica's event
      order reproduces its timestamp evolution, hence its outputs
      (Proposition 4); [Ok fp] iff the replayed history fingerprint
      equals the journal footer. *)

  val feed_monitor :
    criteria:Obs.Monitor.criterion list ->
    scripts:(A.update, A.query) Protocol.invocation list array ->
    final_read:A.query ->
    query_outputs:A.output list array ->
    omega_outputs:(int * A.output) list ->
    Obs.Recorder.event list ->
    Mon.t
  (** Feed the merged stream through the online monitors; violation
      indices are journal event indices (the walk is the same one
      {!journal_of_events} uses). *)

  val row : ?batch:int -> ?flush_window:int -> ops_per_domain:int -> verdict -> row
  (** [batch]/[flush_window] (defaults 1/0) annotate the row with the
      knobs the cell ran under — [measure] does not retain them. *)
end

type shard_row = {
  shard_spec : string;
  shards : int;
  shard_domains : int;
  keys : int;
  skew : float;
  fanout : int;
  shard_total_ops : int;
  keyed_updates : int;  (** keyed sub-updates issued (Σ batch widths) *)
  shard_wall_s : float;
  shard_ops_per_sec : float;
  shard_log_max : int;  (** longest per-shard log — skew made visible *)
  shard_log_min : int;
  shard_ok : bool;  (** the shard-aware differential verdict *)
}
(** One BENCH_shard.json record. *)

val emit_shard_json : string -> shard_row list -> unit

(** The Proposition 4 differential, shard-aware: the {!Space} runs one
    Algorithm 1 core per shard, so after a parallel run quiesces every
    replica must hold, {e for every shard}, the identical
    timestamp-sorted inner log; every ω sweep must equal the keyed fold
    of the union of those logs; the whole-space snapshot/absorb path
    (churn catch-up, shard migration) must restore a fresh replica to
    the same answer; and the union must hold exactly the keyed
    sub-updates the clients issued. *)
module Sharded
    (A : Uqadt.S)
    (C : Update_codec.S with type update = A.update) : sig
  module S : module type of Space.Make (A) (C)
  module E : module type of Parallel_engine.Make (S)

  type verdict = {
    run : E.result;
    latency : Stats.summary option;
    shards : int;
    keyed_total : int;
    shard_logs_agree : bool;
    omega_matches_fold : bool;
    snapshot_matches_fold : bool;
    updates_conserved : bool;
    shard_lengths : (int * int) list;  (** replica 0, by shard id *)
    state_repr : string;  (** rendered keyed fold *)
  }

  val ok : verdict -> bool

  val zipf_scripts :
    seed:int ->
    domains:int ->
    ops:int ->
    keys:int ->
    skew:float ->
    fanout:int ->
    query_ratio:float ->
    (S.update, S.query) Protocol.invocation list array
  (** One {!Prng.fork}ed stream per domain: multi-key update batches
      (width uniform in [1..fanout]) over a Zipf-skewed key space, plus
      keyed reads at [query_ratio]. Key 0 is the hottest. *)

  val measure :
    ?mailbox_capacity:int ->
    ?batch_every:int ->
    ?flush_window:int ->
    ?obs:Obs.t ->
    ?vnodes:int ->
    shards:int ->
    domains:int ->
    scripts:(S.update, S.query) Protocol.invocation list array ->
    unit ->
    verdict
  (** Build a static [shards]-shard map (no rebalancing policy — the
      ring never changes during the parallel run), run the engine with
      an ω sweep everywhere, then run the shard-aware differential. *)

  val row : keys:int -> skew:float -> fanout:int -> verdict -> shard_row
end

val set_zipf_scripts :
  seed:int ->
  domains:int ->
  ops:int ->
  skew:float ->
  delete_ratio:float ->
  (Set_spec.update, Set_spec.query) Protocol.invocation list array
(** Zipf-skewed or-set insert/delete mix (the C-series conflict
    workload shape) cut per domain: hot keys collide across domains, so
    convergence is exercised under real contention. *)
