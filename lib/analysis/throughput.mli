(** Wall-clock throughput runs of the multicore engine
    ({!Parallel_engine}) with the Proposition 4 parallel-vs-sequential
    differential.

    The differential is what makes a nondeterministic wall-clock run
    checkable: whatever delivery order the OS schedule produced, a
    strong-update-consistent run must end with (1) every replica
    holding the same timestamp-sorted log, (2) every ω answer equal to
    the query on the timestamp-order fold of that log's updates, (3) a
    fresh {e sequential}-core replica restored from the log answering
    identically, (4) for commutative specs, a full sequential {!Runner}
    of the same scripts agreeing, and (5) exactly the issued updates in
    the log. {!Bench.ok} is the conjunction; CI gates on it. *)

val dummy_ctx : pid:int -> n:int -> 'msg Protocol.ctx
(** A context that drops every message — for replicas used as
    sequential replay oracles. *)

type row = {
  spec : string;
  domains : int;
  ops_per_domain : int;
  total_ops : int;
  updates : int;
  wall_s : float;
  ops_per_sec : float;
  p50_us : float;
  p99_us : float;
  mailbox_max_depth : int;
  mailbox_stalls : int;
  ok : bool;  (** the differential verdict, never a throughput bound *)
}
(** One BENCH_throughput.json record. *)

val emit_json : string -> row list -> unit

module Bench (A : Uqadt.S) : sig
  module G : Generic.S with type update = A.update and type query = A.query
                        and type output = A.output and type state = A.state
  module E : module type of Parallel_engine.Make (G)

  type verdict = {
    run : E.result;
    latency : Stats.summary option;
    logs_agree : bool;
    omega_matches_fold : bool;
    replay_matches_fold : bool;
    runner_matches : bool option;  (** [None] for non-commutative specs *)
    updates_conserved : bool;
    state_repr : string;  (** rendered timestamp-order fold *)
  }

  val ok : verdict -> bool

  val uniform_scripts :
    seed:int ->
    domains:int ->
    ops:int ->
    query_ratio:float ->
    (A.update, A.query) Protocol.invocation list array
  (** One {!Prng.fork}ed client stream per domain off [seed]; each
      script mixes [A.random_update] with [A.random_query] at
      [query_ratio]. A pure function of its arguments. *)

  val measure :
    ?mailbox_capacity:int ->
    ?batch_every:int ->
    ?obs:Obs.t ->
    ?seq_seed:int ->
    domains:int ->
    final_read:A.query ->
    scripts:(A.update, A.query) Protocol.invocation list array ->
    unit ->
    verdict
  (** Run the engine on the scripts with an ω [final_read] everywhere,
      then run the full differential described above. *)

  val row : ops_per_domain:int -> verdict -> row
end

val set_zipf_scripts :
  seed:int ->
  domains:int ->
  ops:int ->
  skew:float ->
  delete_ratio:float ->
  (Set_spec.update, Set_spec.query) Protocol.invocation list array
(** Zipf-skewed or-set insert/delete mix (the C-series conflict
    workload shape) cut per domain: hot keys collide across domains, so
    convergence is exercised under real contention. *)
