let mark b = if b then "yes" else "no"

let verdict_cell ~got ~expected =
  if got = expected then mark got else Printf.sprintf "%s (paper says %s!)" (mark got) (mark expected)

let pp_to_string pp v = Format.asprintf "%a" pp v

(* ------------------------------------------------------------------ *)
(* F1: the Figure 1 matrix                                             *)
(* ------------------------------------------------------------------ *)

module Set_criteria = Criteria.Make (Set_spec)

let fig1_criteria =
  [ Criteria.EC; Criteria.SEC; Criteria.PC; Criteria.UC; Criteria.SUC; Criteria.SC ]

let fig1 () =
  let table =
    Table.create ("history" :: List.map Criteria.name fig1_criteria)
  in
  List.iter
    (fun (name, history, expected) ->
      let cells =
        List.map
          (fun c ->
            let got = Set_criteria.holds c history in
            let want = List.assoc c expected in
            verdict_cell ~got ~expected:want)
          fig1_criteria
      in
      Table.add_row table (name :: cells))
    Figures.all;
  table

(* ------------------------------------------------------------------ *)
(* F2: Figure 2 and its PC witnesses                                   *)
(* ------------------------------------------------------------------ *)

let fig2 () =
  let buf = Buffer.create 256 in
  let h = Figures.fig2 in
  Buffer.add_string buf "Figure 2 history:\n";
  Buffer.add_string buf
    (pp_to_string (History.pp Set_spec.pp_update Set_spec.pp_query Set_spec.pp_output) h);
  let module Pc = Check_pc.Make (Set_spec) in
  (match Pc.witness h with
  | None -> Buffer.add_string buf "no PC witness (unexpected!)\n"
  | Some ws ->
    Array.iteri
      (fun p w ->
        Buffer.add_string buf (Printf.sprintf "w%d = " (p + 1));
        List.iter
          (fun (e : _ History.event) ->
            Buffer.add_string buf
              (pp_to_string
                 (Uqadt.pp_operation Set_spec.pp_update Set_spec.pp_query Set_spec.pp_output)
                 e.History.label);
            Buffer.add_string buf "·")
          w;
        Buffer.add_char buf '\n')
      ws);
  let module Ec = Check_ec.Make (Set_spec) in
  Buffer.add_string buf
    (Printf.sprintf "PC: %s (paper: yes)   EC: %s (paper: no)\n"
       (mark (Pc.holds h)) (mark (Ec.holds h)));
  Buffer.contents buf

(* ------------------------------------------------------------------ *)
(* Common simulation plumbing                                          *)
(* ------------------------------------------------------------------ *)

module Uni_set = Generic.Make (Set_spec)
module Uni_list = Generic_ref.Make (Set_spec)
module Memo_set = Memo.Make (Set_spec)
module Gc_set = Gc.Make (Set_spec)
module Undo_set = Undo.Make (Undoable.Set)
module Pipe_set = Pipelined.Make (Set_spec)
module Uni_reg = Generic.Make (Register_spec)
module Smr_reg = Tob_smr.Make (Register_spec)
module Uni_counter = Generic.Make (Counter_spec)
module Fast_counter = Commutative.Make (Counter_spec)
module Uni_gset = Generic.Make (Gset_spec)
module Fast_gset = Commutative.Make (Gset_spec)

let final_states (type o) (pp : Format.formatter -> o -> unit) (outs : (int * o) list) =
  String.concat " / " (List.map (fun (_, o) -> pp_to_string pp o) outs)

(* Run one set protocol on a script with widely-crossed messages so the
   conflicting updates are genuinely concurrent. *)
let run_set_protocol (module P : Protocol.PROTOCOL
                       with type update = Set_spec.update
                        and type query = Set_spec.query
                        and type output = Set_spec.output) ~seed ~n ~fifo workload =
  let module R = Runner.Make (P) in
  let config =
    {
      (R.default_config ~n ~seed) with
      R.delay = Network.Constant 50.0;
      think = Network.Constant 1.0;
      fifo;
      final_read = Some Set_spec.Read;
    }
  in
  let r = R.run config ~workload in
  (P.protocol_name, r.R.history, r.R.final_outputs, r.R.converged)

(* ------------------------------------------------------------------ *)
(* P1: pipelined convergence is impossible                             *)
(* ------------------------------------------------------------------ *)

let prop1 ~seed =
  let table =
    Table.create [ "protocol"; "final reads"; "converged"; "PC"; "EC"; "UC" ]
  in
  let program = Workload.For_set.fig2_program () in
  let protocols :
      (module Protocol.PROTOCOL
         with type update = Set_spec.update
          and type query = Set_spec.query
          and type output = Set_spec.output)
      list =
    [ (module Pipe_set); (module Uni_set) ]
  in
  List.iter
    (fun p ->
      let name, history, outs, converged = run_set_protocol p ~seed ~n:2 ~fifo:true program in
      Table.add_row table
        [
          name;
          final_states Set_spec.pp_output outs;
          mark converged;
          mark (Set_criteria.holds Criteria.PC history);
          mark (Set_criteria.holds Criteria.EC history);
          mark (Set_criteria.holds Criteria.UC history);
        ])
    protocols;
  table

(* ------------------------------------------------------------------ *)
(* P4: model checking the universal construction                       *)
(* ------------------------------------------------------------------ *)

let prop4_modelcheck () =
  let table =
    Table.create
      [ "protocol"; "object"; "schedules"; "exhaustive"; "UC fails"; "EC fails" ]
  in
  let race =
    [|
      [ Protocol.Invoke_update (Set_spec.Insert 1); Protocol.Invoke_update (Set_spec.Delete 2) ];
      [ Protocol.Invoke_update (Set_spec.Insert 2); Protocol.Invoke_update (Set_spec.Delete 1) ];
    |]
  in
  let row name obj ~executions ~exhaustive ~failures =
    Table.add_row table
      [
        name;
        obj;
        string_of_int executions;
        mark exhaustive;
        string_of_int (List.assoc Criteria.UC failures);
        string_of_int (List.assoc Criteria.EC failures);
      ]
  in
  (let module M = Model_check.Make (Uni_set) in
   let r = M.explore ~scripts:race ~final_read:Set_spec.Read () in
   row "universal (Alg.1)" "set" ~executions:r.M.executions ~exhaustive:r.M.exhaustive
     ~failures:r.M.failures);
  (let module M = Model_check.Make (Lww_memory) in
   let scripts =
     [|
       [ Protocol.Invoke_update (Memory_spec.Write (0, 1));
         Protocol.Invoke_update (Memory_spec.Write (1, 1)) ];
       [ Protocol.Invoke_update (Memory_spec.Write (0, 2)) ];
     |]
   in
   let r = M.explore ~scripts ~final_read:(Memory_spec.Read 0) () in
   row "lww-memory (Alg.2)" "memory" ~executions:r.M.executions ~exhaustive:r.M.exhaustive
     ~failures:r.M.failures);
  (let module M = Model_check.Make (Fast_counter) in
   let scripts =
     [|
       [ Protocol.Invoke_update (Counter_spec.Add 2);
         Protocol.Invoke_update (Counter_spec.Add (-1)) ];
       [ Protocol.Invoke_update (Counter_spec.Add 5) ];
     |]
   in
   let r = M.explore ~scripts ~final_read:Counter_spec.Value () in
   row "crdt-fastpath" "counter" ~executions:r.M.executions ~exhaustive:r.M.exhaustive
     ~failures:r.M.failures);
  (let module M = Model_check.Make (Pipe_set) in
   let r = M.explore ~scripts:race ~final_read:Set_spec.Read () in
   row "pipelined (counterexample)" "set" ~executions:r.M.executions ~exhaustive:r.M.exhaustive
     ~failures:r.M.failures);
  table

(* ------------------------------------------------------------------ *)
(* T6: the Section VI set comparison                                   *)
(* ------------------------------------------------------------------ *)

let set_comparison ~seed =
  let table =
    Table.create [ "scenario"; "protocol"; "final state(s)"; "converged"; "UC" ]
  in
  let scenarios =
    [
      ("concurrent I/D race (Fig.1b)", Workload.For_set.insert_delete_race ~n:2);
      ( "delete then re-insert",
        [|
          [
            Protocol.Invoke_update (Set_spec.Insert 1);
            Protocol.Invoke_update (Set_spec.Delete 1);
            Protocol.Invoke_update (Set_spec.Insert 1);
          ];
          [];
        |] );
      ( "delete absent, then insert",
        [|
          [
            Protocol.Invoke_update (Set_spec.Delete 5);
            Protocol.Invoke_update (Set_spec.Insert 5);
          ];
          [];
        |] );
    ]
  in
  let protocols :
      (module Protocol.PROTOCOL
         with type update = Set_spec.update
          and type query = Set_spec.query
          and type output = Set_spec.output)
      list =
    [
      (module Uni_set);
      (module Orset_crdt);
      (module Twopset_crdt.Protocol_impl);
      (module Lwwset_crdt);
      (module Pnset_crdt);
    ]
  in
  List.iter
    (fun (scenario, workload) ->
      List.iter
        (fun p ->
          let name, history, outs, converged =
            run_set_protocol p ~seed ~n:2 ~fifo:false workload
          in
          Table.add_row table
            [
              scenario;
              name;
              final_states Set_spec.pp_output outs;
              mark converged;
              mark (Set_criteria.holds Criteria.UC history);
            ])
        protocols;
      Table.add_sep table)
    scenarios;
  table

(* ------------------------------------------------------------------ *)
(* T7: the empirical protocol × criteria matrix                        *)
(* ------------------------------------------------------------------ *)

module Smr_set = Tob_smr.Make (Set_spec)

let protocol_criteria ~seed =
  let table =
    Table.create [ "protocol"; "converged"; "EC"; "UC"; "SUC"; "PC"; "SC" ]
  in
  (* The Fig. 1b race: every pair of processes has a crossing
     insert/delete conflict — the scenario on which the criteria
     actually separate. *)
  let program = Workload.For_set.insert_delete_race ~n:2 in
  let protocols :
      (bool
      * (module Protocol.PROTOCOL
           with type update = Set_spec.update
            and type query = Set_spec.query
            and type output = Set_spec.output))
      list =
    [
      (false, (module Uni_set));
      (false, (module Orset_crdt));
      (false, (module Twopset_crdt.Protocol_impl));
      (false, (module Lwwset_crdt));
      (false, (module Pnset_crdt));
      (true, (module Pipe_set));
      (true, (module Smr_set));
    ]
  in
  List.iter
    (fun (fifo, p) ->
      let name, history, _, converged = run_set_protocol p ~seed ~n:2 ~fifo program in
      let v c = mark (Set_criteria.holds c history) in
      Table.add_row table
        [
          name;
          mark converged;
          v Criteria.EC;
          v Criteria.UC;
          v Criteria.SUC;
          v Criteria.PC;
          v Criteria.SC;
        ])
    protocols;
  table

(* ------------------------------------------------------------------ *)
(* T6b: invariant preservation (bank vs commutative balance)           *)
(* ------------------------------------------------------------------ *)

let invariant_preservation ~seed =
  let table =
    Table.create [ "object"; "scenario"; "final balance(s)"; "overdraft?" ]
  in
  (* Two branches withdraw 80 from a shared 100, concurrently. *)
  (let module Cnt = Runner.Make (Counters.Pncounter) in
   let config =
     {
       (Cnt.default_config ~n:2 ~seed) with
       Cnt.delay = Network.Constant 50.0;
       think = Network.Constant 1.0;
       final_read = Some Counter_spec.Value;
     }
   in
   let r =
     Cnt.run config
       ~workload:
         [|
           [
             Protocol.Invoke_update (Counter_spec.Add 100);
             Protocol.Invoke_update (Counter_spec.Add (-80));
           ];
           [ Protocol.Invoke_update (Counter_spec.Add (-80)) ];
         |]
   in
   Table.add_row table
     [
       "pn-counter balance";
       "2× withdraw 80 of 100";
       String.concat " / " (List.map (fun (_, v) -> string_of_int v) r.Cnt.final_outputs);
       mark (List.exists (fun (_, v) -> v < 0) r.Cnt.final_outputs);
     ]);
  (let module Bank = Runner.Make (Generic.Make (Bank_spec)) in
   let config =
     {
       (Bank.default_config ~n:2 ~seed) with
       Bank.delay = Network.Constant 50.0;
       think = Network.Constant 1.0;
       final_read = Some (Bank_spec.Balance 0);
     }
   in
   let r =
     Bank.run config
       ~workload:
         [|
           [
             Protocol.Invoke_update (Bank_spec.Deposit (0, 100));
             Protocol.Invoke_update (Bank_spec.Withdraw (0, 80));
           ];
           [ Protocol.Invoke_update (Bank_spec.Withdraw (0, 80)) ];
         |]
   in
   Table.add_row table
     [
       "universal bank (Alg.1)";
       "2× withdraw 80 of 100";
       String.concat " / " (List.map (fun (_, v) -> string_of_int v) r.Bank.final_outputs);
       mark (List.exists (fun (_, v) -> v < 0) r.Bank.final_outputs);
     ]);
  table

(* ------------------------------------------------------------------ *)
(* C1: message complexity                                              *)
(* ------------------------------------------------------------------ *)

let message_complexity ~seed =
  let table =
    Table.create ~aligns:[ Table.Left; Right; Right; Right; Right ]
      [ "protocol"; "n"; "updates"; "msgs/update"; "bytes/msg" ]
  in
  let run_one (module P : Protocol.PROTOCOL
                with type update = Set_spec.update
                 and type query = Set_spec.query
                 and type output = Set_spec.output) ~n ~ops =
    let rng = Prng.create (seed + n + ops) in
    let workload =
      Workload.For_set.conflict ~rng ~n ~ops_per_process:ops ~domain:16 ~skew:1.0
        ~delete_ratio:0.3
    in
    let module R = Runner.Make (P) in
    let config = { (R.default_config ~n ~seed) with R.final_read = Some Set_spec.Read } in
    let r = R.run config ~workload in
    let m = r.R.metrics in
    Table.add_row table
      [
        P.protocol_name;
        string_of_int n;
        string_of_int m.Metrics.updates_invoked;
        Printf.sprintf "%.1f"
          (float_of_int m.Metrics.messages_sent /. float_of_int m.Metrics.updates_invoked);
        Printf.sprintf "%.1f"
          (float_of_int m.Metrics.bytes_sent /. float_of_int (max 1 m.Metrics.messages_sent));
      ]
  in
  let protocols :
      (module Protocol.PROTOCOL
         with type update = Set_spec.update
          and type query = Set_spec.query
          and type output = Set_spec.output)
      list =
    [ (module Uni_set); (module Orset_crdt); (module Twopset_crdt.Protocol_impl) ]
  in
  List.iter
    (fun (module P : Protocol.PROTOCOL
           with type update = Set_spec.update
            and type query = Set_spec.query
            and type output = Set_spec.output) ->
      List.iter (fun n -> run_one (module P) ~n ~ops:64) [ 2; 4; 8; 16; 32 ];
      List.iter (fun ops -> run_one (module P) ~n:3 ~ops) [ 256; 1024 ];
      Table.add_sep table)
    protocols;
  table

(* ------------------------------------------------------------------ *)
(* C2: query cost (replay work)                                        *)
(* ------------------------------------------------------------------ *)

let query_cost ~seed =
  let table =
    Table.create ~aligns:[ Table.Left; Right; Right; Right ]
      [ "protocol"; "log updates"; "queries"; "replay steps/query" ]
  in
  let run_one (module P : Protocol.PROTOCOL
                with type update = Set_spec.update
                 and type query = Set_spec.query
                 and type output = Set_spec.output) ~updates =
    let rng = Prng.create (seed + updates) in
    let module G = Workload.Make (Set_spec) in
    let workload = G.query_heavy ~rng ~n:3 ~updates ~queries_per_process:50 in
    let module R = Runner.Make (P) in
    let config = { (R.default_config ~n:3 ~seed) with R.final_read = Some Set_spec.Read } in
    let r = R.run config ~workload in
    let m = r.R.metrics in
    Table.add_row table
      [
        P.protocol_name;
        string_of_int updates;
        string_of_int m.Metrics.queries_invoked;
        Printf.sprintf "%.1f"
          (float_of_int m.Metrics.replay_steps /. float_of_int (max 1 m.Metrics.queries_invoked));
      ]
  in
  let protocols :
      (module Protocol.PROTOCOL
         with type update = Set_spec.update
          and type query = Set_spec.query
          and type output = Set_spec.output)
      list =
    [ (module Uni_list); (module Uni_set); (module Memo_set); (module Undo_set) ]
  in
  List.iter
    (fun p ->
      List.iter (fun updates -> run_one p ~updates) [ 50; 200; 800 ];
      Table.add_sep table)
    protocols;
  (* Algorithm 2 never replays at all. *)
  let rng = Prng.create seed in
  let workload =
    Workload.For_memory.random_writes ~rng ~n:3 ~ops_per_process:300 ~registers:8
      ~read_ratio:0.5
  in
  let module R = Runner.Make (Lww_memory) in
  let config = { (R.default_config ~n:3 ~seed) with R.final_read = Some (Memory_spec.Read 0) } in
  let r = R.run config ~workload in
  let m = r.R.metrics in
  Table.add_row table
    [
      "lww-memory (Alg.2)";
      string_of_int m.Metrics.updates_invoked;
      string_of_int m.Metrics.queries_invoked;
      Printf.sprintf "%.1f"
        (float_of_int m.Metrics.replay_steps /. float_of_int (max 1 m.Metrics.queries_invoked));
    ];
  table

(* ------------------------------------------------------------------ *)
(* C3: log GC                                                          *)
(* ------------------------------------------------------------------ *)

let log_gc ~seed =
  let table =
    Table.create ~aligns:[ Table.Left; Left; Right; Right; Right ]
      [ "protocol"; "faults"; "updates"; "final log entries"; "metadata bytes" ]
  in
  let run_one (module P : Protocol.PROTOCOL
                with type update = Set_spec.update
                 and type query = Set_spec.query
                 and type output = Set_spec.output) ~crash =
    let rng = Prng.create seed in
    let workload =
      Workload.For_set.conflict ~rng ~n:3 ~ops_per_process:200 ~domain:16 ~skew:1.0
        ~delete_ratio:0.3
    in
    let module R = Runner.Make (P) in
    let config =
      {
        (R.default_config ~n:3 ~seed) with
        R.fifo = true;
        final_read = Some Set_spec.Read;
        crashes = (if crash then [ (300.0, 2) ] else []);
      }
    in
    let r = R.run config ~workload in
    let mean xs = List.fold_left ( + ) 0 (List.map snd xs) / max 1 (List.length xs) in
    Table.add_row table
      [
        P.protocol_name;
        (if crash then "p2 crashes" else "none");
        string_of_int r.R.metrics.Metrics.updates_invoked;
        string_of_int (mean r.R.log_lengths);
        string_of_int (mean r.R.metadata_bytes);
      ]
  in
  run_one (module Uni_set) ~crash:false;
  run_one (module Gc_set) ~crash:false;
  run_one (module Uni_set) ~crash:true;
  run_one (module Gc_set) ~crash:true;
  table

(* ------------------------------------------------------------------ *)
(* C4: latency vs round-trip time                                      *)
(* ------------------------------------------------------------------ *)

let latency_vs_rtt ~seed =
  let table =
    Table.create ~aligns:[ Table.Left; Right; Right; Right ]
      [ "protocol"; "one-way delay"; "mean op latency"; "p99 op latency" ]
  in
  let run_one (module P : Protocol.PROTOCOL
                with type update = Register_spec.update
                 and type query = Register_spec.query
                 and type output = Register_spec.output) ~d =
    let rng = Prng.create (seed + int_of_float d) in
    let module G = Workload.Make (Register_spec) in
    let workload = G.mixed ~rng ~n:3 ~ops_per_process:40 ~query_ratio:0.5 in
    let module R = Runner.Make (P) in
    let config =
      {
        (R.default_config ~n:3 ~seed) with
        R.delay = Network.Constant d;
        fifo = true;  (* harmless for the wait-free rows, required by SMR *)
        final_read = Some Register_spec.Read;
      }
    in
    let r = R.run config ~workload in
    let s = Stats.summarize (if r.R.op_latencies = [] then [ 0.0 ] else r.R.op_latencies) in
    Table.add_row table
      [
        P.protocol_name;
        Printf.sprintf "%.0f" d;
        Printf.sprintf "%.1f" s.Stats.mean;
        Printf.sprintf "%.1f" s.Stats.p99;
      ]
  in
  let protocols :
      (module Protocol.PROTOCOL
         with type update = Register_spec.update
          and type query = Register_spec.query
          and type output = Register_spec.output)
      list =
    [ (module Uni_reg); (module Registers.Lwwreg); (module Abd); (module Smr_reg) ]
  in
  List.iter
    (fun p ->
      List.iter (fun d -> run_one p ~d) [ 1.0; 5.0; 25.0; 125.0 ];
      Table.add_sep table)
    protocols;
  table

(* ------------------------------------------------------------------ *)
(* C4b: availability under partition                                   *)
(* ------------------------------------------------------------------ *)

let availability ~seed =
  let table =
    Table.create
      [ "protocol"; "partition"; "ops completed"; "ops stalled"; "converged after heal" ]
  in
  let run_one (module P : Protocol.PROTOCOL
                with type update = Register_spec.update
                 and type query = Register_spec.query
                 and type output = Register_spec.output) ~heals =
    let rng = Prng.create seed in
    let module G = Workload.Make (Register_spec) in
    let workload = G.mixed ~rng ~n:3 ~ops_per_process:20 ~query_ratio:0.5 in
    let module R = Runner.Make (P) in
    let to_time = if heals then 500.0 else 1e12 in
    let config =
      {
        (R.default_config ~n:3 ~seed) with
        R.partitions = [ { Network.from_time = 10.0; to_time; group = [ 0 ] } ];
        fifo = true;
        final_read = Some Register_spec.Read;
        deadline = 1e6;
      }
    in
    let r = R.run config ~workload in
    Table.add_row table
      [
        P.protocol_name;
        (if heals then "heals at t=500" else "permanent");
        string_of_int r.R.metrics.Metrics.ops_completed;
        string_of_int r.R.metrics.Metrics.ops_incomplete;
        mark r.R.converged;
      ]
  in
  run_one (module Uni_reg) ~heals:true;
  run_one (module Abd) ~heals:true;
  run_one (module Smr_reg) ~heals:true;
  run_one (module Uni_reg) ~heals:false;
  run_one (module Abd) ~heals:false;
  run_one (module Smr_reg) ~heals:false;
  table

(* ------------------------------------------------------------------ *)
(* C5: the CRDT fast path                                              *)
(* ------------------------------------------------------------------ *)

let crdt_fastpath ~seed =
  let table =
    Table.create ~aligns:[ Table.Left; Right; Right; Right; Right ]
      [ "protocol"; "msgs/update"; "bytes/msg"; "replay/query"; "converged" ]
  in
  let run_one (module P : Protocol.PROTOCOL
                with type update = Counter_spec.update
                 and type query = Counter_spec.query
                 and type output = Counter_spec.output) =
    let rng = Prng.create seed in
    let module G = Workload.Make (Counter_spec) in
    let workload = G.mixed ~rng ~n:4 ~ops_per_process:100 ~query_ratio:0.25 in
    let module R = Runner.Make (P) in
    let config = { (R.default_config ~n:4 ~seed) with R.final_read = Some Counter_spec.Value } in
    let r = R.run config ~workload in
    let m = r.R.metrics in
    Table.add_row table
      [
        P.protocol_name;
        Printf.sprintf "%.1f"
          (float_of_int m.Metrics.messages_sent /. float_of_int (max 1 m.Metrics.updates_invoked));
        Printf.sprintf "%.1f"
          (float_of_int m.Metrics.bytes_sent /. float_of_int (max 1 m.Metrics.messages_sent));
        Printf.sprintf "%.1f"
          (float_of_int m.Metrics.replay_steps /. float_of_int (max 1 m.Metrics.queries_invoked));
        mark r.R.converged;
      ]
  in
  run_one (module Uni_counter);
  run_one (module Fast_counter);
  run_one (module Counters.Pncounter);
  table

(* ------------------------------------------------------------------ *)
(* C6: online monitors — how early is a violation caught?              *)
(* ------------------------------------------------------------------ *)

(* Post-hoc checking sees a violation only once the run is over (100%
   of the journal); an online monitor names the first violating event
   as it happens. Algorithm 1 stays clean end to end; the non-FIFO
   pipelined replica is caught mid-journal. For pipelined the driver
   scans a few seeds from [seed] for a violating schedule, like the
   nemesis experiments do. *)
let monitor_latency ~seed =
  let table =
    Table.create ~aligns:[ Table.Left; Right; Right; Right; Left; Left ]
      [
        "protocol";
        "journal events";
        "first violation";
        "caught at";
        "criterion";
        "post-hoc PC/UC";
      ]
  in
  let run_one (module P : Protocol.PROTOCOL
                with type update = Set_spec.update
                 and type query = Set_spec.query
                 and type output = Set_spec.output) seed =
    let module R = Runner.Make (P) in
    let journal = Obs.Journal.create () in
    let obs = Obs.create ~journal () in
    let mon =
      R.Mon.create ~n:3
        ~criteria:[ Obs.Monitor.Uc; Obs.Monitor.Ec; Obs.Monitor.Pc ]
    in
    let rng = Prng.create seed in
    let workload =
      Workload.For_set.conflict ~rng ~n:3 ~ops_per_process:4 ~domain:16
        ~skew:1.0 ~delete_ratio:0.3
    in
    let config =
      {
        (R.default_config ~n:3 ~seed) with
        R.final_read = Some Set_spec.Read;
        obs = Some obs;
        monitor = Some mon;
      }
    in
    let r = R.run config ~workload in
    (journal, R.Mon.first_violation mon, r.R.history)
  in
  let add_row name (journal, violation, history) =
    let events = Obs.Journal.length journal in
    let posthoc =
      Printf.sprintf "%s/%s"
        (mark (Set_criteria.holds Criteria.PC history))
        (mark (Set_criteria.holds Criteria.UC history))
    in
    match violation with
    | None ->
      Table.add_row table
        [ name; string_of_int events; "-"; "-"; "clean"; posthoc ]
    | Some (v : Obs.Monitor.violation) ->
      Table.add_row table
        [
          name;
          string_of_int events;
          string_of_int v.Obs.Monitor.index;
          Printf.sprintf "%.0f%%"
            (100.0 *. float_of_int (v.Obs.Monitor.index + 1)
            /. float_of_int (max 1 events));
          Obs.Monitor.criterion_name v.Obs.Monitor.criterion;
          posthoc;
        ]
  in
  add_row "universal" (run_one (module Uni_set) seed);
  let rec violating k =
    let result = run_one (module Pipe_set) (seed + k) in
    let _, violation, _ = result in
    if violation <> None || k >= 7 then result else violating (k + 1)
  in
  add_row "pipelined" (violating 0);
  table

(* ------------------------------------------------------------------ *)
(* A1: undo-based repair vs full replay under late messages            *)
(* ------------------------------------------------------------------ *)

let undo_ablation ~seed =
  let table =
    Table.create ~aligns:[ Table.Left; Left; Right; Right ]
      [ "protocol"; "delay model"; "total replay steps"; "converged" ]
  in
  let delays =
    [
      ("uniform 1-10", Network.Uniform { lo = 1.0; hi = 10.0 });
      ("exponential mean 10", Network.Exponential { mean = 10.0 });
      ("pareto heavy tail", Network.Pareto { scale = 2.0; shape = 1.1 });
    ]
  in
  let run_one (module P : Protocol.PROTOCOL
                with type update = Set_spec.update
                 and type query = Set_spec.query
                 and type output = Set_spec.output) (dname, delay) =
    let rng = Prng.create seed in
    let module G = Workload.Make (Set_spec) in
    let workload = G.mixed ~rng ~n:4 ~ops_per_process:150 ~query_ratio:0.3 in
    let module R = Runner.Make (P) in
    let config =
      { (R.default_config ~n:4 ~seed) with R.delay; final_read = Some Set_spec.Read }
    in
    let r = R.run config ~workload in
    Table.add_row table
      [
        P.protocol_name;
        dname;
        string_of_int r.R.metrics.Metrics.replay_steps;
        mark r.R.converged;
      ]
  in
  List.iter
    (fun d ->
      run_one (module Uni_set) d;
      run_one (module Memo_set) d;
      run_one (module Undo_set) d;
      Table.add_sep table)
    delays;
  table

(* ------------------------------------------------------------------ *)
(* A2: convergence lag across network conditions                       *)
(* ------------------------------------------------------------------ *)

let convergence_sweep ~seed =
  let table =
    Table.create ~aligns:[ Table.Left; Right; Right; Right ]
      [ "network"; "convergence lag"; "divergent probes"; "probes" ]
  in
  let module Cv = Convergence.Make (Uni_set) in
  let cases =
    [
      ("constant 5", Network.Constant 5.0, []);
      ("uniform 1-10", Network.Uniform { lo = 1.0; hi = 10.0 }, []);
      ("exponential mean 10", Network.Exponential { mean = 10.0 }, []);
      ("pareto heavy tail", Network.Pareto { scale = 2.0; shape = 1.1 }, []);
      ( "uniform + partition [50,400]",
        Network.Uniform { lo = 1.0; hi = 10.0 },
        [ { Network.from_time = 50.0; to_time = 400.0; group = [ 0 ] } ] );
    ]
  in
  List.iter
    (fun (name, delay, partitions) ->
      let rng = Prng.create seed in
      let workload =
        Workload.For_set.conflict ~rng ~n:3 ~ops_per_process:60 ~domain:8 ~skew:1.0
          ~delete_ratio:0.3
      in
      let r =
        Cv.measure ~seed ~n:3 ~delay ~partitions ~think:(Network.Exponential { mean = 5.0 })
          ~workload ~probe:Set_spec.Read ()
      in
      Table.add_row table
        [
          name;
          Printf.sprintf "%.1f" r.Cv.convergence_lag;
          string_of_int r.Cv.divergent_probes;
          string_of_int r.Cv.probes;
        ])
    cases;
  table

(* ------------------------------------------------------------------ *)
(* S1: client sessions and fail-over                                   *)
(* ------------------------------------------------------------------ *)

let sessions ~seed =
  let module Cl = Clients.Make (Uni_set) in
  let table =
    Table.create
      [ "scenario"; "failovers"; "ops completed"; "converged"; "UC"; "PC" ]
  in
  let row name config workload =
    let r = Cl.run config ~workload in
    Table.add_row table
      [
        name;
        string_of_int r.Cl.failovers;
        string_of_int r.Cl.ops_completed;
        mark r.Cl.converged;
        mark (Set_criteria.holds Criteria.UC r.Cl.history);
        mark (Set_criteria.holds Criteria.PC r.Cl.history);
      ]
  in
  let upd u = Protocol.Invoke_update u and qry = Protocol.Invoke_query Set_spec.Read in
  row "no faults"
    { (Cl.default_config ~n_replicas:3 ~n_clients:2 ~seed) with
      Cl.final_read = Some Set_spec.Read }
    [| [ upd (Set_spec.Insert 1); qry ]; [ upd (Set_spec.Insert 2); qry ] |];
  row "replica crash, fail-over"
    {
      (Cl.default_config ~n_replicas:3 ~n_clients:2 ~seed) with
      Cl.crashes = [ (10.0, 0) ];
      think = Network.Constant 6.0;
      final_read = Some Set_spec.Read;
    }
    [| [ upd (Set_spec.Insert 1); qry; qry ]; [ upd (Set_spec.Insert 2); qry ] |];
  row "crash + slow mesh (session rollback)"
    {
      (Cl.default_config ~n_replicas:2 ~n_clients:1 ~seed:7) with
      Cl.replica_delay = Network.Constant 500.0;
      client_delay = Network.Constant 0.25;
      think = Network.Constant 3.0;
      crashes = [ (11.0, 0) ];
      final_read = Some Set_spec.Read;
    }
    [| [ upd (Set_spec.Insert 7); qry; qry; qry ] |];
  table

(* ------------------------------------------------------------------ *)
(* A3: distribution of the inconsistency window                        *)
(* ------------------------------------------------------------------ *)

let divergence_distribution ~seed =
  let module Cv = Convergence.Make (Uni_set) in
  let samples =
    List.init 200 (fun i ->
        let seed = seed + i in
        let rng = Prng.create seed in
        let workload =
          Workload.For_set.conflict ~rng ~n:3 ~ops_per_process:20 ~domain:8 ~skew:1.0
            ~delete_ratio:0.3
        in
        let r =
          Cv.measure ~seed ~n:3
            ~delay:(Network.Exponential { mean = 10.0 })
            ~think:(Network.Exponential { mean = 5.0 })
            ~workload ~probe:Set_spec.Read ()
        in
        r.Cv.convergence_lag)
  in
  let summary = Stats.summarize samples in
  Format.asprintf
    "convergence lag after the last update, 200 runs (exp. delays, mean 10):@.%a@.%a"
    Stats.pp_summary summary Stats.pp_histogram
    (Stats.histogram ~buckets:10 samples)

let all ?(markdown = false) ~seed () =
  let render = if markdown then Table.render_markdown else Table.render in
  [
    ("F1", "Figure 1: consistency-criteria matrix", render (fig1 ()));
    ("F2", "Figure 2: PC but not EC", fig2 ());
    ("P1", "Proposition 1: pipelined convergence is impossible wait-free", render (prop1 ~seed));
    ("P4", "Proposition 4: exhaustive model check", render (prop4_modelcheck ()));
    ("T6", "Section VI: set semantics under conflict", render (set_comparison ~seed));
    ( "T6b",
      "Invariant preservation: overdraft protection",
      render (invariant_preservation ~seed) );
    ("T7", "Empirical protocol × criteria matrix", render (protocol_criteria ~seed));
    ("S1", "Client sessions and fail-over", render (sessions ~seed));
    ("C1", "Message complexity", render (message_complexity ~seed));
    ("C2", "Query replay cost", render (query_cost ~seed));
    ("C3", "Log growth and stability GC", render (log_gc ~seed));
    ("C4", "Operation latency vs network delay", render (latency_vs_rtt ~seed));
    ("C4b", "Availability under partition", render (availability ~seed));
    ("C5", "CRDT fast path", render (crdt_fastpath ~seed));
    ("C6", "Online monitor detection latency", render (monitor_latency ~seed));
    ("A1", "Undo-based repair vs replay", render (undo_ablation ~seed));
    ("A2", "Convergence lag across networks", render (convergence_sweep ~seed));
    ("A3", "Distribution of the inconsistency window", divergence_distribution ~seed);
  ]
