(** Convergence instrumentation (experiment A2).

    Runs an update-only workload under a given network model and probes
    every replica with a query after each delivery; reports when the
    replicas last disagreed. Convergence time is measured from the last
    update's invocation — how long after write-quiescence the replicas
    still diverged — which is the observable that eventual consistency
    bounds and the paper's partition/heavy-tail discussion cares about.

    Restricted to wait-free protocols (probes must answer synchronously,
    like the runner's final reads). *)

module Make (P : Protocol.PROTOCOL) : sig
  type result = {
    converged : bool;  (** replicas agreed once everything was delivered *)
    last_update_time : float;
    last_divergence_time : float;
        (** latest probe instant at which two replicas disagreed (0 if
            never) *)
    convergence_lag : float;
        (** [max 0 (last_divergence_time - last_update_time)] *)
    duration : float;
    probes : int;
    divergent_probes : int;
  }

  val measure :
    seed:int ->
    n:int ->
    delay:Network.delay_model ->
    ?fifo:bool ->
    ?partitions:Network.partition list ->
    think:Network.delay_model ->
    workload:(P.update, P.query) Protocol.invocation list array ->
    probe:P.query ->
    unit ->
    result
end
