module Make (P : Protocol.PROTOCOL) = struct
  type result = {
    converged : bool;
    last_update_time : float;
    last_divergence_time : float;
    convergence_lag : float;
    duration : float;
    probes : int;
    divergent_probes : int;
  }

  let measure ~seed ~n ~delay ?(fifo = false) ?(partitions = []) ~think ~workload ~probe () =
    if Array.length workload <> n then
      invalid_arg "Convergence.measure: workload width must match n";
    let engine = Engine.create () in
    let metrics = Metrics.create () in
    let root_rng = Prng.create seed in
    let net_rng = Prng.split root_rng in
    let think_rngs = Array.init n (fun _ -> Prng.split root_rng) in
    let replicas = Array.make n None in
    let last_update_time = ref 0.0 in
    let last_divergence_time = ref 0.0 in
    let probes = ref 0 in
    let divergent_probes = ref 0 in
    let probe_all () =
      incr probes;
      let outputs = ref [] in
      Array.iter
        (function
          | None -> ()
          | Some r -> P.query r probe ~on_result:(fun o -> outputs := o :: !outputs))
        replicas;
      match !outputs with
      | [] -> ()
      | o0 :: rest ->
        if not (List.for_all (P.equal_output o0) rest) then begin
          incr divergent_probes;
          last_divergence_time := Engine.now engine
        end
    in
    let network =
      Network.create ~engine ~rng:net_rng ~metrics ~n ~fifo ~partitions ~delay
        ~wire_size:P.message_wire_size
        ~deliver:(fun ~dst ~src msg ->
          (match replicas.(dst) with
          | Some r -> P.receive r ~src msg
          | None -> ());
          probe_all ())
        ()
    in
    for pid = 0 to n - 1 do
      let ctx =
        {
          Protocol.pid;
          n;
          now = (fun () -> Engine.now engine);
          send = (fun ~dst msg -> Network.send network ~src:pid ~dst msg);
          broadcast = (fun msg -> Network.broadcast network ~src:pid msg);
          broadcast_batch =
            (fun msgs -> Network.broadcast_batch network ~src:pid msgs);
          set_timer = (fun ~delay thunk -> Engine.schedule engine ~delay thunk);
          count_replay = (fun _ -> ());
          obs = None;
        }
      in
      replicas.(pid) <- Some (P.create ctx)
    done;
    let rec issue pid script =
      match script with
      | [] -> ()
      | action :: rest ->
        (match (action, replicas.(pid)) with
        | _, None -> ()
        | Protocol.Invoke_update u, Some r ->
          last_update_time := Engine.now engine;
          P.update r u ~on_done:ignore;
          probe_all ()
        | Protocol.Invoke_query q, Some r -> P.query r q ~on_result:ignore);
        let gap = Network.draw_delay think_rngs.(pid) think in
        Engine.schedule engine ~delay:gap (fun () -> issue pid rest)
    in
    Array.iteri
      (fun pid script ->
        let gap = Network.draw_delay think_rngs.(pid) think in
        Engine.schedule engine ~delay:gap (fun () -> issue pid script))
      workload;
    Engine.run engine;
    let final_agree =
      let outputs = ref [] in
      Array.iter
        (function
          | None -> ()
          | Some r -> P.query r probe ~on_result:(fun o -> outputs := o :: !outputs))
        replicas;
      match !outputs with
      | [] -> true
      | o0 :: rest -> List.for_all (P.equal_output o0) rest
    in
    {
      converged = final_agree;
      last_update_time = !last_update_time;
      last_divergence_time = !last_divergence_time;
      convergence_lag = Float.max 0.0 (!last_divergence_time -. !last_update_time);
      duration = Engine.now engine;
      probes = !probes;
      divergent_probes = !divergent_probes;
    }
end
