(** Workload generators: the operation scripts the experiments feed to
    {!Runner}.

    The generic generators draw from an ADT's own [random_update]/
    [random_query]; the set/memory/text specialisations shape the {e
    conflict structure} — element skew, delete ratio, register count —
    because conflicts between concurrent non-commuting updates are where
    consistency criteria actually differ. *)

type ('u, 'q) t = ('u, 'q) Protocol.invocation list array
(** One script per process. *)

module Make (A : Uqadt.S) : sig
  val mixed :
    rng:Prng.t -> n:int -> ops_per_process:int -> query_ratio:float -> (A.update, A.query) t
  (** Independent uniform mixture of updates and queries. *)

  val updates_only : rng:Prng.t -> n:int -> ops_per_process:int -> (A.update, A.query) t

  val query_heavy :
    rng:Prng.t -> n:int -> updates:int -> queries_per_process:int -> (A.update, A.query) t
  (** A few updates up front (process 0), then everyone reads — the
      replay-cost regime of experiment C2. *)
end

(** Set workloads for the Section VI comparison. *)
module For_set : sig
  val conflict :
    rng:Prng.t ->
    n:int ->
    ops_per_process:int ->
    domain:int ->
    skew:float ->
    delete_ratio:float ->
    (Set_spec.update, Set_spec.query) t
  (** Insert/delete over a Zipf-skewed element domain: small [domain] and
      high [skew] maximise concurrent same-element insert/delete races. *)

  val insert_delete_race : n:int -> (Set_spec.update, Set_spec.query) t
  (** The Figure 1b program generalised to [n] processes: process [i]
      inserts [i] then deletes everyone else's elements — every pair of
      processes races. *)

  val fig2_program : unit -> (Set_spec.update, Set_spec.query) t
  (** The two-process program of Figure 2 (drives Proposition 1). *)

  val print_op : (Set_spec.update, Set_spec.query) Protocol.invocation -> string
  (** One-token script codec: ["I(3)"], ["D(3)"], ["R"]. Used to embed
      explicit scripts in journal headers so a minimized scenario
      replays from the file alone. *)

  val parse_op :
    string -> (Set_spec.update, Set_spec.query) Protocol.invocation option
  (** Inverse of {!print_op}; [None] on anything else. *)
end

(** Flash-crowd load shapes for the open-loop client driver (C8). *)
module Flash_crowd : sig
  val plan :
    base:float ->
    peak:float ->
    warm:float ->
    spike:float ->
    cool:float ->
    Clients.phase list
  (** Warm-up at [base] arrivals per time unit for [warm], spike at
      [peak] for [spike], cool-down at [base] for [cool]. *)

  val set_mix :
    domain:int ->
    skew:float ->
    delete_ratio:float ->
    query_ratio:float ->
    Prng.t ->
    (Set_spec.update, Set_spec.query) Protocol.invocation
  (** Per-arrival operation mix over the Zipf-skewed set domain of
      {!For_set.conflict}, plus a query fraction. *)
end

(** Zipf-skewed multi-key streams for the sharded object space (C9).

    Generic over the base ADT through callbacks, because the keyed
    spec lives above this library: [update]/[query] draw base
    operations, [read k q] wraps a keyed read into the space's query
    type. Keys are Zipf ranks shifted to [0, keys) — key 0 is the
    hottest, so skew concentrates load on one shard (the rebalancing
    regime). *)
module For_space : sig
  val zipf_scripts :
    rng:Prng.t ->
    n:int ->
    ops_per_process:int ->
    keys:int ->
    skew:float ->
    fanout:int ->
    query_ratio:float ->
    update:(Prng.t -> 'u) ->
    query:(Prng.t -> 'q) ->
    read:(int -> 'q -> 'rq) ->
    ((int * 'u) list, 'rq) t
  (** Closed-loop scripts of multi-key update batches (width uniform in
      [1..fanout]) and keyed reads. *)

  val storm_mix :
    keys:int ->
    skew:float ->
    fanout:int ->
    query_ratio:float ->
    update:(Prng.t -> 'u) ->
    query:(Prng.t -> 'q) ->
    read:(int -> 'q -> 'rq) ->
    Prng.t ->
    ((int * 'u) list, 'rq) Protocol.invocation list
  (** Open-loop arrival mix: each arrival fans out to [1..fanout]
      single-key sub-operations issued concurrently; feed the
      per-sub-op latencies to {!Stats.slo_by_key} for arrival-level
      SLO verdicts. *)
end

module For_memory : sig
  val random_writes :
    rng:Prng.t ->
    n:int ->
    ops_per_process:int ->
    registers:int ->
    read_ratio:float ->
    (Memory_spec.update, Memory_spec.query) t
end

module For_text : sig
  val collaborative :
    rng:Prng.t -> n:int -> edits_per_process:int -> (Text_spec.update, Text_spec.query) t
  (** Concurrent front/middle/back insertions and deletions — a crude
      collaborative-editing session. *)
end

module For_counter : sig
  val deposits_and_withdrawals :
    rng:Prng.t ->
    n:int ->
    ops_per_process:int ->
    max_amount:int ->
    (Counter_spec.update, Counter_spec.query) t
  (** The bank-account ledger scenario (all amounts commute). *)

  val increments_only :
    rng:Prng.t ->
    n:int ->
    ops_per_process:int ->
    max_amount:int ->
    (Counter_spec.update, Counter_spec.query) t
  (** Non-negative increments only — also valid for the G-counter. *)
end
