type ('u, 'q) t = ('u, 'q) Protocol.invocation list array

module Make (A : Uqadt.S) = struct
  let mixed ~rng ~n ~ops_per_process ~query_ratio =
    Array.init n (fun _ ->
        List.init ops_per_process (fun _ ->
            if Prng.float rng 1.0 < query_ratio then
              Protocol.Invoke_query (A.random_query rng)
            else Protocol.Invoke_update (A.random_update rng)))

  let updates_only ~rng ~n ~ops_per_process =
    Array.init n (fun _ ->
        List.init ops_per_process (fun _ -> Protocol.Invoke_update (A.random_update rng)))

  let query_heavy ~rng ~n ~updates ~queries_per_process =
    Array.init n (fun p ->
        let reads =
          List.init queries_per_process (fun _ -> Protocol.Invoke_query (A.random_query rng))
        in
        if p = 0 then
          List.init updates (fun _ -> Protocol.Invoke_update (A.random_update rng)) @ reads
        else reads)
end

module For_set = struct
  let conflict ~rng ~n ~ops_per_process ~domain ~skew ~delete_ratio =
    let zipf = Zipf.create ~n:domain ~s:skew in
    Array.init n (fun _ ->
        List.init ops_per_process (fun _ ->
            let v = Zipf.sample zipf rng in
            if Prng.float rng 1.0 < delete_ratio then
              Protocol.Invoke_update (Set_spec.Delete v)
            else Protocol.Invoke_update (Set_spec.Insert v)))

  let insert_delete_race ~n =
    Array.init n (fun i ->
        Protocol.Invoke_update (Set_spec.Insert i)
        :: List.filter_map
             (fun j -> if j <> i then Some (Protocol.Invoke_update (Set_spec.Delete j)) else None)
             (List.init n Fun.id)
        @ [ Protocol.Invoke_query Set_spec.Read ])

  (* Compact one-op-per-token script codec, used to embed explicit
     scripts in journal headers so a minimized scenario replays from
     the file alone: "I(3)" insert, "D(3)" delete, "R" read. *)
  let print_op = function
    | Protocol.Invoke_update (Set_spec.Insert v) -> Printf.sprintf "I(%d)" v
    | Protocol.Invoke_update (Set_spec.Delete v) -> Printf.sprintf "D(%d)" v
    | Protocol.Invoke_query Set_spec.Read -> "R"

  let parse_op s =
    match s with
    | "R" -> Some (Protocol.Invoke_query Set_spec.Read)
    | _ -> (
      let scan fmt k = try Some (Scanf.sscanf s fmt k) with _ -> None in
      match scan "I(%d)%!" (fun v -> Protocol.Invoke_update (Set_spec.Insert v)) with
      | Some _ as op -> op
      | None ->
        scan "D(%d)%!" (fun v -> Protocol.Invoke_update (Set_spec.Delete v)))

  let fig2_program () =
    [|
      [
        Protocol.Invoke_update (Set_spec.Insert 1);
        Protocol.Invoke_update (Set_spec.Insert 3);
        Protocol.Invoke_query Set_spec.Read;
        Protocol.Invoke_query Set_spec.Read;
      ];
      [
        Protocol.Invoke_update (Set_spec.Insert 2);
        Protocol.Invoke_update (Set_spec.Delete 3);
        Protocol.Invoke_query Set_spec.Read;
        Protocol.Invoke_query Set_spec.Read;
      ];
    |]
end

(* Flash-crowd load shapes for the open-loop client driver (C8): a
   warm-up at the base rate, a spike at the peak rate, a cool-down back
   at base. *)
module Flash_crowd = struct
  let plan ~base ~peak ~warm ~spike ~cool =
    [
      { Clients.duration = warm; rate = base };
      { Clients.duration = spike; rate = peak };
      { Clients.duration = cool; rate = base };
    ]

  let set_mix ~domain ~skew ~delete_ratio ~query_ratio =
    let zipf = Zipf.create ~n:domain ~s:skew in
    fun rng ->
      if Prng.float rng 1.0 < query_ratio then
        Protocol.Invoke_query Set_spec.Read
      else begin
        let v = Zipf.sample zipf rng in
        if Prng.float rng 1.0 < delete_ratio then
          Protocol.Invoke_update (Set_spec.Delete v)
        else Protocol.Invoke_update (Set_spec.Insert v)
      end
end

(* Zipf-skewed multi-key operation streams for the sharded object
   space. Generic over the base ADT through callbacks (the keyed spec
   lives in the shard layer, above this library): [update]/[query] draw
   base operations, [read] wraps a keyed read into the space's query
   type. Keys are Zipf ranks shifted to [0, keys): rank 1 — the hottest
   key — is key 0, so high skew concentrates load on whatever shard
   owns key 0, which is exactly the hot-shard regime rebalancing is
   for. Explicit loops: the draw order is part of the determinism
   contract, and [List.init]'s evaluation order is not. *)
module For_space = struct
  let batch ~zipf ~fanout ~update g =
    let width = if fanout <= 1 then 1 else 1 + Prng.int g fanout in
    let acc = ref [] in
    for _ = 1 to width do
      let k = Zipf.sample zipf g - 1 in
      let u = update g in
      acc := (k, u) :: !acc
    done;
    List.rev !acc

  let zipf_scripts ~rng ~n ~ops_per_process ~keys ~skew ~fanout ~query_ratio
      ~update ~query ~read =
    let zipf = Zipf.create ~n:keys ~s:skew in
    let script () =
      let acc = ref [] in
      for _ = 1 to ops_per_process do
        let inv =
          if query_ratio > 0.0 && Prng.float rng 1.0 < query_ratio then
            Protocol.Invoke_query (read (Zipf.sample zipf rng - 1) (query rng))
          else Protocol.Invoke_update (batch ~zipf ~fanout ~update rng)
        in
        acc := inv :: !acc
      done;
      List.rev !acc
    in
    let scripts = Array.make n [] in
    for p = 0 to n - 1 do
      scripts.(p) <- script ()
    done;
    scripts

  (* Open-loop arrival mix: one arrival fans out to [1..fanout]
     single-key sub-operations, issued concurrently — the regime the
     per-key SLO attribution ({!Stats.slo_by_key}) exists for. *)
  let storm_mix ~keys ~skew ~fanout ~query_ratio ~update ~query ~read =
    let zipf = Zipf.create ~n:keys ~s:skew in
    fun g ->
      if query_ratio > 0.0 && Prng.float g 1.0 < query_ratio then
        [ Protocol.Invoke_query (read (Zipf.sample zipf g - 1) (query g)) ]
      else
        List.map
          (fun ku -> Protocol.Invoke_update [ ku ])
          (batch ~zipf ~fanout ~update g)
end

module For_memory = struct
  let random_writes ~rng ~n ~ops_per_process ~registers ~read_ratio =
    Array.init n (fun _ ->
        List.init ops_per_process (fun _ ->
            let x = Prng.int rng registers in
            if Prng.float rng 1.0 < read_ratio then
              Protocol.Invoke_query (Memory_spec.Read x)
            else Protocol.Invoke_update (Memory_spec.Write (x, Prng.int rng 1000))))
end

module For_text = struct
  let collaborative ~rng ~n ~edits_per_process =
    Array.init n (fun _ ->
        List.init edits_per_process (fun _ ->
            let pos = Prng.int rng 40 in
            match Prng.int rng 4 with
            | 0 -> Protocol.Invoke_update (Text_spec.Delete pos)
            | _ ->
              let c = Char.chr (Char.code 'a' + Prng.int rng 26) in
              Protocol.Invoke_update (Text_spec.Insert (pos, c))))
end

module For_counter = struct
  let deposits_and_withdrawals ~rng ~n ~ops_per_process ~max_amount =
    Array.init n (fun _ ->
        List.init ops_per_process (fun _ ->
            let amount = 1 + Prng.int rng max_amount in
            let signed = if Prng.int rng 3 = 0 then -amount else amount in
            Protocol.Invoke_update (Counter_spec.Add signed)))

  let increments_only ~rng ~n ~ops_per_process ~max_amount =
    Array.init n (fun _ ->
        List.init ops_per_process (fun _ ->
            Protocol.Invoke_update (Counter_spec.Add (1 + Prng.int rng max_amount))))
end
