(** Causal-order delivery buffer, the substrate op-based CRDTs assume
    (the OR-set in particular: a remove must never be delivered before
    the add it observed).

    Classic vector-clock algorithm: each broadcast carries the sender's
    vector clock; a receiver holds a message back until it is the
    sender's next and every third-party dependency is satisfied
    ({!Vector_clock.deliverable}). The network itself stays the paper's
    arbitrary-delay asynchronous network — causality is restored at the
    edge, which is how real op-based CRDT middleware works. *)

type 'a t

val create : n:int -> pid:int -> 'a t

val stamp : 'a t -> Vector_clock.t
(** Advance the local component and return the clock to attach to an
    outgoing broadcast. The local event is delivered to self by the
    caller (not buffered). *)

val receive : 'a t -> src:int -> Vector_clock.t -> 'a -> (int * 'a) list
(** Buffer the message and return every message (source, payload) that
    has now become deliverable, in causal order. *)

val pending : 'a t -> int
(** Messages still held back. *)

val clock : 'a t -> Vector_clock.t
