include Set_spec

type message = { element : int; delta : int }

type t = { ctx : message Protocol.ctx; mutable counts : int Support.Int_map.t }

let protocol_name = "pn-set"

let create ctx = { ctx; counts = Support.Int_map.empty }

let bump t element delta =
  let current = Option.value ~default:0 (Support.Int_map.find_opt element t.counts) in
  t.counts <- Support.Int_map.add element (current + delta) t.counts

let delta_of = function Set_spec.Insert _ -> 1 | Set_spec.Delete _ -> -1

let element_of = function Set_spec.Insert v | Set_spec.Delete v -> v

let update t u ~on_done =
  let element = element_of u and delta = delta_of u in
  bump t element delta;
  t.ctx.Protocol.broadcast { element; delta };
  on_done ()

let receive t ~src:_ { element; delta } = bump t element delta

let query t Set_spec.Read ~on_result =
  let present =
    Support.Int_map.fold
      (fun v c acc -> if c > 0 then Support.Int_set.add v acc else acc)
      t.counts Support.Int_set.empty
  in
  on_result present

let receive_batch t ~src msgs = List.iter (receive t ~src) msgs

let message_wire_size { element; delta } = Wire.varint_size (abs element) + 1 + abs delta

let describe_message { element; delta } = Printf.sprintf "Δ(%d,%+d)" element delta

let log_length _t = 0

let metadata_bytes t =
  Support.Int_map.fold
    (fun v c acc -> acc + Wire.varint_size (abs v) + Wire.varint_size (abs c))
    t.counts 0

let certificate _t = None

let snapshot _t = None

let absorb _t _s = false

let count t element = Option.value ~default:0 (Support.Int_map.find_opt element t.counts)
