(** Register CRDTs (Shapiro et al.).

    The LWW-register arbitrates concurrent writes by (Lamport clock,
    pid) — it is in fact update consistent (it is Algorithm 2 with a
    single register). The multi-value register refuses to arbitrate: a
    read returns {e all} maximal concurrent writes, which makes it
    convergent but gives reads no sequential explanation — the paper's
    Section VI point that eventually consistent objects can have
    semantics no linearization of updates produces. *)

module Lwwreg : sig
  include
    Protocol.PROTOCOL
      with type state = Register_spec.state
       and type update = Register_spec.update
       and type query = Register_spec.query
       and type output = Register_spec.output
end

(** Sequential specification of the multi-value register: writes store a
    singleton, reads return the stored set (so a sequential execution
    always reads a singleton or the empty initial set). *)
module Mvreg_spec :
  Uqadt.S
    with type state = Support.Int_set.t
     and type update = Register_spec.update
     and type query = Register_spec.query
     and type output = Support.Int_set.t

module Mvreg : sig
  include
    Protocol.PROTOCOL
      with type state = Mvreg_spec.state
       and type update = Mvreg_spec.update
       and type query = Mvreg_spec.query
       and type output = Mvreg_spec.output
end
