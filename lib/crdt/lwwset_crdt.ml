include Set_spec

type message = { ts : Timestamp.t; element : int; adding : bool }

type slot = { add_ts : Timestamp.t option; rem_ts : Timestamp.t option }

type t = { ctx : message Protocol.ctx; clock : Lamport.t; mutable slots : slot Support.Int_map.t }

let protocol_name = "lww-set"

let create ctx = { ctx; clock = Lamport.create (); slots = Support.Int_map.empty }

let newer a b =
  match (a, b) with
  | None, ts -> ts
  | ts, None -> ts
  | Some x, Some y -> if Timestamp.compare x y >= 0 then Some x else Some y

let absorb t { ts; element; adding } =
  let slot =
    Option.value ~default:{ add_ts = None; rem_ts = None }
      (Support.Int_map.find_opt element t.slots)
  in
  let slot =
    if adding then { slot with add_ts = newer slot.add_ts (Some ts) }
    else { slot with rem_ts = newer slot.rem_ts (Some ts) }
  in
  t.slots <- Support.Int_map.add element slot t.slots

let update t u ~on_done =
  let cl = Lamport.tick t.clock in
  let ts = Timestamp.make ~clock:cl ~pid:t.ctx.Protocol.pid in
  let msg =
    match u with
    | Set_spec.Insert v -> { ts; element = v; adding = true }
    | Set_spec.Delete v -> { ts; element = v; adding = false }
  in
  absorb t msg;
  t.ctx.Protocol.broadcast msg;
  on_done ()

let receive t ~src:_ msg =
  Lamport.merge t.clock msg.ts.Timestamp.clock;
  absorb t msg

let present slot =
  match (slot.add_ts, slot.rem_ts) with
  | None, _ -> false
  | Some _, None -> true
  | Some a, Some r -> Timestamp.compare a r > 0

let query t Set_spec.Read ~on_result =
  let s =
    Support.Int_map.fold
      (fun v slot acc -> if present slot then Support.Int_set.add v acc else acc)
      t.slots Support.Int_set.empty
  in
  on_result s

let receive_batch t ~src msgs = List.iter (receive t ~src) msgs

let message_wire_size { ts; element; adding = _ } =
  Timestamp.wire_size ts + Wire.varint_size (abs element) + 1

let describe_message { ts; element; adding } =
  Format.asprintf "%s(%d)%a" (if adding then "I" else "D") element Timestamp.pp ts

let log_length _t = 0

let metadata_bytes t =
  let ts_bytes = function None -> 1 | Some ts -> Timestamp.wire_size ts in
  Support.Int_map.fold
    (fun v slot acc ->
      acc + Wire.varint_size (abs v) + ts_bytes slot.add_ts + ts_bytes slot.rem_ts)
    t.slots 0

let certificate _t = None

let snapshot _t = None

let absorb _t _s = false
