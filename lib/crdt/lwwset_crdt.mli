(** The Last-Writer-Wins element set (LWW-element-Set, Shapiro et al.):
    each element keeps the timestamps of its latest insert and latest
    delete; it is present when the insert is newer. Timestamps are
    (Lamport clock, pid) pairs, so "newer" is a total order and merging
    by max commutes — op-based, no delivery-order requirement. The
    arbitration is per-element rather than global, which is why the
    LWW set converges but is not update consistent in general. *)

include
  Protocol.PROTOCOL
    with type state = Set_spec.state
     and type update = Set_spec.update
     and type query = Set_spec.query
     and type output = Set_spec.output
