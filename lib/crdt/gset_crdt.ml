type payload = Support.Int_set.t

let name = "g-set"

let empty = Support.Int_set.empty

let join = Support.Int_set.union

let mutate ~pid:_ p (Gset_spec.Insert v) = Support.Int_set.add v p

let read p Gset_spec.Read = p

let payload_bytes p =
  Support.Int_set.fold (fun v acc -> acc + Wire.varint_size (abs v)) p 1

module Lattice = struct
  module A = Gset_spec

  type nonrec payload = payload

  let name = name

  let empty = empty

  let join = join

  let mutate = mutate

  let read = read

  let payload_bytes = payload_bytes
end

module Protocol_impl = State_based.Make (Lattice)
