(** The Observed-Remove Set (OR-Set, Shapiro et al. [9], [20]) — "the
    best documented algorithm for the set" and the object of the
    paper's Section VI comparison (its concurrent specification is the
    Insert-wins set, Definition 10).

    Every insert creates a unique tag; a delete black-lists exactly the
    tags it observes; an element is present while it has a live tag.
    Hence a concurrent insert/delete of the same element resolves in
    favour of the insert. Op-based over causal delivery ({!Causal}): a
    remove must never arrive before an add it observed. *)

include
  Protocol.PROTOCOL
    with type state = Set_spec.state
     and type update = Set_spec.update
     and type query = Set_spec.query
     and type output = Set_spec.output

val live_tags : t -> int
(** Total live tags (diagnostics / metadata growth). *)
