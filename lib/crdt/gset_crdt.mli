(** The Grow-Only Set (G-Set) of Shapiro et al., the simplest CRDT the
    paper cites: insert-only, join = union. State-based. *)

type payload = Support.Int_set.t

val join : payload -> payload -> payload

module Protocol_impl : sig
  include
    Protocol.PROTOCOL
      with type state = Gset_spec.state
       and type update = Gset_spec.update
       and type query = Gset_spec.query
       and type output = Gset_spec.output
end
