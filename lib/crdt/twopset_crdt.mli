(** The Two-Phase Set (2P-Set, a.k.a. U-Set; Wuu & Bernstein [18]): a
    white list of insertions and a black list of deletions, both
    grow-only. A deleted element can never return — the anomaly the
    paper contrasts with both the OR-set and the update-consistent set
    in Section VI. State-based. *)

type payload = { added : Support.Int_set.t; removed : Support.Int_set.t }

val join : payload -> payload -> payload

module Protocol_impl : sig
  include
    Protocol.PROTOCOL
      with type state = Set_spec.state
       and type update = Set_spec.update
       and type query = Set_spec.query
       and type output = Set_spec.output
end
