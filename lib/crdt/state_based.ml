module type LATTICE = sig
  module A : Uqadt.S

  type payload

  val name : string

  val empty : payload

  val join : payload -> payload -> payload

  val mutate : pid:int -> payload -> A.update -> payload

  val read : payload -> A.query -> A.output

  val payload_bytes : payload -> int
end

module Make (L : LATTICE) = struct
  include L.A

  type message = L.payload

  type t = { ctx : message Protocol.ctx; mutable payload : L.payload }

  let protocol_name = L.name

  let create ctx = { ctx; payload = L.empty }

  let update t u ~on_done =
    t.payload <- L.mutate ~pid:t.ctx.Protocol.pid t.payload u;
    t.ctx.Protocol.broadcast t.payload;
    on_done ()

  let receive t ~src:_ payload = t.payload <- L.join t.payload payload

  let query t q ~on_result = on_result (L.read t.payload q)

  let receive_batch t ~src msgs = List.iter (receive t ~src) msgs

  let message_wire_size = L.payload_bytes

  let describe_message p = Printf.sprintf "state(%dB)" (L.payload_bytes p)

  let log_length _t = 0

  let metadata_bytes t = L.payload_bytes t.payload

  let certificate _t = None

  let snapshot _t = None

  let absorb _t _s = false

  let payload t = t.payload
end
