(** Generic state-based (convergent) CRDT protocol.

    The replicated payload forms a join semi-lattice — the second CRDT
    sufficient condition the paper cites from Shapiro et al. A local
    update inflates the payload and ships it whole; a receiver joins.
    With reliable broadcast-on-update every update's effect reaches
    every replica, so the protocol converges without periodic gossip.
    The cost is on the wire: messages carry the full payload, which the
    C1 experiment contrasts against Algorithm 1's constant-size update
    messages. *)

module type LATTICE = sig
  module A : Uqadt.S

  type payload

  val name : string

  val empty : payload

  val join : payload -> payload -> payload
  (** Associative, commutative, idempotent. *)

  val mutate : pid:int -> payload -> A.update -> payload
  (** Must inflate: [join p (mutate ~pid p u) = mutate ~pid p u]. *)

  val read : payload -> A.query -> A.output

  val payload_bytes : payload -> int
end

module Make (L : LATTICE) : sig
  include
    Protocol.PROTOCOL
      with type state = L.A.state
       and type update = L.A.update
       and type query = L.A.query
       and type output = L.A.output

  val payload : t -> L.payload
end
