type 'a pending = { src : int; vc : Vector_clock.t; payload : 'a }

type 'a t = {
  pid : int;
  mutable vc : Vector_clock.t;
  mutable buffer : 'a pending list;
}

let create ~n ~pid = { pid; vc = Vector_clock.create n; buffer = [] }

let stamp t =
  t.vc <- Vector_clock.tick t.vc t.pid;
  t.vc

let drain t =
  (* Repeatedly deliver any buffered message whose dependencies are met. *)
  let rec loop acc =
    let deliverable, rest =
      List.partition
        (fun (p : 'a pending) -> Vector_clock.deliverable p.vc ~from:p.src t.vc)
        t.buffer
    in
    match deliverable with
    | [] -> List.rev acc
    | _ ->
      t.buffer <- rest;
      let acc =
        List.fold_left
          (fun acc (p : 'a pending) ->
            t.vc <- Vector_clock.merge t.vc p.vc;
            (p.src, p.payload) :: acc)
          acc deliverable
      in
      loop acc
  in
  loop []

let receive t ~src vc payload =
  t.buffer <- { src; vc; payload } :: t.buffer;
  drain t

let pending t = List.length t.buffer

let clock t = t.vc
