module Lwwreg = struct
  include Register_spec

  type message = { ts : Timestamp.t; value : int }

  type t = {
    ctx : message Protocol.ctx;
    clock : Lamport.t;
    mutable current : (Timestamp.t * int) option;
  }

  let protocol_name = "lww-register"

  let create ctx = { ctx; clock = Lamport.create (); current = None }

  let consider t ts value =
    match t.current with
    | Some (ts', _) when Timestamp.compare ts ts' < 0 -> ()
    | Some _ | None -> t.current <- Some (ts, value)

  let update t (Register_spec.Write v) ~on_done =
    let cl = Lamport.tick t.clock in
    let ts = Timestamp.make ~clock:cl ~pid:t.ctx.Protocol.pid in
    consider t ts v;
    t.ctx.Protocol.broadcast { ts; value = v };
    on_done ()

  let receive t ~src:_ { ts; value } =
    Lamport.merge t.clock ts.Timestamp.clock;
    consider t ts value

  let query t Register_spec.Read ~on_result =
    on_result (match t.current with None -> Register_spec.initial | Some (_, v) -> v)

  let receive_batch t ~src msgs = List.iter (receive t ~src) msgs

  let message_wire_size { ts; value } = Timestamp.wire_size ts + Wire.varint_size (abs value)

  let describe_message { ts; value } = Format.asprintf "w(%d)%a" value Timestamp.pp ts

  let log_length _t = 0

  let metadata_bytes t =
    match t.current with None -> 0 | Some (ts, v) -> Timestamp.wire_size ts + Wire.varint_size (abs v)

  let certificate _t = None

  let snapshot _t = None

  let absorb _t _s = false
end

module Mvreg_spec = struct
  type state = Support.Int_set.t
  type update = Register_spec.update
  type query = Register_spec.query
  type output = Support.Int_set.t

  let name = "mvreg"

  let initial = Support.Int_set.empty

  let apply _ (Register_spec.Write v) = Support.Int_set.singleton v

  let eval s Register_spec.Read = s

  let equal_state = Support.Int_set.equal

  let equal_update (Register_spec.Write a) (Register_spec.Write b) = a = b

  let equal_query Register_spec.Read Register_spec.Read = true

  let equal_output = Support.Int_set.equal

  let pp_state = Support.pp_int_set

  let pp_update ppf (Register_spec.Write v) = Format.fprintf ppf "w(%d)" v

  let pp_query ppf Register_spec.Read = Format.fprintf ppf "r"

  let pp_output = Support.pp_int_set

  let update_wire_size (Register_spec.Write v) = 1 + Wire.varint_size (abs v)

  let commutative = false

  let satisfiable pairs = Support.all_outputs_equal equal_output pairs

  let random_update rng = Register_spec.Write (Prng.int rng 8)

  let random_query _rng = Register_spec.Read
end

module Mvreg_lattice = struct
  module A = Mvreg_spec

  (* Maximal (value, version vector) pairs; concurrent writes coexist.
     Version vectors are plain arrays widened on demand, since replicas
     discover each other's indices lazily. *)
  type payload = (int * int array) list

  let name = "mv-register"

  let empty = []

  let get vv i = if i < Array.length vv then vv.(i) else 0

  let width a b = max (Array.length a) (Array.length b)

  let vv_merge a b = Array.init (width a b) (fun i -> max (get a i) (get b i))

  let vv_leq a b =
    let ok = ref true in
    for i = 0 to width a b - 1 do
      if get a i > get b i then ok := false
    done;
    !ok

  let vv_eq a b = vv_leq a b && vv_leq b a

  let vv_lt a b = vv_leq a b && not (vv_eq a b)

  let maximal entries =
    List.filter
      (fun (_, vv) -> not (List.exists (fun (_, vv') -> vv_lt vv vv') entries))
      entries

  let join a b =
    (* Keep one copy of identical entries, then prune dominated ones. *)
    let merged =
      List.fold_left
        (fun acc (v, vv) ->
          if List.exists (fun (v', vv') -> v = v' && vv_eq vv vv') acc then acc
          else (v, vv) :: acc)
        a b
    in
    maximal merged

  let mutate ~pid p (Register_spec.Write v) =
    let combined = List.fold_left (fun acc (_, vv) -> vv_merge acc vv) [||] p in
    let combined = vv_merge combined (Array.make (pid + 1) 0) in
    let vv = Array.copy combined in
    vv.(pid) <- vv.(pid) + 1;
    [ (v, vv) ]

  let read p Register_spec.Read =
    List.fold_left (fun acc (v, _) -> Support.Int_set.add v acc) Support.Int_set.empty p

  let payload_bytes p =
    List.fold_left
      (fun acc (v, vv) ->
        acc + Wire.varint_size (abs v)
        + Array.fold_left (fun acc x -> acc + Wire.varint_size x) 0 vv)
      0 p
end

module Mvreg = State_based.Make (Mvreg_lattice)
