include Set_spec

type tag = { origin : int; serial : int }

type op = Add of { element : int; tag : tag } | Remove of { element : int; tags : tag list }

type message = { vc : Vector_clock.t; op : op }

module Tag_set = Set.Make (struct
  type t = tag

  let compare a b =
    let c = Int.compare a.origin b.origin in
    if c <> 0 then c else Int.compare a.serial b.serial
end)

type t = {
  ctx : message Protocol.ctx;
  causal : op Causal.t;
  mutable serial : int;
  mutable tags : Tag_set.t Support.Int_map.t;  (* element -> live tags *)
}

let protocol_name = "or-set"

let create ctx =
  {
    ctx;
    causal = Causal.create ~n:ctx.Protocol.n ~pid:ctx.Protocol.pid;
    serial = 0;
    tags = Support.Int_map.empty;
  }

let tags_of t element =
  Option.value ~default:Tag_set.empty (Support.Int_map.find_opt element t.tags)

let apply_op t = function
  | Add { element; tag } ->
    t.tags <- Support.Int_map.add element (Tag_set.add tag (tags_of t element)) t.tags
  | Remove { element; tags } ->
    let live = List.fold_left (fun s tag -> Tag_set.remove tag s) (tags_of t element) tags in
    t.tags <-
      (if Tag_set.is_empty live then Support.Int_map.remove element t.tags
       else Support.Int_map.add element live t.tags)

let update t u ~on_done =
  let op =
    match u with
    | Set_spec.Insert v ->
      t.serial <- t.serial + 1;
      Add { element = v; tag = { origin = t.ctx.Protocol.pid; serial = t.serial } }
    | Set_spec.Delete v ->
      (* Black-list exactly the tags this replica observes now. *)
      Remove { element = v; tags = Tag_set.elements (tags_of t v) }
  in
  apply_op t op;
  let vc = Causal.stamp t.causal in
  t.ctx.Protocol.broadcast { vc; op };
  on_done ()

let receive t ~src { vc; op } =
  List.iter (fun (_, op) -> apply_op t op) (Causal.receive t.causal ~src vc op)

let query t Set_spec.Read ~on_result =
  on_result
    (Support.Int_map.fold (fun v _ acc -> Support.Int_set.add v acc) t.tags
       Support.Int_set.empty)

let tag_bytes { origin; serial } = Wire.pair_size origin serial

let receive_batch t ~src msgs = List.iter (receive t ~src) msgs

let message_wire_size { vc; op } =
  Vector_clock.wire_size vc
  +
  match op with
  | Add { element; tag } -> Wire.varint_size (abs element) + tag_bytes tag
  | Remove { element; tags } -> Wire.varint_size (abs element) + Wire.list_size tag_bytes tags

let describe_message { op; _ } =
  match op with
  | Add { element; tag } -> Printf.sprintf "add(%d)#%d.%d" element tag.origin tag.serial
  | Remove { element; tags } -> Printf.sprintf "rem(%d)×%d" element (List.length tags)

let log_length _t = 0

let metadata_bytes t =
  Support.Int_map.fold
    (fun v tags acc ->
      acc + Wire.varint_size (abs v) + Tag_set.fold (fun tag acc -> acc + tag_bytes tag) tags 0)
    t.tags 0

let certificate _t = None

let snapshot _t = None

let absorb _t _s = false

let live_tags t = Support.Int_map.fold (fun _ s acc -> acc + Tag_set.cardinal s) t.tags 0
