(** Counter CRDTs (Shapiro et al.): the G-counter (increment-only,
    per-process totals joined by max) and the PN-counter (two
    G-counters). Both are "pure CRDTs" in the paper's Section VII.C
    sense — their updates commute, so they are the baseline of the C5
    fast-path experiment. State-based. *)

module Gcounter : sig
  include
    Protocol.PROTOCOL
      with type state = Counter_spec.state
       and type update = Counter_spec.update
       and type query = Counter_spec.query
       and type output = Counter_spec.output
  (** @raise Invalid_argument on a negative increment — a G-counter
      cannot go down. *)
end

module Pncounter : sig
  include
    Protocol.PROTOCOL
      with type state = Counter_spec.state
       and type update = Counter_spec.update
       and type query = Counter_spec.query
       and type output = Counter_spec.output
end
