let vec_bytes v = Array.fold_left (fun acc x -> acc + Wire.varint_size x) 0 v

let vec_join a b = Array.init (Array.length a) (fun i -> max a.(i) b.(i))

let vec_sum = Array.fold_left ( + ) 0

module Gcounter_lattice = struct
  module A = Counter_spec

  type payload = int array

  let name = "g-counter"

  let empty = [||]

  let widen n p = if Array.length p >= n then p else Array.append p (Array.make (n - Array.length p) 0)

  let join a b =
    let n = max (Array.length a) (Array.length b) in
    vec_join (widen n a) (widen n b)

  let mutate ~pid p (Counter_spec.Add n) =
    if n < 0 then invalid_arg "Gcounter: negative increment";
    let p = widen (pid + 1) p in
    let p = Array.copy p in
    p.(pid) <- p.(pid) + n;
    p

  let read p Counter_spec.Value = vec_sum p

  let payload_bytes = vec_bytes
end

module Gcounter = State_based.Make (Gcounter_lattice)

module Pncounter_lattice = struct
  module A = Counter_spec

  type payload = { pos : int array; neg : int array }

  let name = "pn-counter"

  let empty = { pos = [||]; neg = [||] }

  let widen n p = if Array.length p >= n then p else Array.append p (Array.make (n - Array.length p) 0)

  let join a b =
    let n = max (Array.length a.pos) (Array.length b.pos) in
    let m = max (Array.length a.neg) (Array.length b.neg) in
    { pos = vec_join (widen n a.pos) (widen n b.pos); neg = vec_join (widen m a.neg) (widen m b.neg) }

  let mutate ~pid p (Counter_spec.Add n) =
    if n >= 0 then begin
      let pos = Array.copy (widen (pid + 1) p.pos) in
      pos.(pid) <- pos.(pid) + n;
      { p with pos }
    end
    else begin
      let neg = Array.copy (widen (pid + 1) p.neg) in
      neg.(pid) <- neg.(pid) - n;
      { p with neg }
    end

  let read p Counter_spec.Value = vec_sum p.pos - vec_sum p.neg

  let payload_bytes p = vec_bytes p.pos + vec_bytes p.neg
end

module Pncounter = State_based.Make (Pncounter_lattice)
