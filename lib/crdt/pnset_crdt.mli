(** The counting set (PN-Set; the C-Set of Aslan et al. is the same
    counting idea): each element carries a counter, insert adds one,
    delete subtracts one, the element is present while the counter is
    positive. Deltas commute, so plain apply-on-receive converges — but
    deleting an absent element drives its counter negative and silently
    swallows a future insert, one of the anomalies Section VI surveys.
    Op-based; no delivery-order requirement. *)

include
  Protocol.PROTOCOL
    with type state = Set_spec.state
     and type update = Set_spec.update
     and type query = Set_spec.query
     and type output = Set_spec.output

val count : t -> int -> int
(** Current counter of an element (diagnostics). *)
