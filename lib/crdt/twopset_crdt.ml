type payload = { added : Support.Int_set.t; removed : Support.Int_set.t }

let name = "2p-set"

let empty = { added = Support.Int_set.empty; removed = Support.Int_set.empty }

let join a b =
  {
    added = Support.Int_set.union a.added b.added;
    removed = Support.Int_set.union a.removed b.removed;
  }

let mutate ~pid:_ p = function
  | Set_spec.Insert v -> { p with added = Support.Int_set.add v p.added }
  | Set_spec.Delete v -> { p with removed = Support.Int_set.add v p.removed }

let read p Set_spec.Read = Support.Int_set.diff p.added p.removed

let payload_bytes p =
  Support.Int_set.fold (fun v acc -> acc + Wire.varint_size (abs v)) p.added 1
  + Support.Int_set.fold (fun v acc -> acc + Wire.varint_size (abs v)) p.removed 1

module Lattice = struct
  module A = Set_spec

  type nonrec payload = payload

  let name = name

  let empty = empty

  let join = join

  let mutate = mutate

  let read = read

  let payload_bytes = payload_bytes
end

module Protocol_impl = State_based.Make (Lattice)
