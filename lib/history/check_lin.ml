module Make (A : Uqadt.S) = struct
  module L = Linearize.Make (A)

  type history = (A.update, A.query, A.output) History.t

  let precedence h ~intervals =
    let n = History.size h in
    if Array.length intervals <> n then
      invalid_arg "Check_lin: one interval per event required";
    let g = Dag.create n in
    for i = 0 to n - 1 do
      for j = 0 to n - 1 do
        if i <> j then begin
          let _, fi = intervals.(i) and sj, _ = intervals.(j) in
          (* Real-time order, plus program order (which covers same-time
             successive events of one process). *)
          if fi < sj || History.po h i j then Dag.add_edge g i j
        end
      done
    done;
    g

  let witness h ~intervals =
    L.search_under ~precedence:(precedence h ~intervals) (Array.of_list (History.events h))

  let holds h ~intervals = witness h ~intervals <> None
end
