module Make (A : Uqadt.S) = struct
  type history = (A.update, A.query, A.output) History.t

  let query_pair (e : (A.update, A.query, A.output) History.event) =
    match History.query_of e with
    | Some p -> p
    | None -> invalid_arg "Check_sec: not a query event"

  (* Queries whose visibility set equals [vs.(i)] among indices <= i,
     together: can one state answer them all? *)
  let group_satisfiable (s : _ Visibility.space) vs i =
    let pairs = ref [] in
    for j = i downto 0 do
      if Bitset.equal vs.(j) vs.(i) then pairs := query_pair s.Visibility.query_events.(j) :: !pairs
    done;
    A.satisfiable !pairs

  let all_groups_satisfiable (s : _ Visibility.space) vs =
    let nq = Array.length s.Visibility.query_events in
    let ok = ref true in
    for i = 0 to nq - 1 do
      if !ok then ok := group_satisfiable s vs i
    done;
    !ok

  let search h =
    let s = Visibility.space h in
    let result = ref None in
    let found =
      Visibility.enumerate s
        ~on_assign:(fun i vs -> group_satisfiable s vs i)
        ~at_leaf:(fun vs ->
          if all_groups_satisfiable s vs && Visibility.acyclic s vs then begin
            result :=
              Some
                (Array.to_list
                   (Array.mapi
                      (fun i q -> (q, Bitset.elements vs.(i)))
                      s.Visibility.query_events));
            true
          end
          else false)
    in
    if found then !result else None

  let witness = search

  let holds h = search h <> None
end
