module Make (A : Uqadt.S) = struct
  module L = Linearize.Make (A)

  type history = (A.update, A.query, A.output) History.t

  let witness h =
    let rows =
      Array.init (History.process_count h) (fun p -> History.process_events h p)
    in
    L.search rows

  let holds h = witness h <> None
end
