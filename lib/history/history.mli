(** Distributed histories (Definition 2 of the paper).

    A history is a countable set of events labelled by operations and
    partially ordered by the program order [7→]. This implementation is
    process-structured: the program order is the disjoint union of one
    total order per sequential process, which covers every history in the
    paper and everything a run of the simulator can produce.

    Infinite histories are encoded finitely with an {e ω flag}: an event
    marked ω is a query repeated infinitely often (the [R/∅^ω] notation
    of Figures 1 and 2). The consistency checkers interpret "all but
    finitely many events" as "every ω event" — the standard finite
    encoding of eventual properties. *)

type ('u, 'q, 'o) step =
  | U of 'u  (** an update event *)
  | Q of 'q * 'o  (** a query event, executed once *)
  | Qw of 'q * 'o  (** a query event repeated infinitely (ω) *)

type ('u, 'q, 'o) event = private {
  id : int;  (** global index in [events] *)
  pid : int;  (** issuing process *)
  seq : int;  (** rank within the process *)
  label : ('u, 'q, 'o) Uqadt.operation;
  omega : bool;
}

type ('u, 'q, 'o) t = private {
  events : ('u, 'q, 'o) event array;
  procs : int array array;  (** [procs.(p)] = event ids of process p, in order *)
}

val make : ('u, 'q, 'o) step list list -> ('u, 'q, 'o) t
(** [make per_process] builds a history from one operation list per
    process.
    @raise Invalid_argument if an ω step is followed by further steps of
    the same process (an ω event is by construction the last event of its
    process). *)

val events : ('u, 'q, 'o) t -> ('u, 'q, 'o) event list

val event : ('u, 'q, 'o) t -> int -> ('u, 'q, 'o) event

val size : ('u, 'q, 'o) t -> int

val process_count : ('u, 'q, 'o) t -> int

val process_events : ('u, 'q, 'o) t -> int -> ('u, 'q, 'o) event list

val steps_of_process : ('u, 'q, 'o) t -> int -> ('u, 'q, 'o) step list
(** The inverse of {!make} for one process: rebuild its step list (e.g.
    to edit a history or permute its processes). *)

val updates : ('u, 'q, 'o) t -> ('u, 'q, 'o) event list
(** The update events [U_H], in id order. *)

val queries : ('u, 'q, 'o) t -> ('u, 'q, 'o) event list
(** The query events [Q_H], in id order. *)

val omega_queries : ('u, 'q, 'o) t -> ('u, 'q, 'o) event list

val update_of : ('u, 'q, 'o) event -> 'u option

val query_of : ('u, 'q, 'o) event -> ('q * 'o) option

val po : ('u, 'q, 'o) t -> int -> int -> bool
(** [po h a b] iff event [a] precedes event [b] in the program order
    (strictly). *)

val po_dag : ('u, 'q, 'o) t -> Dag.t
(** The program order as a DAG on event ids (successor edges only; take
    the transitive closure for the full relation). *)

val update_index : ('u, 'q, 'o) t -> int array * int array
(** [(update_ids, rank)] where [update_ids] lists the event ids of the
    updates in id order and [rank.(event_id)] is the update's position in
    that list ([-1] for queries). Checkers index their bitsets by update
    rank. *)

val update_dag : ('u, 'q, 'o) t -> Dag.t
(** Program order restricted to updates, on update ranks. *)

val fingerprint :
  (Format.formatter -> 'u -> unit) ->
  (Format.formatter -> 'q -> unit) ->
  (Format.formatter -> 'o -> unit) ->
  ('u, 'q, 'o) t ->
  string
(** FNV-1a hash (16 hex digits) of the per-process event lines,
    rendered with the given printers. Two histories fingerprint equal
    iff every process issued the same operations with the same outputs
    in the same order — the replay-determinism check of
    [ucsim replay]. *)

val pp :
  (Format.formatter -> 'u -> unit) ->
  (Format.formatter -> 'q -> unit) ->
  (Format.formatter -> 'o -> unit) ->
  Format.formatter ->
  ('u, 'q, 'o) t ->
  unit
(** One line per process, events separated by arrows, ω marked with a
    superscript — the layout of the paper's figures. *)
