(** A tiny concrete syntax for set histories, so the CLI (and the docs)
    can classify hand-written examples without writing OCaml.

    Grammar (whitespace-separated events, processes separated by [/]):

    {v
    history  ::= process ("/" process)*
    process  ::= event*
    event    ::= "I(" int ")"            insertion
               | "D(" int ")"            deletion
               | "R{" int* "}" ["w"]     read returning the set; "w" = ω
    v}

    Example — the paper's Figure 1c:
    ["I(1) R{} R{1 2}w / I(2) R{1 2}w"]. *)

exception Parse_error of string

val parse : string -> (Set_spec.update, Set_spec.query, Set_spec.output) History.t
(** @raise Parse_error on malformed input (with a description). *)

val example : string
(** A syntax reminder for help texts. *)
