type ('u, 'q, 'o) step = U of 'u | Q of 'q * 'o | Qw of 'q * 'o

type ('u, 'q, 'o) event = {
  id : int;
  pid : int;
  seq : int;
  label : ('u, 'q, 'o) Uqadt.operation;
  omega : bool;
}

type ('u, 'q, 'o) t = {
  events : ('u, 'q, 'o) event array;
  procs : int array array;
}

let make per_process =
  let events = ref [] in
  let next_id = ref 0 in
  let procs =
    List.mapi
      (fun pid steps ->
        let ids =
          List.mapi
            (fun seq step ->
              let label, omega =
                match step with
                | U u -> (Uqadt.Update u, false)
                | Q (q, o) -> (Uqadt.Query (q, o), false)
                | Qw (q, o) -> (Uqadt.Query (q, o), true)
              in
              let id = !next_id in
              incr next_id;
              events := { id; pid; seq; label; omega } :: !events;
              (id, omega))
            steps
        in
        (* An ω event stands for an infinite repetition, so nothing of the
           same process may follow it. *)
        let rec validate = function
          | [] | [ _ ] -> ()
          | (_, omega) :: rest ->
            if omega then invalid_arg "History.make: ω event is not last in its process";
            validate rest
        in
        validate ids;
        Array.of_list (List.map fst ids))
      per_process
  in
  {
    events = Array.of_list (List.rev !events);
    procs = Array.of_list procs;
  }

let events h = Array.to_list h.events

let event h id = h.events.(id)

let size h = Array.length h.events

let process_count h = Array.length h.procs

let process_events h p = List.map (fun id -> h.events.(id)) (Array.to_list h.procs.(p))

let steps_of_process h p =
  List.map
    (fun e ->
      match (e.label, e.omega) with
      | Uqadt.Update u, _ -> U u
      | Uqadt.Query (q, o), false -> Q (q, o)
      | Uqadt.Query (q, o), true -> Qw (q, o))
    (process_events h p)

let is_update e = match e.label with Uqadt.Update _ -> true | Uqadt.Query _ -> false

let updates h = List.filter is_update (events h)

let queries h = List.filter (fun e -> not (is_update e)) (events h)

let omega_queries h = List.filter (fun e -> e.omega) (events h)

let update_of e = match e.label with Uqadt.Update u -> Some u | Uqadt.Query _ -> None

let query_of e = match e.label with Uqadt.Update _ -> None | Uqadt.Query (q, o) -> Some (q, o)

let po h a b =
  let ea = h.events.(a) and eb = h.events.(b) in
  ea.pid = eb.pid && ea.seq < eb.seq

let po_dag h =
  let g = Dag.create (size h) in
  Array.iter
    (fun ids ->
      for i = 0 to Array.length ids - 2 do
        Dag.add_edge g ids.(i) ids.(i + 1)
      done)
    h.procs;
  g

let update_index h =
  let ups = updates h in
  let update_ids = Array.of_list (List.map (fun e -> e.id) ups) in
  let rank = Array.make (max 1 (size h)) (-1) in
  Array.iteri (fun r id -> rank.(id) <- r) update_ids;
  (update_ids, rank)

let update_dag h =
  let update_ids, rank = update_index h in
  let g = Dag.create (Array.length update_ids) in
  Array.iter
    (fun ids ->
      let prev = ref (-1) in
      Array.iter
        (fun id ->
          if rank.(id) >= 0 then begin
            if !prev >= 0 then Dag.add_edge g !prev rank.(id);
            prev := rank.(id)
          end)
        ids)
    h.procs;
  g

let fingerprint pp_u pp_q pp_o h =
  (* FNV-1a over each process line: rendered event labels plus ω flags.
     Rendering with the spec's printers makes the hash independent of
     in-memory representation, so a journaled run and its replay agree
     iff they extracted the same history. *)
  let fp = ref Fingerprint.empty in
  Array.iter
    (fun ids ->
      fp := Fingerprint.int !fp (Array.length ids);
      Array.iter
        (fun id ->
          let e = h.events.(id) in
          fp :=
            Fingerprint.string !fp
              (Format.asprintf "%a" (Uqadt.pp_operation pp_u pp_q pp_o) e.label);
          fp := Fingerprint.bool !fp e.omega)
        ids)
    h.procs;
  Fingerprint.to_hex !fp

let pp pp_u pp_q pp_o ppf h =
  let pp_event ppf e =
    Uqadt.pp_operation pp_u pp_q pp_o ppf e.label;
    if e.omega then Format.fprintf ppf "ω"
  in
  Array.iteri
    (fun p ids ->
      Format.fprintf ppf "p%d: %a@." p
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf " → ")
           pp_event)
        (List.map (fun id -> h.events.(id)) (Array.to_list ids)))
    h.procs
