type history = (Set_spec.update, Set_spec.query, Set_spec.output) History.t

type relation = bool array array

let element_of = function Set_spec.Insert v | Set_spec.Delete v -> v

let is_insert = function Set_spec.Insert _ -> true | Set_spec.Delete _ -> false

let close (h : history) rel =
  let n = History.size h in
  let rel = Array.map Array.copy rel in
  for a = 0 to n - 1 do
    rel.(a).(a) <- true;
    for b = 0 to n - 1 do
      if History.po h a b then rel.(a).(b) <- true
    done
  done;
  let changed = ref true in
  while !changed do
    changed := false;
    for a = 0 to n - 1 do
      for b = 0 to n - 1 do
        if rel.(a).(b) then
          for c = 0 to n - 1 do
            if History.po h b c && not rel.(a).(c) then begin
              rel.(a).(c) <- true;
              changed := true
            end
          done
      done
    done
  done;
  rel

let acyclic_ignoring_self n rel =
  (* DFS three-colour cycle detection on the strict part of the relation. *)
  let colour = Array.make (max 1 n) 0 in
  let exception Cycle in
  let rec visit v =
    colour.(v) <- 1;
    for w = 0 to n - 1 do
      if w <> v && rel.(v).(w) then begin
        if colour.(w) = 1 then raise Cycle;
        if colour.(w) = 0 then visit w
      end
    done;
    colour.(v) <- 2
  in
  match
    for v = 0 to n - 1 do
      if colour.(v) = 0 then visit v
    done
  with
  | () -> true
  | exception Cycle -> false

let visible_updates (h : history) rel qid =
  List.filter (fun (u : _ History.event) -> rel.(u.History.id).(qid)) (History.updates h)

let insert_wins_members (h : history) rel qid =
  (* x belongs iff some visible I(x) is not vis-followed by a visible D(x). *)
  let visible = visible_updates h rel qid in
  let elements =
    List.sort_uniq Int.compare
      (List.filter_map (fun e -> Option.map element_of (History.update_of e)) visible)
  in
  List.filter
    (fun x ->
      let updates_on u =
        match History.update_of u with
        | Some op -> element_of op = x
        | None -> false
      in
      let inserts =
        List.filter (fun u -> updates_on u && is_insert (Option.get (History.update_of u))) visible
      and deletes =
        List.filter (fun u -> updates_on u && not (is_insert (Option.get (History.update_of u)))) visible
      in
      List.exists
        (fun (i : _ History.event) ->
          List.for_all
            (fun (d : _ History.event) -> not rel.(i.History.id).(d.History.id))
            deletes)
        inserts)
    elements

let verify (h : history) rel =
  let n = History.size h in
  let contains_po = ref true in
  let growth = ref true in
  for a = 0 to n - 1 do
    if not rel.(a).(a) then contains_po := false;
    for b = 0 to n - 1 do
      if History.po h a b && not rel.(a).(b) then contains_po := false;
      if rel.(a).(b) then
        for c = 0 to n - 1 do
          if History.po h b c && not rel.(a).(c) then growth := false
        done
    done
  done;
  let eventual_delivery =
    List.for_all
      (fun (u : _ History.event) ->
        List.for_all
          (fun (e : _ History.event) -> rel.(u.History.id).(e.History.id))
          (History.omega_queries h))
      (History.updates h)
  in
  let queries = History.queries h in
  let strong_convergence =
    List.for_all
      (fun (q : _ History.event) ->
        List.for_all
          (fun (q' : _ History.event) ->
            let vq = List.map (fun (e : _ History.event) -> e.History.id) (visible_updates h rel q.History.id)
            and vq' = List.map (fun (e : _ History.event) -> e.History.id) (visible_updates h rel q'.History.id) in
            (not (vq = vq'))
            ||
            match (History.query_of q, History.query_of q') with
            | Some (_, o), Some (_, o') -> Support.Int_set.equal o o'
            | (None | Some _), _ -> false)
          queries)
      queries
  in
  let insert_wins =
    List.for_all
      (fun (q : _ History.event) ->
        match History.query_of q with
        | None -> true
        | Some (Set_spec.Read, s) ->
          let members = Support.Int_set.of_list (insert_wins_members h rel q.History.id) in
          Support.Int_set.equal members s)
      queries
  in
  !contains_po && !growth
  && acyclic_ignoring_self n rel
  && eventual_delivery && strong_convergence && insert_wins

let of_suc_witness (h : history) ~sigma_ranks ~vis =
  let n = History.size h in
  let update_ids, _rank = History.update_index h in
  let rel = Array.init (max 1 n) (fun _ -> Array.make (max 1 n) false) in
  (* SUC visibility edges: update → query. *)
  List.iter
    (fun (qid, ranks) -> List.iter (fun r -> rel.(update_ids.(r)).(qid) <- true) ranks)
    vis;
  (* Same-element updates are ordered by σ (≤), per the proof of Prop. 3. *)
  let pos = Array.make (max 1 (Array.length update_ids)) 0 in
  List.iteri (fun i r -> pos.(r) <- i) sigma_ranks;
  let _, rank = History.update_index h in
  let upds = Array.of_list (History.updates h) in
  let elem (e : _ History.event) = Option.map element_of (History.update_of e) in
  Array.iteri
    (fun i (u : _ History.event) ->
      Array.iteri
        (fun j (u' : _ History.event) ->
          if i <> j && elem u = elem u' then begin
            let r = rank.(u.History.id) and r' = rank.(u'.History.id) in
            if pos.(r) < pos.(r') then rel.(u.History.id).(u'.History.id) <- true
          end)
        upds)
    upds;
  (* Third clause of the proof: e IW→ q if e IW→ e'' IW→ q for some
     update e''. *)
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun (u : _ History.event) ->
        Array.iter
          (fun (u'' : _ History.event) ->
            if rel.(u.History.id).(u''.History.id) then
              List.iter
                (fun (q : _ History.event) ->
                  if
                    rel.(u''.History.id).(q.History.id)
                    && not rel.(u.History.id).(q.History.id)
                  then begin
                    rel.(u.History.id).(q.History.id) <- true;
                    changed := true
                  end)
                (History.queries h))
          upds)
      upds
  done;
  close h rel

let search (h : history) =
  let s = Visibility.space h in
  let update_ids = s.Visibility.update_ids in
  let upds = Array.map (fun id -> History.event h id) update_ids in
  let nu = Array.length upds in
  (* Cross-process pairs of same-element updates: the orientations to try. *)
  let pairs = ref [] in
  for i = 0 to nu - 1 do
    for j = i + 1 to nu - 1 do
      let a = upds.(i) and b = upds.(j) in
      if
        a.History.pid <> b.History.pid
        && Option.map element_of (History.update_of a)
           = Option.map element_of (History.update_of b)
      then pairs := (a.History.id, b.History.id) :: !pairs
    done
  done;
  let n = History.size h in
  let rec orientations acc = function
    | [] -> [ acc ]
    | (a, b) :: rest ->
      orientations ((a, b) :: acc) rest
      @ orientations ((b, a) :: acc) rest
      @ orientations acc rest
  in
  let candidates = orientations [] !pairs in
  List.exists
    (fun edges ->
      Visibility.enumerate s
        ~on_assign:(fun _ _ -> true)
        ~at_leaf:(fun vs ->
          let rel = Array.init (max 1 n) (fun _ -> Array.make (max 1 n) false) in
          List.iter (fun (a, b) -> rel.(a).(b) <- true) edges;
          Array.iteri
            (fun i (q : _ History.event) ->
              Bitset.iter (fun r -> rel.(update_ids.(r)).(q.History.id) <- true) vs.(i))
            s.Visibility.query_events;
          verify h (close h rel)))
    candidates
