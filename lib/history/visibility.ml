type ('u, 'q, 'o) space = {
  history : ('u, 'q, 'o) History.t;
  n_updates : int;
  update_ids : int array;
  update_rank : int array;
  query_events : ('u, 'q, 'o) History.event array;
  lower : Bitset.t array;
  upper : Bitset.t array;
  prev_query : int array;
}

let space h =
  let update_ids, update_rank = History.update_index h in
  let n_updates = Array.length update_ids in
  let query_events =
    let qs = Array.of_list (History.queries h) in
    Array.sort
      (fun (a : _ History.event) (b : _ History.event) ->
        let c = Int.compare a.History.pid b.History.pid in
        if c <> 0 then c else Int.compare a.History.seq b.History.seq)
      qs;
    qs
  in
  let nq = Array.length query_events in
  let lower = Array.make (max 1 nq) (Bitset.create n_updates) in
  let upper = Array.make (max 1 nq) (Bitset.create n_updates) in
  let prev_query = Array.make (max 1 nq) (-1) in
  for i = 0 to nq - 1 do
    let q = query_events.(i) in
    let lo = Bitset.create n_updates in
    let hi = Bitset.full n_updates in
    Array.iteri
      (fun r uid ->
        if History.po h uid q.History.id then Bitset.set lo r;
        if History.po h q.History.id uid then Bitset.unset hi r)
      update_ids;
    (* Eventual delivery: an ω query stands for infinitely many copies,
       so it must see every update. *)
    lower.(i) <- (if q.History.omega then Bitset.full n_updates else lo);
    upper.(i) <- hi;
    if i > 0 && query_events.(i - 1).History.pid = q.History.pid then prev_query.(i) <- i - 1
  done;
  { history = h; n_updates; update_ids; update_rank; query_events; lower; upper; prev_query }

let enumerate s ~on_assign ~at_leaf =
  let nq = Array.length s.query_events in
  let vs = Array.make (max 1 nq) (Bitset.create s.n_updates) in
  let exception Accepted in
  let rec assign i =
    if i = Array.length s.query_events then begin
      if at_leaf vs then raise Accepted
    end
    else begin
      let lo =
        if s.prev_query.(i) >= 0 then Bitset.union s.lower.(i) vs.(s.prev_query.(i))
        else s.lower.(i)
      in
      if Bitset.subset lo s.upper.(i) then begin
        let free = Bitset.elements (Bitset.diff s.upper.(i) lo) in
        (* Enumerate every subset of the free updates on top of [lo]. *)
        let rec subsets v = function
          | [] ->
            vs.(i) <- v;
            if on_assign i vs then assign (i + 1)
          | r :: rest ->
            subsets v rest;
            subsets (Bitset.add v r) rest
        in
        subsets lo free
      end
    end
  in
  if Array.length s.query_events = 0 then at_leaf vs
  else begin
    match assign 0 with () -> false | exception Accepted -> true
  end

let acyclic s ?sigma vs =
  let h = s.history in
  let g = Dag.create (History.size h) in
  (* Program order: successor edges per process suffice for reachability. *)
  let pdag = History.po_dag h in
  for v = 0 to History.size h - 1 do
    List.iter (fun w -> Dag.add_edge g v w) (Dag.succs pdag v)
  done;
  Array.iteri
    (fun i (q : _ History.event) ->
      Bitset.iter (fun r -> Dag.add_edge g s.update_ids.(r) q.History.id) vs.(i))
    s.query_events;
  (match sigma with
  | None -> ()
  | Some order ->
    for i = 0 to Array.length order - 2 do
      Dag.add_edge g s.update_ids.(order.(i)) s.update_ids.(order.(i + 1))
    done);
  Dag.is_acyclic g
