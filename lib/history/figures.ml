type set_history = (Set_spec.update, Set_spec.query, Set_spec.output) History.t

let set = Set_spec.of_list

open History

let insert v = U (Set_spec.Insert v)

let delete v = U (Set_spec.Delete v)

let read l = Q (Set_spec.Read, set l)

let read_w l = Qw (Set_spec.Read, set l)

(* Fig. 1a — p1: I(1)·R/{2}·R/{1}·R/∅^ω ; p2: I(2)·R/{1}·R/{2}·R/∅^ω *)
let fig1a : set_history =
  make
    [
      [ insert 1; read [ 2 ]; read [ 1 ]; read_w [] ];
      [ insert 2; read [ 1 ]; read [ 2 ]; read_w [] ];
    ]

(* Fig. 1b — p1: I(1)·D(2)·R/{1,2}^ω ; p2: I(2)·D(1)·R/{1,2}^ω *)
let fig1b : set_history =
  make
    [
      [ insert 1; delete 2; read_w [ 1; 2 ] ];
      [ insert 2; delete 1; read_w [ 1; 2 ] ];
    ]

(* Fig. 1c — p1: I(1)·R/∅·R/{1,2}^ω ; p2: I(2)·R/{1,2}^ω *)
let fig1c : set_history =
  make
    [
      [ insert 1; read []; read_w [ 1; 2 ] ];
      [ insert 2; read_w [ 1; 2 ] ];
    ]

(* Fig. 1d — p1: I(1)·R/{1}·I(2)·R/{1,2}^ω ; p2: R/{2}·R/{1,2}^ω *)
let fig1d : set_history =
  make
    [
      [ insert 1; read [ 1 ]; insert 2; read_w [ 1; 2 ] ];
      [ read [ 2 ]; read_w [ 1; 2 ] ];
    ]

(* Fig. 2 — p1: I(1)·I(3)·R/{1,3}·R/{1,2,3}·R/{1,2}^ω ;
            p2: I(2)·D(3)·R/{2}·R/{1,2}·R/{1,2,3}^ω *)
let fig2 : set_history =
  make
    [
      [ insert 1; insert 3; read [ 1; 3 ]; read [ 1; 2; 3 ]; read_w [ 1; 2 ] ];
      [ insert 2; delete 3; read [ 2 ]; read [ 1; 2 ]; read_w [ 1; 2; 3 ] ];
    ]

let verdicts ~ec ~sec ~pc ~uc ~suc ~sc =
  [
    (Criteria.EC, ec);
    (Criteria.SEC, sec);
    (Criteria.PC, pc);
    (Criteria.UC, uc);
    (Criteria.SUC, suc);
    (Criteria.SC, sc);
    (Criteria.Pipelined_convergence, pc && ec);
  ]

let all =
  [
    ( "Fig.1a",
      fig1a,
      verdicts ~ec:true ~sec:false ~pc:false ~uc:false ~suc:false ~sc:false );
    ( "Fig.1b",
      fig1b,
      verdicts ~ec:true ~sec:true ~pc:false ~uc:false ~suc:false ~sc:false );
    ( "Fig.1c",
      fig1c,
      verdicts ~ec:true ~sec:true ~pc:false ~uc:true ~suc:false ~sc:false );
    ( "Fig.1d",
      fig1d,
      verdicts ~ec:true ~sec:true ~pc:false ~uc:true ~suc:true ~sc:false );
    ( "Fig.2",
      fig2,
      verdicts ~ec:false ~sec:false ~pc:true ~uc:false ~suc:false ~sc:false );
  ]
