(** Random distributed histories for property-based testing.

    Two regimes:

    - [plausible] histories are sampled from actual runs of a replicated
      execution the generator simulates abstractly (each process applies
      a random interleaving prefix of the updates it "received"), so a
      good share of them satisfy the weaker criteria — exercising the
      checkers' accepting paths;
    - [arbitrary] histories draw query outputs at random, which mostly
      violates everything — exercising the rejecting paths.

    Sizes stay small (the SEC/SUC searches are exponential): at most
    [max_updates] updates and [max_queries] queries across at most
    [processes] processes. *)

module Make (A : Uqadt.S) : sig
  type history = (A.update, A.query, A.output) History.t

  val arbitrary :
    Prng.t -> processes:int -> max_updates:int -> max_queries:int -> history

  val plausible :
    Prng.t -> processes:int -> max_updates:int -> max_queries:int -> history
  (** Queries are answered by evaluating a random program-order-respecting
      subset of the updates issued so far (its own process's prefix always
      included), in a random linear extension; the common ω read is
      answered from one shared linearization of all updates — so the
      result is always update consistent by construction, and often
      satisfies the stronger criteria too. *)

  val convergent_mix :
    Prng.t -> processes:int -> max_updates:int -> max_queries:int -> history
  (** Coin-flip between the two regimes (useful as a single qcheck
      generator). *)
end
