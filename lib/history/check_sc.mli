(** Sequential consistency: a single linearization of {e all} events
    belongs to [L(O)]. Not a contribution of the paper but its upper
    reference point — update consistency sits strictly between EC and
    SC, so the comparison tables include it. *)

module Make (A : Uqadt.S) : sig
  type history = (A.update, A.query, A.output) History.t

  val witness :
    history -> (A.update, A.query, A.output) History.event list option
  (** A linearization in [L(O)] if one exists. *)

  val holds : history -> bool
end
