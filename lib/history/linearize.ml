module Make (A : Uqadt.S) = struct
  module Run = Uqadt.Run (A)

  type event = (A.update, A.query, A.output) History.event

  let is_update (e : event) =
    match e.History.label with Uqadt.Update _ -> true | Uqadt.Query _ -> false

  let search ?(accept_final = fun _ -> true) rows =
    let remaining_updates =
      ref (Array.fold_left (fun acc row -> acc + List.length (List.filter is_update row)) 0 rows)
    in
    let rows = Array.map Array.of_list rows in
    let k = Array.length rows in
    let pos = Array.make (max 1 k) 0 in
    (* Memo: frontiers already explored with a given state. The state
       after a fixed multiset of events still depends on their order, so
       we keep a list of states per frontier. *)
    let memo : (int list, A.state list ref) Hashtbl.t = Hashtbl.create 64 in
    let seen_before key state =
      match Hashtbl.find_opt memo key with
      | None ->
        Hashtbl.add memo key (ref [ state ]);
        false
      | Some states ->
        if List.exists (A.equal_state state) !states then true
        else begin
          states := state :: !states;
          false
        end
    in
    let trace = ref [] in
    let exception Found in
    let rec go state =
      let key = Array.to_list pos in
      if not (seen_before key state) then begin
        let exhausted = ref true in
        for r = 0 to k - 1 do
          if pos.(r) < Array.length rows.(r) then begin
            exhausted := false;
            let e = rows.(r).(pos.(r)) in
            (* An ω event stands for an infinite suffix of copies; they can
               all be placed after the last update, so we only ever
               schedule it once no update remains. *)
            if (not e.History.omega) || !remaining_updates = 0 then begin
              match Run.step state e.History.label with
              | None -> ()
              | Some state' ->
                pos.(r) <- pos.(r) + 1;
                if is_update e then decr remaining_updates;
                trace := e :: !trace;
                go state';
                trace := List.tl !trace;
                if is_update e then incr remaining_updates;
                pos.(r) <- pos.(r) - 1
            end
          end
        done;
        if !exhausted && accept_final state then raise Found
      end
    in
    match go A.initial with
    | () -> None
    | exception Found -> Some (List.rev !trace)

  let search_under ~precedence events =
    let n = Array.length events in
    if Dag.size precedence <> n then
      invalid_arg "Linearize.search_under: precedence size mismatch";
    match Dag.topo_order precedence with
    | None -> None
    | Some _ ->
      let reach = Dag.reachable precedence in
      let remaining_updates =
        ref (Array.fold_left (fun acc e -> if is_update e then acc + 1 else acc) 0 events)
      in
      let consumed = Bitset.create n in
      let memo : (int list, A.state list ref) Hashtbl.t = Hashtbl.create 64 in
      let trace = ref [] in
      let exception Found in
      let rec go state =
        if Bitset.cardinal consumed = n then raise Found;
        let key = Bitset.elements consumed in
        let seen =
          match Hashtbl.find_opt memo key with
          | None ->
            Hashtbl.add memo key (ref [ state ]);
            false
          | Some states ->
            if List.exists (A.equal_state state) !states then true
            else begin
              states := state :: !states;
              false
            end
        in
        if not seen then
          for i = 0 to n - 1 do
            if not (Bitset.mem consumed i) then begin
              let ready = ref true in
              for j = 0 to n - 1 do
                if j <> i && Bitset.mem reach.(j) i && not (Bitset.mem consumed j) then
                  ready := false
              done;
              let e = events.(i) in
              if !ready && ((not e.History.omega) || !remaining_updates = 0) then begin
                match Run.step state e.History.label with
                | None -> ()
                | Some state' ->
                  Bitset.set consumed i;
                  if is_update e then decr remaining_updates;
                  trace := e :: !trace;
                  go state';
                  trace := List.tl !trace;
                  if is_update e then incr remaining_updates;
                  Bitset.unset consumed i
              end
            end
          done
      in
      (match go A.initial with () -> None | exception Found -> Some (List.rev !trace))

  let recognizes_events evs =
    let remaining_updates = ref (List.length (List.filter is_update evs)) in
    let rec go state = function
      | [] -> true
      | (e : event) :: rest ->
        if e.History.omega && !remaining_updates > 0 then false
        else begin
          match Run.step state e.History.label with
          | None -> false
          | Some state' ->
            if is_update e then decr remaining_updates;
            go state' rest
        end
    in
    go A.initial evs
end
