module Make (A : Uqadt.S) = struct
  module Run = Uqadt.Run (A)

  type history = (A.update, A.query, A.output) History.t

  type witness = {
    sigma : A.update list;
    sigma_ranks : int list;
    visibility : ((A.update, A.query, A.output) History.event * int list) list;
  }

  let update_at (s : _ Visibility.space) r =
    match History.update_of (History.event s.Visibility.history s.Visibility.update_ids.(r)) with
    | Some u -> u
    | None -> invalid_arg "Check_suc: rank does not name an update"

  (* Replay the updates of [v] in σ order and check the query answer. *)
  let query_matches (s : _ Visibility.space) ~pos v (q : _ History.event) =
    match History.query_of q with
    | None -> false
    | Some (qi, qo) ->
      let ranks = Bitset.elements v in
      let sorted = List.sort (fun a b -> Int.compare pos.(a) pos.(b)) ranks in
      let state = Run.exec_updates A.initial (List.map (update_at s) sorted) in
      A.equal_output (A.eval state qi) qo

  let search h =
    let s = Visibility.space h in
    let udag = History.update_dag h in
    let result = ref None in
    let found =
      Dag.linear_extensions udag (fun sigma ->
          let sigma = Array.copy sigma in
          let pos = Array.make (max 1 s.Visibility.n_updates) 0 in
          Array.iteri (fun i r -> pos.(r) <- i) sigma;
          Visibility.enumerate s
            ~on_assign:(fun i vs ->
              query_matches s ~pos vs.(i) s.Visibility.query_events.(i))
            ~at_leaf:(fun vs ->
              if Visibility.acyclic s ~sigma vs then begin
                result :=
                  Some
                    {
                      sigma = List.map (update_at s) (Array.to_list sigma);
                      sigma_ranks = Array.to_list sigma;
                      visibility =
                        Array.to_list
                          (Array.mapi
                             (fun i q -> (q, Bitset.elements vs.(i)))
                             s.Visibility.query_events);
                    };
                true
              end
              else false))
    in
    if found then !result else None

  let witness = search

  let holds h = search h <> None
end
