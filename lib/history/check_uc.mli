(** Update consistency (Definition 8) — the paper's central criterion.

    A finite-update history is UC iff after removing a finite set of
    queries, some linearization of the rest belongs to [L(O)].
    Equivalently (the form we decide): some linear extension of the
    program order restricted to the updates reaches a state that answers
    every ω query exactly. The removable finite query set is taken to be
    all non-ω queries; the ω queries sit after every update in the
    linearization, which is always compatible with program order because
    an ω event is the last event of its process. *)

module Make (A : Uqadt.S) : sig
  type history = (A.update, A.query, A.output) History.t

  val witness : history -> A.update list option
  (** A linearization of the updates whose final state answers every ω
      query, if one exists. *)

  val holds : history -> bool

  val convergent_state : history -> A.state option
  (** The state reached by the witness linearization. *)
end
