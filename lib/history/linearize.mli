(** Interleaving search: does some linearization (Definition 3) of a set
    of per-process event rows belong to the sequential specification
    [L(O)]?

    This is the computational core of the SC, PC and UC checkers. The
    search is a depth-first enumeration of interleavings that (1) keeps
    every row in order (program order), (2) replays the ADT to validate
    query outputs incrementally, (3) schedules ω events only once every
    update has been consumed — the finite encoding of "cofinitely many
    repetitions happen after the last update" — and (4) memoises visited
    (frontier, state) pairs so equivalent prefixes are explored once. *)

module Make (A : Uqadt.S) : sig
  type event = (A.update, A.query, A.output) History.event

  val search :
    ?accept_final:(A.state -> bool) ->
    event list array ->
    event list option
  (** [search rows] returns a witness linearization in [L(O)], or [None]
      if none exists. [accept_final] (default: accept) additionally
      constrains the state reached after all events — the UC checker uses
      it to test its ω queries against the converged state. *)

  val recognizes_events : event list -> bool
  (** Replay a fixed event sequence from the initial state (membership of
      [L(O)], ω events must sit after the last update). *)

  val search_under : precedence:Dag.t -> event array -> event list option
  (** Like {!search}, but the schedule must extend an arbitrary
      precedence DAG over the event indices (not just per-row orders).
      Used by the linearizability checker, whose real-time constraints
      relate events across processes. The same ω rule and memoisation
      apply. *)
end
