(** Linearizability (Herlihy & Wing) — atomicity, the paper's reference
    point for "strong" consistency (Section I cites the Attiya–Welch
    separation between it and sequential consistency).

    A timed history is linearizable iff some linearization in [L(O)]
    additionally respects the {e real-time} order: if operation [a]
    responded before operation [b] was invoked, [a] precedes [b].
    Real-time constraints come from the runner's recorded intervals, so
    this checker applies to executions, not to bare histories (the
    paper's criteria never need wall-clock — that is exactly what makes
    them cheaper).

    Used to validate the ABD baseline (its runs must be linearizable)
    and to exhibit the converse: wait-free update-consistent objects
    answer stale reads, so their runs generally are not. *)

module Make (A : Uqadt.S) : sig
  type history = (A.update, A.query, A.output) History.t

  val witness :
    history ->
    intervals:(float * float) array ->
    (A.update, A.query, A.output) History.event list option
  (** [intervals.(id)] is the (invocation, response) span of event [id];
      use an infinite response for operations that never completed
      (they then constrain nothing after them, the standard treatment of
      pending operations that are deemed to take effect). *)

  val holds : history -> intervals:(float * float) array -> bool
end
