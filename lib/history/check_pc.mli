(** Pipelined consistency (Definition 7): for every maximal chain [p] of
    the program order — here, every process line — some linearization of
    [U_H ∪ p] belongs to [L(O)]. Each process may thus explain the
    updates in its own order (PRAM generalised to arbitrary UQ-ADTs). *)

module Make (A : Uqadt.S) : sig
  type history = (A.update, A.query, A.output) History.t

  val witness :
    history ->
    (A.update, A.query, A.output) History.event list array option
  (** One linearization per process — the [w1]/[w2] words of the paper's
      Figure 2 — or [None] if some process has none. *)

  val holds : history -> bool
end
