type t = EC | SEC | PC | UC | SUC | SC | Pipelined_convergence

let all = [ EC; SEC; PC; UC; SUC; SC; Pipelined_convergence ]

let name = function
  | EC -> "EC"
  | SEC -> "SEC"
  | PC -> "PC"
  | UC -> "UC"
  | SUC -> "SUC"
  | SC -> "SC"
  | Pipelined_convergence -> "PC+EC"

let of_name s =
  match String.lowercase_ascii s with
  | "ec" -> Some EC
  | "sec" -> Some SEC
  | "pc" -> Some PC
  | "uc" -> Some UC
  | "suc" -> Some SUC
  | "sc" -> Some SC
  | "pc+ec" -> Some Pipelined_convergence
  | _ -> None

let implies a b =
  match (a, b) with
  | UC, EC -> true
  | SUC, (SEC | UC | EC) -> true
  | Pipelined_convergence, (PC | EC) -> true
  | SC, (PC | SUC | SEC | UC | EC | Pipelined_convergence) -> true
  | x, y -> x = y

module Make (A : Uqadt.S) = struct
  module Ec = Check_ec.Make (A)
  module Sec = Check_sec.Make (A)
  module Pc = Check_pc.Make (A)
  module Uc = Check_uc.Make (A)
  module Suc = Check_suc.Make (A)
  module Sc = Check_sc.Make (A)

  type history = (A.update, A.query, A.output) History.t

  let holds c h =
    match c with
    | EC -> Ec.holds h
    | SEC -> Sec.holds h
    | PC -> Pc.holds h
    | UC -> Uc.holds h
    | SUC -> Suc.holds h
    | SC -> Sc.holds h
    | Pipelined_convergence -> Pc.holds h && Ec.holds h

  let classify h = List.map (fun c -> (c, holds c h)) all
end
