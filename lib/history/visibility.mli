(** Search space for visibility relations (Definitions 6 and 9).

    Both SEC and SUC quantify existentially over an acyclic reflexive
    relation [vis ⊇ 7→] satisfying eventual delivery and growth; only the
    update-visibility sets [V(q) = {u ∈ U_H : u vis→ q}] of the queries
    matter to the convergence clauses. This module derives, for each
    query, the interval of admissible [V(q)] bitsets (indexed by update
    rank):

    - {b lower bound}: updates preceding [q] in program order (vis
      contains 7→), the [V] of the previous query of the same process
      (growth), and — for ω queries — {e all} updates (eventual
      delivery: only finitely many events may miss an update, and an ω
      event stands for infinitely many);
    - {b upper bound}: all updates except those after [q] in program
      order (such an edge would close a cycle with 7→).

    [enumerate] walks all admissible assignments in process order with a
    user-supplied pruning predicate, and [acyclic] verifies that a
    complete assignment, together with the program order (and optionally
    a total update order), admits a growth-closed acyclic extension —
    which reduces to plain acyclicity of [7→ ∪ {u → q : u ∈ V(q)} ∪ ≤]
    because every derived growth edge [u → e] factors through an
    existing path [u → q 7→* e]. *)

type ('u, 'q, 'o) space = {
  history : ('u, 'q, 'o) History.t;
  n_updates : int;
  update_ids : int array;  (** event id of each update rank *)
  update_rank : int array;  (** update rank of each event id, -1 for queries *)
  query_events : ('u, 'q, 'o) History.event array;
      (** queries sorted by (pid, seq) so same-process queries are
          contiguous and in program order *)
  lower : Bitset.t array;  (** per query index, excluding the growth bound *)
  upper : Bitset.t array;
  prev_query : int array;  (** same-process predecessor query index or -1 *)
}

val space : ('u, 'q, 'o) History.t -> ('u, 'q, 'o) space

val enumerate :
  ('u, 'q, 'o) space ->
  on_assign:(int -> Bitset.t array -> bool) ->
  at_leaf:(Bitset.t array -> bool) ->
  bool
(** Depth-first search over assignments [V : query index → bitset].
    [on_assign i vs] is called right after [vs.(i)] is set — return
    [false] to prune the branch. [at_leaf vs] is called on complete
    assignments — return [true] to accept (stops the search). Returns
    whether some leaf was accepted. *)

val acyclic :
  ('u, 'q, 'o) space -> ?sigma:int array -> Bitset.t array -> bool
(** [acyclic space vs] — is [7→ ∪ {u → q : u ∈ V(q)}] acyclic?
    [sigma], a permutation of update ranks, additionally chains the
    updates in that order (the SUC total order [≤]). *)
