(** Strong eventual consistency (Definition 6): there is an acyclic
    reflexive visibility relation containing the program order such that
    (eventual delivery) every update is seen by all but finitely many
    events, (growth) visibility is stable under program-order extension,
    and (strong convergence) queries seeing the same update set can be
    answered from one common state.

    The decision procedure searches the admissible [V(q)] assignments
    (see {!Visibility}), pruning a branch as soon as the group of queries
    sharing the current visibility set is jointly unsatisfiable, and
    accepts a leaf iff the induced relation is acyclic. Note that strong
    convergence does {e not} tie the common state to the updates seen —
    an implementation ignoring all updates is SEC, as the paper points
    out — which is precisely why SEC and UC are incomparable. *)

module Make (A : Uqadt.S) : sig
  type history = (A.update, A.query, A.output) History.t

  val witness :
    history ->
    ((A.update, A.query, A.output) History.event * int list) list option
  (** For each query, the update ranks it sees, or [None] if no valid
      visibility relation exists. *)

  val holds : history -> bool
end
