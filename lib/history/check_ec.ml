module Make (A : Uqadt.S) = struct
  type history = (A.update, A.query, A.output) History.t

  let holds h =
    let omega_pairs =
      List.filter_map History.query_of (History.omega_queries h)
    in
    A.satisfiable omega_pairs
end
