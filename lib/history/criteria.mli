(** The consistency-criteria lattice of the paper, as one enumeration
    with a uniform dispatcher, plus the composite "pipelined
    convergence" (PC ∧ EC) whose wait-free impossibility is
    Proposition 1. *)

type t = EC | SEC | PC | UC | SUC | SC | Pipelined_convergence

val all : t list
(** In the order the paper discusses them. *)

val name : t -> string

val of_name : string -> t option

val implies : t -> t -> bool
(** The criterion hierarchy: Proposition 2 (UC ⟹ EC; SUC ⟹ SEC ∧ UC)
    plus the inclusions that follow directly from the definitions — a
    sequentially consistent history satisfies every other criterion
    here (its global linearization is simultaneously a PC witness for
    every chain, a UC witness, and induces the prefix visibility that
    makes it SUC). Used by the property tests as the oracle the
    checkers must agree with on every generated history. *)

module Make (A : Uqadt.S) : sig
  type history = (A.update, A.query, A.output) History.t

  val holds : t -> history -> bool

  val classify : history -> (t * bool) list
  (** Verdict for every criterion, in {!all} order. *)
end
