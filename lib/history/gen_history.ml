module Make (A : Uqadt.S) = struct
  module Run = Uqadt.Run (A)

  type history = (A.update, A.query, A.output) History.t

  (* Structure shared by both regimes: per-process sequences of updates
     and query slots, plus one final ω read per process. *)
  type slot = Upd of A.update | Query_slot of A.query

  let structure rng ~processes ~max_updates ~max_queries =
    let updates = ref 0 and queries = ref 0 in
    Array.init processes (fun _ ->
        let len = Prng.int rng 4 in
        List.init len (fun _ ->
            if (Prng.bool rng && !updates < max_updates) || !queries >= max_queries
            then begin
              incr updates;
              if !updates <= max_updates then Some (Upd (A.random_update rng)) else None
            end
            else begin
              incr queries;
              Some (Query_slot (A.random_query rng))
            end)
        |> List.filter_map Fun.id)

  (* A random linear extension of the per-process update sequences:
     (process, update) pairs in a global order. *)
  let random_sigma rng slots =
    let remaining =
      Array.map (fun l -> List.filter_map (function Upd u -> Some u | Query_slot _ -> None) l) slots
    in
    let total = Array.fold_left (fun acc l -> acc + List.length l) 0 remaining in
    let sigma = ref [] in
    for _ = 1 to total do
      let candidates =
        List.filter (fun p -> remaining.(p) <> []) (List.init (Array.length remaining) Fun.id)
      in
      let p = List.nth candidates (Prng.int rng (List.length candidates)) in
      match remaining.(p) with
      | [] -> ()
      | u :: rest ->
        remaining.(p) <- rest;
        sigma := (p, u) :: !sigma
    done;
    List.rev !sigma

  (* Index of each (process, own-rank) update in sigma. *)
  let sigma_positions sigma =
    List.mapi (fun i (p, _) -> (p, i)) sigma

  let exec_in_sigma_order sigma visible =
    (* [visible] is a list of sigma positions; execute them in order. *)
    let sorted = List.sort_uniq Int.compare visible in
    Run.exec_updates A.initial (List.map (fun i -> snd (List.nth sigma i)) sorted)

  let plausible rng ~processes ~max_updates ~max_queries =
    let slots = structure rng ~processes ~max_updates ~max_queries in
    let sigma = random_sigma rng slots in
    let n_sigma = List.length sigma in
    let positions_by_proc =
      (* For process p, the sigma positions of its own updates, in
         program order. *)
      Array.init processes (fun p ->
          List.filter_map (fun (q, i) -> if q = p then Some i else None) (sigma_positions sigma))
    in
    let steps =
      Array.to_list
        (Array.mapi
           (fun p slot_list ->
             let own_seen = ref 0 in
             let body =
               List.map
                 (function
                   | Upd u ->
                     incr own_seen;
                     History.U u
                   | Query_slot qi ->
                     (* Visible: a random sigma-prefix plus everything this
                        process has already done itself. *)
                     let cut = Prng.int rng (n_sigma + 1) in
                     let own =
                       List.filteri (fun k _ -> k < !own_seen) positions_by_proc.(p)
                     in
                     let prefix = List.init cut Fun.id in
                     let state = exec_in_sigma_order sigma (own @ prefix) in
                     History.Q (qi, A.eval state qi))
                 slot_list
             in
             let final_q = A.random_query rng in
             let final_state = exec_in_sigma_order sigma (List.init n_sigma Fun.id) in
             body @ [ History.Qw (final_q, A.eval final_state final_q) ])
           slots)
    in
    History.make steps

  let arbitrary rng ~processes ~max_updates ~max_queries =
    let slots = structure rng ~processes ~max_updates ~max_queries in
    let random_output qi =
      (* An output of the right type, detached from any real execution. *)
      let k = Prng.int rng 4 in
      let state =
        Run.exec_updates A.initial (List.init k (fun _ -> A.random_update rng))
      in
      A.eval state qi
    in
    let steps =
      Array.to_list
        (Array.map
           (fun slot_list ->
             let body =
               List.map
                 (function
                   | Upd u -> History.U u
                   | Query_slot qi -> History.Q (qi, random_output qi))
                 slot_list
             in
             let final_q = A.random_query rng in
             body @ [ History.Qw (final_q, random_output final_q) ])
           slots)
    in
    History.make steps

  let convergent_mix rng ~processes ~max_updates ~max_queries =
    if Prng.bool rng then plausible rng ~processes ~max_updates ~max_queries
    else arbitrary rng ~processes ~max_updates ~max_queries
end
