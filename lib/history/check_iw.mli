(** Strong eventual consistency for the Insert-wins set (Definition 10)
    — the concurrent specification of the OR-set, specialised to
    {!Set_spec}.

    Beyond SEC, the visibility relation must explain membership:
    [x ∈ s ⟺ ∃u ∈ vis(q, I(x)), ∀u' ∈ vis(q, D(x)), ¬(u vis→ u')] for
    every query [q = R/s]. Unlike plain SEC, this constrains visibility
    {e between updates}, so the relation is represented explicitly as a
    boolean matrix on event ids.

    Three entry points: [verify] checks an explicit relation (extracted,
    e.g., from the simulator's real message deliveries), [of_suc_witness]
    builds the relation of Proposition 3's proof from a SUC witness, and
    [search] decides existence by bounded enumeration for the paper-sized
    histories of the unit tests. *)

type history = (Set_spec.update, Set_spec.query, Set_spec.output) History.t

type relation = bool array array
(** [rel.(a).(b)] iff event [a] is visible to event [b]. *)

val close : history -> relation -> relation
(** Reflexive + growth closure: add [e → e''] whenever [e vis→ e'] and
    [e' 7→ e''], to fixpoint. The program order itself is added first. *)

val verify : history -> relation -> bool
(** Does the (closed) relation witness Definition 10? Checks: contains
    7→, reflexive, acyclic (ignoring self-loops), growth-closed,
    eventual delivery (ω queries see all updates), strong convergence
    (queries with equal visible-update sets return equal sets), and the
    insert-wins membership property. *)

val of_suc_witness :
  history -> sigma_ranks:int list -> vis:(int * int list) list -> relation
(** The construction of Proposition 3's proof: start from the SUC
    visibility ([vis] maps a query's event id to the update ranks it
    sees), orient every pair of same-element updates by [σ], and close.
    [verify] of the result should always hold for a SUC witness — this
    is the property test for Proposition 3. *)

val search : history -> bool
(** Existence of a Definition 10 witness, by enumerating orientations of
    cross-process same-element update pairs and query visibility sets.
    Exponential; intended for paper-sized histories only. *)
