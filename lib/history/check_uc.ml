module Make (A : Uqadt.S) = struct
  module L = Linearize.Make (A)
  module Run = Uqadt.Run (A)

  type history = (A.update, A.query, A.output) History.t

  let is_update (e : (A.update, A.query, A.output) History.event) =
    match e.History.label with Uqadt.Update _ -> true | Uqadt.Query _ -> false

  let omega_ok h s =
    List.for_all
      (fun e ->
        match History.query_of e with
        | None -> true
        | Some (qi, qo) -> A.equal_output (A.eval s qi) qo)
      (History.omega_queries h)

  let witness h =
    let rows =
      Array.init (History.process_count h) (fun p ->
          List.filter is_update (History.process_events h p))
    in
    match L.search ~accept_final:(omega_ok h) rows with
    | None -> None
    | Some events -> Some (List.filter_map History.update_of events)

  let holds h = witness h <> None

  let convergent_state h =
    match witness h with
    | None -> None
    | Some updates -> Some (Run.final_state updates)
end
