exception Parse_error of string

let example = "I(1) R{} R{1 2}w / I(2) R{1 2}w"

let fail fmt = Printf.ksprintf (fun s -> raise (Parse_error s)) fmt

let parse_int token what =
  match int_of_string_opt (String.trim token) with
  | Some v -> v
  | None -> fail "expected an integer for %s, got %S" what token

(* "I(1)" / "D(2)" *)
let parse_update token =
  let body ctor =
    let len = String.length token in
    if len < 4 || token.[1] <> '(' || token.[len - 1] <> ')' then
      fail "malformed update %S (expected e.g. %c(1))" token ctor
    else String.sub token 2 (len - 3)
  in
  match token.[0] with
  | 'I' -> Set_spec.Insert (parse_int (body 'I') "an insertion")
  | 'D' -> Set_spec.Delete (parse_int (body 'D') "a deletion")
  | _ -> fail "unknown update %S" token

(* "R{1 2 3}" or "R{}" with optional trailing "w" *)
let parse_read token =
  let len = String.length token in
  if len < 3 || token.[1] <> '{' then fail "malformed read %S (expected R{…})" token;
  let omega = token.[len - 1] = 'w' in
  let close = len - if omega then 2 else 1 in
  if close < 2 || token.[close] <> '}' then fail "malformed read %S (missing '}')" token;
  let inner = String.sub token 2 (close - 2) in
  let elements =
    String.split_on_char ' ' inner
    |> List.concat_map (String.split_on_char ',')
    |> List.filter (fun s -> String.trim s <> "")
    |> List.map (fun s -> parse_int s "a set element")
  in
  (Set_spec.of_list elements, omega)

let parse_event token =
  if token = "" then fail "empty event"
  else begin
    match token.[0] with
    | 'I' | 'D' -> History.U (parse_update token)
    | 'R' ->
      let s, omega = parse_read token in
      if omega then History.Qw (Set_spec.Read, s) else History.Q (Set_spec.Read, s)
    | _ -> fail "unknown event %S (expected I(…), D(…) or R{…})" token
  end

(* Reads contain spaces ("R{1 2}"), so tokenisation tracks brace depth. *)
let tokens_of line =
  let out = ref [] in
  let buf = Buffer.create 8 in
  let depth = ref 0 in
  let flush () =
    if Buffer.length buf > 0 then begin
      out := Buffer.contents buf :: !out;
      Buffer.clear buf
    end
  in
  String.iter
    (fun c ->
      match c with
      | '{' ->
        incr depth;
        Buffer.add_char buf c
      | '}' ->
        decr depth;
        Buffer.add_char buf c
      | ' ' | '\t' when !depth = 0 -> flush ()
      | c -> Buffer.add_char buf c)
    line;
  if !depth <> 0 then fail "unbalanced braces in %S" line;
  flush ();
  List.rev !out

let parse text =
  let processes = String.split_on_char '/' text in
  if processes = [] then fail "empty history";
  let steps = List.map (fun line -> List.map parse_event (tokens_of line)) processes in
  try History.make steps
  with Invalid_argument msg -> fail "%s" msg
