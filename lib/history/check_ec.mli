(** Eventual consistency (Definition 5): some state [s] is consistent
    with all but finitely many queries. In the finite ω-encoding this is
    exactly: one state satisfies every ω query — the non-ω queries are
    the allowed finite set of exceptions, and a history whose updates
    never stop (no ω queries at all) is vacuously EC. *)

module Make (A : Uqadt.S) : sig
  type history = (A.update, A.query, A.output) History.t

  val holds : history -> bool
end
