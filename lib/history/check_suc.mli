(** Strong update consistency (Definition 9): a visibility relation as
    in SEC, plus a total order [≤] containing it, such that every query
    is answered by executing exactly the updates it sees, in [≤] order
    (strong sequential convergence).

    Decision procedure: enumerate the linear extensions [σ] of the
    program order restricted to updates (the restriction of any valid
    [≤]); for each, search the [V(q)] assignments, pruning immediately
    when replaying [V(q)] in [σ] order does not produce the recorded
    output; accept when the relation [7→ ∪ V-edges ∪ σ] is acyclic — the
    witness extends to the required total order by topological sorting. *)

module Make (A : Uqadt.S) : sig
  type history = (A.update, A.query, A.output) History.t

  type witness = {
    sigma : A.update list;  (** the agreed total order on updates *)
    sigma_ranks : int list;  (** the same order, as update ranks *)
    visibility :
      ((A.update, A.query, A.output) History.event * int list) list;
        (** per query, the update ranks it sees *)
  }

  val witness : history -> witness option

  val holds : history -> bool
end
