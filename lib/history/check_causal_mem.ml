type history = (Memory_spec.update, Memory_spec.query, Memory_spec.output) History.t

let register_of (e : _ History.event) =
  match e.History.label with
  | Uqadt.Update (Memory_spec.Write (x, _)) -> x
  | Uqadt.Query (Memory_spec.Read x, _) -> x

let written_value (e : _ History.event) =
  match e.History.label with
  | Uqadt.Update (Memory_spec.Write (_, v)) -> Some v
  | Uqadt.Query _ -> None

let read_value (e : _ History.event) =
  match e.History.label with
  | Uqadt.Query (Memory_spec.Read _, v) -> Some v
  | Uqadt.Update _ -> None

(* Candidate writers for a read: same register, same value; plus ⊥ when
   the read returns the initial value. A read may not read from a write
   that follows it in program order (that edge alone closes a κ cycle). *)
let candidates (h : history) (r : _ History.event) =
  let x = register_of r and v = read_value r in
  let writers =
    List.filter
      (fun (w : _ History.event) ->
        register_of w = x && written_value w = v && not (History.po h r.History.id w.History.id))
      (History.updates h)
  in
  let bottom = if v = Some Memory_spec.initial_value then [ None ] else [] in
  bottom @ List.map (fun (w : _ History.event) -> Some w.History.id) writers

(* Serialization search: a linear extension of κ restricted to
   [events], replaying memory semantics, with ω reads after all
   writes. *)
let serializable ~kappa events =
  let events = Array.of_list events in
  let n = Array.length events in
  let index_of = Hashtbl.create 16 in
  Array.iteri (fun i (e : _ History.event) -> Hashtbl.replace index_of e.History.id i) events;
  (* Restriction of κ to the chosen events. *)
  let g = Dag.create n in
  Array.iteri
    (fun i (e : _ History.event) ->
      List.iter
        (fun succ ->
          match Hashtbl.find_opt index_of succ with
          | Some j -> Dag.add_edge g i j
          | None -> ())
        (kappa e.History.id))
    events;
  match Dag.topo_order g with
  | None -> false
  | Some _ ->
    let reach = Dag.reachable g in
    let writes_left = ref 0 in
    Array.iter
      (fun (e : _ History.event) ->
        match e.History.label with
        | Uqadt.Update _ -> incr writes_left
        | Uqadt.Query _ -> ())
      events;
    let consumed = Bitset.create n in
    let memo : (int list, Memory_spec.state list ref) Hashtbl.t = Hashtbl.create 64 in
    let exception Found in
    let module Run = Uqadt.Run (Memory_spec) in
    let rec go state =
      if Bitset.cardinal consumed = n then raise Found;
      let key = Bitset.elements consumed in
      let seen =
        match Hashtbl.find_opt memo key with
        | None ->
          Hashtbl.add memo key (ref [ state ]);
          false
        | Some states ->
          if List.exists (Memory_spec.equal_state state) !states then true
          else begin
            states := state :: !states;
            false
          end
      in
      if not seen then
        for i = 0 to n - 1 do
          if not (Bitset.mem consumed i) then begin
            (* Ready iff every κ-predecessor inside the set is consumed. *)
            let ready = ref true in
            for j = 0 to n - 1 do
              if j <> i && Bitset.mem reach.(j) i && not (Bitset.mem consumed j) then
                ready := false
            done;
            let e = events.(i) in
            if !ready && ((not e.History.omega) || !writes_left = 0) then begin
              match Run.step state e.History.label with
              | None -> ()
              | Some state' ->
                Bitset.set consumed i;
                let is_write =
                  match e.History.label with Uqadt.Update _ -> true | Uqadt.Query _ -> false
                in
                if is_write then decr writes_left;
                go state';
                if is_write then incr writes_left;
                Bitset.unset consumed i
            end
          end
        done
    in
    (match go Memory_spec.initial with () -> false | exception Found -> true)

let search (h : history) =
  let reads = History.queries h in
  let writes = History.updates h in
  let cands = List.map (fun r -> (r, candidates h r)) reads in
  let result = ref None in
  let exception Found in
  (* Enumerate writes-into assignments read by read. *)
  let rec assign acc = function
    | [] ->
      let wi = List.rev acc in
      (* κ successors: program order plus the writes-into edges. *)
      let kappa id =
        let po_succs =
          List.filter_map
            (fun (e : _ History.event) ->
              if History.po h id e.History.id then Some e.History.id else None)
            (History.events h)
        in
        let wi_succs =
          List.filter_map
            (fun ((r : _ History.event), w) ->
              match w with Some wid when wid = id -> Some r.History.id | Some _ | None -> None)
            wi
        in
        po_succs @ wi_succs
      in
      (* Global acyclicity of κ. *)
      let n = History.size h in
      let g = Dag.create n in
      List.iter (fun (e : _ History.event) -> List.iter (Dag.add_edge g e.History.id) (kappa e.History.id)) (History.events h);
      if Dag.is_acyclic g then begin
        let per_process_ok =
          List.init (History.process_count h) (fun p ->
              let own_reads =
                List.filter
                  (fun (e : _ History.event) ->
                    match e.History.label with
                    | Uqadt.Query _ -> e.History.pid = p
                    | Uqadt.Update _ -> false)
                  (History.events h)
              in
              serializable ~kappa (writes @ own_reads))
          |> List.for_all Fun.id
        in
        if per_process_ok then begin
          result := Some (List.map (fun ((r : _ History.event), w) -> (r.History.id, w)) wi);
          raise Found
        end
      end
    | (r, options) :: rest ->
      List.iter (fun choice -> assign ((r, choice) :: acc) rest) options
  in
  match assign [] cands with () -> None | exception Found -> !result

let witness = search

let holds h = search h <> None
