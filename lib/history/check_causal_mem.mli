(** Causal memory (Ahamad, Neiger, Burns, Kohli & Hutto 1995 — reference
    [5] of the paper), decided for {!Memory_spec} histories.

    Section IV of the paper notes that causal consistency "is well
    formalized only for memory" — the missing ingredient for general
    UQ-ADTs being the {e writes-into} relation, which is only definable
    when each read returns the value of one identifiable write. This
    module supplies that classical memory-specific criterion, so the
    repository's lattice can place it next to PC (which causality
    strictly strengthens) and UC (with which it is incomparable).

    Definition decided here: a history is causal iff there exists a
    writes-into relation [↦] mapping each read either to a write of the
    same register with the same value or (for reads of the initial
    value) to no write, such that

    - the causality order [κ = (7→ ∪ ↦)⁺] is acyclic, and
    - for every process [p] there is a serialization of all writes plus
      [p]'s reads that respects [κ] and is a legal sequential memory
      execution (every read returns the latest preceding write to its
      register); ω reads sit after every write, as everywhere in this
      encoding.

    The decision procedure enumerates writes-into assignments (each read
    has finitely many candidate writes) and searches κ-respecting
    serializations per process with state memoisation. Exponential in
    history size; meant for the paper-scale histories of tests and
    extracted small runs. *)

type history = (Memory_spec.update, Memory_spec.query, Memory_spec.output) History.t

val holds : history -> bool

val witness : history -> (int * int option) list option
(** The writes-into assignment found, as (read event id, writer event id
    option) pairs — [None] marks a read of the initial value. *)
