(** The paper's example histories, verbatim: the four histories of
    Figure 1 (two processes sharing a set of integers) and the
    PC-but-not-EC history of Figure 2. The expected verdicts are the
    figure captions — they are the oracle of the unit tests and of the
    F1/F2 experiment tables. *)

type set_history = (Set_spec.update, Set_spec.query, Set_spec.output) History.t

val fig1a : set_history
(** EC but not SEC nor UC. *)

val fig1b : set_history
(** SEC but not UC. *)

val fig1c : set_history
(** SEC and UC but not SUC. *)

val fig1d : set_history
(** SUC but not PC. *)

val fig2 : set_history
(** PC but not EC (drives Proposition 1). *)

val all : (string * set_history * (Criteria.t * bool) list) list
(** [(name, history, expected verdicts)] — the expected list covers the
    criteria each caption mentions explicitly, plus those implied by
    Proposition 2. *)
