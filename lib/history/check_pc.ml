module Make (A : Uqadt.S) = struct
  module L = Linearize.Make (A)

  type history = (A.update, A.query, A.output) History.t

  let is_update (e : (A.update, A.query, A.output) History.event) =
    match e.History.label with Uqadt.Update _ -> true | Uqadt.Query _ -> false

  let chain_witness h p =
    (* Rows: the whole line of process p, plus the update subsequences of
       every other process (their program order must be respected). *)
    let n = History.process_count h in
    let rows =
      Array.init n (fun q ->
          if q = p then History.process_events h q
          else List.filter is_update (History.process_events h q))
    in
    L.search rows

  let witness h =
    let n = History.process_count h in
    let rec collect p acc =
      if p = n then Some (Array.of_list (List.rev acc))
      else begin
        match chain_witness h p with
        | None -> None
        | Some w -> collect (p + 1) (w :: acc)
      end
    in
    collect 0 []

  let holds h = witness h <> None
end
