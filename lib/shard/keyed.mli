(** The object space as a UQ-ADT: a keyspace of independent instances
    of a base ADT [A], each key holding its own [A.state].

    Two views of the same space:

    {ul
    {- {!One} — updates touch a single key ([key * A.update]); the
       query returns the whole keyed state. This is the {e per-shard}
       spec: each shard's {!Generic} core logs exactly the keyed
       updates routed to it, and migration moves [One] log entries
       between shards.}
    {- {!Batch} — an update is a multi-key batch (applied left to
       right), a query reads one key or sweeps the whole space. This is
       the {e client-facing} spec of the sharded protocol: histories,
       monitors and fingerprints are expressed in it.}}

    Updates on distinct keys always commute, so both views are
    commutative iff [A] is. *)

module One (A : Uqadt.S) : sig
  include
    Uqadt.S
      with type state = A.state Support.Int_map.t
       and type update = int * A.update
       and type query = unit
       and type output = A.state Support.Int_map.t

  val key_domain : int ref
  (** Support of {!random_update} keys (default 16); per functor
      instantiation, like [Generic.checkpoint_interval]. *)
end

module Batch (A : Uqadt.S) : sig
  type read = Read of int * A.query | Sweep

  type answer = Out of A.output | States of (int * A.state) list

  include
    Uqadt.S
      with type state = A.state Support.Int_map.t
       and type update = (int * A.update) list
       and type query = read
       and type output = answer

  val key_domain : int ref
  (** Support of {!random_update} / {!random_query} keys (default 16). *)

  val eval_key : state -> int -> A.query -> A.output
  (** [A.eval] on the key's state ([A.initial] when absent). *)
end

(** Wire codecs for the keyed update types, built on a base codec for
    [A.update]: varint key(s) followed by the base frame. *)

module One_codec
    (A : Uqadt.S)
    (C : Update_codec.S with type update = A.update) :
  Update_codec.S with type update = int * A.update

module Batch_codec
    (A : Uqadt.S)
    (C : Update_codec.S with type update = A.update) :
  Update_codec.S with type update = (int * A.update) list
