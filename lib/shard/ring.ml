(* Points live on a 62-bit circle: hashes are masked to 62 bits so they
   fit a non-negative OCaml int and compare with plain (<). The hash is
   the SplitMix64 finalizer — already the repo's PRNG mixing function —
   applied to a golden-ratio spread of the input, so routing is a pure
   function of the construction sequence. *)

let mask = 0x3FFF_FFFF_FFFF_FFFF (* 2^62 - 1 *)

let mix64 z =
  let open Int64 in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let hash2 a b =
  let open Int64 in
  let x = add (mul (of_int a) 0x9E3779B97F4A7C15L) (of_int b) in
  to_int (mix64 x) land mask

let key_point key = hash2 key 0x5bd1e995

let vnode_point ~shard ~vnode = hash2 shard (0x1000000 + vnode)

type t = {
  points : (int * int) array;  (* (position, shard), sorted by position *)
  ids : int list;  (* sorted shard ids *)
  next : int;  (* next fresh id; removed ids are not reused *)
  vnodes : int;
}

let shards t = List.length t.ids

let shard_ids t = t.ids

let max_id t = t.next - 1

let vnodes t = t.vnodes

(* Positions must be distinct or routing would depend on sort
   stability; collisions (astronomically rare at 62 bits) probe
   linearly to the next free position. *)
let place taken pos =
  let pos = ref pos in
  while Hashtbl.mem taken !pos do
    pos := (!pos + 1) land mask
  done;
  Hashtbl.add taken !pos ();
  !pos

let rebuild ~ids ~next ~vnodes assoc =
  let points = Array.of_list assoc in
  Array.sort (fun (a, _) (b, _) -> compare a b) points;
  { points; ids; next; vnodes }

let taken_of points =
  let taken = Hashtbl.create (Array.length points * 2) in
  Array.iter (fun (pos, _) -> Hashtbl.add taken pos ()) points;
  taken

let standard_points taken ~shard ~vnodes =
  List.init vnodes (fun v ->
      (place taken (vnode_point ~shard ~vnode:v), shard))

let create ?(vnodes = 64) ~shards () =
  if shards < 1 then invalid_arg "Ring.create: need at least one shard";
  if vnodes < 1 then invalid_arg "Ring.create: need at least one vnode";
  let taken = Hashtbl.create (shards * vnodes * 2) in
  let assoc =
    List.concat_map
      (fun shard -> standard_points taken ~shard ~vnodes)
      (List.init shards Fun.id)
  in
  rebuild ~ids:(List.init shards Fun.id) ~next:shards ~vnodes assoc

let route t key =
  let p = key_point key in
  (* successor: first point with position > p, wrapping to points.(0) *)
  let n = Array.length t.points in
  let lo = ref 0 and hi = ref n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fst t.points.(mid) <= p then lo := mid + 1 else hi := mid
  done;
  snd t.points.(if !lo = n then 0 else !lo)

let add t =
  let id = t.next in
  let taken = taken_of t.points in
  let fresh = standard_points taken ~shard:id ~vnodes:t.vnodes in
  let assoc = Array.to_list t.points @ fresh in
  ( rebuild
      ~ids:(List.sort compare (id :: t.ids))
      ~next:(id + 1) ~vnodes:t.vnodes assoc,
    id )

let remove t id =
  if not (List.mem id t.ids) then invalid_arg "Ring.remove: unknown shard";
  if shards t = 1 then invalid_arg "Ring.remove: cannot remove the last shard";
  let assoc =
    Array.to_list t.points |> List.filter (fun (_, s) -> s <> id)
  in
  rebuild
    ~ids:(List.filter (( <> ) id) t.ids)
    ~next:t.next ~vnodes:t.vnodes assoc

let split t ~hot =
  if not (List.mem hot t.ids) then invalid_arg "Ring.split: unknown shard";
  let id = t.next in
  let n = Array.length t.points in
  let taken = taken_of t.points in
  (* For each of hot's points, the arc it owns runs from its predecessor
     (exclusive) to it (inclusive); planting the new shard's point at
     the arc midpoint hands the first half of that arc — and nothing
     else — to the new shard. *)
  let fresh = ref [] in
  Array.iteri
    (fun i (pos, shard) ->
      if shard = hot then begin
        let pred = fst t.points.((i + n - 1) mod n) in
        let len = (pos - pred) land mask in
        if len > 1 then begin
          let mid = (pred + (len / 2)) land mask in
          fresh := (place taken mid, id) :: !fresh
        end
      end)
    t.points;
  let assoc = Array.to_list t.points @ !fresh in
  ( rebuild
      ~ids:(List.sort compare (id :: t.ids))
      ~next:(id + 1) ~vnodes:t.vnodes assoc,
    id )

let owned_share t ~keys =
  let counts = Hashtbl.create 16 in
  for k = 0 to keys - 1 do
    let s = route t k in
    Hashtbl.replace counts s (1 + Option.value ~default:0 (Hashtbl.find_opt counts s))
  done;
  List.map
    (fun s -> (s, Option.value ~default:0 (Hashtbl.find_opt counts s)))
    t.ids

let pp ppf t =
  Format.fprintf ppf "ring(%d shards, %d vnodes, %d points)" (shards t)
    t.vnodes (Array.length t.points)
