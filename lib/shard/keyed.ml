module Int_map = Support.Int_map

(* Shared plumbing over the keyed state [A.state Int_map.t]: absent
   keys are at [A.initial], and bindings that return to [A.initial]
   are kept (an explicit binding and an absent one are equal states —
   [equal_state] and [pp_state] normalise). *)
module Common (A : Uqadt.S) = struct
  let initial : A.state Int_map.t = Int_map.empty

  let get m k = match Int_map.find_opt k m with Some s -> s | None -> A.initial

  let apply_one m (k, u) = Int_map.add k (A.apply (get m k) u) m

  let significant m =
    Int_map.filter (fun _ s -> not (A.equal_state s A.initial)) m

  let equal_state a b =
    Int_map.equal A.equal_state (significant a) (significant b)

  let pp_state ppf m =
    let bs = Int_map.bindings (significant m) in
    Format.fprintf ppf "{@[%a@]}"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
         (fun ppf (k, s) -> Format.fprintf ppf "%d: %a" k A.pp_state s))
      bs

  let equal_keyed_update (k1, u1) (k2, u2) = k1 = k2 && A.equal_update u1 u2

  let pp_keyed_update ppf (k, u) = Format.fprintf ppf "%d:=%a" k A.pp_update u

  let keyed_update_wire_size (k, u) =
    Wire.varint_size k + A.update_wire_size u
end

module One (A : Uqadt.S) = struct
  module C = Common (A)

  type state = A.state Int_map.t
  type update = int * A.update
  type query = unit
  type output = A.state Int_map.t

  let name = A.name ^ "@key"
  let initial = C.initial
  let apply = C.apply_one
  let eval m () = m
  let equal_state = C.equal_state
  let equal_update = C.equal_keyed_update
  let equal_query () () = true
  let equal_output = C.equal_state
  let pp_state = C.pp_state
  let pp_update = C.pp_keyed_update
  let pp_query ppf () = Format.pp_print_string ppf "S"
  let pp_output = C.pp_state
  let update_wire_size = C.keyed_update_wire_size
  let commutative = A.commutative

  let satisfiable pairs =
    Support.all_outputs_equal C.equal_state pairs

  let key_domain = ref 16

  let random_update g =
    let k = Prng.int g !key_domain in
    (k, A.random_update g)

  let random_query _ = ()
end

module Batch (A : Uqadt.S) = struct
  module C = Common (A)

  type read = Read of int * A.query | Sweep

  type answer = Out of A.output | States of (int * A.state) list

  type state = A.state Int_map.t
  type update = (int * A.update) list
  type query = read
  type output = answer

  let name = A.name ^ "@space"
  let initial = C.initial
  let apply m kus = List.fold_left C.apply_one m kus

  let eval_key m k q = A.eval (C.get m k) q

  let sweep m = Int_map.bindings (C.significant m)

  let eval m = function
    | Read (k, q) -> Out (eval_key m k q)
    | Sweep -> States (sweep m)

  let equal_state = C.equal_state

  let equal_update a b =
    List.length a = List.length b && List.for_all2 C.equal_keyed_update a b

  let equal_query a b =
    match (a, b) with
    | Read (k1, q1), Read (k2, q2) -> k1 = k2 && A.equal_query q1 q2
    | Sweep, Sweep -> true
    | _ -> false

  let equal_states a b =
    List.length a = List.length b
    && List.for_all2
         (fun (k1, s1) (k2, s2) -> k1 = k2 && A.equal_state s1 s2)
         a b

  let equal_output a b =
    match (a, b) with
    | Out o1, Out o2 -> A.equal_output o1 o2
    | States l1, States l2 -> equal_states l1 l2
    | _ -> false

  let pp_state = C.pp_state

  let pp_update ppf kus =
    Format.fprintf ppf "[@[%a@]]"
      (Format.pp_print_list
         ~pp_sep:(fun ppf () -> Format.fprintf ppf ";@ ")
         C.pp_keyed_update)
      kus

  let pp_query ppf = function
    | Read (k, q) -> Format.fprintf ppf "R(%d,%a)" k A.pp_query q
    | Sweep -> Format.pp_print_string ppf "Sweep"

  let pp_output ppf = function
    | Out o -> A.pp_output ppf o
    | States l ->
      Format.fprintf ppf "{@[%a@]}"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",@ ")
           (fun ppf (k, s) -> Format.fprintf ppf "%d: %a" k A.pp_state s))
        l

  let update_wire_size kus =
    Wire.varint_size (List.length kus)
    + List.fold_left (fun acc ku -> acc + C.keyed_update_wire_size ku) 0 kus

  let commutative = A.commutative

  (* A state answering every pair exists iff (a) all sweeps agree and
     (b) per key, the base ADT can answer that key's reads — against
     the swept state when one was recorded (keys are independent, so
     satisfiability decomposes exactly). *)
  let satisfiable pairs =
    let sweeps =
      List.filter_map
        (function Sweep, States l -> Some l | _ -> None)
        pairs
    and reads =
      List.filter_map
        (function Read (k, q), Out o -> Some (k, (q, o)) | _ -> None)
        pairs
    in
    let sweeps_agree =
      match sweeps with
      | [] -> true
      | l :: rest -> List.for_all (equal_states l) rest
    in
    sweeps_agree
    &&
    match sweeps with
    | witness :: _ ->
      let m =
        List.fold_left (fun m (k, s) -> Int_map.add k s m) Int_map.empty
          witness
      in
      List.for_all
        (fun (k, (q, o)) -> A.equal_output (eval_key m k q) o)
        reads
    | [] ->
      let by_key = Hashtbl.create 8 in
      List.iter
        (fun (k, qo) ->
          Hashtbl.replace by_key k
            (qo :: Option.value ~default:[] (Hashtbl.find_opt by_key k)))
        reads;
      Hashtbl.fold (fun _ qos acc -> acc && A.satisfiable qos) by_key true

  let key_domain = ref 16

  let random_update g =
    let k = Prng.int g !key_domain in
    [ (k, A.random_update g) ]

  let random_query g = Read (Prng.int g !key_domain, A.random_query g)
end

let encode_keyed encode w (k, u) =
  Codec.Writer.varint w k;
  encode w u

let decode_keyed decode r =
  let k = Codec.Reader.varint r in
  (k, decode r)

module One_codec
    (A : Uqadt.S)
    (C : Update_codec.S with type update = A.update) =
struct
  type update = int * A.update

  let encode w ku = encode_keyed C.encode w ku

  let decode r = decode_keyed C.decode r

  let to_string u =
    let w = Codec.Writer.create () in
    encode w u;
    Codec.Writer.contents w

  let of_string s =
    let r = Codec.Reader.of_string s in
    let u = decode r in
    if not (Codec.Reader.at_end r) then
      raise (Codec.Decode_error "keyed update: trailing bytes");
    u
end

module Batch_codec
    (A : Uqadt.S)
    (C : Update_codec.S with type update = A.update) =
struct
  type update = (int * A.update) list

  let encode w kus =
    Codec.Writer.varint w (List.length kus);
    List.iter (encode_keyed C.encode w) kus

  let decode r =
    let n = Codec.Reader.varint r in
    List.init n (fun _ -> decode_keyed C.decode r)

  let to_string u =
    (* Batches are fanout-wide: hint past the writer's 16-byte default
       so multi-key frames build without reallocating. *)
    let w = Codec.Writer.create ~size:(4 + (12 * List.length u)) () in
    encode w u;
    Codec.Writer.contents w

  let of_string s =
    let r = Codec.Reader.of_string s in
    let u = decode r in
    if not (Codec.Reader.at_end r) then
      raise (Codec.Decode_error "keyed batch: trailing bytes");
    u
end
