module Make
    (A : Uqadt.S)
    (C : Update_codec.S with type update = A.update) =
struct
  module K = Keyed.Batch (A)
  module One = Keyed.One (A)
  module OneC = Keyed.One_codec (A) (C)
  module Inner = Generic.Make (One)
  module IC = Persist.Catchup (Inner) (OneC)

  type policy = { interval : float; hot_factor : float; max_shards : int }

  type gauges = {
    mutable ops_total : int array;  (* cumulative updates routed, by shard *)
    mutable ops_window : int array;  (* since the last policy check *)
    mutable splits : int array;  (* times this shard was split *)
    mutable ops_ctr : Obs.Registry.counter option array;
    mutable log_gauge : Obs.Registry.gauge option array;
    mutable split_ctr : Obs.Registry.counter option array;
  }

  type map = {
    mutable ring : Ring.t;
    mutable epoch : int;
    policy : policy option;
    obs : Obs.t option;
    g : gauges;
    mutable rebalances : int;
    mutable moved : int;
    moved_ctr : Obs.Registry.counter option;
    mutable timer_armed : bool;
    mutable idle_windows : int;
  }

  let grow_array a len fill =
    if Array.length a >= len then a
    else begin
      let a' = Array.make (max len (2 * Array.length a)) fill in
      Array.blit a 0 a' 0 (Array.length a);
      a'
    end

  let shard_handles obs id =
    let labels = [ ("shard", string_of_int id) ] in
    ( Obs.Registry.counter obs.Obs.registry ~labels "shard_ops",
      Obs.Registry.gauge obs.Obs.registry ~labels "shard_log_entries",
      Obs.Registry.counter obs.Obs.registry ~labels "shard_splits" )

  (* Registry handles are created here, single-threaded — during a
     parallel run the map only increments existing handles. *)
  let ensure_shard m id =
    let g = m.g in
    if id >= Array.length g.ops_total then begin
      g.ops_total <- grow_array g.ops_total (id + 1) 0;
      g.ops_window <- grow_array g.ops_window (id + 1) 0;
      g.splits <- grow_array g.splits (id + 1) 0;
      g.ops_ctr <- grow_array g.ops_ctr (id + 1) None;
      g.log_gauge <- grow_array g.log_gauge (id + 1) None;
      g.split_ctr <- grow_array g.split_ctr (id + 1) None
    end;
    match (m.obs, g.ops_ctr.(id)) with
    | Some obs, None ->
      let ops, log, split = shard_handles obs id in
      g.ops_ctr.(id) <- Some ops;
      g.log_gauge.(id) <- Some log;
      g.split_ctr.(id) <- Some split
    | _ -> ()

  let create_map ?(vnodes = 64) ?policy ?obs ~shards () =
    let ring = Ring.create ~vnodes ~shards () in
    let cap = shards in
    let m =
      {
        ring;
        epoch = 0;
        policy;
        obs = None;
        g =
          {
            ops_total = Array.make cap 0;
            ops_window = Array.make cap 0;
            splits = Array.make cap 0;
            ops_ctr = Array.make cap None;
            log_gauge = Array.make cap None;
            split_ctr = Array.make cap None;
          };
        rebalances = 0;
        moved = 0;
        moved_ctr = None;
        timer_armed = false;
        idle_windows = 0;
      }
    in
    let m =
      match obs with
      | None -> m
      | Some o ->
        {
          m with
          obs;
          moved_ctr =
            Some (Obs.Registry.counter o.Obs.registry "shard_moved_entries");
        }
    in
    List.iter (ensure_shard m) (Ring.shard_ids ring);
    m

  let ring m = m.ring

  let epoch m = m.epoch

  let rebalances m = m.rebalances

  let moved_entries m = m.moved

  let shard_ops m =
    List.map (fun s -> (s, m.g.ops_total.(s))) (Ring.shard_ids m.ring)

  (* Soak-sampler probe over the live map: cumulative routed updates
     plus the per-tick delta (the op rate) for every shard on the
     ring. Stateful — each call's delta baseline is the previous
     call's totals — so create one probe per sampler. *)
  let series_probe m =
    let last = Hashtbl.create 16 in
    fun () ->
      List.concat_map
        (fun (s, total) ->
          let prev = Option.value ~default:0 (Hashtbl.find_opt last s) in
          Hashtbl.replace last s total;
          let labels = [ ("shard", string_of_int s) ] in
          [
            ("shard_ops", labels, float_of_int total);
            ("shard_op_rate", labels, float_of_int (total - prev));
          ])
        (shard_ops m)

  let journal_event m ev =
    match m.obs with
    | Some { Obs.journal = Some j; _ } -> Obs.Journal.record j ev
    | _ -> ()

  let note_op m s =
    m.g.ops_total.(s) <- m.g.ops_total.(s) + 1;
    m.g.ops_window.(s) <- m.g.ops_window.(s) + 1;
    Option.iter (fun c -> Obs.Registry.inc c) m.g.ops_ctr.(s)

  let note_moved m count =
    m.moved <- m.moved + count;
    Option.iter (fun c -> Obs.Registry.inc ~by:count c) m.moved_ctr

  let split_hot m ~now ~hot =
    let ring', fresh = Ring.split m.ring ~hot in
    m.ring <- ring';
    m.epoch <- m.epoch + 1;
    m.rebalances <- m.rebalances + 1;
    m.g.splits.(hot) <- m.g.splits.(hot) + 1;
    Option.iter (fun c -> Obs.Registry.inc c) m.g.split_ctr.(hot);
    ensure_shard m fresh;
    journal_event m
      (Obs.Journal.Rebalance
         { time = now; hot; fresh; shards = Ring.shards ring'; moved = 0 });
    fresh

  let trigger_split m ~now ~hot = split_hot m ~now ~hot

  (* The shared map every [create] consults, set per run by
     [configure] — the [Generic.checkpoint_interval] idiom for
     plumbing run-scoped knobs through a functor-fixed signature. *)
  let current_map : map option ref = ref None

  let configure m = current_map := Some m

  include K

  type message = int * Inner.message
  (* The shard tag is the sender's routing decision; receivers re-route
     by key through the current ring, so the tag is advisory (origin
     encoding, diagnostics) and in-flight frames survive ring changes. *)

  type t = {
    ctx : message Protocol.ctx;
    map : map;
    mutable instances : Inner.t option array;
    mutable epoch_seen : int;
    outbox : (int * Inner.message) Queue.t;
  }

  let protocol_name = "sharded-universal"

  let inner_ctx t s : Inner.message Protocol.ctx =
    {
      Protocol.pid = (s * t.ctx.Protocol.n) + t.ctx.Protocol.pid;
      n = t.ctx.Protocol.n;
      now = t.ctx.Protocol.now;
      send = (fun ~dst m -> t.ctx.Protocol.send ~dst (s, m));
      broadcast = (fun m -> Queue.add (s, m) t.outbox);
      broadcast_batch =
        (fun ms -> List.iter (fun m -> Queue.add (s, m) t.outbox) ms);
      set_timer = t.ctx.Protocol.set_timer;
      count_replay = t.ctx.Protocol.count_replay;
      obs = t.ctx.Protocol.obs;
    }

  let instance t s =
    if s >= Array.length t.instances then
      t.instances <- grow_array t.instances (s + 1) None;
    match t.instances.(s) with
    | Some i -> i
    | None ->
      let i = Inner.create (inner_ctx t s) in
      t.instances.(s) <- Some i;
      i

  let live_instances t =
    let acc = ref [] in
    Array.iteri
      (fun s -> function Some i -> acc := (s, i) :: !acc | None -> ())
      t.instances;
    List.rev !acc

  let set_log_gauge t s =
    match t.instances.(s) with
    | Some i ->
      Option.iter
        (fun g -> Obs.Registry.set g (float_of_int (Inner.log_length i)))
        (if s < Array.length t.map.g.log_gauge then t.map.g.log_gauge.(s)
         else None)
    | None -> ()

  (* A migration frame is exactly the churn catch-up snapshot of the
     moved entries: the "UCS" replica frame [Persist] writes (clock +
     "UCL" log), absorbed by the target through [IC.absorb]'s
     timestamp-union merge. Shard moves ride the Join/Rejoin
     machinery, they do not reimplement it. *)
  let ucs_frame ~clock entries =
    let log = Oplog.encode_list ~encode_update:OneC.encode entries in
    let w = Codec.Writer.create ~size:(String.length log + 24) () in
    String.iter (fun c -> Codec.Writer.u8 w (Char.code c)) "UCS";
    Codec.Writer.u8 w 1;
    Codec.Writer.varint w clock;
    Codec.Writer.byte_string w log;
    Codec.Writer.contents w

  let migrate t =
    if t.epoch_seen <> t.map.epoch then begin
      t.epoch_seen <- t.map.epoch;
      let ring = t.map.ring in
      let by_target = Hashtbl.create 8 in
      let moved_count = ref 0 in
      List.iter
        (fun (s, inst) ->
          let keep, move =
            List.partition
              (fun (_, _, (k, _)) -> Ring.route ring k = s)
              (Inner.local_log inst)
          in
          if move <> [] then begin
            Inner.restore_log inst keep;
            moved_count := !moved_count + List.length move;
            List.iter
              (fun ((_, _, (k, _)) as e) ->
                let target = Ring.route ring k in
                Hashtbl.replace by_target target
                  (e
                  :: Option.value ~default:[]
                       (Hashtbl.find_opt by_target target)))
              move
          end)
        (live_instances t);
      let targets =
        Hashtbl.fold (fun s es acc -> (s, es) :: acc) by_target []
        |> List.sort compare
      in
      List.iter
        (fun (s, entries) ->
          let clock =
            List.fold_left
              (fun acc (ts, _, _) -> max acc ts.Timestamp.clock)
              0 entries
          in
          let absorbed = IC.absorb (instance t s) (ucs_frame ~clock entries) in
          assert absorbed;
          set_log_gauge t s)
        targets;
      if !moved_count > 0 then note_moved t.map !moved_count
    end

  let force_migrate = migrate

  (* Flush the frames an operation buffered — across however many
     shards it touched — as one envelope. *)
  let flush t =
    match Queue.length t.outbox with
    | 0 -> ()
    | 1 -> t.ctx.Protocol.broadcast (Queue.pop t.outbox)
    | _ ->
      let ms = ref [] in
      while not (Queue.is_empty t.outbox) do
        ms := Queue.pop t.outbox :: !ms
      done;
      t.ctx.Protocol.broadcast_batch (List.rev !ms)

  (* Hot-shard policy: every [interval], split the hottest shard when
     its window share exceeds [hot_factor] x the mean. The timer stops
     re-arming after two idle windows so the run can quiesce. *)
  let rec arm_policy t p =
    t.ctx.Protocol.set_timer ~delay:p.interval (fun () -> policy_check t p)

  and policy_check t p =
    let m = t.map in
    let ids = Ring.shard_ids m.ring in
    let total = List.fold_left (fun acc s -> acc + m.g.ops_window.(s)) 0 ids in
    if total = 0 then begin
      m.idle_windows <- m.idle_windows + 1;
      if m.idle_windows < 2 then arm_policy t p
    end
    else begin
      m.idle_windows <- 0;
      let now = t.ctx.Protocol.now () in
      List.iter
        (fun s ->
          journal_event m
            (Obs.Journal.Shard
               {
                 time = now;
                 shard = s;
                 ops = m.g.ops_window.(s);
                 log =
                   (match
                      (if s < Array.length t.instances then t.instances.(s)
                       else None)
                    with
                   | Some i -> Inner.log_length i
                   | None -> 0);
               }))
        ids;
      let shards = Ring.shards m.ring in
      let hot =
        List.fold_left
          (fun best s ->
            if m.g.ops_window.(s) > m.g.ops_window.(best) then s else best)
          (List.hd ids) ids
      in
      let mean = float_of_int total /. float_of_int shards in
      if
        shards < p.max_shards
        && total >= 2 * shards
        && float_of_int m.g.ops_window.(hot) > p.hot_factor *. mean
      then begin
        let _fresh = split_hot m ~now ~hot in
        migrate t
      end;
      List.iter (fun s -> m.g.ops_window.(s) <- 0) ids;
      arm_policy t p
    end

  let create ctx =
    let map =
      match !current_map with
      | Some m -> m
      | None ->
        invalid_arg "Space.create: configure a shard map before replicas"
    in
    let t =
      {
        ctx;
        map;
        instances = Array.make (Ring.max_id map.ring + 1) None;
        epoch_seen = map.epoch;
        outbox = Queue.create ();
      }
    in
    (match map.policy with
    | Some p when not map.timer_armed ->
      map.timer_armed <- true;
      arm_policy t p
    | _ -> ());
    t

  let update t kus ~on_done =
    migrate t;
    List.iter
      (fun ((k, _) as ku) ->
        let s = Ring.route t.map.ring k in
        note_op t.map s;
        Inner.update (instance t s) ku ~on_done:(fun () -> ());
        set_log_gauge t s)
      kus;
    flush t;
    on_done ()

  let receive t ~src (s_tag, m) =
    migrate t;
    let k, _ = Inner.message_update m in
    let s = Ring.route t.map.ring k in
    Inner.receive (instance t s) ~src:((s_tag * t.ctx.Protocol.n) + src) m;
    set_log_gauge t s;
    flush t

  let receive_batch t ~src msgs =
    match msgs with
    | [] -> ()
    | [ m ] -> receive t ~src m
    | msgs ->
      migrate t;
      (* Route the whole envelope once, grouping by (shard, epoch tag)
         with arrival order kept inside each group, so every per-shard
         Algorithm 1 core sees one merged batch. Distinct groups
         commute — they land either on different cores or in the same
         timestamp-ordered log under distinct origin encodings — so
         regrouping preserves equivalence with per-message delivery.
         Shard gauges are settled once per touched shard and the
         outbox flushed once for the whole envelope. *)
      let groups = ref [] and touched = ref [] in
      List.iter
        (fun (s_tag, m) ->
          let k, _ = Inner.message_update m in
          let s = Ring.route t.map.ring k in
          match List.assoc_opt (s, s_tag) !groups with
          | Some r -> r := m :: !r
          | None ->
            groups := ((s, s_tag), ref [ m ]) :: !groups;
            if not (List.mem s !touched) then touched := s :: !touched)
        msgs;
      List.iter
        (fun ((s, s_tag), r) ->
          Inner.receive_batch (instance t s)
            ~src:((s_tag * t.ctx.Protocol.n) + src)
            (List.rev !r))
        (List.rev !groups);
      List.iter (fun s -> set_log_gauge t s) (List.rev !touched);
      flush t

  let merged_state t =
    List.fold_left
      (fun acc (_, inst) ->
        let m = ref Support.Int_map.empty in
        Inner.query inst () ~on_result:(fun st -> m := st);
        Support.Int_map.fold Support.Int_map.add !m acc)
      Support.Int_map.empty (live_instances t)

  let query t q ~on_result =
    migrate t;
    match q with
    | K.Read (k, bq) ->
      let s = Ring.route t.map.ring k in
      Inner.query (instance t s) () ~on_result:(fun m ->
          on_result (K.Out (K.eval_key m k bq)))
    | K.Sweep -> on_result (K.eval (merged_state t) K.Sweep)

  let message_wire_size (s, m) =
    Wire.varint_size s + Inner.message_wire_size m

  let describe_message (s, m) =
    Printf.sprintf "s%d:%s" s (Inner.describe_message m)

  let log_length t =
    List.fold_left (fun acc (_, i) -> acc + Inner.log_length i) 0
      (live_instances t)

  let metadata_bytes t =
    List.fold_left (fun acc (_, i) -> acc + Inner.metadata_bytes i) 0
      (live_instances t)

  let merged_log t =
    List.concat_map (fun (_, i) -> Inner.local_log i) (live_instances t)
    |> List.sort (fun (a, _, _) (b, _, _) -> Timestamp.compare a b)

  let certificate t =
    migrate t;
    Some
      (List.map
         (fun (_, origin, ku) -> (origin mod t.ctx.Protocol.n, [ ku ]))
         (merged_log t))

  let shard_log_lengths t =
    List.map (fun (s, i) -> (s, Inner.log_length i)) (live_instances t)

  let shard_logs t =
    List.map (fun (s, i) -> (s, Inner.local_log i)) (live_instances t)

  (* Churn catch-up over the whole space: the donor snapshots every
     shard ("UCX": shard id + "UCS" frame each); the absorber merges
     shard by shard through the same path migrations use. *)
  let snapshot t =
    migrate t;
    let shards = live_instances t in
    let frames =
      List.map
        (fun (s, inst) ->
          match IC.snapshot inst with
          | Some frame -> (s, frame)
          | None -> assert false)
        shards
    in
    let size =
      List.fold_left (fun a (_, f) -> a + String.length f + 16) 8 frames
    in
    let w = Codec.Writer.create ~size () in
    String.iter (fun c -> Codec.Writer.u8 w (Char.code c)) "UCX";
    Codec.Writer.u8 w 1;
    Codec.Writer.varint w (List.length frames);
    List.iter
      (fun (s, frame) ->
        Codec.Writer.varint w s;
        Codec.Writer.byte_string w frame)
      frames;
    Some (Codec.Writer.contents w)

  let absorb t bytes =
    migrate t;
    match
      let r = Codec.Reader.of_string bytes in
      String.iter
        (fun c ->
          if Codec.Reader.u8 r <> Char.code c then
            raise (Codec.Decode_error "space snapshot: bad magic"))
        "UCX";
      if Codec.Reader.u8 r <> 1 then
        raise (Codec.Decode_error "space snapshot: unsupported version");
      let count = Codec.Reader.varint r in
      let frames =
        List.init count (fun _ ->
            let s = Codec.Reader.varint r in
            (s, Codec.Reader.byte_string r))
      in
      if not (Codec.Reader.at_end r) then
        raise (Codec.Decode_error "space snapshot: trailing bytes");
      frames
    with
    | exception Codec.Decode_error _ -> false
    | frames ->
      List.for_all
        (fun (s, frame) ->
          let ok = IC.absorb (instance t s) frame in
          if ok then set_log_gauge t s;
          ok)
        frames
end
