(** The sharded object space: a {!Protocol.PROTOCOL} whose replicas run
    one Algorithm 1 core {e per shard} — per-shard {!Oplog}s, per-shard
    Lamport clocks — behind a shared consistent-hash {!Ring}.

    Routing is by key through the {e current} ring on every operation
    and every delivery, so in-flight frames stay correct across ring
    changes. A multi-key update fans its keyed sub-updates out to their
    shards and flushes all resulting frames as {e one} envelope through
    [ctx.broadcast_batch], so a cross-shard batch costs one frame per
    destination.

    Timestamps stay unique run-wide — the invariant {!Oplog.insert}'s
    idempotence rests on — because each shard core stamps with the
    encoded identity [shard * n + pid]: no two cores anywhere share a
    (clock, pid) source, so log entries can migrate between shards
    without ever colliding.

    {b Rebalancing.} The shared map counts update routings per shard
    (the op-rate gauges); a policy timer splits the hottest shard —
    {!Ring.split}, disturbing no other shard — and bumps the map epoch.
    Each replica migrates lazily at its next event: entries whose key
    no longer routes to their shard are re-homed through the same
    snapshot frames and timestamp-union merge ({!Persist.Catchup}) that
    churn Join/Rejoin catch-up rides, so a migration is just a replica
    absorbing a snapshot of itself. With no policy the ring is static
    and replicas never share mutable state beyond the (atomic-free,
    monotone) op counters — safe for the parallel engine. *)

module Make
    (A : Uqadt.S)
    (C : Update_codec.S with type update = A.update) : sig
  module K : module type of Keyed.Batch (A)
  (** The client-facing spec: histories, monitors, fingerprints. *)

  type policy = {
    interval : float;  (** simulated time between hot-shard checks *)
    hot_factor : float;
        (** split when the hottest shard's window ops exceed
            [hot_factor] x the per-shard mean *)
    max_shards : int;  (** never grow the ring past this *)
  }

  type map
  (** The shared shard map: ring, epoch, op-rate gauges, policy. One
      per run, shared by every replica. *)

  val create_map :
    ?vnodes:int -> ?policy:policy -> ?obs:Obs.t -> shards:int -> unit -> map
  (** [obs] enables the per-shard registry rows
      ([shard_ops{shard=i}], [shard_log_entries{shard=i}],
      [shard_splits{shard=i}], [shard_moved_entries]) and journals
      [Rebalance]/[Shard] events when a journal is attached. *)

  val configure : map -> unit
  (** Set the map {!create} consults; call once per run, before
      building replicas (the [Generic.checkpoint_interval] idiom). *)

  val ring : map -> Ring.t

  val epoch : map -> int
  (** Bumped by every ring change; replicas migrate when behind. *)

  val rebalances : map -> int

  val moved_entries : map -> int
  (** Log entries re-homed by migrations, across all replicas. *)

  val shard_ops : map -> (int * int) list
  (** Cumulative updates routed to each shard, sorted by shard id. *)

  val series_probe : map -> Obs.Series.probe
  (** Sampler probe emitting [shard_ops{shard=i}] (cumulative) and
      [shard_op_rate{shard=i}] (delta since the previous tick) for
      every shard on the ring. The delta baseline lives in the probe
      closure — create one probe per sampler. *)

  val trigger_split : map -> now:float -> hot:int -> int
  (** Manual hot-shard split (tests and experiments): split [hot], bump
      the epoch, journal the [Rebalance] event, return the fresh shard
      id. Replicas migrate lazily at their next event. *)

  include
    Protocol.PROTOCOL
      with type state = K.state
       and type update = K.update
       and type query = K.query
       and type output = K.output

  val shard_log_lengths : t -> (int * int) list
  (** Per-shard log lengths of this replica, sorted by shard id
      (created shards only). *)

  val shard_logs : t -> (int * (Timestamp.t * int * (int * A.update)) list) list
  (** Per-shard inner logs (timestamp, encoded origin, keyed update) —
      the per-shard Proposition 4 differential compares these across
      replicas. *)

  val force_migrate : t -> unit
  (** Migrate now if the map epoch moved (normally lazy). *)
end
