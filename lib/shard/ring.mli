(** Consistent-hash ring: the shard map of the sharded object space.

    Keys and shards hash onto a 62-bit circle; a key belongs to the
    shard owning the first point clockwise of the key's hash. Each
    shard plants [vnodes] points, so ownership is balanced to within a
    small factor of ideal and — the property rebalancing leans on —
    membership changes disturb only the keys adjacent to the points
    that appeared or vanished:

    {ul
    {- {!add}: a key either keeps its shard or moves to the new one,
       never between two old shards;}
    {- {!remove}: only keys of the removed shard move;}
    {- {!split}: the new shard's points bisect the hot shard's arcs, so
       only the hot shard sheds keys (roughly half of them).}}

    The ring is immutable and deterministic: same construction sequence,
    same routing, on every platform. No randomness, no wall clock. *)

type t

val create : ?vnodes:int -> shards:int -> unit -> t
(** [create ~shards ()] builds a ring over shard ids [0 .. shards-1]
    with [vnodes] points each (default 64).
    @raise Invalid_argument if [shards < 1] or [vnodes < 1]. *)

val shards : t -> int
(** Number of shards currently on the ring. *)

val shard_ids : t -> int list
(** Sorted; ids of removed shards are never reused. *)

val max_id : t -> int
(** Largest shard id ever allocated (so callers can size arrays as
    [max_id + 1] whatever the removal history). *)

val vnodes : t -> int

val route : t -> int -> int
(** [route t key] is the shard owning [key]. Total over all ints. *)

val add : t -> t * int
(** Grow the ring by one shard (standard vnode placement); returns the
    new ring and the fresh shard id. Keys either stay put or move to
    the new shard. *)

val remove : t -> int -> t
(** Drop a shard's points; its keys redistribute to the survivors,
    everyone else's keys stay put.
    @raise Invalid_argument on an unknown id or the last shard. *)

val split : t -> hot:int -> t * int
(** Targeted relief: plant the fresh shard's points at the midpoints of
    [hot]'s arcs, so every key that moves comes from [hot] (about half
    of its span) and no other shard is disturbed.
    @raise Invalid_argument on an unknown [hot]. *)

val owned_share : t -> keys:int -> (int * int) list
(** Diagnostic: how many of the keys [0 .. keys-1] each shard owns,
    as a sorted [(shard, count)] list. *)

val pp : Format.formatter -> t -> unit
