(** Bounded multi-producer single-consumer queue for inter-domain
    mailboxes.

    The common case — a producer publishing into a non-full queue, the
    consumer draining a non-empty one — is lock-free: a Vyukov-style
    array ring whose per-slot sequence numbers (each an [Atomic.t])
    carry both the full/empty state and the release/acquire edges the
    payload hand-off needs. A mutex/condvar slow path is entered only
    when a side actually has to block, with waiters advertised through
    atomic counters so the uncontended path never touches the mutex.

    There must be at most one consumer ({!try_pop}/{!pop} caller);
    producers may be any number of domains. *)

type 'a t

exception Closed
(** Raised by {!try_push}/{!push} on a closed queue. *)

val create : int -> 'a t
(** A queue holding at most the given (positive) number of elements. *)

val capacity : 'a t -> int

val length : 'a t -> int
(** Instantaneous depth; racy under concurrency, exact when quiescent.
    Never negative. *)

val try_push : 'a t -> 'a -> bool
(** Enqueue without blocking; [false] when full. @raise Closed if the
    queue is closed. *)

val push : 'a t -> 'a -> unit
(** Enqueue, blocking on a condvar while the queue is full.
    @raise Closed if the queue is (or becomes) closed while waiting. *)

val try_pop : 'a t -> 'a option
(** Dequeue without blocking; [None] when empty. Single consumer only. *)

val pop_run : ?limit:int -> 'a t -> ('a -> unit) -> int
(** Drain the run of records that are ready right now — up to [limit]
    of them (default unbounded) — calling [f] on each in FIFO order,
    and return how many were consumed. One head republish and at most
    one producer wakeup for the whole run, instead of one per record;
    each slot is still released individually so producers refill
    behind the drain. Never blocks; [0] when empty. Single consumer
    only. *)

val pop : 'a t -> 'a option
(** Dequeue, blocking while the queue is empty; [None] only once the
    queue is closed {e and} drained. Single consumer only. *)

val close : 'a t -> unit
(** Mark the queue closed and wake every waiter. Pending elements
    remain poppable; further pushes raise {!Closed}. *)

val is_closed : 'a t -> bool

(** Spin-then-park adaptive backoff for retry loops around the ring —
    a bounded [Domain.cpu_relax] burst first, then exponentially
    growing (capped) parks through a caller-supplied sleep. Reset on
    success so the next stall starts cheap again. *)
module Backoff : sig
  type t

  val create :
    ?spin_limit:int ->
    ?park_min:float ->
    ?park_max:float ->
    ?park:(float -> unit) ->
    unit ->
    t
  (** [spin_limit] (default 64) pure spins before the first park;
      [park] (default: one more [Domain.cpu_relax], i.e. spin-only)
      receives the pause in seconds, growing twofold from [park_min]
      (default 1µs) to [park_max] (default 1ms).
      @raise Invalid_argument on a negative spin limit or park bounds
      violating [0 < min <= max]. *)

  val once : t -> unit
  (** Wait one step: spin while the burst lasts, park afterwards. *)

  val reset : t -> unit
  (** Declare success: the next {!once} starts a fresh cheap burst. *)

  val parks : t -> int
  (** Cumulative parks taken (never reset) — the stall observable. *)
end
