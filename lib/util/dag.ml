type t = {
  n : int;
  succ : int list array; (* reversed insertion order *)
  pred : int list array;
  edge : (int * int, unit) Hashtbl.t;
}

let create n =
  if n < 0 then invalid_arg "Dag.create: negative size";
  { n; succ = Array.make (max 1 n) []; pred = Array.make (max 1 n) []; edge = Hashtbl.create 16 }

let size g = g.n

let check g i = if i < 0 || i >= g.n then invalid_arg "Dag: node out of bounds"

let mem_edge g a b =
  check g a;
  check g b;
  Hashtbl.mem g.edge (a, b)

let add_edge g a b =
  check g a;
  check g b;
  if not (Hashtbl.mem g.edge (a, b)) then begin
    Hashtbl.add g.edge (a, b) ();
    g.succ.(a) <- b :: g.succ.(a);
    g.pred.(b) <- a :: g.pred.(b)
  end

let succs g a =
  check g a;
  List.rev g.succ.(a)

let preds g b =
  check g b;
  List.rev g.pred.(b)

let topo_order g =
  let indeg = Array.make (max 1 g.n) 0 in
  for v = 0 to g.n - 1 do
    List.iter (fun w -> indeg.(w) <- indeg.(w) + 1) g.succ.(v)
  done;
  let queue = Queue.create () in
  for v = 0 to g.n - 1 do
    if indeg.(v) = 0 then Queue.add v queue
  done;
  let order = ref [] in
  let seen = ref 0 in
  while not (Queue.is_empty queue) do
    let v = Queue.pop queue in
    order := v :: !order;
    incr seen;
    List.iter
      (fun w ->
        indeg.(w) <- indeg.(w) - 1;
        if indeg.(w) = 0 then Queue.add w queue)
      g.succ.(v)
  done;
  if !seen = g.n then Some (List.rev !order) else None

let is_acyclic g = topo_order g <> None

let reachable g =
  match topo_order g with
  | None -> invalid_arg "Dag.reachable: graph has a cycle"
  | Some order ->
    let reach = Array.init (max 1 g.n) (fun _ -> Bitset.create g.n) in
    (* Process in reverse topological order so successors are final. *)
    List.iter
      (fun v ->
        List.iter
          (fun w ->
            Bitset.set reach.(v) w;
            reach.(v) <- Bitset.union reach.(v) reach.(w))
          g.succ.(v))
      (List.rev order);
    reach

let linear_extensions g ?(limit = max_int) f =
  let indeg = Array.make (max 1 g.n) 0 in
  for v = 0 to g.n - 1 do
    List.iter (fun w -> indeg.(w) <- indeg.(w) + 1) g.succ.(v)
  done;
  let available = ref [] in
  for v = g.n - 1 downto 0 do
    if indeg.(v) = 0 then available := v :: !available
  done;
  let current = Array.make g.n 0 in
  let visited = ref 0 in
  let exception Found in
  let exception Cutoff in
  (* Classic Varol-Rotem style backtracking over the ready set. *)
  let rec go depth avail =
    if depth = g.n then begin
      incr visited;
      if f current then raise Found;
      if !visited >= limit then raise Cutoff
    end
    else begin
      let rec try_each before = function
        | [] -> ()
        | v :: rest ->
          current.(depth) <- v;
          let newly =
            List.filter
              (fun w ->
                indeg.(w) <- indeg.(w) - 1;
                indeg.(w) = 0)
              g.succ.(v)
          in
          go (depth + 1) (List.rev_append before (newly @ rest));
          List.iter (fun w -> indeg.(w) <- indeg.(w) + 1) g.succ.(v);
          try_each (v :: before) rest
      in
      try_each [] avail
    end
  in
  match go 0 !available with
  | () -> false
  | exception Found -> true
  | exception Cutoff -> false

let count_linear_extensions g ~limit =
  let count = ref 0 in
  let (_ : bool) =
    linear_extensions g ~limit (fun _ ->
        incr count;
        false)
  in
  !count
