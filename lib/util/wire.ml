let varint_size n =
  if n < 0 then invalid_arg "Wire.varint_size: negative";
  let rec go n acc = if n < 128 then acc else go (n lsr 7) (acc + 1) in
  go n 1

let string_size s = varint_size (String.length s) + String.length s

let pair_size a b = varint_size a + varint_size b

let list_size elt xs =
  List.fold_left (fun acc x -> acc + elt x) (varint_size (List.length xs)) xs
