(** Fixed-capacity bitsets over [0 .. capacity-1].

    The consistency checkers explore sets of update events (the visibility
    sets [V(q)] of Definitions 6 and 9); bitsets make membership, union and
    equality O(capacity/63) and hashable, which keeps the backtracking
    searches tractable. *)

type t

val create : int -> t
(** [create n] is the empty set with capacity [n] (indices [0..n-1]). *)

val capacity : t -> int

val copy : t -> t

val mem : t -> int -> bool

val add : t -> int -> t
(** Functional insert: returns a new set. *)

val remove : t -> int -> t

val set : t -> int -> unit
(** In-place insert. *)

val unset : t -> int -> unit

val union : t -> t -> t

val inter : t -> t -> t

val diff : t -> t -> t

val equal : t -> t -> bool

val subset : t -> t -> bool
(** [subset a b] is true iff every member of [a] is in [b]. *)

val is_empty : t -> bool

val cardinal : t -> int

val compare : t -> t -> int

val hash : t -> int

val iter : (int -> unit) -> t -> unit

val fold : (int -> 'a -> 'a) -> t -> 'a -> 'a

val elements : t -> int list

val of_list : int -> int list -> t
(** [of_list n xs] is the set with capacity [n] containing [xs]. *)

val full : int -> t
(** [full n] contains every index in [0..n-1]. *)

val pp : Format.formatter -> t -> unit
