(** Deterministic pseudo-random number generator.

    Simulations must be reproducible from a single integer seed,
    independently of the OCaml standard library version, so this module
    implements the SplitMix64 generator (Steele, Lea & Flood, OOPSLA'14).
    Each generator is an isolated mutable stream; {!split} derives an
    independent stream, which lets every simulated process own its own
    generator while the whole run stays a pure function of the root
    seed. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator initialised from [seed]. *)

val copy : t -> t
(** [copy g] is a generator that will produce the same stream as [g]. *)

val split : t -> t
(** [split g] advances [g] and returns a new generator seeded from its
    output. The child keeps the parent's additive constant, which is
    fine for the simulator's per-process streams (every child is
    re-seeded by a full mix) and keeps historical seeded runs
    byte-identical; for streams consumed concurrently at scale prefer
    {!fork}. *)

val fork : t -> t
(** [fork g] advances [g] twice and returns a statistically independent
    child stream: the full SplitMix64 [split] of Steele, Lea & Flood
    (OOPSLA'14), drawing both the child's seed and a fresh odd additive
    constant (gamma) so parent and child never walk the same Weyl
    sequence. Deterministic: the same parent state always yields the
    same child. Used for per-domain client streams in the parallel
    engine. *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int g bound] is uniform in [\[0, bound)]. [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in g lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float g bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val exponential : t -> mean:float -> float
(** Exponentially distributed sample with the given mean. *)

val pareto : t -> scale:float -> shape:float -> float
(** Pareto (heavy-tail) sample; [shape] > 0, [scale] > 0. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choice : t -> 'a array -> 'a
(** Uniformly random element of a non-empty array. *)

val sample_weighted : t -> (float * 'a) list -> 'a
(** Sample proportionally to the (strictly positive) weights. *)
