(** Binary encoding primitives: unsigned LEB128 varints plus tag bytes,
    the concrete encoding whose sizes {!Wire} accounts for. The update
    codecs ({!Update_codec}) are built on these, and the tests assert
    that every encoded update occupies exactly the bytes its ADT's
    [update_wire_size] claims — so the message-complexity experiment
    (C1) measures a real wire format, not an estimate. *)

exception Decode_error of string

(** Append-only binary writer. *)
module Writer : sig
  type t

  val create : ?size:int -> unit -> t
  (** [size] pre-allocates the underlying buffer (default 16 bytes) —
      callers that can compute an exact frame size with {!Wire} avoid
      every growth copy. *)

  val u8 : t -> int -> unit
  (** One byte; must be in [0, 255]. *)

  val varint : t -> int -> unit
  (** LEB128; must be non-negative. *)

  val byte_string : t -> string -> unit
  (** Varint length prefix followed by the bytes. *)

  val contents : t -> string

  val length : t -> int
end

(** Sequential binary reader. *)
module Reader : sig
  type t

  val of_string : string -> t

  val u8 : t -> int

  val varint : t -> int

  val byte_string : t -> string

  val at_end : t -> bool
  (** All input consumed — decoders check this for canonical frames.
      @raise Decode_error on truncated input in the functions above. *)
end
