type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let mean xs =
  match xs with
  | [] -> invalid_arg "Stats.mean: empty sample"
  | _ -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let stddev xs =
  let m = mean xs in
  let var =
    List.fold_left (fun acc x -> acc +. ((x -. m) *. (x -. m))) 0.0 xs
    /. float_of_int (List.length xs)
  in
  (* All-equal samples can leave var a hair below zero in floating
     point, and sqrt of that is NaN. *)
  sqrt (Float.max 0.0 var)

let percentile sorted q =
  let n = Array.length sorted in
  if n = 0 then invalid_arg "Stats.percentile: empty sample";
  if q < 0.0 || q > 1.0 then invalid_arg "Stats.percentile: q out of range";
  let rank = q *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else begin
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))
  end

let summarize xs =
  match xs with
  | [] -> invalid_arg "Stats.summarize: empty sample"
  | _ ->
    let sorted = Array.of_list xs in
    Array.sort Float.compare sorted;
    {
      count = Array.length sorted;
      mean = mean xs;
      stddev = stddev xs;
      min = sorted.(0);
      max = sorted.(Array.length sorted - 1);
      p50 = percentile sorted 0.5;
      p90 = percentile sorted 0.9;
      p99 = percentile sorted 0.99;
    }

let pp_summary ppf s =
  Format.fprintf ppf
    "n=%d mean=%.3f sd=%.3f min=%.3f p50=%.3f p90=%.3f p99=%.3f max=%.3f"
    s.count s.mean s.stddev s.min s.p50 s.p90 s.p99 s.max

type slo = {
  target : float;
  count : int;
  p50 : float;
  p99 : float;
  max : float;
  violations : int;
  compliance : float;
}

let slo ~target xs =
  match xs with
  | [] -> invalid_arg "Stats.slo: empty sample"
  | _ ->
    let s = summarize xs in
    let violations = List.length (List.filter (fun x -> x > target) xs) in
    {
      target;
      count = s.count;
      p50 = s.p50;
      p99 = s.p99;
      max = s.max;
      violations;
      compliance = 1.0 -. (float_of_int violations /. float_of_int s.count);
    }

(* One logical operation can fan out into several timed sub-operations
   (a storm arrival touching many shards); judging each sub-latency
   separately would overweight wide arrivals and undercount misses —
   the arrival is only as fast as its slowest leg. *)
let slo_by_key ~target samples =
  match samples with
  | [] -> invalid_arg "Stats.slo_by_key: empty sample"
  | _ ->
    let worst = Hashtbl.create 64 in
    List.iter
      (fun (k, x) ->
        match Hashtbl.find_opt worst k with
        | Some y when y >= x -> ()
        | _ -> Hashtbl.replace worst k x)
      samples;
    slo ~target (Hashtbl.fold (fun _ x acc -> x :: acc) worst [])

let pp_slo ppf s =
  Format.fprintf ppf
    "target=%.3f n=%d p50=%.3f p99=%.3f max=%.3f violations=%d (%.1f%% compliant) %s"
    s.target s.count s.p50 s.p99 s.max s.violations (100.0 *. s.compliance)
    (if s.p99 <= s.target then "MET" else "MISSED")

(* ------------------------- sliding windows --------------------------- *)

(* A bounded buffer of the most recent samples: the soak sampler's
   memory for "p99 over the last W operations". A plain circular array
   — pushing is O(1), summarizing is O(W log W) and happens once per
   sample tick, never per operation. *)
type window = {
  cap : int;
  buf : float array;
  mutable filled : int;  (* samples held, <= cap *)
  mutable next : int;  (* slot the next push overwrites *)
  mutable pushed : int;  (* samples ever offered *)
}

let window ~capacity =
  if capacity <= 0 then invalid_arg "Stats.window: capacity must be positive";
  { cap = capacity; buf = Array.make capacity 0.0; filled = 0; next = 0; pushed = 0 }

let window_push w x =
  w.buf.(w.next) <- x;
  w.next <- (w.next + 1) mod w.cap;
  if w.filled < w.cap then w.filled <- w.filled + 1;
  w.pushed <- w.pushed + 1

let window_length w = w.filled

let window_pushed w = w.pushed

let window_samples w =
  (* Oldest first; order only matters to callers that render, the
     percentile paths sort anyway. *)
  List.init w.filled (fun i ->
      w.buf.((w.next - w.filled + i + (2 * w.cap)) mod w.cap))

let window_summary w =
  if w.filled = 0 then None else Some (summarize (window_samples w))

let window_slo ~target w =
  if w.filled = 0 then None else Some (slo ~target (window_samples w))

type histogram = { lo : float; width : float; counts : int array }

let histogram ~buckets xs =
  if buckets <= 0 then invalid_arg "Stats.histogram: buckets must be positive";
  match xs with
  | [] -> invalid_arg "Stats.histogram: empty sample"
  | x0 :: _ ->
    let lo = List.fold_left Float.min x0 xs in
    let hi = List.fold_left Float.max x0 xs in
    let width =
      let w = (hi -. lo) /. float_of_int buckets in
      if w <= 0.0 then 1.0 else w
    in
    let counts = Array.make buckets 0 in
    let bucket_of x =
      let b = int_of_float ((x -. lo) /. width) in
      if b >= buckets then buckets - 1 else if b < 0 then 0 else b
    in
    List.iter (fun x -> let b = bucket_of x in counts.(b) <- counts.(b) + 1) xs;
    { lo; width; counts }

let pp_histogram ppf h =
  let max_count = Array.fold_left max 1 h.counts in
  Array.iteri
    (fun i c ->
      let bar_len = c * 40 / max_count in
      Format.fprintf ppf "[%10.3f, %10.3f) %6d %s@."
        (h.lo +. (float_of_int i *. h.width))
        (h.lo +. (float_of_int (i + 1) *. h.width))
        c
        (String.concat "" (List.init bar_len (fun _ -> "#"))))
    h.counts
