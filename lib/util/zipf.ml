type t = { n : int; cdf : float array }

let create ~n ~s =
  if n <= 0 then invalid_arg "Zipf.create: n must be positive";
  if s < 0.0 then invalid_arg "Zipf.create: s must be non-negative";
  let cdf = Array.make n 0.0 in
  let acc = ref 0.0 in
  for k = 1 to n do
    acc := !acc +. (1.0 /. (float_of_int k ** s));
    cdf.(k - 1) <- !acc
  done;
  let total = !acc in
  Array.iteri (fun i x -> cdf.(i) <- x /. total) cdf;
  { n; cdf }

let sample t rng =
  let u = Prng.float rng 1.0 in
  (* smallest index with cdf.(i) >= u *)
  let rec search lo hi =
    if lo >= hi then lo
    else begin
      let mid = (lo + hi) / 2 in
      if t.cdf.(mid) >= u then search lo mid else search (mid + 1) hi
    end
  in
  1 + search 0 (t.n - 1)

let support t = t.n
