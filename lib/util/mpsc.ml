(* Bounded multi-producer single-consumer mailbox.

   The fast path is a Vyukov-style array ring: every slot carries a
   sequence number in an [Atomic.t]; producers claim a slot by CAS on
   the tail ticket, publish the value, then release the slot by bumping
   its sequence; the single consumer reads its head ticket without any
   synchronisation of its own and releases slots by setting the
   sequence one lap ahead. The slot sequences are the only
   happens-before edges a transfer needs (the OCaml memory model makes
   an [Atomic.set] after the plain payload write a release, and the
   consumer's [Atomic.get] before the payload read an acquire).

   The slow path is a mutex/condvar pair used only when a side actually
   has to wait: waiters advertise themselves through an atomic counter
   before sleeping, and the other side takes the lock to signal only
   when that counter is non-zero, so the uncontended transfer never
   touches the mutex. *)

type 'a t = {
  buf : 'a option array;
  seq : int Atomic.t array;
  cap : int;
  tail : int Atomic.t;  (* next producer ticket *)
  mutable head : int;  (* next consumer ticket; single consumer *)
  head_pub : int Atomic.t;  (* head republished for producers' depth view *)
  closed : bool Atomic.t;
  lock : Mutex.t;
  nonempty : Condition.t;
  nonfull : Condition.t;
  sleeping_consumers : int Atomic.t;
  sleeping_producers : int Atomic.t;
}

exception Closed

let create cap =
  if cap <= 0 then invalid_arg "Mpsc.create: capacity must be positive";
  {
    buf = Array.make cap None;
    seq = Array.init cap Atomic.make;
    cap;
    tail = Atomic.make 0;
    head = 0;
    head_pub = Atomic.make 0;
    closed = Atomic.make false;
    lock = Mutex.create ();
    nonempty = Condition.create ();
    nonfull = Condition.create ();
    sleeping_consumers = Atomic.make 0;
    sleeping_producers = Atomic.make 0;
  }

let capacity t = t.cap

let length t = max 0 (Atomic.get t.tail - Atomic.get t.head_pub)

let is_closed t = Atomic.get t.closed

(* Ring transfer without any wakeups — shared by the lock-free public
   entry points and the locked slow paths (which must not re-take the
   mutex they already hold). *)

let rec push_raw t v =
  let ticket = Atomic.get t.tail in
  let slot = ticket mod t.cap in
  let s = Atomic.get t.seq.(slot) in
  if s = ticket then
    if Atomic.compare_and_set t.tail ticket (ticket + 1) then begin
      t.buf.(slot) <- Some v;
      Atomic.set t.seq.(slot) (ticket + 1);
      true
    end
    else push_raw t v (* lost the ticket race; retry *)
  else if s < ticket then false (* slot still holds the previous lap: full *)
  else push_raw t v (* another producer advanced the tail under us *)

let pop_raw t =
  let ticket = t.head in
  let slot = ticket mod t.cap in
  let s = Atomic.get t.seq.(slot) in
  if s = ticket + 1 then begin
    let v = t.buf.(slot) in
    t.buf.(slot) <- None;
    Atomic.set t.seq.(slot) (ticket + t.cap);
    t.head <- ticket + 1;
    Atomic.set t.head_pub (ticket + 1);
    v
  end
  else None

(* Wake the other side if (and only if) it advertised itself as asleep.
   The waiter increments its counter and re-checks the ring while
   holding the lock, so taking the lock here before signalling closes
   the lost-wakeup window. *)
let wake_consumer t =
  if Atomic.get t.sleeping_consumers > 0 then begin
    Mutex.lock t.lock;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.lock
  end

let wake_producers t =
  if Atomic.get t.sleeping_producers > 0 then begin
    Mutex.lock t.lock;
    Condition.broadcast t.nonfull;
    Mutex.unlock t.lock
  end

let try_push t v =
  if Atomic.get t.closed then raise Closed;
  if push_raw t v then begin
    wake_consumer t;
    true
  end
  else false

let push t v =
  if Atomic.get t.closed then raise Closed;
  if push_raw t v then wake_consumer t
  else begin
    Mutex.lock t.lock;
    Atomic.incr t.sleeping_producers;
    let rec wait () =
      if Atomic.get t.closed then begin
        Atomic.decr t.sleeping_producers;
        Mutex.unlock t.lock;
        raise Closed
      end
      else if push_raw t v then begin
        Atomic.decr t.sleeping_producers;
        (* The consumer may be asleep on [nonempty] with the lock
           released inside [Condition.wait]; we already hold it. *)
        Condition.broadcast t.nonempty;
        Mutex.unlock t.lock
      end
      else begin
        Condition.wait t.nonfull t.lock;
        wait ()
      end
    in
    wait ()
  end

let try_pop t =
  match pop_raw t with
  | Some _ as v ->
    wake_producers t;
    v
  | None -> None

(* Batch dequeue: consume the whole run of ready slots in one pass.
   Each slot's sequence is still released individually — producers
   claim slots by per-slot sequence, so releasing early lets them
   refill behind the consumer — but the head is republished once and
   sleeping producers are woken once per run instead of once per
   record. Single consumer only, like [try_pop]. *)
let pop_run ?limit t f =
  let limit = match limit with None -> max_int | Some l -> l in
  let n = ref 0 in
  let running = ref (limit > 0) in
  while !running do
    let ticket = t.head in
    let slot = ticket mod t.cap in
    let s = Atomic.get t.seq.(slot) in
    if s = ticket + 1 then begin
      let v = t.buf.(slot) in
      t.buf.(slot) <- None;
      Atomic.set t.seq.(slot) (ticket + t.cap);
      t.head <- ticket + 1;
      incr n;
      if !n >= limit then running := false;
      match v with Some v -> f v | None -> assert false
    end
    else running := false
  done;
  if !n > 0 then begin
    Atomic.set t.head_pub t.head;
    wake_producers t
  end;
  !n

let pop t =
  match pop_raw t with
  | Some _ as v ->
    wake_producers t;
    v
  | None ->
    Mutex.lock t.lock;
    Atomic.incr t.sleeping_consumers;
    let rec wait () =
      match pop_raw t with
      | Some _ as v ->
        Atomic.decr t.sleeping_consumers;
        Condition.broadcast t.nonfull;
        Mutex.unlock t.lock;
        v
      | None ->
        if Atomic.get t.closed then begin
          Atomic.decr t.sleeping_consumers;
          Mutex.unlock t.lock;
          None
        end
        else begin
          Condition.wait t.nonempty t.lock;
          wait ()
        end
    in
    wait ()

let close t =
  Mutex.lock t.lock;
  Atomic.set t.closed true;
  Condition.broadcast t.nonempty;
  Condition.broadcast t.nonfull;
  Mutex.unlock t.lock

(* Spin-then-park adaptive backoff for callers that must retry a ring
   operation while staying responsive to other duties (the engine's
   delivery loop drains its own mailbox between retries, so it cannot
   simply block in [push]). A bounded burst of [Domain.cpu_relax]
   spins covers the common case of a consumer a few instructions away;
   past that the caller-supplied [park] is invoked with an
   exponentially growing pause, capped, and reset on success — so a
   transient stall costs nanoseconds while a genuinely full mailbox
   degrades to a polite poll instead of a condvar stampede. *)
module Backoff = struct
  type t = {
    spin_limit : int;
    park_min : float;
    park_max : float;
    park : float -> unit;
    mutable spins : int;
    mutable pause : float;
    mutable parks : int;
  }

  let create ?(spin_limit = 64) ?(park_min = 1e-6) ?(park_max = 1e-3)
      ?(park = fun (_ : float) -> Domain.cpu_relax ()) () =
    if spin_limit < 0 then invalid_arg "Mpsc.Backoff.create: negative spin limit";
    if park_min <= 0.0 || park_max < park_min then
      invalid_arg "Mpsc.Backoff.create: park bounds must satisfy 0 < min <= max";
    {
      spin_limit;
      park_min;
      park_max;
      park;
      spins = 0;
      pause = park_min;
      parks = 0;
    }

  let reset b =
    b.spins <- 0;
    b.pause <- b.park_min

  let once b =
    if b.spins < b.spin_limit then begin
      b.spins <- b.spins + 1;
      Domain.cpu_relax ()
    end
    else begin
      b.parks <- b.parks + 1;
      b.park b.pause;
      b.pause <- Float.min b.park_max (b.pause *. 2.0)
    end

  let parks b = b.parks
end
