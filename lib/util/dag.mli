(** Directed graphs over integer nodes [0..n-1].

    Histories carry their program order as a DAG; the checkers need
    topological orders, reachability (transitive closure) and linear-
    extension enumeration (the linearizations of Definition 3). *)

type t

val create : int -> t
(** [create n] is the edgeless graph on nodes [0..n-1]. *)

val size : t -> int

val add_edge : t -> int -> int -> unit
(** [add_edge g a b] adds a → b. Duplicate edges are ignored. *)

val mem_edge : t -> int -> int -> bool

val succs : t -> int -> int list
(** Successors, in insertion order. *)

val preds : t -> int -> int list

val is_acyclic : t -> bool

val topo_order : t -> int list option
(** Some topological order, or [None] if the graph has a cycle. *)

val reachable : t -> Bitset.t array
(** [reachable g] maps each node to the bitset of nodes reachable from it
    (excluding itself unless on a cycle). O(V·E/63). *)

val linear_extensions : t -> ?limit:int -> (int array -> bool) -> bool
(** [linear_extensions g f] enumerates linear extensions of the DAG,
    calling [f] on each (the array is reused — copy it to keep it). Stops
    and returns [true] as soon as [f] returns [true]; returns [false] when
    the enumeration is exhausted (or [limit] extensions were visited)
    without [f] accepting. *)

val count_linear_extensions : t -> limit:int -> int
(** Number of linear extensions, counting at most [limit]. *)
