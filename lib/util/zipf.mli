(** Zipf-distributed sampling over ranks [1..n].

    Workload generators use this to produce skewed element popularity (a
    few hot keys receive most of the updates), which is the regime where
    concurrent insert/delete conflicts — the interesting case for update
    consistency — actually occur. *)

type t

val create : n:int -> s:float -> t
(** [create ~n ~s] prepares a sampler over [1..n] with exponent [s >= 0].
    [s = 0] degenerates to the uniform distribution. Precomputes the CDF
    in O(n). *)

val sample : t -> Prng.t -> int
(** A rank in [1..n], O(log n) per draw by binary search on the CDF. *)

val support : t -> int
