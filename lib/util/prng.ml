type t = { mutable state : int64; gamma : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed; gamma = golden_gamma }

let copy g = { state = g.state; gamma = g.gamma }

(* SplitMix64 output function: one additive step then two xor-shift
   multiplications (finalizer of MurmurHash3 with Stafford's mix13
   constants). Every generator the repo made before [fork] existed used
   the golden-ratio gamma, and [create]/[split] still do, so seeded
   sequences are unchanged. *)
let bits64 g =
  g.state <- Int64.add g.state g.gamma;
  let z = g.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split g =
  let seed = bits64 g in
  { state = seed; gamma = golden_gamma }

(* MurmurHash3's fmix64 with Stafford's "variant 13" shifts — the mixer
   SplitMix64 prescribes for deriving gammas, deliberately different
   from the mix13 output function above so a child's gamma is not a
   value of the parent's stream. *)
let mix_variant13 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xFF51AFD7ED558CCDL in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0xC4CEB9FE1A85EC53L in
  Int64.logxor z (Int64.shift_right_logical z 31)

let popcount64 z =
  let c = ref 0 in
  for i = 0 to 63 do
    if Int64.logand (Int64.shift_right_logical z i) 1L = 1L then incr c
  done;
  !c

let fork g =
  (* Draw the child's seed with the parent's output function, then its
     gamma from the next raw state with the variant-13 mixer, forced
     odd; gammas with too regular a bit pattern (< 24 transitions) are
     xor-scrambled, per Steele, Lea & Flood §5. *)
  let seed = bits64 g in
  g.state <- Int64.add g.state g.gamma;
  let z = Int64.logor (mix_variant13 g.state) 1L in
  let gamma =
    if popcount64 (Int64.logxor z (Int64.shift_right_logical z 1)) < 24 then
      Int64.logxor z 0xAAAAAAAAAAAAAAAAL
    else z
  in
  { state = seed; gamma }

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling on the top 62 bits to avoid modulo bias. *)
  let mask = max_int in
  let rec draw () =
    let r = Int64.to_int (Int64.shift_right_logical (bits64 g) 2) land mask in
    let v = r mod bound in
    if r - v > mask - bound + 1 then draw () else v
  in
  draw ()

let int_in g lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int g (hi - lo + 1)

let float g bound =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 g) 11) in
  bound *. (r /. 9007199254740992.0 (* 2^53 *))

let bool g = Int64.logand (bits64 g) 1L = 1L

let exponential g ~mean =
  let u = 1.0 -. float g 1.0 in
  -.mean *. log u

let pareto g ~scale ~shape =
  let u = 1.0 -. float g 1.0 in
  scale /. (u ** (1.0 /. shape))

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choice g a =
  if Array.length a = 0 then invalid_arg "Prng.choice: empty array";
  a.(int g (Array.length a))

let sample_weighted g weighted =
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 weighted in
  if total <= 0.0 then invalid_arg "Prng.sample_weighted: weights must be positive";
  let target = float g total in
  let rec pick acc = function
    | [] -> invalid_arg "Prng.sample_weighted: empty list"
    | [ (_, x) ] -> x
    | (w, x) :: rest -> if acc +. w > target then x else pick (acc +. w) rest
  in
  pick 0.0 weighted
