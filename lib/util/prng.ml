type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create seed = { state = Int64.of_int seed }

let copy g = { state = g.state }

(* SplitMix64 output function: one additive step then two xor-shift
   multiplications (finalizer of MurmurHash3 with Stafford's mix13
   constants). *)
let bits64 g =
  g.state <- Int64.add g.state golden_gamma;
  let z = g.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split g =
  let seed = bits64 g in
  { state = seed }

let int g bound =
  if bound <= 0 then invalid_arg "Prng.int: bound must be positive";
  (* Rejection sampling on the top 62 bits to avoid modulo bias. *)
  let mask = max_int in
  let rec draw () =
    let r = Int64.to_int (Int64.shift_right_logical (bits64 g) 2) land mask in
    let v = r mod bound in
    if r - v > mask - bound + 1 then draw () else v
  in
  draw ()

let int_in g lo hi =
  if hi < lo then invalid_arg "Prng.int_in: empty range";
  lo + int g (hi - lo + 1)

let float g bound =
  let r = Int64.to_float (Int64.shift_right_logical (bits64 g) 11) in
  bound *. (r /. 9007199254740992.0 (* 2^53 *))

let bool g = Int64.logand (bits64 g) 1L = 1L

let exponential g ~mean =
  let u = 1.0 -. float g 1.0 in
  -.mean *. log u

let pareto g ~scale ~shape =
  let u = 1.0 -. float g 1.0 in
  scale /. (u ** (1.0 /. shape))

let shuffle g a =
  for i = Array.length a - 1 downto 1 do
    let j = int g (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choice g a =
  if Array.length a = 0 then invalid_arg "Prng.choice: empty array";
  a.(int g (Array.length a))

let sample_weighted g weighted =
  let total = List.fold_left (fun acc (w, _) -> acc +. w) 0.0 weighted in
  if total <= 0.0 then invalid_arg "Prng.sample_weighted: weights must be positive";
  let target = float g total in
  let rec pick acc = function
    | [] -> invalid_arg "Prng.sample_weighted: empty list"
    | [ (_, x) ] -> x
    | (w, x) :: rest -> if acc +. w > target then x else pick (acc +. w) rest
  in
  pick 0.0 weighted
