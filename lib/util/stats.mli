(** Descriptive statistics for benchmark and convergence measurements. *)

type summary = {
  count : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

val summarize : float list -> summary
(** Summary of a non-empty sample; raises [Invalid_argument] on []. *)

val percentile : float array -> float -> float
(** [percentile sorted q] with [q] in [\[0,1\]]; [sorted] must be sorted
    ascending and non-empty. Linear interpolation between ranks. *)

val mean : float list -> float

val stddev : float list -> float
(** Population standard deviation. *)

val pp_summary : Format.formatter -> summary -> unit

type slo = {
  target : float;  (** latency objective the sample is judged against *)
  count : int;
  p50 : float;
  p99 : float;
  max : float;
  violations : int;  (** samples strictly above [target] *)
  compliance : float;  (** fraction of samples at or under [target] *)
}

val slo : target:float -> float list -> slo
(** SLO report of a non-empty latency sample against [target]; raises
    [Invalid_argument] on []. The objective is judged "met" when the
    p99 is at or under the target (see {!pp_slo}). *)

val slo_by_key : target:float -> (int * float) list -> slo
(** SLO report over keyed samples, one verdict per distinct key: samples
    sharing a key are collapsed to their maximum before judging. Use
    when one logical operation fans out into several timed
    sub-operations (an arrival touching many shards) — the operation is
    only as fast as its slowest leg, and counting each leg separately
    would overweight wide fan-outs. Raises [Invalid_argument] on []. *)

val pp_slo : Format.formatter -> slo -> unit

type window
(** Fixed-capacity sliding window over the most recent samples. Pushing
    is O(1) and never allocates after construction, so a window can sit
    on the hot path of a week-long soak without growing. *)

val window : capacity:int -> window
(** Raises [Invalid_argument] when [capacity <= 0]. *)

val window_push : window -> float -> unit
(** Records a sample, evicting the oldest once [capacity] is held. *)

val window_length : window -> int
(** Samples currently held, at most the capacity. *)

val window_pushed : window -> int
(** Samples ever offered, including evicted ones. *)

val window_samples : window -> float list
(** Retained samples, oldest first. *)

val window_summary : window -> summary option
(** [None] while the window is empty. *)

val window_slo : target:float -> window -> slo option
(** {!slo} over the retained samples; [None] while the window is
    empty — the windowed variant never raises. *)

type histogram

val histogram : buckets:int -> float list -> histogram
(** Equal-width histogram over the sample range. *)

val pp_histogram : Format.formatter -> histogram -> unit
(** Renders the histogram with unicode bars, one bucket per line. *)
