exception Decode_error of string

module Writer = struct
  type t = Buffer.t

  let create ?(size = 16) () = Buffer.create size

  let u8 t b =
    if b < 0 || b > 255 then invalid_arg "Codec.Writer.u8: out of range";
    Buffer.add_char t (Char.chr b)

  let varint t n =
    if n < 0 then invalid_arg "Codec.Writer.varint: negative";
    let rec go n =
      if n < 128 then Buffer.add_char t (Char.chr n)
      else begin
        Buffer.add_char t (Char.chr (128 lor (n land 127)));
        go (n lsr 7)
      end
    in
    go n

  let byte_string t s =
    varint t (String.length s);
    Buffer.add_string t s

  let contents = Buffer.contents

  let length = Buffer.length
end

module Reader = struct
  type t = { data : string; mutable pos : int }

  let of_string data = { data; pos = 0 }

  let u8 t =
    if t.pos >= String.length t.data then raise (Decode_error "u8: truncated");
    let b = Char.code t.data.[t.pos] in
    t.pos <- t.pos + 1;
    b

  let varint t =
    let rec go shift acc =
      if shift > 62 then raise (Decode_error "varint: too long");
      let b = u8 t in
      let acc = acc lor ((b land 127) lsl shift) in
      if b < 128 then acc else go (shift + 7) acc
    in
    go 0 0

  let byte_string t =
    let len = varint t in
    if t.pos + len > String.length t.data then raise (Decode_error "byte_string: truncated");
    let s = String.sub t.data t.pos len in
    t.pos <- t.pos + len;
    s

  let at_end t = t.pos = String.length t.data
end
