type align = Left | Right | Center

type row = Cells of string list | Separator

type t = {
  headers : string list;
  aligns : align list;
  mutable rows : row list; (* reversed *)
}

let create ?aligns headers =
  let aligns =
    match aligns with
    | Some a -> a
    | None -> List.map (fun _ -> Left) headers
  in
  { headers; aligns; rows = [] }

let add_row t cells =
  if List.length cells > List.length t.headers then
    invalid_arg "Table.add_row: more cells than headers";
  t.rows <- Cells cells :: t.rows

let add_sep t = t.rows <- Separator :: t.rows

let column_count t = List.length t.headers

let cell_at row i = match List.nth_opt row i with Some c -> c | None -> ""

let widths t =
  let n = column_count t in
  let w = Array.make n 0 in
  let measure cells =
    List.iteri (fun i c -> if i < n then w.(i) <- max w.(i) (String.length c)) cells
  in
  measure t.headers;
  List.iter (function Cells c -> measure c | Separator -> ()) t.rows;
  w

let pad align width s =
  let len = String.length s in
  if len >= width then s
  else begin
    let fill = width - len in
    match align with
    | Left -> s ^ String.make fill ' '
    | Right -> String.make fill ' ' ^ s
    | Center ->
      let left = fill / 2 in
      String.make left ' ' ^ s ^ String.make (fill - left) ' '
  end

let align_at t i = match List.nth_opt t.aligns i with Some a -> a | None -> Left

let render t =
  let w = widths t in
  let n = column_count t in
  let buf = Buffer.create 256 in
  let line () =
    Buffer.add_char buf '+';
    Array.iter
      (fun width ->
        Buffer.add_string buf (String.make (width + 2) '-');
        Buffer.add_char buf '+')
      w;
    Buffer.add_char buf '\n'
  in
  let emit cells =
    Buffer.add_char buf '|';
    for i = 0 to n - 1 do
      Buffer.add_char buf ' ';
      Buffer.add_string buf (pad (align_at t i) w.(i) (cell_at cells i));
      Buffer.add_string buf " |"
    done;
    Buffer.add_char buf '\n'
  in
  line ();
  emit t.headers;
  line ();
  List.iter (function Cells c -> emit c | Separator -> line ()) (List.rev t.rows);
  line ();
  Buffer.contents buf

let render_markdown t =
  let w = widths t in
  let n = column_count t in
  let buf = Buffer.create 256 in
  let emit cells =
    Buffer.add_char buf '|';
    for i = 0 to n - 1 do
      Buffer.add_char buf ' ';
      Buffer.add_string buf (pad (align_at t i) w.(i) (cell_at cells i));
      Buffer.add_string buf " |"
    done;
    Buffer.add_char buf '\n'
  in
  emit t.headers;
  Buffer.add_char buf '|';
  for i = 0 to n - 1 do
    let dashes = String.make (max 3 w.(i)) '-' in
    let cell =
      match align_at t i with
      | Left -> ":" ^ dashes ^ " "
      | Right -> " " ^ dashes ^ ":"
      | Center -> ":" ^ dashes ^ ":"
    in
    Buffer.add_string buf cell;
    Buffer.add_char buf '|'
  done;
  Buffer.add_char buf '\n';
  List.iter (function Cells c -> emit c | Separator -> ()) (List.rev t.rows);
  Buffer.contents buf

let print t =
  print_string (render t);
  flush stdout
