type t = int64

(* FNV-1a, 64-bit: hash = (hash xor byte) * prime, per byte. *)

let prime = 0x100000001b3L

let empty = 0xcbf29ce484222325L

let byte h b =
  Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) prime

let int h n =
  (* All 8 bytes of the native int, low to high, so small ints that
     differ only in sign or high bits still separate. *)
  let rec go h i n =
    if i = 8 then h else go (byte h (n land 0xff)) (i + 1) (n asr 8)
  in
  go h 0 n

let string h s =
  let h = ref h in
  String.iter (fun c -> h := byte !h (Char.code c)) s;
  (* Terminator: the length, so concatenation boundaries matter. *)
  int !h (String.length s)

let bool h b = byte h (if b then 1 else 0)

let list f h xs =
  let h = List.fold_left f (int h (List.length xs)) xs in
  byte h 0xfe

let combine h sub =
  let lo = Int64.to_int (Int64.logand sub 0xffffffffL) in
  let hi = Int64.to_int (Int64.shift_right_logical sub 32) in
  int (int h lo) hi

let to_hex h = Printf.sprintf "%016Lx" h

let equal = Int64.equal

let compare = Int64.compare
