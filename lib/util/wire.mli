(** Wire-size accounting.

    Section VII.C of the paper argues that each update costs a single
    broadcast whose payload "only grows logarithmically with the number of
    processes and the number of operations". To measure that claim
    (experiment C1) we charge every simulated message the number of bytes
    a compact varint encoding of its fields would occupy, without actually
    serialising anything. *)

val varint_size : int -> int
(** Bytes of an LEB128 encoding of a non-negative integer (1 byte per 7
    bits, minimum 1). *)

val string_size : string -> int
(** Length-prefixed string: varint length + bytes. *)

val pair_size : int -> int -> int
(** Two varints. *)

val list_size : ('a -> int) -> 'a list -> int
(** Varint count followed by each element. *)
