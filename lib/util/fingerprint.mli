(** 64-bit state fingerprints (FNV-1a).

    The model-checking engine ({!Explore}) deduplicates converging
    schedules by hashing the full exploration state — replica snapshots,
    in-flight messages, script positions, crash flags and the history
    recorded so far — into one 64-bit value. FNV-1a is used because it
    is deterministic across runs and domains (unlike [Hashtbl.hash] on
    closures), cheap, and has well-understood dispersion.

    A fingerprint is a {e hash-compaction} key: equality of fingerprints
    is taken as equality of states, so a collision could hide part of
    the state space. At the scopes the checker handles (well under 2^30
    states) the collision probability is below 2^-5 per the birthday
    bound on 64 bits; the test suite additionally checks dispersion on
    adversarially similar inputs. *)

type t = int64

val empty : t
(** The FNV-1a offset basis. *)

val string : t -> string -> t
(** Absorb every byte of the string, then a length terminator — so
    [["ab";"c"]] and [["a";"bc"]] absorb differently via {!list}. *)

val int : t -> int -> t
(** Absorb a native int (all 8 bytes). *)

val bool : t -> bool -> t

val list : (t -> 'a -> t) -> t -> 'a list -> t
(** Absorb each element in order, framed by the list length. *)

val combine : t -> t -> t
(** Absorb a sub-fingerprint into an accumulator. *)

val to_hex : t -> string

val equal : t -> t -> bool

val compare : t -> t -> int
