(** Pure-OCaml SHA-256 (FIPS 180-4).

    Used to pin serialized journal bytes in the test suite and CI: the
    rolling {!Fingerprint} is cheap enough for per-event sealing but is
    not collision-resistant, and bit-determinism pins want a digest
    whose accidental collision is unthinkable. Performance is a
    non-goal; inputs are journal-sized (kilobytes). *)

val hex : string -> string
(** [hex s] is the lowercase 64-character hex digest of [s]. *)
