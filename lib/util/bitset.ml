type t = { n : int; words : int array }

let bits_per_word = 63

let word_count n = (n + bits_per_word - 1) / bits_per_word

let create n =
  if n < 0 then invalid_arg "Bitset.create: negative capacity";
  { n; words = Array.make (max 1 (word_count n)) 0 }

let capacity t = t.n

let copy t = { n = t.n; words = Array.copy t.words }

let check t i =
  if i < 0 || i >= t.n then invalid_arg "Bitset: index out of bounds"

let mem t i =
  check t i;
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let set t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

let unset t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))

let add t i =
  let t' = copy t in
  set t' i;
  t'

let remove t i =
  let t' = copy t in
  unset t' i;
  t'

let zip_words op a b =
  if a.n <> b.n then invalid_arg "Bitset: capacity mismatch";
  { n = a.n; words = Array.init (Array.length a.words) (fun i -> op a.words.(i) b.words.(i)) }

let union a b = zip_words ( lor ) a b

let inter a b = zip_words ( land ) a b

let diff a b = zip_words (fun x y -> x land lnot y) a b

let equal a b = a.n = b.n && a.words = b.words

let subset a b =
  if a.n <> b.n then invalid_arg "Bitset: capacity mismatch";
  let ok = ref true in
  for i = 0 to Array.length a.words - 1 do
    if a.words.(i) land lnot b.words.(i) <> 0 then ok := false
  done;
  !ok

let is_empty t = Array.for_all (fun w -> w = 0) t.words

let popcount x =
  let rec go x acc = if x = 0 then acc else go (x lsr 1) (acc + (x land 1)) in
  go x 0

let cardinal t = Array.fold_left (fun acc w -> acc + popcount w) 0 t.words

let compare a b =
  let c = Int.compare a.n b.n in
  if c <> 0 then c else Stdlib.compare a.words b.words

let hash t = Hashtbl.hash (t.n, t.words)

let iter f t =
  for i = 0 to t.n - 1 do
    if t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0 then f i
  done

let fold f t init =
  let acc = ref init in
  iter (fun i -> acc := f i !acc) t;
  !acc

let elements t = List.rev (fold (fun i acc -> i :: acc) t [])

let of_list n xs =
  let t = create n in
  List.iter (set t) xs;
  t

let full n =
  let t = create n in
  for i = 0 to n - 1 do
    set t i
  done;
  t

let pp ppf t =
  Format.fprintf ppf "{%a}" (Format.pp_print_list ~pp_sep:(fun ppf () -> Format.fprintf ppf ",") Format.pp_print_int) (elements t)
