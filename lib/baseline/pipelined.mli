(** The naive FIFO apply-on-receive replica: an update is applied
    locally, broadcast, and applied at each receiver in arrival order.

    Run over FIFO channels this is pipelined consistent (Definition 7 —
    each process sees all updates in an order extending every sender's
    program order and its own), and it is wait-free and cheap, but for
    non-commutative types different replicas apply concurrent updates in
    different orders and {e never} reconcile: Proposition 1's
    impossibility made executable. The [prop1] experiment runs Figure
    2's program on it and watches PC hold while EC fails. *)

module Make (A : Uqadt.S) : sig
  include
    Protocol.PROTOCOL
      with type state = A.state
       and type update = A.update
       and type query = A.query
       and type output = A.output

  val current_state : t -> A.state
end
