(** State-machine replication over stable total-order broadcast: the
    classic way to get {e sequential consistency} for an arbitrary
    object, included as the second strong-consistency baseline (next to
    {!Abd}) that the paper's introduction trades away.

    Updates are timestamped exactly as in Algorithm 1, but a replica
    {e applies} an update only once it is stable — no process can still
    send anything that would sort before it — which requires having
    heard a strictly larger clock from every other process. Update
    invocations block until the update is applied (so a process's
    operations take effect in the agreed order at the moment they
    return), and queries answer from the stable prefix immediately.

    Two consequences measured in the experiments:

    - update latency is at least one round trip (the echo of the
      update's own broadcast), growing with the network delay (C4);
    - a single crashed process stops the stability frontier: updates
      block forever — the availability loss of Section I, in contrast
      with Algorithm 1 where the same log is applied optimistically and
      re-ordered a posteriori.

    Requires FIFO channels for the same reason as {!Gc}. *)

module Make (A : Uqadt.S) : sig
  include
    Protocol.PROTOCOL
      with type state = A.state
       and type update = A.update
       and type query = A.query
       and type output = A.output

  val stable_prefix_length : t -> int
end
