module Make (A : Uqadt.S) = struct
  include A

  type message =
    | Update of { ts : Timestamp.t; update : A.update }
    | Ack of { clock : int }

  type pending_entry = {
    ets : Timestamp.t;
    origin : int;
    u : A.update;
    on_applied : (unit -> unit) option;  (* completion of a local update *)
  }

  type t = {
    ctx : message Protocol.ctx;
    clock : Lamport.t;
    mutable pending : pending_entry list;  (* sorted by timestamp *)
    mutable state : A.state;
    mutable applied_rev : (int * A.update) list;
    mutable applied_len : int;
    heard : int array;  (* latest clock heard from each process *)
  }

  let protocol_name = "tob-smr"

  let create ctx =
    {
      ctx;
      clock = Lamport.create ();
      pending = [];
      state = A.initial;
      applied_rev = [];
      applied_len = 0;
      heard = Array.make ctx.Protocol.n 0;
    }

  let insert t entry =
    let rec place = function
      | [] -> [ entry ]
      | e :: rest ->
        if Timestamp.compare entry.ets e.ets < 0 then entry :: e :: rest
        else e :: place rest
    in
    t.pending <- place t.pending

  (* An entry is stable once every other process has been heard with a
     clock ≥ its own: under FIFO channels nothing can still arrive that
     would sort before it. *)
  let stable t ets =
    let ok = ref true in
    Array.iteri
      (fun k heard -> if k <> t.ctx.Protocol.pid && heard < ets.Timestamp.clock then ok := false)
      t.heard;
    !ok

  let rec drain t =
    match t.pending with
    | entry :: rest when stable t entry.ets ->
      t.pending <- rest;
      t.state <- A.apply t.state entry.u;
      t.applied_rev <- (entry.origin, entry.u) :: t.applied_rev;
      t.applied_len <- t.applied_len + 1;
      (match entry.on_applied with Some f -> f () | None -> ());
      drain t
    | _ :: _ | [] -> ()

  let update t u ~on_done =
    let cl = Lamport.tick t.clock in
    let ts = Timestamp.make ~clock:cl ~pid:t.ctx.Protocol.pid in
    t.heard.(t.ctx.Protocol.pid) <- cl;
    insert t { ets = ts; origin = t.ctx.Protocol.pid; u; on_applied = Some on_done };
    t.ctx.Protocol.broadcast (Update { ts; update = u });
    drain t

  let receive t ~src msg =
    (match msg with
    | Update { ts; update = u } ->
      Lamport.merge t.clock ts.Timestamp.clock;
      if ts.Timestamp.clock > t.heard.(src) then t.heard.(src) <- ts.Timestamp.clock;
      insert t { ets = ts; origin = src; u; on_applied = None };
      (* Echo so everyone's stability frontier can pass this update. *)
      let cl = Lamport.tick t.clock in
      t.heard.(t.ctx.Protocol.pid) <- cl;
      t.ctx.Protocol.broadcast (Ack { clock = cl })
    | Ack { clock } ->
      Lamport.merge t.clock clock;
      if clock > t.heard.(src) then t.heard.(src) <- clock);
    drain t

  (* Queries answer from the stable prefix: every replica runs the same
     sequence, so reads are sequentially consistent (but may lag). *)
  let query t q ~on_result = on_result (A.eval t.state q)

  let receive_batch t ~src msgs = List.iter (receive t ~src) msgs

  let message_wire_size = function
    | Update { ts; update = u } -> Timestamp.wire_size ts + A.update_wire_size u
    | Ack { clock } -> Wire.varint_size clock

  let describe_message = function
    | Update { ts; update = u } -> Format.asprintf "%a%a" A.pp_update u Timestamp.pp ts
    | Ack { clock } -> Printf.sprintf "ack(%d)" clock

  let log_length t = List.length t.pending

  let metadata_bytes t =
    List.fold_left
      (fun acc e ->
        acc + Timestamp.wire_size e.ets + Wire.varint_size e.origin + A.update_wire_size e.u)
      (Array.fold_left (fun acc c -> acc + Wire.varint_size c) 0 t.heard)
      t.pending

  let certificate t = Some (List.rev t.applied_rev)

  let stable_prefix_length t = t.applied_len

  let snapshot _t = None

  let absorb _t _s = false
end
