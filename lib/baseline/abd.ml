include Register_spec

type message =
  | Collect_req of { rid : int }
  | Collect_ack of { rid : int; ts : Timestamp.t; value : int }
  | Store_req of { rid : int; ts : Timestamp.t; value : int }
  | Store_ack of { rid : int }

(* One in-flight two-phase operation. *)
type op_kind = Write_op of int | Read_op

type in_flight = {
  kind : op_kind;
  mutable phase : int;  (* 1 = collect, 2 = store *)
  mutable acks : int;
  mutable best_ts : Timestamp.t;
  mutable best_value : int;
  finish : int -> unit;  (* called with the linearized value *)
}

type t = {
  ctx : message Protocol.ctx;
  mutable current_ts : Timestamp.t;
  mutable current_value : int;
  mutable next_rid : int;
  pending : (int, in_flight) Hashtbl.t;
}

let protocol_name = "abd-register"

let create ctx =
  {
    ctx;
    current_ts = Timestamp.make ~clock:0 ~pid:0;
    current_value = Register_spec.initial;
    next_rid = 0;
    pending = Hashtbl.create 8;
  }

let majority t = (t.ctx.Protocol.n / 2) + 1

let to_everyone t msg =
  (* Including self: quorums count the local replica too. *)
  for dst = 0 to t.ctx.Protocol.n - 1 do
    t.ctx.Protocol.send ~dst msg
  done

let begin_op t kind finish =
  let rid = t.next_rid in
  t.next_rid <- rid + 1;
  let op =
    {
      kind;
      phase = 1;
      acks = 0;
      best_ts = Timestamp.make ~clock:0 ~pid:0;
      best_value = Register_spec.initial;
      finish;
    }
  in
  Hashtbl.replace t.pending rid op;
  to_everyone t (Collect_req { rid })

let update t (Register_spec.Write v) ~on_done =
  begin_op t (Write_op v) (fun _ -> on_done ())

let query t Register_spec.Read ~on_result = begin_op t Read_op on_result

let start_phase2 t rid op =
  op.phase <- 2;
  op.acks <- 0;
  let ts, value =
    match op.kind with
    | Write_op v ->
      (* A new timestamp dominating every one seen in the collect. *)
      (Timestamp.make ~clock:(op.best_ts.Timestamp.clock + 1) ~pid:t.ctx.Protocol.pid, v)
    | Read_op ->
      (* Write back the freshest pair so later reads cannot go backward. *)
      (op.best_ts, op.best_value)
  in
  op.best_ts <- ts;
  op.best_value <- value;
  to_everyone t (Store_req { rid; ts; value })

let receive t ~src msg =
  match msg with
  | Collect_req { rid } ->
    t.ctx.Protocol.send ~dst:src
      (Collect_ack { rid; ts = t.current_ts; value = t.current_value })
  | Store_req { rid; ts; value } ->
    if Timestamp.compare ts t.current_ts > 0 then begin
      t.current_ts <- ts;
      t.current_value <- value
    end;
    t.ctx.Protocol.send ~dst:src (Store_ack { rid })
  | Collect_ack { rid; ts; value } -> (
    match Hashtbl.find_opt t.pending rid with
    | Some op when op.phase = 1 ->
      if Timestamp.compare ts op.best_ts > 0 then begin
        op.best_ts <- ts;
        op.best_value <- value
      end;
      op.acks <- op.acks + 1;
      if op.acks >= majority t then start_phase2 t rid op
    | Some _ | None -> ())
  | Store_ack { rid } -> (
    match Hashtbl.find_opt t.pending rid with
    | Some op when op.phase = 2 ->
      op.acks <- op.acks + 1;
      if op.acks >= majority t then begin
        Hashtbl.remove t.pending rid;
        op.finish op.best_value
      end
    | Some _ | None -> ())

let receive_batch t ~src msgs = List.iter (receive t ~src) msgs

let message_wire_size = function
  | Collect_req { rid } -> 1 + Wire.varint_size rid
  | Collect_ack { rid; ts; value } ->
    1 + Wire.varint_size rid + Timestamp.wire_size ts + Wire.varint_size (abs value)
  | Store_req { rid; ts; value } ->
    1 + Wire.varint_size rid + Timestamp.wire_size ts + Wire.varint_size (abs value)
  | Store_ack { rid } -> 1 + Wire.varint_size rid

let describe_message = function
  | Collect_req { rid } -> Printf.sprintf "collect?%d" rid
  | Collect_ack { rid; value; _ } -> Printf.sprintf "collect!%d=%d" rid value
  | Store_req { rid; value; _ } -> Printf.sprintf "store?%d=%d" rid value
  | Store_ack { rid } -> Printf.sprintf "store!%d" rid

let log_length _t = 0

let metadata_bytes t = Timestamp.wire_size t.current_ts + Wire.varint_size (abs t.current_value)

let certificate _t = None

let snapshot _t = None

let absorb _t _s = false
