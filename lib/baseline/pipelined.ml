module Make (A : Uqadt.S) = struct
  include A

  type message = A.update

  type t = { ctx : message Protocol.ctx; mutable state : A.state }

  let protocol_name = "pipelined"

  let create ctx = { ctx; state = A.initial }

  let update t u ~on_done =
    t.state <- A.apply t.state u;
    t.ctx.Protocol.broadcast u;
    on_done ()

  let receive t ~src:_ u = t.state <- A.apply t.state u

  let query t q ~on_result = on_result (A.eval t.state q)

  let receive_batch t ~src msgs = List.iter (receive t ~src) msgs

  let message_wire_size = A.update_wire_size

  let describe_message u = Format.asprintf "%a" A.pp_update u

  let log_length _t = 0

  let metadata_bytes _t = 0

  let certificate _t = None

  let snapshot _t = None

  let absorb _t _s = false

  let current_state t = t.state
end
