(** The ABD multi-writer atomic register (Attiya, Bar-Noy & Dolev [3])
    — the strong-consistency baseline the paper's introduction argues
    against for large-scale systems.

    Every operation runs two majority round-trips (collect, then
    propagate), so its latency is a small multiple of the network
    round-trip time — the Attiya–Welch lower bound made concrete, and
    the foil of experiment C4. An operation invoked while no majority is
    reachable (a partition, or ⌈n/2⌉ crashes) simply never completes:
    linearizability costs availability, which is the paper's motivation
    for weakening consistency instead. *)

include
  Protocol.PROTOCOL
    with type state = Register_spec.state
     and type update = Register_spec.update
     and type query = Register_spec.query
     and type output = Register_spec.output
