type t = int array

let create n =
  if n <= 0 then invalid_arg "Vector_clock.create: n must be positive";
  Array.make n 0

let n = Array.length

let copy = Array.copy

let get v i = v.(i)

let tick v i =
  let v' = Array.copy v in
  v'.(i) <- v'.(i) + 1;
  v'

let merge a b =
  if Array.length a <> Array.length b then
    invalid_arg "Vector_clock.merge: size mismatch";
  Array.init (Array.length a) (fun i -> max a.(i) b.(i))

let leq a b =
  if Array.length a <> Array.length b then
    invalid_arg "Vector_clock.leq: size mismatch";
  let ok = ref true in
  Array.iteri (fun i x -> if x > b.(i) then ok := false) a;
  !ok

let equal a b = a = b

let lt a b = leq a b && not (equal a b)

let concurrent a b = (not (leq a b)) && not (leq b a)

let deliverable m ~from local =
  if Array.length m <> Array.length local then
    invalid_arg "Vector_clock.deliverable: size mismatch";
  let ok = ref (m.(from) = local.(from) + 1) in
  Array.iteri (fun j x -> if j <> from && x > local.(j) then ok := false) m;
  !ok

let of_array a = Array.copy a

let to_array = Array.copy

let wire_size v = Array.fold_left (fun acc x -> acc + Wire.varint_size x) 0 v

let pp ppf v =
  Format.fprintf ppf "⟨%a⟩"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
       Format.pp_print_int)
    (Array.to_list v)
