type t = { clock : int; pid : int }

let make ~clock ~pid = { clock; pid }

let compare a b =
  let c = Int.compare a.clock b.clock in
  if c <> 0 then c else Int.compare a.pid b.pid

let equal a b = compare a b = 0

let ( < ) a b = compare a b < 0

let pp ppf t = Format.fprintf ppf "(%d,%d)" t.clock t.pid

let wire_size t = Wire.pair_size t.clock t.pid
