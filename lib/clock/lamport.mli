(** Lamport logical clocks (Lamport 1978, reference [14] of the paper).

    A mutable per-process counter: {!tick} before a local event, {!merge}
    on message receipt (line 9 of Algorithm 1 is
    [clock_i <- max(clock_i, cl)]). The induced happened-before order is
    contained in the timestamp order. *)

type t

val create : unit -> t
(** A clock at 0. *)

val value : t -> int

val tick : t -> int
(** Increment then return the new value (lines 5 and 13 of Algorithm 1). *)

val merge : t -> int -> unit
(** [merge c received] sets [c] to [max c received]. *)

val observe : t -> int -> int
(** [merge] then [tick]: the receive-then-act composite used by causal
    broadcast. Returns the new value. *)
