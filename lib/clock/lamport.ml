type t = { mutable now : int }

let create () = { now = 0 }

let value c = c.now

let tick c =
  c.now <- c.now + 1;
  c.now

let merge c received = if received > c.now then c.now <- received

let observe c received =
  merge c received;
  tick c
