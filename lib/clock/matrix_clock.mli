(** Matrix clocks: what each process knows about what every process has
    seen. Row [i] is the latest vector clock known for process [i].

    The stability bound — [stable_clock m] — is the minimum over rows of
    the row-wise minimum... more precisely, an update timestamped [c] is
    {e stable} once every process is known to have received every message
    with clock ≤ [c]; then no query anywhere can ever need the updates
    before it again, so the universal construction may garbage-collect
    its log prefix (the Section VII.C discussion on pruning old
    messages). *)

type t

val create : int -> t
(** [create n]: n×n zero matrix. *)

val n : t -> int

val row : t -> int -> Vector_clock.t
(** Copy of row [i]. *)

val update_row : t -> int -> Vector_clock.t -> t
(** [update_row m i v] replaces row [i] by the component-wise max of the
    current row and [v] (functional). *)

val merge : t -> t -> t
(** Component-wise max of all rows. *)

val stable_clock : t -> int
(** The largest clock [c] such that every process is known to have
    delivered every message stamped ≤ [c] from every sender: the minimum
    entry of the matrix. Log entries with [Timestamp.clock <= c] can be
    compacted into a snapshot. *)

val wire_size : t -> int

val pp : Format.formatter -> t -> unit
