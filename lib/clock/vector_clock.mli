(** Vector clocks over a fixed set of [n] processes.

    Used by the causal-broadcast substrate of the op-based CRDT baselines
    (the OR-set requires causal delivery) and to detect concurrency when
    measuring conflict rates. The partial order [leq] is the classic
    component-wise order; [concurrent a b] iff neither dominates. *)

type t

val create : int -> t
(** All-zero vector for [n] processes. *)

val n : t -> int

val copy : t -> t

val get : t -> int -> int

val tick : t -> int -> t
(** [tick v i] increments component [i] (functional). *)

val merge : t -> t -> t
(** Component-wise max. *)

val leq : t -> t -> bool
(** [leq a b] iff a.(i) <= b.(i) for every i. *)

val lt : t -> t -> bool
(** [leq a b] and [a <> b]. *)

val equal : t -> t -> bool

val concurrent : t -> t -> bool

val deliverable : t -> from:int -> t -> bool
(** Causal-delivery test: message stamped [m] sent by [from] is
    deliverable at a replica whose vector is [local] iff
    [m.(from) = local.(from) + 1] and [m.(j) <= local.(j)] for every
    other [j]. *)

val of_array : int array -> t
(** Takes ownership of a copy of the array. *)

val to_array : t -> int array
(** A fresh copy. *)

val wire_size : t -> int

val pp : Format.formatter -> t -> unit
