(** Totally ordered timestamps [(clock, pid)] — the pairs Algorithm 1
    attaches to every update. Lamport logical time gives a pre-total
    order; breaking ties by the unique process id makes it total
    (Section VII.B), which is exactly the linearization [≤] of the SUC
    proof (Proposition 4). *)

type t = { clock : int; pid : int }

val make : clock:int -> pid:int -> t

val compare : t -> t -> int
(** Lexicographic: clock first, pid second. *)

val equal : t -> t -> bool

val ( < ) : t -> t -> bool

val pp : Format.formatter -> t -> unit

val wire_size : t -> int
(** Two varints: the "two integer values that only grow logarithmically"
    of Section VII.C. *)
