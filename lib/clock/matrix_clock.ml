type t = int array array

let create n =
  if n <= 0 then invalid_arg "Matrix_clock.create: n must be positive";
  Array.init n (fun _ -> Array.make n 0)

let n = Array.length

let row m i = Vector_clock.of_array m.(i)

let update_row m i v =
  if Vector_clock.n v <> Array.length m then
    invalid_arg "Matrix_clock.update_row: size mismatch";
  Array.mapi
    (fun j r ->
      if j = i then Array.init (Array.length r) (fun k -> max r.(k) (Vector_clock.get v k))
      else Array.copy r)
    m

let merge a b =
  if Array.length a <> Array.length b then invalid_arg "Matrix_clock.merge: size mismatch";
  Array.mapi (fun i ra -> Array.mapi (fun j x -> max x b.(i).(j)) ra) a

let stable_clock m =
  Array.fold_left (fun acc r -> Array.fold_left min acc r) max_int m

let wire_size m =
  Array.fold_left
    (fun acc r -> Array.fold_left (fun acc x -> acc + Wire.varint_size x) acc r)
    0 m

let pp ppf m =
  Array.iter
    (fun r ->
      Format.fprintf ppf "⟨%a⟩"
        (Format.pp_print_list
           ~pp_sep:(fun ppf () -> Format.fprintf ppf ",")
           Format.pp_print_int)
        (Array.to_list r))
    m
