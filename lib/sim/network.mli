(** Simulated asynchronous message-passing network.

    The paper's system model (Section VII.A): a complete, reliable
    network between sequential crash-prone processes; no bound on
    transfer delays. Delay models draw each message's latency from a
    seeded distribution; [fifo] optionally enforces per-channel FIFO
    order (pipelined consistency needs it, Algorithm 1 does not);
    partitions hold cross-group traffic back until they heal (messages
    are never lost — reliability — only arbitrarily delayed); messages
    to or from crashed processes are dropped, which is harmless since a
    crashed process by definition sends and observes nothing further. *)

type delay_model =
  | Constant of float
  | Uniform of { lo : float; hi : float }
  | Exponential of { mean : float }
  | Pareto of { scale : float; shape : float }
      (** heavy tail: the "very late messages" of Section VII.C *)

val draw_delay : Prng.t -> delay_model -> float

type partition = {
  from_time : float;
  to_time : float;
  group : int list;  (** processes isolated from the rest in the window *)
}

(** Dynamic membership. A [Leave] detaches a replica from the wire
    (frames to and from it are dropped, like a crash) without losing
    its state; a [Rejoin] re-attaches it, after which the runner
    repairs the gap by catch-up from a live peer's {!Persist} snapshot.
    A [Join] brings up a replica that was absent from the start (its
    pid must still be within [n]; it holds no state until it joins). *)
type churn_action = Join | Leave | Rejoin

type churn_event = { time : float; pid : int; action : churn_action }

val churn_action_name : churn_action -> string

val churn_action_of_name : string -> churn_action option

type 'msg t

val create :
  engine:Engine.t ->
  rng:Prng.t ->
  metrics:Metrics.t ->
  n:int ->
  ?fifo:bool ->
  ?partitions:partition list ->
  ?envelope:int ->
  ?record_delivery:
    (sent:float -> received:float -> src:int -> dst:int -> 'msg -> unit) ->
  ?obs:Obs.t ->
  delay:delay_model ->
  wire_size:('msg -> int) ->
  deliver:(dst:int -> src:int -> 'msg -> unit) ->
  unit ->
  'msg t
(** [deliver] is invoked at the (simulated) arrival time of each message
    not addressed to or sent by a then-crashed process. [envelope]
    (default [0]) is the per-frame wire overhead in bytes charged to
    [bytes_sent] once per frame — a batch of [k] messages to one
    destination pays it once instead of [k] times, which is the whole
    point of {!send_batch}/{!broadcast_batch}. With the default [0]
    every byte count is identical to the unbatched accounting.

    When [obs] is given, the network additionally (a) mirrors the flat
    counters into per-replica registry series ([messages_sent{pid=src}],
    [delivery_latency{pid=dst}], …), (b) stamps every outgoing message
    with the ambient {!Obs.Span.active} span — charging
    [obs.span_wire_bytes] (default 0) extra wire bytes per stamped
    message — (c) brackets each delivery in its message's span, so
    spans follow updates across replicas without touching message
    types, and (d) when [obs.journal] is attached, records every wire
    frame, delivery, and drop into it. With [obs] absent all of this
    is compiled away behind a [None] check and the run is bit-identical
    to the seed. *)

val send : 'msg t -> src:int -> dst:int -> 'msg -> unit

val broadcast : 'msg t -> src:int -> 'msg -> unit
(** One message to every process {e other than} the sender — the paper
    treats a sender's own copy as received instantaneously, so protocols
    apply their own updates synchronously instead. Counts [n-1]
    messages. *)

val send_batch : 'msg t -> src:int -> dst:int -> 'msg list -> unit
(** One wire frame carrying the messages in order: one delay draw, one
    envelope charge, one delivery event delivering them back-to-back
    (all-or-nothing if the destination crashes first). [[]] is a
    no-op. Frames with at least two messages count in
    [Metrics.batches_sent]. *)

val broadcast_batch : 'msg t -> src:int -> 'msg list -> unit
(** {!send_batch} to every process other than the sender. *)

val send_stamped_batch :
  'msg t -> src:int -> dst:int -> ('msg * Obs.Span.id option) list -> unit
(** {!send_batch}, but with the span stamp of each message supplied by
    the caller instead of read from the ambient context — for buffered
    batching, where the frame flushes long after the spans that
    produced its messages were active. Spans are ignored when the
    network has no [obs]. *)

val broadcast_stamped_batch :
  'msg t -> src:int -> ('msg * Obs.Span.id option) list -> unit

val ambient : 'msg t -> Obs.Span.id option
(** The span currently stamped onto outgoing messages ([None] when
    telemetry is off or no span is active). *)

val crash : 'msg t -> int -> unit
(** Mark a process crashed: it no longer sends or receives. *)

val is_crashed : 'msg t -> int -> bool

val detach : 'msg t -> int -> unit
(** Take a process offline (churn leave): frames to and from it are
    dropped until {!attach}. Unlike {!crash} this is reversible, and
    unlike a partition it loses frames rather than delaying them —
    the gap must be repaired by catch-up on rejoin. *)

val attach : 'msg t -> int -> unit
(** Bring an offline process back onto the wire. *)

val is_offline : 'msg t -> int -> bool

val separated_at : 'msg t -> src:int -> dst:int -> at:float -> bool
(** Whether a partition separates [src] from [dst] at time [at].
    Catch-up transfers check this so a joiner cannot sync state across
    a partition it could not have communicated through. *)

val alive : 'msg t -> int list
