(** Simulated asynchronous message-passing network.

    The paper's system model (Section VII.A): a complete, reliable
    network between sequential crash-prone processes; no bound on
    transfer delays. Delay models draw each message's latency from a
    seeded distribution; [fifo] optionally enforces per-channel FIFO
    order (pipelined consistency needs it, Algorithm 1 does not);
    partitions hold cross-group traffic back until they heal (messages
    are never lost — reliability — only arbitrarily delayed); messages
    to or from crashed processes are dropped, which is harmless since a
    crashed process by definition sends and observes nothing further. *)

type delay_model =
  | Constant of float
  | Uniform of { lo : float; hi : float }
  | Exponential of { mean : float }
  | Pareto of { scale : float; shape : float }
      (** heavy tail: the "very late messages" of Section VII.C *)

val draw_delay : Prng.t -> delay_model -> float

type partition = {
  from_time : float;
  to_time : float;
  group : int list;  (** processes isolated from the rest in the window *)
}

type 'msg t

val create :
  engine:Engine.t ->
  rng:Prng.t ->
  metrics:Metrics.t ->
  n:int ->
  ?fifo:bool ->
  ?partitions:partition list ->
  ?record_delivery:
    (sent:float -> received:float -> src:int -> dst:int -> 'msg -> unit) ->
  delay:delay_model ->
  wire_size:('msg -> int) ->
  deliver:(dst:int -> src:int -> 'msg -> unit) ->
  unit ->
  'msg t
(** [deliver] is invoked at the (simulated) arrival time of each message
    not addressed to or sent by a then-crashed process. *)

val send : 'msg t -> src:int -> dst:int -> 'msg -> unit

val broadcast : 'msg t -> src:int -> 'msg -> unit
(** One message to every process {e other than} the sender — the paper
    treats a sender's own copy as received instantaneously, so protocols
    apply their own updates synchronously instead. Counts [n-1]
    messages. *)

val crash : 'msg t -> int -> unit
(** Mark a process crashed: it no longer sends or receives. *)

val is_crashed : 'msg t -> int -> bool

val alive : 'msg t -> int list
