(** Run-wide counters: the observables of the complexity experiments
    (C1–C3). Mutable; one record per run. *)

type t = {
  mutable messages_sent : int;
  mutable bytes_sent : int;
  mutable messages_delivered : int;
  mutable messages_dropped : int;  (** to/from crashed processes *)
  mutable updates_invoked : int;
  mutable queries_invoked : int;
  mutable ops_completed : int;
  mutable ops_incomplete : int;
      (** invoked but never completed — e.g. a quorum operation cut off
          by a partition or crash majority *)
  mutable replay_steps : int;
      (** update applications performed by query replays (C2) *)
  mutable batches_sent : int;
      (** multi-message wire frames sent via batched broadcast (frames
          carrying a single message count as plain sends) *)
  mutable delivery_latency_sum : float;
  mutable snapshots_absorbed : int;
      (** churn catch-up: snapshots successfully merged by a joiner or
          rejoiner at attach time *)
  mutable catchup_bytes : int;
      (** total size of those snapshots — the off-wire state-transfer
          cost churn adds on top of the message complexity *)
}

val create : unit -> t

val mean_delivery_latency : t -> float
(** [0.] when nothing was delivered (no division by zero). *)

val pp : Format.formatter -> t -> unit
(** One line, [key=value] pairs, including [batches_sent] and the mean
    delivery latency. *)

val to_registry : t -> Obs.Registry.t -> unit
(** Mirror the run-wide record into a telemetry registry, labelled
    [{scope=run}] — the flat counters and the per-replica registry rows
    then live in one dump. *)
