type entry = { time : float; seq : int; thunk : unit -> unit }

type t = {
  mutable clock : float;
  mutable next_seq : int;
  queue : entry Heap.t;
}

let compare_entry a b =
  let c = Float.compare a.time b.time in
  if c <> 0 then c else Int.compare a.seq b.seq

let create () = { clock = 0.0; next_seq = 0; queue = Heap.create ~cmp:compare_entry }

let now t = t.clock

let schedule_at t ~time thunk =
  if Float.is_nan time then invalid_arg "Engine.schedule_at: NaN time";
  let time = Float.max time t.clock in
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  Heap.push t.queue { time; seq; thunk }

let schedule t ~delay thunk =
  if Float.is_nan delay || delay < 0.0 || delay = Float.infinity then
    invalid_arg "Engine.schedule: delay must be finite and non-negative";
  schedule_at t ~time:(t.clock +. delay) thunk

let pending t = Heap.length t.queue

let step t =
  match Heap.pop t.queue with
  | None -> false
  | Some e ->
    t.clock <- e.time;
    e.thunk ();
    true

let run ?(until = Float.infinity) t =
  let continue = ref true in
  while !continue do
    match Heap.peek t.queue with
    | None -> continue := false
    | Some e ->
      if e.time > until then continue := false
      else begin
        let _ : bool = step t in
        ()
      end
  done
