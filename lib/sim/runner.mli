(** Drives one protocol over one workload through the simulator and
    extracts everything the experiments need: the distributed history
    (for the consistency checkers), metric counters, per-operation
    latencies, the final converged (or not) reads, and the replicas'
    linearization certificates.

    Each simulated process is sequential: it issues its next operation a
    think-time after the previous one completed, crashes at its
    scheduled time if any, and — once every live process has exhausted
    its script and the network has quiesced — issues one final read,
    recorded as an ω query, so that the extracted history can be judged
    for EC/UC exactly as the paper's figures are. *)

module Make (P : Protocol.PROTOCOL) : sig
  module Mon : module type of Obs.Monitor.Make (P)
  (** Online consistency monitor over this protocol's spec; create one
      with [Mon.create] and pass it as [config.monitor] to have the
      runner feed it every invocation as it completes. *)

  type action = (P.update, P.query) Protocol.invocation

  type config = {
    seed : int;
    n : int;
    delay : Network.delay_model;
    fifo : bool;
    partitions : Network.partition list;
    crashes : (float * int) list;  (** (time, pid) *)
    churn : Network.churn_event list;
        (** dynamic membership schedule. A pid whose {e first} event is
            [Join] starts the run absent (no replica, its script parked
            until it joins); [Leave] detaches a replica — frames to and
            from it drop, its script parks — and [Rejoin]/[Join] brings
            it back, catching up from a present peer's {!Persist}
            snapshot when the protocol supports one. Replicas still
            detached at the end of the run take no ω read and are
            excluded from the convergence verdict. Quiescence is
            churn-aware: after the engine drains, present replicas
            exchange snapshots to a fixpoint to repair frames lost to
            detached windows. *)
    think : Network.delay_model;  (** gap between consecutive local ops *)
    final_read : P.query option;
    deadline : float;  (** hard stop for the whole simulation *)
    trace : bool;  (** record an execution trace (see {!Trace}) *)
    batch_window : float option;
        (** when set, a process's broadcasts are buffered and flushed as
            one {!Network.broadcast_batch} frame per destination this
            many time units after the window opens — back-to-back
            updates amortise the per-frame envelope. [None] (the
            default) sends every broadcast immediately, exactly as the
            seed runner did. *)
    envelope : int;
        (** per-frame wire overhead passed to {!Network.create};
            default [0], which keeps byte accounting identical to the
            seed. *)
    obs : Obs.t option;
        (** telemetry bundle. [None] (the default) disables all
            instrumentation and keeps the run bit-identical to the
            seed: same history, same metrics, same wire bytes. *)
    probe_interval : float option;
        (** minimum simulated time between convergence probes. Probes
            piggyback on deliveries and invocations — they schedule no
            engine events — and sample every live replica's state
            fingerprint, recording the number of distinct values as the
            divergence series (plus one forced sample at quiescence).
            Requires [obs]. *)
    fingerprint : (P.t -> string) option;
        (** replica state fingerprint for the probe; defaults to the
            certificate rendered as text (log length if the protocol
            keeps no certificate). *)
    monitor : Mon.t option;
        (** online consistency monitor, fed every update invocation and
            completed query (with its journal event index and span id)
            as the run progresses. [None] by default. *)
    sampler : Obs.Series.sampler option;
        (** streaming time-series sampler for soak runs. Like the
            probe, it piggybacks on deliveries and operation
            completions — it schedules no engine events — taking a
            sample whenever its simulated-time cadence says one is due,
            plus one forced tick at quiescence. The runner feeds it
            per-replica [log_len{pid}] and [checkpoints{pid}] (profile)
            gauges, the engine [queue_depth], and every completed
            operation's latency (keyed by pid) for the sliding-window
            [latency_p50]/[latency_p99] series. [None] (the default)
            samples nothing and keeps the run bit-identical to the
            seed. *)
  }

  val default_config : n:int -> seed:int -> config
  (** Uniform delays in [1, 10], think times exponential(5), no faults,
      final read for none (set it per ADT), deadline 1e7, no batching,
      zero envelope, no telemetry. *)

  type result = {
    history : (P.update, P.query, P.output) History.t;
    metrics : Metrics.t;
    op_latencies : float list;
    final_outputs : (int * P.output) list;  (** completed final reads *)
    converged : bool;  (** all completed final reads are equal *)
    certificates : (int * (int * P.update) list) list;
    certificates_agree : bool;
    log_lengths : (int * int) list;
    metadata_bytes : (int * int) list;
    sim_duration : float;
    trace : Trace.t option;  (** present iff [config.trace] *)
    intervals : (float * float) array;
        (** per history event (indexed by event id): invocation and
            response times. An update that never completed (a stalled
            quorum operation) has an infinite response time. Feed these
            to {!Check_lin} to decide linearizability of the run. *)
  }

  val run : config -> workload:action list array -> result
  (** [workload.(p)] is process p's script. Raises [Invalid_argument] if
      the workload width differs from [config.n].

      When [config.obs] carries a {!Obs.Journal}, the run records every
      invocation, wire frame, delivery, drop, crash, partition window,
      and probe sample into it in simulated-time order, and seals it
      with the extracted history's {!History.fingerprint}. Journaling
      only observes — the schedule, history, metrics, and wire bytes
      are bit-identical with and without it. *)
end
