(* Open-loop arrival process: a piecewise-constant rate profile. Closed
   loops self-throttle — a slow system slows its own clients — so they
   cannot exhibit the latency collapse of a flash crowd; an open loop
   keeps injecting at the planned rate whatever the system does. *)
type phase = { duration : float; rate : float }

(* Absolute arrival times of a Poisson process whose rate steps through
   [phases]: within each phase, exponential inter-arrival gaps with
   mean [1/rate]; a zero-rate phase is quiet time. Ascending order. *)
let arrival_times ~rng phases =
  let rec walk t0 phases acc =
    match phases with
    | [] -> List.rev acc
    | { duration; rate } :: rest ->
      if duration < 0.0 then invalid_arg "Clients.arrival_times: negative duration";
      if rate < 0.0 then invalid_arg "Clients.arrival_times: negative rate";
      let phase_end = t0 +. duration in
      if rate = 0.0 then walk phase_end rest acc
      else begin
        let rec fill t acc =
          let t = t +. Prng.exponential rng ~mean:(1.0 /. rate) in
          if t >= phase_end then (t, acc) else fill t (t :: acc)
        in
        let _, acc = fill t0 acc in
        walk phase_end rest acc
      end
  in
  walk 0.0 phases []

module Make (P : Protocol.PROTOCOL) = struct
  type open_loop = {
    plan : phase list;
    mix : Prng.t -> (P.update, P.query) Protocol.invocation list;
  }

  type config = {
    seed : int;
    n_replicas : int;
    n_clients : int;
    replica_delay : Network.delay_model;
    client_delay : Network.delay_model;
    think : Network.delay_model;
    crashes : (float * int) list;
    final_read : P.query option;
    open_loop : open_loop option;
    obs : Obs.t option;
  }

  let default_config ~n_replicas ~n_clients ~seed =
    {
      seed;
      n_replicas;
      n_clients;
      replica_delay = Network.Uniform { lo = 1.0; hi = 10.0 };
      client_delay = Network.Uniform { lo = 0.5; hi = 2.0 };
      think = Network.Exponential { mean = 5.0 };
      crashes = [];
      final_read = None;
      open_loop = None;
      obs = None;
    }

  type result = {
    history : (P.update, P.query, P.output) History.t;
    converged : bool;
    failovers : int;
    metrics : Metrics.t;
    ops_completed : int;
    ops_abandoned : int;
    open_completed : int;
    open_abandoned : int;
    open_latencies : float list;
    open_keyed_latencies : (int * float) list;
  }

  let run config ~workload =
    if Array.length workload <> config.n_clients then
      invalid_arg "Clients.run: workload width must match n_clients";
    let engine = Engine.create () in
    let metrics = Metrics.create () in
    let root_rng = Prng.create config.seed in
    let net_rng = Prng.split root_rng in
    let link_rng = Prng.split root_rng in
    let think_rngs = Array.init config.n_clients (fun _ -> Prng.split root_rng) in
    (* Split last so the closed-loop streams above are bit-identical to
       runs without an open loop. *)
    let open_rng = Prng.split root_rng in
    let replicas = Array.make config.n_replicas None in
    let crashed = Array.make config.n_replicas false in
    let network =
      Network.create ~engine ~rng:net_rng ~metrics ~n:config.n_replicas
        ~delay:config.replica_delay ~wire_size:P.message_wire_size
        ~deliver:(fun ~dst ~src msg ->
          match replicas.(dst) with
          | Some r -> P.receive r ~src msg
          | None -> ())
        ()
    in
    for pid = 0 to config.n_replicas - 1 do
      let ctx =
        {
          Protocol.pid;
          n = config.n_replicas;
          now = (fun () -> Engine.now engine);
          send = (fun ~dst msg -> Network.send network ~src:pid ~dst msg);
          broadcast = (fun msg -> Network.broadcast network ~src:pid msg);
          broadcast_batch =
            (fun msgs -> Network.broadcast_batch network ~src:pid msgs);
          set_timer = (fun ~delay thunk -> Engine.schedule engine ~delay thunk);
          count_replay =
            (fun k -> metrics.Metrics.replay_steps <- metrics.Metrics.replay_steps + k);
          obs = None;
        }
      in
      replicas.(pid) <- Some (P.create ctx)
    done;
    List.iter
      (fun (time, pid) ->
        Engine.schedule_at engine ~time (fun () ->
            crashed.(pid) <- true;
            Network.crash network pid))
      config.crashes;
    (* Client state. *)
    let home = Array.init config.n_clients (fun c -> c mod config.n_replicas) in
    let steps : (P.update, P.query, P.output) History.step list ref array =
      Array.init config.n_clients (fun _ -> ref [])
    in
    let failovers = ref 0 in
    let ops_completed = ref 0 in
    let ops_abandoned = ref 0 in
    (* Move client [c]'s home to the next live replica. Returns false if
       every replica is down. *)
    let live_home c =
      let n = config.n_replicas in
      let rec seek tried =
        if tried = n then false
        else if crashed.(home.(c)) then begin
          home.(c) <- (home.(c) + 1) mod n;
          incr failovers;
          seek (tried + 1)
        end
        else true
      in
      (* [seek] counts a failover per hop; retract the increments that
         only skipped consecutive dead replicas beyond the first. *)
      let before = !failovers in
      let ok = seek 0 in
      if !failovers > before then failovers := before + 1;
      ok
    in
    let link_gap () = Network.draw_delay link_rng config.client_delay in
    let rec issue c script =
      match script with
      | [] -> ()
      | action :: rest ->
        if live_home c then begin
          let target = home.(c) in
          (* Request travels to the replica... *)
          Engine.schedule engine ~delay:(link_gap ()) (fun () ->
              if crashed.(target) then begin
                (* ...which died meanwhile: retry elsewhere. *)
                incr ops_abandoned;
                issue c script
              end
              else begin
                let replica = Option.get replicas.(target) in
                let reply record =
                  (* ...and the answer travels back. *)
                  Engine.schedule engine ~delay:(link_gap ()) (fun () ->
                      record ();
                      incr ops_completed;
                      let gap = Network.draw_delay think_rngs.(c) config.think in
                      Engine.schedule engine ~delay:gap (fun () -> issue c rest))
                in
                match action with
                | Protocol.Invoke_update u ->
                  metrics.Metrics.updates_invoked <- metrics.Metrics.updates_invoked + 1;
                  P.update replica u ~on_done:(fun () ->
                      reply (fun () -> steps.(c) := History.U u :: !(steps.(c))))
                | Protocol.Invoke_query q ->
                  metrics.Metrics.queries_invoked <- metrics.Metrics.queries_invoked + 1;
                  P.query replica q ~on_result:(fun output ->
                      reply (fun () -> steps.(c) := History.Q (q, output) :: !(steps.(c))))
              end)
        end
        else ops_abandoned := !ops_abandoned + List.length script
    in
    Array.iteri
      (fun c script ->
        let gap = Network.draw_delay think_rngs.(c) config.think in
        Engine.schedule engine ~delay:gap (fun () -> issue c script))
      workload;
    (* Open-loop flash crowd: arrivals fire at their planned absolute
       times regardless of how many are still in flight. Each arrival is
       a one-shot anonymous client: seek a live replica (round-robin by
       arrival index), pay the two link hops, retry elsewhere if the
       replica dies with the request in flight. Open operations touch
       the replicas for real but stay out of the per-client history —
       they have no session, so session criteria do not apply to them. *)
    let open_completed = ref 0 in
    let open_abandoned = ref 0 in
    let open_latencies = ref [] in
    let open_keyed_latencies = ref [] in
    let open_lat_hist =
      Option.map
        (fun o ->
          Obs.Registry.hist o.Obs.registry
            ~labels:[ ("scope", "open") ]
            "open_op_latency")
        config.obs
    in
    (match config.open_loop with
    | None -> ()
    | Some { plan; mix } ->
      let live_replica start =
        let n = config.n_replicas in
        let rec seek i tried =
          if tried = n then None
          else if crashed.(i mod n) then seek (i + 1) (tried + 1)
          else Some (i mod n)
        in
        seek start 0
      in
      let open_gap () = Network.draw_delay open_rng config.client_delay in
      let arrivals = arrival_times ~rng:open_rng plan in
      let ops = List.mapi (fun i t -> (i, t, mix open_rng)) arrivals in
      let complete started =
        let lat = Engine.now engine -. started in
        incr open_completed;
        open_latencies := lat :: !open_latencies;
        Option.iter (fun h -> Obs.Registry.observe h lat) open_lat_hist
      in
      (* One arrival can fan out into several sub-operations (legs),
         issued concurrently — a multi-key operation touching several
         shards. The arrival completes when its last leg replies (so its
         recorded latency is the slowest leg's), and is abandoned if any
         leg found no live replica. Per-leg latencies are kept keyed by
         arrival index for {!Stats.slo_by_key}. *)
      let rec issue_leg ~hint op ~on_reply ~on_fail =
        match live_replica hint with
        | None -> on_fail ()
        | Some target ->
          Engine.schedule engine ~delay:(open_gap ()) (fun () ->
              if crashed.(target) then begin
                incr failovers;
                issue_leg ~hint:(target + 1) op ~on_reply ~on_fail
              end
              else begin
                let replica = Option.get replicas.(target) in
                let reply () =
                  Engine.schedule engine ~delay:(open_gap ()) on_reply
                in
                match op with
                | Protocol.Invoke_update u ->
                  metrics.Metrics.updates_invoked <-
                    metrics.Metrics.updates_invoked + 1;
                  P.update replica u ~on_done:reply
                | Protocol.Invoke_query q ->
                  metrics.Metrics.queries_invoked <-
                    metrics.Metrics.queries_invoked + 1;
                  P.query replica q ~on_result:(fun _ -> reply ())
              end)
      in
      List.iter
        (fun (i, t, subs) ->
          Engine.schedule_at engine ~time:t (fun () ->
              match subs with
              | [] -> ()
              | _ ->
                let pending = ref (List.length subs) in
                let failed = ref 0 in
                let leg_done ok =
                  decr pending;
                  if not ok then incr failed;
                  if !pending = 0 then
                    if !failed = 0 then complete t else incr open_abandoned
                in
                List.iteri
                  (fun j op ->
                    issue_leg ~hint:((i + j) mod config.n_replicas) op
                      ~on_reply:(fun () ->
                        open_keyed_latencies :=
                          (i, Engine.now engine -. t) :: !open_keyed_latencies;
                        leg_done true)
                      ~on_fail:(fun () -> leg_done false))
                  subs))
        ops);
    Engine.run engine;
    (* ω final reads, through each client's (live) home. *)
    let finals = ref [] in
    (match config.final_read with
    | None -> ()
    | Some q ->
      for c = 0 to config.n_clients - 1 do
        if live_home c then begin
          let replica = Option.get replicas.(home.(c)) in
          P.query replica q ~on_result:(fun output ->
              steps.(c) := History.Qw (q, output) :: !(steps.(c));
              finals := output :: !finals)
        end
      done;
      Engine.run engine);
    let converged =
      match !finals with
      | [] -> true
      | o :: rest -> List.for_all (P.equal_output o) rest
    in
    {
      history = History.make (List.map (fun r -> List.rev !r) (Array.to_list steps));
      converged;
      failovers = !failovers;
      metrics;
      ops_completed = !ops_completed;
      ops_abandoned = !ops_abandoned;
      open_completed = !open_completed;
      open_abandoned = !open_abandoned;
      open_latencies = List.rev !open_latencies;
      open_keyed_latencies = List.rev !open_keyed_latencies;
    }
end
