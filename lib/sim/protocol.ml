type ('u, 'q) invocation = Invoke_update of 'u | Invoke_query of 'q

type 'msg ctx = {
  pid : int;
  n : int;
  now : unit -> float;
  send : dst:int -> 'msg -> unit;
  broadcast : 'msg -> unit;
  broadcast_batch : 'msg list -> unit;
  set_timer : delay:float -> (unit -> unit) -> unit;
  count_replay : int -> unit;
  obs : Obs.replica option;
}

module type PROTOCOL = sig
  include Uqadt.S

  type t

  type message

  val protocol_name : string

  val create : message ctx -> t

  val update : t -> update -> on_done:(unit -> unit) -> unit

  val query : t -> query -> on_result:(output -> unit) -> unit

  val receive : t -> src:int -> message -> unit

  val receive_batch : t -> src:int -> message list -> unit
  (** Deliver a coalesced envelope from one peer, observably equivalent
      to [List.iter (receive t ~src)] in list order. Protocols with a
      batch-aware core (one clock merge, one log merge pass) override
      the default per-message iteration; for the rest the equivalence
      is literal. *)

  val message_wire_size : message -> int

  val describe_message : message -> string

  val log_length : t -> int

  val metadata_bytes : t -> int

  val certificate : t -> (int * update) list option

  val snapshot : t -> string option
  (** Serialized state for churn catch-up ([None] when the protocol has
      no persistence codec — such replicas skip snapshot transfer and
      rely on the normal message flow to converge). *)

  val absorb : t -> string -> bool
  (** Merge a peer's {!snapshot} into this replica, keeping any local
      state (a rejoiner's crash-time log survives the merge). Returns
      [false] when unsupported or the payload does not decode. *)
end
