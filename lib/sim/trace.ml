type event =
  | Op of { time : float; pid : int; label : string }
  | Delivery of { sent : float; received : float; src : int; dst : int; label : string }
  | Crash of { time : float; pid : int }
  | Note of { time : float; text : string }

type t = { mutable events : event list }

let create () = { events = [] }

let record_op t ~time ~pid label = t.events <- Op { time; pid; label } :: t.events

let record_delivery t ~sent ~received ~src ~dst label =
  t.events <- Delivery { sent; received; src; dst; label } :: t.events

let record_crash t ~time ~pid = t.events <- Crash { time; pid } :: t.events

let record_note t ~time text = t.events <- Note { time; text } :: t.events

let length t = List.length t.events

let time_of = function
  | Op { time; _ } -> time
  | Delivery { received; _ } -> received
  | Crash { time; _ } -> time
  | Note { time; _ } -> time

let render t ~n =
  let events = List.sort (fun a b -> Float.compare (time_of a) (time_of b)) (List.rev t.events) in
  let lane_width = 14 in
  let buf = Buffer.create 1024 in
  let pad s =
    if String.length s >= lane_width then String.sub s 0 lane_width
    else s ^ String.make (lane_width - String.length s) ' '
  in
  Buffer.add_string buf (pad "t");
  for p = 0 to n - 1 do
    Buffer.add_string buf (pad (Printf.sprintf "p%d" p))
  done;
  Buffer.add_char buf '\n';
  List.iter
    (fun ev ->
      Buffer.add_string buf (pad (Printf.sprintf "%.1f" (time_of ev)));
      (match ev with
      | Op { pid; label; _ } ->
        for p = 0 to n - 1 do
          Buffer.add_string buf (pad (if p = pid then label else "·"))
        done
      | Delivery { sent; received; src; dst; label } ->
        for p = 0 to n - 1 do
          if p = dst then
            Buffer.add_string buf
              (pad (Printf.sprintf "«p%d %s" src label))
          else Buffer.add_string buf (pad "·")
        done;
        Buffer.add_string buf (Printf.sprintf " (in flight %.1f)" (received -. sent))
      | Crash { pid; _ } ->
        for p = 0 to n - 1 do
          Buffer.add_string buf (pad (if p = pid then "✗ crash" else "·"))
        done
      | Note { text; _ } ->
        (* A full-width annotation line, not tied to any lane. *)
        Buffer.add_string buf ("# " ^ text));
      Buffer.add_char buf '\n')
    events;
  Buffer.contents buf
