(** Execution traces and their rendering.

    The runner (with [trace = true]) records every operation invocation,
    completion and message delivery; {!render} prints a lane-per-process
    chronology — the closest plain text comes to the space-time diagrams
    used to reason about the paper's histories. Meant for the examples,
    for debugging protocols, and for EXPERIMENTS.md illustrations. *)

type t

val create : unit -> t

val record_op : t -> time:float -> pid:int -> string -> unit

val record_delivery :
  t -> sent:float -> received:float -> src:int -> dst:int -> string -> unit

val record_crash : t -> time:float -> pid:int -> unit

val record_note : t -> time:float -> string -> unit
(** A free-form annotation rendered as its own full-width line —
    used to record run configuration (e.g. which log core and
    checkpoint interval a run was driven with) inside the trace. *)

val length : t -> int

val render : t -> n:int -> string
(** One line per recorded event in time order: a timestamp column, one
    lane per process (the acting process's lane carries the label), and
    message arrows printed as [src⟶dst] with their network latency. *)
