(** Domain-per-replica execution: the replica protocols of the
    sequential {!Runner}, run truly concurrently on OCaml 5 domains
    connected by bounded MPSC mailboxes ({!Mpsc}).

    Each domain owns one replica plus a closed-loop client playing a
    pre-generated invocation script; sends coalesce in per-destination
    buffers flushed as one frame per [batch_every] messages (threshold
    1 = unbatched), with the same per-frame byte accounting as the
    sequential {!Network} (envelope + per-message wire size,
    [batches_sent] when a frame carries more than one message).
    Deliveries drain each mailbox a run at a time ({!Mpsc.pop_run})
    into the protocol's [receive_batch], and both busy-wait loops pace
    themselves with spin-then-park backoff ({!Mpsc.Backoff}). At the
    end of the scripts the engine drains every mailbox to quiescence,
    has every replica answer an optional ω read, and reports
    convergence (outputs and update certificates) together with
    wall-clock throughput and per-invocation latencies (nanosecond
    monotonic stamps, reported in seconds).

    Proposition 4 is what makes the result checkable: under strong
    update consistency the final state depends only on the timestamp
    total order of the update multiset, never on the real-time delivery
    interleaving the domains happened to produce — see
    {!Throughput} in the analysis layer for the sequential
    differential built on that.

    The engine is measurement infrastructure: it is {e not}
    deterministic (the OS schedule is real) — but with a
    {!Obs.Recorder} attached it is {e replayable}: each domain records
    its invocations, sends, deliveries, and stalls into a private
    buffer, and the analysis layer merges the streams, rebuilds the
    journal, and re-executes the recorded per-replica delivery order on
    the sequential core ({!Throughput}). Telemetry stays behind the
    repo-wide contract: every hook is an option defaulting to [None]
    ([obs = None], [recorder = None]), obs-off runs are bit-identical
    to seed, and each domain writes only its own registry shard and
    detached replica handle — merged and adopted on the coordinating
    domain after the joins, so no shared Obs state is touched while the
    domains run. *)

type domain_report = {
  pid : int;
  ops : int;  (** invocations completed (updates + queries) *)
  updates : int;
  queries : int;
  frames_sent : int;
  messages_sent : int;
  bytes_sent : int;
  batches_sent : int;
  messages_received : int;
  mailbox_stalls : int;
      (** pushes that found the destination mailbox full (each stall
          drains the sender's own mailbox, so stalls cannot deadlock) *)
  mailbox_max_depth : int;  (** deepest this replica's own mailbox got *)
  replay_steps : int;
  latencies : float array;  (** seconds per invocation, in issue order *)
}

module Make (P : Protocol.PROTOCOL) : sig
  type frame = { src : int; msgs : P.message list; lam : int }
  (** [lam] is the sender's Lamport stamp recorded for the frame, [0]
      when no recorder is attached. *)

  type config = {
    domains : int;
    mailbox_capacity : int;
    envelope : int;  (** per-frame overhead bytes, as [Runner.config] *)
    batch_every : int;
        (** per-destination coalescing threshold: each peer's buffer is
            flushed as one frame once it holds this many messages; 1 =
            one frame per message, matching the unbatched sequential
            runner exactly *)
    flush_window : int;
        (** force-flush every buffer after this many local invocations,
            bounding how long a coalesced message can wait for its
            buffer to fill; 0 = no window, flushes happen only on the
            size threshold and at script/quiescence boundaries *)
    final_read : P.query option;  (** ω read every replica answers *)
    obs : Obs.t option;
    recorder : Obs.Recorder.t option;
        (** flight recorder; must have been created with at least
            [domains] handles. [None] (the default) records nothing and
            keeps the hot path free of recorder branches' work *)
  }

  val default_config : domains:int -> config
  (** capacity 1024, envelope 0, unbatched, no flush window, no ω read,
      [obs = None], [recorder = None]. *)

  type result = {
    reports : domain_report array;
    replicas : P.t array;
        (** the replicas after quiescence, for log inspection — only
            the coordinating domain may touch them once [run] returns *)
    outputs : (int * P.output) list;  (** ω answers, when [final_read] *)
    query_outputs : P.output list array;
        (** per-domain non-ω query answers in issue order, captured only
            when a recorder is attached (empty lists otherwise) — what
            the replay bridge compares recorded outputs against *)
    outputs_agree : bool;
    certificates_agree : bool;
    log_lengths : int array;
    wall_seconds : float;  (** max domain end − min domain start *)
    ops_total : int;
    updates_total : int;
    throughput : float;  (** aggregate invocations per wall second *)
  }

  val run :
    config -> workload:(P.update, P.query) Protocol.invocation list array -> result
  (** Spawn [config.domains] domains, play one script per domain, drain
      to quiescence, join, and aggregate. The [workload] array must
      have exactly [domains] entries; scripts are read-only inside the
      domains. @raise Invalid_argument on a malformed config. *)

  val latency_summary : result -> Stats.summary option
  (** Distribution over every domain's per-invocation latencies;
      [None] when no invocations ran. *)
end
